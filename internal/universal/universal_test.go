package universal

import (
	"math/rand"
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/bisim"
	"weakmodels/internal/compile"
	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

func TestUnfoldShape(t *testing.T) {
	g := graph.Cycle(5)
	p := port.Canonical(g)
	u, err := Unfold(p, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	tree := u.Tree()
	// A cycle unfolds into a path: root + 2 per depth = 7 nodes at depth 3.
	if tree.N() != 7 || tree.M() != 6 {
		t.Fatalf("unfolded cycle shape: %v", tree)
	}
	if !tree.IsConnected() || tree.M() != tree.N()-1 {
		t.Fatal("unfolding is not a tree")
	}
	if u.Base[u.Root] != 0 || u.Depth[u.Root] != 0 {
		t.Fatal("root metadata wrong")
	}
	// Interior nodes keep the base degree.
	for x := 0; x < tree.N(); x++ {
		if u.Depth[x] < 3 && tree.Degree(x) != g.Degree(u.Base[x]) {
			t.Fatalf("interior node %d has degree %d, base has %d",
				x, tree.Degree(x), g.Degree(u.Base[x]))
		}
	}
}

func TestUnfoldPreservesPortsAboveHorizon(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	for _, g := range []*graph.Graph{graph.Petersen(), graph.Figure1Graph(), graph.Grid(3, 3)} {
		p := port.Random(g, rng)
		u, err := Unfold(p, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		tree := u.Tree()
		for x := 0; x < tree.N(); x++ {
			if u.Depth[x] >= 3 {
				continue
			}
			b := u.Base[x]
			for i := 1; i <= tree.Degree(x); i++ {
				dTree := u.Ports.Dest(x, i)
				dBase := p.Dest(b, i)
				if u.Base[dTree.Node] != dBase.Node {
					t.Fatalf("port (%d,%d): tree reaches base %d, want %d",
						x, i, u.Base[dTree.Node], dBase.Node)
				}
				if u.Depth[dTree.Node] < 3 && dTree.Index != dBase.Index {
					t.Fatalf("port (%d,%d): in-port %d, want %d",
						x, i, dTree.Index, dBase.Index)
				}
			}
		}
	}
}

// TestLocalityAtRoot is the headline: a T-round algorithm outputs the same
// at v in (G, p) and at the root of the depth-(T+1) unfolding.
func TestLocalityAtRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	graphs := []*graph.Graph{
		graph.Cycle(6), graph.Petersen(), graph.Figure1Graph(),
		graph.Caterpillar(3, 1), graph.Grid(3, 3),
	}
	type fixedRounds struct {
		build  func(delta int) machine.Machine
		rounds int
	}
	cases := []fixedRounds{
		{algorithms.OddOdd, 1},
		{algorithms.LeafElect, 1},
		{func(d int) machine.Machine { return algorithms.LeafProximity(d, 2) }, 2},
	}
	for _, g := range graphs {
		delta := g.MaxDegree()
		for trial := 0; trial < 2; trial++ {
			p := port.Random(g, rng)
			for _, tc := range cases {
				m := tc.build(delta)
				baseRes, err := engine.Run(m, p, engine.Options{})
				if err != nil {
					t.Fatal(err)
				}
				for v := 0; v < g.N(); v++ {
					u, err := Unfold(p, v, tc.rounds+1)
					if err != nil {
						t.Fatal(err)
					}
					treeRes, err := engine.Run(m, u.Ports, engine.Options{})
					if err != nil {
						t.Fatal(err)
					}
					if treeRes.Output[u.Root] != baseRes.Output[v] {
						t.Fatalf("%s on %v node %d: tree root %q, base %q",
							m.Name(), g, v, treeRes.Output[u.Root], baseRes.Output[v])
					}
				}
			}
		}
	}
}

// TestLocalityForCompiledFormulas: the same for Theorem 2 machines — the
// root of the depth-(md+1) unfolding satisfies φ iff v does.
func TestLocalityForCompiledFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	g := graph.Petersen()
	p := port.Random(g, rng)
	for _, src := range []string{"<*,*> q3", "<*,*>=2 (<*,*> q3)", "q3 & !<*,*> q1"} {
		f := logic.MustParse(src)
		m, variant, err := compile.MachineFromFormula(f, g.MaxDegree())
		if err != nil {
			t.Fatal(err)
		}
		model := kripke.FromPorts(p, variant)
		want := logic.Eval(model, f)
		md := logic.ModalDepth(f)
		for v := 0; v < g.N(); v++ {
			u, err := Unfold(p, v, md+1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := engine.Run(m, u.Ports, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if (res.Output[u.Root] == "1") != want[v] {
				t.Fatalf("%q at node %d: unfolding says %q, model checking says %v",
					src, v, res.Output[u.Root], want[v])
			}
		}
	}
}

// TestRootBisimilarBounded: the root is T-round bisimilar to its base node
// in K₊,₊ across the two models.
func TestRootBisimilarBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	g := graph.Figure1Graph()
	p := port.Random(g, rng)
	const T = 2
	for v := 0; v < g.N(); v++ {
		u, err := Unfold(p, v, T+1)
		if err != nil {
			t.Fatal(err)
		}
		baseModel := kripke.FromPorts(p, kripke.VariantPP)
		treeModel := kripke.FromPorts(u.Ports, kripke.VariantPP)
		union := kripke.DisjointUnion(treeModel, baseModel)
		part := bisim.Compute(union, bisim.Options{Graded: true, MaxRounds: T})
		if !part.Same(u.Root, treeModel.N()+v) {
			t.Fatalf("root of unfolding at %d not %d-round bisimilar to base", v, T)
		}
	}
}

func TestUnfoldErrors(t *testing.T) {
	p := port.Canonical(graph.Path(3))
	if _, err := Unfold(p, 9, 2); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := Unfold(p, 0, -1); err == nil {
		t.Error("negative depth accepted")
	}
}

func TestUnfoldGrowth(t *testing.T) {
	// On a 3-regular graph the unfolding grows like 3·2^(t-1).
	p := port.Canonical(graph.Petersen())
	sizes := []int{}
	for depth := 0; depth <= 4; depth++ {
		u, err := Unfold(p, 0, depth)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, u.Tree().N())
	}
	want := []int{1, 4, 10, 22, 46} // 1, 1+3, +6, +12, +24
	for i, w := range want {
		if sizes[i] != w {
			t.Fatalf("unfolding sizes %v, want %v", sizes, want)
		}
	}
}

func BenchmarkUnfold(b *testing.B) {
	p := port.Canonical(graph.Petersen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unfold(p, 0, 6); err != nil {
			b.Fatal(err)
		}
	}
}
