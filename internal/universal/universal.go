// Package universal builds truncated universal covers of port-numbered
// graphs — the unfolding trees that make the locality of anonymous
// computation literal (paper §3.3: "covering graphs (lifts) and universal
// covering graphs").
//
// The depth-t universal cover of (G, p) at node v is the port-numbered
// tree whose root corresponds to v and whose paths mirror every
// non-backtracking-by-edge walk out of v up to length t, with all port
// numbers preserved away from the horizon. A T-round algorithm cannot tell
// v in (G, p) from the root of the depth-(T+1) unfolding: the horizon
// nodes (depth T+1) carry approximate structure, but their initial states
// and messages need T+1 rounds to reach the root. The package's tests run
// library algorithms on both sides and assert equal outputs at the root —
// the strongest executable form of "T-round algorithms only see their
// T-ball".
package universal

import (
	"fmt"

	"weakmodels/internal/graph"
	"weakmodels/internal/port"
)

// Unfolding is a truncated universal cover: a port-numbered tree plus the
// projection of tree nodes onto base nodes.
type Unfolding struct {
	// Ports is the tree's port numbering (its Graph() is the tree).
	Ports *port.Numbering
	// Root is the tree node corresponding to the unfolding centre.
	Root int
	// Base[x] is the base node a tree node projects to.
	Base []int
	// Depth[x] is the distance from the root.
	Depth []int
}

// Tree returns the unfolded tree graph.
func (u *Unfolding) Tree() *graph.Graph { return u.Ports.Graph() }

// Unfold builds the depth-t universal cover of (G, p) at node v.
//
// Every tree node above the horizon copies its base node's full port
// structure: one tree edge per incident base edge (the edge back to the
// parent is reused, not duplicated), with the base's out- and in-port
// numbers on both endpoints. Horizon nodes (depth exactly t) keep only
// their parent edge, renumbered to port 1 — their structure is beyond the
// (t−1)-round observation horizon of the root.
func Unfold(p *port.Numbering, v, t int) (*Unfolding, error) {
	g := p.Graph()
	if v < 0 || v >= g.N() {
		return nil, fmt.Errorf("universal: node %d out of range", v)
	}
	if t < 0 {
		return nil, fmt.Errorf("universal: negative depth %d", t)
	}

	type nodeInfo struct {
		base   int
		depth  int
		parent int // tree parent, -1 for root
		// parentInPort is this node's base in-port on the parent edge
		// (which base edge the parent connection uses).
		parentInPort int
	}
	nodes := []nodeInfo{{base: v, depth: 0, parent: -1}}
	var edges []graph.Edge

	for x := 0; x < len(nodes); x++ {
		info := nodes[x]
		if info.depth == t {
			continue // horizon: no expansion
		}
		b := info.base
		for a := 0; a < g.Degree(b); a++ {
			u := g.Neighbor(b, a)
			inPort := p.InPortFrom(b, u)
			if info.parent != -1 && inPort == info.parentInPort {
				continue // this incident base edge is the parent edge
			}
			child := len(nodes)
			nodes = append(nodes, nodeInfo{
				base:         u,
				depth:        info.depth + 1,
				parent:       x,
				parentInPort: p.InPortFrom(u, b),
			})
			edges = append(edges, graph.Edge{U: x, V: child})
		}
	}

	tree, err := graph.New(len(nodes), edges)
	if err != nil {
		return nil, fmt.Errorf("universal: building tree: %w", err)
	}

	out := make([][]int, tree.N())
	in := make([][]int, tree.N())
	for x := 0; x < tree.N(); x++ {
		d := tree.Degree(x)
		out[x] = make([]int, d)
		in[x] = make([]int, d)
	}
	for x := 0; x < tree.N(); x++ {
		b := nodes[x].base
		if nodes[x].depth == t && nodes[x].parent != -1 {
			// Horizon: single edge on port 1.
			y := tree.Neighbor(x, 0)
			out[x][0] = 0
			in[x][0] = 1
			_ = y
			continue
		}
		for _, y := range tree.Neighbors(x) {
			u := nodes[y].base
			outPort := p.OutPortTo(b, u)
			inPort := p.InPortFrom(b, u)
			ax := tree.NeighborIndex(x, y)
			out[x][outPort-1] = ax
			in[x][ax] = inPort
		}
	}
	tp, err := port.FromRaw(tree, out, in)
	if err != nil {
		return nil, fmt.Errorf("universal: tree ports invalid: %w", err)
	}

	base := make([]int, tree.N())
	depth := make([]int, tree.N())
	for x, info := range nodes {
		base[x] = info.base
		depth[x] = info.depth
	}
	return &Unfolding{Ports: tp, Root: 0, Base: base, Depth: depth}, nil
}
