package port

import (
	"fmt"
	"math/rand"
	"testing"

	"weakmodels/internal/graph"
)

// destScan is the original O(deg) Dest implementation, kept as the
// reference the compiled routing table is tested against.
func destScan(p *Numbering, v, i int) Port {
	a := p.out[v][i-1]
	u := p.g.Neighbor(v, a)
	back := p.g.NeighborIndex(u, v)
	return Port{Node: u, Index: p.in[u][back]}
}

// sourceScan is the original O(deg²) Source implementation (double linear
// scan), kept as the reference for the reverse routing index.
func sourceScan(p *Numbering, u, j int) Port {
	for a, jj := range p.in[u] {
		if jj == j {
			v := p.g.Neighbor(u, a)
			back := p.g.NeighborIndex(v, u)
			for i, aa := range p.out[v] {
				if aa == back {
					return Port{Node: v, Index: i + 1}
				}
			}
		}
	}
	panic(fmt.Sprintf("port: no source for %v", Port{Node: u, Index: j}))
}

func routeTestNumberings(t *testing.T) map[string]*Numbering {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	graphs := map[string]*graph.Graph{
		"path6":     graph.Path(6),
		"cycle7":    graph.Cycle(7),
		"star5":     graph.Star(5),
		"complete5": graph.Complete(5),
		"petersen":  graph.Petersen(),
		"grid4x3":   graph.Grid(4, 3),
		"disjoint":  graph.DisjointUnion(graph.Cycle(3), graph.Path(4)),
	}
	ps := make(map[string]*Numbering)
	for name, g := range graphs {
		ps[name+"/canonical"] = Canonical(g)
		ps[name+"/random"] = Random(g, rng)
		ps[name+"/consistent"] = RandomConsistent(g, rng)
	}
	// Symmetric numberings (Lemma 15): the in/out pairing differs
	// structurally from the consistent constructions above.
	ps["cycle7/symmetric"] = SymmetricCycle(7)
	petersen := graph.Petersen()
	perms, err := graph.DoubleCoverFactorPermutations(petersen)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := FromPermutationFactors(petersen, perms)
	if err != nil {
		t.Fatal(err)
	}
	ps["petersen/factors"] = sym
	return ps
}

// TestRoutesMatchScans asserts the compiled table agrees with the original
// scan-based Dest/Source on every port of a spread of numberings.
func TestRoutesMatchScans(t *testing.T) {
	for name, p := range routeTestNumberings(t) {
		g := p.Graph()
		for v := 0; v < g.N(); v++ {
			for i := 1; i <= g.Degree(v); i++ {
				if got, want := p.Dest(v, i), destScan(p, v, i); got != want {
					t.Fatalf("%s: Dest(%d,%d) = %v, want %v", name, v, i, got, want)
				}
				if got, want := p.Source(v, i), sourceScan(p, v, i); got != want {
					t.Fatalf("%s: Source(%d,%d) = %v, want %v", name, v, i, got, want)
				}
			}
		}
	}
}

// TestRoutesSlotRoundTrip checks Slot/PortAt are inverse bijections and
// that DestSlot/SourceSlot are mutually inverse (p is a bijection on ports).
func TestRoutesSlotRoundTrip(t *testing.T) {
	for name, p := range routeTestNumberings(t) {
		g := p.Graph()
		r := p.Routes()
		total := 0
		for v := 0; v < g.N(); v++ {
			total += g.Degree(v)
		}
		if r.NumPorts() != total {
			t.Fatalf("%s: NumPorts = %d, want %d", name, r.NumPorts(), total)
		}
		for v := 0; v < g.N(); v++ {
			for i := 1; i <= g.Degree(v); i++ {
				s := r.Slot(v, i)
				if got := r.PortAt(s); got != (Port{Node: v, Index: i}) {
					t.Fatalf("%s: PortAt(Slot(%d,%d)) = %v", name, v, i, got)
				}
				if back := r.SourceSlot(r.DestSlot(s)); back != s {
					t.Fatalf("%s: SourceSlot(DestSlot(%d)) = %d", name, s, back)
				}
			}
		}
		// The offset/dest tables exposed for hot loops agree with the
		// accessor views.
		off, dest := r.Offsets(), r.DestTable()
		if len(off) != g.N()+1 || len(dest) != total {
			t.Fatalf("%s: raw table lengths %d/%d", name, len(off), len(dest))
		}
		src, node := r.SourceTable(), r.NodeTable()
		if len(src) != total || len(node) != total {
			t.Fatalf("%s: raw src/node table lengths %d/%d", name, len(src), len(node))
		}
		for s := 0; s < total; s++ {
			if int(dest[s]) != r.DestSlot(s) {
				t.Fatalf("%s: DestTable[%d] = %d, want %d", name, s, dest[s], r.DestSlot(s))
			}
			if int(src[s]) != r.SourceSlot(s) {
				t.Fatalf("%s: SourceTable[%d] = %d, want %d", name, s, src[s], r.SourceSlot(s))
			}
			if int(node[s]) != r.PortAt(s).Node {
				t.Fatalf("%s: NodeTable[%d] = %d, want %d", name, s, node[s], r.PortAt(s).Node)
			}
		}
	}
}

func BenchmarkSource(b *testing.B) {
	g := graph.Torus(30, 30)
	p := Canonical(g)
	p.Routes() // compile outside the timer
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for v := 0; v < g.N(); v++ {
				for j := 1; j <= g.Degree(v); j++ {
					_ = p.Source(v, j)
				}
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for v := 0; v < g.N(); v++ {
				for j := 1; j <= g.Degree(v); j++ {
					_ = sourceScan(p, v, j)
				}
			}
		}
	})
}
