package port

import (
	"fmt"
	"math/rand"
	"testing"

	"weakmodels/internal/graph"
)

// destScan is the original O(deg) Dest implementation, kept as the
// reference the compiled routing table is tested against.
func destScan(p *Numbering, v, i int) Port {
	a := p.out[v][i-1]
	u := p.g.Neighbor(v, a)
	back := p.g.NeighborIndex(u, v)
	return Port{Node: u, Index: p.in[u][back]}
}

// sourceScan is the original O(deg²) Source implementation (double linear
// scan), kept as the reference for the reverse routing index.
func sourceScan(p *Numbering, u, j int) Port {
	for a, jj := range p.in[u] {
		if jj == j {
			v := p.g.Neighbor(u, a)
			back := p.g.NeighborIndex(v, u)
			for i, aa := range p.out[v] {
				if aa == back {
					return Port{Node: v, Index: i + 1}
				}
			}
		}
	}
	panic(fmt.Sprintf("port: no source for %v", Port{Node: u, Index: j}))
}

func routeTestNumberings(t *testing.T) map[string]*Numbering {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	graphs := map[string]*graph.Graph{
		"path6":     graph.Path(6),
		"cycle7":    graph.Cycle(7),
		"star5":     graph.Star(5),
		"complete5": graph.Complete(5),
		"petersen":  graph.Petersen(),
		"grid4x3":   graph.Grid(4, 3),
		"disjoint":  graph.DisjointUnion(graph.Cycle(3), graph.Path(4)),
	}
	ps := make(map[string]*Numbering)
	for name, g := range graphs {
		ps[name+"/canonical"] = Canonical(g)
		ps[name+"/random"] = Random(g, rng)
		ps[name+"/consistent"] = RandomConsistent(g, rng)
	}
	// Symmetric numberings (Lemma 15): the in/out pairing differs
	// structurally from the consistent constructions above.
	ps["cycle7/symmetric"] = SymmetricCycle(7)
	petersen := graph.Petersen()
	perms, err := graph.DoubleCoverFactorPermutations(petersen)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := FromPermutationFactors(petersen, perms)
	if err != nil {
		t.Fatal(err)
	}
	ps["petersen/factors"] = sym
	return ps
}

// TestRoutesMatchScans asserts the compiled table agrees with the original
// scan-based Dest/Source on every port of a spread of numberings.
func TestRoutesMatchScans(t *testing.T) {
	for name, p := range routeTestNumberings(t) {
		g := p.Graph()
		for v := 0; v < g.N(); v++ {
			for i := 1; i <= g.Degree(v); i++ {
				if got, want := p.Dest(v, i), destScan(p, v, i); got != want {
					t.Fatalf("%s: Dest(%d,%d) = %v, want %v", name, v, i, got, want)
				}
				if got, want := p.Source(v, i), sourceScan(p, v, i); got != want {
					t.Fatalf("%s: Source(%d,%d) = %v, want %v", name, v, i, got, want)
				}
			}
		}
	}
}

// TestRoutesSlotRoundTrip checks Slot/PortAt are inverse bijections and
// that DestSlot/SourceSlot are mutually inverse (p is a bijection on ports).
func TestRoutesSlotRoundTrip(t *testing.T) {
	for name, p := range routeTestNumberings(t) {
		g := p.Graph()
		r := p.Routes()
		total := 0
		for v := 0; v < g.N(); v++ {
			total += g.Degree(v)
		}
		if r.NumPorts() != total {
			t.Fatalf("%s: NumPorts = %d, want %d", name, r.NumPorts(), total)
		}
		for v := 0; v < g.N(); v++ {
			for i := 1; i <= g.Degree(v); i++ {
				s := r.Slot(v, i)
				if got := r.PortAt(s); got != (Port{Node: v, Index: i}) {
					t.Fatalf("%s: PortAt(Slot(%d,%d)) = %v", name, v, i, got)
				}
				if back := r.SourceSlot(r.DestSlot(s)); back != s {
					t.Fatalf("%s: SourceSlot(DestSlot(%d)) = %d", name, s, back)
				}
			}
		}
		// The offset/dest tables exposed for hot loops agree with the
		// accessor views.
		off, dest := r.Offsets(), r.DestTable()
		if len(off) != g.N()+1 || len(dest) != total {
			t.Fatalf("%s: raw table lengths %d/%d", name, len(off), len(dest))
		}
		src, node := r.SourceTable(), r.NodeTable()
		if len(src) != total || len(node) != total {
			t.Fatalf("%s: raw src/node table lengths %d/%d", name, len(src), len(node))
		}
		for s := 0; s < total; s++ {
			if int(dest[s]) != r.DestSlot(s) {
				t.Fatalf("%s: DestTable[%d] = %d, want %d", name, s, dest[s], r.DestSlot(s))
			}
			if int(src[s]) != r.SourceSlot(s) {
				t.Fatalf("%s: SourceTable[%d] = %d, want %d", name, s, src[s], r.SourceSlot(s))
			}
			if int(node[s]) != r.PortAt(s).Node {
				t.Fatalf("%s: NodeTable[%d] = %d, want %d", name, s, node[s], r.PortAt(s).Node)
			}
		}
	}
}

func BenchmarkSource(b *testing.B) {
	g := graph.Torus(30, 30)
	p := Canonical(g)
	p.Routes() // compile outside the timer
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for v := 0; v < g.N(); v++ {
				for j := 1; j <= g.Degree(v); j++ {
					_ = p.Source(v, j)
				}
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for v := 0; v < g.N(); v++ {
				for j := 1; j <= g.Degree(v); j++ {
					_ = sourceScan(p, v, j)
				}
			}
		}
	})
}

// TestLocalityPermutesRoutes: the locality view is the routing table under
// the BFS rank permutation — same degrees per node, same destination node
// and in-port index for every out-port — and contiguous: rank r's slots
// sit at Off[r]..Off[r+1] over the BFS order.
func TestLocalityPermutesRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, g := range []*graph.Graph{
		graph.Torus(5, 4),
		graph.Star(6),
		graph.Petersen(),
		graph.DisjointUnion(graph.Cycle(3), graph.MustNew(2, nil)),
	} {
		for _, p := range []*Numbering{Canonical(g), Random(g, rng)} {
			loc := p.Locality()
			order := graph.BFSOrder(g)
			if len(loc.Order) != g.N() || int(loc.Off[g.N()]) != p.Routes().NumPorts() {
				t.Fatalf("%v: locality shape wrong", g)
			}
			rank := make([]int32, g.N())
			for r, v := range order {
				if int(loc.Order[r]) != v {
					t.Fatalf("%v: Order[%d]=%d, BFSOrder says %d", g, r, loc.Order[r], v)
				}
				rank[v] = int32(r)
				if deg := int(loc.Off[r+1] - loc.Off[r]); deg != g.Degree(v) {
					t.Fatalf("%v: rank %d (node %d) has %d slots, want degree %d",
						g, r, v, deg, g.Degree(v))
				}
			}
			// Every out-port (v, j) must land at the same destination port
			// as the id-space table, translated through the rank mapping.
			for r, v := range order {
				for j := 1; j <= g.Degree(v); j++ {
					want := p.Dest(v, j)
					s2 := loc.Off[r] + int32(j-1)
					d2 := loc.Dest[s2]
					// Find the rank owning slot d2.
					ur := rank[want.Node]
					if d2 < loc.Off[ur] || d2 >= loc.Off[ur+1] {
						t.Fatalf("%v: locality dest of (%d,%d) lands outside node %d's slots",
							g, v, j, want.Node)
					}
					if idx := int(d2-loc.Off[ur]) + 1; idx != want.Index {
						t.Fatalf("%v: locality dest of (%d,%d) is in-port %d, want %d",
							g, v, j, idx, want.Index)
					}
				}
			}
			if again := p.Locality(); again != loc {
				t.Errorf("%v: Locality rebuilt instead of returning the cache", g)
			}
		}
	}
}
