package port

import (
	"math/rand"
	"testing"

	"weakmodels/internal/graph"
)

func testGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.Path(4),
		graph.Cycle(5),
		graph.Star(4),
		graph.Complete(4),
		graph.Figure1Graph(),
		graph.Petersen(),
		graph.Grid(2, 3),
	}
}

// checkBijection verifies that Dest is a bijection P(G) → P(G) with
// A(p) = A(G), i.e. a genuine port numbering per Section 1.2.
func checkBijection(t *testing.T, p *Numbering) {
	t.Helper()
	g := p.Graph()
	seen := make(map[Port]Port)
	for v := 0; v < g.N(); v++ {
		for i := 1; i <= g.Degree(v); i++ {
			d := p.Dest(v, i)
			if !g.HasEdge(v, d.Node) {
				t.Fatalf("Dest(%d,%d)=%v is not a neighbour", v, i, d)
			}
			if d.Index < 1 || d.Index > g.Degree(d.Node) {
				t.Fatalf("Dest(%d,%d)=%v index out of range", v, i, d)
			}
			if prev, dup := seen[d]; dup {
				t.Fatalf("two ports map to %v (also %v)", d, prev)
			}
			seen[d] = Port{Node: v, Index: i}
			// Source must invert Dest.
			s := p.Source(d.Node, d.Index)
			if s.Node != v || s.Index != i {
				t.Fatalf("Source(Dest(%d,%d)) = %v", v, i, s)
			}
		}
	}
	// A(p) = A(G): every ordered adjacency pair must appear.
	for v := 0; v < g.N(); v++ {
		hit := make(map[int]bool)
		for i := 1; i <= g.Degree(v); i++ {
			hit[p.Dest(v, i).Node] = true
		}
		for _, u := range g.Neighbors(v) {
			if !hit[u] {
				t.Fatalf("node %d has no port to neighbour %d", v, u)
			}
		}
	}
}

func TestCanonicalIsValidAndConsistent(t *testing.T) {
	for _, g := range testGraphs() {
		p := Canonical(g)
		checkBijection(t, p)
		if !p.IsConsistent() {
			t.Errorf("canonical numbering of %v not consistent", g)
		}
	}
}

func TestRandomIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, g := range testGraphs() {
		for trial := 0; trial < 10; trial++ {
			checkBijection(t, Random(g, rng))
		}
	}
}

func TestRandomConsistentIsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, g := range testGraphs() {
		for trial := 0; trial < 10; trial++ {
			p := RandomConsistent(g, rng)
			checkBijection(t, p)
			if !p.IsConsistent() {
				t.Fatalf("RandomConsistent produced inconsistent numbering on %v", g)
			}
		}
	}
}

func TestRandomIsSometimesInconsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	inconsistent := 0
	for trial := 0; trial < 50; trial++ {
		if !Random(graph.Cycle(5), rng).IsConsistent() {
			inconsistent++
		}
	}
	if inconsistent == 0 {
		t.Error("50 random numberings of C5 all consistent — suspicious")
	}
}

func TestOutInPortHelpers(t *testing.T) {
	g := graph.Figure1Graph()
	p := Canonical(g)
	for v := 0; v < g.N(); v++ {
		for i := 1; i <= g.Degree(v); i++ {
			u := p.OutNeighbor(v, i)
			if p.OutPortTo(v, u) != i {
				t.Errorf("OutPortTo(%d,%d) != %d", v, u, i)
			}
			d := p.Dest(v, i)
			if p.InPortFrom(d.Node, v) != d.Index {
				t.Errorf("InPortFrom(%d,%d) = %d, want %d",
					d.Node, v, p.InPortFrom(d.Node, v), d.Index)
			}
		}
	}
	if p.OutPortTo(3, 1) != 0 || p.InPortFrom(3, 1) != 0 {
		t.Error("non-neighbour should yield port 0")
	}
}

func TestSymmetricCycle(t *testing.T) {
	for _, n := range []int{3, 4, 6, 7} {
		p := SymmetricCycle(n)
		checkBijection(t, p)
		if !p.IsConsistent() {
			t.Errorf("SymmetricCycle(%d) not consistent", n)
		}
		// Every node's port 1 must reach the neighbour's port 2.
		for v := 0; v < n; v++ {
			if d := p.Dest(v, 1); d.Index != 2 {
				t.Errorf("n=%d: Dest(%d,1).Index = %d, want 2", n, v, d.Index)
			}
			if d := p.Dest(v, 2); d.Index != 1 {
				t.Errorf("n=%d: Dest(%d,2).Index = %d, want 1", n, v, d.Index)
			}
		}
	}
}

func TestFromPermutationFactors(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(5), graph.Petersen(), graph.NoOneFactorCubic()} {
		perms, err := graph.DoubleCoverFactorPermutations(g)
		if err != nil {
			t.Fatal(err)
		}
		p, err := FromPermutationFactors(g, perms)
		if err != nil {
			t.Fatal(err)
		}
		checkBijection(t, p)
		// The defining property: out-port i lands on in-port i (R(i,j)
		// empty off the diagonal).
		for v := 0; v < g.N(); v++ {
			for i := 1; i <= g.Degree(v); i++ {
				if d := p.Dest(v, i); d.Index != i {
					t.Fatalf("%v: Dest(%d,%d) = %v, want in-port %d", g, v, i, d, i)
				}
			}
		}
	}
}

func TestFromPermutationFactorsRejects(t *testing.T) {
	g := graph.Cycle(4)
	if _, err := FromPermutationFactors(g, [][]int{{1, 2, 3, 0}}); err == nil {
		t.Error("wrong factor count accepted")
	}
	if _, err := FromPermutationFactors(graph.Path(3), nil); err == nil {
		t.Error("irregular graph accepted")
	}
}

func TestAllEnumeration(t *testing.T) {
	g := graph.Path(3) // degrees 1,2,1: 2 out × 2 in per middle node... product = (1!·1!·2!)² = 4
	all, err := All(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("|All(P3)| = %d, want 4", len(all))
	}
	for _, p := range all {
		checkBijection(t, p)
	}
	cons, err := AllConsistent(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) != 2 {
		t.Fatalf("|AllConsistent(P3)| = %d, want 2", len(cons))
	}
	for _, p := range cons {
		if !p.IsConsistent() {
			t.Fatal("AllConsistent yielded inconsistent numbering")
		}
	}
}

func TestAllRespectsLimit(t *testing.T) {
	if _, err := All(graph.Complete(4), 10); err == nil {
		t.Error("limit not enforced")
	}
}

func TestLocalType(t *testing.T) {
	p := SymmetricCycle(5)
	for v := 0; v < 5; v++ {
		lt := LocalType(p, v, 3)
		if lt[0] != 2 || lt[1] != 1 || lt[2] != 0 {
			t.Errorf("LocalType(%d) = %v, want [2 1 0]", v, lt)
		}
	}
}

func TestConsistencyDetectsInconsistent(t *testing.T) {
	// Build C4 numbering where node 0's port 1 → node 1's port 1, but node
	// 1's port 1 → node 2: definitely not an involution.
	g := graph.Cycle(4)
	rng := rand.New(rand.NewSource(23))
	found := false
	for trial := 0; trial < 100 && !found; trial++ {
		p := Random(g, rng)
		if !p.IsConsistent() {
			found = true
			// Verify by hand that some port round-trips wrongly.
			bad := false
			for v := 0; v < g.N() && !bad; v++ {
				for i := 1; i <= g.Degree(v); i++ {
					d := p.Dest(v, i)
					dd := p.Dest(d.Node, d.Index)
					if dd.Node != v || dd.Index != i {
						bad = true
						break
					}
				}
			}
			if !bad {
				t.Fatal("IsConsistent=false but involution holds")
			}
		}
	}
	if !found {
		t.Skip("no inconsistent sample drawn")
	}
}

func BenchmarkPortNumbering(b *testing.B) {
	g := graph.Torus(10, 10)
	rng := rand.New(rand.NewSource(24))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := Random(g, rng)
		if p.IsConsistent() {
			b.Log("unlikely")
		}
	}
}
