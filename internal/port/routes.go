package port

import "weakmodels/internal/graph"

// Routes is a port numbering compiled into a flat CSR-style routing table.
// Ports are mapped to dense int32 "slots": the ports (v,1)..(v,deg(v)) of
// node v occupy slots off[v]..off[v+1]-1 in order. The table answers
// Dest/Source queries with two array loads, which makes it the substrate of
// the execution engine's round loop: a message written at out-slot s lands
// at inbox slot dest[s] with no neighbour scans.
//
// A Routes is immutable and safe for concurrent use.
type Routes struct {
	// off has length n+1; off[v] is the first slot of node v (CSR offsets).
	off []int32
	// node[s] is the node owning slot s.
	node []int32
	// dest[s] is the slot of p((v,i)) where s is the slot of out-port (v,i).
	dest []int32
	// src[t] is the slot of p⁻¹((u,j)) where t is the slot of in-port (u,j):
	// the reverse index making Source O(1).
	src []int32
}

// compileRoutes flattens the out/in bijections of p into slot arrays.
// It runs once per numbering (see Numbering.Routes).
func compileRoutes(p *Numbering) *Routes {
	g := p.g
	n := g.N()
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(g.Degree(v))
	}
	total := int(off[n])
	r := &Routes{
		off:  off,
		node: make([]int32, total),
		dest: make([]int32, total),
		src:  make([]int32, total),
	}
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		for j := 0; j < deg; j++ {
			r.node[int(off[v])+j] = int32(v)
			a := p.out[v][j]
			u := g.Neighbor(v, a)
			back := g.NeighborIndex(u, v)
			i := p.in[u][back]
			s := off[v] + int32(j)
			t := off[u] + int32(i-1)
			r.dest[s] = t
			r.src[t] = s
		}
	}
	return r
}

// NumPorts returns the total number of ports |P(G)| = Σ deg(v).
func (r *Routes) NumPorts() int { return len(r.dest) }

// Slot returns the dense slot of port (v,i), 1-based i.
func (r *Routes) Slot(v, i int) int { return int(r.off[v]) + i - 1 }

// PortAt is the inverse of Slot.
func (r *Routes) PortAt(slot int) Port {
	v := r.node[slot]
	return Port{Node: int(v), Index: slot - int(r.off[v]) + 1}
}

// DestSlot returns the slot of p(port-at-slot-s).
func (r *Routes) DestSlot(s int) int { return int(r.dest[s]) }

// SourceSlot returns the slot of p⁻¹(port-at-slot-t).
func (r *Routes) SourceSlot(t int) int { return int(r.src[t]) }

// Offsets exposes the CSR offset array (length n+1) for hot loops.
// Callers must not modify it.
func (r *Routes) Offsets() []int32 { return r.off }

// DestTable exposes the raw out-slot → inbox-slot table for hot loops.
// Callers must not modify it.
func (r *Routes) DestTable() []int32 { return r.dest }

// SourceTable exposes the raw in-slot → out-slot table (the inverse of
// DestTable) for hot loops; the async executor uses it to find, for each
// per-node message queue, the port that feeds it. Callers must not modify
// it.
func (r *Routes) SourceTable() []int32 { return r.src }

// NodeTable exposes the slot → owning-node table for hot loops. Callers
// must not modify it.
func (r *Routes) NodeTable() []int32 { return r.node }

// Locality is the routing table re-indexed by the graph's BFS locality
// order (graph.BFSOrder): node ranks replace node ids, so the inbox slots
// of the nodes a BFS shard owns form one contiguous range of the arena —
// the per-shard arena carve-up the engine's shard runtime is built on.
//
// Rank r owns slots Off[r]..Off[r+1]-1; slot Off[r]+j is out-port j+1 and
// in-port j+1 of node Order[r], and Dest maps each locality out-slot to the
// locality inbox slot its message lands in (preserving in-port indices, so
// vector-mode inboxes are unchanged). Like Routes, a Locality is immutable
// and safe for concurrent use; callers must not modify the tables.
type Locality struct {
	// Order is the BFS locality order: Order[r] is the node of rank r.
	Order []int32
	// Off has length n+1; Off[r] is the first locality slot of rank r.
	Off []int32
	// Dest maps each locality out-slot to its destination locality inbox
	// slot.
	Dest []int32
}

// compileLocality permutes the routing table of p into BFS rank space.
// It runs once per numbering (see Numbering.Locality).
func compileLocality(p *Numbering) *Locality {
	r := p.Routes()
	order := graph.BFSOrder(p.g)
	n := len(order)
	loc := &Locality{
		Order: make([]int32, n),
		Off:   make([]int32, n+1),
		Dest:  make([]int32, len(r.dest)),
	}
	rank := make([]int32, n)
	for rk, v := range order {
		loc.Order[rk] = int32(v)
		rank[v] = int32(rk)
		loc.Off[rk+1] = loc.Off[rk] + int32(p.g.Degree(v))
	}
	for rk, v := range order {
		lo := r.off[v]
		deg := r.off[v+1] - lo
		for j := int32(0); j < deg; j++ {
			d := r.dest[lo+j]
			u := r.node[d]
			loc.Dest[loc.Off[rk]+j] = loc.Off[rank[u]] + (d - r.off[u])
		}
	}
	return loc
}

// Locality returns the BFS-rank-permuted routing table of p, building it
// on first use. The table is cached: repeated calls are free.
func (p *Numbering) Locality() *Locality {
	p.localityOnce.Do(func() { p.locality = compileLocality(p) })
	return p.locality
}
