// Package port implements port numberings of graphs (Section 1.2 of the
// paper): bijections p : P(G) → P(G) on the set of ports P(G) = {(v,i) :
// v ∈ V, i ∈ [deg(v)]} with A(p) = A(G), together with consistency
// (p ∘ p = id), canonical and random constructions, the symmetric numberings
// of Lemma 15, and enumeration for small graphs.
//
// Every port numbering decomposes uniquely into two bijections per node:
// an out-assignment (which neighbour each out-port points at) and an
// in-assignment (which in-port each incident edge delivers into). The
// package stores that decomposition directly.
package port

import (
	"fmt"
	"math/rand"
	"sync"

	"weakmodels/internal/graph"
)

// Port identifies port (Node, Index) with 1-based Index ∈ [deg(Node)].
type Port struct {
	Node  int
	Index int
}

// String formats a port as "(v,i)".
func (p Port) String() string { return fmt.Sprintf("(%d,%d)", p.Node, p.Index) }

// Numbering is a port numbering of a fixed graph. Immutable after
// construction; build with one of the constructors below.
type Numbering struct {
	g *graph.Graph
	// out[v][i] = the adjacency index (into g.Neighbors(v)) that out-port
	// i+1 of v points at.
	out [][]int
	// in[v][a] = the in-port index (1-based) of v into which the edge from
	// adjacency-neighbour a of v delivers.
	in [][]int

	// routes is the flat routing table, compiled lazily on first use and
	// shared by Dest/Source and the execution engine.
	routesOnce sync.Once
	routes     *Routes
	// locality is the BFS-rank-permuted routing table (see Locality),
	// compiled lazily for the engine's shard runtime.
	localityOnce sync.Once
	locality     *Locality
}

// Routes returns the compiled flat routing table of p, building it on first
// use. The table is cached: repeated calls are free.
func (p *Numbering) Routes() *Routes {
	p.routesOnce.Do(func() { p.routes = compileRoutes(p) })
	return p.routes
}

// Graph returns the underlying graph.
func (p *Numbering) Graph() *graph.Graph { return p.g }

// Dest returns p((v,i)): the port that messages sent by v to out-port i
// (1-based) arrive at. O(1) via the compiled routing table.
func (p *Numbering) Dest(v, i int) Port {
	r := p.Routes()
	return r.PortAt(int(r.dest[int(r.off[v])+i-1]))
}

// Source returns p⁻¹((u,j)): the port whose messages arrive at in-port j of
// node u. O(1) via the reverse routing index.
func (p *Numbering) Source(u, j int) Port {
	r := p.Routes()
	return r.PortAt(int(r.src[int(r.off[u])+j-1]))
}

// OutNeighbor returns the node that out-port i (1-based) of v points at.
func (p *Numbering) OutNeighbor(v, i int) int {
	return p.g.Neighbor(v, p.out[v][i-1])
}

// OutPortTo returns π(v,u) of Theorem 4: the out-port of v pointing at
// neighbour u (1-based), or 0 if u is not a neighbour.
func (p *Numbering) OutPortTo(v, u int) int {
	a := p.g.NeighborIndex(v, u)
	if a < 0 {
		return 0
	}
	for i, aa := range p.out[v] {
		if aa == a {
			return i + 1
		}
	}
	return 0
}

// InPortFrom returns the in-port of v on which messages from neighbour u
// arrive (1-based), or 0 if u is not a neighbour.
func (p *Numbering) InPortFrom(v, u int) int {
	a := p.g.NeighborIndex(v, u)
	if a < 0 {
		return 0
	}
	return p.in[v][a]
}

// IsConsistent reports whether p is an involution: p(p((v,i))) = (v,i) for
// every port (Section 1.2, Figure 2).
func (p *Numbering) IsConsistent() bool {
	for v := 0; v < p.g.N(); v++ {
		for i := 1; i <= p.g.Degree(v); i++ {
			d := p.Dest(v, i)
			dd := p.Dest(d.Node, d.Index)
			if dd.Node != v || dd.Index != i {
				return false
			}
		}
	}
	return true
}

// Validate checks the internal bijection invariants; constructors call it.
func (p *Numbering) Validate() error {
	for v := 0; v < p.g.N(); v++ {
		d := p.g.Degree(v)
		if len(p.out[v]) != d || len(p.in[v]) != d {
			return fmt.Errorf("port: node %d has %d out / %d in assignments, want %d",
				v, len(p.out[v]), len(p.in[v]), d)
		}
		seenOut := make([]bool, d)
		seenIn := make([]bool, d)
		for i := 0; i < d; i++ {
			a := p.out[v][i]
			if a < 0 || a >= d || seenOut[a] {
				return fmt.Errorf("port: node %d out assignment not a bijection", v)
			}
			seenOut[a] = true
			j := p.in[v][i]
			if j < 1 || j > d || seenIn[j-1] {
				return fmt.Errorf("port: node %d in assignment not a bijection", v)
			}
			seenIn[j-1] = true
		}
	}
	return nil
}

// FromRaw builds a numbering from explicit per-node assignments:
// out[v][i] is the adjacency index out-port i+1 points at, and in[v][a] is
// the (1-based) in-port receiving from adjacency-neighbour a. The slices
// are retained; callers must not modify them afterwards.
func FromRaw(g *graph.Graph, out, in [][]int) (*Numbering, error) {
	p := &Numbering{g: g, out: out, in: in}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Canonical returns the natural consistent port numbering: out-port i of v
// points at its i-th neighbour in adjacency order, and in-port numbers equal
// the receiver's adjacency index of the sender. This numbering is always
// consistent.
func Canonical(g *graph.Graph) *Numbering {
	n := g.N()
	out := make([][]int, n)
	in := make([][]int, n)
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		out[v] = make([]int, d)
		in[v] = make([]int, d)
		for i := 0; i < d; i++ {
			out[v][i] = i
			in[v][i] = i + 1
		}
	}
	p := &Numbering{g: g, out: out, in: in}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// Random returns a uniformly random (generally inconsistent) port numbering:
// independent random out and in bijections at every node.
func Random(g *graph.Graph, rng *rand.Rand) *Numbering {
	n := g.N()
	out := make([][]int, n)
	in := make([][]int, n)
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		out[v] = rng.Perm(d)
		in[v] = make([]int, d)
		for i, x := range rng.Perm(d) {
			in[v][i] = x + 1
		}
	}
	p := &Numbering{g: g, out: out, in: in}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// RandomConsistent returns a uniformly random consistent port numbering:
// a random out bijection per node, with in-ports forced by consistency
// (p((u,i)) = (v,j) requires p((v,j)) = (u,i)).
func RandomConsistent(g *graph.Graph, rng *rand.Rand) *Numbering {
	n := g.N()
	out := make([][]int, n)
	for v := 0; v < n; v++ {
		out[v] = rng.Perm(g.Degree(v))
	}
	return fromOutConsistent(g, out)
}

// fromOutConsistent builds the unique consistent numbering with the given
// out assignment: the in-port of v for the edge from u equals u's slot in
// v's out assignment.
func fromOutConsistent(g *graph.Graph, out [][]int) *Numbering {
	n := g.N()
	in := make([][]int, n)
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		in[v] = make([]int, d)
		for i := 0; i < d; i++ {
			// out[v][i] = adjacency index a: out-port i+1 of v points at
			// neighbour a. Consistency: the same port is also the in-port
			// for messages from that neighbour.
			in[v][out[v][i]] = i + 1
		}
	}
	p := &Numbering{g: g, out: out, in: in}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// FromPermutationFactors builds the symmetric port numbering of Lemma 15
// from the permutations π_1..π_k produced by
// graph.DoubleCoverFactorPermutations: out-port i of node u points at
// π_i(u), and the in-port of v for the edge from u is the index i with
// π_i(u) = v. Under this numbering R(i,j) ≠ ∅ iff i = j, and all nodes of a
// regular graph are bisimilar in K₊,₊.
func FromPermutationFactors(g *graph.Graph, perms [][]int) (*Numbering, error) {
	k, reg := g.IsRegular()
	if !reg || len(perms) != k {
		return nil, fmt.Errorf("port: need a %d-regular graph with %d factors, got %d factors",
			k, k, len(perms))
	}
	n := g.N()
	out := make([][]int, n)
	in := make([][]int, n)
	for v := 0; v < n; v++ {
		out[v] = make([]int, k)
		in[v] = make([]int, k)
	}
	for i, perm := range perms {
		for u, v := range perm {
			au := g.NeighborIndex(u, v)
			if au < 0 {
				return nil, fmt.Errorf("port: factor %d maps %d to non-neighbour %d", i+1, u, v)
			}
			out[u][i] = au
			// The edge arriving at v from u carries in-port i+1: u sent on
			// its port i+1 and, symmetrically, v's in-port for that edge is
			// also i+1 (each factor pairs out-port i with in-port i).
			av := g.NeighborIndex(v, u)
			in[v][av] = i + 1
		}
	}
	p := &Numbering{g: g, out: out, in: in}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("port: factors do not form a numbering: %w", err)
	}
	return p, nil
}

// SymmetricCycle returns the consistent symmetric numbering of the cycle
// C_n in which every node's port 1 points clockwise and port 2
// counter-clockwise — p((v_i,1)) = (v_{i+1},2) and p((v_i,2)) = (v_{i-1},1),
// which is an involution. Under it all nodes are bisimilar in K₊,₊, which is
// the standard argument that, e.g., maximal independent set is not in VVc
// (Section 3.1).
func SymmetricCycle(n int) *Numbering {
	g := graph.Cycle(n)
	out := make([][]int, n)
	in := make([][]int, n)
	for v := 0; v < n; v++ {
		succ := (v + 1) % n
		pred := (v + n - 1) % n
		aSucc := g.NeighborIndex(v, succ)
		aPred := g.NeighborIndex(v, pred)
		out[v] = make([]int, 2)
		in[v] = make([]int, 2)
		out[v][0] = aSucc // port 1 → successor
		out[v][1] = aPred // port 2 → predecessor
		in[v][aPred] = 2  // predecessor sent on its port 1, arrives at port 2
		in[v][aSucc] = 1  // successor sent on its port 2, arrives at port 1
	}
	p := &Numbering{g: g, out: out, in: in}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// All enumerates every port numbering of g (all combinations of per-node out
// and in bijections). The count is ∏_v (deg(v)!)², so only call this on very
// small graphs; the limit guards against explosion.
func All(g *graph.Graph, limit int) ([]*Numbering, error) {
	outChoices, err := perNodePerms(g, limit)
	if err != nil {
		return nil, err
	}
	inChoices, err := perNodePerms(g, limit)
	if err != nil {
		return nil, err
	}
	var result []*Numbering
	for _, out := range outChoices {
		for _, in0 := range inChoices {
			in := make([][]int, g.N())
			for v := range in0 {
				in[v] = make([]int, len(in0[v]))
				for i, x := range in0[v] {
					in[v][i] = x + 1
				}
			}
			p := &Numbering{g: g, out: deepCopy(out), in: in}
			if err := p.Validate(); err != nil {
				return nil, err
			}
			result = append(result, p)
			if len(result) > limit {
				return nil, fmt.Errorf("port: more than %d numberings", limit)
			}
		}
	}
	return result, nil
}

// AllConsistent enumerates every consistent port numbering of g
// (∏_v deg(v)! candidates).
func AllConsistent(g *graph.Graph, limit int) ([]*Numbering, error) {
	outChoices, err := perNodePerms(g, limit)
	if err != nil {
		return nil, err
	}
	result := make([]*Numbering, 0, len(outChoices))
	for _, out := range outChoices {
		result = append(result, fromOutConsistent(g, deepCopy(out)))
		if len(result) > limit {
			return nil, fmt.Errorf("port: more than %d consistent numberings", limit)
		}
	}
	return result, nil
}

// perNodePerms returns the cartesian product of permutations of [deg(v)]
// across nodes, bounded by limit.
func perNodePerms(g *graph.Graph, limit int) ([][][]int, error) {
	acc := [][][]int{make([][]int, 0, g.N())}
	for v := 0; v < g.N(); v++ {
		perms := permutations(g.Degree(v))
		var next [][][]int
		for _, partial := range acc {
			for _, pm := range perms {
				ext := make([][]int, len(partial), len(partial)+1)
				copy(ext, partial)
				ext = append(ext, pm)
				next = append(next, ext)
				if len(next) > limit {
					return nil, fmt.Errorf("port: enumeration exceeds limit %d", limit)
				}
			}
		}
		acc = next
	}
	return acc, nil
}

// permutations returns all permutations of 0..d-1.
func permutations(d int) [][]int {
	if d == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var rec func(cur []int, used []bool)
	rec = func(cur []int, used []bool) {
		if len(cur) == d {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for x := 0; x < d; x++ {
			if !used[x] {
				used[x] = true
				rec(append(cur, x), used)
				used[x] = false
			}
		}
	}
	rec(nil, make([]bool, d))
	return out
}

func deepCopy(xs [][]int) [][]int {
	out := make([][]int, len(xs))
	for i, x := range xs {
		out[i] = append([]int(nil), x...)
	}
	return out
}

// LocalType returns the local type t(v) of Theorem 17 under numbering p:
// the tuple (j_1, ..., j_Δ) where j_i is the in-port of the neighbour that
// out-port i of v reaches (0 for i > deg(v)).
func LocalType(p *Numbering, v, delta int) []int {
	t := make([]int, delta)
	for i := 1; i <= p.g.Degree(v); i++ {
		t[i-1] = p.Dest(v, i).Index
	}
	return t
}
