package port

import (
	"math/rand"
	"testing"
	"testing/quick"

	"weakmodels/internal/graph"
)

func randomGraphFromSeed(seed int64, maxN int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(maxN)
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(3) == 0 {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	return graph.MustNew(n, edges)
}

// TestQuickDestSourceInverse: Source ∘ Dest = id on every port of every
// random numbering of every random graph.
func TestQuickDestSourceInverse(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed, 9)
		rng := rand.New(rand.NewSource(seed ^ 0x5f5f))
		p := Random(g, rng)
		for v := 0; v < g.N(); v++ {
			for i := 1; i <= g.Degree(v); i++ {
				d := p.Dest(v, i)
				s := p.Source(d.Node, d.Index)
				if s.Node != v || s.Index != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickConsistentIsInvolution: RandomConsistent always yields p∘p = id.
func TestQuickConsistentIsInvolution(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed, 9)
		rng := rand.New(rand.NewSource(seed ^ 0x7a7a))
		return RandomConsistent(g, rng).IsConsistent()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickOutPortRoundTrip: OutPortTo inverts OutNeighbor everywhere.
func TestQuickOutPortRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed, 9)
		rng := rand.New(rand.NewSource(seed ^ 0x1c1c))
		p := Random(g, rng)
		for v := 0; v < g.N(); v++ {
			for i := 1; i <= g.Degree(v); i++ {
				if p.OutPortTo(v, p.OutNeighbor(v, i)) != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickLocalTypePermutation: under a consistent numbering, the local
// type entries of node v are exactly the in-ports of its neighbours — each
// in [1, deg(neighbour)].
func TestQuickLocalTypePermutation(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed, 9)
		rng := rand.New(rand.NewSource(seed ^ 0x33aa))
		p := RandomConsistent(g, rng)
		delta := g.MaxDegree()
		for v := 0; v < g.N(); v++ {
			lt := LocalType(p, v, delta)
			for i := 1; i <= g.Degree(v); i++ {
				u := p.OutNeighbor(v, i)
				if lt[i-1] < 1 || lt[i-1] > g.Degree(u) {
					return false
				}
			}
			for i := g.Degree(v); i < delta; i++ {
				if lt[i] != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
