package compile_test

import (
	"fmt"

	"weakmodels/internal/compile"
	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/logic"
	"weakmodels/internal/port"
)

// Example compiles a modal formula into a local algorithm (Theorem 2) and
// runs it: the algorithm's outputs are exactly the formula's truth set, and
// its round count is the modal depth.
func Example() {
	f := logic.MustParse("<*,*> q1") // "I have a leaf neighbour"
	g := graph.Path(4)
	m, variant, err := compile.MachineFromFormula(f, g.MaxDegree())
	if err != nil {
		panic(err)
	}
	res, err := engine.Run(m, port.Canonical(g), engine.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("variant:", variant)
	fmt.Println("class:", m.Class())
	fmt.Println("rounds:", res.Rounds)
	fmt.Println("outputs:", res.Output)
	// Output:
	// variant: K(−,−)
	// class: Set∩Broadcast
	// rounds: 1
	// outputs: [0 1 1 0]
}

// ExampleFormulaFromMachine unfolds a one-round machine into a formula.
func ExampleFormulaFromMachine() {
	m, _, err := compile.MachineFromFormula(logic.MustParse("<*,*> q2"), 2)
	if err != nil {
		panic(err)
	}
	formulas, variant, err := compile.FormulaFromMachine(m, 2, 1, compile.Limits{})
	if err != nil {
		panic(err)
	}
	fmt.Println("variant:", variant)
	fmt.Println("outputs recovered:", len(formulas))
	// Output:
	// variant: K(−,−)
	// outputs recovered: 2
}
