package compile

import (
	"fmt"
	"sort"

	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/machine"
)

// MachineFromFormulas compiles a *tuple* of formulas into one machine —
// the paper's remark that non-binary outputs "can be handled by using
// tuples of formulas" (Section 4.3). The machine evaluates every formula
// simultaneously (one shared run of md_max rounds) and outputs the label
// of the first formula, in the given label order, that holds at the node;
// fallback is the label of the empty string if no formula holds.
//
// All formulas must live in the same model variant; the machine's class is
// the weakest class admitting all their fragments.
func MachineFromFormulas(formulas map[machine.Output]logic.Formula, delta int) (machine.Machine, kripke.Variant, error) {
	if len(formulas) == 0 {
		return nil, 0, fmt.Errorf("compile: no formulas")
	}
	labels := make([]machine.Output, 0, len(formulas))
	for l := range formulas {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })

	// Combine into one formula per label via a fresh conjunction so the
	// subformula closure is shared, then compile the disjunction-free
	// union: we compile the single formula OR over labels (to fix the
	// variant and closure) but track each root separately. Simplest
	// construction: compile ⋁ formulas to get variant/class, then one
	// machine per label sharing nothing — run them in lockstep inside one
	// wrapper machine.
	var union logic.Formula = logic.Bot{}
	for _, l := range labels {
		union = logic.Or{L: union, R: formulas[l]}
	}
	variant, err := VariantForFormula(union)
	if err != nil {
		return nil, 0, err
	}
	subs := make([]machine.Machine, len(labels))
	var class machine.Class
	for i, l := range labels {
		m, v, err := MachineFromFormula(formulas[l], delta)
		if err != nil {
			return nil, 0, fmt.Errorf("compile: formula for %q: %w", l, err)
		}
		if propositionalOnly(formulas[l]) {
			// Propositional formulas compile to the weakest variant; they
			// are compatible with any.
			v = variant
		}
		if v != variant {
			return nil, 0, fmt.Errorf("compile: formula for %q lives in %v, others in %v", l, v, variant)
		}
		subs[i] = m
		if i == 0 {
			class = m.Class()
		} else {
			class = weakerJoin(class, m.Class())
		}
	}

	type multiState struct {
		States []machine.State
		Done   bool
		Out    machine.Output
	}
	decide := func(states []machine.State) (machine.Output, bool) {
		allDone := true
		for i, s := range states {
			out, done := subs[i].Halted(s)
			if !done {
				allDone = false
				continue
			}
			_ = out
		}
		if !allDone {
			return "", false
		}
		for i, s := range states {
			if out, _ := subs[i].Halted(s); out == "1" {
				return labels[i], true
			}
		}
		return "", true
	}
	name := fmt.Sprintf("compiled-tuple[%d formulas]", len(labels))
	return &machine.Func{
		MachineName:  name,
		MachineClass: class,
		MaxDeg:       delta,
		InitFunc: func(deg int) machine.State {
			sts := make([]machine.State, len(subs))
			for i, m := range subs {
				sts[i] = m.Init(deg)
			}
			out, done := decide(sts)
			return multiState{States: sts, Done: done, Out: out}
		},
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(multiState)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			x := s.(multiState)
			parts := make([]string, len(subs))
			for i, m := range subs {
				if _, done := m.Halted(x.States[i]); done {
					parts[i] = string(machine.NoMessage)
				} else {
					parts[i] = string(m.Send(x.States[i], p))
				}
			}
			return machine.EncodeTermStrings(parts...)
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(multiState)
			next := make([]machine.State, len(subs))
			for i, m := range subs {
				if _, done := m.Halted(x.States[i]); done {
					next[i] = x.States[i]
					continue
				}
				sub := make([]machine.Message, len(inbox))
				for k, msg := range inbox {
					sub[k] = sliceMessage(msg, i)
				}
				next[i] = m.Step(x.States[i], machine.CanonicalInbox(m.Class().Recv, sub))
			}
			out, done := decide(next)
			return multiState{States: next, Done: done, Out: out}
		},
	}, variant, nil
}

// sliceMessage extracts component i of a tuple message; m0 stays m0.
func sliceMessage(msg machine.Message, i int) machine.Message {
	if msg == machine.NoMessage {
		return machine.NoMessage
	}
	t, err := machine.DecodeTerm(msg)
	if err != nil {
		panic(fmt.Sprintf("compile: malformed tuple message %q", msg))
	}
	return machine.Message(t.At(i).StrVal())
}

// weakerJoin returns the weakest class at least as strong as both (join in
// the information lattice).
func weakerJoin(a, b machine.Class) machine.Class {
	out := a
	if b.Recv < out.Recv {
		out.Recv = b.Recv
	}
	if b.Send < out.Send {
		out.Send = b.Send
	}
	return out
}

func propositionalOnly(f logic.Formula) bool {
	return len(logic.Labels(f)) == 0
}
