package compile

import (
	"fmt"
	"math/rand"
	"testing"

	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

func suiteGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.Path(2),
		graph.Path(4),
		graph.Cycle(3),
		graph.Cycle(5),
		graph.Star(2),
		graph.Figure1Graph(),
		graph.DisjointUnion(graph.Path(2), graph.Cycle(3)),
	}
}

// runCompiled executes the compiled machine and compares per-node outputs
// with direct model checking of f on K_{a,b}(G,p).
func checkFormulaMachineAgree(t *testing.T, f logic.Formula, delta int, g *graph.Graph, p *port.Numbering) {
	t.Helper()
	m, variant, err := MachineFromFormula(f, delta)
	if err != nil {
		t.Fatalf("MachineFromFormula(%q): %v", f.String(), err)
	}
	res, err := engine.Run(m, p, engine.Options{})
	if err != nil {
		t.Fatalf("running compiled %q on %v: %v", f.String(), g, err)
	}
	model := kripke.FromPorts(p, variant)
	want := logic.Eval(model, f)
	for v := 0; v < g.N(); v++ {
		got := res.Output[v] == "1"
		if got != want[v] {
			t.Fatalf("formula %q node %d: machine says %v, model checking says %v (graph %v)",
				f.String(), v, got, want[v], g)
		}
	}
	if md := logic.ModalDepth(f); res.Rounds != md {
		t.Fatalf("formula %q: runtime %d rounds, want md = %d", f.String(), res.Rounds, md)
	}
}

func TestMachineFromFormulaFixed(t *testing.T) {
	fixed := []string{
		"q1",
		"q2 & !q1",
		"<*,*> q1",
		"<*,*>=2 q1",
		"<*,*> (q1 | q2)",
		"!<*,*> q3",
		"<*,*> <*,*> q1",
		"<*,1> q1",
		"<*,2>=2 q2",
		"<1,*> q2",
		"<2,*> <1,*> q1",
		"<1,1> q2",
		"<2,1> (q1 & <1,2> q2)",
		"true",
		"false",
	}
	rng := rand.New(rand.NewSource(70))
	for _, src := range fixed {
		f := logic.MustParse(src)
		for _, g := range suiteGraphs() {
			delta := maxInt(g.MaxDegree(), 3)
			numberings := []*port.Numbering{
				port.Canonical(g),
				port.Random(g, rng),
				port.RandomConsistent(g, rng),
			}
			for _, p := range numberings {
				checkFormulaMachineAgree(t, f, delta, g, p)
			}
		}
	}
}

func TestMachineFromFormulaRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	variants := []kripke.Variant{
		kripke.VariantPP, kripke.VariantMP, kripke.VariantPM, kripke.VariantMM,
	}
	for trial := 0; trial < 150; trial++ {
		variant := variants[trial%len(variants)]
		graded := variant == kripke.VariantMP || variant == kripke.VariantMM
		if rng.Intn(2) == 0 {
			graded = false
		}
		f := logic.RandomFormulaForVariant(rng, 3, 3, graded, variant)
		g := suiteGraphs()[rng.Intn(len(suiteGraphs()))]
		p := port.Random(g, rng)
		checkFormulaMachineAgree(t, f, maxInt(g.MaxDegree(), 3), g, p)
	}
}

func TestMachineFromFormulaClassAssignment(t *testing.T) {
	cases := []struct {
		src   string
		class machine.Class
	}{
		{"<1,1> q1", machine.ClassVV},
		{"<*,1>=2 q1", machine.ClassMV},
		{"<*,1> q1", machine.ClassSV},
		{"<1,*> q1", machine.ClassVB},
		{"<*,*>=2 q1", machine.ClassMB},
		{"<*,*> q1", machine.ClassSB},
		{"q1", machine.ClassSB}, // propositional sinks to the weakest class
	}
	for _, tc := range cases {
		m, _, err := MachineFromFormula(logic.MustParse(tc.src), 3)
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		if m.Class() != tc.class {
			t.Errorf("%q compiled to class %v, want %v", tc.src, m.Class(), tc.class)
		}
	}
}

func TestMachineFromFormulaRejects(t *testing.T) {
	bad := []string{
		"<1,1> q1 & <*,1> q1", // mixes concrete and ∗ in-port
		"<1,*> q1 & <1,2> q1", // mixes ∗ and concrete out-port
		"<1,1>=2 q1",          // graded with concrete in-port: outside Theorem 2
		"<1,*>=2 q1",
	}
	for _, src := range bad {
		if _, _, err := MachineFromFormula(logic.MustParse(src), 3); err == nil {
			t.Errorf("%q compiled, want error", src)
		}
	}
	if _, _, err := MachineFromFormula(logic.MustParse("<*,4> q1"), 3); err == nil {
		t.Error("out-port beyond Δ accepted")
	}
}

// parityMachine is the Theorem 13 algorithm restricted to one round: output
// "1" iff the node has an odd number of odd-degree neighbours. Class MB.
func parityMachine(delta int) machine.Machine {
	type st struct {
		Deg  int
		Done bool
		Out  machine.Output
	}
	return &machine.Func{
		MachineName:  "odd-odd",
		MachineClass: machine.ClassMB,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, _ int) machine.Message {
			return fmt.Sprintf("%d", s.(st).Deg%2)
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			odd := 0
			for _, m := range inbox {
				if m == "1" {
					odd++
				}
			}
			out := "0"
			if odd%2 == 1 {
				out = "1"
			}
			return st{Deg: s.(st).Deg, Done: true, Out: out}
		},
	}
}

// evenDegreeMachine outputs "1" iff its degree is even; zero rounds, SB.
func evenDegreeMachine(delta int) machine.Machine {
	return &machine.Func{
		MachineName:  "even-degree",
		MachineClass: machine.ClassSB,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return deg },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			if s.(int)%2 == 0 {
				return "1", true
			}
			return "0", true
		},
		SendFunc: func(machine.State, int) machine.Message { return machine.NoMessage },
		StepFunc: func(s machine.State, _ []machine.Message) machine.State { return s },
	}
}

// leafElectMachine is the Theorem 11 SV algorithm: send i to port i; a node
// outputs 1 iff deg = 1 and the received set is {1}.
func leafElectMachine(delta int) machine.Machine {
	type st struct {
		Deg  int
		Done bool
		Out  machine.Output
	}
	return &machine.Func{
		MachineName:  "leaf-elect",
		MachineClass: machine.ClassSV,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			return fmt.Sprintf("%d", p)
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			out := "0"
			if x.Deg == 1 && len(inbox) == 1 && inbox[0] == "1" {
				out = "1"
			}
			return st{Deg: x.Deg, Done: true, Out: out}
		},
	}
}

func checkMachineFormulaAgree(t *testing.T, m machine.Machine, delta, T int) {
	t.Helper()
	formulas, variant, err := FormulaFromMachine(m, delta, T, Limits{})
	if err != nil {
		t.Fatalf("FormulaFromMachine(%s): %v", m.Name(), err)
	}
	rng := rand.New(rand.NewSource(72))
	for _, g := range suiteGraphs() {
		if g.MaxDegree() > delta {
			continue
		}
		for _, p := range []*port.Numbering{port.Canonical(g), port.Random(g, rng)} {
			res, err := engine.Run(m, p, engine.Options{})
			if err != nil {
				t.Fatalf("%s on %v: %v", m.Name(), g, err)
			}
			model := kripke.FromPorts(p, variant)
			for out, f := range formulas {
				val := logic.Eval(model, f)
				for v := 0; v < g.N(); v++ {
					if val[v] != (res.Output[v] == out) {
						t.Fatalf("machine %s graph %v node %d output %q: formula disagrees (md %d)",
							m.Name(), g, v, out, logic.ModalDepth(f))
					}
				}
			}
		}
	}
}

func TestFormulaFromMachineOddOdd(t *testing.T) {
	checkMachineFormulaAgree(t, parityMachine(3), 3, 1)
}

func TestFormulaFromMachineEvenDegree(t *testing.T) {
	checkMachineFormulaAgree(t, evenDegreeMachine(3), 3, 1)
}

func TestFormulaFromMachineLeafElect(t *testing.T) {
	checkMachineFormulaAgree(t, leafElectMachine(3), 3, 1)
}

func TestFormulaFromMachineStillRunning(t *testing.T) {
	loop := &machine.Func{
		MachineName:  "loop",
		MachineClass: machine.ClassSB,
		MaxDeg:       2,
		InitFunc:     func(int) machine.State { return 0 },
		HaltedFunc:   func(machine.State) (machine.Output, bool) { return "", false },
		SendFunc:     func(machine.State, int) machine.Message { return "x" },
		StepFunc:     func(s machine.State, _ []machine.Message) machine.State { return s },
	}
	if _, _, err := FormulaFromMachine(loop, 2, 2, Limits{}); err == nil {
		t.Error("non-halting machine accepted")
	}
}

// TestTable3RoundTrip closes the loop: formula → machine → formula; the two
// formulas must agree on every node of every suite (G, p).
func TestTable3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	srcs := []string{
		"<*,*> q1",
		"<*,*>=2 q2",
		"q1 & <*,*> q2",
		"<*,1> q1",
	}
	for _, src := range srcs {
		f := logic.MustParse(src)
		delta := 3
		m, variant, err := MachineFromFormula(f, delta)
		if err != nil {
			t.Fatal(err)
		}
		back, variant2, err := FormulaFromMachine(m, delta, logic.ModalDepth(f), Limits{
			MaxStates: 4096, MaxMessages: 256, MaxInboxes: 1 << 20,
		})
		if err != nil {
			t.Fatalf("round trip of %q: %v", src, err)
		}
		if variant != variant2 {
			t.Fatalf("variant changed: %v vs %v", variant, variant2)
		}
		f2, ok := back["1"]
		if !ok {
			// The machine may never output 1 on reachable configs; then the
			// original formula must be unsatisfiable on the suite.
			f2 = logic.Bot{}
		}
		for _, g := range suiteGraphs() {
			p := port.Random(g, rng)
			model := kripke.FromPorts(p, variant)
			a, b := logic.Eval(model, f), logic.Eval(model, f2)
			for v := range a {
				if a[v] != b[v] {
					t.Fatalf("round trip of %q differs at node %d of %v", src, v, g)
				}
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkCompileFormulaToMachine(b *testing.B) {
	f := logic.MustParse("<*,*> (q1 & <*,*> (q2 | <*,*> q3))")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := MachineFromFormula(f, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompiledMachineRun(b *testing.B) {
	f := logic.MustParse("<*,*> (q2 & <*,*> q4)")
	m, _, err := MachineFromFormula(f, 4)
	if err != nil {
		b.Fatal(err)
	}
	p := port.Canonical(graph.Torus(8, 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(m, p, engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileMachineToFormula(b *testing.B) {
	m := parityMachine(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := FormulaFromMachine(m, 3, 1, Limits{}); err != nil {
			b.Fatal(err)
		}
	}
}

// twoLeavesMachine is an MV machine (multiset receive, vector send): a node
// outputs 1 iff it received the message "1" at least twice — i.e. at least
// two neighbours whose out-port towards it is their port 1... no: each
// neighbour sends its out-port number, so counting "1"s counts neighbours
// that reach us through their port 1. Genuinely multiset (needs the count),
// genuinely vector-send (message depends on the port).
func twoLeavesMachine(delta int) machine.Machine {
	type st struct {
		Deg  int
		Done bool
		Out  machine.Output
	}
	return &machine.Func{
		MachineName:  "two-port-ones",
		MachineClass: machine.ClassMV,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			return fmt.Sprintf("%d", p)
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			ones := 0
			for _, m := range inbox {
				if m == "1" {
					ones++
				}
			}
			out := machine.Output("0")
			if ones >= 2 {
				out = "1"
			}
			return st{Deg: x.Deg, Done: true, Out: out}
		},
	}
}

// firstPortParityMachine is a VB machine (vector receive, broadcast send):
// broadcast the degree parity; output the message received at in-port 1.
func firstPortParityMachine(delta int) machine.Machine {
	type st struct {
		Deg  int
		Done bool
		Out  machine.Output
	}
	return &machine.Func{
		MachineName:  "first-port-parity",
		MachineClass: machine.ClassVB,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, _ int) machine.Message {
			return fmt.Sprintf("%d", s.(st).Deg%2)
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			out := machine.Output("none")
			if len(inbox) > 0 {
				out = machine.Output(inbox[0]) // in-port 1
			}
			return st{Deg: x.Deg, Done: true, Out: out}
		},
	}
}

// portEchoMachine is a full VV machine: send the out-port number, output
// the pair (message at in-port 1, own degree parity).
func portEchoMachine(delta int) machine.Machine {
	type st struct {
		Deg  int
		Done bool
		Out  machine.Output
	}
	return &machine.Func{
		MachineName:  "port-echo",
		MachineClass: machine.ClassVV,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			return fmt.Sprintf("%d", p)
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			first := "-"
			if len(inbox) > 0 {
				first = string(inbox[0])
			}
			return st{Deg: x.Deg, Done: true, Out: machine.Output(fmt.Sprintf("%s/%d", first, x.Deg%2))}
		},
	}
}

func TestFormulaFromMachineMV(t *testing.T) {
	checkMachineFormulaAgree(t, twoLeavesMachine(3), 3, 1)
}

func TestFormulaFromMachineVB(t *testing.T) {
	checkMachineFormulaAgree(t, firstPortParityMachine(3), 3, 1)
}

func TestFormulaFromMachineVV(t *testing.T) {
	checkMachineFormulaAgree(t, portEchoMachine(2), 2, 1)
}

func TestFormulaFromMachineFragments(t *testing.T) {
	// The generated formulas must live in the fragment Theorem 2 assigns
	// to each class.
	cases := []struct {
		m        machine.Machine
		fragment string
	}{
		{parityMachine(2), "GML"},
		{evenDegreeMachine(2), "ML"},
		{leafElectMachine(2), "MML"},
		{twoLeavesMachine(2), "GMML"},
		{firstPortParityMachine(2), "MML"},
		{portEchoMachine(2), "MML"},
	}
	for _, tc := range cases {
		formulas, _, err := FormulaFromMachine(tc.m, 2, 1, Limits{})
		if err != nil {
			t.Fatalf("%s: %v", tc.m.Name(), err)
		}
		for out, f := range formulas {
			frag := logic.ClassifyFragment(f)
			if got := frag.String(); !fragmentWithin(got, tc.fragment) {
				t.Errorf("%s output %q: fragment %s, want within %s",
					tc.m.Name(), out, got, tc.fragment)
			}
		}
	}
}

// fragmentWithin reports whether got is contained in want's logic
// (ML ⊆ GML ⊆ GMML and ML ⊆ MML ⊆ GMML).
func fragmentWithin(got, want string) bool {
	rank := map[string][]string{
		"ML":   {"ML"},
		"GML":  {"ML", "GML"},
		"MML":  {"ML", "MML"},
		"GMML": {"ML", "GML", "MML", "GMML"},
	}
	for _, ok := range rank[want] {
		if got == ok {
			return true
		}
	}
	return false
}

func TestMachineFromFormulasTuple(t *testing.T) {
	// A three-way classification: "isolated-or-leaf" / "sees-a-leaf" /
	// everything else — tuples of formulas per the paper's remark.
	formulas := map[machine.Output]logic.Formula{
		"leafish": logic.MustParse("q1"),
		"nearby":  logic.MustParse("!q1 & <*,*> q1"),
	}
	delta := 3
	m, variant, err := MachineFromFormulas(formulas, delta)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(74))
	for _, g := range suiteGraphs() {
		p := port.Random(g, rng)
		res, err := engine.Run(m, p, engine.Options{})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		model := kripke.FromPorts(p, variant)
		leafish := logic.Eval(model, formulas["leafish"])
		nearby := logic.Eval(model, formulas["nearby"])
		for v := 0; v < g.N(); v++ {
			want := machine.Output("")
			switch {
			case leafish[v]:
				want = "leafish"
			case nearby[v]:
				want = "nearby"
			}
			if res.Output[v] != want {
				t.Fatalf("%v node %d: output %q, want %q", g, v, res.Output[v], want)
			}
		}
	}
}

func TestMachineFromFormulasRejectsMixedVariants(t *testing.T) {
	formulas := map[machine.Output]logic.Formula{
		"a": logic.MustParse("<1,1> q1"),
		"b": logic.MustParse("<*,*> q1"),
	}
	if _, _, err := MachineFromFormulas(formulas, 3); err == nil {
		t.Error("mixed-variant tuple accepted")
	}
	if _, _, err := MachineFromFormulas(nil, 3); err == nil {
		t.Error("empty tuple accepted")
	}
}

func TestMachineFromFormulasClassJoin(t *testing.T) {
	// A graded and an ungraded K(−,−) formula: the tuple machine must be
	// Multiset∩Broadcast (the graded one forces counting).
	formulas := map[machine.Output]logic.Formula{
		"two": logic.MustParse("<*,*>=2 q1"),
		"one": logic.MustParse("<*,*> q1 & !<*,*>=2 q1"),
	}
	m, _, err := MachineFromFormulas(formulas, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Class() != machine.ClassMB {
		t.Errorf("class %v, want MB", m.Class())
	}
}
