package compile

import (
	"fmt"

	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/machine"
)

// msgOrigin is a message together with the out-port it was sent through —
// the unit of the formula families ϑ_{m,j,t}. Broadcast machines always use
// j = 1.
type msgOrigin struct {
	msg machine.Message
	j   int
}

// inboxChoice is one enumerated inbox. Exactly one of seq/bag/set is used,
// depending on the receive mode:
//
//   - RecvVector: seq[i] is the origin of the message at in-port i+1;
//   - RecvMultiset: bag maps each alphabet origin to its multiplicity;
//   - RecvSet: set lists the distinct received messages.
type inboxChoice struct {
	seq []msgOrigin
	bag []int // parallel to the alphabet slice
	set []machine.Message
	// alphabet backs bag indices.
	alphabet []msgOrigin
}

// flat renders the inbox as the raw message slice handed to Step (after
// CanonicalInbox for the machine's mode).
func (ib inboxChoice) flat() []machine.Message {
	switch {
	case ib.seq != nil:
		out := make([]machine.Message, len(ib.seq))
		for i, mo := range ib.seq {
			out[i] = mo.msg
		}
		return out
	case ib.bag != nil:
		var out []machine.Message
		for idx, c := range ib.bag {
			for k := 0; k < c; k++ {
				out = append(out, ib.alphabet[idx].msg)
			}
		}
		return out
	default:
		return append([]machine.Message(nil), ib.set...)
	}
}

// enumerateInboxes lists every inbox a node of the given degree could
// receive over the current alphabet, in the representation matching the
// machine's receive mode.
func enumerateInboxes(class machine.Class, alphabet []msgOrigin, deg, cap int) ([]inboxChoice, error) {
	switch class.Recv {
	case machine.RecvVector:
		return enumerateSequences(alphabet, deg, cap)
	case machine.RecvMultiset:
		return enumerateBags(alphabet, deg, cap)
	case machine.RecvSet:
		return enumerateSets(alphabet, deg, cap)
	default:
		return nil, fmt.Errorf("compile: unknown receive mode %v", class.Recv)
	}
}

func enumerateSequences(alphabet []msgOrigin, deg, cap int) ([]inboxChoice, error) {
	out := []inboxChoice{{seq: []msgOrigin{}}}
	for pos := 0; pos < deg; pos++ {
		var next []inboxChoice
		for _, partial := range out {
			for _, mo := range alphabet {
				seq := make([]msgOrigin, len(partial.seq), len(partial.seq)+1)
				copy(seq, partial.seq)
				next = append(next, inboxChoice{seq: append(seq, mo)})
				if len(next) > cap {
					return nil, fmt.Errorf("compile: inbox enumeration exceeds %d", cap)
				}
			}
		}
		out = next
	}
	return out, nil
}

func enumerateBags(alphabet []msgOrigin, deg, cap int) ([]inboxChoice, error) {
	var out []inboxChoice
	counts := make([]int, len(alphabet))
	var rec func(idx, left int) error
	rec = func(idx, left int) error {
		if idx == len(alphabet) {
			if left == 0 {
				out = append(out, inboxChoice{
					bag:      append([]int(nil), counts...),
					alphabet: alphabet,
				})
				if len(out) > cap {
					return fmt.Errorf("compile: inbox enumeration exceeds %d", cap)
				}
			}
			return nil
		}
		for c := 0; c <= left; c++ {
			counts[idx] = c
			if err := rec(idx+1, left-c); err != nil {
				return err
			}
		}
		counts[idx] = 0
		return nil
	}
	if deg == 0 {
		return []inboxChoice{{bag: make([]int, len(alphabet)), alphabet: alphabet}}, nil
	}
	if len(alphabet) == 0 {
		return nil, fmt.Errorf("compile: degree %d node with empty alphabet", deg)
	}
	if err := rec(0, deg); err != nil {
		return nil, err
	}
	return out, nil
}

func enumerateSets(alphabet []msgOrigin, deg, cap int) ([]inboxChoice, error) {
	msgs := distinctMessages(alphabet)
	var out []inboxChoice
	var rec func(idx int, chosen []machine.Message) error
	rec = func(idx int, chosen []machine.Message) error {
		if idx == len(msgs) {
			valid := (deg == 0 && len(chosen) == 0) ||
				(deg >= 1 && len(chosen) >= 1 && len(chosen) <= deg)
			if valid {
				out = append(out, inboxChoice{set: append([]machine.Message(nil), chosen...)})
				if len(out) > cap {
					return fmt.Errorf("compile: inbox enumeration exceeds %d", cap)
				}
			}
			return nil
		}
		if err := rec(idx+1, chosen); err != nil {
			return err
		}
		return rec(idx+1, append(chosen, msgs[idx]))
	}
	if err := rec(0, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// inboxFormula expresses "node received exactly this inbox in this round"
// in the logic of the variant, using the ϑ formulas for the round.
func inboxFormula(variant kripke.Variant, class machine.Class, theta map[msgOrigin]logic.Formula,
	alphabet []msgOrigin, ib inboxChoice, delta int) logic.Formula {
	switch {
	case class.Recv == machine.RecvVector && class.Send == machine.SendVector:
		// K₊,₊: ∧_i χ_{m,i,j} with χ = ⟨(i,j)⟩ϑ_{m,j}.
		fs := make([]logic.Formula, 0, len(ib.seq))
		for i, mo := range ib.seq {
			fs = append(fs, logic.Dia(kripke.Index{I: i + 1, J: mo.j}, theta[mo]))
		}
		return logic.BigAnd(fs...)

	case class.Recv == machine.RecvVector && class.Send == machine.SendBroadcast:
		// K₊,₋: ∧_i ⟨(i,∗)⟩ϑ_m.
		fs := make([]logic.Formula, 0, len(ib.seq))
		for i, mo := range ib.seq {
			fs = append(fs, logic.Dia(kripke.Index{I: i + 1, J: kripke.Star}, theta[mo]))
		}
		return logic.BigAnd(fs...)

	case class.Recv == machine.RecvMultiset && class.Send == machine.SendVector:
		// K₋,₊ graded: exact counts per origin via ⟨(∗,j)⟩≥k.
		fs := make([]logic.Formula, 0, 2*len(alphabet))
		for idx, mo := range alphabet {
			c := ib.bag[idx]
			alpha := kripke.Index{I: kripke.Star, J: mo.j}
			if c > 0 {
				fs = append(fs, logic.DiaGeq(alpha, c, theta[mo]))
			}
			fs = append(fs, logic.Not{F: logic.DiaGeq(alpha, c+1, theta[mo])})
		}
		return logic.BigAnd(fs...)

	case class.Recv == machine.RecvMultiset && class.Send == machine.SendBroadcast:
		// K₋,₋ graded: exact counts via ⟨(∗,∗)⟩≥k.
		fs := make([]logic.Formula, 0, 2*len(alphabet))
		for idx, mo := range alphabet {
			c := ib.bag[idx]
			alpha := kripke.Index{I: kripke.Star, J: kripke.Star}
			if c > 0 {
				fs = append(fs, logic.DiaGeq(alpha, c, theta[mo]))
			}
			fs = append(fs, logic.Not{F: logic.DiaGeq(alpha, c+1, theta[mo])})
		}
		return logic.BigAnd(fs...)

	case class.Recv == machine.RecvSet && class.Send == machine.SendVector:
		// K₋,₊ ungraded: received(m) = ∨_j ⟨(∗,j)⟩ϑ_{m,j}; positive for
		// m ∈ S, negative otherwise.
		return setFormula(theta, alphabet, ib.set, func(mo msgOrigin) kripke.Index {
			return kripke.Index{I: kripke.Star, J: mo.j}
		})

	case class.Recv == machine.RecvSet && class.Send == machine.SendBroadcast:
		// K₋,₋ ungraded ML.
		return setFormula(theta, alphabet, ib.set, func(msgOrigin) kripke.Index {
			return kripke.Index{I: kripke.Star, J: kripke.Star}
		})

	default:
		panic(fmt.Sprintf("compile: unsupported class %v", class))
	}
}

// setFormula builds ∧_{m ∈ S} received(m) ∧ ∧_{m ∉ S} ¬received(m).
func setFormula(theta map[msgOrigin]logic.Formula, alphabet []msgOrigin,
	set []machine.Message, label func(msgOrigin) kripke.Index) logic.Formula {
	inSet := make(map[machine.Message]bool, len(set))
	for _, m := range set {
		inSet[m] = true
	}
	received := make(map[machine.Message]logic.Formula)
	for _, mo := range alphabet {
		dia := logic.Dia(label(mo), theta[mo])
		if f, ok := received[mo.msg]; ok {
			received[mo.msg] = logic.Or{L: f, R: dia}
		} else {
			received[mo.msg] = dia
		}
	}
	var fs []logic.Formula
	for _, m := range distinctMessages(alphabet) {
		if inSet[m] {
			fs = append(fs, received[m])
		} else {
			fs = append(fs, logic.Not{F: received[m]})
		}
	}
	return logic.BigAnd(fs...)
}
