package compile

import (
	"fmt"
	"sort"

	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/machine"
)

// Limits bound the reachable-configuration enumeration of
// FormulaFromMachine. The paper's families Ψt, Θt, Ξt are finite for every
// machine (Theorem 2, part 3); the caps make that finiteness explicit and
// catch machines outside the constant-time regime. The zero value selects
// defaults.
type Limits struct {
	// MaxStates caps the reachable states per round (default 64).
	MaxStates int
	// MaxMessages caps the reachable message alphabet per round (default 32).
	MaxMessages int
	// MaxInboxes caps the enumerated inbox combinations per (state, degree)
	// pair (default 100000).
	MaxInboxes int
}

func (l Limits) withDefaults() Limits {
	if l.MaxStates == 0 {
		l.MaxStates = 64
	}
	if l.MaxMessages == 0 {
		l.MaxMessages = 32
	}
	if l.MaxInboxes == 0 {
		l.MaxInboxes = 100000
	}
	return l
}

// stateInfo tracks one reachable machine state.
type stateInfo struct {
	state  machine.State
	halted bool
	out    machine.Output
}

// stateKey renders a state deterministically. FormulaFromMachine requires
// machines whose states print stably under %#v (plain values, structs,
// slices — no maps), which holds for every machine in this library.
func stateKey(s machine.State) string { return fmt.Sprintf("%#v", s) }

// FormulaFromMachine unfolds machine m (runtime bound T rounds, max degree
// delta) into modal formulas per Theorem 2, parts 3–4. It returns one
// formula per output value y ∈ Y: ψ_y holds at node v of K_{a,b}(G,p)
// exactly when m outputs y at v within T rounds on (G,p).
//
// The variant (and logic fragment) follows the machine's class:
//
//	Vector/Vector → K₊,₊ MML; Multiset/Vector → K₋,₊ GMML;
//	Set/Vector → K₋,₊ MML;    Vector/Broadcast → K₊,₋ MML;
//	Multiset/Broadcast → K₋,₋ GML; Set/Broadcast → K₋,₋ ML.
//
// An error is returned when enumeration exceeds the limits or when some
// reachable configuration is still running at time T.
func FormulaFromMachine(m machine.Machine, delta, T int, lim Limits) (map[machine.Output]logic.Formula, kripke.Variant, error) {
	lim = lim.withDefaults()
	class := m.Class()
	variant := kripke.VariantForRecvSend(
		class.Recv == machine.RecvVector,
		class.Send == machine.SendVector,
	)
	broadcast := class.Send == machine.SendBroadcast

	// Reachable states at time t, in insertion order; phi[key] is ϕ_{z,t}.
	type layer struct {
		keys  []string
		info  map[string]stateInfo
		phi   map[string]logic.Formula
		degOf map[string][]int // degrees at which the state is reachable
	}
	newLayer := func() *layer {
		return &layer{
			info:  make(map[string]stateInfo),
			phi:   make(map[string]logic.Formula),
			degOf: make(map[string][]int),
		}
	}
	addState := func(l *layer, s machine.State, f logic.Formula, deg int) error {
		key := stateKey(s)
		if _, ok := l.info[key]; !ok {
			if len(l.keys) >= lim.MaxStates {
				return fmt.Errorf("compile: more than %d reachable states", lim.MaxStates)
			}
			l.keys = append(l.keys, key)
			out, halted := m.Halted(s)
			l.info[key] = stateInfo{state: s, halted: halted, out: out}
			l.phi[key] = f
			l.degOf[key] = []int{deg}
			return nil
		}
		l.phi[key] = logic.Simplify(logic.Or{L: l.phi[key], R: f})
		l.degOf[key] = appendUnique(l.degOf[key], deg)
		return nil
	}

	cur := newLayer()
	for d := 0; d <= delta; d++ {
		if err := addState(cur, m.Init(d), logic.DegreeIs(d, delta), d); err != nil {
			return nil, variant, err
		}
	}

	for t := 1; t <= T; t++ {
		// Message alphabet for round t: μ(z, j) per non-halted reachable
		// state, plus m0 from halted states.
		msgSet := make(map[msgOrigin][]string) // origin → sender state keys
		sawHalted := false
		maxJ := delta
		if broadcast {
			maxJ = 1
		}
		for _, key := range cur.keys {
			info := cur.info[key]
			if info.halted {
				sawHalted = true
				continue
			}
			for j := 1; j <= maxJ; j++ {
				mo := msgOrigin{msg: m.Send(info.state, j), j: j}
				msgSet[mo] = append(msgSet[mo], key)
			}
		}
		if sawHalted {
			for j := 1; j <= maxJ; j++ {
				mo := msgOrigin{msg: machine.NoMessage, j: j}
				for _, key := range cur.keys {
					if cur.info[key].halted {
						msgSet[mo] = append(msgSet[mo], key)
					}
				}
			}
		}
		// ϑ_{m,j,t} = ∨ { ϕ_{z,t-1} : μ(z,j) = m }.
		theta := make(map[msgOrigin]logic.Formula, len(msgSet))
		var alphabet []msgOrigin
		for mo, senders := range msgSet {
			fs := make([]logic.Formula, 0, len(senders))
			for _, key := range senders {
				fs = append(fs, cur.phi[key])
			}
			theta[mo] = logic.Simplify(logic.BigOr(fs...))
			alphabet = append(alphabet, mo)
		}
		sort.Slice(alphabet, func(a, b int) bool {
			if alphabet[a].msg != alphabet[b].msg {
				return alphabet[a].msg < alphabet[b].msg
			}
			return alphabet[a].j < alphabet[b].j
		})
		distinctMsgs := distinctMessages(alphabet)
		if len(distinctMsgs) > lim.MaxMessages {
			return nil, variant, fmt.Errorf("compile: message alphabet %d exceeds %d",
				len(distinctMsgs), lim.MaxMessages)
		}

		next := newLayer()
		for _, key := range cur.keys {
			info := cur.info[key]
			if info.halted {
				// δ(y, ·) = y: halted states persist with their formula.
				if err := addState(next, info.state, cur.phi[key], cur.degOf[key][0]); err != nil {
					return nil, variant, err
				}
				for _, d := range cur.degOf[key][1:] {
					next.degOf[key] = appendUnique(next.degOf[key], d)
				}
				continue
			}
			for _, deg := range cur.degOf[key] {
				inboxes, err := enumerateInboxes(class, alphabet, deg, lim.MaxInboxes)
				if err != nil {
					return nil, variant, err
				}
				for _, ib := range inboxes {
					inboxF := inboxFormula(variant, class, theta, alphabet, ib, delta)
					guard := logic.Simplify(logic.BigAnd(cur.phi[key], logic.DegreeIs(deg, delta), inboxF))
					if _, isBot := guard.(logic.Bot); isBot {
						continue
					}
					newState := m.Step(info.state, machine.CanonicalInbox(class.Recv, ib.flat()))
					if err := addState(next, newState, guard, deg); err != nil {
						return nil, variant, err
					}
				}
			}
		}
		cur = next
	}

	// All configurations must have halted by T.
	result := make(map[machine.Output]logic.Formula)
	for _, key := range cur.keys {
		info := cur.info[key]
		if !info.halted {
			return nil, variant, fmt.Errorf(
				"compile: state %q still running at T=%d (machine %q)", key, T, m.Name())
		}
		f, ok := result[info.out]
		if !ok {
			result[info.out] = cur.phi[key]
		} else {
			result[info.out] = logic.Simplify(logic.Or{L: f, R: cur.phi[key]})
		}
	}
	return result, variant, nil
}

func appendUnique(xs []int, x int) []int {
	for _, y := range xs {
		if y == x {
			return xs
		}
	}
	return append(xs, x)
}

func distinctMessages(alphabet []msgOrigin) []machine.Message {
	seen := make(map[machine.Message]bool)
	var out []machine.Message
	for _, mo := range alphabet {
		if !seen[mo.msg] {
			seen[mo.msg] = true
			out = append(out, mo.msg)
		}
	}
	return out
}
