// Package compile implements Theorem 2 of the paper in both directions:
//
//   - MachineFromFormula turns a modal formula into a local algorithm of the
//     matching class that evaluates the formula on K_{a,b}(G,p): the machine
//     state assigns each subformula a value in {0, 1, U}, messages carry the
//     restriction of that assignment to the subformulas under diamonds
//     (the sets D_j / D / D′ of the proof), and the transition function is
//     exactly the clauses (δ∧), (δ¬), (δ◇) and their variants. The machine
//     halts after md(ψ) rounds with output "1" exactly on ‖ψ‖.
//
//   - FormulaFromMachine unfolds a machine's reachable configuration space
//     into the formula families ϕ_{z,t}, ϑ_{m,j,t}, χ_{m,i,j,t} of Tables 4
//     and 5, for each of the four Kripke variants, yielding for every output
//     value y a formula that holds exactly at the nodes outputting y.
//
// The correspondence of Table 3 — formula ↔ algorithm, modal depth ↔
// running time — is exercised end-to-end by this package's tests.
package compile

import (
	"fmt"
	"sort"

	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/machine"
	"weakmodels/internal/term"
)

// Tri is the three-valued truth domain {0, 1, U} of the Theorem 2 proof.
type Tri int8

// The three truth values.
const (
	TriFalse Tri = 0
	TriTrue  Tri = 1
	TriU     Tri = 2
)

// VariantForFormula infers the unique Kripke variant whose relation
// signature covers every label of f, or fails when labels mix regimes.
func VariantForFormula(f logic.Formula) (kripke.Variant, error) {
	labels := logic.Labels(f)
	if len(labels) == 0 {
		return kripke.VariantMM, nil // propositional: weakest regime suffices
	}
	iConcrete, iStar, jConcrete, jStar := false, false, false, false
	for _, l := range labels {
		if l.I == kripke.Star {
			iStar = true
		} else {
			iConcrete = true
		}
		if l.J == kripke.Star {
			jStar = true
		} else {
			jConcrete = true
		}
	}
	if (iConcrete && iStar) || (jConcrete && jStar) {
		return 0, fmt.Errorf("compile: formula mixes concrete and ∗ indices: %v", labels)
	}
	return kripke.VariantForRecvSend(iConcrete, jConcrete), nil
}

// compiled is the static structure shared by all nodes running the
// compiled machine: the subformula closure in evaluation order.
type compiled struct {
	// subs in ascending Size order, so children precede parents.
	subs []logic.Formula
	// index by rendered form.
	index map[string]int
	// root is the index of ψ itself.
	root int
	// children[i] lists child indices of subs[i].
	children [][]int
	delta    int
	variant  kripke.Variant
	graded   bool
	// dsets[j] (1-based j; index 0 unused) lists subformula indices sent to
	// port j: D_j for per-port variants. For broadcast variants dsets[1]
	// holds D (all ports share it).
	dsets [][]int
}

// fmState is the per-node state: one Tri per subformula. It renders
// deterministically under %#v (needed by FormulaFromMachine round trips).
type fmState struct {
	Vals []Tri
	Done bool
	Out  machine.Output
}

func newCompiled(f logic.Formula, delta int) (*compiled, error) {
	variant, err := VariantForFormula(f)
	if err != nil {
		return nil, err
	}
	fragment := logic.ClassifyFragment(f)
	if fragment.Graded && (variant == kripke.VariantPP || variant == kripke.VariantPM) {
		return nil, fmt.Errorf(
			"compile: graded diamonds with concrete in-ports are outside the Theorem 2 correspondence (fragment %v on %v)",
			fragment, variant)
	}
	subs := logic.Subformulas(f)
	sort.Slice(subs, func(a, b int) bool {
		sa, sb := logic.Size(subs[a]), logic.Size(subs[b])
		if sa != sb {
			return sa < sb
		}
		return subs[a].String() < subs[b].String()
	})
	c := &compiled{
		subs:    subs,
		index:   make(map[string]int, len(subs)),
		delta:   delta,
		variant: variant,
		graded:  fragment.Graded,
	}
	for i, s := range subs {
		c.index[s.String()] = i
	}
	c.root = c.index[f.String()]
	c.children = make([][]int, len(subs))
	for i, s := range subs {
		switch x := s.(type) {
		case logic.Not:
			c.children[i] = []int{c.index[x.F.String()]}
		case logic.And:
			c.children[i] = []int{c.index[x.L.String()], c.index[x.R.String()]}
		case logic.Or:
			c.children[i] = []int{c.index[x.L.String()], c.index[x.R.String()]}
		case logic.Diamond:
			c.children[i] = []int{c.index[x.F.String()]}
		}
	}
	// Build the D sets.
	broadcast := variant == kripke.VariantPM || variant == kripke.VariantMM
	if broadcast {
		c.dsets = make([][]int, 2)
	} else {
		c.dsets = make([][]int, delta+1)
	}
	seen := make(map[[2]int]bool)
	for _, s := range subs {
		d, ok := s.(logic.Diamond)
		if !ok {
			continue
		}
		child := c.index[d.F.String()]
		if broadcast {
			if !seen[[2]int{1, child}] {
				seen[[2]int{1, child}] = true
				c.dsets[1] = append(c.dsets[1], child)
			}
			continue
		}
		j := d.Idx.J
		if j < 1 || j > delta {
			return nil, fmt.Errorf("compile: out-port %d outside [1,%d] in %v", j, delta, s)
		}
		if !seen[[2]int{j, child}] {
			seen[[2]int{j, child}] = true
			c.dsets[j] = append(c.dsets[j], child)
		}
	}
	for j := range c.dsets {
		sort.Ints(c.dsets[j])
	}
	return c, nil
}

// initVals evaluates all modal-depth-0 subformulas for a node of the given
// degree; diamonds start undefined.
func (c *compiled) initVals(deg int) []Tri {
	vals := make([]Tri, len(c.subs))
	for i, s := range c.subs {
		switch x := s.(type) {
		case logic.Top:
			vals[i] = TriTrue
		case logic.Bot:
			vals[i] = TriFalse
		case logic.Prop:
			vals[i] = TriFalse
			if deg >= 1 && x.Name == kripke.DegreeProp(deg) {
				vals[i] = TriTrue
			}
		case logic.Not:
			vals[i] = triNot(vals[c.children[i][0]])
		case logic.And:
			vals[i] = triAnd(vals[c.children[i][0]], vals[c.children[i][1]])
		case logic.Or:
			vals[i] = triOr(vals[c.children[i][0]], vals[c.children[i][1]])
		case logic.Diamond:
			vals[i] = TriU
		}
	}
	return vals
}

func triNot(a Tri) Tri {
	switch a {
	case TriTrue:
		return TriFalse
	case TriFalse:
		return TriTrue
	default:
		return TriU
	}
}

func triAnd(a, b Tri) Tri {
	// The proof's clause (δ∧): strictness in U.
	if a == TriU || b == TriU {
		return TriU
	}
	if a == TriTrue && b == TriTrue {
		return TriTrue
	}
	return TriFalse
}

func triOr(a, b Tri) Tri {
	if a == TriU || b == TriU {
		return TriU
	}
	if a == TriTrue || b == TriTrue {
		return TriTrue
	}
	return TriFalse
}

// encodeRestriction builds the message of the proof: the restriction of the
// assignment to the D set for port j, tagged with j for per-port variants
// (tag −1 for broadcast). The format is t(tag, t(idx,val), ...), with
// entries in ascending subformula index — canonical and injective.
func (c *compiled) encodeRestriction(vals []Tri, j int) machine.Message {
	slot := j
	broadcast := c.variant == kripke.VariantPM || c.variant == kripke.VariantMM
	tag := int64(j)
	if broadcast {
		slot = 1
		tag = -1
	}
	kids := make([]term.Term, 0, len(c.dsets[slot])+1)
	kids = append(kids, term.Int(tag))
	for _, idx := range c.dsets[slot] {
		kids = append(kids, term.Tuple(term.Int(int64(idx)), term.Int(int64(vals[idx]))))
	}
	return machine.EncodeTerm(term.Tuple(kids...))
}

// decoded is one parsed incoming message.
type decoded struct {
	tag  int // sender's out-port; -1 for broadcast; -2 for m0
	vals map[int]Tri
}

func decodeRestriction(m machine.Message) (decoded, error) {
	if m == machine.NoMessage {
		return decoded{tag: -2}, nil
	}
	t, err := term.Parse(m)
	if err != nil {
		return decoded{}, fmt.Errorf("compile: bad message: %w", err)
	}
	d := decoded{tag: int(t.At(0).IntVal()), vals: make(map[int]Tri, t.Len()-1)}
	for i := 1; i < t.Len(); i++ {
		pair := t.At(i)
		d.vals[int(pair.At(0).IntVal())] = Tri(pair.At(1).IntVal())
	}
	return d, nil
}

// MachineFromFormula compiles ψ into a local algorithm per Theorem 2. The
// machine's class matches the formula's fragment and variant:
//
//	K₊,₊ → Vector (VV),  K₋,₊ graded → Multiset (MV), ungraded → Set (SV),
//	K₊,₋ → Broadcast (VB), K₋,₋ graded → MB, ungraded → SB.
//
// Its running time is exactly md(ψ) rounds and its output is "1" at node v
// iff K_{a,b}(G,p), v ⊨ ψ.
func MachineFromFormula(f logic.Formula, delta int) (machine.Machine, kripke.Variant, error) {
	c, err := newCompiled(f, delta)
	if err != nil {
		return nil, 0, err
	}
	var class machine.Class
	switch c.variant {
	case kripke.VariantPP:
		class = machine.ClassVV
	case kripke.VariantMP:
		if c.graded {
			class = machine.ClassMV
		} else {
			class = machine.ClassSV
		}
	case kripke.VariantPM:
		class = machine.ClassVB
	case kripke.VariantMM:
		if c.graded {
			class = machine.ClassMB
		} else {
			class = machine.ClassSB
		}
	}
	m := &machine.Func{
		MachineName:  fmt.Sprintf("compiled[%s]", f.String()),
		MachineClass: class,
		MaxDeg:       delta,
		InitFunc: func(deg int) machine.State {
			s := fmState{Vals: c.initVals(deg)}
			if s.Vals[c.root] != TriU {
				s.Done = true
				s.Out = outputOf(s.Vals[c.root])
			}
			return s
		},
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(fmState)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, port int) machine.Message {
			return c.encodeRestriction(s.(fmState).Vals, port)
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(fmState)
			next, err := c.step(x.Vals, inbox)
			if err != nil {
				panic(err) // messages are self-produced; malformed ⇒ bug
			}
			out := fmState{Vals: next}
			if next[c.root] != TriU {
				out.Done = true
				out.Out = outputOf(next[c.root])
			}
			return out
		},
	}
	return m, c.variant, nil
}

func outputOf(v Tri) machine.Output {
	if v == TriTrue {
		return "1"
	}
	return "0"
}

// step implements the transition clauses (δ∧), (δ¬) and the four (δ◇)
// variants.
func (c *compiled) step(old []Tri, inbox []machine.Message) ([]Tri, error) {
	msgs := make([]decoded, len(inbox))
	for i, m := range inbox {
		d, err := decodeRestriction(m)
		if err != nil {
			return nil, err
		}
		msgs[i] = d
	}
	next := make([]Tri, len(old))
	copy(next, old)
	for i, s := range c.subs {
		if old[i] != TriU {
			continue // clause (a): settled values persist
		}
		switch x := s.(type) {
		case logic.Not:
			next[i] = triNot(next[c.children[i][0]])
		case logic.And:
			next[i] = triAnd(next[c.children[i][0]], next[c.children[i][1]])
		case logic.Or:
			next[i] = triOr(next[c.children[i][0]], next[c.children[i][1]])
		case logic.Diamond:
			child := c.children[i][0]
			if old[child] == TriU {
				next[i] = TriU // gate: child not yet evaluated anywhere
				continue
			}
			next[i] = c.evalDiamond(x, child, msgs)
		}
	}
	return next, nil
}

// evalDiamond applies the variant-specific clause (δ◇).
func (c *compiled) evalDiamond(d logic.Diamond, child int, msgs []decoded) Tri {
	switch c.variant {
	case kripke.VariantPP:
		// ⟨(i,j)⟩ϑ: message at in-port i must carry (1, j).
		i := d.Idx.I
		if i < 1 || i > len(msgs) {
			return TriFalse
		}
		m := msgs[i-1]
		if m.tag == d.Idx.J && m.vals[child] == TriTrue {
			return TriTrue
		}
		return TriFalse
	case kripke.VariantMP:
		// ⟨(∗,j)⟩≥k ϑ: count messages tagged j carrying 1.
		count := 0
		for _, m := range msgs {
			if m.tag == d.Idx.J && m.vals[child] == TriTrue {
				count++
			}
		}
		return boolTri(count >= d.K)
	case kripke.VariantPM:
		// ⟨(i,∗)⟩ϑ: broadcast message at in-port i carries 1.
		i := d.Idx.I
		if i < 1 || i > len(msgs) {
			return TriFalse
		}
		return boolTri(msgs[i-1].vals[child] == TriTrue)
	case kripke.VariantMM:
		count := 0
		for _, m := range msgs {
			if m.vals[child] == TriTrue {
				count++
			}
		}
		return boolTri(count >= d.K)
	default:
		panic("compile: unknown variant")
	}
}

func boolTri(b bool) Tri {
	if b {
		return TriTrue
	}
	return TriFalse
}
