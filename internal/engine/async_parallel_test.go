package engine

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// shardedSuiteGraphs is suiteGraphs plus a graph with isolated nodes:
// zero-degree nodes always hold a full frontier, so they exercise the
// sharded firing pass without any queue traffic.
func shardedSuiteGraphs() []*graph.Graph {
	return append(suiteGraphs(),
		graph.DisjointUnion(graph.Cycle(3), graph.MustNew(2, nil)))
}

// TestAsyncShardedEquivalence is the property test required of the sharded
// async driver: for every (schedule, fault plan, graph) cell of the suite,
// across shard counts and at GOMAXPROCS 1 and 4, the sharded executor must
// be bit-identical to the single-threaded one — the whole Result (Output,
// Rounds, MessageBytes, Trace, Fires, Fixpoint, States, Alive, Drops,
// Dups, Corruptions, Crashes, Recoveries, Retransmits, Healed), and
// identical ErrNoHalt failures. CI runs this under -race, which also
// proves the shard ownership discipline is data-race free.
func TestAsyncShardedEquivalence(t *testing.T) {
	const budget = 4_000
	schedSpecs := []string{"sync", "roundrobin", "random:0.4", "staleness:2", "adversary:3"}
	faultSpecs := []string{
		"",
		"drop:0.3,31,60+dup:0.2,32,60+crash:1,33,60",
		"adversary:2,9,60",
		// Hostile links: the corrupter's stream must interleave with the
		// filter's identically in the inline and pre-draw paths, partition
		// cuts are correlated per-link state, and retransmissions are
		// coordinator-side queue pushes — all three must be invisible to
		// the shard count.
		"byzantine:0.3,41,60+partition:3,42,60",
		"crash:1,43,60+retransmit:2,44,60",
	}
	machinesOf := func(delta int, faulty bool) []machine.Machine {
		if faulty {
			// Fault cells deliver m0 in place of dropped messages, so only
			// machines that tolerate silence belong here.
			return []machine.Machine{
				inboxEcho(delta, machine.ClassMV),      // halts, multiset canonicalisation
				algorithms.MaxConsensus(delta),         // stabilises → fixpoint probe
				algorithms.LeafProximityStab(delta, 3), // self-stabilising, recomputes from inbox
			}
		}
		return []machine.Machine{
			degreeSum(delta),                  // halts, per-port sends
			inboxEcho(delta, machine.ClassMV), // halts, multiset canonicalisation
			algorithms.MaxConsensus(delta),    // stabilises without halting → fixpoint probe
		}
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, g := range shardedSuiteGraphs() {
			p := port.Canonical(g)
			for _, schedSpec := range schedSpecs {
				for _, faultSpec := range faultSpecs {
					for _, m := range machinesOf(g.MaxDegree(), faultSpec != "") {
						label := fmt.Sprintf("procs=%d %s on %v schedule=%s faults=%q",
							procs, m.Name(), g, schedSpec, faultSpec)
						runWith := func(workers int) (*Result, error) {
							sched, err := schedule.Parse(schedSpec, 77)
							if err != nil {
								t.Fatal(err)
							}
							var plan fault.Plan
							if faultSpec != "" {
								if plan, err = fault.Parse(faultSpec, 1); err != nil {
									t.Fatal(err)
								}
							}
							return Run(m, p, Options{
								MaxRounds:   budget,
								RecordTrace: true,
								Executor:    ExecutorAsync,
								Workers:     workers,
								Schedule:    sched,
								Fault:       plan,
							})
						}
						ref, refErr := runWith(1)
						for _, workers := range []int{2, 4} {
							got, gotErr := runWith(workers)
							if (refErr == nil) != (gotErr == nil) {
								t.Fatalf("%s workers=%d: single-threaded err %v, sharded err %v",
									label, workers, refErr, gotErr)
							}
							if refErr != nil {
								if !errors.Is(gotErr, ErrNoHalt) || !errors.Is(refErr, ErrNoHalt) {
									t.Fatalf("%s workers=%d: unexpected errors %v / %v",
										label, workers, refErr, gotErr)
								}
								continue
							}
							if want := min(workers, g.N()); got.Shards != want {
								t.Fatalf("%s workers=%d: ran on %d shards, want %d",
									label, workers, got.Shards, want)
							}
							// Shards reports the runtime fan-out, not the
							// semantics: it is the one field allowed to
							// differ across worker counts.
							got.Shards = ref.Shards
							if !reflect.DeepEqual(ref, got) {
								t.Fatalf("%s workers=%d: results diverged\nsingle:  %+v\nsharded: %+v",
									label, workers, ref, got)
							}
						}
					}
				}
			}
		}
	}
}

// TestAsyncShardedWorkerClamp: a shard count far above the node count is
// clamped, one-node shards work, and the default (Workers unset →
// GOMAXPROCS) stays bit-identical to an explicit single worker.
func TestAsyncShardedWorkerClamp(t *testing.T) {
	g := graph.Star(5)
	p := port.Canonical(g)
	m := degreeSum(g.MaxDegree())
	run := func(workers int) *Result {
		res, err := Run(m, p, Options{
			RecordTrace: true,
			Executor:    ExecutorAsync,
			Workers:     workers,
			Schedule:    schedule.RoundRobin(),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{0, 64} {
		got := run(workers)
		switch {
		case workers == 0 && got.Shards != 1:
			// Star(5) is far below the auto-shard threshold: the default
			// must stay inline.
			t.Fatalf("workers=0: ran on %d shards, want 1", got.Shards)
		case workers == 64 && got.Shards != g.N():
			t.Fatalf("workers=64: ran on %d shards, want the node-count clamp %d", got.Shards, g.N())
		}
		got.Shards = ref.Shards // runtime fan-out, not semantics
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d diverged from the single-threaded run", workers)
		}
	}
}

// TestAsyncShardedNoHalt: a run that neither halts nor stabilises fails
// with ErrNoHalt at the same step budget on the sharded driver.
func TestAsyncShardedNoHalt(t *testing.T) {
	spinner := &machine.Func{
		MachineName:  "spinner",
		MachineClass: machine.ClassSB,
		MaxDeg:       2,
		InitFunc:     func(int) machine.State { return 0 },
		HaltedFunc:   func(machine.State) (machine.Output, bool) { return "", false },
		SendFunc:     func(machine.State, int) machine.Message { return machine.NoMessage },
		StepFunc:     func(s machine.State, _ []machine.Message) machine.State { return (s.(int) + 1) % 3 },
	}
	for _, workers := range []int{2, 4} {
		_, err := Run(spinner, port.Canonical(graph.Cycle(6)), Options{
			MaxRounds: 500,
			Executor:  ExecutorAsync,
			Workers:   workers,
		})
		if !errors.Is(err, ErrNoHalt) {
			t.Errorf("workers=%d: err = %v, want ErrNoHalt", workers, err)
		}
	}
}
