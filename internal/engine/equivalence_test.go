package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

// equivalenceBudget bounds every run in the property test: machines that
// cannot halt on a given (graph, numbering) must fail identically with
// ErrNoHalt in both executors.
const equivalenceBudget = 60

// suiteGraphs is the graph side of the experiment-suite matrix.
func suiteGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.Path(6),
		graph.Cycle(7),
		graph.Star(5),
		graph.Complete(5),
		graph.Figure1Graph(),
		graph.Petersen(),
		graph.Grid(3, 3),
		graph.Torus(4, 4),
		graph.NoOneFactorCubic(),
		graph.DisjointUnion(graph.Cycle(3), graph.Path(3)),
	}
}

// suiteMachines is the machine side: every registry algorithm plus the
// local test machines covering all receive/send mode combinations.
func suiteMachines(delta int) []machine.Machine {
	ms := []machine.Machine{
		degreeSum(delta),
		inboxEcho(delta, machine.ClassVV),
		inboxEcho(delta, machine.ClassMV),
		inboxEcho(delta, machine.ClassSV),
		inboxEcho(delta, machine.ClassMB),
		inboxEcho(delta, machine.ClassSB),
	}
	for _, name := range algorithms.RegistryNames() {
		ms = append(ms, algorithms.Registry()[name](delta))
	}
	return ms
}

// TestExecutorEquivalence is the property test required of the pool
// executor: for every (machine, graph, numbering) triple in the experiment
// suite, across several worker counts and at GOMAXPROCS 1 and 4, the pool
// executor — now sharding over the BFS locality order, like every other
// parallel driver — must produce results bit-identical to the sequential
// executor: same Output vector, same Rounds, same MessageBytes, same
// Trace, same final States, and identical failures. CI runs this under
// -race, which also proves the shard pass is data-race free.
func TestExecutorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, g := range suiteGraphs() {
			delta := g.MaxDegree()
			numberings := map[string]*port.Numbering{
				"canonical":  port.Canonical(g),
				"random":     port.Random(g, rng),
				"consistent": port.RandomConsistent(g, rng),
			}
			for _, m := range suiteMachines(delta) {
				for pname, p := range numberings {
					label := fmt.Sprintf("procs=%d %s on %v ports=%s", procs, m.Name(), g, pname)
					seq, seqErr := Run(m, p, Options{MaxRounds: equivalenceBudget, RecordTrace: true})
					if seqErr == nil && seq.Shards != 1 {
						t.Fatalf("%s: seq ran on %d shards, want 1", label, seq.Shards)
					}
					for _, workers := range []int{0, 1, 3} {
						pool, poolErr := Run(m, p, Options{
							MaxRounds:   equivalenceBudget,
							RecordTrace: true,
							Executor:    ExecutorPool,
							Workers:     workers,
						})
						if (seqErr == nil) != (poolErr == nil) {
							t.Fatalf("%s workers=%d: seq err %v, pool err %v", label, workers, seqErr, poolErr)
						}
						if seqErr != nil {
							if !errors.Is(poolErr, ErrNoHalt) || !errors.Is(seqErr, ErrNoHalt) {
								t.Fatalf("%s workers=%d: unexpected errors %v / %v", label, workers, seqErr, poolErr)
							}
							continue
						}
						if want := poolShards(workers, g.N()); pool.Shards != want {
							t.Fatalf("%s workers=%d: ran on %d shards, want %d", label, workers, pool.Shards, want)
						}
						if seq.Rounds != pool.Rounds || seq.MessageBytes != pool.MessageBytes {
							t.Fatalf("%s workers=%d: telemetry differs (rounds %d/%d bytes %d/%d)",
								label, workers, seq.Rounds, pool.Rounds, seq.MessageBytes, pool.MessageBytes)
						}
						if !reflect.DeepEqual(seq.Output, pool.Output) {
							t.Fatalf("%s workers=%d: outputs differ\nseq:  %v\npool: %v",
								label, workers, seq.Output, pool.Output)
						}
						if !reflect.DeepEqual(seq.States, pool.States) {
							t.Fatalf("%s workers=%d: final states differ\nseq:  %v\npool: %v",
								label, workers, seq.States, pool.States)
						}
						if !reflect.DeepEqual(seq.Trace, pool.Trace) {
							t.Fatalf("%s workers=%d: traces differ", label, workers)
						}
					}
				}
			}
		}
	}
}

// poolShards mirrors the engine's worker resolution for assertions: an
// explicit count or GOMAXPROCS, clamped to [1, n].
func poolShards(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return max(1, min(workers, n))
}

// TestPoolMatchesSequentialWithInputs covers the InputAware path of §3.4.
func TestPoolMatchesSequentialWithInputs(t *testing.T) {
	g := graph.Cycle(9)
	m := degreeSum(2)
	inputs := make([]string, g.N())
	for v := range inputs {
		inputs[v] = fmt.Sprintf("%d", v%3)
	}
	// degreeSum is not InputAware: both executors must reject identically.
	if _, err := Run(m, port.Canonical(g), Options{Inputs: inputs}); err == nil {
		t.Fatal("sequential executor accepted inputs for a non-InputAware machine")
	}
	if _, err := Run(m, port.Canonical(g), Options{Inputs: inputs, Executor: ExecutorPool}); err == nil {
		t.Fatal("pool executor accepted inputs for a non-InputAware machine")
	}
}
