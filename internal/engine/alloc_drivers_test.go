package engine

// alloc_drivers_test.go backs the generated TestWeakvetAllocPins (see
// zz_generated_weakvet_alloc_test.go): one driver per
// //weakvet:noalloc function, keyed by receiver-qualified name. Each
// driver does its setup once and returns the hot closure that
// testing.AllocsPerRun measures.

import (
	"fmt"

	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

// weakvetHotMachine is a constant-send machine that never halts and
// keeps its states inside the runtime's small-int intern range
// (0..255), so re-boxing the state into the machine.State interface on
// every Step costs nothing and the measurement isolates the engine.
func weakvetHotMachine(delta int) machine.Machine {
	msgs := make([]machine.Message, delta+1)
	for p := range msgs {
		msgs[p] = fmt.Sprintf("m%d", p)
	}
	return &machine.Func{
		MachineName:  "weakvet-hot",
		MachineClass: machine.ClassMV,
		MaxDeg:       delta,
		InitFunc:     func(int) machine.State { return 255 },
		HaltedFunc:   func(machine.State) (machine.Output, bool) { return "", false },
		SendFunc:     func(s machine.State, p int) machine.Message { return msgs[p] },
		StepFunc: func(s machine.State, _ []machine.Message) machine.State {
			n := s.(int) - 1
			if n < 1 {
				n = 255
			}
			return n
		},
	}
}

// weakvetHotState builds a single-shard run over a torus, primed so the
// hot-path drivers below can run rounds forever without allocating.
func weakvetHotState() *runState {
	g := graph.Torus(8, 8)
	p := port.Canonical(g)
	rs, _, err := newRunState(weakvetHotMachine(g.MaxDegree()), g, p, Options{}, 1)
	if err != nil {
		panic(err)
	}
	return rs
}

var weakvetAllocDrivers = map[string]func() func(){
	"(*runState).sendRank": func() func() {
		rs := weakvetHotState()
		st := &rs.rt.stats[0]
		n := len(rs.order)
		return func() {
			for r := 0; r < n; r++ {
				rs.sendRank(r, rs.cur, st)
			}
			st.bytes = 0
		}
	},
	"(*runState).stepShard": func() func() {
		rs := weakvetHotState()
		rs.rt.start(rs, false)
		rs.rt.run(phaseSend) // fill the first arena so steps consume real inboxes
		st := &rs.rt.stats[0]
		n := len(rs.order)
		return func() {
			rs.stepShard(0, n, st)
			rs.swap()
			st.bytes, st.newHalts = 0, 0
		}
	},
	"(*shardRuntime).fold": func() func() {
		var rt shardRuntime
		rt.init(port.Canonical(graph.Torus(8, 8)).Locality(), 4)
		return func() {
			for w := range rt.stats {
				rt.stats[w].bytes = int64(w)
				rt.stats[w].newHalts = w
			}
			rt.fold()
		}
	},
}
