package engine

// parallel.go implements the sharded worker-pool executor. It replaces the
// old goroutine-per-node/channel-per-link executor, which treated the
// asynchronous message-passing topology as an implementation strategy and
// paid for it with n goroutines, 2m channels and a coordinator round-trip
// per node per round.
//
// Here the node set is partitioned into W ≈ GOMAXPROCS contiguous shards.
// Each round is one combined receive+step+send pass over every shard (see
// runState.stepShard), run by W persistent workers separated by a single
// WaitGroup barrier per round. Workers accumulate message bytes and halt
// counts in per-worker shardStats that the coordinator merges at the
// barrier, so the round loop performs no atomic operations and no
// allocation. The pass itself is data-race free by construction: reads
// touch only the current arena and the worker's own nodes, writes to the
// next arena hit each inbox slot exactly once (the numbering is a
// bijection on ports).
//
// Both executors drive the same shard pass, so the pool is bit-identical
// to the sequential executor; TestExecutorEquivalence asserts this across
// the experiment suite under -race.

import (
	"runtime"
	"sync"

	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

// poolWorkers resolves the worker count: Options.Workers when positive,
// else GOMAXPROCS, always within [1, n].
func poolWorkers(opts Options, n int) int {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func runPool(m machine.Machine, g *graph.Graph, p *port.Numbering, opts Options) (*Result, error) {
	rs, active, err := newRunState(m, g, p, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{States: rs.states}
	if opts.RecordTrace {
		rs.snapshotTrace(res)
	}
	if active == 0 {
		res.Output = rs.outputs
		return res, nil
	}
	n := g.N()
	workers := poolWorkers(opts, n)

	// Contiguous shards: worker w owns nodes [w*n/W, (w+1)*n/W).
	stats := make([]*shardStats, workers)
	cmds := make([]chan poolPhase, workers)
	var barrier sync.WaitGroup
	for w := 0; w < workers; w++ {
		stats[w] = &shardStats{scratch: rs.newScratch()}
		cmds[w] = make(chan poolPhase, 1)
		lo, hi := w*n/workers, (w+1)*n/workers
		go func(cmd <-chan poolPhase, lo, hi int, st *shardStats) {
			for ph := range cmd {
				switch ph {
				case phaseSend:
					rs.sendShard(lo, hi, st)
				default:
					rs.stepShard(lo, hi, st)
				}
				barrier.Done()
			}
		}(cmds[w], lo, hi, stats[w])
	}
	defer func() {
		for _, cmd := range cmds {
			close(cmd)
		}
	}()

	// Each phase fans out to every worker and waits at the barrier,
	// merging the per-worker bytes produced and nodes halted.
	if err := rs.driveRounds(active, opts, res, func(ph poolPhase) (bytes int64, halts int) {
		barrier.Add(workers)
		for _, cmd := range cmds {
			cmd <- ph
		}
		barrier.Wait()
		for _, st := range stats {
			bytes += st.pendingBytes
			halts += st.newHalts
			st.pendingBytes = 0
			st.newHalts = 0
		}
		return bytes, halts
	}); err != nil {
		return nil, err
	}
	res.Output = rs.outputs
	return res, nil
}
