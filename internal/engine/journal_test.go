package engine

// journal_test.go pins the observability invariants of ISSUE 7: the
// serialized journal of a seeded run is byte-identical across worker
// counts, GOMAXPROCS settings and repeated invocations; attaching a
// journal never changes the Result; and the metrics registry mirrors the
// Result counters exactly.

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// journalRun executes one seeded run with a JSONL journal attached and
// returns the serialized journal bytes and the Result.
func journalRun(t *testing.T, m machine.Machine, p *port.Numbering, opts Options) ([]byte, *Result) {
	t.Helper()
	var buf bytes.Buffer
	opts.Obs = &obs.Obs{Sink: obs.NewJournalWriter(&buf)}
	res, err := Run(m, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// hostileOpts builds the async options of one hostile-fault cell —
// byzantine corruption, a healing partition, crash/recovery and
// sender-side retransmission composed over a seeded schedule.
func hostileOpts(t testing.TB, schedSpec string, workers int) Options {
	t.Helper()
	sched, err := schedule.Parse(schedSpec, 77)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("byzantine:0.2,45,200+partition:3,46,200+crash:1,47,200+retransmit:1,48,200", 1)
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		MaxRounds: 200_000,
		Executor:  ExecutorAsync,
		Workers:   workers,
		Schedule:  sched,
		Fault:     plan,
	}
}

// TestJournalShardDeterminism: for a hostile-fault cell, the JSONL
// journal is byte-identical between the single-shard and the four-shard
// async driver, under GOMAXPROCS 1 and 4, and across repeated seeded
// runs — and the Result is bit-identical too.
func TestJournalShardDeterminism(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())
	for _, schedSpec := range []string{"sync", "random:0.3"} {
		baseJ, baseR := journalRun(t, m, p, hostileOpts(t, schedSpec, 1))
		if len(baseJ) == 0 {
			t.Fatalf("schedule=%s: empty journal", schedSpec)
		}
		// The cell must actually exercise the hostile emit sites.
		if baseR.Corruptions == 0 || baseR.Crashes == 0 || baseR.Retransmits == 0 || baseR.Healed == 0 {
			t.Fatalf("schedule=%s: hostile cell too quiet: %+v", schedSpec, baseR)
		}
		prev := runtime.GOMAXPROCS(0)
		for _, procs := range []int{1, 4} {
			runtime.GOMAXPROCS(procs)
			for _, workers := range []int{1, 4} {
				for rep := 0; rep < 2; rep++ {
					j, r := journalRun(t, m, p, hostileOpts(t, schedSpec, workers))
					label := fmt.Sprintf("schedule=%s procs=%d workers=%d rep=%d", schedSpec, procs, workers, rep)
					if !bytes.Equal(baseJ, j) {
						t.Fatalf("%s: journal diverged from workers=1 baseline (%d vs %d bytes)",
							label, len(j), len(baseJ))
					}
					if r.Shards = baseR.Shards; !reflect.DeepEqual(baseR, r) {
						t.Fatalf("%s: Result diverged (modulo Shards)", label)
					}
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestJournalDoesNotPerturbResult: the Result of a journaled run is
// bit-identical to the same seeded run without a journal, for the
// hostile async cell and for both synchronous executors.
func TestJournalDoesNotPerturbResult(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())

	plain, err := Run(m, p, hostileOpts(t, "random:0.3", 1))
	if err != nil {
		t.Fatal(err)
	}
	_, journaled := journalRun(t, m, p, hostileOpts(t, "random:0.3", 1))
	if !reflect.DeepEqual(plain, journaled) {
		t.Error("async: journaled Result differs from plain Result")
	}

	halting := algorithms.MaxDegreeWithin(g.MaxDegree(), 4)
	for _, exec := range []Executor{ExecutorSeq, ExecutorPool} {
		plain, err := Run(halting, p, Options{Executor: exec, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		_, journaled := journalRun(t, halting, p, Options{Executor: exec, Workers: 4})
		if !reflect.DeepEqual(plain, journaled) {
			t.Errorf("%v: journaled Result differs from plain Result", exec)
		}
	}
}

// TestJournalSyncExecutors: the synchronous drivers journal one fire per
// active node per round (sorted by node id within a round) and one halt
// per node, and seq and pool serialize byte-identically.
func TestJournalSyncExecutors(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxDegreeWithin(g.MaxDegree(), 4)

	var seq, pool bytes.Buffer
	var collect obs.Collect
	resSeq, err := Run(m, p, Options{Executor: ExecutorSeq,
		Obs: &obs.Obs{Sink: obs.Tee{obs.NewJournalWriter(&seq), &collect}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, p, Options{Executor: ExecutorPool, Workers: 4,
		Obs: &obs.Obs{Sink: obs.NewJournalWriter(&pool)}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), pool.Bytes()) {
		t.Fatal("seq and pool journals differ")
	}

	fires, halts := 0, 0
	lastStep, lastNode := int64(0), int32(-1)
	for _, e := range collect.Events {
		switch e.Kind {
		case obs.KindFire:
			fires++
		case obs.KindHalt:
			halts++
		default:
			t.Fatalf("unexpected %s event in a fault-free sync run", e.Kind)
		}
		if e.Step != lastStep {
			lastStep, lastNode = e.Step, -1
		}
		if e.Kind == obs.KindFire {
			if e.Node < lastNode {
				t.Fatalf("step %d: fire events not sorted by node (%d after %d)",
					e.Step, e.Node, lastNode)
			}
			lastNode = e.Node
		}
	}
	if halts != g.N() {
		t.Errorf("halt events = %d, want %d", halts, g.N())
	}
	if want := resSeq.Rounds * g.N(); fires > want || fires < g.N() {
		t.Errorf("fire events = %d, outside [%d, %d]", fires, g.N(), want)
	}
}

// TestRunMetricsMirrorResult: after a hostile journaled run, the registry
// counters equal the Result counters, the gauges describe the run, and
// the injected manual clock drove the round histograms.
func TestRunMetricsMirrorResult(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	reg := obs.NewMetrics()
	clock := &obs.ManualClock{}
	opts := hostileOpts(t, "random:0.3", 1)
	opts.Obs = &obs.Obs{Metrics: reg, Clock: clock}
	res, err := Run(algorithms.MaxConsensus(g.MaxDegree()), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Millisecond) // metrics never read the clock after the run

	counters := map[string]int64{
		MetricRuns:         1,
		MetricRounds:       int64(res.Rounds),
		MetricMessageBytes: res.MessageBytes,
		MetricDrops:        res.Drops,
		MetricDups:         res.Dups,
		MetricCorruptions:  res.Corruptions,
		MetricCrashes:      res.Crashes,
		MetricRecoveries:   res.Recoveries,
		MetricRetransmits:  res.Retransmits,
		MetricHealed:       res.Healed,
	}
	var fires int64
	for _, f := range res.Fires {
		fires += f
	}
	counters[MetricFires] = fires
	if res.Fixpoint {
		counters[MetricFixpoints] = 1
	}
	for name, want := range counters {
		if got := reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	gauges := map[string]int64{
		MetricNodes:  int64(g.N()),
		MetricShards: 1,
	}
	for name, want := range gauges {
		if got := reg.Gauge(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Histogram(MetricRoundUs, "", nil).Count(); got != int64(res.Rounds) {
		t.Errorf("%s samples = %d, want %d", MetricRoundUs, got, res.Rounds)
	}
	if got := reg.Histogram(MetricRoundNodeUs, "", nil).Count(); got != int64(res.Rounds) {
		t.Errorf("%s samples = %d, want %d", MetricRoundNodeUs, got, res.Rounds)
	}
}

// TestShardPhaseHistograms: with a registry attached, every shard
// contributes one compute-phase sample per executed step (sync and async),
// merge-phase samples come in whole shard batches on exactly the staged
// steps, and without a registry the engine never reads a clock (no shard
// histograms appear).
func TestShardPhaseHistograms(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())

	// Async, four spawned shards under a hostile cell.
	reg := obs.NewMetrics()
	opts := hostileOpts(t, "random:0.3", 4)
	opts.Obs = &obs.Obs{Metrics: reg}
	res, err := Run(m, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 {
		t.Fatalf("shards = %d, want 4", res.Shards)
	}
	steps := reg.Histogram(MetricShardStepUs, "", nil).Count()
	if want := int64(res.Rounds * res.Shards); steps != want {
		t.Errorf("%s samples = %d, want rounds*shards = %d", MetricShardStepUs, steps, want)
	}
	merges := reg.Histogram(MetricShardMergeUs, "", nil).Count()
	if merges == 0 || merges%int64(res.Shards) != 0 {
		t.Errorf("%s samples = %d, want a positive multiple of %d", MetricShardMergeUs, merges, res.Shards)
	}

	// Synchronous pool executor: one compute sample per shard per round,
	// no merge phase at all.
	reg = obs.NewMetrics()
	res, err = Run(algorithms.MaxDegreeWithin(g.MaxDegree(), 4), p, Options{
		Executor: ExecutorPool,
		Workers:  2,
		Obs:      &obs.Obs{Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	steps = reg.Histogram(MetricShardStepUs, "", nil).Count()
	if want := int64(res.Rounds * res.Shards); steps != want {
		t.Errorf("pool %s samples = %d, want rounds*shards = %d", MetricShardStepUs, steps, want)
	}
	if got := reg.Histogram(MetricShardMergeUs, "", nil).Count(); got != 0 {
		t.Errorf("pool %s samples = %d, want 0", MetricShardMergeUs, got)
	}
}
