package engine

// runtime.go is the shard-owned runtime layer every executor runs on: one
// place that partitions the node set into locality-aware shards, owns the
// per-shard telemetry counters and scratch buffers, and drives the
// worker/barrier fan-out loop. The synchronous driver (router.go) and the
// asynchronous driver (async_driver.go) differ only in the phases they
// plug in; the shard assignment, the counter merge and the barrier
// machinery live here and nowhere else.
//
// Shards are contiguous rank ranges of the graph's BFS locality order
// (graph.BFSOrder via port.Locality, cached per numbering): shard w owns
// the nodes ranked [w·n/W, (w+1)·n/W), a connected, roughly ball-shaped
// patch of the graph whose boundary cuts few links. For the synchronous
// semantics the locality table also lays the message arena out in rank
// order, so each shard's inbox slots are one contiguous region of the
// double-buffered arena — the per-shard arena carve-up that keeps a
// worker's steady-round traffic inside its own patch (and the stepping
// stone to per-socket NUMA arenas).
//
// A runtime runs in one of two forms, chosen at start:
//
//   - inline: no goroutines; run() executes every shard's phase on the
//     caller, in shard order. This is ExecutorSeq — the W=1 degenerate
//     case of the sharded path — and the async driver below the sharding
//     threshold.
//   - spawned: one persistent worker goroutine per shard, parked on a
//     command channel, separated from the coordinator by a WaitGroup
//     barrier per phase. Workers touch only their own shard's stats (and
//     whatever shard state the driver's ownership discipline grants), so
//     phases run with no atomics and no allocation.

import (
	"runtime"
	"sync"
	"time"

	"weakmodels/internal/machine"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
)

// poolWorkers resolves the shard count: Options.Workers when positive,
// else GOMAXPROCS, always within [1, n].
func poolWorkers(opts Options, n int) int {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runtimePhase is a command executed by every shard between two barriers.
// Each driver defines its own phase constants; the runtime only transports
// them.
type runtimePhase uint8

// phaseRunner executes one phase over one shard. Drivers implement it;
// the runtime fans it out.
type phaseRunner interface {
	runPhase(w int, ph runtimePhase)
}

// stepStats accumulates one shard's per-phase telemetry, merged (and
// cleared) by the coordinator's fold at the barrier, plus the shard's
// canonicalisation scratch buffer. Only the owning shard writes to its
// entry during a phase, so the round loop needs no atomic operations.
type stepStats struct {
	step     int   // async only: the schedule step being executed
	bytes    int64 // message bytes produced (sync) or consumed (async)
	newHalts int   // nodes that halted during the phase
	// dur accumulates the shard's wall time inside phases since the last
	// drain, written by the owning shard when the runtime has a clock and
	// drained by the coordinator's runMetrics at the barrier. Zero cost
	// when no metrics registry is attached (nil clock).
	dur time.Duration
	// scratch is the shard's canonicalisation buffer (capacity = max
	// degree), reused across nodes and rounds by the synchronous driver;
	// the async driver keeps its frontier scratch in asyncBufs instead.
	scratch []machine.Message
	// events is the shard's journal buffer for the current phase: only
	// the owning shard appends during a phase, and the coordinator's
	// journal drains (and clears) it at the barrier — the same fold
	// discipline as the counters above. Never touched when the run has no
	// journal, so the disabled path allocates nothing.
	events []obs.Event
}

// shardRuntime is the shard-owned execution substrate. Embed it by value
// in a driver's run state and call init before use.
type shardRuntime struct {
	loc     *port.Locality
	workers int
	stats   []stepStats
	runner  phaseRunner
	cmds    []chan runtimePhase // nil in inline form
	barrier sync.WaitGroup
	// clock, when non-nil, makes every phase stamp its per-shard wall time
	// into stats[w].dur. Drivers set it from their runMetrics hook, so the
	// no-metrics path never reads a clock.
	clock obs.Clock
}

// init binds the runtime to a locality table and resolves the shard count,
// clamped to [1, n] (an empty graph keeps one degenerate shard so spans
// stay well-defined).
func (rt *shardRuntime) init(loc *port.Locality, workers int) {
	n := len(loc.Order)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	rt.loc = loc
	rt.workers = workers
	rt.stats = make([]stepStats, workers)
}

// span returns the rank range [lo, hi) of shard w: both its slice of the
// locality order and — through port.Locality's rank-indexed offsets — its
// contiguous region of the message arena.
func (rt *shardRuntime) span(w int) (lo, hi int) {
	n := len(rt.loc.Order)
	return w * n / rt.workers, (w + 1) * n / rt.workers
}

// nodes returns the node ids shard w owns, in BFS-locality order. The
// slice aliases the cached locality order: callers must not modify it.
func (rt *shardRuntime) nodes(w int) []int32 {
	lo, hi := rt.span(w)
	return rt.loc.Order[lo:hi]
}

// ownerTable builds the node → shard assignment of this runtime's spans.
func (rt *shardRuntime) ownerTable() []int32 {
	owner := make([]int32, len(rt.loc.Order))
	for w := 0; w < rt.workers; w++ {
		lo, hi := rt.span(w)
		for r := lo; r < hi; r++ {
			owner[rt.loc.Order[r]] = int32(w)
		}
	}
	return owner
}

// start pins the driver and, when spawn is set, launches one persistent
// worker goroutine per shard. Without spawn the runtime stays inline:
// run() executes phases on the caller, which is both the W=1 degenerate
// case and data-race free by triviality.
func (rt *shardRuntime) start(r phaseRunner, spawn bool) {
	rt.runner = r
	if !spawn {
		return
	}
	rt.cmds = make([]chan runtimePhase, rt.workers)
	for w := range rt.cmds {
		rt.cmds[w] = make(chan runtimePhase, 1)
		go func(w int, cmd <-chan runtimePhase) {
			for ph := range cmd {
				if rt.clock != nil {
					t0 := rt.clock.Now()
					r.runPhase(w, ph)
					rt.stats[w].dur += rt.clock.Now() - t0
				} else {
					r.runPhase(w, ph)
				}
				rt.barrier.Done()
			}
		}(w, rt.cmds[w])
	}
}

// run executes one phase over every shard and returns once all of them
// finished — the one barrier of the engine. Coordinator-side state written
// before run is visible to the workers (the channel send orders it), and
// shard writes are visible to the coordinator after the barrier.
func (rt *shardRuntime) run(ph runtimePhase) {
	if rt.cmds == nil {
		for w := 0; w < rt.workers; w++ {
			if rt.clock != nil {
				t0 := rt.clock.Now()
				rt.runner.runPhase(w, ph)
				rt.stats[w].dur += rt.clock.Now() - t0
			} else {
				rt.runner.runPhase(w, ph)
			}
		}
		return
	}
	rt.barrier.Add(len(rt.cmds))
	for _, cmd := range rt.cmds {
		cmd <- ph
	}
	rt.barrier.Wait()
}

// fold merges and clears the per-shard telemetry counters — the one
// counter-merge loop of the engine, run by the coordinator between
// barriers.
//
//weakvet:noalloc
func (rt *shardRuntime) fold() (bytes int64, halts int) {
	for w := range rt.stats {
		st := &rt.stats[w]
		bytes += st.bytes
		halts += st.newHalts
		st.bytes, st.newHalts = 0, 0
	}
	return bytes, halts
}

// stop shuts the spawned workers down; a no-op for inline runtimes.
func (rt *shardRuntime) stop() {
	for _, cmd := range rt.cmds {
		close(cmd)
	}
}
