package engine

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// TestFaultRequiresAsyncExecutor: supplying a fault plan to a synchronous
// executor is a configuration error, not a silent ignore.
func TestFaultRequiresAsyncExecutor(t *testing.T) {
	g := graph.Path(3)
	m := degreeSum(g.MaxDegree())
	for _, exec := range []Executor{ExecutorSeq, ExecutorPool} {
		_, err := Run(m, port.Canonical(g), Options{Executor: exec, Fault: fault.Drop(1, 0.5)})
		if err == nil {
			t.Errorf("executor %v accepted Options.Fault", exec)
		}
	}
}

// TestAsyncDropDeliversSilence: a p=1 drop plan replaces every delivered
// message with m0 — the receiver observes silence, but its frontier still
// fills, so the run completes instead of wedging. inboxEcho makes the
// substitution visible in the outputs.
func TestAsyncDropDeliversSilence(t *testing.T) {
	g := graph.Path(3)
	p := port.Canonical(g)
	m := inboxEcho(g.MaxDegree(), machine.ClassMV)
	clean, err := Run(m, p, Options{Executor: ExecutorAsync})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, p, Options{
		Executor: ExecutorAsync,
		Fault:    fault.DropFor(1, 1, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Path(3) has 4 directed links; the single round delivers one message
	// per link, all dropped.
	if res.Drops != 4 {
		t.Errorf("Drops = %d, want 4", res.Drops)
	}
	if reflect.DeepEqual(clean.Output, res.Output) {
		t.Error("dropping every message left the echoed outputs unchanged")
	}
	if res.MessageBytes != 0 {
		t.Errorf("MessageBytes = %d, want 0 (every consumed message was m0)", res.MessageBytes)
	}
}

// TestAsyncDupKeepsOneRoundSemantics: duplicates join the queue behind the
// original, so a 1-round machine still consumes the true round-1 inbox and
// outputs exactly the fault-free result; only the telemetry shows the dups.
func TestAsyncDupKeepsOneRoundSemantics(t *testing.T) {
	g := graph.Star(4)
	p := port.Canonical(g)
	m := inboxEcho(g.MaxDegree(), machine.ClassVV)
	clean, err := Run(m, p, Options{Executor: ExecutorAsync})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, p, Options{
		Executor: ExecutorAsync,
		Fault:    fault.DupFor(1, 1, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dups == 0 {
		t.Error("Dups = 0 under a p=1 duplication plan")
	}
	if !reflect.DeepEqual(clean.Output, res.Output) {
		t.Errorf("duplication changed a 1-round machine's outputs\nclean: %v\nfaulty: %v",
			clean.Output, res.Output)
	}
}

// TestAsyncCrashStopDrains is the not-wedged guarantee: with the star
// centre crash-stopped at step 1, the leaves observe silence (m0), run
// their full 8 gossip rounds, and halt; the run then ends at a detected
// fixpoint with the dead centre frozen un-halted.
func TestAsyncCrashStopDrains(t *testing.T) {
	g := graph.Star(4) // node 0 is the centre
	p := port.Canonical(g)
	m := algorithms.MaxDegreeWithin(g.MaxDegree(), 8)
	res, err := Run(m, p, Options{
		MaxRounds: 10_000,
		Executor:  ExecutorAsync,
		Fault:     fault.CrashAt(0, 1, 0, fault.RecoverNone),
	})
	if err != nil {
		t.Fatalf("crash-stopped run wedged: %v", err)
	}
	if !res.Fixpoint {
		t.Error("crash-stopped run did not end at a fixpoint")
	}
	if res.Crashes != 1 || res.Recoveries != 0 {
		t.Errorf("telemetry crashes=%d recoveries=%d, want 1/0", res.Crashes, res.Recoveries)
	}
	if res.Alive == nil || res.Alive[0] || !res.Alive[1] {
		t.Fatalf("Alive = %v, want centre dead and leaves alive", res.Alive)
	}
	if res.Output[0] != "" {
		t.Errorf("dead centre has output %q, want none", res.Output[0])
	}
	for v := 1; v < g.N(); v++ {
		// The centre's initial μ(x_0) broadcast was already in flight when
		// it crashed — a crash cannot retract a sent message — so every
		// leaf still learns the centre's degree; from then on it hears only
		// silence and gossips to completion on its own.
		if res.Output[v] != "4" {
			t.Errorf("leaf %d output %q, want \"4\"", v, res.Output[v])
		}
	}
}

// TestAsyncCrashRecoverReset: a reset recovery reboots the victim into its
// initial state; the self-stabilising gossip then re-learns the global
// maximum, so the run stabilises to exactly the fault-free configuration.
func TestAsyncCrashRecoverReset(t *testing.T) {
	g := graph.Path(3) // degrees 1,2,1: global max 2
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())
	res, err := Run(m, p, Options{
		MaxRounds: 10_000,
		Executor:  ExecutorAsync,
		Fault:     fault.CrashAt(1, 3, 4, fault.RecoverReset),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixpoint {
		t.Error("run did not end at a fixpoint")
	}
	if res.Crashes != 1 || res.Recoveries != 1 {
		t.Errorf("telemetry crashes=%d recoveries=%d, want 1/1", res.Crashes, res.Recoveries)
	}
	for v, s := range res.States {
		if s.(int) != 2 {
			t.Errorf("node %d stabilised at %v, want 2", v, s)
		}
	}
	for v, alive := range res.Alive {
		if !alive {
			t.Errorf("node %d still dead after recovery", v)
		}
	}
}

// TestAsyncPauseResumesState: a resume recovery keeps the frozen state, so
// a round-counting machine finishes sooner than under a reset recovery —
// and a machine with stable storage (machine.Rebooter) turns a reset into
// a resume.
func TestAsyncPauseResumesState(t *testing.T) {
	g := graph.Path(3)
	p := port.Canonical(g)
	run := func(m machine.Machine, kind fault.RecoverKind) *Result {
		res, err := Run(m, p, Options{
			MaxRounds: 10_000,
			Executor:  ExecutorAsync,
			Fault:     fault.CrashAt(1, 3, 4, kind),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	m := algorithms.MaxDegreeWithin(g.MaxDegree(), 8)
	pause := run(m, fault.RecoverResume)
	reset := run(m, fault.RecoverReset)
	if pause.Rounds >= reset.Rounds {
		t.Errorf("pause took %d steps, reset %d: a resumed round counter should finish sooner",
			pause.Rounds, reset.Rounds)
	}
	if !reflect.DeepEqual(pause.Output, reset.Output) {
		t.Errorf("recovery kind changed the gossip outputs\npause: %v\nreset: %v",
			pause.Output, reset.Output)
	}
	stable := run(stableStore{m}, fault.RecoverReset)
	if stable.Rounds != pause.Rounds {
		t.Errorf("Rebooter run took %d steps, want %d (identical to pause)",
			stable.Rounds, pause.Rounds)
	}
}

// stableStore models persistent storage: the reboot state is the crashed
// state, so a reset recovery degenerates to a resume.
type stableStore struct{ machine.Machine }

func (s stableStore) RebootState(deg int, crashed machine.State) machine.State { return crashed }

// TestAsyncFaultSeededDeterminism is the reproducibility property of the
// -faults/-fault-seed flags: the same (schedule seed, fault seed) pair
// replays a bit-identical run — outputs, states, liveness, telemetry and
// fault counters — across repeated invocations and GOMAXPROCS settings.
func TestAsyncFaultSeededDeterminism(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	machines := []machine.Machine{
		algorithms.MaxConsensus(g.MaxDegree()),
		algorithms.LeafProximityStab(g.MaxDegree(), 3),
	}
	const faultSpec = "drop:0.3,31,200+dup:0.2,32,200+crash:2,33,200"
	for _, m := range machines {
		for _, schedSpec := range []string{"sync", "random:0.3", "adversary:4"} {
			label := fmt.Sprintf("%s schedule=%s", m.Name(), schedSpec)
			runOnce := func() *Result {
				sched, err := schedule.Parse(schedSpec, 77)
				if err != nil {
					t.Fatal(err)
				}
				plan, err := fault.Parse(faultSpec, 1)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(m, p, Options{
					MaxRounds: 200_000,
					Executor:  ExecutorAsync,
					Schedule:  sched,
					Fault:     plan,
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				return res
			}
			base := runOnce()
			if base.Drops == 0 {
				t.Errorf("%s: no drops injected", label)
			}
			if !reflect.DeepEqual(base, runOnce()) {
				t.Fatalf("%s: repeated run diverged", label)
			}
			prev := runtime.GOMAXPROCS(0)
			for _, procs := range []int{1, 4} {
				runtime.GOMAXPROCS(procs)
				got := runOnce()
				if !reflect.DeepEqual(base, got) {
					runtime.GOMAXPROCS(prev)
					t.Fatalf("%s: run diverged under GOMAXPROCS=%d", label, procs)
				}
			}
			runtime.GOMAXPROCS(prev)
		}
	}
}

// TestAsyncFaultFreeResultShape: without a plan the fault fields stay
// zero/nil, so fault-free callers (and the benchmarks guarding the
// zero-overhead claim) see exactly the old result shape.
func TestAsyncFaultFreeResultShape(t *testing.T) {
	g := graph.Cycle(5)
	res, err := Run(degreeSum(g.MaxDegree()), port.Canonical(g), Options{Executor: ExecutorAsync})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alive != nil {
		t.Errorf("Alive = %v on a fault-free run, want nil", res.Alive)
	}
	if res.Drops+res.Dups+res.Crashes+res.Recoveries != 0 {
		t.Error("fault telemetry non-zero on a fault-free run")
	}
	if len(res.States) != g.N() {
		t.Errorf("States has %d entries, want %d", len(res.States), g.N())
	}
}
