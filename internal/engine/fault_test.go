package engine

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// TestFaultRequiresAsyncExecutor: supplying a fault plan to a synchronous
// executor is a configuration error, not a silent ignore.
func TestFaultRequiresAsyncExecutor(t *testing.T) {
	g := graph.Path(3)
	m := degreeSum(g.MaxDegree())
	for _, exec := range []Executor{ExecutorSeq, ExecutorPool} {
		_, err := Run(m, port.Canonical(g), Options{Executor: exec, Fault: fault.Drop(1, 0.5)})
		if err == nil {
			t.Errorf("executor %v accepted Options.Fault", exec)
		}
	}
}

// TestAsyncDropDeliversSilence: a p=1 drop plan replaces every delivered
// message with m0 — the receiver observes silence, but its frontier still
// fills, so the run completes instead of wedging. inboxEcho makes the
// substitution visible in the outputs.
func TestAsyncDropDeliversSilence(t *testing.T) {
	g := graph.Path(3)
	p := port.Canonical(g)
	m := inboxEcho(g.MaxDegree(), machine.ClassMV)
	clean, err := Run(m, p, Options{Executor: ExecutorAsync})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, p, Options{
		Executor: ExecutorAsync,
		Fault:    fault.DropFor(1, 1, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Path(3) has 4 directed links; the single round delivers one message
	// per link, all dropped.
	if res.Drops != 4 {
		t.Errorf("Drops = %d, want 4", res.Drops)
	}
	if reflect.DeepEqual(clean.Output, res.Output) {
		t.Error("dropping every message left the echoed outputs unchanged")
	}
	if res.MessageBytes != 0 {
		t.Errorf("MessageBytes = %d, want 0 (every consumed message was m0)", res.MessageBytes)
	}
}

// TestAsyncDupKeepsOneRoundSemantics: duplicates join the queue behind the
// original, so a 1-round machine still consumes the true round-1 inbox and
// outputs exactly the fault-free result; only the telemetry shows the dups.
func TestAsyncDupKeepsOneRoundSemantics(t *testing.T) {
	g := graph.Star(4)
	p := port.Canonical(g)
	m := inboxEcho(g.MaxDegree(), machine.ClassVV)
	clean, err := Run(m, p, Options{Executor: ExecutorAsync})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, p, Options{
		Executor: ExecutorAsync,
		Fault:    fault.DupFor(1, 1, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dups == 0 {
		t.Error("Dups = 0 under a p=1 duplication plan")
	}
	if !reflect.DeepEqual(clean.Output, res.Output) {
		t.Errorf("duplication changed a 1-round machine's outputs\nclean: %v\nfaulty: %v",
			clean.Output, res.Output)
	}
}

// TestAsyncCrashStopDrains is the not-wedged guarantee: with the star
// centre crash-stopped at step 1, the leaves observe silence (m0), run
// their full 8 gossip rounds, and halt; the run then ends at a detected
// fixpoint with the dead centre frozen un-halted.
func TestAsyncCrashStopDrains(t *testing.T) {
	g := graph.Star(4) // node 0 is the centre
	p := port.Canonical(g)
	m := algorithms.MaxDegreeWithin(g.MaxDegree(), 8)
	res, err := Run(m, p, Options{
		MaxRounds: 10_000,
		Executor:  ExecutorAsync,
		Fault:     fault.CrashAt(0, 1, 0, fault.RecoverNone),
	})
	if err != nil {
		t.Fatalf("crash-stopped run wedged: %v", err)
	}
	if !res.Fixpoint {
		t.Error("crash-stopped run did not end at a fixpoint")
	}
	if res.Crashes != 1 || res.Recoveries != 0 {
		t.Errorf("telemetry crashes=%d recoveries=%d, want 1/0", res.Crashes, res.Recoveries)
	}
	if res.Alive == nil || res.Alive[0] || !res.Alive[1] {
		t.Fatalf("Alive = %v, want centre dead and leaves alive", res.Alive)
	}
	if res.Output[0] != "" {
		t.Errorf("dead centre has output %q, want none", res.Output[0])
	}
	for v := 1; v < g.N(); v++ {
		// The centre's initial μ(x_0) broadcast was already in flight when
		// it crashed — a crash cannot retract a sent message — so every
		// leaf still learns the centre's degree; from then on it hears only
		// silence and gossips to completion on its own.
		if res.Output[v] != "4" {
			t.Errorf("leaf %d output %q, want \"4\"", v, res.Output[v])
		}
	}
}

// TestAsyncCrashRecoverReset: a reset recovery reboots the victim into its
// initial state; the self-stabilising gossip then re-learns the global
// maximum, so the run stabilises to exactly the fault-free configuration.
func TestAsyncCrashRecoverReset(t *testing.T) {
	g := graph.Path(3) // degrees 1,2,1: global max 2
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())
	res, err := Run(m, p, Options{
		MaxRounds: 10_000,
		Executor:  ExecutorAsync,
		Fault:     fault.CrashAt(1, 3, 4, fault.RecoverReset),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fixpoint {
		t.Error("run did not end at a fixpoint")
	}
	if res.Crashes != 1 || res.Recoveries != 1 {
		t.Errorf("telemetry crashes=%d recoveries=%d, want 1/1", res.Crashes, res.Recoveries)
	}
	for v, s := range res.States {
		if s.(int) != 2 {
			t.Errorf("node %d stabilised at %v, want 2", v, s)
		}
	}
	for v, alive := range res.Alive {
		if !alive {
			t.Errorf("node %d still dead after recovery", v)
		}
	}
}

// TestAsyncPauseResumesState: a resume recovery keeps the frozen state, so
// a round-counting machine finishes sooner than under a reset recovery —
// and a machine with stable storage (machine.Rebooter) turns a reset into
// a resume.
func TestAsyncPauseResumesState(t *testing.T) {
	g := graph.Path(3)
	p := port.Canonical(g)
	run := func(m machine.Machine, kind fault.RecoverKind) *Result {
		res, err := Run(m, p, Options{
			MaxRounds: 10_000,
			Executor:  ExecutorAsync,
			Fault:     fault.CrashAt(1, 3, 4, kind),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	m := algorithms.MaxDegreeWithin(g.MaxDegree(), 8)
	pause := run(m, fault.RecoverResume)
	reset := run(m, fault.RecoverReset)
	if pause.Rounds >= reset.Rounds {
		t.Errorf("pause took %d steps, reset %d: a resumed round counter should finish sooner",
			pause.Rounds, reset.Rounds)
	}
	if !reflect.DeepEqual(pause.Output, reset.Output) {
		t.Errorf("recovery kind changed the gossip outputs\npause: %v\nreset: %v",
			pause.Output, reset.Output)
	}
	stable := run(stableStore{m}, fault.RecoverReset)
	if stable.Rounds != pause.Rounds {
		t.Errorf("Rebooter run took %d steps, want %d (identical to pause)",
			stable.Rounds, pause.Rounds)
	}
}

// stableStore models persistent storage: the reboot state is the crashed
// state, so a reset recovery degenerates to a resume.
type stableStore struct{ machine.Machine }

func (s stableStore) RebootState(deg int, crashed machine.State) machine.State { return crashed }

// TestAsyncByzantineGuardedConvergence: under heavy Byzantine corruption,
// a machine that bounds its alphabet (MaxConsensus's MessageGuard rejects
// values outside [0, Δ]) still stabilises to exactly the fault-free
// configuration once the plan settles — garbage degrades to m0 and
// in-range lies are washed out by the monotone convergence to Δ.
func TestAsyncByzantineGuardedConvergence(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())
	res, err := Run(m, p, Options{
		MaxRounds: 200_000,
		Executor:  ExecutorAsync,
		Fault:     fault.ByzantineFor(7, 0.5, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Corruptions == 0 {
		t.Fatal("no corruptions under a p=0.5 byzantine plan")
	}
	if !res.Fixpoint {
		t.Error("corrupted run did not reach a fixpoint")
	}
	for v, s := range res.States {
		if s.(int) != g.MaxDegree() {
			t.Errorf("node %d stabilised at %v, want the true maximum %d", v, s, g.MaxDegree())
		}
	}
}

// TestAsyncByzantineVisibleWithoutGuard: a machine that accepts every
// payload (inboxEcho has no ValidFunc) sees the corrupted bytes — the
// faulty outputs differ from the clean run, proving corruption really
// rewrites payloads rather than dropping them.
func TestAsyncByzantineVisibleWithoutGuard(t *testing.T) {
	g := graph.Path(3)
	p := port.Canonical(g)
	m := inboxEcho(g.MaxDegree(), machine.ClassMV)
	clean, err := Run(m, p, Options{Executor: ExecutorAsync})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, p, Options{
		Executor: ExecutorAsync,
		Fault:    fault.ByzantineFor(3, 1, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Path(3) has 4 directed links; the single echoed round delivers one
	// message per link, all corrupted.
	if res.Corruptions != 4 {
		t.Errorf("Corruptions = %d, want 4", res.Corruptions)
	}
	if reflect.DeepEqual(clean.Output, res.Output) {
		t.Error("corrupting every message left the echoed outputs unchanged")
	}
}

// TestAsyncPartitionHealsAndConverges: a partition plan cuts a seeded
// island (visible as correlated drops), heals within its horizon (visible
// as Healed), and the gossip then floods across the restored links to the
// fault-free fixpoint.
func TestAsyncPartitionHealsAndConverges(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())
	res, err := Run(m, p, Options{
		MaxRounds: 200_000,
		Executor:  ExecutorAsync,
		Fault:     fault.PartitionFor(5, 5, 80),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops == 0 {
		t.Error("partition cut no deliveries (Drops = 0)")
	}
	if res.Healed == 0 {
		t.Error("Healed = 0 after the horizon")
	}
	if !res.Fixpoint {
		t.Error("partitioned run did not reach a fixpoint after healing")
	}
	for v, s := range res.States {
		if s.(int) != g.MaxDegree() {
			t.Errorf("node %d stabilised at %v, want %d", v, s, g.MaxDegree())
		}
	}
}

// TestAsyncRetransmitRejoinsRecovery: composed with a crash plan, the
// retransmit layer re-sends steady messages on the recovered nodes'
// in-links — counted in Retransmits — and the run still stabilises to the
// fault-free configuration.
func TestAsyncRetransmitRejoinsRecovery(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())
	plan, err := fault.Parse("crash:2,5,100+retransmit:2,6,100", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, p, Options{
		MaxRounds: 200_000,
		Executor:  ExecutorAsync,
		Schedule:  schedule.RoundRobin(),
		Fault:     plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 2 {
		t.Errorf("Recoveries = %d, want 2", res.Recoveries)
	}
	if res.Retransmits == 0 {
		t.Error("Retransmits = 0 after two recoveries under retransmit:2")
	}
	if !res.Fixpoint {
		t.Error("run did not reach a fixpoint")
	}
	for v, s := range res.States {
		if s.(int) != g.MaxDegree() {
			t.Errorf("node %d stabilised at %v, want %d", v, s, g.MaxDegree())
		}
	}
}

// TestAsyncFaultSeededDeterminism is the reproducibility property of the
// -faults/-fault-seed flags: the same (schedule seed, fault seed) pair
// replays a bit-identical run — outputs, states, liveness, telemetry and
// fault counters — across repeated invocations and GOMAXPROCS settings,
// for the silent fault families and the hostile-link ones (byzantine
// corruption, partition-and-heal, sender-side retransmission) alike.
func TestAsyncFaultSeededDeterminism(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	machines := []machine.Machine{
		algorithms.MaxConsensus(g.MaxDegree()),
		algorithms.LeafProximityStab(g.MaxDegree(), 3),
	}
	faultSpecs := []struct {
		spec    string
		nonzero func(*Result) int64 // the counter this family must move
	}{
		{"drop:0.3,31,200+dup:0.2,32,200+crash:2,33,200", func(r *Result) int64 { return r.Drops }},
		{"byzantine:0.3,41,200", func(r *Result) int64 { return r.Corruptions }},
		{"partition:4,42,200", func(r *Result) int64 { return r.Healed }},
		{"crash:2,43,200+retransmit:2,44,200", func(r *Result) int64 { return r.Retransmits }},
		{"byzantine:0.2,45,200+partition:3,46,200+crash:1,47,200+retransmit:1,48,200",
			func(r *Result) int64 { return r.Corruptions + r.Healed }},
	}
	for _, m := range machines {
		for _, schedSpec := range []string{"sync", "random:0.3", "adversary:4"} {
			for _, fs := range faultSpecs {
				label := fmt.Sprintf("%s schedule=%s faults=%s", m.Name(), schedSpec, fs.spec)
				runOnce := func() *Result {
					sched, err := schedule.Parse(schedSpec, 77)
					if err != nil {
						t.Fatal(err)
					}
					plan, err := fault.Parse(fs.spec, 1)
					if err != nil {
						t.Fatal(err)
					}
					res, err := Run(m, p, Options{
						MaxRounds: 200_000,
						Executor:  ExecutorAsync,
						Schedule:  sched,
						Fault:     plan,
					})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					return res
				}
				base := runOnce()
				if fs.nonzero(base) == 0 {
					t.Errorf("%s: fault family injected nothing", label)
				}
				if !reflect.DeepEqual(base, runOnce()) {
					t.Fatalf("%s: repeated run diverged", label)
				}
				prev := runtime.GOMAXPROCS(0)
				for _, procs := range []int{1, 4} {
					runtime.GOMAXPROCS(procs)
					got := runOnce()
					if !reflect.DeepEqual(base, got) {
						runtime.GOMAXPROCS(prev)
						t.Fatalf("%s: run diverged under GOMAXPROCS=%d", label, procs)
					}
				}
				runtime.GOMAXPROCS(prev)
			}
		}
	}
}

// TestAsyncFaultFreeResultShape: without a plan the fault fields stay
// zero/nil, so fault-free callers (and the benchmarks guarding the
// zero-overhead claim) see exactly the old result shape.
func TestAsyncFaultFreeResultShape(t *testing.T) {
	g := graph.Cycle(5)
	res, err := Run(degreeSum(g.MaxDegree()), port.Canonical(g), Options{Executor: ExecutorAsync})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alive != nil {
		t.Errorf("Alive = %v on a fault-free run, want nil", res.Alive)
	}
	if res.Drops+res.Dups+res.Corruptions+res.Crashes+res.Recoveries+res.Retransmits+res.Healed != 0 {
		t.Error("fault telemetry non-zero on a fault-free run")
	}
	if len(res.States) != g.N() {
		t.Errorf("States has %d entries, want %d", len(res.States), g.N())
	}
}
