package engine

import (
	"fmt"
	"io"
	"strings"

	"weakmodels/internal/machine"
)

// snapshotTrace appends a copy of the current state vector x_t to the
// trace. Both executors call it only at round barriers, when no worker is
// mutating states.
func (rs *runState) snapshotTrace(res *Result) {
	res.Trace = append(res.Trace, append([]machine.State(nil), rs.states...))
}

// RenderTrace pretty-prints a recorded execution trace round by round —
// the x_t state vectors of Section 1.3 — for debugging algorithms and for
// the weakrun -trace flag. States print via %v; machines in this library
// use small struct states that render readably.
func RenderTrace(w io.Writer, m machine.Machine, res *Result) error {
	if res.Trace == nil {
		return fmt.Errorf("engine: no trace recorded (set Options.RecordTrace)")
	}
	fmt.Fprintf(w, "trace of %s: %d round(s), %d node(s)\n",
		m.Name(), res.Rounds, len(res.Output))
	for t, states := range res.Trace {
		fmt.Fprintf(w, "t=%d\n", t)
		for v, s := range states {
			marker := " "
			if out, halted := m.Halted(s); halted {
				marker = "■ → " + string(out)
			}
			fmt.Fprintf(w, "  x_%d(%d) = %s %s\n", t, v, compactState(s), marker)
		}
	}
	return nil
}

// compactState renders a state on one line, truncating pathological cases.
func compactState(s machine.State) string {
	str := fmt.Sprintf("%+v", s)
	str = strings.ReplaceAll(str, "\n", " ")
	const limit = 120
	if len(str) > limit {
		str = str[:limit] + "…"
	}
	return str
}
