package engine

// async_parallel.go implements the sharded parallel form of the async
// executor. The single-threaded driver (async.go) runs every schedule and
// fault plan on one core; here the node set is partitioned into W
// locality-aware shards — contiguous slices of a breadth-first order from a
// max-degree root (graph.ShardByBFS), so shard boundaries cut few links —
// and W persistent workers own their shard's nodes outright: the mail and
// flight queues of the shard's in-ports, its ready counters, states, halt
// flags and fire counts are touched by no other goroutine.
//
// The schedule and the fault plan stay the single source of nondeterminism,
// which is what makes the sharded run bit-identical to the single-threaded
// one (TestAsyncShardedEquivalence pins every Result field, under -race):
//
//   - Schedule and plan callbacks run on the coordinator between barriers,
//     over quiescent state, exactly as in the single-threaded driver.
//   - The plan's per-delivery random stream must be drawn in global
//     (link, queue-position) order, so the coordinator pre-draws this
//     step's fates (planFates) and workers only apply them.
//   - Within one step, deliveries happen before firings, and a message
//     emitted at step t is not deliverable before step t+1 — so workers
//     never observe each other's mid-step writes. Same-shard emissions go
//     straight into the owned flight queues; cross-shard emissions are
//     parked in per-(sender, receiver) staging rings and pushed by the
//     receiving shard at the merge barrier. A node fires at most once per
//     step and each out-port emits once per firing, so every flight queue
//     gains at most one message per step and the merge order cannot
//     reorder any queue.
//   - Per-worker byte/halt counters are merged by the coordinator at the
//     barrier; the fixpoint probe (settlement-gated exactly as in the
//     single-threaded driver) fans out per shard, each worker checking its
//     own nodes and queues against the quiescent global state.
//
// At most two barriers per step (fire, then merge — skipped when no worker
// staged anything, the common case under a well-cut sharding and a sparse
// schedule) replace the single-threaded driver's free ordering; everything
// between barriers is data-race free by ownership, which CI's -race run of
// the equivalence suite demonstrates.

import (
	"fmt"

	"sync"
	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// stagedMsg is one cross-shard emission, parked in the sending worker's
// outbound ring until the receiving shard pushes it at the merge barrier.
type stagedMsg struct {
	link int32
	born int
	msg  machine.Message
}

// asyncAutoShardMinNodes gates the default (Workers unset) choice of the
// sharded driver: below this size, two barrier round-trips per step
// outweigh the per-step work and the single-threaded driver wins. An
// explicit Workers > 1 always selects the sharded driver.
const asyncAutoShardMinNodes = 512

// asyncShard is one worker's territory and scratch space.
type asyncShard struct {
	nodes  []int32        // owned nodes, in BFS-locality order
	bufs   *asyncBufs     // frontier/canonicalisation buffers
	stats  asyncStepStats // per-step telemetry, merged at the barrier
	out    [][]stagedMsg  // out[d]: this step's emissions bound for shard d
	staged bool           // whether any out ring is non-empty this step
	probe  bool           // this shard's verdict from the last fixpoint probe
}

// asyncPhase is a command executed by every worker between two barriers.
type asyncPhase int

const (
	// asyncPhaseStep delivers the scheduled messages on the shard's links,
	// then fires the shard's activated full-frontier nodes, staging
	// cross-shard emissions.
	asyncPhaseStep asyncPhase = iota
	// asyncPhaseMerge pushes the emissions other shards staged for this one
	// into the owned flight queues.
	asyncPhaseMerge
	// asyncPhaseProbe evaluates the fixpoint condition over the shard.
	asyncPhaseProbe
)

// shardedAsyncRun is the coordinator state of one sharded run. Fields are
// written by the coordinator only while every worker is parked at its
// command channel; the channel send / WaitGroup barrier pair orders those
// writes against the workers' reads.
type shardedAsyncRun struct {
	as        *asyncState
	dec       *schedule.Decision
	shards    []*asyncShard
	linkOwner []int32 // link → shard id of the receiving node
	t         int     // step being executed

	// This step's pre-drawn delivery fates (plan runs only): link l's
	// deliveries take fates[fateOff[l]:fateOff[l+1]].
	fates   []fault.Fate
	fateOff []int
}

// planFates draws this step's delivery fates from the plan in global
// (link, queue-position) order — the exact order the single-threaded
// executor consumes the plan's random stream in — so the workers can apply
// them shard-locally without touching the plan. Drops/Dups are counted
// here, in the same order, for the same reason.
func (d *shardedAsyncRun) planFates(t int, res *Result) {
	as, dec := d.as, d.dec
	d.fates = d.fates[:0]
	for l := range as.mail {
		d.fateOff[l] = len(d.fates)
		k := int(dec.Deliver[l])
		if dec.DeliverAll || k > as.flight[l].len() {
			k = as.flight[l].len()
		}
		for i := 0; i < k; i++ {
			f := as.plan.Filter(t, l)
			switch f {
			case fault.FateDrop:
				res.Drops++
			case fault.FateDup:
				res.Dups++
			}
			d.fates = append(d.fates, f)
		}
	}
	d.fateOff[len(as.mail)] = len(d.fates)
}

// stepShard runs one step's delivery and firing pass over a shard. Links
// owned by the shard are exactly the in-ports of its nodes, so both passes
// touch only owned queues; emissions to other shards are staged.
func (d *shardedAsyncRun) stepShard(wID int, sh *asyncShard) {
	as, dec := d.as, d.dec
	st := &sh.stats
	st.step, st.bytes, st.newHalts = d.t, 0, 0
	sh.staged = false
	for _, v32 := range sh.nodes {
		v := int(v32)
		lo, hi := as.off[v], as.off[v+1]
		for l := lo; l < hi; l++ {
			if d.fateOff != nil {
				if fates := d.fates[d.fateOff[l]:d.fateOff[l+1]]; len(fates) > 0 {
					as.deliverFated(l, fates)
				}
			} else if dec.DeliverAll {
				as.deliver(l, as.flight[l].len())
			} else if k := dec.Deliver[l]; k > 0 {
				as.deliver(l, int(k))
			}
		}
	}
	for _, v32 := range sh.nodes {
		v := int(v32)
		if (dec.ActivateAll || dec.Activate[v]) && as.canFire(v) {
			as.consume(v, st, sh.bufs)
			d.emitStaged(wID, sh, v, st.step)
		}
	}
}

// emitStaged is the sharded form of asyncState.emit: same-shard
// destinations are pushed directly (their delivery pass for this step is
// over — a step-t emission is deliverable at step t+1 at the earliest,
// exactly as in the single-threaded driver), cross-shard destinations are
// staged for the merge barrier.
func (d *shardedAsyncRun) emitStaged(wID int, sh *asyncShard, v, step int) {
	as := d.as
	lo, hi := as.off[v], as.off[v+1]
	silent := as.silent(v)
	bmsg := as.broadcastMessage(v, silent)
	for s := lo; s < hi; s++ {
		msg := as.portMessage(v, s, lo, silent, bmsg)
		dl := as.dest[s]
		if o := d.linkOwner[dl]; o == int32(wID) {
			as.flight[dl].push(msg, step)
		} else {
			sh.out[o] = append(sh.out[o], stagedMsg{link: dl, born: step, msg: msg})
			sh.staged = true
		}
	}
}

// mergeShard ingests the emissions every other shard staged for this one,
// in sender order. Each flight queue gains at most one message per step, so
// the sender order cannot reorder any single queue.
func (d *shardedAsyncRun) mergeShard(wID int, sh *asyncShard) {
	for _, src := range d.shards {
		in := src.out[wID]
		for i := range in {
			d.as.flight[in[i].link].push(in[i].msg, in[i].born)
			in[i] = stagedMsg{} // release the string
		}
		src.out[wID] = in[:0]
	}
}

// probeShard evaluates the fixpoint condition over the shard's nodes (and
// with them all of its in-link queues). It reads neighbour states across
// shard boundaries, which is safe: nothing is mutated during a probe phase.
func (d *shardedAsyncRun) probeShard(sh *asyncShard) bool {
	for _, v := range sh.nodes {
		if !d.as.nodeAtFixpoint(int(v), sh.bufs) {
			return false
		}
	}
	return true
}

// runAsyncSharded executes the async semantics over W = poolWorkers shards.
// Callers have ensured W ≥ 2; W is additionally clamped to the node count
// by the shard assignment.
func runAsyncSharded(m machine.Machine, g *graph.Graph, p *port.Numbering, opts Options) (*Result, error) {
	sched := opts.Schedule
	if sched == nil {
		sched = schedule.Synchronous()
	}
	as, active, err := newAsyncState(m, g, p, opts)
	if err != nil {
		return nil, err
	}
	n := g.N()
	links := len(as.mail)
	res := &Result{Fires: as.fires, States: as.states, Alive: as.alive}
	if opts.RecordTrace {
		res.Trace = append(res.Trace, append([]machine.State(nil), as.states...))
	}
	res.Output = as.outputs
	if active == 0 {
		return res, nil
	}

	// Locality-aware shard assignment: worker w owns the w-th contiguous
	// slice of the BFS order, and with it every in-port of those nodes.
	shardNodes := graph.ShardByBFS(g, poolWorkers(opts, n))
	workers := len(shardNodes)
	d := &shardedAsyncRun{
		as:        as,
		dec:       schedule.NewDecision(n, links),
		shards:    make([]*asyncShard, workers),
		linkOwner: make([]int32, links),
	}
	owner := make([]int32, n)
	for w, nodes := range shardNodes {
		sh := &asyncShard{
			nodes: make([]int32, len(nodes)),
			bufs:  as.newBufs(),
			out:   make([][]stagedMsg, workers),
		}
		for i, v := range nodes {
			sh.nodes[i] = int32(v)
			owner[v] = int32(w)
		}
		d.shards[w] = sh
	}
	for l := range d.linkOwner {
		d.linkOwner[l] = owner[as.node[l]]
	}
	if as.plan != nil {
		d.fateOff = make([]int, links+1)
	}

	sched.Begin(n, links)
	if as.plan != nil {
		as.plan.Begin(asyncTopology{as: as})
	}
	view := asyncView{as: as}

	// Step 0: every node emits μ(x_0) (halted nodes m0) into the network —
	// on the coordinator, before the workers exist.
	for v := 0; v < n; v++ {
		as.emit(v, 0)
	}

	var barrier sync.WaitGroup
	cmds := make([]chan asyncPhase, workers)
	for w := 0; w < workers; w++ {
		cmds[w] = make(chan asyncPhase, 1)
		go func(wID int, sh *asyncShard, cmd <-chan asyncPhase) {
			for ph := range cmd {
				switch ph {
				case asyncPhaseStep:
					d.stepShard(wID, sh)
				case asyncPhaseMerge:
					d.mergeShard(wID, sh)
				case asyncPhaseProbe:
					sh.probe = d.probeShard(sh)
				}
				barrier.Done()
			}
		}(w, d.shards[w], cmds[w])
	}
	defer func() {
		for _, cmd := range cmds {
			close(cmd)
		}
	}()
	runPhase := func(ph asyncPhase) {
		barrier.Add(workers)
		for _, cmd := range cmds {
			cmd <- ph
		}
		barrier.Wait()
	}

	maxSteps := asyncStepBudget(opts, sched, n)
	checkInterval := asyncFixpointInterval(n)
	nextCheck := checkInterval
	for t := 1; ; t++ {
		if t > maxSteps {
			return nil, fmt.Errorf("%w (step budget %d, machine %q on %v, schedule %s)",
				ErrNoHalt, maxSteps, m.Name(), g, sched.Name())
		}
		d.dec.Reset()
		sched.Step(t, view, d.dec)
		if as.plan != nil {
			active += as.applyFaults(t, view, res)
			d.planFates(t, res)
		}
		d.t = t

		runPhase(asyncPhaseStep)
		// A well-cut sharding stages nothing on most steps under sparse
		// schedules; skipping an empty merge skips a whole barrier.
		staged := false
		for _, sh := range d.shards {
			staged = staged || sh.staged
		}
		if staged {
			runPhase(asyncPhaseMerge)
		}
		for _, sh := range d.shards {
			res.MessageBytes += sh.stats.bytes
			active -= sh.stats.newHalts
		}
		res.Rounds = t
		if opts.RecordTrace {
			res.Trace = append(res.Trace, append([]machine.State(nil), as.states...))
		}
		if active == 0 {
			return res, nil
		}
		if t >= nextCheck {
			nextCheck = t + checkInterval
			// Settlement-gated exactly as in the single-threaded driver: an
			// unsettled plan could still perturb a steady-looking run.
			if as.plan == nil || as.plan.Settled() {
				runPhase(asyncPhaseProbe)
				fix := true
				for _, sh := range d.shards {
					fix = fix && sh.probe
				}
				if fix {
					res.Fixpoint = true
					return res, nil
				}
			}
		}
	}
}
