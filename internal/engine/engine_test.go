package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/term"
)

// degreeSum is a 1-round Vector machine: send own degree everywhere, output
// the sum of received degrees.
func degreeSum(delta int) machine.Machine {
	type st struct {
		deg  int
		done bool
		sum  int
	}
	return &machine.Func{
		MachineName:  "degree-sum",
		MachineClass: machine.ClassVV,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{deg: deg} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			if !x.done {
				return "", false
			}
			return fmt.Sprintf("%d", x.sum), true
		},
		SendFunc: func(s machine.State, _ int) machine.Message {
			return machine.EncodeTerm(term.Int(int64(s.(st).deg)))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			for _, m := range inbox {
				t, err := machine.DecodeTerm(m)
				if err != nil {
					panic(err)
				}
				x.sum += int(t.IntVal())
			}
			x.done = true
			return x
		},
	}
}

// inboxEcho outputs the canonicalised inbox it received in round 1; used to
// demonstrate the Figure 3 receive-mode views.
func inboxEcho(delta int, class machine.Class) machine.Machine {
	type st struct {
		out  string
		done bool
	}
	return &machine.Func{
		MachineName:  "inbox-echo-" + class.String(),
		MachineClass: class,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return x.out, x.done
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			return machine.EncodeTerm(term.Int(int64(p)))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			return st{out: strings.Join(inbox, "|"), done: true}
		},
	}
}

func TestDegreeSumOnStar(t *testing.T) {
	g := graph.Star(4)
	res, err := Run(degreeSum(4), port.Canonical(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
	if res.Output[0] != "4" { // centre hears four leaves of degree 1
		t.Errorf("centre output = %q, want 4", res.Output[0])
	}
	for v := 1; v <= 4; v++ {
		if res.Output[v] != "4" { // each leaf hears the centre of degree 4
			t.Errorf("leaf %d output = %q, want 4", v, res.Output[v])
		}
	}
}

func TestDeltaValidation(t *testing.T) {
	g := graph.Star(5)
	if _, err := Run(degreeSum(3), port.Canonical(g), Options{}); err == nil {
		t.Error("graph with degree 5 accepted by Δ=3 machine")
	}
}

func TestNoHalt(t *testing.T) {
	loop := &machine.Func{
		MachineName:  "loop",
		MachineClass: machine.ClassSB,
		MaxDeg:       2,
		InitFunc:     func(int) machine.State { return 0 },
		HaltedFunc:   func(machine.State) (machine.Output, bool) { return "", false },
		SendFunc:     func(machine.State, int) machine.Message { return machine.NoMessage },
		StepFunc:     func(s machine.State, _ []machine.Message) machine.State { return s },
	}
	_, err := Run(loop, port.Canonical(graph.Cycle(3)), Options{MaxRounds: 25})
	if !errors.Is(err, ErrNoHalt) {
		t.Errorf("err = %v, want ErrNoHalt", err)
	}
}

func TestZeroRoundHalt(t *testing.T) {
	instant := &machine.Func{
		MachineName:  "instant",
		MachineClass: machine.ClassSB,
		MaxDeg:       3,
		InitFunc:     func(deg int) machine.State { return deg },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			return fmt.Sprintf("%d", s.(int)), true
		},
		SendFunc: func(machine.State, int) machine.Message { return machine.NoMessage },
		StepFunc: func(s machine.State, _ []machine.Message) machine.State { return s },
	}
	res, err := Run(instant, port.Canonical(graph.Path(4)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Errorf("rounds = %d, want 0", res.Rounds)
	}
	want := []string{"1", "2", "2", "1"}
	for v, w := range want {
		if res.Output[v] != w {
			t.Errorf("output[%d] = %q, want %q", v, res.Output[v], w)
		}
	}
}

func TestFigure3InboxViews(t *testing.T) {
	// Star centre with k=3 receives (1, 1, 1)-indexed messages from leaves:
	// each leaf sends its out-port number, always 1. Use a path of length 2
	// instead for distinguishable content: centre of P3 receives port
	// numbers from both endpoints.
	//
	// Build a numbering of the star where leaves send different values by
	// using Random numberings of C4 so in-port order differs from sorted
	// order for some sample.
	g := graph.Star(3)
	p := port.Canonical(g)

	vecRes, err := Run(inboxEcho(3, machine.ClassVV), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mulRes, err := Run(inboxEcho(3, machine.ClassMV), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setRes, err := Run(inboxEcho(3, machine.ClassSV), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Leaves all send "1" (their only out-port); the centre's three views:
	// vector (1,1,1), multiset {1,1,1}, set {1}.
	if vecRes.Output[0] != "1|1|1" {
		t.Errorf("vector view = %q, want 1|1|1", vecRes.Output[0])
	}
	if mulRes.Output[0] != "1|1|1" {
		t.Errorf("multiset view = %q, want 1|1|1", mulRes.Output[0])
	}
	if setRes.Output[0] != "1" {
		t.Errorf("set view = %q, want 1", setRes.Output[0])
	}
	// The centre sends 1,2,3 to its three ports; a leaf's vector view is
	// the single message carrying the centre's out-port towards it.
	seen := map[string]bool{}
	for v := 1; v <= 3; v++ {
		seen[vecRes.Output[v]] = true
	}
	if len(seen) != 3 {
		t.Errorf("leaves should see three distinct port numbers, saw %v", seen)
	}
}

func TestFigure4BroadcastEnforcement(t *testing.T) {
	// A machine declaring Broadcast whose Send closure tries to vary by
	// port: the engine must only ever ask for port 1.
	g := graph.Star(3)
	leak := &machine.Func{
		MachineName:  "broadcast-leak",
		MachineClass: machine.ClassVB,
		MaxDeg:       3,
		InitFunc:     func(deg int) machine.State { return "" },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			out := s.(string)
			return out, out != ""
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			return machine.EncodeTerm(term.Int(int64(p))) // would leak port numbers
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			return strings.Join(inbox, "|")
		},
	}
	res, err := Run(leak, port.Canonical(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != "1|1|1" {
		t.Errorf("centre received %q; broadcast enforcement failed", res.Output[0])
	}
}

func TestParseExecutor(t *testing.T) {
	for s, want := range map[string]Executor{
		"seq": ExecutorSeq, "sequential": ExecutorSeq,
		"pool": ExecutorPool, "parallel": ExecutorPool,
	} {
		got, err := ParseExecutor(s)
		if err != nil || got != want {
			t.Errorf("ParseExecutor(%q) = %v, %v; want %v", s, got, err, want)
		}
		if got.String() != want.String() {
			t.Errorf("round trip of %q lost the name", s)
		}
	}
	if _, err := ParseExecutor("nope"); err == nil {
		t.Error("ParseExecutor accepted garbage")
	}
}

func TestUnknownExecutorRejected(t *testing.T) {
	g := graph.Path(3)
	_, err := Run(degreeSum(2), port.Canonical(g), Options{Executor: Executor(99)})
	if err == nil {
		t.Fatal("Run accepted an unknown executor instead of erroring")
	}
}

func TestTraceRecording(t *testing.T) {
	g := graph.Path(3)
	res, err := Run(degreeSum(2), port.Canonical(g), Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Rounds+1 {
		t.Errorf("trace has %d entries, want %d", len(res.Trace), res.Rounds+1)
	}
}

func TestPoolNoHalt(t *testing.T) {
	loop := &machine.Func{
		MachineName:  "loop",
		MachineClass: machine.ClassSB,
		MaxDeg:       2,
		InitFunc:     func(int) machine.State { return 0 },
		HaltedFunc:   func(machine.State) (machine.Output, bool) { return "", false },
		SendFunc:     func(machine.State, int) machine.Message { return machine.NoMessage },
		StepFunc:     func(s machine.State, _ []machine.Message) machine.State { return s },
	}
	_, err := Run(loop, port.Canonical(graph.Cycle(3)), Options{MaxRounds: 10, Executor: ExecutorPool})
	if !errors.Is(err, ErrNoHalt) {
		t.Errorf("err = %v, want ErrNoHalt", err)
	}
}

// TestPoolTraceRecording: the pool executor records the same trace shape as
// the sequential one (the old goroutine-per-node executor never supported
// traces).
func TestPoolTraceRecording(t *testing.T) {
	g := graph.Path(3)
	res, err := Run(degreeSum(2), port.Canonical(g), Options{RecordTrace: true, Executor: ExecutorPool})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Rounds+1 {
		t.Errorf("trace has %d entries, want %d", len(res.Trace), res.Rounds+1)
	}
}

func BenchmarkEngineSequential(b *testing.B) {
	g := graph.Torus(12, 12)
	p := port.Canonical(g)
	m := degreeSum(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, p, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnginePoolExecutor(b *testing.B) {
	g := graph.Torus(12, 12)
	p := port.Canonical(g)
	m := degreeSum(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, p, Options{Executor: ExecutorPool}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRenderTrace(t *testing.T) {
	g := graph.Path(3)
	m := degreeSum(2)
	res, err := Run(m, port.Canonical(g), Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderTrace(&sb, m, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "t=0") || !strings.Contains(out, "t=1") {
		t.Errorf("trace missing rounds:\n%s", out)
	}
	if !strings.Contains(out, "■") {
		t.Errorf("trace missing halt markers:\n%s", out)
	}
	// Without a recorded trace, RenderTrace must refuse.
	bare, err := Run(m, port.Canonical(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderTrace(&sb, m, bare); err == nil {
		t.Error("RenderTrace accepted a result without a trace")
	}
}
