package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// TestAsyncSynchronousEquivalence is the correctness anchor of the async
// executor: under the Synchronous schedule it must be bit-identical to
// ExecutorSeq across the experiment suite — same Output, Rounds,
// MessageBytes and Trace when the sequential run halts, and the same
// ErrNoHalt when it does not. The equivalence budget is below the fixpoint
// probe interval, so detection cannot mask a budget failure here.
func TestAsyncSynchronousEquivalence(t *testing.T) {
	if equivalenceBudget >= asyncFixpointInterval(1) {
		t.Fatalf("equivalence budget %d must stay below the fixpoint probe interval %d",
			equivalenceBudget, asyncFixpointInterval(1))
	}
	rng := rand.New(rand.NewSource(30))
	for _, g := range suiteGraphs() {
		delta := g.MaxDegree()
		numberings := map[string]*port.Numbering{
			"canonical":  port.Canonical(g),
			"random":     port.Random(g, rng),
			"consistent": port.RandomConsistent(g, rng),
		}
		for _, m := range suiteMachines(delta) {
			for pname, p := range numberings {
				label := fmt.Sprintf("%s on %v ports=%s", m.Name(), g, pname)
				seq, seqErr := Run(m, p, Options{MaxRounds: equivalenceBudget, RecordTrace: true})
				// Both the implicit default schedule and an explicit
				// Synchronous must match.
				for _, sched := range []schedule.Schedule{nil, schedule.Synchronous()} {
					async, asyncErr := Run(m, p, Options{
						MaxRounds:   equivalenceBudget,
						RecordTrace: true,
						Executor:    ExecutorAsync,
						Schedule:    sched,
					})
					if (seqErr == nil) != (asyncErr == nil) {
						t.Fatalf("%s: seq err %v, async err %v", label, seqErr, asyncErr)
					}
					if seqErr != nil {
						if !errors.Is(asyncErr, ErrNoHalt) {
							t.Fatalf("%s: unexpected async error %v", label, asyncErr)
						}
						continue
					}
					if seq.Rounds != async.Rounds || seq.MessageBytes != async.MessageBytes {
						t.Fatalf("%s: telemetry differs (rounds %d/%d bytes %d/%d)",
							label, seq.Rounds, async.Rounds, seq.MessageBytes, async.MessageBytes)
					}
					if !reflect.DeepEqual(seq.Output, async.Output) {
						t.Fatalf("%s: outputs differ\nseq:   %v\nasync: %v",
							label, seq.Output, async.Output)
					}
					if !reflect.DeepEqual(seq.Trace, async.Trace) {
						t.Fatalf("%s: traces differ", label)
					}
					if async.Fixpoint {
						t.Fatalf("%s: spurious fixpoint on a halting run", label)
					}
					// Under the synchronous schedule every node fires once
					// per step.
					for v, f := range async.Fires {
						if f != int64(async.Rounds) {
							t.Fatalf("%s: node %d fired %d times in %d rounds", label, v, f, async.Rounds)
						}
					}
				}
			}
		}
	}
}

// undilatedSchedule is a custom schedule without a Dilation method, to
// exercise the assume-n fallback of asyncStepBudget.
type undilatedSchedule struct{ schedule.Schedule }

func TestAsyncStepBudget(t *testing.T) {
	for _, tc := range []struct {
		name  string
		opts  Options
		sched schedule.Schedule
		n     int
		want  int
	}{
		{"explicit is literal", Options{MaxRounds: 7}, schedule.RoundRobin(), 1_000_000, 7},
		{"sync keeps the round budget", Options{}, schedule.Synchronous(), 1_000_000, DefaultMaxRounds},
		{"roundrobin scales by n", Options{}, schedule.RoundRobin(), 50, 50 * DefaultMaxRounds},
		{"scaled budget is capped", Options{}, schedule.RoundRobin(), 12_000, maxDefaultAsyncSteps},
		{"adversary scales by 2·fair", Options{}, schedule.Adversary(1, 3), 50, 6 * DefaultMaxRounds},
		{"unknown schedule assumes n", Options{}, undilatedSchedule{schedule.Synchronous()}, 50, 50 * DefaultMaxRounds},
	} {
		if got := asyncStepBudget(tc.opts, tc.sched, tc.n); got != tc.want {
			t.Errorf("%s: asyncStepBudget = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// asyncFairSchedules builds one fresh instance of every fair non-sync
// generator; schedules are stateful, so each run gets its own.
func asyncFairSchedules(seed int64) []schedule.Schedule {
	return []schedule.Schedule{
		schedule.RoundRobin(),
		schedule.RandomSubset(seed, 0.4),
		schedule.BoundedStaleness(seed, 2),
		schedule.Adversary(seed, 3),
	}
}

// TestAsyncFairSchedulesReachSynchronousOutputs: the Kahn discipline makes
// the k-th firing of a node compute the synchronous state x_k, so under any
// fair schedule a halting machine must reach exactly the sequential
// executor's outputs — only latency and activation counts may differ.
func TestAsyncFairSchedulesReachSynchronousOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	graphs := []*graph.Graph{
		graph.Path(6),
		graph.Cycle(7),
		graph.Star(5),
		graph.Petersen(),
		graph.Grid(3, 3),
		graph.DisjointUnion(graph.Cycle(3), graph.Path(3)),
	}
	for _, g := range graphs {
		delta := g.MaxDegree()
		numberings := map[string]*port.Numbering{
			"canonical": port.Canonical(g),
			"random":    port.Random(g, rng),
		}
		for _, m := range suiteMachines(delta) {
			for pname, p := range numberings {
				seq, err := Run(m, p, Options{MaxRounds: 100})
				if err != nil {
					continue // non-halting on this (graph, numbering): covered by the sync-equivalence test
				}
				for _, sched := range asyncFairSchedules(23) {
					label := fmt.Sprintf("%s on %v ports=%s schedule=%s", m.Name(), g, pname, sched.Name())
					async, err := Run(m, p, Options{
						MaxRounds: 50_000,
						Executor:  ExecutorAsync,
						Schedule:  sched,
					})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if !reflect.DeepEqual(seq.Output, async.Output) {
						t.Fatalf("%s: outputs differ\nseq:   %v\nasync: %v",
							label, seq.Output, async.Output)
					}
					if async.Fixpoint {
						t.Fatalf("%s: spurious fixpoint on a halting run", label)
					}
				}
			}
		}
	}
}

// TestAsyncSeededDeterminism is the reproducibility property the
// -schedule/-seed flags promise: the same (schedule, seed) pair replays a
// bit-identical run — same outputs, telemetry, trace and per-node
// activation counts — across repeated invocations and across GOMAXPROCS
// settings.
func TestAsyncSeededDeterminism(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Random(g, rand.New(rand.NewSource(5)))
	m := degreeSum(g.MaxDegree())
	specs := []string{"roundrobin", "random:0.3", "staleness:2", "adversary:4"}
	const seed = 77
	for _, spec := range specs {
		runOnce := func() *Result {
			sched, err := schedule.Parse(spec, seed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(m, p, Options{
				MaxRounds:   50_000,
				RecordTrace: true,
				Executor:    ExecutorAsync,
				Schedule:    sched,
			})
			if err != nil {
				t.Fatalf("schedule %s: %v", spec, err)
			}
			return res
		}
		base := runOnce()
		repeat := runOnce()
		if !reflect.DeepEqual(base, repeat) {
			t.Fatalf("schedule %s seed %d: repeated run diverged", spec, seed)
		}
		prev := runtime.GOMAXPROCS(0)
		for _, procs := range []int{1, 4} {
			runtime.GOMAXPROCS(procs)
			got := runOnce()
			if !reflect.DeepEqual(base, got) {
				runtime.GOMAXPROCS(prev)
				t.Fatalf("schedule %s seed %d: run diverged under GOMAXPROCS=%d", spec, seed, procs)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestAsyncFixpointDetection: where the synchronous executors can only
// ErrNoHalt on a stabilising machine (algorithms.MaxConsensus), the async
// executor must detect the global fixpoint and stop early, under the
// synchronous schedule and under adversarial ones alike.
func TestAsyncFixpointDetection(t *testing.T) {
	g := graph.Caterpillar(4, 2)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())
	const budget = 50_000

	if _, err := Run(m, p, Options{MaxRounds: 200}); !errors.Is(err, ErrNoHalt) {
		t.Fatalf("sequential executor: err = %v, want ErrNoHalt", err)
	}
	for _, sched := range append(asyncFairSchedules(11), schedule.Synchronous()) {
		res, err := Run(m, p, Options{MaxRounds: budget, Executor: ExecutorAsync, Schedule: sched})
		if err != nil {
			t.Fatalf("schedule %s: %v", sched.Name(), err)
		}
		if !res.Fixpoint {
			t.Fatalf("schedule %s: fixpoint not detected (rounds=%d)", sched.Name(), res.Rounds)
		}
		if res.Rounds >= budget {
			t.Fatalf("schedule %s: fixpoint only at the budget", sched.Name())
		}
		for v, out := range res.Output {
			if out != "" {
				t.Fatalf("schedule %s: non-halted node %d has output %q", sched.Name(), v, out)
			}
		}
	}
}

// TestAsyncRoundRobinLatency pins the central-daemon semantics: one node
// fires per step, so a 1-round algorithm on n nodes halts in exactly n
// steps with every node having fired once.
func TestAsyncRoundRobinLatency(t *testing.T) {
	g := graph.Cycle(5)
	m := degreeSum(g.MaxDegree())
	res, err := Run(m, port.Canonical(g), Options{
		Executor: ExecutorAsync,
		Schedule: schedule.RoundRobin(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != g.N() {
		t.Errorf("rounds = %d, want %d", res.Rounds, g.N())
	}
	for v, f := range res.Fires {
		if f != 1 {
			t.Errorf("node %d fired %d times, want 1", v, f)
		}
	}
}

// dribble is a deliberately awkward schedule: it activates everything every
// step but delivers only one message on one link per step, exercising the
// partial-delivery path and the clamping of oversized requests.
type dribble struct{ links int }

func (d *dribble) Name() string           { return "dribble" }
func (d *dribble) Begin(nodes, links int) { d.links = links }
func (d *dribble) Step(t int, view schedule.View, dec *schedule.Decision) {
	dec.ActivateAll = true
	dec.Deliver[(t-1)%d.links] = 1 << 20 // clamped to the in-flight count
}

func TestAsyncPartialDelivery(t *testing.T) {
	g := graph.Star(4)
	m := degreeSum(g.MaxDegree())
	seq, err := Run(m, port.Canonical(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, port.Canonical(g), Options{
		MaxRounds: 10_000,
		Executor:  ExecutorAsync,
		Schedule:  &dribble{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Output, res.Output) {
		t.Fatalf("outputs differ\nseq:   %v\nasync: %v", seq.Output, res.Output)
	}
}

// TestScheduleRequiresAsyncExecutor: supplying a schedule to a synchronous
// executor is a configuration error, not a silent ignore.
func TestScheduleRequiresAsyncExecutor(t *testing.T) {
	g := graph.Path(3)
	m := degreeSum(g.MaxDegree())
	for _, exec := range []Executor{ExecutorSeq, ExecutorPool} {
		_, err := Run(m, port.Canonical(g), Options{Executor: exec, Schedule: schedule.RoundRobin()})
		if err == nil {
			t.Errorf("executor %v accepted Options.Schedule", exec)
		}
	}
}

// TestAsyncNoHalt: the async executor reports ErrNoHalt at the step budget
// when neither halting nor a fixpoint terminates the run. The spinner keeps
// changing state, so fixpoint detection can never fire.
func TestAsyncNoHalt(t *testing.T) {
	spinner := &machine.Func{
		MachineName:  "spinner",
		MachineClass: machine.ClassSB,
		MaxDeg:       2,
		InitFunc:     func(int) machine.State { return 0 },
		HaltedFunc:   func(machine.State) (machine.Output, bool) { return "", false },
		SendFunc:     func(machine.State, int) machine.Message { return machine.NoMessage },
		StepFunc:     func(s machine.State, _ []machine.Message) machine.State { return (s.(int) + 1) % 3 },
	}
	_, err := Run(spinner, port.Canonical(graph.Cycle(3)), Options{MaxRounds: 500, Executor: ExecutorAsync})
	if !errors.Is(err, ErrNoHalt) {
		t.Errorf("err = %v, want ErrNoHalt", err)
	}
}
