package engine

import (
	"fmt"
	"testing"

	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

// TestRuntimeShardsMatchShardByBFS pins the runtime's shard assignment to
// the public graph.ShardByBFS contract: the nodes shard w owns are exactly
// the w-th contiguous slice of the BFS locality order, for every executor
// that runs on the runtime. weakrun's cut-link telemetry recomputes the
// partition through graph.ShardByBFS, so this equality is what keeps the
// reported boundaries honest.
func TestRuntimeShardsMatchShardByBFS(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Torus(6, 6),
		graph.Star(9),
		graph.Petersen(),
		graph.DisjointUnion(graph.Cycle(4), graph.MustNew(2, nil)),
	}
	for _, g := range graphs {
		p := port.Canonical(g)
		for _, workers := range []int{1, 2, 3, 7, g.N() + 5} {
			var rt shardRuntime
			rt.init(p.Locality(), workers)
			want := graph.ShardByBFS(g, workers)
			if rt.workers != len(want) {
				t.Fatalf("%v workers=%d: runtime has %d shards, ShardByBFS %d",
					g, workers, rt.workers, len(want))
			}
			seen := 0
			for w := 0; w < rt.workers; w++ {
				nodes := rt.nodes(w)
				if len(nodes) != len(want[w]) {
					t.Fatalf("%v workers=%d shard %d: %d nodes, want %d",
						g, workers, w, len(nodes), len(want[w]))
				}
				for i, v := range nodes {
					if int(v) != want[w][i] {
						t.Fatalf("%v workers=%d shard %d: node[%d]=%d, ShardByBFS says %d",
							g, workers, w, i, v, want[w][i])
					}
				}
				seen += len(nodes)
			}
			if seen != g.N() {
				t.Fatalf("%v workers=%d: shards cover %d of %d nodes", g, workers, seen, g.N())
			}
			owner := rt.ownerTable()
			for w := 0; w < rt.workers; w++ {
				for _, v := range rt.nodes(w) {
					if owner[v] != int32(w) {
						t.Fatalf("%v workers=%d: ownerTable[%d]=%d, want %d",
							g, workers, v, owner[v], w)
					}
				}
			}
		}
	}
}

// runtimeCountdown is a constant-send machine halting after the given
// number of rounds; states are small ints, so the machine itself allocates
// nothing and the measurement isolates the engine.
func runtimeCountdown(delta, rounds int) machine.Machine {
	msgs := make([]machine.Message, delta+1)
	for p := range msgs {
		msgs[p] = fmt.Sprintf("m%d", p)
	}
	return &machine.Func{
		MachineName:  "runtime-countdown",
		MachineClass: machine.ClassMV,
		MaxDeg:       delta,
		InitFunc:     func(int) machine.State { return rounds },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			return "done", s.(int) == 0
		},
		SendFunc: func(s machine.State, p int) machine.Message { return msgs[p] },
		StepFunc: func(s machine.State, _ []machine.Message) machine.State {
			return s.(int) - 1
		},
	}
}

// TestRuntimeSteadyRoundsAllocateNothing is the per-shard-arena allocation
// budget: on the inline runtime (ExecutorSeq, the W=1 degenerate case) a
// whole run costs a fixed number of setup allocations — no more than the
// seed's committed 9 — and steady rounds add nothing: quadrupling the
// round count must not change allocs/op. The arena, the per-shard scratch
// buffers and the runtime's stats are all carved out up front.
func TestRuntimeSteadyRoundsAllocateNothing(t *testing.T) {
	g := graph.Torus(16, 16)
	p := port.Canonical(g)
	p.Locality() // compile the cached tables outside the measurement
	allocsFor := func(rounds int) float64 {
		m := runtimeCountdown(g.MaxDegree(), rounds)
		return testing.AllocsPerRun(10, func() {
			if _, err := Run(m, p, Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := allocsFor(8)
	if base > 9 {
		t.Errorf("seq run costs %.0f allocs, want at most the seed's 9", base)
	}
	if long := allocsFor(32); long != base {
		t.Errorf("allocations grew with rounds: %.0f at 8 rounds, %.0f at 32 — steady rounds must allocate nothing",
			base, long)
	}
}
