package engine_test

import (
	"fmt"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/port"
)

// Example runs the paper's Theorem 13 algorithm (class MB: broadcast sends,
// multiset receives) on a star and prints the outputs.
func Example() {
	g := graph.Star(3)
	m := algorithms.OddOdd(g.MaxDegree())
	res, err := engine.Run(m, port.Canonical(g), engine.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("rounds: %d\n", res.Rounds)
	for v, out := range res.Output {
		fmt.Printf("node %d: %s\n", v, out)
	}
	// Output:
	// rounds: 1
	// node 0: 1
	// node 1: 1
	// node 2: 1
	// node 3: 1
}

// ExampleRun_pool shows the sharded worker-pool executor producing the
// same result as the sequential one.
func ExampleRun_pool() {
	g := graph.Cycle(5)
	m := algorithms.EvenDegree(2)
	seq, _ := engine.Run(m, port.Canonical(g), engine.Options{})
	pool, _ := engine.Run(m, port.Canonical(g), engine.Options{Executor: engine.ExecutorPool})
	fmt.Println(seq.Output[0] == pool.Output[0])
	// Output:
	// true
}
