package engine

// journal.go is the engine side of the observability layer
// (internal/obs): the per-run journal plumbing that turns shard-local
// event buffers into one deterministic global stream, and the metrics
// hooks that time rounds and mirror Result counters into a registry.
//
// The ordering discipline mirrors the fault plan's: everything that must
// be globally ordered already happens on the coordinator (crash/recovery/
// retransmission decisions, delivery fates — drawn in global (link,
// queue-position) order whether inline on a single shard or pre-drawn for
// many), so those events go straight into the coordinator's step buffer
// in emission order. Only fire/halt events are produced inside shard
// phases; each shard appends them to its own stepStats buffer (the same
// fold discipline as the byte/halt counters), and the coordinator merges
// them at the barrier by sorting on node id — a canonical order no shard
// count can perturb. The result: the serialized journal of a seeded run
// is byte-identical for every Workers and GOMAXPROCS setting, which
// TestJournalShardDeterminism pins.
//
// Everything here is nil-guarded at the emit sites: with Options.Obs nil
// (or its Sink/Metrics fields nil) the engine allocates nothing and pays
// one pointer test per guarded site — the fault-free sequential path
// keeps its committed 9 allocs/op.

import (
	"cmp"
	"slices"
	"time"

	"weakmodels/internal/fault"
	"weakmodels/internal/obs"
)

// fateKind maps a non-deliver fault fate to its journal event kind.
func fateKind(f fault.Fate) obs.Kind {
	switch f {
	case fault.FateDrop:
		return obs.KindDrop
	case fault.FateDup:
		return obs.KindDup
	default:
		return obs.KindCorrupt
	}
}

// Engine metric names, as exported in the Prometheus text format. The
// *_total counters accumulate across every run that shares the registry;
// the gauges describe the most recent run; the histograms time rounds
// (sync) or schedule steps (async).
const (
	// MetricRuns counts completed runs (successful or fixpoint-stopped).
	MetricRuns = "weak_engine_runs_total"
	// MetricRounds counts executed rounds/steps across runs.
	MetricRounds = "weak_engine_rounds_total"
	// MetricMessageBytes counts delivered non-m0 message bytes.
	MetricMessageBytes = "weak_engine_message_bytes_total"
	// MetricFires counts completed node activations (async only).
	MetricFires = "weak_engine_fires_total"
	// MetricFixpoints counts runs stopped by global fixpoint detection.
	MetricFixpoints = "weak_engine_fixpoints_total"
	// MetricDrops .. MetricHealed mirror the Result fault counters.
	MetricDrops       = "weak_engine_drops_total"
	MetricDups        = "weak_engine_dups_total"
	MetricCorruptions = "weak_engine_corruptions_total"
	MetricCrashes     = "weak_engine_crashes_total"
	MetricRecoveries  = "weak_engine_recoveries_total"
	MetricRetransmits = "weak_engine_retransmits_total"
	MetricHealed      = "weak_engine_healed_total"
	// MetricNodes/MetricShards/MetricAlive describe the last run.
	MetricNodes  = "weak_engine_nodes"
	MetricShards = "weak_engine_shards"
	MetricAlive  = "weak_engine_alive"
	// MetricRoundUs is the per-round (sync) / per-step (async) wall time
	// in microseconds; MetricRoundNodeUs the same divided by the node
	// count — the µs/node/round trend the large sweeps watch.
	MetricRoundUs     = "weak_engine_round_us"
	MetricRoundNodeUs = "weak_engine_round_node_us"
	// MetricShardStepUs observes each shard's wall time in the compute
	// phase, one sample per shard per round/step; MetricShardMergeUs the
	// same for the async cross-shard merge phase (sampled only on steps
	// that staged cross-shard traffic). Their spread is the load-imbalance
	// signal: a healthy sharding keeps all shards' samples close.
	MetricShardStepUs  = "weak_engine_shard_step_us"
	MetricShardMergeUs = "weak_engine_shard_merge_us"
)

// journal adapts an obs.Sink to the engine's phase structure. All methods
// run on the coordinator goroutine; shard phases never touch the journal
// directly — they append to their own stepStats.events buffer, which
// flushStep drains at the barrier.
//
//weakvet:obs newJournal returns nil instead of a journal with a nil sink; every caller guards the *journal, so sink is non-nil by construction
type journal struct {
	sink  obs.Sink
	coord []obs.Event // coordinator-side events of the current step, in emission order
	fired []obs.Event // scratch: the step's shard events, merged for sorting
}

// newJournal returns the journal for a run, or nil when no sink is
// attached — the single check every emit site's nil guard reduces to.
func newJournal(o *obs.Obs) *journal {
	if o == nil || o.Sink == nil {
		return nil
	}
	return &journal{sink: o.Sink}
}

// event emits one record directly. Coordinator only, between barriers.
func (j *journal) event(e obs.Event) { j.sink.Event(e) }

// coordEvent buffers a coordinator-side event of the current step.
func (j *journal) coordEvent(e obs.Event) { j.coord = append(j.coord, e) }

// flushStep drains the step's events to the sink in canonical order:
// coordinator events first, in emission order (they are already drawn in
// global order — node order for crashes/recoveries, global (link,
// queue-position) order for delivery fates); then the shards' fire/halt
// events sorted by node id. One node fires at most once per step, so the
// sort key is unique per node and the stable sort keeps each node's
// fire-before-halt emission order. Clears the shard buffers in place.
func (j *journal) flushStep(stats []stepStats) {
	for _, e := range j.coord {
		j.sink.Event(e)
	}
	j.coord = j.coord[:0]
	j.fired = j.fired[:0]
	for w := range stats {
		j.fired = append(j.fired, stats[w].events...)
		stats[w].events = stats[w].events[:0]
	}
	slices.SortStableFunc(j.fired, func(a, b obs.Event) int {
		return cmp.Compare(a.Node, b.Node)
	})
	for _, e := range j.fired {
		j.sink.Event(e)
	}
}

// finish flushes the sink on every run exit path; a flush error surfaces
// as the run's error when the run itself succeeded.
func (j *journal) finish(err *error) {
	if ferr := j.sink.Flush(); ferr != nil && *err == nil {
		*err = ferr
	}
}

// runMetrics is the per-run metrics hook: round timing plus the final
// counter mirror. Nil when no registry is attached.
//
//weakvet:obs newRunMetrics returns nil instead of a hook with nil fields; callers guard the *runMetrics, so reg/clock/histograms are non-nil by construction
type runMetrics struct {
	reg          *obs.Metrics
	clock        obs.Clock
	nodes        int
	roundUs      *obs.Histogram
	nodeUs       *obs.Histogram
	shardStepUs  *obs.Histogram
	shardMergeUs *obs.Histogram
	t0           time.Duration
}

// newRunMetrics resolves the metrics hook for a run, or nil.
func newRunMetrics(o *obs.Obs, nodes int) *runMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	reg := o.Metrics
	return &runMetrics{
		reg:          reg,
		clock:        o.ResolveClock(),
		nodes:        nodes,
		roundUs:      reg.Histogram(MetricRoundUs, "wall microseconds per round (sync) or schedule step (async)", nil),
		nodeUs:       reg.Histogram(MetricRoundNodeUs, "wall microseconds per node per round", nil),
		shardStepUs:  reg.Histogram(MetricShardStepUs, "per-shard wall microseconds in the compute phase", nil),
		shardMergeUs: reg.Histogram(MetricShardMergeUs, "per-shard wall microseconds in the async merge phase", nil),
	}
}

// roundStart stamps the beginning of a round/step.
func (rm *runMetrics) roundStart() { rm.t0 = rm.clock.Now() }

// shardPhase drains the shards' accumulated phase durations into h, one
// sample per shard. The coordinator calls it right after the phase's
// barrier, so each drain covers exactly one phase.
func (rm *runMetrics) shardPhase(stats []stepStats, h *obs.Histogram) {
	for w := range stats {
		h.Observe(float64(stats[w].dur) / float64(time.Microsecond))
		stats[w].dur = 0
	}
}

// dropShardDurs clears phase durations without observing them, for phases
// (probe, initial send) outside the step/merge histograms.
func (rm *runMetrics) dropShardDurs(stats []stepStats) {
	for w := range stats {
		stats[w].dur = 0
	}
}

// roundEnd observes the round's duration into the timing histograms.
func (rm *runMetrics) roundEnd() {
	us := float64(rm.clock.Now()-rm.t0) / float64(time.Microsecond)
	rm.roundUs.Observe(us)
	rm.nodeUs.Observe(us / float64(rm.nodes))
}

// finish mirrors the run's Result counters into the registry: the
// Prometheus series are the cross-run accumulated view of the same
// numbers Result reports per run. Called only on successful runs, on the
// coordinator.
func (rm *runMetrics) finish(res *Result) {
	reg := rm.reg
	reg.Counter(MetricRuns, "completed engine runs").Inc()
	reg.Counter(MetricRounds, "rounds (sync) / schedule steps (async) executed").Add(int64(res.Rounds))
	reg.Counter(MetricMessageBytes, "non-m0 message bytes delivered").Add(res.MessageBytes)
	if res.Fires != nil {
		var fires int64
		for _, f := range res.Fires {
			fires += f
		}
		reg.Counter(MetricFires, "completed node activations (async)").Add(fires)
	}
	if res.Fixpoint {
		reg.Counter(MetricFixpoints, "runs stopped at a detected global fixpoint").Inc()
	}
	reg.Counter(MetricDrops, "messages delivered as m0 by a fault plan").Add(res.Drops)
	reg.Counter(MetricDups, "messages duplicated by a fault plan").Add(res.Dups)
	reg.Counter(MetricCorruptions, "payloads rewritten by a Byzantine plan").Add(res.Corruptions)
	reg.Counter(MetricCrashes, "node crashes applied").Add(res.Crashes)
	reg.Counter(MetricRecoveries, "node recoveries applied").Add(res.Recoveries)
	reg.Counter(MetricRetransmits, "sender-side retransmissions injected").Add(res.Retransmits)
	reg.Counter(MetricHealed, "partitioned links healed").Add(res.Healed)
	reg.Gauge(MetricNodes, "nodes in the last run").Set(int64(len(res.States)))
	reg.Gauge(MetricShards, "runtime shards of the last run").Set(int64(res.Shards))
	alive := int64(len(res.States))
	if res.Alive != nil {
		alive = 0
		for _, a := range res.Alive {
			if a {
				alive++
			}
		}
	}
	reg.Gauge(MetricAlive, "nodes alive at the end of the last run").Set(alive)
}
