package engine

// snapshot.go is the checkpoint layer of every executor: a Snapshot is the
// full execution state of a run at a step boundary — enough to continue
// the run as if it had never stopped. Options.Checkpoint emits one every
// K steps; Options.Resume restarts a run from one. The guarantee is
// bit-exactness: a resumed run produces the same Result, Trace suffix and
// journal suffix as the uninterrupted run, for every executor and worker
// count. internal/replay builds record/replay/bisect on top of this; the
// bench harness builds restartable n≈10⁶ sweeps on it.
//
// What is captured: states, halt flags, outputs, the async fire counts
// and liveness mask, every per-link mail and flight queue (async) or the
// current arena half plus its pending byte count (sync), the Result
// counters accumulated so far, and — via schedule.Resumable — the opaque
// mid-run state blobs of the schedule and fault generators (RNG cursors,
// pending retransmit bursts, displaced byzantine payloads). What is
// deliberately not captured: anything Begin reconstructs from the spec
// (crash event tables, partition cuts), the sync haltAge counters (reset
// to 0 on restore, provably unobservable: a halted node's extra send
// passes rewrite m0 into slots that read m0 either way), and the derived
// ready counters (recomputed from the mail queues).
//
// The binary form (MarshalBinary/UnmarshalSnapshot) is versioned and
// streams node states through encoding/gob. That puts one honest
// restriction on serializable runs: the machine's states must share one
// concrete, gob-encodable type (exported fields), because the decoder
// derives its type template from m.Init. Machines outside that contract
// (e.g. interface-valued composite states) still checkpoint in memory —
// stabilize's bisection keeps live Snapshot values and never serializes.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"

	"weakmodels/internal/enc"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// snapshotVersion is the binary format version of MarshalBinary.
const snapshotVersion = 1

// FlightMessage is one sent, undelivered message in a Snapshot: the
// payload and the step it was sent at (schedules age messages by it).
type FlightMessage struct {
	Msg  machine.Message
	Born int
}

// Snapshot is the complete execution state of a run at the end of step
// Step. Slices are fully owned by the snapshot (restoring never aliases
// them, so one snapshot can seed many runs — which is what bisection
// does). States are shared, not deep-copied: machine states are immutable
// by the Machine contract (Step is pure).
type Snapshot struct {
	// Step is the step (async) or round (sync) this snapshot was taken at
	// the end of.
	Step int
	// Sync marks a synchronous-executor snapshot (seq/pool); async
	// snapshots resume only on the async executor and vice versa.
	Sync bool

	// Per-node execution state.
	States  []machine.State
	Halted  []bool
	Outputs []machine.Output

	// Async executor state: fire counts, the liveness mask (nil when no
	// fault plan ran) and the per-link delivered/in-flight queues.
	Fires  []int64
	Alive  []bool
	Mail   [][]machine.Message
	Flight [][]FlightMessage

	// Sync executor state: the current arena half in locality-slot order
	// (the messages the next round consumes) and their byte count.
	Inbox   []machine.Message
	Pending int64

	// Result counters accumulated through Step.
	MessageBytes int64
	Drops        int64
	Dups         int64
	Crashes      int64
	Recoveries   int64
	Corruptions  int64
	Retransmits  int64
	Healed       int64

	// Opaque mid-run state of the schedule and fault generators
	// (schedule.Resumable), empty when the generator is stateless after
	// Begin or absent.
	SchedState []byte
	PlanState  []byte
}

// CheckpointOptions ask a run to emit snapshots while it executes.
type CheckpointOptions struct {
	// Every is the snapshot cadence in steps (≥ 1): a snapshot is taken at
	// the end of every step divisible by it, after the step's journal
	// events are flushed, so a resumed run's journal is exactly the
	// original's suffix.
	Every int
	// Sink receives each snapshot. The run owns nothing in it afterwards.
	// A non-nil error aborts the run — a checkpoint that cannot be kept is
	// treated like a journal that cannot be written.
	Sink func(*Snapshot) error
}

// genState captures a generator's mid-run state when it is resumable.
func genState(gen any) []byte {
	if r, ok := gen.(schedule.Resumable); ok {
		return r.SnapshotState()
	}
	return nil
}

// restoreGenState hands a snapshot's generator blob back to the
// generator. The pairing must be exact in both directions: state recorded
// but not restorable (or needed but not recorded) means the resume was
// given a different spec than the snapshot was taken under.
func restoreGenState(gen any, blob []byte, what string) error {
	r, ok := gen.(schedule.Resumable)
	switch {
	case len(blob) == 0 && !ok:
		return nil
	case len(blob) == 0:
		return fmt.Errorf("engine: resume snapshot carries no %s state but %T needs it", what, gen)
	case !ok:
		return fmt.Errorf("engine: resume snapshot carries %s state but %T cannot restore it", what, gen)
	default:
		if err := r.RestoreState(blob); err != nil {
			return fmt.Errorf("engine: restore %s state: %w", what, err)
		}
		return nil
	}
}

// capture snapshots an async run at the end of step t. healed is the
// healer's cumulative count (0 without one); res holds the counters.
func (as *asyncState) capture(t int, res *Result, healed int64, sched schedule.Schedule) *Snapshot {
	links := len(as.mail)
	snap := &Snapshot{
		Step:         t,
		States:       append([]machine.State(nil), as.states...),
		Halted:       append([]bool(nil), as.halted...),
		Outputs:      append([]machine.Output(nil), as.outputs...),
		Fires:        append([]int64(nil), as.fires...),
		Mail:         make([][]machine.Message, links),
		Flight:       make([][]FlightMessage, links),
		MessageBytes: res.MessageBytes,
		Drops:        res.Drops,
		Dups:         res.Dups,
		Crashes:      res.Crashes,
		Recoveries:   res.Recoveries,
		Corruptions:  res.Corruptions,
		Retransmits:  res.Retransmits,
		Healed:       healed,
		SchedState:   genState(sched),
	}
	if as.alive != nil {
		snap.Alive = append([]bool(nil), as.alive...)
	}
	if as.plan != nil {
		snap.PlanState = genState(as.plan)
	}
	for l := 0; l < links; l++ {
		if mq := &as.mail[l]; mq.len() > 0 {
			snap.Mail[l] = append([]machine.Message(nil), mq.buf[mq.head:]...)
		}
		if fq := &as.flight[l]; fq.len() > 0 {
			fs := make([]FlightMessage, 0, fq.len())
			for i := fq.head; i < len(fq.buf); i++ {
				fs = append(fs, FlightMessage{Msg: fq.buf[i].msg, Born: fq.buf[i].born})
			}
			snap.Flight[l] = fs
		}
	}
	return snap
}

// restore loads an async snapshot into a freshly initialised state and
// returns the active (non-halted) node count. Queue contents are copied —
// never aliased — so the snapshot survives to seed further runs.
func (as *asyncState) restore(snap *Snapshot, res *Result) (int, error) {
	n, links := len(as.states), len(as.mail)
	if snap.Sync {
		return 0, fmt.Errorf("engine: cannot resume the async executor from a synchronous snapshot")
	}
	if len(snap.States) != n || len(snap.Halted) != n || len(snap.Outputs) != n || len(snap.Fires) != n {
		return 0, fmt.Errorf("engine: snapshot is for %d nodes, run has %d", len(snap.States), n)
	}
	if len(snap.Mail) != links || len(snap.Flight) != links {
		return 0, fmt.Errorf("engine: snapshot is for %d links, run has %d", len(snap.Mail), links)
	}
	if snap.Alive != nil && len(snap.Alive) != n {
		return 0, fmt.Errorf("engine: snapshot liveness mask covers %d nodes, run has %d", len(snap.Alive), n)
	}
	if snap.Step < 1 {
		return 0, fmt.Errorf("engine: snapshot step %d is not a completed step", snap.Step)
	}
	copy(as.states, snap.States)
	copy(as.halted, snap.Halted)
	copy(as.outputs, snap.Outputs)
	copy(as.fires, snap.Fires)
	if snap.Alive != nil && as.alive != nil {
		copy(as.alive, snap.Alive)
	}
	clear(as.ready)
	for l := 0; l < links; l++ {
		mq := &as.mail[l]
		mq.buf, mq.head = append(mq.buf[:0], snap.Mail[l]...), 0
		fq := &as.flight[l]
		fq.buf, fq.head = fq.buf[:0], 0
		for _, fm := range snap.Flight[l] {
			fq.buf = append(fq.buf, flightMsg{msg: fm.Msg, born: fm.Born})
		}
		if mq.len() > 0 {
			as.ready[as.node[l]]++
		}
	}
	res.MessageBytes = snap.MessageBytes
	res.Drops, res.Dups = snap.Drops, snap.Dups
	res.Crashes, res.Recoveries = snap.Crashes, snap.Recoveries
	res.Corruptions, res.Retransmits = snap.Corruptions, snap.Retransmits
	active := 0
	for v := 0; v < n; v++ {
		if !as.halted[v] {
			active++
		}
	}
	return active, nil
}

// capture snapshots a synchronous run at the end of the given round,
// after the arena swap: Inbox is the arena half the next round consumes,
// pending its byte count.
func (rs *runState) capture(round int, res *Result, pending int64) *Snapshot {
	return &Snapshot{
		Step:         round,
		Sync:         true,
		States:       append([]machine.State(nil), rs.states...),
		Halted:       append([]bool(nil), rs.halted...),
		Outputs:      append([]machine.Output(nil), rs.outputs...),
		Inbox:        append([]machine.Message(nil), rs.cur...),
		Pending:      pending,
		MessageBytes: res.MessageBytes,
	}
}

// restore loads a synchronous snapshot and returns the active node count.
// haltAge restarts at 0: the only effect is that long-halted nodes write
// m0 into arena slots that already read as m0, which no round observes.
func (rs *runState) restore(snap *Snapshot, res *Result) (int, error) {
	n := len(rs.states)
	if !snap.Sync {
		return 0, fmt.Errorf("engine: cannot resume a synchronous executor from an async snapshot")
	}
	if len(snap.States) != n || len(snap.Halted) != n || len(snap.Outputs) != n {
		return 0, fmt.Errorf("engine: snapshot is for %d nodes, run has %d", len(snap.States), n)
	}
	if len(snap.Inbox) != len(rs.cur) {
		return 0, fmt.Errorf("engine: snapshot arena has %d slots, run has %d", len(snap.Inbox), len(rs.cur))
	}
	if snap.Step < 1 {
		return 0, fmt.Errorf("engine: snapshot step %d is not a completed round", snap.Step)
	}
	copy(rs.states, snap.States)
	copy(rs.halted, snap.Halted)
	copy(rs.outputs, snap.Outputs)
	copy(rs.cur, snap.Inbox)
	res.MessageBytes = snap.MessageBytes
	active := 0
	for v := 0; v < n; v++ {
		if !rs.halted[v] {
			active++
		}
	}
	return active, nil
}

// MarshalBinary encodes the snapshot in the compact versioned binary
// form. Node states go through encoding/gob, so they must be gob-encodable
// (one concrete type, exported fields); everything else is varint-framed.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	n := len(s.States)
	if len(s.Halted) != n || len(s.Outputs) != n {
		return nil, fmt.Errorf("engine: inconsistent snapshot: %d states, %d halt flags, %d outputs",
			n, len(s.Halted), len(s.Outputs))
	}
	b := []byte{snapshotVersion}
	b = enc.Bool(b, s.Sync)
	b = enc.Int(b, s.Step)
	b = enc.Uvarint(b, uint64(n))
	var sb bytes.Buffer
	genc := gob.NewEncoder(&sb)
	for v := 0; v < n; v++ {
		if err := genc.EncodeValue(reflect.ValueOf(s.States[v])); err != nil {
			return nil, fmt.Errorf("engine: snapshot state of node %d (%T): %w", v, s.States[v], err)
		}
	}
	b = enc.Bytes(b, sb.Bytes())
	for v := 0; v < n; v++ {
		b = enc.Bool(b, s.Halted[v])
	}
	for v := 0; v < n; v++ {
		b = enc.String(b, s.Outputs[v])
	}
	b = enc.Bool(b, s.Fires != nil)
	for _, f := range s.Fires {
		b = enc.Varint(b, f)
	}
	b = enc.Bool(b, s.Alive != nil)
	for _, a := range s.Alive {
		b = enc.Bool(b, a)
	}
	b = enc.Uvarint(b, uint64(len(s.Mail)))
	for _, q := range s.Mail {
		b = enc.Uvarint(b, uint64(len(q)))
		for _, m := range q {
			b = enc.String(b, m)
		}
	}
	b = enc.Uvarint(b, uint64(len(s.Flight)))
	for _, q := range s.Flight {
		b = enc.Uvarint(b, uint64(len(q)))
		for _, fm := range q {
			b = enc.String(b, fm.Msg)
			b = enc.Int(b, fm.Born)
		}
	}
	b = enc.Bool(b, s.Inbox != nil)
	if s.Inbox != nil {
		b = enc.Uvarint(b, uint64(len(s.Inbox)))
		for _, m := range s.Inbox {
			b = enc.String(b, m)
		}
	}
	b = enc.Varint(b, s.Pending)
	b = enc.Varint(b, s.MessageBytes)
	b = enc.Varint(b, s.Drops)
	b = enc.Varint(b, s.Dups)
	b = enc.Varint(b, s.Crashes)
	b = enc.Varint(b, s.Recoveries)
	b = enc.Varint(b, s.Corruptions)
	b = enc.Varint(b, s.Retransmits)
	b = enc.Varint(b, s.Healed)
	b = enc.Bytes(b, s.SchedState)
	b = enc.Bytes(b, s.PlanState)
	return b, nil
}

// UnmarshalSnapshot decodes a MarshalBinary snapshot taken from a run of
// machine m on the numbering p; the machine supplies the state type
// template for the gob stream (via Init, per node degree).
func UnmarshalSnapshot(data []byte, m machine.Machine, p *port.Numbering) (*Snapshot, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("engine: empty snapshot")
	}
	if data[0] != snapshotVersion {
		return nil, fmt.Errorf("engine: snapshot version %d, this build reads %d", data[0], snapshotVersion)
	}
	g := p.Graph()
	rd := enc.NewReader(data[1:])
	s := &Snapshot{}
	s.Sync = rd.Bool()
	s.Step = rd.Int()
	n := int(rd.Uvarint())
	if rd.Err() != nil {
		return nil, rd.Err()
	}
	if n != g.N() {
		return nil, fmt.Errorf("engine: snapshot is for %d nodes, graph has %d", n, g.N())
	}
	stateBytes := rd.Bytes()
	if rd.Err() != nil {
		return nil, rd.Err()
	}
	gdec := gob.NewDecoder(bytes.NewReader(stateBytes))
	s.States = make([]machine.State, n)
	for v := 0; v < n; v++ {
		tmpl := m.Init(g.Degree(v))
		if tmpl == nil {
			return nil, fmt.Errorf("engine: machine %q has no state template for node %d", m.Name(), v)
		}
		rv := reflect.New(reflect.TypeOf(tmpl)).Elem()
		if err := gdec.DecodeValue(rv); err != nil {
			return nil, fmt.Errorf("engine: decode state of node %d: %w", v, err)
		}
		s.States[v] = rv.Interface()
	}
	s.Halted = make([]bool, n)
	for v := 0; v < n; v++ {
		s.Halted[v] = rd.Bool()
	}
	s.Outputs = make([]machine.Output, n)
	for v := 0; v < n; v++ {
		s.Outputs[v] = rd.String()
	}
	if rd.Bool() {
		s.Fires = make([]int64, n)
		for v := 0; v < n; v++ {
			s.Fires[v] = rd.Varint()
		}
	}
	if rd.Bool() {
		s.Alive = make([]bool, n)
		for v := 0; v < n; v++ {
			s.Alive[v] = rd.Bool()
		}
	}
	// Every container length below is checked against either the topology
	// or the remaining byte count (each element costs ≥ 1 byte), so a
	// corrupt length cannot provoke an attacker-sized allocation.
	ports := p.Routes().NumPorts()
	if links := int(rd.Uvarint()); rd.Err() == nil && links > 0 {
		if links != ports {
			return nil, fmt.Errorf("engine: snapshot has %d mail links, numbering has %d ports", links, ports)
		}
		s.Mail = make([][]machine.Message, links)
		for l := 0; l < links && rd.Err() == nil; l++ {
			if k := int(rd.Uvarint()); k > 0 && rd.Err() == nil {
				if k > rd.Len() {
					return nil, fmt.Errorf("engine: snapshot mail queue %d claims %d entries, %d bytes left", l, k, rd.Len())
				}
				q := make([]machine.Message, k)
				for i := range q {
					q[i] = rd.String()
				}
				s.Mail[l] = q
			}
		}
	}
	if links := int(rd.Uvarint()); rd.Err() == nil && links > 0 {
		if links != ports {
			return nil, fmt.Errorf("engine: snapshot has %d flight links, numbering has %d ports", links, ports)
		}
		s.Flight = make([][]FlightMessage, links)
		for l := 0; l < links && rd.Err() == nil; l++ {
			if k := int(rd.Uvarint()); k > 0 && rd.Err() == nil {
				if k > rd.Len() {
					return nil, fmt.Errorf("engine: snapshot flight queue %d claims %d entries, %d bytes left", l, k, rd.Len())
				}
				q := make([]FlightMessage, k)
				for i := range q {
					q[i] = FlightMessage{Msg: rd.String(), Born: rd.Int()}
				}
				s.Flight[l] = q
			}
		}
	}
	if rd.Bool() {
		k := int(rd.Uvarint())
		if rd.Err() == nil && k != ports {
			return nil, fmt.Errorf("engine: snapshot arena has %d slots, numbering has %d ports", k, ports)
		}
		if rd.Err() == nil {
			s.Inbox = make([]machine.Message, k)
			for i := range s.Inbox {
				s.Inbox[i] = rd.String()
			}
		}
	}
	s.Pending = rd.Varint()
	s.MessageBytes = rd.Varint()
	s.Drops = rd.Varint()
	s.Dups = rd.Varint()
	s.Crashes = rd.Varint()
	s.Recoveries = rd.Varint()
	s.Corruptions = rd.Varint()
	s.Retransmits = rd.Varint()
	s.Healed = rd.Varint()
	s.SchedState = append([]byte(nil), rd.Bytes()...)
	s.PlanState = append([]byte(nil), rd.Bytes()...)
	if err := rd.Close(); err != nil {
		return nil, fmt.Errorf("engine: snapshot decode: %w", err)
	}
	if len(s.SchedState) == 0 {
		s.SchedState = nil
	}
	if len(s.PlanState) == 0 {
		s.PlanState = nil
	}
	return s, nil
}
