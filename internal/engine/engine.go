// Package engine executes a distributed state machine on a port-numbered
// graph, implementing the synchronous execution semantics of Section 1.3:
// at each round every node sends μ(x_t(v), j) through each out-port j, the
// messages are routed by the port numbering, and every node updates its
// state with δ. Halted nodes send m0 and never change state.
//
// Two executors are provided: a sequential reference implementation and a
// concurrent one (one goroutine per node, channels as ports, a barrier per
// round). They are required to produce identical results; a test asserts it
// across the whole experiment suite.
package engine

import (
	"errors"
	"fmt"
	"sync"

	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

// DefaultMaxRounds bounds runs of algorithms whose time bound is unknown.
const DefaultMaxRounds = 10_000

// ErrNoHalt is returned when the machine does not stop within the round
// budget.
var ErrNoHalt = errors.New("engine: machine did not halt within the round budget")

// Options configure a run. The zero value is ready to use.
type Options struct {
	// MaxRounds overrides DefaultMaxRounds when positive.
	MaxRounds int
	// RecordTrace captures the full state vector after every round.
	RecordTrace bool
	// Concurrent selects the goroutine-per-node executor.
	Concurrent bool
	// Inputs, when non-nil, supplies the local inputs f(v) of §3.4; the
	// machine must implement machine.InputAware and len(Inputs) must equal
	// the node count.
	Inputs []string
}

// initState initialises a node's state, honouring local inputs.
func initState(m machine.Machine, deg, v int, opts Options) (machine.State, error) {
	if opts.Inputs == nil {
		return m.Init(deg), nil
	}
	ia, ok := m.(machine.InputAware)
	if !ok {
		return nil, fmt.Errorf("engine: inputs supplied but machine %q is not InputAware", m.Name())
	}
	return ia.InitWithInput(deg, opts.Inputs[v]), nil
}

// Result is the outcome of a run.
type Result struct {
	// Output[v] is the local output S(v) of each node.
	Output []machine.Output
	// Rounds is the number of communication rounds executed until every
	// node halted (the time T of Section 1.3).
	Rounds int
	// MessageBytes accumulates the total size of all non-m0 messages
	// delivered, a proxy for communication volume used by the
	// simulation-overhead experiments.
	MessageBytes int64
	// Trace, when recorded, holds the state vector x_t for t = 0..Rounds.
	Trace [][]machine.State
}

// Run executes m on (g, p) and returns the output vector.
//
// It validates that the machine's Δ covers the graph's maximum degree. The
// run stops when every node has halted, or fails with ErrNoHalt after the
// round budget.
func Run(m machine.Machine, p *port.Numbering, opts Options) (*Result, error) {
	g := p.Graph()
	if g.MaxDegree() > m.Delta() {
		return nil, fmt.Errorf("engine: graph max degree %d exceeds machine Δ=%d",
			g.MaxDegree(), m.Delta())
	}
	if opts.Inputs != nil && len(opts.Inputs) != g.N() {
		return nil, fmt.Errorf("engine: %d inputs for %d nodes", len(opts.Inputs), g.N())
	}
	if opts.Concurrent {
		return runConcurrent(m, g, p, opts)
	}
	return runSequential(m, g, p, opts)
}

func runSequential(m machine.Machine, g *graph.Graph, p *port.Numbering, opts Options) (*Result, error) {
	n := g.N()
	states := make([]machine.State, n)
	halted := make([]bool, n)
	outputs := make([]machine.Output, n)
	for v := 0; v < n; v++ {
		s, err := initState(m, g.Degree(v), v, opts)
		if err != nil {
			return nil, err
		}
		states[v] = s
		if out, ok := m.Halted(states[v]); ok {
			halted[v] = true
			outputs[v] = out
		}
	}
	res := &Result{}
	if opts.RecordTrace {
		res.Trace = append(res.Trace, append([]machine.State(nil), states...))
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}

	inboxes := make([][]machine.Message, n)
	for v := 0; v < n; v++ {
		inboxes[v] = make([]machine.Message, g.Degree(v))
	}
	broadcast := m.Class().Send == machine.SendBroadcast

	for round := 1; !allHalted(halted); round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("%w (budget %d, machine %q on %v)",
				ErrNoHalt, maxRounds, m.Name(), g)
		}
		// Send phase: a_{t+1}(u, i) = μ(x_t(v), j) where p((v,j)) = (u,i).
		for v := 0; v < n; v++ {
			deg := g.Degree(v)
			if halted[v] {
				for j := 1; j <= deg; j++ {
					d := p.Dest(v, j)
					inboxes[d.Node][d.Index-1] = machine.NoMessage
				}
				continue
			}
			var bmsg machine.Message
			if broadcast {
				bmsg = m.Send(states[v], 1)
			}
			for j := 1; j <= deg; j++ {
				msg := bmsg
				if !broadcast {
					msg = m.Send(states[v], j)
				}
				d := p.Dest(v, j)
				inboxes[d.Node][d.Index-1] = msg
				res.MessageBytes += int64(len(msg))
			}
		}
		// Receive phase: x_{t+1}(u) = δ(x_t(u), ~a_{t+1}(u)).
		for u := 0; u < n; u++ {
			if halted[u] {
				continue
			}
			inbox := machine.CanonicalInbox(m.Class().Recv, inboxes[u])
			states[u] = m.Step(states[u], inbox)
			if out, ok := m.Halted(states[u]); ok {
				halted[u] = true
				outputs[u] = out
			}
		}
		res.Rounds = round
		if opts.RecordTrace {
			res.Trace = append(res.Trace, append([]machine.State(nil), states...))
		}
	}
	res.Output = outputs
	return res, nil
}

// runConcurrent runs one goroutine per node with channels as directed
// links. Synchrony is preserved by closing over a per-round barrier: all
// sends complete before any receive is processed, exactly like the
// sequential executor. A coordinator collects halt flags each round.
func runConcurrent(m machine.Machine, g *graph.Graph, p *port.Numbering, opts Options) (*Result, error) {
	n := g.N()
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	broadcast := m.Class().Send == machine.SendBroadcast

	// links[v][i] carries the message arriving at in-port i+1 of v in the
	// current round. Buffer 1: each link holds at most one message per round.
	links := make([][]chan machine.Message, n)
	for v := 0; v < n; v++ {
		links[v] = make([]chan machine.Message, g.Degree(v))
		for i := range links[v] {
			links[v][i] = make(chan machine.Message, 1)
		}
	}

	type roundReport struct {
		node   int
		halted bool
		bytes  int64
	}
	reports := make(chan roundReport, n)
	proceed := make([]chan bool, n) // per-node: continue into next round?
	for v := range proceed {
		proceed[v] = make(chan bool, 1)
	}

	states := make([]machine.State, n)
	outputs := make([]machine.Output, n)
	initial := make([]machine.State, n)
	for v := 0; v < n; v++ {
		s, err := initState(m, g.Degree(v), v, opts)
		if err != nil {
			return nil, err
		}
		initial[v] = s
	}
	var mu sync.Mutex // guards states/outputs written at halt time

	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			deg := g.Degree(v)
			state := initial[v]
			out, halted := m.Halted(state)
			for {
				var sent int64
				if !halted {
					var bmsg machine.Message
					if broadcast {
						bmsg = m.Send(state, 1)
					}
					for j := 1; j <= deg; j++ {
						msg := bmsg
						if !broadcast {
							msg = m.Send(state, j)
						}
						d := p.Dest(v, j)
						links[d.Node][d.Index-1] <- msg
						sent += int64(len(msg))
					}
				} else {
					for j := 1; j <= deg; j++ {
						d := p.Dest(v, j)
						links[d.Node][d.Index-1] <- machine.NoMessage
					}
				}
				reports <- roundReport{node: v, halted: halted, bytes: sent}
				if !<-proceed[v] {
					mu.Lock()
					states[v] = state
					outputs[v] = out
					mu.Unlock()
					return
				}
				// All peers have finished sending (the coordinator only
				// signals proceed after collecting every report), so the
				// inbox is complete.
				inbox := make([]machine.Message, deg)
				for i := 0; i < deg; i++ {
					inbox[i] = <-links[v][i]
				}
				if !halted {
					state = m.Step(state, machine.CanonicalInbox(m.Class().Recv, inbox))
					out, halted = m.Halted(state)
				}
			}
		}(v)
	}

	res := &Result{}
	for round := 0; ; round++ {
		allDone := true
		for i := 0; i < n; i++ {
			rep := <-reports
			res.MessageBytes += rep.bytes
			if !rep.halted {
				allDone = false
			}
		}
		if allDone || round >= maxRounds {
			for v := 0; v < n; v++ {
				proceed[v] <- false
			}
			wg.Wait()
			// Drain the channels so nothing leaks.
			for v := range links {
				for _, ch := range links[v] {
					select {
					case <-ch:
					default:
					}
				}
			}
			if !allDone {
				return nil, fmt.Errorf("%w (budget %d, machine %q on %v)",
					ErrNoHalt, maxRounds, m.Name(), g)
			}
			res.Rounds = round
			res.Output = outputs
			return res, nil
		}
		for v := 0; v < n; v++ {
			proceed[v] <- true
		}
	}
}

func allHalted(h []bool) bool {
	for _, x := range h {
		if !x {
			return false
		}
	}
	return true
}
