// Package engine executes a distributed state machine on a port-numbered
// graph, implementing the synchronous execution semantics of Section 1.3:
// at each round every node sends μ(x_t(v), j) through each out-port j, the
// messages are routed by the port numbering, and every node updates its
// state with δ. Halted nodes send m0 and never change state.
//
// # Architecture
//
// The engine is built for scale around three ideas:
//
//   - Flat routing. At Run start the port numbering is compiled (once,
//     cached on the Numbering) into a CSR-style []int32 table mapping each
//     out-port slot directly to its destination inbox slot (port.Routes).
//     The round loop is pure array indexing: no Dest/NeighborIndex calls.
//
//   - Message arena. All inboxes live in two flat []machine.Message arenas
//     (double-buffered): a round is one combined pass per node — consume
//     the inbox from the current arena, step, emit next-round messages into
//     the other arena. Multiset/Set canonicalisation reuses per-worker
//     scratch buffers (machine.CanonicalInboxInto), so steady rounds
//     allocate nothing.
//
//   - Sharded parallelism. The pool executor partitions nodes into
//     contiguous shards over ~GOMAXPROCS workers with one barrier per
//     round; per-worker message-byte and halt counters are merged at the
//     barrier. Because both executors share the same per-shard pass
//     (runState.stepShard), the pool is bit-identical to the sequential
//     executor — a property test asserts it across the experiment suite,
//     including under -race.
package engine

import (
	"errors"
	"fmt"

	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

// DefaultMaxRounds bounds runs of algorithms whose time bound is unknown.
const DefaultMaxRounds = 10_000

// ErrNoHalt is returned when the machine does not stop within the round
// budget.
var ErrNoHalt = errors.New("engine: machine did not halt within the round budget")

// Executor selects the execution strategy. Both executors produce
// bit-identical results; they differ only in wall-clock behaviour.
type Executor int

const (
	// ExecutorSeq is the single-threaded reference executor (the default).
	ExecutorSeq Executor = iota
	// ExecutorPool is the sharded worker-pool executor: nodes are
	// partitioned into contiguous shards over ~GOMAXPROCS workers with one
	// barrier per round.
	ExecutorPool
)

// String returns the -executor flag spelling.
func (e Executor) String() string {
	switch e {
	case ExecutorSeq:
		return "seq"
	case ExecutorPool:
		return "pool"
	default:
		return fmt.Sprintf("Executor(%d)", int(e))
	}
}

// ParseExecutor parses the -executor flag spelling.
func ParseExecutor(s string) (Executor, error) {
	switch s {
	case "seq", "sequential":
		return ExecutorSeq, nil
	case "pool", "parallel":
		return ExecutorPool, nil
	default:
		return 0, fmt.Errorf("engine: unknown executor %q (want seq|pool)", s)
	}
}

// Options configure a run. The zero value is ready to use.
type Options struct {
	// MaxRounds overrides DefaultMaxRounds when positive.
	MaxRounds int
	// RecordTrace captures the full state vector after every round.
	RecordTrace bool
	// Executor selects the execution strategy (default ExecutorSeq).
	Executor Executor
	// Workers bounds the pool executor's worker count when positive
	// (default GOMAXPROCS, capped at the node count).
	Workers int
	// Concurrent selects the parallel executor.
	//
	// Deprecated: set Executor to ExecutorPool instead. Kept so existing
	// callers keep working; it is equivalent to ExecutorPool.
	Concurrent bool
	// Inputs, when non-nil, supplies the local inputs f(v) of §3.4; the
	// machine must implement machine.InputAware and len(Inputs) must equal
	// the node count.
	Inputs []string
}

// executor resolves the Executor/Concurrent options.
func (o Options) executor() Executor {
	if o.Concurrent {
		return ExecutorPool
	}
	return o.Executor
}

// initState initialises a node's state, honouring local inputs.
func initState(m machine.Machine, deg, v int, opts Options) (machine.State, error) {
	if opts.Inputs == nil {
		return m.Init(deg), nil
	}
	ia, ok := m.(machine.InputAware)
	if !ok {
		return nil, fmt.Errorf("engine: inputs supplied but machine %q is not InputAware", m.Name())
	}
	return ia.InitWithInput(deg, opts.Inputs[v]), nil
}

// Result is the outcome of a run.
type Result struct {
	// Output[v] is the local output S(v) of each node.
	Output []machine.Output
	// Rounds is the number of communication rounds executed until every
	// node halted (the time T of Section 1.3).
	Rounds int
	// MessageBytes accumulates the total size of all non-m0 messages
	// delivered, a proxy for communication volume used by the
	// simulation-overhead experiments.
	MessageBytes int64
	// Trace, when recorded, holds the state vector x_t for t = 0..Rounds.
	Trace [][]machine.State
}

// Run executes m on (g, p) and returns the output vector.
//
// It validates that the machine's Δ covers the graph's maximum degree. The
// run stops when every node has halted, or fails with ErrNoHalt after the
// round budget.
func Run(m machine.Machine, p *port.Numbering, opts Options) (*Result, error) {
	g := p.Graph()
	if g.MaxDegree() > m.Delta() {
		return nil, fmt.Errorf("engine: graph max degree %d exceeds machine Δ=%d",
			g.MaxDegree(), m.Delta())
	}
	if opts.Inputs != nil && len(opts.Inputs) != g.N() {
		return nil, fmt.Errorf("engine: %d inputs for %d nodes", len(opts.Inputs), g.N())
	}
	switch exec := opts.executor(); exec {
	case ExecutorPool:
		return runPool(m, g, p, opts)
	case ExecutorSeq:
		return runSequential(m, g, p, opts)
	default:
		return nil, fmt.Errorf("engine: unknown executor %v", exec)
	}
}

// maxRoundsOf resolves the round budget.
func maxRoundsOf(opts Options) int {
	if opts.MaxRounds > 0 {
		return opts.MaxRounds
	}
	return DefaultMaxRounds
}

func runSequential(m machine.Machine, g *graph.Graph, p *port.Numbering, opts Options) (*Result, error) {
	rs, active, err := newRunState(m, g, p, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if opts.RecordTrace {
		rs.snapshotTrace(res)
	}
	if active == 0 {
		res.Output = rs.outputs
		return res, nil
	}
	n := g.N()
	st := &shardStats{scratch: rs.newScratch()}
	if err := rs.driveRounds(active, opts, res, func(ph poolPhase) (int64, int) {
		st.pendingBytes, st.newHalts = 0, 0
		if ph == phaseSend {
			rs.sendShard(0, n, st)
		} else {
			rs.stepShard(0, n, st)
		}
		return st.pendingBytes, st.newHalts
	}); err != nil {
		return nil, err
	}
	res.Output = rs.outputs
	return res, nil
}
