// Package engine executes a distributed state machine on a port-numbered
// graph, implementing the synchronous execution semantics of Section 1.3:
// at each round every node sends μ(x_t(v), j) through each out-port j, the
// messages are routed by the port numbering, and every node updates its
// state with δ. Halted nodes send m0 and never change state.
//
// # Architecture
//
// Every run starts from the same substrate: the port numbering is compiled
// (once, cached on the Numbering) into a CSR-style []int32 routing table
// mapping each out-port slot directly to its destination inbox slot
// (port.Routes), so message delivery is pure array indexing — no
// Dest/NeighborIndex calls in any hot loop. On top of it sit three
// executors with two execution semantics:
//
//   - ExecutorSeq, the single-threaded reference. All inboxes live in two
//     flat []machine.Message arenas (double-buffered): a round is one
//     combined pass per node — consume the inbox from the current arena,
//     step, emit next-round messages into the other arena. Multiset/Set
//     canonicalisation reuses scratch buffers (machine.CanonicalInboxInto),
//     so steady rounds allocate nothing.
//
//   - ExecutorPool, the sharded parallel form of the same semantics: nodes
//     are partitioned into contiguous shards over ~GOMAXPROCS workers with
//     one barrier per round, and per-worker message-byte/halt counters are
//     merged at the barrier. Both executors drive the same per-shard pass
//     (runState.stepShard), so the pool is bit-identical to ExecutorSeq —
//     TestExecutorEquivalence asserts it across the experiment suite,
//     including under -race.
//
//   - ExecutorAsync, the asynchronous semantics. The global barrier is
//     replaced by per-link FIFO queues and a schedule.Schedule that
//     decides, at every step, which nodes are activated and which in-flight
//     messages are delivered. An activated node fires only on a full
//     frontier (one delivered message per in-port), consuming exactly one
//     message per port — Kahn-style discipline that makes the run
//     confluent: schedules control interleaving and latency, never the
//     trajectory, so fair schedules reach the synchronous outputs and the
//     Synchronous schedule reproduces ExecutorSeq bit for bit
//     (TestAsyncSynchronousEquivalence). Runs that stabilise without
//     halting are cut off by fixpoint detection (see async.go); Result
//     reports per-node activation counts and a causality-consistent trace.
//     With Options.Workers > 1 the async semantics run on a sharded
//     parallel driver (async_parallel.go): nodes are partitioned into
//     locality-aware shards — contiguous slices of a BFS order from a
//     max-degree root (graph.ShardByBFS), cutting few links — each worker
//     owns its shard's queues, cross-shard sends are staged and merged at
//     a barrier, and the result is bit-identical to the single-threaded
//     driver for every schedule × fault × graph cell
//     (TestAsyncShardedEquivalence, under -race).
//
// The schedule abstraction (internal/schedule) supplies deterministic
// seeded generators — Synchronous, RoundRobin, RandomSubset,
// BoundedStaleness, Adversary — so any experiment can be re-run under a
// reproducible adversary via Options.Schedule or weakrun's
// -executor=async -schedule=<spec> -seed=<s>.
//
// Layered on top of the schedule, a fault.Plan (Options.Fault) injects
// faults into the async executor: delivered messages can be dropped
// (delivered as m0 — the omission fault of message adversaries, which
// keeps the frontier discipline live) or duplicated, and nodes can crash
// and recover. Crashed nodes keep draining their frontiers and emit m0, so
// neighbours are never wedged; a reset recovery reinitialises the node via
// the machine (machine.Rebooter for stable storage). Fixpoint detection is
// gated on the plan being settled — see async.go.
package engine

import (
	"errors"
	"fmt"

	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// DefaultMaxRounds bounds runs of algorithms whose time bound is unknown.
const DefaultMaxRounds = 10_000

// ErrNoHalt is returned when the machine does not stop within the round
// budget.
var ErrNoHalt = errors.New("engine: machine did not halt within the round budget")

// Executor selects the execution strategy. Both executors produce
// bit-identical results; they differ only in wall-clock behaviour.
type Executor int

const (
	// ExecutorSeq is the single-threaded reference executor (the default).
	ExecutorSeq Executor = iota
	// ExecutorPool is the sharded worker-pool executor: nodes are
	// partitioned into contiguous shards over ~GOMAXPROCS workers with one
	// barrier per round.
	ExecutorPool
	// ExecutorAsync is the asynchronous executor: per-link message queues
	// driven by a schedule.Schedule instead of a global barrier, with
	// fixpoint detection for runs that stabilise without halting. Unlike
	// the other two it interprets the round budget as a step budget and
	// honours Options.Schedule. Options.Workers > 1 selects its sharded
	// parallel driver over locality-aware BFS shards, bit-identical to the
	// single-threaded one.
	ExecutorAsync
)

// String returns the -executor flag spelling.
func (e Executor) String() string {
	switch e {
	case ExecutorSeq:
		return "seq"
	case ExecutorPool:
		return "pool"
	case ExecutorAsync:
		return "async"
	default:
		return fmt.Sprintf("Executor(%d)", int(e))
	}
}

// ParseExecutor parses the -executor flag spelling.
func ParseExecutor(s string) (Executor, error) {
	switch s {
	case "seq", "sequential":
		return ExecutorSeq, nil
	case "pool", "parallel":
		return ExecutorPool, nil
	case "async", "asynchronous":
		return ExecutorAsync, nil
	default:
		return 0, fmt.Errorf("engine: unknown executor %q (want seq|pool|async)", s)
	}
}

// Options configure a run. The zero value is ready to use.
type Options struct {
	// MaxRounds overrides DefaultMaxRounds when positive. For ExecutorAsync
	// it is a step budget and is taken literally; when unset, the default
	// is scaled by the schedule's worst-case steps-per-round dilation (see
	// schedule.Dilated), since e.g. roundrobin needs n steps per round.
	MaxRounds int
	// RecordTrace captures the full state vector after every round.
	RecordTrace bool
	// Executor selects the execution strategy (default ExecutorSeq).
	Executor Executor
	// Workers bounds the shard count of the parallel executors when
	// positive (default GOMAXPROCS, capped at the node count). For
	// ExecutorPool it is the worker-pool size over contiguous shards; for
	// ExecutorAsync it is the number of locality-aware (BFS-order) shards
	// of the parallel async driver — a resolved count of 1 selects the
	// single-threaded driver, as does leaving Workers unset on graphs too
	// small for per-step work to outweigh the shard barriers
	// (asyncAutoShardMinNodes). Every count produces bit-identical
	// results. ExecutorSeq ignores it.
	Workers int
	// Schedule drives the async executor's activation and delivery
	// decisions (default schedule.Synchronous()). Setting it with any
	// other executor is an error. Schedules are stateful: do not share one
	// instance between concurrent runs.
	Schedule schedule.Schedule
	// Fault injects message loss/duplication and node crash/recovery into
	// the async executor (default nil: no faults, and the fault hooks cost
	// nothing). Setting it with any other executor is an error. Plans are
	// stateful: do not share one instance between concurrent runs.
	Fault fault.Plan
	// Concurrent selects the parallel executor.
	//
	// Deprecated: set Executor to ExecutorPool instead. Kept so existing
	// callers keep working; it is equivalent to ExecutorPool.
	Concurrent bool
	// Inputs, when non-nil, supplies the local inputs f(v) of §3.4; the
	// machine must implement machine.InputAware and len(Inputs) must equal
	// the node count.
	Inputs []string
}

// executor resolves the Executor/Concurrent options.
func (o Options) executor() Executor {
	if o.Concurrent {
		return ExecutorPool
	}
	return o.Executor
}

// initState initialises a node's state, honouring local inputs.
func initState(m machine.Machine, deg, v int, opts Options) (machine.State, error) {
	if opts.Inputs == nil {
		return m.Init(deg), nil
	}
	ia, ok := m.(machine.InputAware)
	if !ok {
		return nil, fmt.Errorf("engine: inputs supplied but machine %q is not InputAware", m.Name())
	}
	return ia.InitWithInput(deg, opts.Inputs[v]), nil
}

// Result is the outcome of a run.
type Result struct {
	// Output[v] is the local output S(v) of each node.
	Output []machine.Output
	// Rounds is the number of communication rounds executed until every
	// node halted (the time T of Section 1.3).
	Rounds int
	// MessageBytes accumulates the total size of all non-m0 messages
	// delivered, a proxy for communication volume used by the
	// simulation-overhead experiments.
	MessageBytes int64
	// Trace, when recorded, holds the state vector x_t for t = 0..Rounds.
	// For the async executor each entry is the configuration after one
	// schedule step of the actual interleaved execution, so the sequence is
	// causality-consistent.
	Trace [][]machine.State
	// Fires[v] counts node v's completed activations — firings that
	// consumed a full frontier, including post-halt drain firings. Only the
	// async executor records it; nil otherwise.
	Fires []int64
	// Fixpoint reports that the async executor stopped at a detected global
	// fixpoint before every node halted: no future step could change any
	// state, and every undelivered message was a no-op re-send. Nodes that
	// had not halted have empty outputs.
	Fixpoint bool
	// States is the final state vector x_T of the run — the stabilised
	// configuration when the run ended at a fixpoint. Populated by every
	// executor.
	States []machine.State
	// Alive[v] reports whether node v was alive when the run ended; nil
	// unless a fault plan ran (no plan: everyone is alive). Nodes that are
	// dead at the end were crash-stopped and never recovered.
	Alive []bool
	// Drops counts messages a fault plan delivered as m0, Dups the ones it
	// duplicated, Crashes the node crashes it applied and Recoveries the
	// revivals. All zero when no fault plan ran.
	Drops, Dups         int64
	Crashes, Recoveries int64
}

// Run executes m on (g, p) and returns the output vector.
//
// It validates that the machine's Δ covers the graph's maximum degree. The
// run stops when every node has halted, or fails with ErrNoHalt after the
// round budget.
func Run(m machine.Machine, p *port.Numbering, opts Options) (*Result, error) {
	g := p.Graph()
	if g.MaxDegree() > m.Delta() {
		return nil, fmt.Errorf("engine: graph max degree %d exceeds machine Δ=%d",
			g.MaxDegree(), m.Delta())
	}
	if opts.Inputs != nil && len(opts.Inputs) != g.N() {
		return nil, fmt.Errorf("engine: %d inputs for %d nodes", len(opts.Inputs), g.N())
	}
	exec := opts.executor()
	if opts.Schedule != nil && exec != ExecutorAsync {
		return nil, fmt.Errorf("engine: Options.Schedule is only supported by the async executor, not %v", exec)
	}
	if opts.Fault != nil && exec != ExecutorAsync {
		return nil, fmt.Errorf("engine: Options.Fault is only supported by the async executor, not %v", exec)
	}
	switch exec {
	case ExecutorPool:
		return runPool(m, g, p, opts)
	case ExecutorSeq:
		return runSequential(m, g, p, opts)
	case ExecutorAsync:
		// The sharded driver engages only when there is real parallelism to
		// buy; at one worker the single-threaded driver is the same
		// semantics without the barriers. An explicit Workers > 1 is always
		// honoured; the GOMAXPROCS default additionally requires a graph
		// big enough that per-step work outweighs two barriers. Both
		// drivers are bit-identical for every schedule × fault × graph
		// cell (TestAsyncShardedEquivalence).
		if poolWorkers(opts, g.N()) > 1 && (opts.Workers > 0 || g.N() >= asyncAutoShardMinNodes) {
			return runAsyncSharded(m, g, p, opts)
		}
		return runAsync(m, g, p, opts)
	default:
		return nil, fmt.Errorf("engine: unknown executor %v", exec)
	}
}

// maxRoundsOf resolves the round budget.
func maxRoundsOf(opts Options) int {
	if opts.MaxRounds > 0 {
		return opts.MaxRounds
	}
	return DefaultMaxRounds
}

func runSequential(m machine.Machine, g *graph.Graph, p *port.Numbering, opts Options) (*Result, error) {
	rs, active, err := newRunState(m, g, p, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{States: rs.states}
	if opts.RecordTrace {
		rs.snapshotTrace(res)
	}
	if active == 0 {
		res.Output = rs.outputs
		return res, nil
	}
	n := g.N()
	st := &shardStats{scratch: rs.newScratch()}
	if err := rs.driveRounds(active, opts, res, func(ph poolPhase) (int64, int) {
		st.pendingBytes, st.newHalts = 0, 0
		if ph == phaseSend {
			rs.sendShard(0, n, st)
		} else {
			rs.stepShard(0, n, st)
		}
		return st.pendingBytes, st.newHalts
	}); err != nil {
		return nil, err
	}
	res.Output = rs.outputs
	return res, nil
}
