// Package engine executes a distributed state machine on a port-numbered
// graph, implementing the synchronous execution semantics of Section 1.3:
// at each round every node sends μ(x_t(v), j) through each out-port j, the
// messages are routed by the port numbering, and every node updates its
// state with δ. Halted nodes send m0 and never change state.
//
// # Architecture
//
// Every run starts from the same substrate: the port numbering is compiled
// (once, cached on the Numbering) into a CSR-style []int32 routing table
// mapping each out-port slot directly to its destination inbox slot
// (port.Routes), so message delivery is pure array indexing — no
// Dest/NeighborIndex calls in any hot loop.
//
// On top of it sits one shard-owned runtime (runtime.go) and two execution
// semantics. The runtime partitions the node set into locality-aware
// shards — contiguous slices of a breadth-first order grown from a
// max-degree root (graph.ShardByBFS via port.Locality), so shard
// boundaries cut few links — and owns everything sharding needs: the
// per-shard telemetry counters and scratch buffers, the per-shard arena
// regions, and the worker/barrier fan-out loop. The three Executor values
// are thin selections over it:
//
//   - ExecutorSeq and ExecutorPool run the synchronous semantics of
//     Section 1.3 (router.go): all inboxes live in one flat
//     double-buffered arena laid out in BFS rank order, so each shard's
//     inbox slots form one contiguous per-shard region; a round is one
//     combined pass per node — consume the inbox from the current arena,
//     step, emit next-round messages into the other arena — with one
//     barrier per round and the per-shard byte/halt counters folded at it.
//     Multiset/Set canonicalisation reuses per-shard scratch buffers
//     (machine.CanonicalInboxInto), so steady rounds allocate nothing.
//     ExecutorSeq is the W=1 degenerate case running inline on the
//     caller; ExecutorPool spawns ~GOMAXPROCS shard workers. Both are
//     bit-identical — TestExecutorEquivalence asserts it across the
//     experiment suite, including under -race.
//
//   - ExecutorAsync runs the asynchronous semantics (async.go, the Kahn
//     core; async_driver.go, the driver). The global barrier is replaced
//     by per-link FIFO queues and a schedule.Schedule that decides, at
//     every step, which nodes are activated and which in-flight messages
//     are delivered. An activated node fires only on a full frontier (one
//     delivered message per in-port), consuming exactly one message per
//     port — Kahn-style discipline that makes the run confluent:
//     schedules control interleaving and latency, never the trajectory,
//     so fair schedules reach the synchronous outputs and the Synchronous
//     schedule reproduces ExecutorSeq bit for bit
//     (TestAsyncSynchronousEquivalence). Runs that stabilise without
//     halting are cut off by fixpoint detection (see async.go); Result
//     reports per-node activation counts and a causality-consistent
//     trace. The driver runs on the same shard runtime: each shard owns
//     its nodes' queues outright, cross-shard sends are staged in
//     per-(sender, receiver) rings merged at a barrier, and schedule/
//     fault decisions stay on the coordinator — so one shard (inline, the
//     default below the sharding threshold) and W shards are bit-identical
//     for every schedule × fault × graph cell
//     (TestAsyncShardedEquivalence, under -race).
//
// The schedule abstraction (internal/schedule) supplies deterministic
// seeded generators — Synchronous, RoundRobin, RandomSubset,
// BoundedStaleness, Adversary — so any experiment can be re-run under a
// reproducible adversary via Options.Schedule or weakrun's
// -executor=async -schedule=<spec> -seed=<s>.
//
// Layered on top of the schedule, a fault.Plan (Options.Fault) injects
// faults into the async executor: delivered messages can be dropped
// (delivered as m0 — the omission fault of message adversaries, which
// keeps the frontier discipline live), duplicated or corrupted (a
// Byzantine plan rewrites the payload; machines bound their alphabet via
// machine.MessageGuard so garbage degrades to m0), links can be cut and
// healed (partition plans — correlated omission, so frontiers never
// starve), senders can retransmit their steady message onto links of
// recovering nodes (fault.Decision.Resend), and nodes can crash and
// recover. Crashed nodes keep draining their frontiers and emit m0, so
// neighbours are never wedged; a reset recovery reinitialises the node via
// the machine (machine.Rebooter for stable storage). Fixpoint detection is
// gated on the plan being settled — see async.go.
//
// Observability (Options.Obs, internal/obs) rides the same barriers: shard
// phases append fixed-width journal events to per-shard buffers that the
// coordinator drains in a canonical global order at each fold (journal.go),
// so the serialized JSONL of a seeded run is byte-identical across worker
// counts, and a metrics registry accumulates round timings and the Result
// counters across runs. A nil Obs costs one pointer test per emit site.
package engine

import (
	"errors"
	"fmt"

	"weakmodels/internal/fault"
	"weakmodels/internal/machine"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// DefaultMaxRounds bounds runs of algorithms whose time bound is unknown.
const DefaultMaxRounds = 10_000

// ErrNoHalt is returned when the machine does not stop within the round
// budget.
var ErrNoHalt = errors.New("engine: machine did not halt within the round budget")

// Executor selects the execution strategy. Both executors produce
// bit-identical results; they differ only in wall-clock behaviour.
type Executor int

const (
	// ExecutorSeq is the single-threaded reference executor (the default):
	// the synchronous semantics on one inline runtime shard.
	ExecutorSeq Executor = iota
	// ExecutorPool is the sharded worker-pool executor: the same
	// synchronous semantics over ~GOMAXPROCS locality-aware BFS shards
	// (graph.ShardByBFS) with one barrier per round.
	ExecutorPool
	// ExecutorAsync is the asynchronous executor: per-link message queues
	// driven by a schedule.Schedule instead of a global barrier, with
	// fixpoint detection for runs that stabilise without halting. Unlike
	// the other two it interprets the round budget as a step budget and
	// honours Options.Schedule. Options.Workers > 1 shards it over the
	// same runtime, bit-identically to the single-shard form.
	ExecutorAsync
)

// String returns the -executor flag spelling.
func (e Executor) String() string {
	switch e {
	case ExecutorSeq:
		return "seq"
	case ExecutorPool:
		return "pool"
	case ExecutorAsync:
		return "async"
	default:
		return fmt.Sprintf("Executor(%d)", int(e))
	}
}

// ParseExecutor parses the -executor flag spelling.
func ParseExecutor(s string) (Executor, error) {
	switch s {
	case "seq", "sequential":
		return ExecutorSeq, nil
	case "pool", "parallel":
		return ExecutorPool, nil
	case "async", "asynchronous":
		return ExecutorAsync, nil
	default:
		return 0, fmt.Errorf("engine: unknown executor %q (want seq|pool|async)", s)
	}
}

// Options configure a run. The zero value is ready to use.
type Options struct {
	// MaxRounds overrides DefaultMaxRounds when positive. For ExecutorAsync
	// it is a step budget and is taken literally; when unset, the default
	// is scaled by the schedule's worst-case steps-per-round dilation (see
	// schedule.Dilated), since e.g. roundrobin needs n steps per round.
	MaxRounds int
	// RecordTrace captures the full state vector after every round.
	RecordTrace bool
	// Executor selects the execution strategy (default ExecutorSeq).
	Executor Executor
	// Workers bounds the number of locality-aware (BFS-order) runtime
	// shards of the parallel executors when positive (default GOMAXPROCS,
	// capped at the node count). For ExecutorAsync a resolved count of 1
	// runs the driver inline, as does leaving Workers unset on graphs too
	// small for per-step work to outweigh the shard barriers
	// (asyncAutoShardMinNodes). Every count produces bit-identical
	// results. ExecutorSeq ignores it.
	Workers int
	// Schedule drives the async executor's activation and delivery
	// decisions (default schedule.Synchronous()). Setting it with any
	// other executor is an error. Schedules are stateful: do not share one
	// instance between concurrent runs.
	Schedule schedule.Schedule
	// Fault injects message loss/duplication and node crash/recovery into
	// the async executor (default nil: no faults, and the fault hooks cost
	// nothing). Setting it with any other executor is an error. Plans are
	// stateful: do not share one instance between concurrent runs.
	Fault fault.Plan
	// Inputs, when non-nil, supplies the local inputs f(v) of §3.4; the
	// machine must implement machine.InputAware and len(Inputs) must equal
	// the node count.
	Inputs []string
	// Checkpoint, when non-nil, emits a full-state Snapshot every
	// Checkpoint.Every steps (see snapshot.go). Works under every
	// executor; costs one nil test per step when unset.
	Checkpoint *CheckpointOptions
	// Resume, when non-nil, restarts the run from a Snapshot instead of
	// the initial configuration: execution continues at step Resume.Step+1
	// with all queues, counters and generator state restored, and the run
	// is bit-identical to the uninterrupted one from that step on. The
	// snapshot must come from the same machine/graph/numbering and the
	// same executor kind (sync vs async); Trace, when recorded, starts at
	// the resumed configuration. MaxRounds still counts from step 0.
	Resume *Snapshot
	// Obs attaches observability (internal/obs): a Sink receives the
	// run's event journal — every fire, delivery fate, crash/recovery,
	// partition heal and fixpoint probe, in a deterministic global order
	// that is byte-stable across Workers and GOMAXPROCS — and a Metrics
	// registry receives round timings plus a mirror of the Result
	// counters. Default nil: no telemetry, and the hooks cost nothing —
	// the fault-free sequential path keeps its committed alloc budget.
	// Attaching a journal never changes a run's Result.
	Obs *obs.Obs
}

// initState initialises a node's state, honouring local inputs.
func initState(m machine.Machine, deg, v int, opts Options) (machine.State, error) {
	if opts.Inputs == nil {
		return m.Init(deg), nil
	}
	ia, ok := m.(machine.InputAware)
	if !ok {
		return nil, fmt.Errorf("engine: inputs supplied but machine %q is not InputAware", m.Name())
	}
	return ia.InitWithInput(deg, opts.Inputs[v]), nil
}

// Result is the outcome of a run.
type Result struct {
	// Output[v] is the local output S(v) of each node.
	Output []machine.Output
	// Rounds is the number of communication rounds executed until every
	// node halted (the time T of Section 1.3).
	Rounds int
	// MessageBytes accumulates the total size of all non-m0 messages
	// delivered, a proxy for communication volume used by the
	// simulation-overhead experiments.
	MessageBytes int64
	// Trace, when recorded, holds the state vector x_t for t = 0..Rounds.
	// For the async executor each entry is the configuration after one
	// schedule step of the actual interleaved execution, so the sequence is
	// causality-consistent.
	Trace [][]machine.State
	// Fires[v] counts node v's completed activations — firings that
	// consumed a full frontier, including post-halt drain firings. Only the
	// async executor records it; nil otherwise.
	Fires []int64
	// Fixpoint reports that the async executor stopped at a detected global
	// fixpoint before every node halted: no future step could change any
	// state, and every undelivered message was a no-op re-send. Nodes that
	// had not halted have empty outputs.
	Fixpoint bool
	// States is the final state vector x_T of the run — the stabilised
	// configuration when the run ended at a fixpoint. Populated by every
	// executor.
	States []machine.State
	// Alive[v] reports whether node v was alive when the run ended; nil
	// unless a fault plan ran (no plan: everyone is alive). Nodes that are
	// dead at the end were crash-stopped and never recovered.
	Alive []bool
	// Drops counts messages a fault plan delivered as m0, Dups the ones it
	// duplicated, Crashes the node crashes it applied and Recoveries the
	// revivals. All zero when no fault plan ran.
	Drops, Dups         int64
	Crashes, Recoveries int64
	// Corruptions counts messages a Byzantine plan rewrote before delivery,
	// Healed the cut links a partition plan restored, and Retransmits the
	// sender-side retries a retransmit plan injected into the flight
	// queues. All zero when no fault plan ran.
	Corruptions, Healed, Retransmits int64
	// Shards is the number of runtime shards the run executed on: 1 for
	// the single-threaded paths, the resolved worker count otherwise.
	// Telemetry only — every shard count produces bit-identical results.
	Shards int
}

// Run executes m on (g, p) and returns the output vector.
//
// It validates that the machine's Δ covers the graph's maximum degree. The
// run stops when every node has halted, or fails with ErrNoHalt after the
// round budget.
func Run(m machine.Machine, p *port.Numbering, opts Options) (*Result, error) {
	g := p.Graph()
	if g.MaxDegree() > m.Delta() {
		return nil, fmt.Errorf("engine: graph max degree %d exceeds machine Δ=%d",
			g.MaxDegree(), m.Delta())
	}
	if opts.Inputs != nil && len(opts.Inputs) != g.N() {
		return nil, fmt.Errorf("engine: %d inputs for %d nodes", len(opts.Inputs), g.N())
	}
	exec := opts.Executor
	if opts.Schedule != nil && exec != ExecutorAsync {
		return nil, fmt.Errorf("engine: Options.Schedule is only supported by the async executor, not %v", exec)
	}
	if opts.Fault != nil && exec != ExecutorAsync {
		return nil, fmt.Errorf("engine: Options.Fault is only supported by the async executor, not %v", exec)
	}
	if cp := opts.Checkpoint; cp != nil {
		if cp.Every < 1 {
			return nil, fmt.Errorf("engine: Checkpoint.Every must be ≥ 1, got %d", cp.Every)
		}
		if cp.Sink == nil {
			return nil, fmt.Errorf("engine: Checkpoint.Sink is nil")
		}
	}
	if snap := opts.Resume; snap != nil {
		if wantSync := exec != ExecutorAsync; snap.Sync != wantSync {
			return nil, fmt.Errorf("engine: snapshot executor kind (sync=%v) does not match executor %v", snap.Sync, exec)
		}
	}
	switch exec {
	case ExecutorSeq:
		// The W=1 degenerate case of the pool path, run inline.
		return runSync(m, g, p, opts, 1, false)
	case ExecutorPool:
		return runSync(m, g, p, opts, poolWorkers(opts, g.N()), true)
	case ExecutorAsync:
		return runAsync(m, g, p, opts)
	default:
		return nil, fmt.Errorf("engine: unknown executor %v", exec)
	}
}

// maxRoundsOf resolves the round budget.
func maxRoundsOf(opts Options) int {
	if opts.MaxRounds > 0 {
		return opts.MaxRounds
	}
	return DefaultMaxRounds
}
