package engine

// async.go implements the asynchronous executor's Kahn-frontier core:
// the per-link queue state, the delivery and firing primitives and the
// fixpoint condition. The driver — the step loop over the shard runtime —
// lives in async_driver.go. Where the synchronous executors run the
// Section 1.3 semantics directly — one global barrier per round over a
// double-buffered arena — the async executor replaces the barrier with
// per-link FIFO queues and hands control of time to a schedule.Schedule:
// at every step the schedule decides which sent messages are delivered
// and which nodes are activated.
//
// The execution discipline is Kahn-style. Every directed link (an in-port
// slot of the routing table) carries two queues: messages in flight (sent,
// undelivered) and mail (delivered, consumable). An activated node fires
// only when every one of its in-ports has mail — a full frontier — and a
// firing consumes exactly one message per in-port, steps δ, and emits one
// message per out-port into the flight queues. Halted nodes keep firing to
// drain their queues and feed m0 to their neighbours, exactly as halted
// nodes send m0 forever in the synchronous semantics.
//
// One-per-port consumption makes the executor confluent: the j-th message
// on link u→v is u's j-th emission, so the k-th firing of v computes
//
//	x_v^k = δ(x_v^{k-1}, [μ(x_u^{k-1}, ·)]_u)
//
// — exactly the synchronous recurrence. A schedule chooses how fast each
// node advances along the synchronous trajectory, never where the
// trajectory goes; under any fair schedule halting algorithms reach the
// synchronous outputs, and under schedule.Synchronous the executor is
// bit-identical to ExecutorSeq (TestAsyncSynchronousEquivalence).
// The per-step state snapshots recorded into Result.Trace are therefore
// causality-consistent by construction: each is a configuration of the
// actual interleaved execution.
//
// Fixpoint detection: runs that stabilise without halting (the situation
// characterised by the modal μ-fragment) are cut off without waiting for
// the step budget. Every asyncFixpointInterval steps the executor checks
// whether (a) every queued or in-flight message equals what its source
// would send from its current state, and (b) no non-halted node would
// change state or halt on that steady inbox. If both hold, induction on
// fire events shows no future step can change any state: the run is at a
// global fixpoint and every undelivered message is a no-op re-send.
//
// Fault injection (Options.Fault, internal/fault) hooks into three
// places, all behind a nil check so fault-free runs pay nothing. First, a
// delivery filter on the per-link queues: each message the schedule
// delivers is assigned a fate — delivered, dropped (delivered as m0: the
// omission fault of message adversaries, preserving the one-entry-per-
// emission discipline so frontiers never starve), duplicated (an extra
// copy joins the mail queue) or corrupted (a Byzantine plan's Corrupter
// rewrites the payload; receivers implementing machine.MessageGuard
// degrade out-of-alphabet garbage to m0 at canonicalisation, so corruption
// is at worst omission to a guarded machine). Partition plans are
// correlated omission over a cut link set, so they ride the same filter.
// Second, a liveness mask gating activation: a crashed node's firings
// drain its frontier and emit m0 — like a halted node, so neighbours are
// not wedged — but never step δ; a recovery lifts the mask, either
// resuming the frozen state or resetting it through machine.Reboot.
// Third, sender-side retransmissions (fault.Decision.Resend): the
// coordinator pushes a link's steady message into its flight queue behind
// whatever is in flight, so a recovering node re-receives its frontier —
// for the fixpoint argument the extra copy is a no-op re-send, and for
// the Kahn discipline it is indistinguishable from a duplication. The
// fixpoint probe stays sound under faults by treating dead nodes as
// frozen (their steady message is m0, their state exempt from the
// would-change check) and by running only once the plan is settled: an
// unsettled plan could still perturb a steady-looking configuration with
// a future m0-substitution, retransmission or reset.

import (
	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// asyncFixpointInterval(n) spaces the O(ports + n·Step) fixpoint probes far
// enough apart to amortise to ~O(1) per step. The floor of 64 also keeps
// the probe out of the bit-identity property test, whose budget is smaller:
// within the budget, async-under-Synchronous fails with ErrNoHalt exactly
// when the sequential executor does.
func asyncFixpointInterval(n int) int {
	if n > 64 {
		return n
	}
	return 64
}

// msgQueue is a FIFO of delivered messages with an amortised O(1) pop.
type msgQueue struct {
	buf  []machine.Message
	head int
}

func (q *msgQueue) push(m machine.Message) { q.buf = append(q.buf, m) }

func (q *msgQueue) pop() machine.Message {
	m := q.buf[q.head]
	q.buf[q.head] = machine.NoMessage // release the string
	q.head++
	if q.head == len(q.buf) {
		q.buf, q.head = q.buf[:0], 0
	}
	return m
}

func (q *msgQueue) len() int { return len(q.buf) - q.head }

// pushFated enqueues one delivered message according to its fate — the
// single source of truth for fault application, shared by the inline
// filter of the single-shard delivery pass and the pre-drawn fates of the
// sharded one: a drop enqueues m0 in the message's place (the delivery
// slot survives, the content does not), a dup enqueues two copies. A
// corruption enqueues msg unchanged: whoever drew the fate already
// substituted the corruptor's rewrite for the genuine payload.
func (q *msgQueue) pushFated(msg machine.Message, f fault.Fate) {
	switch f {
	case fault.FateDrop:
		q.push(machine.NoMessage)
	case fault.FateDup:
		q.push(msg)
		q.push(msg)
	default: // FateDeliver, or FateCorrupt with the payload rewritten
		q.push(msg)
	}
}

// flightMsg is a sent, undelivered message stamped with its send step. born
// shares the step budget's type: the dilation-scaled default budget (and
// any explicit MaxRounds) is an int, and a narrower stamp would silently
// wrap the schedules' age accounting (View.OldestBorn) on large sweeps.
type flightMsg struct {
	msg  machine.Message
	born int
}

// flightQueue is a FIFO of in-flight messages.
type flightQueue struct {
	buf  []flightMsg
	head int
}

func (q *flightQueue) push(m machine.Message, born int) {
	q.buf = append(q.buf, flightMsg{msg: m, born: born})
}

func (q *flightQueue) pop() flightMsg {
	m := q.buf[q.head]
	q.buf[q.head] = flightMsg{}
	q.head++
	if q.head == len(q.buf) {
		q.buf, q.head = q.buf[:0], 0
	}
	return m
}

func (q *flightQueue) len() int { return len(q.buf) - q.head }

// asyncState is the execution state of one asynchronous run.
type asyncState struct {
	m         machine.Machine
	g         *graph.Graph
	off       []int32 // CSR offsets: in-ports of v are links off[v]..off[v+1]-1
	dest      []int32 // out-port slot → destination link
	src       []int32 // link → out-port slot feeding it
	node      []int32 // slot → owning node
	broadcast bool
	recv      machine.RecvMode

	states  []machine.State
	halted  []bool
	outputs []machine.Output

	mail   []msgQueue    // per link: delivered, consumable
	flight []flightQueue // per link: sent, undelivered
	ready  []int32       // per node: in-ports with non-empty mail
	fires  []int64       // per node: completed firings

	// Fault state, allocated only when a plan runs (plan != nil): the
	// liveness mask, the initial states recoveries reset to, and the
	// plan's decision buffer. corrupt is the plan's Corrupter when it can
	// emit FateCorrupt (nil otherwise), and guard the machine's alphabet
	// guard, consulted per firing only when a corrupter runs — fault-free
	// and corruption-free runs pay a nil check and nothing else.
	plan    fault.Plan
	alive   []bool
	init    []machine.State
	fdec    *fault.Decision
	corrupt fault.Corrupter
	guard   machine.MessageGuard

	// jr is the run's journal, nil when no sink is attached. Shard phases
	// append fire/halt events to their stepStats buffer; everything else
	// is emitted on the coordinator in global order (see journal.go).
	jr *journal
}

// asyncBufs is the per-shard scratch space of the async executor: the
// frontier buffer firings consume through and the canonicalisation buffer,
// both sized to the maximum degree. Every shard owns its own, which is
// what keeps firings and the fixpoint probe data-race free across shards.
type asyncBufs struct {
	inbox   []machine.Message
	scratch []machine.Message
}

// newBufs allocates a scratch space for one shard.
func (as *asyncState) newBufs() asyncBufs {
	return asyncBufs{
		inbox:   make([]machine.Message, as.g.MaxDegree()),
		scratch: make([]machine.Message, 0, as.g.MaxDegree()),
	}
}

func newAsyncState(m machine.Machine, g *graph.Graph, p *port.Numbering, opts Options) (*asyncState, int, error) {
	n := g.N()
	r := p.Routes()
	links := r.NumPorts()
	as := &asyncState{
		m:         m,
		g:         g,
		off:       r.Offsets(),
		dest:      r.DestTable(),
		src:       r.SourceTable(),
		node:      r.NodeTable(),
		broadcast: m.Class().Send == machine.SendBroadcast,
		recv:      m.Class().Recv,
		states:    make([]machine.State, n),
		halted:    make([]bool, n),
		outputs:   make([]machine.Output, n),
		mail:      make([]msgQueue, links),
		flight:    make([]flightQueue, links),
		ready:     make([]int32, n),
		fires:     make([]int64, n),
		jr:        newJournal(opts.Obs),
	}
	// Seed every queue with a capacity-1 slice carved out of one flat
	// backing array: schedules that keep queues at depth ≤ 1 (Synchronous,
	// RoundRobin, anything delivering promptly) then run entirely
	// allocation-free; deeper queues grow their own buffers on demand.
	mailBacking := make([]machine.Message, links)
	flightBacking := make([]flightMsg, links)
	for l := 0; l < links; l++ {
		as.mail[l].buf = mailBacking[l : l : l+1]
		as.flight[l].buf = flightBacking[l : l : l+1]
	}
	active := n
	for v := 0; v < n; v++ {
		s, err := initState(m, g.Degree(v), v, opts)
		if err != nil {
			return nil, 0, err
		}
		as.states[v] = s
		if out, ok := m.Halted(s); ok {
			as.halted[v] = true
			as.outputs[v] = out
			active--
		}
	}
	if opts.Fault != nil {
		as.plan = opts.Fault
		as.alive = make([]bool, n)
		for v := range as.alive {
			as.alive[v] = true
		}
		// Snapshot z0 per node for reset recoveries: states are immutable
		// values (Step is pure), so sharing the initial state is safe.
		as.init = append([]machine.State(nil), as.states...)
		as.fdec = fault.NewDecision(n, links)
		if fault.CanCorrupt(opts.Fault) {
			as.corrupt = opts.Fault.(fault.Corrupter)
			if g, ok := m.(machine.MessageGuard); ok {
				as.guard = g
			}
		}
	}
	return as, active, nil
}

// dead reports whether node v is currently crashed. The alive mask is nil
// on fault-free runs, keeping the hot paths a single nil check away from
// their no-fault cost.
func (as *asyncState) dead(v int) bool {
	return as.alive != nil && !as.alive[v]
}

// silent reports whether node v currently emits m0 on every port: halted
// nodes send m0 forever (Section 1.3), and so do crashed ones — a dead
// process is silent, and m0 is what silence looks like to a neighbour.
func (as *asyncState) silent(v int) bool {
	return as.halted[v] || as.dead(v)
}

// portMessage is the single source of truth for what node v emits through
// out-port slot s (lo = v's first slot): m0 when silent, the broadcast
// message bmsg (computed once per firing by the caller) for broadcast
// machines, the per-port μ otherwise. Both drivers' emission paths go
// through it, so they cannot drift apart.
func (as *asyncState) portMessage(v int, s, lo int32, silent bool, bmsg machine.Message) machine.Message {
	switch {
	case silent:
		return machine.NoMessage
	case as.broadcast:
		return bmsg
	default:
		return as.m.Send(as.states[v], int(s-lo)+1)
	}
}

// broadcastMessage computes the one message a broadcast machine emits on
// every port this firing, or m0 when the node is silent.
func (as *asyncState) broadcastMessage(v int, silent bool) machine.Message {
	if silent || !as.broadcast {
		return machine.NoMessage
	}
	return as.m.Send(as.states[v], 1)
}

// emit sends node v's current outgoing messages into the flight queues,
// stamped with the given step.
func (as *asyncState) emit(v, step int) {
	lo, hi := as.off[v], as.off[v+1]
	silent := as.silent(v)
	bmsg := as.broadcastMessage(v, silent)
	for s := lo; s < hi; s++ {
		as.flight[as.dest[s]].push(as.portMessage(v, s, lo, silent, bmsg), step)
	}
}

// deliver moves up to k oldest in-flight messages on link l into its mail
// queue, maintaining the frontier-readiness count of the receiving node.
func (as *asyncState) deliver(l int32, k int) {
	fq := &as.flight[l]
	if avail := fq.len(); k > avail {
		k = avail
	}
	if k <= 0 {
		return
	}
	mq := &as.mail[l]
	if mq.len() == 0 {
		as.ready[as.node[l]]++
	}
	for i := 0; i < k; i++ {
		mq.push(fq.pop().msg)
	}
}

// deliverFiltered is deliver with the fault plan's delivery filter in the
// loop: each delivered message is assigned a fate — delivered unchanged,
// dropped (m0 takes its place in the mail queue, so the frontier count
// still advances and the receiver observes silence) or duplicated (two
// copies join the queue). Only called by a single shard walking every
// link in global order, so the plan's random stream is drawn exactly as
// planFates pre-draws it for sharded runs; fault-free runs keep the
// branch-free deliver.
func (as *asyncState) deliverFiltered(l int32, k, t int, res *Result) {
	fq := &as.flight[l]
	if avail := fq.len(); k > avail {
		k = avail
	}
	if k <= 0 {
		return
	}
	mq := &as.mail[l]
	if mq.len() == 0 {
		as.ready[as.node[l]]++
	}
	for i := 0; i < k; i++ {
		msg := fq.pop().msg
		f := as.plan.Filter(t, int(l))
		switch f {
		case fault.FateDrop:
			res.Drops++
		case fault.FateDup:
			res.Dups++
		case fault.FateCorrupt:
			res.Corruptions++
			msg = as.corrupt.Corrupt(t, int(l), msg)
		}
		if as.jr != nil && f != fault.FateDeliver {
			// A single shard owns every link here, so this emission order is
			// the global (link, queue-position) order — the same order
			// planFates journals the pre-drawn fates in for sharded runs.
			as.jr.coordEvent(obs.Event{
				Step: int64(t), Kind: fateKind(f), Node: -1, Link: l, Arg: int64(i)})
		}
		mq.pushFated(msg, f)
	}
}

// deliverFated is deliverFiltered with the per-message fates already drawn:
// the coordinator of a sharded run consumes the plan's random stream in
// global (link, queue-position) order — the exact order a single shard
// draws it in — and hands each worker the resulting fate slices, so
// delivery itself never touches the plan. crpt, parallel to fates, holds
// the pre-drawn corruption rewrites (meaningful only at FateCorrupt
// entries; nil when the plan cannot corrupt). Callers guarantee
// 0 < len(fates) ≤ the link's in-flight count; Drops/Dups/Corruptions
// were counted by whoever drew the fates.
func (as *asyncState) deliverFated(l int32, fates []fault.Fate, crpt []machine.Message) {
	fq := &as.flight[l]
	mq := &as.mail[l]
	if mq.len() == 0 {
		as.ready[as.node[l]]++
	}
	for i, f := range fates {
		msg := fq.pop().msg
		if f == fault.FateCorrupt {
			msg = crpt[i]
		}
		mq.pushFated(msg, f)
	}
}

// canFire reports whether node v holds a full frontier: one delivered
// message on every in-port. Zero-degree nodes can always fire.
func (as *asyncState) canFire(v int) bool {
	return as.ready[v] == as.off[v+1]-as.off[v]
}

// consume pops node v's frontier into bufs, steps δ (halted and crashed
// nodes discard — the liveness mask gates the δ-step, not the drain), and
// checks halting. Callers have checked canFire and must follow up with an
// emission of v's next messages.
func (as *asyncState) consume(v int, st *stepStats, bufs *asyncBufs) {
	lo, hi := as.off[v], as.off[v+1]
	deg := int(hi - lo)
	inbox := bufs.inbox[:deg]
	for i := 0; i < deg; i++ {
		q := &as.mail[lo+int32(i)]
		msg := q.pop()
		if q.len() == 0 {
			as.ready[v]--
		}
		st.bytes += int64(len(msg))
		inbox[i] = msg
	}
	as.fires[v]++
	if as.jr != nil {
		st.events = append(st.events, obs.Event{
			Step: int64(st.step), Kind: obs.KindFire, Node: int32(v), Link: -1,
			Arg: as.fires[v]})
	}
	if !as.halted[v] && !as.dead(v) {
		// Corruption-tolerant canonicalisation: under a corrupting plan,
		// payloads outside the machine's alphabet degrade to m0 — the
		// receiver treats garbage as silence, like an omission fault.
		if as.guard != nil {
			machine.GuardInbox(as.guard, inbox)
		}
		cin := machine.CanonicalInboxInto(as.recv, inbox, bufs.scratch)
		as.states[v] = as.m.Step(as.states[v], cin)
		if out, ok := as.m.Halted(as.states[v]); ok {
			as.halted[v] = true
			as.outputs[v] = out
			st.newHalts++
			if as.jr != nil {
				st.events = append(st.events, obs.Event{
					Step: int64(st.step), Kind: obs.KindHalt, Node: int32(v), Link: -1})
			}
		}
	}
}

// steadyMessage returns the message the source of link l would send right
// now: the fixpoint candidate every queued message is compared against.
func (as *asyncState) steadyMessage(l int32) machine.Message {
	s := as.src[l]
	u := as.node[s]
	if as.halted[u] || as.dead(int(u)) {
		return machine.NoMessage
	}
	if as.broadcast {
		return as.m.Send(as.states[u], 1)
	}
	return as.m.Send(as.states[u], int(s-as.off[u])+1)
}

// nodeAtFixpoint checks the fixpoint condition at node v: every message
// queued or in flight on its in-links equals the source's steady message,
// and — unless v is halted or dead (frozen: a settled plan will never
// revive it, so its state is exempt) — stepping v on the steady inbox
// would neither halt it nor change its state. It reads only v's own queues
// plus the (quiescent) states of v's neighbours, so disjoint node sets can
// be probed concurrently.
func (as *asyncState) nodeAtFixpoint(v int, bufs *asyncBufs) bool {
	lo, hi := as.off[v], as.off[v+1]
	for l := lo; l < hi; l++ {
		mq, fq := &as.mail[l], &as.flight[l]
		if mq.len() == 0 && fq.len() == 0 {
			continue
		}
		want := as.steadyMessage(l)
		for i := mq.head; i < len(mq.buf); i++ {
			if mq.buf[i] != want {
				return false
			}
		}
		for i := fq.head; i < len(fq.buf); i++ {
			if fq.buf[i].msg != want {
				return false
			}
		}
	}
	if as.halted[v] || as.dead(v) {
		return true
	}
	inbox := bufs.inbox[:hi-lo]
	for l := lo; l < hi; l++ {
		inbox[l-lo] = as.steadyMessage(l)
	}
	cin := machine.CanonicalInboxInto(as.recv, inbox, bufs.scratch)
	next := as.m.Step(as.states[v], cin)
	if _, ok := as.m.Halted(next); ok {
		return false
	}
	return machine.StatesEqual(as.m, as.states[v], next)
}

// asyncView adapts asyncState to schedule.View and fault.View.
type asyncView struct{ as *asyncState }

func (w asyncView) Nodes() int        { return len(w.as.states) }
func (w asyncView) Links() int        { return len(w.as.mail) }
func (w asyncView) Fires(v int) int64 { return w.as.fires[v] }
func (w asyncView) Halted(v int) bool { return w.as.halted[v] }
func (w asyncView) InFlight(l int) int {
	return w.as.flight[l].len()
}
func (w asyncView) OldestBorn(l int) int {
	q := &w.as.flight[l]
	if q.len() == 0 {
		return -1
	}
	return q.buf[q.head].born
}
func (w asyncView) Alive(v int) bool { return !w.as.dead(v) }

// asyncTopology adapts asyncState to fault.Topology.
type asyncTopology struct{ as *asyncState }

func (t asyncTopology) Nodes() int        { return len(t.as.states) }
func (t asyncTopology) Links() int        { return len(t.as.mail) }
func (t asyncTopology) Degree(v int) int  { return t.as.g.Degree(v) }
func (t asyncTopology) LinkSrc(l int) int { return int(t.as.node[t.as.src[l]]) }
func (t asyncTopology) LinkDst(l int) int { return int(t.as.node[l]) }

// applyFaults applies the plan's crash/recovery/retransmission decision
// for step t and returns the change in the active (non-halted) node
// count: a reset recovery can un-halt a halted node (reboot into a fresh
// z0) or, for machines whose initial state is already a stopping state,
// halt it again immediately.
func (as *asyncState) applyFaults(t int, view asyncView, res *Result) (activeDelta int) {
	as.fdec.Reset()
	as.plan.Step(t, view, as.fdec)
	for v, crash := range as.fdec.Crash {
		if crash && as.alive[v] {
			as.alive[v] = false
			res.Crashes++
			if as.jr != nil {
				as.jr.coordEvent(obs.Event{
					Step: int64(t), Kind: obs.KindCrash, Node: int32(v), Link: -1})
			}
		}
	}
	for v, kind := range as.fdec.Recover {
		if kind == fault.RecoverNone || as.alive[v] {
			continue
		}
		as.alive[v] = true
		res.Recoveries++
		if as.jr != nil {
			as.jr.coordEvent(obs.Event{
				Step: int64(t), Kind: obs.KindRecover, Node: int32(v), Link: -1,
				Arg: int64(kind)})
		}
		if kind != fault.RecoverReset {
			continue
		}
		ns := machine.Reboot(as.m, as.g.Degree(v), as.states[v], as.init[v])
		as.states[v] = ns
		wasHalted := as.halted[v]
		out, ok := as.m.Halted(ns)
		as.halted[v] = ok
		if ok {
			as.outputs[v] = out
			if !wasHalted {
				activeDelta--
			}
		} else {
			as.outputs[v] = ""
			if wasHalted {
				activeDelta++
			}
		}
	}
	// Sender-side retransmissions: push the source's current steady message
	// onto each requested link, stamped with this step, behind whatever is
	// already in flight. This runs on the coordinator over quiescent state
	// (before the step's deliveries), in ascending link order, and both the
	// single-shard and pre-draw delivery paths compute their per-link
	// delivery counts after it — so the shard count stays invisible. A dead
	// or halted source retransmits m0; for the fixpoint argument the extra
	// copy is exactly a no-op re-send.
	for l, resend := range as.fdec.Resend {
		if resend {
			as.flight[l].push(as.steadyMessage(int32(l)), t)
			res.Retransmits++
			if as.jr != nil {
				as.jr.coordEvent(obs.Event{
					Step: int64(t), Kind: obs.KindRetransmit, Node: -1, Link: int32(l)})
			}
		}
	}
	return activeDelta
}

// maxDefaultAsyncSteps caps the dilation-scaled default step budget so a
// non-halting, non-stabilising run cannot burn O(n·rounds) steps (each
// costing O(n+links) work) before erroring. Explicit MaxRounds is never
// capped.
const maxDefaultAsyncSteps = 10_000_000

// asyncStepBudget resolves the async step budget: an explicit MaxRounds is
// taken literally as steps; the default round budget is scaled by the
// schedule's worst-case steps-per-round dilation (n when the schedule does
// not report one) so fair-but-slow schedules like roundrobin don't
// spuriously hit ErrNoHalt, then capped at maxDefaultAsyncSteps.
func asyncStepBudget(opts Options, sched schedule.Schedule, n int) int {
	maxSteps := maxRoundsOf(opts)
	if opts.MaxRounds > 0 {
		return maxSteps
	}
	dilation := n
	if d, ok := sched.(schedule.Dilated); ok {
		dilation = d.Dilation(n)
	}
	if dilation > 1 {
		if maxSteps > maxDefaultAsyncSteps/dilation {
			maxSteps = maxDefaultAsyncSteps
		} else {
			maxSteps *= dilation
		}
	}
	return maxSteps
}
