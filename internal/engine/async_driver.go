package engine

// async_driver.go is the one driver of the asynchronous semantics: the
// Kahn-frontier core of async.go run over the shard runtime. The runtime
// hands each shard its slice of the BFS locality order; the shard owns
// those nodes outright — the mail and flight queues of their in-ports,
// their ready counters, states, halt flags and fire counts are touched by
// no other goroutine. One shard (inline, no goroutines — the default
// below asyncAutoShardMinNodes) and W spawned shards are the same code
// path and bit-identical (TestAsyncShardedEquivalence pins every Result
// field, under -race).
//
// The schedule and the fault plan stay the single source of
// nondeterminism, which is what makes the shard count invisible:
//
//   - Schedule and plan callbacks run on the coordinator between
//     barriers, over quiescent state.
//   - The plan's per-delivery random stream must be drawn in global
//     (link, queue-position) order. A single shard owns every link and
//     walks them in exactly that order, so it draws the stream inline
//     (deliverFiltered); with several shards the coordinator pre-draws
//     this step's fates (planFates) in the same order and workers only
//     apply them (deliverFated).
//   - Within one step, deliveries happen before firings, and a message
//     emitted at step t is not deliverable before step t+1 — so workers
//     never observe each other's mid-step writes. Same-shard emissions go
//     straight into the owned flight queues; cross-shard emissions are
//     parked in per-(sender, receiver) staging rings and pushed by the
//     receiving shard at the merge barrier. A node fires at most once per
//     step and each out-port emits once per firing, so every flight queue
//     gains at most one message per step and the merge order cannot
//     reorder any queue.
//   - Per-shard byte/halt counters are folded by the runtime at the
//     barrier; the fixpoint probe (settlement-gated exactly as in the
//     single-shard form) fans out per shard, each worker checking its own
//     nodes and queues against the quiescent global state.
//
// At most two barriers per step (fire, then merge — skipped when no shard
// staged anything, the common case under a well-cut sharding and a sparse
// schedule); everything between barriers is data-race free by ownership,
// which CI's -race run of the equivalence suite demonstrates.

import (
	"fmt"

	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// stagedMsg is one cross-shard emission, parked in the sending shard's
// outbound ring until the receiving shard pushes it at the merge barrier.
type stagedMsg struct {
	link int32
	born int
	msg  machine.Message
}

// asyncAutoShardMinNodes gates the default (Workers unset) choice of a
// sharded run: below this size, two barrier round-trips per step outweigh
// the per-step work and the inline single-shard form wins. An explicit
// Workers > 1 always shards.
const asyncAutoShardMinNodes = 512

// asyncShard is one shard's driver-side state: its scratch space, staging
// rings and probe verdict. The owned node set and telemetry counters live
// in the runtime.
type asyncShard struct {
	bufs   asyncBufs     // frontier/canonicalisation buffers
	out    [][]stagedMsg // out[d]: this step's emissions bound for shard d (nil when single-shard)
	staged bool          // whether any out ring is non-empty this step
	probe  bool          // this shard's verdict from the last fixpoint probe
}

// Phases of the async driver.
const (
	// asyncPhaseStep delivers the scheduled messages on the shard's links,
	// then fires the shard's activated full-frontier nodes, staging
	// cross-shard emissions.
	asyncPhaseStep runtimePhase = iota
	// asyncPhaseMerge pushes the emissions other shards staged for this
	// one into the owned flight queues.
	asyncPhaseMerge
	// asyncPhaseProbe evaluates the fixpoint condition over the shard.
	asyncPhaseProbe
)

// asyncDriver is the coordinator state of one asynchronous run. Fields
// are written by the coordinator only between runtime barriers, which
// order those writes against the shards' reads.
type asyncDriver struct {
	as     *asyncState
	dec    *schedule.Decision
	res    *Result
	shards []asyncShard
	// linkOwner maps each link to the shard of its receiving node; nil
	// when a single shard owns everything (emissions then push directly
	// and merges never run).
	linkOwner []int32
	t         int // step being executed

	// This step's pre-drawn delivery fates (multi-shard plan runs only):
	// link l's deliveries take fates[fateOff[l]:fateOff[l+1]]. crpt, kept
	// parallel to fates when the plan can corrupt (nil otherwise), holds
	// the pre-drawn corruption rewrites at FateCorrupt positions.
	fates   []fault.Fate
	fateOff []int
	crpt    []machine.Message

	rt shardRuntime
}

// runPhase executes one phase over shard w; the runtime fans it out.
func (d *asyncDriver) runPhase(w int, ph runtimePhase) {
	switch ph {
	case asyncPhaseStep:
		d.stepShard(w)
	case asyncPhaseMerge:
		d.mergeShard(w)
	case asyncPhaseProbe:
		d.shards[w].probe = d.probeShard(w)
	}
}

// planFates draws this step's delivery fates from the plan in global
// (link, queue-position) order — the exact order a single shard consumes
// the plan's random stream in — so the workers can apply them shard-
// locally without touching the plan. Drops/Dups/Corruptions are counted
// here, in the same order, for the same reason; and because the
// Corrupter's stream must interleave with Filter's exactly as in the
// inline path, each corruption's rewrite is drawn immediately, peeking
// the pending payload at its queue position (deliveries pop in FIFO
// order, so the i-th delivery on link l is flight[l].buf[head+i]).
func (d *asyncDriver) planFates(t int, res *Result) {
	as, dec := d.as, d.dec
	d.fates = d.fates[:0]
	d.crpt = d.crpt[:0]
	for l := range as.mail {
		d.fateOff[l] = len(d.fates)
		k := int(dec.Deliver[l])
		if dec.DeliverAll || k > as.flight[l].len() {
			k = as.flight[l].len()
		}
		for i := 0; i < k; i++ {
			f := as.plan.Filter(t, l)
			switch f {
			case fault.FateDrop:
				res.Drops++
			case fault.FateDup:
				res.Dups++
			case fault.FateCorrupt:
				res.Corruptions++
			}
			if as.jr != nil && f != fault.FateDeliver {
				// Journaled here — not in deliverFated — because this is where
				// the global (link, queue-position) order lives; the emission
				// matches deliverFiltered's byte for byte.
				as.jr.coordEvent(obs.Event{
					Step: int64(t), Kind: fateKind(f), Node: -1, Link: int32(l), Arg: int64(i)})
			}
			d.fates = append(d.fates, f)
			if as.corrupt != nil {
				var c machine.Message
				if f == fault.FateCorrupt {
					fq := &as.flight[l]
					c = as.corrupt.Corrupt(t, l, fq.buf[fq.head+i].msg)
				}
				d.crpt = append(d.crpt, c)
			}
		}
	}
	d.fateOff[len(as.mail)] = len(d.fates)
}

// stepShard runs one step's delivery and firing pass over shard w. Links
// owned by the shard are exactly the in-ports of its nodes, so both
// passes touch only owned queues; emissions to other shards are staged.
func (d *asyncDriver) stepShard(w int) {
	as, dec := d.as, d.dec
	sh := &d.shards[w]
	st := &d.rt.stats[w]
	st.step, st.bytes, st.newHalts = d.t, 0, 0
	sh.staged = false
	if d.linkOwner == nil {
		// A single shard owns everything: walk links and nodes in id order —
		// sequential memory over the queue and state arrays, and for plan
		// runs the exact order the fault stream must be drawn in, so the
		// filter runs inline. (Iteration order never affects the outcome;
		// it is pure memory-walk.)
		for l := 0; l < len(as.mail); l++ {
			k := int(dec.Deliver[l])
			if dec.DeliverAll {
				k = as.flight[l].len()
			}
			if k <= 0 {
				continue
			}
			if as.plan != nil {
				as.deliverFiltered(int32(l), k, d.t, d.res)
			} else {
				as.deliver(int32(l), k)
			}
		}
		for v := 0; v < len(as.states); v++ {
			if (dec.ActivateAll || dec.Activate[v]) && as.canFire(v) {
				as.consume(v, st, &sh.bufs)
				as.emit(v, st.step)
			}
		}
		return
	}
	for _, v32 := range d.rt.nodes(w) {
		v := int(v32)
		for l := as.off[v]; l < as.off[v+1]; l++ {
			if d.fateOff != nil {
				if fates := d.fates[d.fateOff[l]:d.fateOff[l+1]]; len(fates) > 0 {
					var crpt []machine.Message
					if as.corrupt != nil {
						crpt = d.crpt[d.fateOff[l]:d.fateOff[l+1]]
					}
					as.deliverFated(l, fates, crpt)
				}
			} else if dec.DeliverAll {
				as.deliver(l, as.flight[l].len())
			} else if k := dec.Deliver[l]; k > 0 {
				as.deliver(l, int(k))
			}
		}
	}
	for _, v32 := range d.rt.nodes(w) {
		v := int(v32)
		if (dec.ActivateAll || dec.Activate[v]) && as.canFire(v) {
			as.consume(v, st, &sh.bufs)
			d.emit(w, sh, v, st.step)
		}
	}
}

// emit is the sharded form of asyncState.emit: same-shard destinations
// are pushed directly (their delivery pass for this step is over — a
// step-t emission is deliverable at step t+1 at the earliest), cross-shard
// destinations are staged for the merge barrier.
func (d *asyncDriver) emit(w int, sh *asyncShard, v, step int) {
	as := d.as
	lo, hi := as.off[v], as.off[v+1]
	silent := as.silent(v)
	bmsg := as.broadcastMessage(v, silent)
	for s := lo; s < hi; s++ {
		msg := as.portMessage(v, s, lo, silent, bmsg)
		dl := as.dest[s]
		if o := d.linkOwner[dl]; o == int32(w) {
			as.flight[dl].push(msg, step)
		} else {
			sh.out[o] = append(sh.out[o], stagedMsg{link: dl, born: step, msg: msg})
			sh.staged = true
		}
	}
}

// mergeShard ingests the emissions every other shard staged for shard w,
// in sender order. Each flight queue gains at most one message per step,
// so the sender order cannot reorder any single queue.
func (d *asyncDriver) mergeShard(w int) {
	for s := range d.shards {
		in := d.shards[s].out[w]
		for i := range in {
			d.as.flight[in[i].link].push(in[i].msg, in[i].born)
			in[i] = stagedMsg{} // release the string
		}
		d.shards[s].out[w] = in[:0]
	}
}

// probeShard evaluates the fixpoint condition over shard w's nodes (and
// with them all of its in-link queues). It reads neighbour states across
// shard boundaries, which is safe: nothing is mutated during a probe
// phase.
func (d *asyncDriver) probeShard(w int) bool {
	for _, v := range d.rt.nodes(w) {
		if !d.as.nodeAtFixpoint(int(v), &d.shards[w].bufs) {
			return false
		}
	}
	return true
}

// asyncShards resolves the shard count of an async run. An explicit
// Workers > 1 is always honoured; the GOMAXPROCS default additionally
// requires a graph big enough that per-step work outweighs two barriers
// per step, since one shard is the same semantics without them.
func asyncShards(opts Options, n int) int {
	w := poolWorkers(opts, n)
	if w > 1 && opts.Workers <= 0 && n < asyncAutoShardMinNodes {
		return 1
	}
	return w
}

// runAsync executes the asynchronous semantics over the shard runtime.
func runAsync(m machine.Machine, g *graph.Graph, p *port.Numbering, opts Options) (res *Result, err error) {
	sched := opts.Schedule
	if sched == nil {
		sched = schedule.Synchronous()
	}
	as, active, err := newAsyncState(m, g, p, opts)
	if err != nil {
		return nil, err
	}
	n := g.N()
	met := newRunMetrics(opts.Obs, n)
	defer func() {
		// Registered first so it runs last (after the healer defer below has
		// copied res.Healed out): flush the journal on every exit path, then
		// mirror the counters of a completed run into the registry.
		if as.jr != nil {
			as.jr.finish(&err)
		}
		if err != nil {
			res = nil
		} else if met != nil {
			met.finish(res)
		}
	}()
	links := len(as.mail)
	res = &Result{Fires: as.fires, States: as.states, Alive: as.alive}
	if opts.Resume != nil {
		// Restored before the trace below records its first entry, so a
		// resumed trace starts at the resumed configuration.
		if active, err = as.restore(opts.Resume, res); err != nil {
			return nil, err
		}
		res.Rounds = opts.Resume.Step
	}
	if opts.RecordTrace {
		res.Trace = append(res.Trace, append([]machine.State(nil), as.states...))
	}
	res.Output = as.outputs

	d := &asyncDriver{as: as, dec: schedule.NewDecision(n, links), res: res}
	d.rt.init(p.Locality(), asyncShards(opts, n))
	if met != nil {
		d.rt.clock = met.clock
	}
	workers := d.rt.workers
	res.Shards = workers
	if active == 0 {
		return res, nil
	}
	d.shards = make([]asyncShard, workers)
	for w := range d.shards {
		d.shards[w].bufs = as.newBufs()
	}
	if workers > 1 {
		for w := range d.shards {
			d.shards[w].out = make([][]stagedMsg, workers)
		}
		owner := d.rt.ownerTable()
		d.linkOwner = make([]int32, links)
		for l := range d.linkOwner {
			d.linkOwner[l] = owner[as.node[l]]
		}
		if as.plan != nil {
			d.fateOff = make([]int, links+1)
		}
	}

	sched.Begin(n, links)
	if opts.Resume != nil {
		if err := restoreGenState(sched, opts.Resume.SchedState, "schedule"); err != nil {
			return nil, err
		}
	}
	var healer fault.Healer
	var healedSeen int64
	if as.plan != nil {
		as.plan.Begin(asyncTopology{as: as})
		healer, _ = as.plan.(fault.Healer)
		if opts.Resume != nil {
			if err := restoreGenState(as.plan, opts.Resume.PlanState, "fault plan"); err != nil {
				return nil, err
			}
			// The heal-delta journaling below must not re-announce heals
			// that happened before the snapshot.
			healedSeen = opts.Resume.Healed
		}
		// Copy the partition-heal telemetry out on every exit path (normal
		// halt, fixpoint, budget error — res is nil on the error paths): the
		// plan owns the running count.
		defer func() {
			if healer != nil && res != nil {
				res.Healed = healer.Healed()
			}
		}()
	} else if opts.Resume != nil {
		if len(opts.Resume.PlanState) > 0 {
			return nil, fmt.Errorf("engine: resume snapshot carries fault-plan state but the run has no fault plan")
		}
		res.Healed = opts.Resume.Healed
	}
	view := asyncView{as: as}

	startT := 1
	if opts.Resume != nil {
		startT = opts.Resume.Step + 1
	} else {
		// Step 0: every node emits μ(x_0) (halted nodes m0) into the
		// network — on the coordinator, before any worker exists. A resumed
		// run skips it: the snapshot's flight queues already hold whatever
		// was in the network.
		for v := 0; v < n; v++ {
			as.emit(v, 0)
		}
	}

	d.rt.start(d, workers > 1)
	defer d.rt.stop()

	maxSteps := asyncStepBudget(opts, sched, n)
	checkInterval := asyncFixpointInterval(n)
	nextCheck := checkInterval
	if opts.Resume != nil {
		// Align the fixpoint-probe cadence with the original run: probes
		// fire at the same absolute steps whether or not the run resumed.
		nextCheck = (opts.Resume.Step/checkInterval + 1) * checkInterval
	}
	for t := startT; ; t++ {
		if t > maxSteps {
			return nil, fmt.Errorf("%w (step budget %d, machine %q on %v, schedule %s)",
				ErrNoHalt, maxSteps, m.Name(), g, sched.Name())
		}
		d.dec.Reset()
		sched.Step(t, view, d.dec)
		if as.plan != nil {
			active += as.applyFaults(t, view, res)
			if as.jr != nil && healer != nil {
				// The plan exposes only the cumulative heal count; the step it
				// grew at is the step the partition healed.
				if h := healer.Healed(); h > healedSeen {
					as.jr.coordEvent(obs.Event{
						Step: int64(t), Kind: obs.KindHeal, Node: -1, Link: -1,
						Arg: h - healedSeen})
					healedSeen = h
				}
			}
			if d.fateOff != nil {
				d.planFates(t, res)
			}
		}
		d.t = t

		if met != nil {
			met.roundStart()
		}
		d.rt.run(asyncPhaseStep)
		if met != nil {
			met.shardPhase(d.rt.stats, met.shardStepUs)
		}
		// A well-cut sharding stages nothing on most steps under sparse
		// schedules; skipping an empty merge skips a whole barrier.
		staged := false
		for w := range d.shards {
			staged = staged || d.shards[w].staged
		}
		if staged {
			d.rt.run(asyncPhaseMerge)
			if met != nil {
				met.shardPhase(d.rt.stats, met.shardMergeUs)
			}
		}
		bytes, halts := d.rt.fold()
		if met != nil {
			met.roundEnd()
		}
		if as.jr != nil {
			as.jr.flushStep(d.rt.stats)
		}
		res.MessageBytes += bytes
		active -= halts
		res.Rounds = t
		if opts.RecordTrace {
			res.Trace = append(res.Trace, append([]machine.State(nil), as.states...))
		}
		if active == 0 {
			return res, nil
		}
		if t >= nextCheck {
			nextCheck = t + checkInterval
			// The probe is only sound once the plan can no longer perturb
			// the run: an unsettled plan could still m0-substitute or reset
			// a configuration that currently looks steady.
			if as.plan == nil || as.plan.Settled() {
				d.rt.run(asyncPhaseProbe)
				if met != nil {
					// The probe's shard time belongs to neither histogram.
					met.dropShardDurs(d.rt.stats)
				}
				fix := true
				for w := range d.shards {
					fix = fix && d.shards[w].probe
				}
				if as.jr != nil {
					// Emitted directly: step t's buffered events were already
					// flushed above, and the probe runs on quiescent state.
					verdict := int64(0)
					if fix {
						verdict = 1
					}
					as.jr.event(obs.Event{
						Step: int64(t), Kind: obs.KindProbe, Node: -1, Link: -1,
						Arg: verdict})
				}
				if fix {
					res.Fixpoint = true
					return res, nil
				}
			}
		}
		// Captured after the probe block so a snapshot at step t sits after
		// every journal event of step t: the journal of a replay from t is
		// exactly the original lines with step > t.
		if cp := opts.Checkpoint; cp != nil && t%cp.Every == 0 {
			var healed int64
			if healer != nil {
				healed = healer.Healed()
			}
			if err := cp.Sink(as.capture(t, res, healed, sched)); err != nil {
				return nil, fmt.Errorf("engine: checkpoint sink at step %d: %w", t, err)
			}
		}
	}
}
