package engine

// router.go holds the synchronous (Section 1.3) semantics on top of the
// shard runtime: the per-run execution state, the combined
// receive/step/send pass, and the one driver behind both ExecutorSeq and
// ExecutorPool.
//
// All inboxes live in one flat double-buffered arena laid out in the BFS
// locality order of port.Locality: the inbox of the node ranked r is
// arena[off[r]:off[r+1]], so the inbox slots of a shard's nodes form one
// contiguous per-shard region, and the routing table dest maps each
// out-port slot directly to its destination inbox slot — delivering a
// message is a single indexed store, and a low-cut sharding keeps most of
// those stores inside the sender's own region.
//
// Rounds are executed as one combined pass per node: consume the inbox
// from the current arena, step, then emit next-round messages into the
// other arena. Because every inbox slot is written by exactly one out-port
// (the numbering is a bijection) and reads only touch the current arena,
// shards run the pass concurrently with no synchronisation beyond the
// runtime's barrier between rounds. ExecutorSeq is the same pass on an
// inline single-shard runtime — the W=1 degenerate case, bit-identical by
// construction and pinned by TestExecutorEquivalence.

import (
	"fmt"

	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
)

// runState is the flattened execution state of one synchronous run.
type runState struct {
	m         machine.Machine
	g         *graph.Graph
	order     []int32 // locality order: rank → node id
	off       []int32 // rank-indexed CSR offsets: inbox of rank r is arena[off[r]:off[r+1]]
	dest      []int32 // locality out-slot → inbox slot in the destination arena
	broadcast bool
	recv      machine.RecvMode

	states  []machine.State  // node-indexed (shared with Result)
	halted  []bool           // node-indexed
	outputs []machine.Output // node-indexed (shared with Result)
	// haltAge[r] counts halted send passes of the node ranked r, capped at
	// 2: after a halted node has written m0 into both arenas its inbox
	// slots stay m0 forever, so further writes are skipped.
	haltAge []uint8

	// cur holds the messages consumed this round; next receives the
	// messages produced for the following round (two halves of one backing
	// array). Swapped at each barrier.
	cur, next []machine.Message

	// jr/met are the observability hooks, nil when Options.Obs does not
	// ask for them; round is the round being executed, written by the
	// coordinator before each phase (the barrier orders it against shard
	// reads) and stamped into the shards' journal events.
	jr    *journal
	met   *runMetrics
	round int

	rt shardRuntime
}

// Phases of the synchronous driver.
const (
	phaseSend runtimePhase = iota // initial μ(x_0) emission
	phaseStep                     // one combined receive+step+send round
)

// runPhase executes one phase over shard w; the runtime fans it out.
func (rs *runState) runPhase(w int, ph runtimePhase) {
	lo, hi := rs.rt.span(w)
	st := &rs.rt.stats[w]
	if ph == phaseSend {
		for r := lo; r < hi; r++ {
			rs.sendRank(r, rs.cur, st)
		}
		return
	}
	rs.stepShard(lo, hi, st)
}

// driveRounds is the round loop shared by every synchronous run: one
// runtime phase per round over all shards, counters folded at the barrier.
// active is the count of initially non-halted nodes (> 0; callers
// short-circuit the zero-round case).
func (rs *runState) driveRounds(active int, opts Options, res *Result) error {
	maxRounds := maxRoundsOf(opts)
	startRound := 1
	var pending int64
	if opts.Resume != nil {
		// The snapshot's arena already holds the messages the next round
		// consumes (captured post-swap), so the μ(x_0) send pass is skipped.
		startRound = opts.Resume.Step + 1
		pending = opts.Resume.Pending
	} else {
		rs.rt.run(phaseSend)
		pending, _ = rs.rt.fold()
		if rs.met != nil {
			// The initial μ(x_0) emission is not a round step.
			rs.met.dropShardDurs(rs.rt.stats)
		}
	}
	for round := startRound; ; round++ {
		if round > maxRounds {
			return fmt.Errorf("%w (budget %d, machine %q on %v)",
				ErrNoHalt, maxRounds, rs.m.Name(), rs.g)
		}
		// The messages produced at the previous barrier are consumed now;
		// their bytes count only for rounds that execute.
		res.MessageBytes += pending
		rs.round = round
		if rs.met != nil {
			rs.met.roundStart()
		}
		rs.rt.run(phaseStep)
		if rs.met != nil {
			rs.met.shardPhase(rs.rt.stats, rs.met.shardStepUs)
		}
		bytes, halts := rs.rt.fold()
		if rs.met != nil {
			rs.met.roundEnd()
		}
		if rs.jr != nil {
			rs.jr.flushStep(rs.rt.stats)
		}
		rs.swap()
		pending = bytes
		active -= halts
		res.Rounds = round
		if opts.RecordTrace {
			rs.snapshotTrace(res)
		}
		if active == 0 {
			return nil
		}
		// Captured post-swap, after the round's journal events flushed, so a
		// replay from round `round` emits exactly the original journal's
		// suffix.
		if cp := opts.Checkpoint; cp != nil && round%cp.Every == 0 {
			if err := cp.Sink(rs.capture(round, res, pending)); err != nil {
				return fmt.Errorf("engine: checkpoint sink at round %d: %w", round, err)
			}
		}
	}
}

// newRunState initialises states, halt flags, the arena and the shard
// runtime, and returns the number of initially active (non-halted) nodes.
func newRunState(m machine.Machine, g *graph.Graph, p *port.Numbering, opts Options, workers int) (*runState, int, error) {
	n := g.N()
	loc := p.Locality()
	ports := len(loc.Dest)
	arena := make([]machine.Message, 2*ports)
	rs := &runState{
		m:         m,
		g:         g,
		order:     loc.Order,
		off:       loc.Off,
		dest:      loc.Dest,
		broadcast: m.Class().Send == machine.SendBroadcast,
		recv:      m.Class().Recv,
		states:    make([]machine.State, n),
		halted:    make([]bool, n),
		outputs:   make([]machine.Output, n),
		haltAge:   make([]uint8, n),
		cur:       arena[:ports:ports],
		next:      arena[ports:],
		jr:        newJournal(opts.Obs),
		met:       newRunMetrics(opts.Obs, n),
	}
	rs.rt.init(loc, workers)
	if rs.met != nil {
		rs.rt.clock = rs.met.clock
	}
	for w := range rs.rt.stats {
		rs.rt.stats[w].scratch = rs.newScratch()
	}
	active := n
	for v := 0; v < n; v++ {
		s, err := initState(m, g.Degree(v), v, opts)
		if err != nil {
			return nil, 0, err
		}
		rs.states[v] = s
		if out, ok := m.Halted(s); ok {
			rs.halted[v] = true
			rs.outputs[v] = out
			active--
		}
	}
	return rs, active, nil
}

// newScratch returns a canonicalisation buffer sized to the run's maximum
// degree, so CanonicalInboxInto never reallocates.
func (rs *runState) newScratch() []machine.Message {
	return make([]machine.Message, 0, rs.g.MaxDegree())
}

// sendRank emits the outgoing messages of the node ranked r into dst via
// the routing table. Halted nodes send m0 forever (Section 1.3) and
// contribute no bytes; after two halted passes both arenas already hold m0
// in the node's destination slots (each slot has a unique writer), so the
// stores are skipped.
//
//weakvet:noalloc
func (rs *runState) sendRank(r int, dst []machine.Message, st *stepStats) {
	lo, hi := rs.off[r], rs.off[r+1]
	v := rs.order[r]
	if rs.halted[v] {
		if rs.haltAge[r] >= 2 {
			return
		}
		rs.haltAge[r]++
		for s := lo; s < hi; s++ {
			dst[rs.dest[s]] = machine.NoMessage
		}
		return
	}
	state := rs.states[v]
	if rs.broadcast {
		msg := rs.m.Send(state, 1)
		for s := lo; s < hi; s++ {
			dst[rs.dest[s]] = msg
			st.bytes += int64(len(msg))
		}
		return
	}
	for s := lo; s < hi; s++ {
		msg := rs.m.Send(state, int(s-lo)+1)
		dst[rs.dest[s]] = msg
		st.bytes += int64(len(msg))
	}
}

// stepShard runs the combined receive+send pass of one round for the
// ranks [lo,hi): consume the inbox from cur, step, check halting, then
// emit the next round's messages into next. Safe to run concurrently on
// disjoint shards: writes to states/halted/outputs are per-node, writes to
// next are per-inbox-slot (a bijection), and cur is read-only during the
// pass.
//
//weakvet:noalloc
func (rs *runState) stepShard(lo, hi int, st *stepStats) {
	for r := lo; r < hi; r++ {
		v := rs.order[r]
		if !rs.halted[v] {
			inbox := rs.cur[rs.off[r]:rs.off[r+1]]
			inbox = machine.CanonicalInboxInto(rs.recv, inbox, st.scratch)
			rs.states[v] = rs.m.Step(rs.states[v], inbox)
			if rs.jr != nil {
				st.events = append(st.events, obs.Event{
					Step: int64(rs.round), Kind: obs.KindFire, Node: v, Link: -1})
			}
			if out, ok := rs.m.Halted(rs.states[v]); ok {
				rs.halted[v] = true
				rs.outputs[v] = out
				st.newHalts++
				if rs.jr != nil {
					st.events = append(st.events, obs.Event{
						Step: int64(rs.round), Kind: obs.KindHalt, Node: v, Link: -1})
				}
			}
		}
		rs.sendRank(r, rs.next, st)
	}
}

// swap flips the double buffer at the round barrier.
func (rs *runState) swap() { rs.cur, rs.next = rs.next, rs.cur }

// runSync is the one driver behind ExecutorSeq and ExecutorPool: the
// synchronous semantics over a shard runtime. ExecutorSeq passes one
// inline shard; ExecutorPool spawns a worker per BFS shard. Both are
// bit-identical for every worker count (TestExecutorEquivalence).
func runSync(m machine.Machine, g *graph.Graph, p *port.Numbering, opts Options, workers int, spawn bool) (res *Result, err error) {
	rs, active, err := newRunState(m, g, p, opts, workers)
	if err != nil {
		return nil, err
	}
	defer func() {
		// The journal is flushed on every exit path; a flush failure on an
		// otherwise successful run is the run's error. Metrics are mirrored
		// only for completed runs.
		if rs.jr != nil {
			rs.jr.finish(&err)
		}
		if err != nil {
			res = nil
		} else if rs.met != nil {
			rs.met.finish(res)
		}
	}()
	res = &Result{States: rs.states, Shards: rs.rt.workers}
	if opts.Resume != nil {
		if len(opts.Resume.SchedState) > 0 || len(opts.Resume.PlanState) > 0 {
			return nil, fmt.Errorf("engine: synchronous executors have no schedule or fault plan to restore")
		}
		if active, err = rs.restore(opts.Resume, res); err != nil {
			return nil, err
		}
		res.Rounds = opts.Resume.Step
	}
	if opts.RecordTrace {
		rs.snapshotTrace(res)
	}
	if active == 0 {
		res.Output = rs.outputs
		return res, nil
	}
	rs.rt.start(rs, spawn)
	defer rs.rt.stop()
	if err := rs.driveRounds(active, opts, res); err != nil {
		return nil, err
	}
	res.Output = rs.outputs
	return res, nil
}
