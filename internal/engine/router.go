package engine

// router.go holds the compiled per-run execution state shared by the
// sequential and worker-pool executors: the flat CSR routing table borrowed
// from port.Routes and the double-buffered message arena.
//
// All inboxes live in one flat []machine.Message; the inbox of node v is
// arena[off[v]:off[v+1]]. The routing table dest maps each out-port slot
// directly to its destination inbox slot, so delivering a message is a
// single indexed store — no Dest/NeighborIndex calls in the round loop.
//
// Rounds are executed as one combined pass per node: consume the inbox from
// the current arena, step, then emit next-round messages into the other
// arena. Because every inbox slot is written by exactly one out-port (the
// numbering is a bijection) and reads only touch the current arena, shards
// of nodes can run the pass concurrently with no synchronisation beyond a
// barrier between rounds.

import (
	"fmt"

	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

// runState is the flattened execution state of one run.
type runState struct {
	m         machine.Machine
	g         *graph.Graph
	off       []int32 // CSR offsets: inbox of v is arena[off[v]:off[v+1]]
	dest      []int32 // out-port slot → inbox slot in the destination arena
	broadcast bool
	recv      machine.RecvMode

	states  []machine.State
	halted  []bool
	outputs []machine.Output
	// haltAge[v] counts halted send passes of v, capped at 2: after a
	// halted node has written m0 into both arenas its inbox slots stay m0
	// forever, so further writes are skipped.
	haltAge []uint8

	// cur holds the messages consumed this round; next receives the
	// messages produced for the following round. Swapped at each barrier.
	cur, next []machine.Message
}

// poolPhase is a command executed between two round barriers.
type poolPhase int

const (
	phaseSend poolPhase = iota // initial μ(x_0) emission
	phaseStep                  // one combined receive+step+send round
)

// driveRounds is the round loop shared by both executors. runPhase executes
// one phase over every node — inline for the sequential executor, fan-out
// plus barrier for the pool — and returns the bytes produced for the next
// round and the number of nodes that halted. active is the count of
// initially non-halted nodes (> 0; callers short-circuit the zero-round
// case).
func (rs *runState) driveRounds(active int, opts Options, res *Result, runPhase func(poolPhase) (int64, int)) error {
	maxRounds := maxRoundsOf(opts)
	pending, _ := runPhase(phaseSend)
	for round := 1; ; round++ {
		if round > maxRounds {
			return fmt.Errorf("%w (budget %d, machine %q on %v)",
				ErrNoHalt, maxRounds, rs.m.Name(), rs.g)
		}
		// The messages produced at the previous barrier are consumed now;
		// their bytes count only for rounds that execute.
		res.MessageBytes += pending
		bytes, halts := runPhase(phaseStep)
		rs.swap()
		pending = bytes
		active -= halts
		res.Rounds = round
		if opts.RecordTrace {
			rs.snapshotTrace(res)
		}
		if active == 0 {
			return nil
		}
	}
}

// shardStats accumulates one worker's per-round telemetry, merged by the
// coordinator at the barrier. scratch is the worker-local canonicalisation
// buffer (capacity = max degree), reused across nodes and rounds.
type shardStats struct {
	pendingBytes int64 // bytes of messages produced for the next round
	newHalts     int   // nodes that halted during this round's pass
	scratch      []machine.Message
}

// newRunState initialises states, halt flags and the arenas, and returns
// the number of initially active (non-halted) nodes.
func newRunState(m machine.Machine, g *graph.Graph, p *port.Numbering, opts Options) (*runState, int, error) {
	n := g.N()
	r := p.Routes()
	rs := &runState{
		m:         m,
		g:         g,
		off:       r.Offsets(),
		dest:      r.DestTable(),
		broadcast: m.Class().Send == machine.SendBroadcast,
		recv:      m.Class().Recv,
		states:    make([]machine.State, n),
		halted:    make([]bool, n),
		outputs:   make([]machine.Output, n),
		haltAge:   make([]uint8, n),
		cur:       make([]machine.Message, r.NumPorts()),
		next:      make([]machine.Message, r.NumPorts()),
	}
	active := n
	for v := 0; v < n; v++ {
		s, err := initState(m, g.Degree(v), v, opts)
		if err != nil {
			return nil, 0, err
		}
		rs.states[v] = s
		if out, ok := m.Halted(s); ok {
			rs.halted[v] = true
			rs.outputs[v] = out
			active--
		}
	}
	return rs, active, nil
}

// newScratch returns a canonicalisation buffer sized to the run's maximum
// degree, so CanonicalInboxInto never reallocates.
func (rs *runState) newScratch() []machine.Message {
	return make([]machine.Message, 0, rs.g.MaxDegree())
}

// sendNode emits node v's outgoing messages into dst via the routing table.
// Halted nodes send m0 forever (Section 1.3) and contribute no bytes; after
// two halted passes both arenas already hold m0 in v's destination slots
// (each slot has a unique writer), so the stores are skipped.
func (rs *runState) sendNode(v int, dst []machine.Message, st *shardStats) {
	lo, hi := rs.off[v], rs.off[v+1]
	if rs.halted[v] {
		if rs.haltAge[v] >= 2 {
			return
		}
		rs.haltAge[v]++
		for s := lo; s < hi; s++ {
			dst[rs.dest[s]] = machine.NoMessage
		}
		return
	}
	state := rs.states[v]
	if rs.broadcast {
		msg := rs.m.Send(state, 1)
		for s := lo; s < hi; s++ {
			dst[rs.dest[s]] = msg
			st.pendingBytes += int64(len(msg))
		}
		return
	}
	for s := lo; s < hi; s++ {
		msg := rs.m.Send(state, int(s-lo)+1)
		dst[rs.dest[s]] = msg
		st.pendingBytes += int64(len(msg))
	}
}

// sendShard performs the initial send phase for nodes [lo,hi): every node
// emits μ(x_0) into the current arena, to be consumed by round 1.
func (rs *runState) sendShard(lo, hi int, st *shardStats) {
	for v := lo; v < hi; v++ {
		rs.sendNode(v, rs.cur, st)
	}
}

// stepShard runs the combined receive+send pass of one round for nodes
// [lo,hi): consume the inbox from cur, step, check halting, then emit the
// next round's messages into next. Safe to run concurrently on disjoint
// shards: writes to states/halted/outputs are per-node, writes to next are
// per-inbox-slot (a bijection), and cur is read-only during the pass.
func (rs *runState) stepShard(lo, hi int, st *shardStats) {
	for v := lo; v < hi; v++ {
		if !rs.halted[v] {
			inbox := rs.cur[rs.off[v]:rs.off[v+1]]
			inbox = machine.CanonicalInboxInto(rs.recv, inbox, st.scratch)
			rs.states[v] = rs.m.Step(rs.states[v], inbox)
			if out, ok := rs.m.Halted(rs.states[v]); ok {
				rs.halted[v] = true
				rs.outputs[v] = out
				st.newHalts++
			}
		}
		rs.sendNode(v, rs.next, st)
	}
}

// swap flips the double buffer at the round barrier.
func (rs *runState) swap() { rs.cur, rs.next = rs.next, rs.cur }
