package engine

// snapshot_test.go pins the flight-recorder contract of the checkpoint
// layer: a run resumed from any emitted snapshot reproduces the
// uninterrupted run bit-exactly — Result, trace tail and journal suffix —
// across executors, worker counts and GOMAXPROCS settings; and the binary
// snapshot codec round-trips exactly and survives corrupt input.

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
)

// collectSnapshots builds a CheckpointOptions appending every snapshot to
// *into.
func collectSnapshots(every int, into *[]*Snapshot) *CheckpointOptions {
	return &CheckpointOptions{Every: every, Sink: func(s *Snapshot) error {
		*into = append(*into, s)
		return nil
	}}
}

// jsonl serializes events exactly as a run's JournalWriter would.
func jsonl(events []obs.Event) []byte {
	var b []byte
	for _, e := range events {
		b = obs.AppendJSONL(b, e)
	}
	return b
}

// journalAfter returns the JSONL serialization of the events with
// Step > step — the suffix a run resumed from a step-`step` snapshot must
// reproduce byte for byte.
func journalAfter(events []obs.Event, step int) []byte {
	var tail []obs.Event
	for _, e := range events {
		if e.Step > int64(step) {
			tail = append(tail, e)
		}
	}
	return jsonl(tail)
}

// TestCheckpointResumeAsyncHostile is the core flight-recorder property:
// under the full hostile cell (byzantine corruption, healing partition,
// crash/recovery, retransmission) on a random schedule, a run resumed from
// EVERY emitted snapshot reproduces the uninterrupted run bit-exactly —
// Result (modulo Shards), trace tail and journal suffix — and a middle
// snapshot resumes identically across GOMAXPROCS {1,4} × workers {1,4}.
func TestCheckpointResumeAsyncHostile(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())

	var snaps []*Snapshot
	var refEvents obs.Collect
	opts := hostileOpts(t, "random:0.3", 1)
	opts.RecordTrace = true
	opts.Checkpoint = collectSnapshots(8, &snaps)
	opts.Obs = &obs.Obs{Sink: &refEvents}
	ref, err := Run(m, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 3 {
		t.Fatalf("only %d snapshots over %d steps, want ≥ 3", len(snaps), ref.Rounds)
	}
	if ref.Corruptions == 0 || ref.Crashes == 0 || ref.Retransmits == 0 || ref.Healed == 0 {
		t.Fatalf("hostile cell too quiet: %+v", ref)
	}

	resume := func(snap *Snapshot, workers int) (*Result, []obs.Event) {
		t.Helper()
		ropts := hostileOpts(t, "random:0.3", workers)
		ropts.RecordTrace = true
		ropts.Resume = snap
		var ev obs.Collect
		ropts.Obs = &obs.Obs{Sink: &ev}
		res, err := Run(m, p, ropts)
		if err != nil {
			t.Fatalf("resume from step %d (workers=%d): %v", snap.Step, workers, err)
		}
		return res, ev.Events
	}
	check := func(label string, snap *Snapshot, res *Result, events []obs.Event) {
		t.Helper()
		got := *res
		got.Shards = ref.Shards
		gotTrace := got.Trace
		got.Trace = nil
		want := *ref
		want.Trace = nil
		if !reflect.DeepEqual(&want, &got) {
			t.Fatalf("%s: resumed Result diverged\nref: %+v\ngot: %+v", label, want, got)
		}
		if !reflect.DeepEqual(ref.Trace[snap.Step:], gotTrace) {
			t.Fatalf("%s: resumed trace is not the reference tail", label)
		}
		if wantJ, gotJ := journalAfter(refEvents.Events, snap.Step), jsonl(events); !bytes.Equal(wantJ, gotJ) {
			t.Fatalf("%s: resumed journal is not the reference suffix (%d vs %d bytes)",
				label, len(gotJ), len(wantJ))
		}
	}

	// Every snapshot resumes bit-exactly on the single-shard driver.
	for _, snap := range snaps {
		res, events := resume(snap, 1)
		check(fmt.Sprintf("snapshot@%d workers=1", snap.Step), snap, res, events)
	}

	// A middle snapshot resumes bit-exactly across the worker/procs matrix,
	// and the snapshot survives seeding several runs (bisection reuses one).
	mid := snaps[len(snaps)/2]
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 4} {
			res, events := resume(mid, workers)
			check(fmt.Sprintf("snapshot@%d procs=%d workers=%d", mid.Step, procs, workers),
				mid, res, events)
		}
	}
}

// TestCheckpointResumeSync: the synchronous drivers emit post-swap
// snapshots and resume them bit-exactly, on the sequential and the pooled
// executor alike.
func TestCheckpointResumeSync(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxDegreeWithin(g.MaxDegree(), 8)

	var snaps []*Snapshot
	var refEvents obs.Collect
	ref, err := Run(m, p, Options{
		Executor:    ExecutorSeq,
		RecordTrace: true,
		Checkpoint:  collectSnapshots(2, &snaps),
		Obs:         &obs.Obs{Sink: &refEvents},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("only %d snapshots over %d rounds, want ≥ 2", len(snaps), ref.Rounds)
	}
	for _, snap := range snaps {
		for _, exec := range []Executor{ExecutorSeq, ExecutorPool} {
			var ev obs.Collect
			res, err := Run(m, p, Options{
				Executor:    exec,
				Workers:     4,
				RecordTrace: true,
				Resume:      snap,
				Obs:         &obs.Obs{Sink: &ev},
			})
			if err != nil {
				t.Fatalf("resume round %d on %v: %v", snap.Step, exec, err)
			}
			label := fmt.Sprintf("snapshot@%d exec=%v", snap.Step, exec)
			got, want := *res, *ref
			got.Shards, got.Trace, want.Trace = ref.Shards, nil, nil
			gotTrace := res.Trace
			if !reflect.DeepEqual(&want, &got) {
				t.Fatalf("%s: resumed Result diverged", label)
			}
			if !reflect.DeepEqual(ref.Trace[snap.Step:], gotTrace) {
				t.Fatalf("%s: resumed trace is not the reference tail", label)
			}
			if wantJ, gotJ := journalAfter(refEvents.Events, snap.Step), jsonl(ev.Events); !bytes.Equal(wantJ, gotJ) {
				t.Fatalf("%s: resumed journal is not the reference suffix", label)
			}
		}
	}
}

// TestCheckpointValidation: malformed checkpoint/resume configurations are
// rejected up front, not discovered mid-run.
func TestCheckpointValidation(t *testing.T) {
	g := graph.Path(3)
	p := port.Canonical(g)
	m := degreeSum(g.MaxDegree())
	sink := func(*Snapshot) error { return nil }

	if _, err := Run(m, p, Options{Checkpoint: &CheckpointOptions{Every: 0, Sink: sink}}); err == nil {
		t.Error("Every=0 accepted")
	}
	if _, err := Run(m, p, Options{Checkpoint: &CheckpointOptions{Every: 4}}); err == nil {
		t.Error("nil Sink accepted")
	}
	if _, err := Run(m, p, Options{Resume: &Snapshot{Step: 1, Sync: false}}); err == nil {
		t.Error("async snapshot accepted by the sequential executor")
	}
	if _, err := Run(m, p, Options{Executor: ExecutorAsync, Resume: &Snapshot{Step: 1, Sync: true}}); err == nil {
		t.Error("sync snapshot accepted by the async executor")
	}
	if _, err := Run(m, p, Options{
		Executor: ExecutorAsync,
		Resume:   &Snapshot{Step: 1, States: make([]machine.State, 99)},
	}); err == nil {
		t.Error("wrong-size snapshot accepted")
	}
}

// hostileSnapshotPair produces one async snapshot of the hostile cell
// (generator state blobs populated) and one synchronous snapshot, for the
// codec tests.
func hostileSnapshotPair(t testing.TB) (*Snapshot, *Snapshot, *port.Numbering) {
	t.Helper()
	g := graph.Torus(4, 4)
	p := port.Canonical(g)

	var asyncSnaps []*Snapshot
	opts := hostileOpts(t, "random:0.3", 1)
	opts.Checkpoint = collectSnapshots(16, &asyncSnaps)
	if _, err := Run(algorithms.MaxConsensus(g.MaxDegree()), p, opts); err != nil {
		t.Fatal(err)
	}
	var syncSnaps []*Snapshot
	if _, err := Run(algorithms.MaxConsensus(g.MaxDegree()), p, Options{
		MaxRounds:  64,
		Executor:   ExecutorSeq,
		Checkpoint: collectSnapshots(16, &syncSnaps),
	}); err == nil {
		t.Fatal("max-consensus halted on a synchronous executor")
	} else if len(syncSnaps) == 0 {
		t.Fatalf("no sync snapshots before the budget error: %v", err)
	}
	if len(asyncSnaps) == 0 {
		t.Fatal("no async snapshots")
	}
	snap := asyncSnaps[len(asyncSnaps)/2]
	if len(snap.SchedState) == 0 || len(snap.PlanState) == 0 {
		t.Fatalf("hostile snapshot carries no generator state: sched=%d plan=%d bytes",
			len(snap.SchedState), len(snap.PlanState))
	}
	return snap, syncSnaps[len(syncSnaps)-1], p
}

// TestSnapshotMarshalRoundTrip: the binary codec reproduces a hostile
// async snapshot and a synchronous snapshot exactly.
func TestSnapshotMarshalRoundTrip(t *testing.T) {
	asyncSnap, syncSnap, p := hostileSnapshotPair(t)
	m := algorithms.MaxConsensus(graph.Torus(4, 4).MaxDegree())
	for _, snap := range []*Snapshot{asyncSnap, syncSnap} {
		data, err := snap.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalSnapshot(data, m, p)
		if err != nil {
			t.Fatalf("decode sync=%v: %v", snap.Sync, err)
		}
		if !reflect.DeepEqual(snap, got) {
			t.Fatalf("sync=%v round trip diverged\nwant %+v\ngot  %+v", snap.Sync, snap, got)
		}
	}
}

// FuzzSnapshotRoundTrip: the decoder never panics on corrupt bytes, and
// whatever it accepts re-encodes to a snapshot it decodes back to equal —
// the codec has one canonical form per accepted value.
func FuzzSnapshotRoundTrip(f *testing.F) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())

	asyncSnap, syncSnap, _ := hostileSnapshotPair(f)
	for _, snap := range []*Snapshot{asyncSnap, syncSnap} {
		if data, err := snap.MarshalBinary(); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte{snapshotVersion})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := UnmarshalSnapshot(data, m, p)
		if err != nil {
			return
		}
		re, err := snap.MarshalBinary()
		if err != nil {
			// Accepted but not re-encodable (e.g. a gob stream that decoded
			// to states the encoder rejects) — tolerable for corrupt input,
			// impossible for codec-produced bytes, which the seeds cover.
			return
		}
		again, err := UnmarshalSnapshot(re, m, p)
		if err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v", err)
		}
		if !reflect.DeepEqual(snap, again) {
			t.Fatal("re-encoded snapshot decodes differently")
		}
	})
}
