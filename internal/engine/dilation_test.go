package engine

import (
	"fmt"
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/graph"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// TestScheduleDilationBoundsMeasuredSteps pins the worst-case hints of
// schedule.Dilated against reality: a T-round synchronous algorithm run
// under a schedule must finish within Dilation(n)·T steps on a reference
// graph — that is the contract asyncStepBudget relies on when it scales
// the default budget. RandomSubset's hint is a tail bound rather than a
// hard one, so several seeds are checked; if a seed ever exceeded it, the
// hint (and with it the budget scaling) would be too tight and this test
// is what should catch it. Both async drivers are pinned — the
// single-threaded one and the sharded one — and at two sizes, since
// RandomSubset's hint grows with ln n.
func TestScheduleDilationBoundsMeasuredSteps(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Torus(4, 4), graph.Torus(16, 16)} {
		n := g.N()
		p := port.Canonical(g)
		const rounds = 8 // MaxDegreeWithin(_, 8) halts after exactly 8 rounds
		for _, workers := range []int{1, 4} {
			for _, seed := range []int64{1, 7, 23, 99} {
				gens := []schedule.Schedule{
					schedule.Synchronous(),
					schedule.RoundRobin(),
					schedule.RandomSubset(seed, 0.25),
					schedule.RandomSubset(seed, 0.8),
					schedule.BoundedStaleness(seed, 2),
					schedule.Adversary(seed, 4),
				}
				for _, sched := range gens {
					d, ok := sched.(schedule.Dilated)
					if !ok {
						t.Fatalf("generator %s does not report a dilation", sched.Name())
					}
					dilation := d.Dilation(n)
					if dilation < 1 {
						t.Fatalf("%s: dilation %d < 1", sched.Name(), dilation)
					}
					m := algorithms.MaxDegreeWithin(g.MaxDegree(), rounds)
					res, err := Run(m, p, Options{
						MaxRounds: dilation*rounds + 1, // the bound itself, as the budget
						Executor:  ExecutorAsync,
						Workers:   workers,
						Schedule:  sched,
					})
					label := fmt.Sprintf("%s n=%d workers=%d seed=%d", sched.Name(), n, workers, seed)
					if err != nil {
						t.Fatalf("%s: did not halt within its dilation bound %d·%d: %v",
							label, dilation, rounds, err)
					}
					if res.Rounds > dilation*rounds {
						t.Errorf("%s: %d measured steps exceed the dilation bound %d·%d = %d",
							label, res.Rounds, dilation, rounds, dilation*rounds)
					}
				}
			}
		}
	}
}
