// Package kripke implements Kripke models and the canonical translation of
// a port-numbered graph (G, p) into the four model variants of Section 4.3:
//
//	K₊,₊(G,p) — relations R(i,j), full port information (classes VVc, VV)
//	K₋,₊(G,p) — relations R(∗,j), no incoming ports  (classes MV, SV)
//	K₊,₋(G,p) — relations R(i,∗), no outgoing ports  (class VB)
//	K₋,₋(G,p) — relation  R(∗,∗), neither            (classes MB, SB)
//
// where R(i,j) = {(u,v) : p((v,j)) = (u,i)} — from u's point of view the
// R(i,j)-successor of u is the neighbour w whose out-port j delivers into
// u's in-port i. The valuation interprets q_d as "this node has degree d".
package kripke

import (
	"fmt"
	"sort"

	"weakmodels/internal/port"
)

// Star is the wildcard index ∗ in relation labels.
const Star = 0

// Index labels an accessibility relation R(I,J). I is the receiver's
// in-port or Star; J is the sender's out-port or Star.
type Index struct {
	I, J int
}

// String formats the label as the paper does, e.g. "(2,1)", "(∗,1)".
func (x Index) String() string {
	return fmt.Sprintf("(%s,%s)", starOr(x.I), starOr(x.J))
}

func starOr(i int) string {
	if i == Star {
		return "∗"
	}
	return fmt.Sprintf("%d", i)
}

// Variant selects one of the four model translations.
type Variant int

// The four variants K_{a,b} with a = incoming ports, b = outgoing ports.
const (
	VariantPP Variant = iota + 1 // K₊,₊
	VariantMP                    // K₋,₊
	VariantPM                    // K₊,₋
	VariantMM                    // K₋,₋
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantPP:
		return "K(+,+)"
	case VariantMP:
		return "K(−,+)"
	case VariantPM:
		return "K(+,−)"
	case VariantMM:
		return "K(−,−)"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Model is a finite multimodal Kripke model. States are 0..N-1. Relations
// are stored as successor lists per state. Valuations map proposition names
// to the set of states where they hold.
type Model struct {
	n     int
	rels  map[Index][][]int
	props map[string][]bool

	// csr caches the compiled CSR form (csr.go); invalidated on mutation.
	csr *CSR
}

// NewModel returns an empty model with n states.
func NewModel(n int) *Model {
	return &Model{
		n:     n,
		rels:  make(map[Index][][]int),
		props: make(map[string][]bool),
	}
}

// N returns the number of states.
func (m *Model) N() int { return m.n }

// AddEdge adds (u,v) to relation α.
func (m *Model) AddEdge(alpha Index, u, v int) {
	m.csr = nil
	succ, ok := m.rels[alpha]
	if !ok {
		succ = make([][]int, m.n)
		m.rels[alpha] = succ
	}
	succ[u] = append(succ[u], v)
}

// SetProp marks proposition q true at state v.
func (m *Model) SetProp(q string, v int) {
	m.csr = nil
	val, ok := m.props[q]
	if !ok {
		val = make([]bool, m.n)
		m.props[q] = val
	}
	val[v] = true
}

// Prop reports whether q holds at v.
func (m *Model) Prop(q string, v int) bool {
	val, ok := m.props[q]
	return ok && val[v]
}

// Succ returns the successors of v under relation α (nil if none). The
// returned slice is shared; callers must not modify it.
func (m *Model) Succ(alpha Index, v int) []int {
	succ, ok := m.rels[alpha]
	if !ok {
		return nil
	}
	return succ[v]
}

// Indices returns the relation labels present in the model, sorted.
func (m *Model) Indices() []Index {
	out := make([]Index, 0, len(m.rels))
	for x := range m.rels {
		out = append(out, x)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// Props returns the proposition names present, sorted.
func (m *Model) Props() []string {
	out := make([]string, 0, len(m.props))
	for q := range m.props {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// PropSig returns a canonical string of the propositions true at v, used by
// bisimulation's initial partition.
func (m *Model) PropSig(v int) string {
	sig := ""
	for _, q := range m.Props() {
		if m.Prop(q, v) {
			sig += q + ";"
		}
	}
	return sig
}

// DegreeProp returns the proposition name q_d of the valuation Φ_Δ.
func DegreeProp(d int) string { return fmt.Sprintf("q%d", d) }

// FromPorts builds the Kripke model Ka,b(G, p) for the requested variant.
// The valuation sets q_d exactly at the nodes of degree d ≥ 1 (Φ_Δ contains
// no q_0; degree-0 nodes satisfy no degree proposition, matching the paper).
func FromPorts(p *port.Numbering, variant Variant) *Model {
	g := p.Graph()
	m := NewModel(g.N())
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d >= 1 {
			m.SetProp(DegreeProp(d), v)
		}
	}
	// For every port (w, j), p((w,j)) = (u, i) contributes (u, w) to R(i,j).
	for w := 0; w < g.N(); w++ {
		for j := 1; j <= g.Degree(w); j++ {
			d := p.Dest(w, j)
			u, i := d.Node, d.Index
			switch variant {
			case VariantPP:
				m.AddEdge(Index{I: i, J: j}, u, w)
			case VariantMP:
				m.AddEdge(Index{I: Star, J: j}, u, w)
			case VariantPM:
				m.AddEdge(Index{I: i, J: Star}, u, w)
			case VariantMM:
				m.AddEdge(Index{I: Star, J: Star}, u, w)
			default:
				panic(fmt.Sprintf("kripke: unknown variant %v", variant))
			}
		}
	}
	return m
}

// DisjointUnion returns the union of two models over the same signature,
// with b's states shifted by a.N(). Bisimilarity across two models is
// bisimilarity inside the union — used by the separation arguments.
func DisjointUnion(a, b *Model) *Model {
	m := NewModel(a.n + b.n)
	// Iterate relations and propositions in sorted order so edge insertion
	// order — and with it every successor row of the union — is
	// deterministic, not a map-walk artifact.
	for _, x := range a.Indices() {
		for u, vs := range a.rels[x] {
			for _, v := range vs {
				m.AddEdge(x, u, v)
			}
		}
	}
	for _, x := range b.Indices() {
		for u, vs := range b.rels[x] {
			for _, v := range vs {
				m.AddEdge(x, u+a.n, v+a.n)
			}
		}
	}
	for _, q := range a.Props() {
		for v, t := range a.props[q] {
			if t {
				m.SetProp(q, v)
			}
		}
	}
	for _, q := range b.Props() {
		for v, t := range b.props[q] {
			if t {
				m.SetProp(q, v+a.n)
			}
		}
	}
	return m
}

// VariantForRecvSend maps a machine's information regime onto the model
// variant whose relations carry exactly the same information: incoming port
// numbers visible ⇔ a = +, outgoing port numbers visible ⇔ b = +.
func VariantForRecvSend(incomingVisible, outgoingVisible bool) Variant {
	switch {
	case incomingVisible && outgoingVisible:
		return VariantPP
	case !incomingVisible && outgoingVisible:
		return VariantMP
	case incomingVisible && !outgoingVisible:
		return VariantPM
	default:
		return VariantMM
	}
}
