package kripke

// csr.go compiles a Model into the flat CSR form the fast logic paths
// consume, mirroring port.Routes: per relation a single offsets/targets
// pair for successors and another for predecessors, plus a dense
// valuation-class id per state and per-proposition bitsets. The compiled
// form is cached on the Model and invalidated by AddEdge/SetProp, like
// Numbering.Routes/Locality — build once, then every refinement round and
// bitset eval is pure slice arithmetic.

import "sort"

// csrRel is one relation's adjacency in compressed-sparse-row form.
type csrRel struct {
	off  []int32 // len n+1; successors of u are succ[off[u]:off[u+1]]
	succ []int32
	poff []int32 // len n+1; predecessors of u are pred[poff[u]:poff[u+1]]
	pred []int32
}

// CSR is the compiled read-only form of a Model. Safe for concurrent
// reads once built; callers must finish mutating the Model first.
type CSR struct {
	n       int
	words   int // bitset words per truth set: (n+63)/64
	indices []Index
	relIdx  map[Index]int
	rels    []csrRel

	valClass []int32 // dense valuation-class id per state
	numVal   int
	propBits map[string][]uint64
}

// CSR returns the compiled form, building it on first use. The cache is
// invalidated by AddEdge/SetProp; like the rest of Model, mutation is not
// safe concurrently with readers.
func (m *Model) CSR() *CSR {
	if m.csr == nil {
		m.csr = compileCSR(m)
	}
	return m.csr
}

func compileCSR(m *Model) *CSR {
	n := m.n
	c := &CSR{
		n:        n,
		words:    (n + 63) / 64,
		indices:  m.Indices(),
		relIdx:   make(map[Index]int),
		propBits: make(map[string][]uint64),
	}
	c.rels = make([]csrRel, len(c.indices))
	for ri, x := range c.indices {
		c.relIdx[x] = ri
		succ := m.rels[x]
		r := csrRel{off: make([]int32, n+1), poff: make([]int32, n+1)}
		total := 0
		for u := 0; u < n; u++ {
			total += len(succ[u])
		}
		r.succ = make([]int32, total)
		r.pred = make([]int32, total)
		// Successor side: direct copy in state order.
		pos := int32(0)
		for u := 0; u < n; u++ {
			r.off[u] = pos
			for _, v := range succ[u] {
				r.succ[pos] = int32(v)
				pos++
			}
		}
		r.off[n] = pos
		// Predecessor side: counting sort on target, so pred rows come
		// out sorted by source state — deterministic regardless of edge
		// insertion order.
		for u := 0; u < n; u++ {
			for _, v := range succ[u] {
				r.poff[v+1]++
			}
		}
		for v := 0; v < n; v++ {
			r.poff[v+1] += r.poff[v]
		}
		cursor := make([]int32, n)
		copy(cursor, r.poff[:n])
		for u := 0; u < n; u++ {
			for _, v := range succ[u] {
				r.pred[cursor[v]] = int32(u)
				cursor[v]++
			}
		}
		c.rels[ri] = r
	}

	// Valuation classes: dense ids by first occurrence over states
	// 0..n-1, the same assignment order PropSig-keyed code produced.
	// The key is the state's packed proposition membership.
	props := m.Props()
	for _, q := range props {
		bits := make([]uint64, c.words)
		val := m.props[q]
		for v := 0; v < n; v++ {
			if val[v] {
				bits[v>>6] |= 1 << (uint(v) & 63)
			}
		}
		c.propBits[q] = bits
	}
	c.valClass = make([]int32, n)
	classOf := make(map[string]int32)
	key := make([]byte, (len(props)+7)/8)
	for v := 0; v < n; v++ {
		for i := range key {
			key[i] = 0
		}
		for qi, q := range props {
			if m.props[q][v] {
				key[qi>>3] |= 1 << (uint(qi) & 7)
			}
		}
		id, ok := classOf[string(key)]
		if !ok {
			id = int32(len(classOf))
			classOf[string(key)] = id
		}
		c.valClass[v] = id
	}
	c.numVal = len(classOf)
	return c
}

// N returns the number of states.
func (c *CSR) N() int { return c.n }

// Words returns the number of uint64 words in a truth-set bitset.
func (c *CSR) Words() int { return c.words }

// Indices returns the relation labels, sorted. Shared; do not modify.
func (c *CSR) Indices() []Index { return c.indices }

// Rel returns the successor CSR of relation α: offsets (len n+1) and the
// flat successor array. ok is false when the model has no α-edges.
func (c *CSR) Rel(alpha Index) (off, succ []int32, ok bool) {
	ri, found := c.relIdx[alpha]
	if !found {
		return nil, nil, false
	}
	return c.rels[ri].off, c.rels[ri].succ, true
}

// Pred returns the predecessor CSR of relation α (rows sorted by source).
func (c *CSR) Pred(alpha Index) (off, pred []int32, ok bool) {
	ri, found := c.relIdx[alpha]
	if !found {
		return nil, nil, false
	}
	return c.rels[ri].poff, c.rels[ri].pred, true
}

// ValClass returns the dense valuation-class id per state: two states get
// the same id iff they satisfy the same propositions, ids assigned by
// first occurrence in state order. Shared; do not modify.
func (c *CSR) ValClass() []int32 { return c.valClass }

// NumValClasses returns the number of distinct valuation classes.
func (c *CSR) NumValClasses() int { return c.numVal }

// PropBits returns the truth set of proposition q as a bitset (nil when q
// is not in the model). Shared; do not modify.
func (c *CSR) PropBits(q string) []uint64 { return c.propBits[q] }

// Props returns the proposition names present, sorted.
func (c *CSR) Props() []string {
	out := make([]string, 0, len(c.propBits))
	for q := range c.propBits {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// MaxOutDegree returns the largest successor-row length across all
// relations — the scratch sizing bound for refinement signatures.
func (c *CSR) MaxOutDegree() int {
	maxDeg := 0
	for _, r := range c.rels {
		for u := 0; u < c.n; u++ {
			if d := int(r.off[u+1] - r.off[u]); d > maxDeg {
				maxDeg = d
			}
		}
	}
	return maxDeg
}
