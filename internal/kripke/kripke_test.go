package kripke

import (
	"testing"

	"weakmodels/internal/graph"
	"weakmodels/internal/port"
)

func TestFromPortsPP(t *testing.T) {
	g := graph.Path(2) // one edge
	p := port.Canonical(g)
	m := FromPorts(p, VariantPP)
	if m.N() != 2 {
		t.Fatalf("N = %d", m.N())
	}
	// Canonical numbering on an edge: both ends use port 1 in and out.
	succ := m.Succ(Index{I: 1, J: 1}, 0)
	if len(succ) != 1 || succ[0] != 1 {
		t.Errorf("R(1,1) successors of 0 = %v, want [1]", succ)
	}
	if !m.Prop(DegreeProp(1), 0) || m.Prop(DegreeProp(2), 0) {
		t.Error("valuation wrong")
	}
}

func TestRelationCounts(t *testing.T) {
	g := graph.Figure1Graph()
	p := port.Canonical(g)

	// Total edge count across all relations must be 2|E| in every variant
	// (one pair (u,w) per port of w).
	for _, variant := range []Variant{VariantPP, VariantMP, VariantPM, VariantMM} {
		m := FromPorts(p, variant)
		total := 0
		for _, alpha := range m.Indices() {
			for v := 0; v < m.N(); v++ {
				total += len(m.Succ(alpha, v))
			}
		}
		if total != 2*g.M() {
			t.Errorf("%v: %d relation pairs, want %d", variant, total, 2*g.M())
		}
	}
}

func TestFigure7Relations(t *testing.T) {
	// On any (G,p): R(∗,∗) must be the symmetric edge relation, R(i,∗) the
	// "who feeds my in-port i" relation, R(∗,j) the "whose out-port j
	// reaches me" relation, and the R(i,j) must partition R(∗,∗).
	g := graph.Figure1Graph()
	p := port.Canonical(g)

	mm := FromPorts(p, VariantMM)
	star := Index{I: Star, J: Star}
	for v := 0; v < g.N(); v++ {
		succ := append([]int(nil), mm.Succ(star, v)...)
		if len(succ) != g.Degree(v) {
			t.Fatalf("R(∗,∗) successors of %d: %v", v, succ)
		}
		for _, w := range succ {
			if !g.HasEdge(v, w) {
				t.Fatalf("R(∗,∗) contains non-edge (%d,%d)", v, w)
			}
		}
	}

	pm := FromPorts(p, VariantPM)
	for v := 0; v < g.N(); v++ {
		for i := 1; i <= g.Degree(v); i++ {
			succ := pm.Succ(Index{I: i, J: Star}, v)
			if len(succ) != 1 {
				t.Fatalf("R(%d,∗) successors of %d = %v, want exactly 1", i, v, succ)
			}
			// The successor is the node whose message arrives at in-port i.
			src := p.Source(v, i)
			if succ[0] != src.Node {
				t.Errorf("R(%d,∗) successor of %d = %d, want %d", i, v, succ[0], src.Node)
			}
		}
	}

	mp := FromPorts(p, VariantMP)
	for v := 0; v < g.N(); v++ {
		count := 0
		for j := 1; j <= g.MaxDegree(); j++ {
			count += len(mp.Succ(Index{I: Star, J: j}, v))
		}
		if count != g.Degree(v) {
			t.Errorf("R(∗,·) successor count of %d = %d, want %d", v, count, g.Degree(v))
		}
	}

	pp := FromPorts(p, VariantPP)
	perNode := make([]int, g.N())
	for _, alpha := range pp.Indices() {
		for v := 0; v < g.N(); v++ {
			perNode[v] += len(pp.Succ(alpha, v))
		}
	}
	for v := 0; v < g.N(); v++ {
		if perNode[v] != g.Degree(v) {
			t.Errorf("R(i,j) successors of %d = %d, want %d", v, perNode[v], g.Degree(v))
		}
	}
}

func TestSymmetricNumberingDiagonal(t *testing.T) {
	// Under a Lemma 15 numbering, R(i,j) is empty off the diagonal.
	g := graph.Petersen()
	perms, err := graph.DoubleCoverFactorPermutations(g)
	if err != nil {
		t.Fatal(err)
	}
	p, err := port.FromPermutationFactors(g, perms)
	if err != nil {
		t.Fatal(err)
	}
	m := FromPorts(p, VariantPP)
	for _, alpha := range m.Indices() {
		if alpha.I != alpha.J {
			for v := 0; v < m.N(); v++ {
				if len(m.Succ(alpha, v)) > 0 {
					t.Fatalf("off-diagonal relation %v non-empty at %d", alpha, v)
				}
			}
		}
	}
}

func TestDisjointUnion(t *testing.T) {
	p1 := port.Canonical(graph.Path(2))
	p2 := port.Canonical(graph.Cycle(3))
	a := FromPorts(p1, VariantMM)
	b := FromPorts(p2, VariantMM)
	u := DisjointUnion(a, b)
	if u.N() != 5 {
		t.Fatalf("union size %d", u.N())
	}
	star := Index{I: Star, J: Star}
	if got := u.Succ(star, 2); len(got) != 2 {
		t.Errorf("shifted node 2 (cycle node 0) has successors %v", got)
	}
	if !u.Prop(DegreeProp(2), 3) {
		t.Error("shifted valuation lost")
	}
	for _, w := range u.Succ(star, 0) {
		if w >= 2 {
			t.Error("union mixed components")
		}
	}
}

func TestVariantForRecvSend(t *testing.T) {
	if VariantForRecvSend(true, true) != VariantPP ||
		VariantForRecvSend(false, true) != VariantMP ||
		VariantForRecvSend(true, false) != VariantPM ||
		VariantForRecvSend(false, false) != VariantMM {
		t.Error("variant mapping wrong")
	}
}

func TestPropSig(t *testing.T) {
	m := NewModel(2)
	m.SetProp("a", 0)
	m.SetProp("b", 0)
	m.SetProp("a", 1)
	if m.PropSig(0) == m.PropSig(1) {
		t.Error("different valuations, same signature")
	}
}

func BenchmarkKripkeBuild(b *testing.B) {
	g := graph.Torus(10, 10)
	p := port.Canonical(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromPorts(p, VariantPP)
	}
}
