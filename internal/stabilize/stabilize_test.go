package stabilize

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// suiteGraphs is the graph side of the stabilisation matrix: the same
// shapes the engine equivalence suite uses, kept small enough that the
// full (graph × machine × schedule × plan) product stays fast under -race.
func suiteGraphs(tb testing.TB) []*graph.Graph {
	tb.Helper()
	pa, err := graph.PreferentialAttachment(24, 2, 17)
	if err != nil {
		tb.Fatal(err)
	}
	return []*graph.Graph{
		graph.Path(6),
		graph.Cycle(7),
		graph.Star(5),
		graph.Petersen(),
		graph.Grid(3, 3),
		graph.Torus(4, 4),
		graph.Caterpillar(4, 2),
		pa,
	}
}

// suiteMachines are the self-stabilising workloads of the acceptance
// criterion: the max gossip and the Bellman-style leaf proximity.
func suiteMachines(delta int) []machine.Machine {
	return []machine.Machine{
		algorithms.MaxConsensus(delta),
		algorithms.LeafProximityStab(delta, 3),
	}
}

// fairPlanSpecs are transient fault plans — p<1 message faults and finite,
// always-recovered crashes — with a short horizon so each cell converges
// quickly. Every plan here is "fair" in the package's sense: it perturbs
// the run only finitely and then settles.
var fairPlanSpecs = []string{
	"drop:0.4,%d,120",
	"dup:0.3,%d,120",
	"drop:0.3,%d,120+dup:0.2,%d,120",
	"crash:2,%d,120",
	"pause:1,%d,120",
	"drop:0.25,%d,120+crash:1,%d,120",
	"adversary:2,%d,120",
	// The hostile-link families: Byzantine corruption (tolerated through
	// the machines' MessageGuard alphabets), a partition that cuts a seeded
	// island and heals within the horizon, sender-side retransmission for
	// recovering crash victims, and all of them at once.
	"byzantine:0.35,%d,120",
	"partition:3,%d,120",
	"crash:1,%d,120+retransmit:2,%d,120",
	"byzantine:0.25,%d,120+partition:2,%d,120+crash:1,%d,120+retransmit:1,%d,120",
}

// fairSchedules builds fresh fair schedules (schedules are stateful).
func fairSchedules(seed int64) []schedule.Schedule {
	return []schedule.Schedule{
		schedule.Synchronous(),
		schedule.RoundRobin(),
		schedule.RandomSubset(seed, 0.4),
		schedule.Adversary(seed, 3),
	}
}

// instantiate fills every %d in a plan spec with the seed and parses it.
func instantiate(tb testing.TB, spec string, seed int64) fault.Plan {
	tb.Helper()
	args := make([]any, 0, 4)
	for i := 0; i < 4; i++ {
		args = append(args, seed+int64(i))
	}
	n := 0
	for i := 0; i+1 < len(spec); i++ {
		if spec[i] == '%' && spec[i+1] == 'd' {
			n++
		}
	}
	plan, err := fault.Parse(fmt.Sprintf(spec, args[:n]...), seed)
	if err != nil {
		tb.Fatalf("plan spec %q: %v", spec, err)
	}
	return plan
}

// TestSelfStabilisation is the acceptance property of the fault subsystem:
// under any fair fault plan (p<1 message faults, finitely many crashes,
// every crash recovered), the gossip and leaf-proximity algorithms reach
// exactly the fault-free synchronous configuration, on every graph of the
// suite, under lock-step and adversarial schedules alike. CI runs this
// under -race.
func TestSelfStabilisation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, g := range suiteGraphs(t) {
		delta := g.MaxDegree()
		numberings := map[string]*port.Numbering{
			"canonical": port.Canonical(g),
			"random":    port.Random(g, rng),
		}
		for _, m := range suiteMachines(delta) {
			for pname, p := range numberings {
				for si := range fairSchedules(0) {
					for _, planSpec := range fairPlanSpecs {
						sched := fairSchedules(23)[si]
						plan := instantiate(t, planSpec, 91)
						label := fmt.Sprintf("%s on %v ports=%s schedule=%s plan=%s",
							m.Name(), g, pname, sched.Name(), plan.Name())
						rep, err := Check(m, p, sched, plan, 500_000)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						if !rep.Faulty.Fixpoint {
							t.Fatalf("%s: faulty run did not reach a fixpoint (%d steps)",
								label, rep.Faulty.Rounds)
						}
						if len(rep.Dead) != 0 {
							t.Fatalf("%s: %d nodes dead under an always-recovering plan", label, len(rep.Dead))
						}
						if !rep.Stabilised() {
							t.Fatalf("%s: nodes %v did not stabilise to the fault-free configuration\n%s",
								label, rep.Mismatched, rep)
						}
					}
				}
			}
		}
	}
}

// TestCrashStopPartition pins the crash-stop semantics the harness
// excludes from the stabilisation claim: a permanently dead star centre is
// reported dead, and the surviving leaves stabilise to the partitioned
// network's fixpoint (their own distance estimates), not the fault-free
// one — visible as mismatches.
func TestCrashStopPartition(t *testing.T) {
	g := graph.Star(5)
	m := algorithms.LeafProximityStab(g.MaxDegree(), 3)
	// Fault-free, every node is within distance 1 of a leaf. With the
	// centre dead from step 1, a leaf's only neighbour is silent forever,
	// so its estimate stays at its own leaf-ness (0) — which happens to
	// match — but the dead centre must be excluded, not compared.
	rep, err := Check(m, port.Canonical(g), schedule.Synchronous(),
		fault.CrashAt(0, 1, 0, fault.RecoverNone), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dead) != 1 || rep.Dead[0] != 0 {
		t.Fatalf("Dead = %v, want the centre [0]", rep.Dead)
	}
	if !rep.Faulty.Fixpoint {
		t.Error("crash-stopped run did not end at a fixpoint")
	}
	if !rep.Stabilised() {
		t.Errorf("leaves should stabilise (their d=0 matches fault-free): %v", rep.Mismatched)
	}
	if got := rep.Faulty.States[0].(int); got != 4 {
		t.Errorf("dead centre state %d, want its frozen initial estimate k+1 = 4", got)
	}
}

// TestHaltingMachinesUnderFaults: the harness also covers halting
// algorithms — a paused node's round counter freezes while its frontier
// drains, and the run still converges to the synchronous outputs because
// the monotone gossip re-sends its current maximum every round. The star
// is degree-skewed, so the comparison is not vacuous: a leaf's fault-free
// answer (the centre's degree) differs from its own initial estimate and
// must survive duplicated deliveries and paused nodes.
func TestHaltingMachinesUnderFaults(t *testing.T) {
	g := graph.Star(6)
	m := algorithms.MaxDegreeWithin(g.MaxDegree(), 8)
	rep, err := Check(m, port.Canonical(g), schedule.RoundRobin(),
		instantiate(t, "dup:0.3,%d,120+pause:2,%d,120", 7), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stabilised() {
		t.Errorf("halting gossip did not reach synchronous outputs: %s", rep)
	}
	// Guard against vacuity: the fault-free leaf output must depend on
	// messages, not on the leaf's own initial state.
	if out := string(rep.Reference.Output[1]); out != "6" {
		t.Fatalf("leaf reference output %q, want the centre's degree \"6\"", out)
	}
}

// TestReportString smoke-tests the walkthrough formatting.
func TestReportString(t *testing.T) {
	g := graph.Cycle(5)
	rep, err := Check(algorithms.MaxConsensus(g.MaxDegree()), port.Canonical(g),
		schedule.Synchronous(), instantiate(t, "drop:0.5,%d,60", 3), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if s == "" || rep.Reference == nil || rep.Faulty == nil {
		t.Fatalf("empty report: %q", s)
	}
}

// dropSensitive is a deliberately non-stabilising workload: each node
// counts the non-m0 messages it receives over three firings and halts
// with the count. A total-omission plan starves every inbox, so the
// faulty outputs diverge from the fault-free ones — the scenario the
// divergence context exists for.
func dropSensitive(delta int) machine.Machine {
	type st struct {
		rounds int
		count  int
		done   bool
	}
	return &machine.Func{
		MachineName:  "drop-sensitive",
		MachineClass: machine.ClassMV,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return machine.Output(fmt.Sprint(x.count)), x.done
		},
		SendFunc: func(s machine.State, p int) machine.Message { return "x" },
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			for _, m := range inbox {
				if m != machine.NoMessage {
					x.count++
				}
			}
			x.rounds++
			x.done = x.rounds >= 3
			return x
		},
	}
}

// TestCheckWithBisect: a failed check run with Bisect names the exact
// first off-trajectory (step, node). Under total omission every node's
// first firing consumes only m0, so the damage enters at step 1, node 0 —
// and a check that stabilises reports no divergence point at all.
func TestCheckWithBisect(t *testing.T) {
	g := graph.Cycle(5)
	rep, err := CheckWith(dropSensitive(g.MaxDegree()), port.Canonical(g),
		schedule.Synchronous(), instantiate(t, "drop:1,%d,60", 9),
		CheckOptions{MaxSteps: 100_000, Bisect: true, BisectEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stabilised() {
		t.Fatal("total omission should break the drop-sensitive workload")
	}
	div := rep.FirstDivergence
	if div == nil {
		t.Fatal("failed bisecting check has no FirstDivergence")
	}
	if div.Step != 1 || div.Node != 0 {
		t.Fatalf("first divergence at (step %d, node %d), want (1, 0): %v", div.Step, div.Node, div)
	}
	if div.Ref == div.Got {
		t.Fatalf("divergence rendered identically: %v", div)
	}
	if !strings.Contains(rep.String(), "first divergence") {
		t.Fatalf("report does not surface the divergence: %s", rep)
	}

	// A stabilising check under the same option reports nothing: max
	// consensus washes omission out.
	rep, err = CheckWith(algorithms.MaxConsensus(g.MaxDegree()), port.Canonical(g),
		schedule.Synchronous(), instantiate(t, "drop:0.5,%d,60", 3),
		CheckOptions{MaxSteps: 100_000, Bisect: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stabilised() {
		t.Fatalf("max consensus failed to stabilise: %s", rep)
	}
	if rep.FirstDivergence != nil {
		t.Fatalf("stabilised check reports a divergence: %v", rep.FirstDivergence)
	}
}

// TestCheckWithDivergenceContext: a failed check reports per-node
// divergence context, and the attached journal ends with one diverge
// record per mismatched node behind the faulty run's own events.
func TestCheckWithDivergenceContext(t *testing.T) {
	g := graph.Cycle(5)
	var collect obs.Collect
	rep, err := CheckWith(dropSensitive(g.MaxDegree()), port.Canonical(g),
		schedule.Synchronous(), instantiate(t, "drop:1,%d,60", 9),
		CheckOptions{MaxSteps: 100_000, Obs: &obs.Obs{Sink: &collect}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stabilised() {
		t.Fatal("total omission should break the drop-sensitive workload")
	}
	if len(rep.Divergences) != len(rep.Mismatched) {
		t.Fatalf("Divergences has %d entries for %d mismatches", len(rep.Divergences), len(rep.Mismatched))
	}
	for i, d := range rep.Divergences {
		if d.Node != rep.Mismatched[i] {
			t.Errorf("Divergences[%d].Node = %d, want %d", i, d.Node, rep.Mismatched[i])
		}
		if d.Ref == d.Got {
			t.Errorf("node %d: divergence rendered identically (%q)", d.Node, d.Ref)
		}
	}
	var tail []obs.Event
	for _, e := range collect.Events {
		if e.Kind == obs.KindDiverge {
			tail = append(tail, e)
		}
	}
	if len(tail) != len(rep.Mismatched) {
		t.Fatalf("journal has %d diverge records, want %d", len(tail), len(rep.Mismatched))
	}
	for i, e := range tail {
		if int(e.Node) != rep.Mismatched[i] || e.Arg != int64(i) {
			t.Errorf("diverge record %d = %+v, want node %d arg %d", i, e, rep.Mismatched[i], i)
		}
	}
	if n := len(collect.Events); collect.Events[n-1].Kind != obs.KindDiverge {
		t.Error("diverge records are not the journal's tail")
	}

	// The drop events of the faulty run share the stream.
	drops := 0
	for _, e := range collect.Events {
		if e.Kind == obs.KindDrop {
			drops++
		}
	}
	if int64(drops) != rep.Faulty.Drops {
		t.Errorf("journal has %d drop records, Result says %d", drops, rep.Faulty.Drops)
	}
}
