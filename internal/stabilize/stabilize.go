// Package stabilize is the self-stabilisation harness: it runs an
// algorithm to fixpoint (or halt) under a fault plan and checks the
// stabilised configuration against the fault-free synchronous run.
//
// The property it operationalises is Dijkstra's: a system is
// self-stabilising when, after the transient faults cease, every execution
// converges to a legitimate configuration. Here "legitimate" is made
// concrete by the engine itself — the configuration the fault-free
// synchronous semantics of Section 1.3 stabilises to — and "faults" are a
// fault.Plan: seeded message omission (delivered as m0), duplication,
// Byzantine payload corruption, link partitions with healing, sender-side
// retransmission and node crash/recovery layered on an asynchronous
// schedule. Both runs use
// the async executor (under schedule.Synchronous it is bit-identical to
// the sequential one, so the reference really is the synchronous run), and
// both terminate either by halting or by the executor's global fixpoint
// detection, which for the faulty run only fires once the plan is settled.
//
// Nodes that are dead at the end (crash-stopped, never recovered) are
// reported separately rather than compared: a permanently dead node is
// outside any self-stabilisation claim, and its neighbours legitimately
// stabilise to the partitioned network's fixpoint, not the fault-free one.
package stabilize

import (
	"fmt"

	"weakmodels/internal/engine"
	"weakmodels/internal/fault"
	"weakmodels/internal/machine"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
	"weakmodels/internal/replay"
	"weakmodels/internal/schedule"
)

// Report is the outcome of one stabilisation check.
type Report struct {
	// Reference is the fault-free synchronous run.
	Reference *engine.Result
	// Faulty is the run under the schedule and fault plan.
	Faulty *engine.Result
	// Dead lists the nodes that ended the faulty run crashed; they are
	// excluded from the comparison.
	Dead []int
	// Mismatched lists the live nodes whose stabilised state (or halting
	// output) differs from the reference.
	Mismatched []int
	// Divergences carries the comparison context of each mismatched node,
	// parallel to Mismatched.
	Divergences []Divergence
	// FirstDivergence, set by a failed check run with CheckOptions.Bisect,
	// names the first (step, node) at which the faulty run left the
	// fault-free synchronous trajectory — where the damage entered, as
	// opposed to Divergences, which shows where it ended up. Nil when the
	// check stabilised, when bisection was off, or when the end-state
	// mismatch came only from transient trajectory deviations (see
	// replay.BisectDivergence).
	FirstDivergence *replay.StepDivergence
}

// Divergence is one node's failed comparison: what the fault-free
// reference stabilised to and what the faulty run stabilised to instead.
type Divergence struct {
	Node int
	Ref  string // reference state (rendered)
	Got  string // faulty state (rendered)
}

// CheckOptions parameterises CheckWith beyond Check's positional form.
type CheckOptions struct {
	// MaxSteps bounds the faulty run's step budget (0 = engine default).
	MaxSteps int
	// Obs attaches an observability hook to the faulty run: its journal
	// records the run's events as usual, and the harness appends one
	// diverge record per mismatched node after the comparison, carrying
	// the node id (Node) and its index in Report.Mismatched (Arg) — the
	// divergence context of a failed stabilisation, greppable in the same
	// JSONL stream as the faults that caused it.
	Obs *obs.Obs
	// Bisect records the faulty run through the flight recorder and, when
	// the check fails, bisects the recording to the first (step, node) off
	// the fault-free trajectory, reported in Report.FirstDivergence.
	Bisect bool
	// BisectEvery is the recording's snapshot cadence in steps (0 = 64).
	BisectEvery int
}

// Stabilised reports whether every live node reached the fault-free
// synchronous configuration.
func (r *Report) Stabilised() bool { return len(r.Mismatched) == 0 }

// String summarises the report for logs and walkthroughs.
func (r *Report) String() string {
	s := fmt.Sprintf(
		"stabilised=%v (ref %d rounds, faulty %d steps, fixpoint=%v; drops=%d dups=%d corruptions=%d crashes=%d recoveries=%d retransmits=%d healed=%d; dead=%d mismatched=%d)",
		r.Stabilised(), r.Reference.Rounds, r.Faulty.Rounds, r.Faulty.Fixpoint,
		r.Faulty.Drops, r.Faulty.Dups, r.Faulty.Corruptions,
		r.Faulty.Crashes, r.Faulty.Recoveries,
		r.Faulty.Retransmits, r.Faulty.Healed,
		len(r.Dead), len(r.Mismatched))
	if r.FirstDivergence != nil {
		s += fmt.Sprintf(" first divergence: %v", r.FirstDivergence)
	}
	return s
}

// Check runs m on p twice — fault-free under the synchronous schedule, and
// under (sched, plan) — and compares the stabilised configurations.
// maxSteps bounds the faulty run's step budget (0 uses the engine default,
// scaled by the schedule's dilation); the reference always runs under the
// default round budget. sched may be nil for the synchronous schedule;
// sched and plan must be fresh instances (both are stateful within a run).
func Check(m machine.Machine, p *port.Numbering, sched schedule.Schedule, plan fault.Plan, maxSteps int) (*Report, error) {
	return CheckWith(m, p, sched, plan, CheckOptions{MaxSteps: maxSteps})
}

// CheckWith is Check with an options struct: opts.Obs rides along on the
// faulty run (journal, metrics) and receives a trailing diverge record per
// mismatched node, so a failed check's journal ends with exactly what
// failed to stabilise.
func CheckWith(m machine.Machine, p *port.Numbering, sched schedule.Schedule, plan fault.Plan, opts CheckOptions) (*Report, error) {
	ref, err := engine.Run(m, p, engine.Options{
		Executor: engine.ExecutorAsync,
		Schedule: schedule.Synchronous(),
		// The reference trace is the trajectory bisection checks against.
		RecordTrace: opts.Bisect,
	})
	if err != nil {
		return nil, fmt.Errorf("stabilize: fault-free reference run: %w", err)
	}
	fopts := engine.Options{
		Executor:  engine.ExecutorAsync,
		Schedule:  sched,
		Fault:     plan,
		MaxRounds: opts.MaxSteps,
		Obs:       opts.Obs,
	}
	var recorder *replay.Recorder
	if opts.Bisect {
		every := opts.BisectEvery
		if every <= 0 {
			every = 64
		}
		// In-memory recording: live snapshots, no gob requirement on states.
		if fopts, recorder, err = replay.New(fopts, every, nil); err != nil {
			return nil, fmt.Errorf("stabilize: flight recorder: %w", err)
		}
	}
	faulty, err := engine.Run(m, p, fopts)
	if err != nil {
		return nil, fmt.Errorf("stabilize: faulty run: %w", err)
	}
	rep := &Report{Reference: ref, Faulty: faulty}
	for v := range ref.States {
		if faulty.Alive != nil && !faulty.Alive[v] {
			rep.Dead = append(rep.Dead, v)
			continue
		}
		if stateMatches(m, ref, faulty, v) {
			continue
		}
		rep.Mismatched = append(rep.Mismatched, v)
		rep.Divergences = append(rep.Divergences, Divergence{
			Node: v,
			Ref:  fmt.Sprint(ref.States[v]),
			Got:  fmt.Sprint(faulty.States[v]),
		})
	}
	if recorder != nil && len(rep.Mismatched) > 0 {
		if err := recorder.Finish(faulty); err != nil {
			return nil, fmt.Errorf("stabilize: seal recording: %w", err)
		}
		div, err := replay.BisectDivergence(m, p, recorder.Recording(), ref.Trace)
		if err != nil {
			return nil, fmt.Errorf("stabilize: bisect divergence: %w", err)
		}
		rep.FirstDivergence = div
	}
	if opts.Obs != nil && opts.Obs.Sink != nil && len(rep.Mismatched) > 0 {
		// The engine flushed its own records when the faulty run returned;
		// the harness appends the comparison verdict behind them.
		for i, v := range rep.Mismatched {
			opts.Obs.Sink.Event(obs.Event{
				Step: int64(faulty.Rounds), Kind: obs.KindDiverge,
				Node: int32(v), Link: -1, Arg: int64(i),
			})
		}
		if err := opts.Obs.Sink.Flush(); err != nil {
			return nil, fmt.Errorf("stabilize: journal flush: %w", err)
		}
	}
	return rep, nil
}

// stateMatches compares node v across the two runs: equal stabilised
// states always match; halted nodes may also match on output alone, since
// a faulty execution can halt with different internal bookkeeping (round
// counters, caches) yet the same verdict.
func stateMatches(m machine.Machine, ref, faulty *engine.Result, v int) bool {
	if machine.StatesEqual(m, ref.States[v], faulty.States[v]) {
		return true
	}
	refOut, refHalted := m.Halted(ref.States[v])
	gotOut, gotHalted := m.Halted(faulty.States[v])
	return refHalted && gotHalted && refOut == gotOut
}
