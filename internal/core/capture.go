package core

import "weakmodels/internal/kripke"

// Capture is one row of Theorem 2: a constant-time problem class, the
// modal logic capturing it, and the Kripke-model family it is captured on.
type Capture struct {
	Class ClassID
	// Logic is ML, GML, MML or GMML.
	Logic string
	// Variant is the model family K_{a,b}.
	Variant kripke.Variant
	// Consistent restricts to consistent port numberings (class VVc only).
	Consistent bool
}

// CaptureTable returns the seven rows of Theorem 2 (a)–(g).
func CaptureTable() []Capture {
	return []Capture{
		{Class: VVc, Logic: "MML", Variant: kripke.VariantPP, Consistent: true},
		{Class: VV, Logic: "MML", Variant: kripke.VariantPP},
		{Class: MV, Logic: "GMML", Variant: kripke.VariantMP},
		{Class: SV, Logic: "MML", Variant: kripke.VariantMP},
		{Class: VB, Logic: "MML", Variant: kripke.VariantPM},
		{Class: MB, Logic: "GML", Variant: kripke.VariantMM},
		{Class: SB, Logic: "ML", Variant: kripke.VariantMM},
	}
}
