package core

import (
	"fmt"
	"math/rand"

	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/problems"
)

// Suite is a collection of (graph, numbering) pairs to check an algorithm
// against.
type Suite struct {
	// Graphs to run on.
	Graphs []*graph.Graph
	// RandomTrials is the number of random numberings per graph (default 5).
	RandomTrials int
	// Seed feeds the numbering sampler.
	Seed int64
	// MaxRounds bounds each run (default engine.DefaultMaxRounds).
	MaxRounds int
}

// DefaultSuite returns the standard verification suite: a spread of
// bounded-degree families including the paper's witness graphs.
func DefaultSuite() Suite {
	witness, _, _ := graph.Theorem13Witness()
	return Suite{
		Graphs: []*graph.Graph{
			graph.Path(2), graph.Path(5),
			graph.Cycle(3), graph.Cycle(6),
			graph.Star(2), graph.Star(4),
			graph.Complete(4),
			graph.Figure1Graph(),
			graph.Petersen(),
			graph.Grid(3, 3),
			graph.Caterpillar(3, 1),
			graph.NoOneFactorCubic(),
			witness,
			graph.DisjointUnion(graph.Cycle(3), graph.Star(3)),
		},
		RandomTrials: 5,
		Seed:         1,
	}
}

// Solves verifies that algorithm build(Δ) solves problem under the class's
// admission rule over the suite: for VVc only consistent numberings are
// drawn; for all other classes arbitrary numberings are drawn. It returns
// nil when every run produced a valid solution.
//
// This is the executable counterpart of "Π ∈ C": it cannot prove membership
// (that needs the paper's proofs) but refutes non-membership claims and
// regression-checks every implemented algorithm.
func Solves(build func(delta int) machine.Machine, class ClassID, problem problems.Problem, suite Suite) error {
	mc, consistency := class.MachineClass()
	rng := rand.New(rand.NewSource(suite.Seed))
	trials := suite.RandomTrials
	if trials <= 0 {
		trials = 5
	}
	for _, g := range suite.Graphs {
		delta := g.MaxDegree()
		if delta == 0 {
			delta = 1
		}
		m := build(delta)
		if !mc.AtLeastAsStrongAs(m.Class()) {
			return fmt.Errorf("core: machine %q has class %v, not admissible in %v",
				m.Name(), m.Class(), class)
		}
		numberings := []*port.Numbering{port.Canonical(g)}
		for t := 0; t < trials; t++ {
			if consistency {
				numberings = append(numberings, port.RandomConsistent(g, rng))
			} else {
				numberings = append(numberings, port.Random(g, rng))
			}
		}
		for i, p := range numberings {
			res, err := engine.Run(m, p, engine.Options{MaxRounds: suite.MaxRounds})
			if err != nil {
				return fmt.Errorf("core: %q on %v (numbering %d): %w", m.Name(), g, i, err)
			}
			if err := problem.Validate(g, res.Output); err != nil {
				return fmt.Errorf("core: %q on %v (numbering %d): %w", m.Name(), g, i, err)
			}
		}
	}
	return nil
}
