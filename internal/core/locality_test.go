package core

import (
	"math/rand"
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/simulate"
)

// TestConstantTimeLocality backs the constant-time half of the main
// theorem (equation (2)): every algorithm used in the classification is a
// *local* algorithm — its round count depends only on Δ, not on n. The
// paper stresses this as its main difference from prior work (Table 2:
// "the simulation overhead is bounded by a constant"). We run each
// algorithm on growing graphs of fixed Δ and assert the round count never
// moves.
func TestConstantTimeLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	cases := []struct {
		name  string
		build func(delta int) machine.Machine
		// family produces graphs of fixed max degree and growing n.
		family func(n int) *graph.Graph
		sizes  []int
	}{
		{
			name:   "leaf-elect/stars",
			build:  algorithms.LeafElect,
			family: func(n int) *graph.Graph { return graph.Star(3) }, // Δ fixed by family
			sizes:  []int{1, 2, 3},
		},
		{
			name:   "odd-odd/cycles",
			build:  algorithms.OddOdd,
			family: graph.Cycle,
			sizes:  []int{4, 16, 64, 256},
		},
		{
			name:   "even-degree/paths",
			build:  algorithms.EvenDegree,
			family: graph.Path,
			sizes:  []int{4, 64, 512},
		},
		{
			name:   "local-type-max/cycles",
			build:  algorithms.LocalTypeMax,
			family: graph.Cycle,
			sizes:  []int{4, 32, 128},
		},
		{
			name: "thm8-wrapped-odd-odd/cycles",
			build: func(delta int) machine.Machine {
				m, err := simulate.MultisetFromVector(oddOddVector(delta))
				if err != nil {
					panic(err)
				}
				return m
			},
			family: graph.Cycle,
			sizes:  []int{4, 32, 128},
		},
		{
			name: "thm4-wrapped-odd-odd/cycles",
			build: func(delta int) machine.Machine {
				m, err := simulate.SetFromMultiset(algorithms.OddOdd(delta))
				if err != nil {
					panic(err)
				}
				return m
			},
			family: graph.Cycle,
			sizes:  []int{4, 32, 128},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rounds := -1
			for _, n := range tc.sizes {
				g := tc.family(n)
				m := tc.build(g.MaxDegree())
				var p *port.Numbering
				if tc.name == "local-type-max/cycles" {
					p = port.RandomConsistent(g, rng)
				} else {
					p = port.Random(g, rng)
				}
				res, err := engine.Run(m, p, engine.Options{})
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if rounds == -1 {
					rounds = res.Rounds
				} else if res.Rounds != rounds {
					t.Fatalf("round count moved with n: %d at first size, %d at n=%d — not a local algorithm",
						rounds, res.Rounds, n)
				}
			}
			t.Logf("constant %d rounds across sizes %v", rounds, tc.sizes)
		})
	}
}

// TestVertexCoverRoundsVsDelta records the empirical round envelope of the
// MB vertex-cover algorithm across Δ at fixed n — the substitution's
// counterpart of the Åstrand–Suomela O(Δ) bound (DESIGN.md §6).
func TestVertexCoverRoundsVsDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for _, delta := range []int{2, 3, 4, 5} {
		worst := 0
		for trial := 0; trial < 5; trial++ {
			g, err := graph.RandomRegular(12, delta, rng)
			if err != nil {
				t.Fatal(err)
			}
			res, err := engine.Run(algorithms.VertexCover2(delta), port.Random(g, rng), engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds > worst {
				worst = res.Rounds
			}
		}
		if worst > 4*delta {
			t.Errorf("Δ=%d: worst %d rounds exceeds empirical envelope 4Δ", delta, worst)
		}
		t.Logf("Δ=%d: worst-case rounds over trials = %d", delta, worst)
	}
}
