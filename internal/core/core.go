// Package core is the paper's primary contribution as an executable API:
// the seven problem classes VVc, VV, MV, SV, VB, MB, SB (Section 1.6), the
// proved linear order SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc (Section 5), a
// solvability harness that checks an algorithm against a problem over
// (graph × port-numbering) suites under class-enforced semantics, and
// machine-checkable separation witnesses following Corollary 3.
package core

import (
	"fmt"

	"weakmodels/internal/machine"
)

// ClassID names one of the seven problem classes of Section 1.6.
type ClassID int

// The seven classes, ordered by the linear order of Figure 5b (weakest
// first). The numeric order of the constants IS the proved stratum order.
const (
	SB ClassID = iota + 1
	MB
	VB
	SV
	MV
	VV
	VVc
)

// AllClasses lists the classes from weakest to strongest.
func AllClasses() []ClassID { return []ClassID{SB, MB, VB, SV, MV, VV, VVc} }

// String returns the paper's name for the class.
func (c ClassID) String() string {
	switch c {
	case SB:
		return "SB"
	case MB:
		return "MB"
	case VB:
		return "VB"
	case SV:
		return "SV"
	case MV:
		return "MV"
	case VV:
		return "VV"
	case VVc:
		return "VVc"
	default:
		return fmt.Sprintf("ClassID(%d)", int(c))
	}
}

// Stratum returns the index of the class in the proved linear order
// SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc: 0 for SB, 1 for MB = VB,
// 2 for SV = MV = VV, 3 for VVc. Classes with equal strata are equal as
// problem classes (Corollaries 7 and 10).
func (c ClassID) Stratum() int {
	switch c {
	case SB:
		return 0
	case MB, VB:
		return 1
	case SV, MV, VV:
		return 2
	case VVc:
		return 3
	default:
		panic(fmt.Sprintf("core: unknown class %v", c))
	}
}

// Contains reports whether class c contains class d as problem classes,
// per the proved linear order (c ⊇ d iff stratum(c) ≥ stratum(d)).
func (c ClassID) Contains(d ClassID) bool { return c.Stratum() >= d.Stratum() }

// EqualAsProblemClass reports whether c = d as problem classes.
func (c ClassID) EqualAsProblemClass(d ClassID) bool { return c.Stratum() == d.Stratum() }

// MachineClass returns the machine class underlying the problem class, and
// whether the class additionally assumes consistent port numberings.
func (c ClassID) MachineClass() (mc machine.Class, consistency bool) {
	switch c {
	case SB:
		return machine.ClassSB, false
	case MB:
		return machine.ClassMB, false
	case VB:
		return machine.ClassVB, false
	case SV:
		return machine.ClassSV, false
	case MV:
		return machine.ClassMV, false
	case VV:
		return machine.ClassVV, false
	case VVc:
		return machine.ClassVV, true
	default:
		panic(fmt.Sprintf("core: unknown class %v", c))
	}
}

// ClassOf returns the strongest problem-class identifier a machine's
// declared machine class certifies membership in (without the consistency
// promise): e.g. a Set∩Broadcast machine certifies SB.
func ClassOf(m machine.Machine) ClassID {
	switch m.Class() {
	case machine.ClassSB:
		return SB
	case machine.ClassMB:
		return MB
	case machine.ClassVB:
		return VB
	case machine.ClassSV:
		return SV
	case machine.ClassMV:
		return MV
	default:
		return VV
	}
}

// TrivialSubsets returns the containments of Figure 5a that follow directly
// from the definitions (before any theorem): each pair (weaker ⊆ stronger).
func TrivialSubsets() [][2]ClassID {
	return [][2]ClassID{
		{SB, MB}, {MB, MV}, {SB, SV}, {SV, MV},
		{MB, VB}, {VB, VV}, {MV, VV}, {VV, VVc},
	}
}
