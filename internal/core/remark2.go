package core

import (
	"fmt"

	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

// Remark 2 of the paper: the degree-oblivious variant SBo of SB — machines
// in Set ∩ Broadcast whose initial state is a constant — is entirely
// trivial: it can only distinguish isolated nodes from non-isolated nodes.
//
// The proof is a two-class invariant: with a constant z0, at every round
// all non-isolated nodes share one state (they all broadcast the same
// message and all receive exactly the singleton set of it) and all isolated
// nodes share another (they receive the empty set). VerifyRemark2 checks
// the invariant by executing an arbitrary SBo machine and asserting that
// the output function factors through "is isolated".
//
// §3.4 adds that with local inputs the classification is unchanged, and
// that below SB local inputs become necessary for non-trivial behaviour:
// an SBo machine *with inputs* escapes the two-class collapse. Both halves
// are demonstrated by the tests.

// VerifyRemark2 runs an SBo machine on graphs with isolated and
// non-isolated nodes and reports an error if its outputs distinguish
// anything finer than isolation — or if a degree-aware SB machine is passed
// (the claim is specifically about constant z0).
func VerifyRemark2(m machine.Machine, graphs []*graph.Graph) error {
	if !machine.DegreeOblivious(m) {
		return fmt.Errorf("core: %q is not degree-oblivious; Remark 2 does not apply", m.Name())
	}
	if m.Class() != machine.ClassSB {
		return fmt.Errorf("core: Remark 2 concerns Set∩Broadcast machines, got %v", m.Class())
	}
	for _, g := range graphs {
		if g.MaxDegree() > m.Delta() {
			continue
		}
		res, err := engine.Run(m, port.Canonical(g), engine.Options{})
		if err != nil {
			return fmt.Errorf("core: running %q on %v: %w", m.Name(), g, err)
		}
		var isoOut, conOut *machine.Output
		for v := 0; v < g.N(); v++ {
			out := res.Output[v]
			if g.Degree(v) == 0 {
				if isoOut == nil {
					isoOut = &out
				} else if *isoOut != out {
					return fmt.Errorf("core: SBo machine %q distinguishes isolated nodes on %v",
						m.Name(), g)
				}
			} else {
				if conOut == nil {
					conOut = &out
				} else if *conOut != out {
					return fmt.Errorf("core: SBo machine %q distinguishes non-isolated nodes %v (Remark 2 violated)",
						m.Name(), g)
				}
			}
		}
	}
	return nil
}

// Remark2Graphs is a suite mixing isolated and connected nodes of many
// degrees — if an SBo machine could see anything beyond isolation, it would
// show here.
func Remark2Graphs() []*graph.Graph {
	withIso := graph.DisjointUnion(graph.MustNew(2, nil), graph.Star(3))
	return []*graph.Graph{
		graph.Path(5),
		graph.Star(4),
		graph.Complete(4),
		graph.Petersen(),
		withIso,
		graph.DisjointUnion(withIso, graph.Cycle(6)),
	}
}

// NewObliviousProbe builds an SBo machine that tries hard to distinguish
// nodes: it runs the given number of rounds, hashing the received set into
// its state each round, and outputs the final state. Remark 2 predicts the
// output still factors through isolation.
func NewObliviousProbe(delta, rounds int) machine.Machine {
	type st struct {
		Acc   string
		Round int
		Done  bool
	}
	return &machine.ObliviousFunc{
		Func: machine.Func{
			MachineName:  fmt.Sprintf("oblivious-probe-%d", rounds),
			MachineClass: machine.ClassSB,
			MaxDeg:       delta,
			InitFunc:     func(int) machine.State { return st{Acc: "ε"} }, // constant z0
			HaltedFunc: func(s machine.State) (machine.Output, bool) {
				x := s.(st)
				return machine.Output(x.Acc), x.Done
			},
			SendFunc: func(s machine.State, _ int) machine.Message {
				return machine.Message(s.(st).Acc)
			},
			StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
				x := s.(st)
				x.Acc = fmt.Sprintf("(%s|%v)", x.Acc, inbox)
				x.Round++
				x.Done = x.Round >= rounds
				return x
			},
		},
	}
}

// NewLabelledParity is the §3.4 demonstration: an SBo-style machine *with
// local inputs* that solves a non-trivial labelled problem — output 1 iff
// an odd number of neighbours carry label "a". Degree-oblivious in z0's
// graph part, yet non-trivial thanks to f(u): exactly the paper's point
// that below SB, local inputs add power.
func NewLabelledParity(delta int) machine.InputAware {
	type st struct {
		Label string
		Done  bool
		Out   machine.Output
	}
	return &machine.InputFunc{
		Func: machine.Func{
			MachineName:  "labelled-parity",
			MachineClass: machine.ClassMB,
			MaxDeg:       delta,
			InitFunc:     func(int) machine.State { return st{} },
			HaltedFunc: func(s machine.State) (machine.Output, bool) {
				x := s.(st)
				return x.Out, x.Done
			},
			SendFunc: func(s machine.State, _ int) machine.Message {
				return machine.Message(s.(st).Label)
			},
			StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
				x := s.(st)
				count := 0
				for _, m := range inbox {
					if m == "a" {
						count++
					}
				}
				out := machine.Output("0")
				if count%2 == 1 {
					out = "1"
				}
				return st{Label: x.Label, Done: true, Out: out}
			},
		},
		InitInputFunc: func(_ int, input string) machine.State {
			return st{Label: input}
		},
	}
}
