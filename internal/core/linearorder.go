package core

import (
	"fmt"
	"strings"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/machine"
	"weakmodels/internal/problems"
	"weakmodels/internal/simulate"
	"weakmodels/internal/term"
)

// Collapse is a machine-checkable instance of one of the equality theorems:
// a problem solvable in the stronger class is solved in the weaker class by
// the corresponding simulation wrapper.
type Collapse struct {
	// Name identifies the theorem, e.g. "Theorem 4 (MV = SV)".
	Name string
	// Strong and Weak are the two classes proved equal.
	Strong, Weak ClassID
	// Problem and the wrapped machine builder demonstrating the collapse.
	Problem problems.Problem
	Build   func(delta int) machine.Machine
}

// Verify checks that the wrapped (weak-class) machine still solves the
// problem over the suite.
func (c *Collapse) Verify(suite Suite) error {
	if err := Solves(c.Build, c.Weak, c.Problem, suite); err != nil {
		return fmt.Errorf("%s: %w", c.Name, err)
	}
	return nil
}

// oddOddVector is the OddOdd algorithm deliberately implemented as a full
// Vector machine (it reads its inbox as a vector), used as Theorem 8 input.
func oddOddVector(delta int) machine.Machine {
	type st struct {
		Deg  int
		Done bool
		Out  machine.Output
	}
	return &machine.Func{
		MachineName:  "odd-odd-vector",
		MachineClass: machine.ClassVV,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			// A genuinely port-dependent message: (parity, out-port).
			return machine.EncodeTerm(term.Tuple(
				term.Int(int64(s.(st).Deg%2)), term.Int(int64(p))))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			odd := 0
			for _, m := range inbox {
				t, err := term.Parse(string(m))
				if err != nil {
					panic(err)
				}
				if t.At(0).IntVal() == 1 {
					odd++
				}
			}
			out := machine.Output("0")
			if odd%2 == 1 {
				out = "1"
			}
			return st{Deg: x.Deg, Done: true, Out: out}
		},
	}
}

// oddOddBroadcastVector is OddOdd as a VB machine (broadcast send, vector
// receive), used as Theorem 9 input.
func oddOddBroadcastVector(delta int) machine.Machine {
	type st struct {
		Deg  int
		Done bool
		Out  machine.Output
	}
	return &machine.Func{
		MachineName:  "odd-odd-vb",
		MachineClass: machine.ClassVB,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, _ int) machine.Message {
			return machine.EncodeTerm(term.Int(int64(s.(st).Deg % 2)))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			odd := 0
			for i, m := range inbox {
				_ = i // vector position available; parity count ignores it
				if m == machine.EncodeTerm(term.Int(1)) {
					odd++
				}
			}
			out := machine.Output("0")
			if odd%2 == 1 {
				out = "1"
			}
			return st{Deg: x.Deg, Done: true, Out: out}
		},
	}
}

// AllCollapses returns the machine-checkable collapse evidence for the
// equalities MB = VB and SV = MV = VV.
func AllCollapses() []*Collapse {
	return []*Collapse{
		{
			Name:    "Theorem 8 (MV = VV)",
			Strong:  VV,
			Weak:    MV,
			Problem: problems.OddOdd{},
			Build: func(delta int) machine.Machine {
				m, err := simulate.MultisetFromVector(oddOddVector(delta))
				if err != nil {
					panic(err)
				}
				return m
			},
		},
		{
			Name:    "Theorem 9 (MB = VB)",
			Strong:  VB,
			Weak:    MB,
			Problem: problems.OddOdd{},
			Build: func(delta int) machine.Machine {
				m, err := simulate.MultisetFromVector(oddOddBroadcastVector(delta))
				if err != nil {
					panic(err)
				}
				return m
			},
		},
		{
			Name:    "Theorem 4 (SV = MV)",
			Strong:  MV,
			Weak:    SV,
			Problem: problems.VertexCover{Ratio: 2},
			Build: func(delta int) machine.Machine {
				m, err := simulate.SetFromMultiset(algorithms.VertexCover2(delta))
				if err != nil {
					panic(err)
				}
				return m
			},
		},
		{
			Name:    "Theorems 8+4 composed (SV = VV)",
			Strong:  VV,
			Weak:    SV,
			Problem: problems.OddOdd{},
			Build: func(delta int) machine.Machine {
				mv, err := simulate.MultisetFromVector(oddOddVector(delta))
				if err != nil {
					panic(err)
				}
				sv, err := simulate.SetFromMultiset(mv)
				if err != nil {
					panic(err)
				}
				return sv
			},
		},
	}
}

// Report is the machine-checked derivation of the linear order (Figure 5b).
type Report struct {
	// Strata lists the four distinct problem classes, weakest first.
	Strata [][]ClassID
	// Collapses and Separations carry the verified evidence.
	Collapses   []*Collapse
	Separations []*Separation
}

// Derive verifies every collapse and separation over the suite and returns
// the assembled linear order. This is the end-to-end reproduction of the
// paper's main result.
func Derive(suite Suite) (*Report, error) {
	collapses := AllCollapses()
	for _, c := range collapses {
		if err := c.Verify(suite); err != nil {
			return nil, err
		}
	}
	separations := AllSeparations()
	for _, s := range separations {
		if err := s.Verify(suite); err != nil {
			return nil, err
		}
	}
	return &Report{
		Strata: [][]ClassID{
			{SB},
			{MB, VB},
			{SV, MV, VV},
			{VVc},
		},
		Collapses:   collapses,
		Separations: separations,
	}, nil
}

// String renders the report as the paper's equation (1).
func (r *Report) String() string {
	var b strings.Builder
	parts := make([]string, len(r.Strata))
	for i, stratum := range r.Strata {
		names := make([]string, len(stratum))
		for j, c := range stratum {
			names[j] = c.String()
		}
		parts[i] = strings.Join(names, " = ")
	}
	b.WriteString(strings.Join(parts, " ⊊ "))
	return b.String()
}
