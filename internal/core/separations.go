package core

import (
	"fmt"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/bisim"
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/problems"
)

// Separation is a machine-checkable separation Π ∈ InClass \ NotInClass,
// following the structure of Corollary 3:
//
//  1. an algorithm of class InClass solves Π over the verification suite
//     (the positive half);
//  2. on the witness graph there is a port numbering under which all nodes
//     of X are bisimilar in the Kripke variant matching NotInClass, while
//     every valid solution must split X (the negative half: any NotInClass
//     algorithm corresponds to a formula, bisimilar nodes satisfy the same
//     formulas, so no NotInClass algorithm can produce a valid solution).
type Separation struct {
	// Name identifies the theorem, e.g. "Theorem 11".
	Name string
	// Problem is Π.
	Problem problems.Problem
	// InClass and Build give the positive half (Build may be nil for
	// pure impossibility results such as MIS ∉ VVc).
	InClass ClassID
	Build   func(delta int) machine.Machine
	// NotInClass gives the negative half.
	NotInClass ClassID
	// WitnessGraph and WitnessNodes are G and X of Corollary 3.
	WitnessGraph *graph.Graph
	WitnessNodes []int
	// Numbering produces the symmetric port numbering of the argument.
	Numbering func() (*port.Numbering, error)
	// Variant is the Kripke translation matching NotInClass.
	Variant kripke.Variant
	// Graded selects graded bisimulation (needed iff the NotInClass logic
	// counts — classes MV, MB).
	Graded bool
	// MustSplit verifies that every valid solution separates X.
	MustSplit func(g *graph.Graph, x []int) error
}

// Verify machine-checks both halves of the separation over the suite.
func (s *Separation) Verify(suite Suite) error {
	if s.Build != nil {
		if err := Solves(s.Build, s.InClass, s.Problem, suite); err != nil {
			return fmt.Errorf("%s positive half: %w", s.Name, err)
		}
	}
	p, err := s.Numbering()
	if err != nil {
		return fmt.Errorf("%s: building witness numbering: %w", s.Name, err)
	}
	model := kripke.FromPorts(p, s.Variant)
	if !bisim.AllBisimilar(model, s.WitnessNodes, bisim.Options{Graded: s.Graded}) {
		return fmt.Errorf("%s: witness nodes %v not bisimilar in %v",
			s.Name, s.WitnessNodes, s.Variant)
	}
	if err := s.MustSplit(s.WitnessGraph, s.WitnessNodes); err != nil {
		return fmt.Errorf("%s split obligation: %w", s.Name, err)
	}
	return nil
}

// Theorem11 returns the separation LeafElection ∈ SV(1) \ VB.
func Theorem11() *Separation {
	g := graph.Star(4)
	leaves := []int{1, 2, 3, 4}
	return &Separation{
		Name:         "Theorem 11 (SV ⊄ VB)",
		Problem:      problems.LeafElection{},
		InClass:      SV,
		Build:        algorithms.LeafElect,
		NotInClass:   VB,
		WitnessGraph: g,
		WitnessNodes: leaves,
		Numbering:    func() (*port.Numbering, error) { return port.Canonical(g), nil },
		Variant:      kripke.VariantPM,
		MustSplit: func(g *graph.Graph, x []int) error {
			// Any S constant on the leaves is invalid: the centre's output
			// is 0 or 1 and in all four combinations the number of elected
			// leaves is 0 or ≥ 2.
			problem := problems.LeafElection{}
			for _, leafVal := range []machine.Output{"0", "1"} {
				for _, centreVal := range []machine.Output{"0", "1"} {
					out := make([]machine.Output, g.N())
					for v := range out {
						out[v] = leafVal
					}
					out[0] = centreVal
					if problem.Validate(g, out) == nil {
						return fmt.Errorf("constant-on-leaves output %q/%q is valid", centreVal, leafVal)
					}
				}
			}
			return nil
		},
	}
}

// Theorem13 returns the separation OddOdd ∈ MB(1) \ SB.
func Theorem13() *Separation {
	g, u, w := graph.Theorem13Witness()
	return &Separation{
		Name:         "Theorem 13 (MB ⊄ SB)",
		Problem:      problems.OddOdd{},
		InClass:      MB,
		Build:        algorithms.OddOdd,
		NotInClass:   SB,
		WitnessGraph: g,
		WitnessNodes: []int{u, w},
		Numbering:    func() (*port.Numbering, error) { return port.Canonical(g), nil },
		Variant:      kripke.VariantMM,
		Graded:       false, // SB corresponds to ungraded ML on K₋,₋
		MustSplit: func(g *graph.Graph, x []int) error {
			// OddOdd has a unique solution; it must differ on u and w.
			want := oddOddSolution(g)
			if want[x[0]] == want[x[1]] {
				return fmt.Errorf("unique solution agrees on witness nodes")
			}
			return nil
		},
	}
}

// Theorem17 returns the separation SymmetryBreak ∈ VVc(1) \ VV.
func Theorem17() *Separation {
	g := graph.NoOneFactorCubic()
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	return &Separation{
		Name:         "Theorem 17 (VVc ⊄ VV)",
		Problem:      problems.SymmetryBreak{},
		InClass:      VVc,
		Build:        algorithms.LocalTypeMax,
		NotInClass:   VV,
		WitnessGraph: g,
		WitnessNodes: all,
		Numbering: func() (*port.Numbering, error) {
			perms, err := graph.DoubleCoverFactorPermutations(g)
			if err != nil {
				return nil, err
			}
			return port.FromPermutationFactors(g, perms) // Lemma 15
		},
		Variant: kripke.VariantPP,
		MustSplit: func(g *graph.Graph, x []int) error {
			problem := problems.SymmetryBreak{}
			for _, val := range []machine.Output{"0", "1"} {
				out := make([]machine.Output, g.N())
				for v := range out {
					out[v] = val
				}
				if problem.Validate(g, out) == nil {
					return fmt.Errorf("constant output %q is valid on 𝒢-witness", val)
				}
			}
			return nil
		},
	}
}

// MISNotInVVc returns the impossibility MIS ∉ VVc (Section 3.1): on a cycle
// with the symmetric consistent numbering all nodes are bisimilar in K₊,₊,
// yet no valid MIS is constant.
func MISNotInVVc() *Separation {
	const n = 4
	g := graph.Cycle(n)
	all := []int{0, 1, 2, 3}
	return &Separation{
		Name:         "Section 3.1 (MIS ∉ VVc)",
		Problem:      problems.MaximalIndependentSet{},
		InClass:      0, // no positive half inside the weak models
		Build:        nil,
		NotInClass:   VVc,
		WitnessGraph: g,
		WitnessNodes: all,
		Numbering: func() (*port.Numbering, error) {
			p := port.SymmetricCycle(n)
			if !p.IsConsistent() {
				return nil, fmt.Errorf("symmetric cycle numbering must be consistent")
			}
			return p, nil
		},
		Variant: kripke.VariantPP,
		MustSplit: func(g *graph.Graph, x []int) error {
			problem := problems.MaximalIndependentSet{}
			for _, val := range []machine.Output{"0", "1"} {
				out := make([]machine.Output, g.N())
				for v := range out {
					out[v] = val
				}
				if problem.Validate(g, out) == nil {
					return fmt.Errorf("constant MIS output %q valid on C%d", val, g.N())
				}
			}
			return nil
		},
	}
}

// oddOddSolution computes the unique OddOdd solution.
func oddOddSolution(g *graph.Graph) []machine.Output {
	out := make([]machine.Output, g.N())
	for v := 0; v < g.N(); v++ {
		odd := 0
		for _, u := range g.Neighbors(v) {
			if g.Degree(u)%2 == 1 {
				odd++
			}
		}
		out[v] = "0"
		if odd%2 == 1 {
			out[v] = "1"
		}
	}
	return out
}

// AllSeparations returns every separation witness the library proves.
func AllSeparations() []*Separation {
	return []*Separation{Theorem11(), Theorem13(), Theorem17(), MISNotInVVc()}
}
