package core

import (
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

func TestRemark2ObliviousCollapse(t *testing.T) {
	// However long an SBo machine probes, its output factors through
	// isolation.
	for _, rounds := range []int{1, 2, 5} {
		m := NewObliviousProbe(6, rounds)
		if err := VerifyRemark2(m, Remark2Graphs()); err != nil {
			t.Fatalf("rounds=%d: %v", rounds, err)
		}
	}
}

func TestRemark2RejectsDegreeAware(t *testing.T) {
	if err := VerifyRemark2(algorithms.EvenDegree(4), Remark2Graphs()); err == nil {
		t.Fatal("degree-aware machine accepted as SBo")
	}
}

func TestRemark2SBStrictlyStronger(t *testing.T) {
	// SBo ⊊ SB: EvenDegree (an SB(1) algorithm) distinguishes nodes of
	// degree 2 from degree 3 — outputs an SBo machine can never produce
	// (non-isolated nodes with different outputs).
	g := graph.Figure1Graph() // degrees 3,2,2,1
	res, err := engine.Run(algorithms.EvenDegree(3), port.Canonical(g), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] == res.Output[1] {
		t.Fatal("EvenDegree should split degree-3 from degree-2 nodes")
	}
	// And by Remark 2 no SBo machine can: VerifyRemark2 holds for probes.
	if err := VerifyRemark2(NewObliviousProbe(3, 3), []*graph.Graph{g}); err != nil {
		t.Fatal(err)
	}
}

func TestSection34LocalInputs(t *testing.T) {
	// With local inputs, even a degree-oblivious initialisation becomes
	// non-trivial: labelled parity splits nodes by their neighbourhood
	// labels.
	g := graph.Path(4)
	m := NewLabelledParity(2)
	inputs := []string{"a", "b", "a", "a"}
	res, err := engine.Run(m, port.Canonical(g), engine.Options{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 sees {b} → 0; node 1 sees {a,a} → 0; node 2 sees {b,a} → 1;
	// node 3 sees {a} → 1.
	want := []machine.Output{"0", "0", "1", "1"}
	for v, w := range want {
		if res.Output[v] != w {
			t.Errorf("node %d: output %q, want %q", v, res.Output[v], w)
		}
	}
}

func TestInputsValidation(t *testing.T) {
	g := graph.Path(3)
	m := NewLabelledParity(2)
	if _, err := engine.Run(m, port.Canonical(g), engine.Options{Inputs: []string{"a"}}); err == nil {
		t.Error("wrong input count accepted")
	}
	// A non-InputAware machine must reject inputs.
	if _, err := engine.Run(algorithms.OddOdd(2), port.Canonical(g), engine.Options{Inputs: []string{"a", "b", "c"}}); err == nil {
		t.Error("inputs accepted by input-unaware machine")
	}
}

func TestSection34SeparationTransfer(t *testing.T) {
	// §3.4: a separation on unlabelled graphs is a separation for labelled
	// graphs — concretely, running the Theorem 13 argument with constant
	// labels changes nothing.
	g, u, w := graph.Theorem13Witness()
	type st struct {
		Deg  int
		Done bool
		Out  machine.Output
	}
	labelled := &machine.InputFunc{
		Func: machine.Func{
			MachineName:  "odd-odd-labelled",
			MachineClass: machine.ClassMB,
			MaxDeg:       3,
			InitFunc:     func(deg int) machine.State { return st{Deg: deg} },
			HaltedFunc: func(s machine.State) (machine.Output, bool) {
				x := s.(st)
				return x.Out, x.Done
			},
			SendFunc: func(s machine.State, _ int) machine.Message {
				if s.(st).Deg%2 == 1 {
					return "1"
				}
				return "0"
			},
			StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
				x := s.(st)
				odd := 0
				for _, m := range inbox {
					if m == "1" {
						odd++
					}
				}
				out := machine.Output("0")
				if odd%2 == 1 {
					out = "1"
				}
				return st{Deg: x.Deg, Done: true, Out: out}
			},
		},
		InitInputFunc: func(deg int, _ string) machine.State { return st{Deg: deg} },
	}
	inputs := make([]string, g.N())
	for i := range inputs {
		inputs[i] = "constant"
	}
	res, err := engine.Run(labelled, port.Canonical(g), engine.Options{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[u] == res.Output[w] {
		t.Fatal("labelled run lost the witness split")
	}
}

func TestConcurrentWithInputs(t *testing.T) {
	g := graph.Cycle(5)
	m := NewLabelledParity(2)
	inputs := []string{"a", "a", "b", "a", "b"}
	seq, err := engine.Run(m, port.Canonical(g), engine.Options{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	con, err := engine.Run(m, port.Canonical(g), engine.Options{Inputs: inputs, Executor: engine.ExecutorPool})
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq.Output {
		if seq.Output[v] != con.Output[v] {
			t.Fatalf("executors disagree at %d", v)
		}
	}
}
