package core

import (
	"strings"
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/problems"
)

func TestStratumOrder(t *testing.T) {
	// Equation (1): SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc.
	if SB.Stratum() != 0 || MB.Stratum() != 1 || VB.Stratum() != 1 ||
		SV.Stratum() != 2 || MV.Stratum() != 2 || VV.Stratum() != 2 || VVc.Stratum() != 3 {
		t.Fatal("strata wrong")
	}
	if !MB.EqualAsProblemClass(VB) || !SV.EqualAsProblemClass(MV) || !MV.EqualAsProblemClass(VV) {
		t.Error("collapsed classes not equal")
	}
	if SB.EqualAsProblemClass(MB) || VB.EqualAsProblemClass(SV) || VV.EqualAsProblemClass(VVc) {
		t.Error("separated classes equal")
	}
	if !VVc.Contains(SB) || SB.Contains(MB) {
		t.Error("containment wrong")
	}
	// The linear order must refine the trivial partial order of Figure 5a.
	for _, pair := range TrivialSubsets() {
		if !pair[1].Contains(pair[0]) {
			t.Errorf("trivial subset %v ⊆ %v violated by strata", pair[0], pair[1])
		}
	}
}

func TestClassNamesAndMachineClasses(t *testing.T) {
	for _, c := range AllClasses() {
		if c.String() == "" || strings.HasPrefix(c.String(), "ClassID") {
			t.Errorf("bad name for %d", int(c))
		}
		mc, consistency := c.MachineClass()
		if consistency != (c == VVc) {
			t.Errorf("%v consistency flag wrong", c)
		}
		if c == VVc && mc != machine.ClassVV {
			t.Error("VVc must use Vector machines")
		}
	}
}

func TestClassOf(t *testing.T) {
	if ClassOf(algorithms.OddOdd(3)) != MB {
		t.Error("OddOdd should certify MB")
	}
	if ClassOf(algorithms.LeafElect(3)) != SV {
		t.Error("LeafElect should certify SV")
	}
	if ClassOf(algorithms.EvenDegree(3)) != SB {
		t.Error("EvenDegree should certify SB")
	}
	if ClassOf(algorithms.LocalTypeMax(3)) != VV {
		t.Error("LocalTypeMax should certify VV")
	}
}

func TestSolvesHarness(t *testing.T) {
	suite := DefaultSuite()
	suite.RandomTrials = 2
	if err := Solves(algorithms.OddOdd, MB, problems.OddOdd{}, suite); err != nil {
		t.Errorf("OddOdd in MB: %v", err)
	}
	// A machine of a stronger class must be rejected in a weaker class.
	if err := Solves(algorithms.LeafElect, SB, problems.LeafElection{}, suite); err == nil {
		t.Error("SV machine admitted into SB")
	}
	// An SB machine is admissible in every class.
	if err := Solves(algorithms.EvenDegree, VVc, problems.EvenDegrees{}, suite); err != nil {
		t.Errorf("SB machine in VVc: %v", err)
	}
	// A wrong algorithm must fail validation.
	if err := Solves(algorithms.EvenDegree, SB, problems.OddOdd{}, suite); err == nil {
		t.Error("EvenDegree does not solve OddOdd but passed")
	}
}

func TestTheorem11Separation(t *testing.T) {
	suite := DefaultSuite()
	suite.RandomTrials = 2
	if err := Theorem11().Verify(suite); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem13Separation(t *testing.T) {
	suite := DefaultSuite()
	suite.RandomTrials = 2
	if err := Theorem13().Verify(suite); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem17Separation(t *testing.T) {
	suite := DefaultSuite()
	suite.RandomTrials = 2
	if err := Theorem17().Verify(suite); err != nil {
		t.Fatal(err)
	}
}

func TestMISNotInVVc(t *testing.T) {
	suite := DefaultSuite()
	if err := MISNotInVVc().Verify(suite); err != nil {
		t.Fatal(err)
	}
}

func TestCollapses(t *testing.T) {
	suite := Suite{
		Graphs: []*graph.Graph{
			graph.Path(4), graph.Cycle(5), graph.Star(3),
			graph.Figure1Graph(),
		},
		RandomTrials: 2,
		Seed:         2,
	}
	for _, c := range AllCollapses() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if c.Strong.Stratum() != c.Weak.Stratum() {
				t.Fatalf("%s: classes in different strata", c.Name)
			}
			if err := c.Verify(suite); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLinearOrder(t *testing.T) {
	suite := Suite{
		Graphs: []*graph.Graph{
			graph.Path(3), graph.Cycle(4), graph.Star(3), graph.Figure1Graph(),
		},
		RandomTrials: 1,
		Seed:         3,
	}
	report, err := Derive(suite)
	if err != nil {
		t.Fatal(err)
	}
	want := "SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc"
	if report.String() != want {
		t.Errorf("report = %q, want %q", report.String(), want)
	}
	if len(report.Collapses) != 4 || len(report.Separations) != 4 {
		t.Errorf("evidence counts: %d collapses, %d separations",
			len(report.Collapses), len(report.Separations))
	}
}

func BenchmarkClassify(b *testing.B) {
	suite := Suite{
		Graphs:       []*graph.Graph{graph.Path(3), graph.Star(3)},
		RandomTrials: 1,
		Seed:         4,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Derive(suite); err != nil {
			b.Fatal(err)
		}
	}
}
