package core

import (
	"testing"

	"weakmodels/internal/compile"
	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
)

// TestCaptureTableMatchesCompiler cross-checks Theorem 2's table against
// the compiler: for each row, a formula in exactly that logic over that
// model variant compiles to a machine of exactly that class.
func TestCaptureTableMatchesCompiler(t *testing.T) {
	samples := map[kripke.Variant]map[string]string{
		kripke.VariantPP: {"MML": "<1,2> q1"},
		kripke.VariantMP: {"MML": "<*,2> q1", "GMML": "<*,2>=2 q1"},
		kripke.VariantPM: {"MML": "<1,*> q1"},
		kripke.VariantMM: {"ML": "<*,*> q1", "GML": "<*,*>=2 q1"},
	}
	for _, row := range CaptureTable() {
		src, ok := samples[row.Variant][row.Logic]
		if !ok {
			t.Fatalf("no sample for %v/%s", row.Variant, row.Logic)
		}
		f := logic.MustParse(src)
		if got := logic.ClassifyFragment(f).String(); got != row.Logic {
			t.Fatalf("sample %q classified as %s, want %s", src, got, row.Logic)
		}
		m, variant, err := compile.MachineFromFormula(f, 3)
		if err != nil {
			t.Fatalf("%v: %v", row, err)
		}
		if variant != row.Variant {
			t.Errorf("%v: compiled for %v", row, variant)
		}
		wantClass, _ := row.Class.MachineClass()
		if m.Class() != wantClass {
			t.Errorf("row %v: compiled class %v, want %v", row.Class, m.Class(), wantClass)
		}
	}
}

func TestCaptureTableCoversAllClasses(t *testing.T) {
	seen := map[ClassID]bool{}
	for _, row := range CaptureTable() {
		seen[row.Class] = true
		if row.Consistent != (row.Class == VVc) {
			t.Errorf("%v: consistency flag wrong", row.Class)
		}
	}
	for _, c := range AllClasses() {
		if !seen[c] {
			t.Errorf("class %v missing from capture table", c)
		}
	}
}
