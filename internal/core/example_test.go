package core_test

import (
	"fmt"

	"weakmodels/internal/core"
)

// Example prints the paper's main theorem as the library derives it.
func Example() {
	for _, c := range core.AllClasses() {
		fmt.Printf("%-3s stratum %d\n", c, c.Stratum())
	}
	fmt.Println("MB = VB as problem classes:", core.MB.EqualAsProblemClass(core.VB))
	fmt.Println("SB ⊊ VVc:", core.VVc.Contains(core.SB) && !core.SB.Contains(core.VVc))
	// Output:
	// SB  stratum 0
	// MB  stratum 1
	// VB  stratum 1
	// SV  stratum 2
	// MV  stratum 2
	// VV  stratum 2
	// VVc stratum 3
	// MB = VB as problem classes: true
	// SB ⊊ VVc: true
}

// ExampleCaptureTable lists Theorem 2's logic correspondences.
func ExampleCaptureTable() {
	for _, row := range core.CaptureTable() {
		fmt.Printf("%s(1) ↔ %s on %v\n", row.Class, row.Logic, row.Variant)
	}
	// Output:
	// VVc(1) ↔ MML on K(+,+)
	// VV(1) ↔ MML on K(+,+)
	// MV(1) ↔ GMML on K(−,+)
	// SV(1) ↔ MML on K(−,+)
	// VB(1) ↔ MML on K(+,−)
	// MB(1) ↔ GML on K(−,−)
	// SB(1) ↔ ML on K(−,−)
}
