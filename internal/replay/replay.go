// Package replay is the flight recorder built on the engine's checkpoint
// layer: it records a run's decision stream — every schedule decision,
// fault-plan decision, delivery fate, Byzantine rewrite and settledness
// verdict, in the engine's global draw order — together with periodic
// state snapshots, and reconstructs the run from them without re-drawing
// any randomness.
//
// The contract is byte-exactness, inherited from the engine's own
// determinism discipline: a replayed run produces the same Result (modulo
// Shards), the same Trace and the same serialized journal as the recorded
// run, for every worker count and GOMAXPROCS setting — from step 0 or
// from any recorded snapshot (in which case Trace and journal are the
// recorded run's suffixes). The players feed the engine recorded decisions
// through the ordinary Schedule and Plan interfaces, so the engine cannot
// tell a replay from a live run; recorded snapshots have their generator
// state blobs stripped before resuming, because the players are the
// generator state.
//
// On top of record/replay sits divergence bisection (BisectDivergence):
// binary-search the snapshots for the first one off the fault-free
// synchronous trajectory, then replay one snapshot interval to name the
// exact first divergent (step, node). stabilize.CheckWith drives it for
// failed self-stabilisation checks.
package replay

import (
	"cmp"
	"errors"
	"fmt"
	"io"
	"slices"

	"weakmodels/internal/engine"
	"weakmodels/internal/fault"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

// schedStep is one recorded schedule decision.
type schedStep struct {
	step                    int
	activateAll, deliverAll bool
	activate                []bool  // nil when activateAll
	deliver                 []int32 // nil when deliverAll
}

// planStep is one recorded fault-plan decision, plus the plan's cumulative
// healed-link count after the step (the Healer reading the engine journals
// heal deltas from).
type planStep struct {
	step    int
	crash   []bool
	recover []fault.RecoverKind
	resend  []bool
	healed  int64
}

// fateStep is one step's delivery fates in global (link, queue-position)
// order, with the Byzantine rewrites of its FateCorrupt entries in the
// same order.
type fateStep struct {
	step     int
	fates    []fault.Fate
	rewrites []string
}

// settledStep is one recorded Plan.Settled verdict (drawn at fixpoint
// probes, whose cadence is deterministic).
type settledStep struct {
	step int
	ok   bool
}

// Recording is a run's full decision stream plus its snapshots — enough to
// reconstruct the run bit-exactly from step 0 or from any snapshot. Build
// one live with New, or decode a saved one with Load.
type Recording struct {
	// Sync marks a synchronous-executor recording: no decision stream (the
	// synchronous semantics draw no randomness), snapshots only.
	Sync bool
	// HasPlan says the recorded run had a fault plan; Corrupts that the
	// plan could corrupt payloads (fault.CanCorrupt), which decides the
	// player's shape — a falsely-corrupting player would engage the
	// engine's receiver-side guard and diverge.
	HasPlan  bool
	Corrupts bool
	// FinalStep is the recorded run's last executed step (Result.Rounds);
	// 0 until Finish, which marks an incomplete recording.
	FinalStep int
	// Fixpoint mirrors the recorded Result.Fixpoint.
	Fixpoint bool

	scheds  []schedStep
	plans   []planStep
	fates   []fateStep
	settled []settledStep
	snaps   []*engine.Snapshot
}

// Snapshots returns the recorded snapshots in step order. The slice is
// shared; treat it as read-only.
func (rec *Recording) Snapshots() []*engine.Snapshot { return rec.snaps }

// SnapshotBefore returns the latest snapshot taken at or before step, or
// nil when none is.
func (rec *Recording) SnapshotBefore(step int) *engine.Snapshot {
	var best *engine.Snapshot
	for _, s := range rec.snaps {
		if s.Step <= step {
			best = s
		}
	}
	return best
}

// replayFailure carries a player's mismatch panic to Replay's recover.
type replayFailure struct{ err error }

func failReplay(format string, args ...any) {
	panic(replayFailure{fmt.Errorf("replay: "+format, args...)})
}

// Replay reconstructs the recorded run and returns its Result, which is
// bit-identical to the recorded one (modulo Shards) for any Workers or
// GOMAXPROCS in base. from resumes from one of the recording's snapshots
// (nil replays from step 0); the replayed Trace and journal are then the
// recorded run's suffixes from that step. base supplies Executor (sync
// recordings), Workers, Obs, RecordTrace and input options; it must not
// set Schedule, Fault, Checkpoint, Resume or MaxRounds — the recording
// owns them.
func (rec *Recording) Replay(m machine.Machine, p *port.Numbering, base engine.Options, from *engine.Snapshot) (res *engine.Result, err error) {
	if rec.FinalStep <= 0 {
		return nil, errors.New("replay: recording has no end record (the run did not complete)")
	}
	if base.Schedule != nil || base.Fault != nil || base.Checkpoint != nil || base.Resume != nil || base.MaxRounds != 0 {
		return nil, errors.New("replay: base options must leave Schedule, Fault, Checkpoint, Resume and MaxRounds unset")
	}
	opts := base
	// The recorded run ended at FinalStep by halt or fixpoint; the replay
	// ends the same way at the same step, so the budget is exact — running
	// past it means the replay diverged, and the budget error says so.
	opts.MaxRounds = rec.FinalStep
	fromStep := 0
	if from != nil {
		fromStep = from.Step
		// The players below ARE the generators' mid-run state; the blobs
		// would make the engine demand Resumable generators.
		cp := *from
		cp.SchedState, cp.PlanState = nil, nil
		opts.Resume = &cp
	}
	if !rec.Sync {
		opts.Executor = engine.ExecutorAsync
		opts.Schedule = newPlaySchedule(rec, fromStep)
		if rec.HasPlan {
			opts.Fault = newPlayPlan(rec, fromStep, from)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(replayFailure); ok {
				res, err = nil, f.err
				return
			}
			panic(r)
		}
	}()
	return engine.Run(m, p, opts)
}

// Save writes the recording to w in the WRPLAY01 binary format. Recordings
// built by New with a non-nil writer are already streamed; Save serializes
// an in-memory one after the fact. Snapshot states must be gob-encodable.
func (rec *Recording) Save(w io.Writer) error {
	if _, err := w.Write([]byte(replayMagic)); err != nil {
		return err
	}
	out := &recordWriter{w: w}
	out.emit(recBegin, encodeBegin(rec))
	type timed struct {
		step int
		tag  byte
		i    int
	}
	var seq []timed
	for i, s := range rec.scheds {
		seq = append(seq, timed{s.step, recSched, i})
	}
	for i, s := range rec.plans {
		seq = append(seq, timed{s.step, recPlanDec, i})
	}
	for i, s := range rec.fates {
		seq = append(seq, timed{s.step, recFates, i})
	}
	for i, s := range rec.settled {
		seq = append(seq, timed{s.step, recSettled, i})
	}
	for i, s := range rec.snaps {
		seq = append(seq, timed{s.Step, recSnap, i})
	}
	// Chronological order, ties broken by the engine's per-step emission
	// order: schedule decision, plan decision, fates, settled, snapshot.
	tagRank := map[byte]int{recSched: 0, recPlanDec: 1, recFates: 2, recSettled: 3, recSnap: 4}
	slices.SortStableFunc(seq, func(a, b timed) int {
		if a.step != b.step {
			return cmp.Compare(a.step, b.step)
		}
		return cmp.Compare(tagRank[a.tag], tagRank[b.tag])
	})
	for _, rec2 := range seq {
		switch rec2.tag {
		case recSched:
			out.emit(recSched, encodeSched(&rec.scheds[rec2.i]))
		case recPlanDec:
			out.emit(recPlanDec, encodePlan(&rec.plans[rec2.i]))
		case recFates:
			out.emit(recFates, encodeFates(&rec.fates[rec2.i]))
		case recSettled:
			out.emit(recSettled, encodeSettled(rec.settled[rec2.i]))
		case recSnap:
			data, err := rec.snaps[rec2.i].MarshalBinary()
			if err != nil {
				return fmt.Errorf("replay: serialize snapshot at step %d: %w", rec.snaps[rec2.i].Step, err)
			}
			out.emit(recSnap, data)
		}
	}
	if rec.FinalStep > 0 {
		out.emit(recEnd, encodeEnd(rec))
	}
	return out.err
}
