package replay

// record.go is the recording side: New wraps a run's Options so that the
// schedule, the fault plan and the checkpoint stream all pass through a
// Recorder, which mirrors every decision into an in-memory Recording and
// (optionally) streams it to a writer in the WRPLAY01 format, record by
// record — a killed process leaves a loadable prefix.
//
// The wrappers are shape-preserving: the engine type-asserts its
// generators (Corrupter for the receiver-side guard, Dilated for the step
// budget, Resumable for checkpointing), so each wrapper variant carries
// exactly the optional methods its wrapped generator carries. Corrupter-
// ness follows fault.CanCorrupt — a composite implements Corrupt
// structurally even when no component can lie, and mirroring the method
// rather than the capability would flip the engine's guard. The one
// deliberate widening is Healer: the wrapper (like the player) always
// implements it, reporting 0 forever for plans that never heal, which is
// observationally identical to having no Healer at all.

import (
	"fmt"
	"io"

	"weakmodels/internal/engine"
	"weakmodels/internal/fault"
	"weakmodels/internal/schedule"
)

// Recorder accumulates one run's decision stream. Obtain one from New,
// run the engine with the returned Options, then call Finish.
type Recorder struct {
	rec *Recording
	out *recordWriter // nil for in-memory recordings

	// Pending fates of the step currently being filtered; flushed when a
	// later step's record arrives and at Finish.
	cur fateStep

	lastPlanStep int
}

// New prepares a recorded run: it returns a copy of opts whose schedule,
// fault plan and checkpoint stream are wrapped to record into the returned
// Recorder, with snapshots taken every `every` steps (≥ 1). The recorded
// run itself is bit-identical to the unwrapped one. When w is non-nil the
// recording is additionally streamed to it record by record (states must
// then be gob-encodable for the snapshots); a nil w keeps everything in
// memory, with live (never serialized) snapshots.
//
// After engine.Run returns, call Finish with its Result to seal the
// recording. opts must not already set Checkpoint.
func New(opts engine.Options, every int, w io.Writer) (engine.Options, *Recorder, error) {
	if every < 1 {
		return opts, nil, fmt.Errorf("replay: snapshot cadence %d, want ≥ 1", every)
	}
	if opts.Checkpoint != nil {
		return opts, nil, fmt.Errorf("replay: options already carry a Checkpoint sink")
	}
	r := &Recorder{rec: &Recording{}}
	if w != nil {
		if _, err := w.Write([]byte(replayMagic)); err != nil {
			return opts, nil, fmt.Errorf("replay: write header: %w", err)
		}
		r.out = &recordWriter{w: w}
	}
	if opts.Executor == engine.ExecutorAsync {
		sched := opts.Schedule
		if sched == nil {
			// The engine would default it; record the default explicitly so
			// the wrapper sees every Step call.
			sched = schedule.Synchronous()
		}
		opts.Schedule = wrapSchedule(sched, r)
		if opts.Fault != nil {
			r.rec.HasPlan = true
			r.rec.Corrupts = fault.CanCorrupt(opts.Fault)
			opts.Fault = wrapPlan(opts.Fault, r)
		}
	} else {
		r.rec.Sync = true
	}
	r.emit(recBegin, func() []byte { return encodeBegin(r.rec) })
	opts.Checkpoint = &engine.CheckpointOptions{Every: every, Sink: r.addSnapshot}
	return opts, r, nil
}

// Recording returns the recording built so far. Before Finish it is
// incomplete (FinalStep 0) and only useful for inspection.
func (r *Recorder) Recording() *Recording { return r.rec }

// Finish seals the recording with the completed run's Result and flushes
// the trailing records. A recording without Finish (the run errored, or
// the process died) keeps its prefix but cannot be replayed.
func (r *Recorder) Finish(res *engine.Result) error {
	r.flushFates()
	r.rec.FinalStep = res.Rounds
	r.rec.Fixpoint = res.Fixpoint
	r.emit(recEnd, func() []byte { return encodeEnd(r.rec) })
	if r.out != nil {
		return r.out.err
	}
	return nil
}

// emit streams one record when a writer is attached.
func (r *Recorder) emit(tag byte, payload func() []byte) {
	if r.out != nil {
		r.out.emit(tag, payload())
	}
}

// addSnapshot is the engine's checkpoint sink.
func (r *Recorder) addSnapshot(s *engine.Snapshot) error {
	// The snapshot is captured after the step's last Filter draw, so the
	// pending fates belong before it in the stream.
	r.flushFates()
	r.rec.snaps = append(r.rec.snaps, s)
	if r.out != nil {
		data, err := s.MarshalBinary()
		if err != nil {
			return fmt.Errorf("replay: serialize snapshot at step %d: %w", s.Step, err)
		}
		r.out.emit(recSnap, data)
		return r.out.err
	}
	return nil
}

func (r *Recorder) recordSched(t int, dec *schedule.Decision) {
	r.flushFates()
	s := schedStep{step: t, activateAll: dec.ActivateAll, deliverAll: dec.DeliverAll}
	if !dec.ActivateAll {
		s.activate = append([]bool(nil), dec.Activate...)
	}
	if !dec.DeliverAll {
		s.deliver = append([]int32(nil), dec.Deliver...)
	}
	r.rec.scheds = append(r.rec.scheds, s)
	r.emit(recSched, func() []byte { return encodeSched(&s) })
}

func (r *Recorder) recordPlan(t int, dec *fault.Decision, healed int64) {
	r.lastPlanStep = t
	s := planStep{
		step:    t,
		crash:   append([]bool(nil), dec.Crash...),
		recover: append([]fault.RecoverKind(nil), dec.Recover...),
		resend:  append([]bool(nil), dec.Resend...),
		healed:  healed,
	}
	r.rec.plans = append(r.rec.plans, s)
	r.emit(recPlanDec, func() []byte { return encodePlan(&s) })
}

func (r *Recorder) recordFate(t int, f fault.Fate) {
	if r.cur.step != t {
		r.flushFates()
		r.cur.step = t
	}
	r.cur.fates = append(r.cur.fates, f)
}

func (r *Recorder) recordRewrite(t int, msg string) {
	if r.cur.step != t {
		r.flushFates()
		r.cur.step = t
	}
	r.cur.rewrites = append(r.cur.rewrites, msg)
}

func (r *Recorder) recordSettled(ok bool) {
	s := settledStep{step: r.lastPlanStep, ok: ok}
	r.rec.settled = append(r.rec.settled, s)
	r.emit(recSettled, func() []byte { return encodeSettled(s) })
}

func (r *Recorder) flushFates() {
	if len(r.cur.fates) == 0 && len(r.cur.rewrites) == 0 {
		return
	}
	s := r.cur
	r.rec.fates = append(r.rec.fates, s)
	r.emit(recFates, func() []byte { return encodeFates(&s) })
	r.cur = fateStep{}
}

// recSchedule wraps a schedule, recording every decision. It always
// implements Dilated, replicating the engine's default (dilation n) for
// schedules that don't, so the wrapped run's step budget is unchanged.
type recSchedule struct {
	inner schedule.Schedule
	r     *Recorder
}

func (s *recSchedule) Name() string       { return s.inner.Name() }
func (s *recSchedule) Begin(n, links int) { s.inner.Begin(n, links) }
func (s *recSchedule) Step(t int, view schedule.View, dec *schedule.Decision) {
	s.inner.Step(t, view, dec)
	s.r.recordSched(t, dec)
}
func (s *recSchedule) Dilation(nodes int) int {
	if d, ok := s.inner.(schedule.Dilated); ok {
		return d.Dilation(nodes)
	}
	return nodes
}

// recScheduleR additionally forwards Resumable, so checkpoints taken
// during a recorded run still carry the live generator's state (for
// engine-level resume with live generators; replay strips them).
type recScheduleR struct{ recSchedule }

func (s *recScheduleR) SnapshotState() []byte {
	return s.inner.(schedule.Resumable).SnapshotState()
}
func (s *recScheduleR) RestoreState(b []byte) error {
	return s.inner.(schedule.Resumable).RestoreState(b)
}

func wrapSchedule(inner schedule.Schedule, r *Recorder) schedule.Schedule {
	base := recSchedule{inner: inner, r: r}
	if _, ok := inner.(schedule.Resumable); ok {
		return &recScheduleR{base}
	}
	return &base
}

// recPlan wraps a fault plan, recording decisions, fates and settledness.
type recPlan struct {
	inner fault.Plan
	r     *Recorder
}

func (p *recPlan) Name() string             { return p.inner.Name() }
func (p *recPlan) Begin(top fault.Topology) { p.inner.Begin(top) }
func (p *recPlan) Step(t int, view fault.View, dec *fault.Decision) {
	p.inner.Step(t, view, dec)
	p.r.recordPlan(t, dec, p.Healed())
}
func (p *recPlan) Filter(t, link int) fault.Fate {
	f := p.inner.Filter(t, link)
	p.r.recordFate(t, f)
	return f
}
func (p *recPlan) Settled() bool {
	ok := p.inner.Settled()
	p.r.recordSettled(ok)
	return ok
}

// Healed is implemented unconditionally (see the package comment): 0
// forever for plans without a Healer is indistinguishable from no Healer.
func (p *recPlan) Healed() int64 {
	if h, ok := p.inner.(fault.Healer); ok {
		return h.Healed()
	}
	return 0
}

func (p *recPlan) corrupt(t, link int, msg string) string {
	rewrite := p.inner.(fault.Corrupter).Corrupt(t, link, msg)
	p.r.recordRewrite(t, rewrite)
	return rewrite
}

func (p *recPlan) snapshotState() []byte {
	return p.inner.(schedule.Resumable).SnapshotState()
}
func (p *recPlan) restoreState(b []byte) error {
	return p.inner.(schedule.Resumable).RestoreState(b)
}

// The wrapper variants: corrupter-ness × resumability, matched to the
// wrapped plan's shape at construction.
type recPlanC struct{ recPlan }

func (p *recPlanC) Corrupt(t, link int, msg string) string { return p.corrupt(t, link, msg) }

type recPlanR struct{ recPlan }

func (p *recPlanR) SnapshotState() []byte       { return p.snapshotState() }
func (p *recPlanR) RestoreState(b []byte) error { return p.restoreState(b) }

type recPlanCR struct{ recPlan }

func (p *recPlanCR) Corrupt(t, link int, msg string) string { return p.corrupt(t, link, msg) }
func (p *recPlanCR) SnapshotState() []byte                  { return p.snapshotState() }
func (p *recPlanCR) RestoreState(b []byte) error            { return p.restoreState(b) }

func wrapPlan(inner fault.Plan, r *Recorder) fault.Plan {
	base := recPlan{inner: inner, r: r}
	corrupts := fault.CanCorrupt(inner)
	_, resumable := inner.(schedule.Resumable)
	switch {
	case corrupts && resumable:
		return &recPlanCR{base}
	case corrupts:
		return &recPlanC{base}
	case resumable:
		return &recPlanR{base}
	default:
		return &base
	}
}
