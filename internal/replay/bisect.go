package replay

// bisect.go turns a recording of a failed stabilisation run into an exact
// culprit: the first (step, node) at which the run left the fault-free
// synchronous trajectory. The predicate leans on the executor's confluence
// theorem — in a fault-free asynchronous run, a node that has fired k
// times is in exactly the synchronous state x_k — so "on trajectory" is
// checkable per node from its firing count alone, against the reference
// run's trace. Faults are precisely what break that invariant, and the
// first node they break it at is where the damage entered.
//
// The search is two-phase: binary-search the recording's snapshots (whose
// state vectors, firing counts and liveness masks make the predicate free
// to evaluate) for the first off-trajectory snapshot, then replay the one
// preceding interval with a trace and a journal to name the exact step and
// node. The bisection assumes the recorded divergence persists once it
// appears — true for monotone algorithms like the max-gossip family; a
// transient divergence that heals before the last agreeing snapshot is
// invisible to the binary search and goes unreported.

import (
	"fmt"

	"weakmodels/internal/engine"
	"weakmodels/internal/machine"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
)

// StepDivergence names the first point a recorded run left the fault-free
// synchronous trajectory.
type StepDivergence struct {
	// Step is the executor step whose firing first produced an
	// off-trajectory state; Node is the (lowest-id) node it happened at.
	Step int
	Node int
	// Fires is Node's cumulative firing count at that step; the trajectory
	// predicate compared its state against the reference x_Fires.
	Fires int64
	// Ref renders the expected state (the reference trajectory's), Got the
	// state the recorded run actually reached.
	Ref string
	Got string
}

func (d *StepDivergence) String() string {
	return fmt.Sprintf("step %d node %d (firing %d): have %s, want %s",
		d.Step, d.Node, d.Fires, d.Got, d.Ref)
}

// offTrajectory evaluates the confluence predicate on a snapshot: the
// lowest-id live node whose state differs from the reference trajectory at
// its own firing count. refTrace[t] is the fault-free synchronous x_t; a
// node that fired past the end of the trace is held to the final (fixpoint
// or halted) reference state.
func offTrajectory(m machine.Machine, refTrace [][]machine.State, states []machine.State, fires []int64, alive []bool) (int, bool) {
	last := len(refTrace) - 1
	for v := range states {
		if alive != nil && !alive[v] {
			continue
		}
		k := int(fires[v])
		if k > last {
			k = last
		}
		if !machine.StatesEqual(m, refTrace[k][v], states[v]) {
			return v, true
		}
	}
	return 0, false
}

// BisectDivergence locates the first (step, node) at which the recorded
// run left the fault-free synchronous trajectory given by refTrace (the
// reference run's Trace, refTrace[t] = x_t; it must be non-empty — run the
// reference with RecordTrace). It binary-searches the recording's
// snapshots for the first off-trajectory one, then replays the interval
// since the last on-trajectory point to pin the exact step. Returns nil
// when no step diverges — the run never left the trajectory (or only
// transiently, see the package comment).
func BisectDivergence(m machine.Machine, p *port.Numbering, rec *Recording, refTrace [][]machine.State) (*StepDivergence, error) {
	if rec.FinalStep <= 0 {
		return nil, fmt.Errorf("replay: recording has no end record (the run did not complete)")
	}
	if len(refTrace) == 0 {
		return nil, fmt.Errorf("replay: empty reference trace (run the reference with RecordTrace)")
	}

	// Binary search the snapshots: initial configurations are on trajectory
	// by definition (x_0, zero firings), so the invariant is "lo on
	// trajectory, bad off trajectory".
	snaps := rec.snaps
	firstBad := len(snaps)
	lo, hi := 0, len(snaps)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		s := snaps[mid]
		if _, off := offTrajectory(m, refTrace, s.States, s.Fires, s.Alive); off {
			firstBad = mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}

	// Replay from the last on-trajectory snapshot (nil: from step 0) and
	// scan its interval step by step. The replay necessarily runs to the
	// recording's end; when every snapshot is on trajectory the divergence
	// lies in the tail and the same scan covers it.
	var from *engine.Snapshot
	if firstBad > 0 && len(snaps) > 0 {
		if firstBad == len(snaps) {
			from = snaps[len(snaps)-1]
		} else {
			from = snaps[firstBad-1]
		}
	}
	var journal obs.Collect
	res, err := rec.Replay(m, p, engine.Options{RecordTrace: true, Obs: &obs.Obs{Sink: &journal}}, from)
	if err != nil {
		return nil, fmt.Errorf("replay: bisection segment: %w", err)
	}

	// Walk the segment. Trace[i] is the state vector after step base+i;
	// firing counts and liveness advance with the journal's fire and
	// crash/recover events, which carry cumulative counts.
	base := 0
	fires := make([]int64, len(res.States))
	var alive []bool
	if from != nil {
		base = from.Step
		copy(fires, from.Fires)
		if from.Alive != nil {
			alive = append([]bool(nil), from.Alive...)
		}
	}
	ev, events := 0, journal.Events
	for i := 1; i < len(res.Trace); i++ {
		t := base + i
		for ev < len(events) && events[ev].Step <= int64(t) {
			e := events[ev]
			ev++
			switch e.Kind {
			case obs.KindFire:
				fires[e.Node] = e.Arg
			case obs.KindCrash:
				if alive == nil {
					alive = make([]bool, len(res.States))
					for v := range alive {
						alive[v] = true
					}
				}
				alive[e.Node] = false
			case obs.KindRecover:
				if alive != nil {
					alive[e.Node] = true
				}
			}
		}
		if v, off := offTrajectory(m, refTrace, res.Trace[i], fires, alive); off {
			k := int(fires[v])
			if k > len(refTrace)-1 {
				k = len(refTrace) - 1
			}
			return &StepDivergence{
				Step:  t,
				Node:  v,
				Fires: fires[v],
				Ref:   fmt.Sprint(refTrace[k][v]),
				Got:   fmt.Sprint(res.Trace[i][v]),
			}, nil
		}
	}
	return nil, nil
}
