package replay

// player.go is the replay side: a schedule and a fault plan that serve the
// recorded decision stream back to the engine instead of drawing any
// randomness. The engine consumes decisions, fates and rewrites in exactly
// the order it emitted them while recording (its own determinism
// discipline guarantees that), so the players are plain cursors. Any
// mismatch — a step out of order, an exhausted stream — means the replay
// diverged from the recording (or the recording is corrupt) and fails the
// run via a replayFailure panic that Replay converts to an error.
//
// Player shape mirrors recorded shape on the one axis the engine can
// observe: a player for a corrupting plan implements Corrupter (the engine
// engages its receiver-side guard exactly as in the recorded run), one for
// a non-corrupting plan does not. Healer is implemented unconditionally —
// serving the recorded cumulative heal counts, which are 0 forever when
// the recorded plan never healed. Neither player is Resumable: a replay
// resumes from snapshots whose generator blobs are stripped, because the
// recorded stream itself is the generator state.

import (
	"weakmodels/internal/engine"
	"weakmodels/internal/fault"
	"weakmodels/internal/schedule"
)

// playSchedule serves recorded schedule decisions.
type playSchedule struct {
	rec   *Recording
	start int // first record index with step > the resume step
	cur   int
}

func newPlaySchedule(rec *Recording, fromStep int) *playSchedule {
	p := &playSchedule{rec: rec}
	for p.start < len(rec.scheds) && rec.scheds[p.start].step <= fromStep {
		p.start++
	}
	return p
}

func (p *playSchedule) Name() string { return "replay" }

func (p *playSchedule) Begin(n, links int) { p.cur = p.start }

func (p *playSchedule) Step(t int, _ schedule.View, dec *schedule.Decision) {
	if p.cur >= len(p.rec.scheds) {
		failReplay("schedule stream exhausted at step %d", t)
	}
	s := &p.rec.scheds[p.cur]
	if s.step != t {
		failReplay("schedule stream at step %d, engine at step %d", s.step, t)
	}
	p.cur++
	dec.ActivateAll, dec.DeliverAll = s.activateAll, s.deliverAll
	if !s.activateAll {
		if len(s.activate) != len(dec.Activate) {
			failReplay("step %d activation mask covers %d nodes, run has %d", t, len(s.activate), len(dec.Activate))
		}
		copy(dec.Activate, s.activate)
	}
	if !s.deliverAll {
		if len(s.deliver) != len(dec.Deliver) {
			failReplay("step %d delivery counts cover %d links, run has %d", t, len(s.deliver), len(dec.Deliver))
		}
		copy(dec.Deliver, s.deliver)
	}
}

// playPlan serves recorded fault decisions, delivery fates, rewrites,
// settledness verdicts and heal counts.
type playPlan struct {
	rec *Recording

	startPlan, startFate, startSettled int
	initHealed                         int64

	planCur    int
	fateCur    int // index into rec.fates
	fateIdx    int // next fate within rec.fates[fateCur]
	rewriteIdx int // next rewrite within rec.fates[fateCur]
	settledCur int
	healed     int64
}

func newPlayPlan(rec *Recording, fromStep int, from *engine.Snapshot) fault.Plan {
	p := &playPlan{rec: rec}
	if from != nil {
		p.initHealed = from.Healed
	}
	for p.startPlan < len(rec.plans) && rec.plans[p.startPlan].step <= fromStep {
		p.startPlan++
	}
	for p.startFate < len(rec.fates) && rec.fates[p.startFate].step <= fromStep {
		p.startFate++
	}
	for p.startSettled < len(rec.settled) && rec.settled[p.startSettled].step <= fromStep {
		p.startSettled++
	}
	if rec.Corrupts {
		return &playCorrupter{*p}
	}
	return p
}

func (p *playPlan) Name() string { return "replay" }

func (p *playPlan) Begin(fault.Topology) {
	p.planCur, p.fateCur, p.settledCur = p.startPlan, p.startFate, p.startSettled
	p.fateIdx, p.rewriteIdx = 0, 0
	p.healed = p.initHealed
}

func (p *playPlan) Step(t int, _ fault.View, dec *fault.Decision) {
	if p.planCur >= len(p.rec.plans) {
		failReplay("fault-plan stream exhausted at step %d", t)
	}
	s := &p.rec.plans[p.planCur]
	if s.step != t {
		failReplay("fault-plan stream at step %d, engine at step %d", s.step, t)
	}
	p.planCur++
	if len(s.crash) != len(dec.Crash) || len(s.resend) != len(dec.Resend) {
		failReplay("step %d fault decision is for %d nodes/%d links, run has %d/%d",
			t, len(s.crash), len(s.resend), len(dec.Crash), len(dec.Resend))
	}
	copy(dec.Crash, s.crash)
	copy(dec.Recover, s.recover)
	copy(dec.Resend, s.resend)
	p.healed = s.healed
}

func (p *playPlan) Filter(t, link int) fault.Fate {
	for p.fateCur < len(p.rec.fates) && p.fateIdx >= len(p.rec.fates[p.fateCur].fates) {
		p.fateCur++
		p.fateIdx, p.rewriteIdx = 0, 0
	}
	if p.fateCur >= len(p.rec.fates) || p.rec.fates[p.fateCur].step != t {
		failReplay("fate stream has no fate for step %d link %d", t, link)
	}
	f := p.rec.fates[p.fateCur].fates[p.fateIdx]
	p.fateIdx++
	return f
}

func (p *playPlan) Settled() bool {
	if p.settledCur >= len(p.rec.settled) {
		failReplay("settled stream exhausted")
	}
	ok := p.rec.settled[p.settledCur].ok
	p.settledCur++
	return ok
}

func (p *playPlan) Healed() int64 { return p.healed }

// playCorrupter is the player for recordings whose plan could corrupt.
type playCorrupter struct{ playPlan }

func (p *playCorrupter) Corrupt(t, link int, _ string) string {
	if p.fateCur >= len(p.rec.fates) || p.rec.fates[p.fateCur].step != t ||
		p.rewriteIdx >= len(p.rec.fates[p.fateCur].rewrites) {
		failReplay("rewrite stream has no rewrite for step %d link %d", t, link)
	}
	msg := p.rec.fates[p.fateCur].rewrites[p.rewriteIdx]
	p.rewriteIdx++
	return msg
}
