package replay

// bisect_test.go pins divergence bisection on a machine built so that the
// first fault IS the first divergence: an m0 counter, whose state counts
// the silent (m0) deliveries it has seen. Fault-free, no node ever halts
// and every delivery is real, so the trajectory is constantly zero; every
// dropped message permanently bumps the receiver off it (the count is
// monotone — the divergence-persists assumption holds exactly). That makes
// the journal an independent oracle: the first divergent (step, node) must
// be the first KindDrop event's step and the lowest-id receiver dropped at
// that step.

import (
	"testing"

	"weakmodels/internal/engine"
	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// m0Counter counts m0 inbox entries and broadcasts a constant.
func m0Counter(delta int) machine.Machine {
	return &machine.Func{
		MachineName:  "m0-counter",
		MachineClass: machine.ClassMB,
		MaxDeg:       delta,
		InitFunc:     func(int) machine.State { return 0 },
		HaltedFunc:   func(machine.State) (machine.Output, bool) { return "", false },
		SendFunc:     func(machine.State, int) machine.Message { return "x" },
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			count := s.(int)
			for _, m := range inbox {
				if m == machine.NoMessage {
					count++
				}
			}
			return count
		},
	}
}

func TestBisectDivergence(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := m0Counter(g.MaxDegree())

	ref, err := engine.Run(m, p, engine.Options{
		Executor:    engine.ExecutorAsync,
		Schedule:    schedule.Synchronous(),
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	sched, err := schedule.Parse("random:0.3", 77)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("drop:0.3,5,40", 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := engine.Options{
		MaxRounds:   200_000,
		Executor:    engine.ExecutorAsync,
		Schedule:    sched,
		Fault:       plan,
		RecordTrace: true,
	}
	ropts, recorder, err := New(opts, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(m, p, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if err := recorder.Finish(res); err != nil {
		t.Fatal(err)
	}
	if res.Drops == 0 {
		t.Fatalf("drop plan dropped nothing: %+v", res)
	}
	rec := recorder.Recording()

	div, err := BisectDivergence(m, p, rec, ref.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("no divergence found in a run with drops")
	}

	// Independent oracle: the reference trajectory is identically zero, so
	// the first divergence is exactly the first nonzero count in the
	// recorded run's own trace (at the lowest node id). A drop enters the
	// mail queue at its journal step but only reaches the state when the
	// receiver next fires, so the trace — not the drop event — is the
	// ground truth.
	wantStep, wantNode := -1, -1
	for ti := 1; ti < len(res.Trace) && wantStep == -1; ti++ {
		for v, s := range res.Trace[ti] {
			if s.(int) != 0 {
				wantStep, wantNode = ti, v
				break
			}
		}
	}
	if div.Step != wantStep || div.Node != wantNode {
		t.Fatalf("bisected to (step %d, node %d), trace says first nonzero count is (step %d, node %d)",
			div.Step, div.Node, wantStep, wantNode)
	}
	if div.Ref != "0" || div.Got == "0" {
		t.Fatalf("divergence states: ref %q got %q, want ref 0 and got nonzero", div.Ref, div.Got)
	}

	// The snapshot bisection agrees exactly with a brute-force full scan
	// (a recording stripped of snapshots replays from step 0).
	flat := *rec
	flat.snaps = nil
	full, err := BisectDivergence(m, p, &flat, ref.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if full == nil || *full != *div {
		t.Fatalf("bisection %+v disagrees with full scan %+v", div, full)
	}

	// A fault-free recorded run never leaves the trajectory: bisection
	// reports nothing.
	cleanOpts := engine.Options{
		MaxRounds: 200_000,
		Executor:  engine.ExecutorAsync,
		Schedule:  mustParse(t, "random:0.3", 77),
	}
	ropts, recorder, err = New(cleanOpts, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := engine.Run(m, p, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if err := recorder.Finish(cleanRes); err != nil {
		t.Fatal(err)
	}
	if div, err := BisectDivergence(m, p, recorder.Recording(), ref.Trace); err != nil {
		t.Fatal(err)
	} else if div != nil {
		t.Fatalf("fault-free run reported divergent: %+v", div)
	}
}

func mustParse(t *testing.T, spec string, seed int64) schedule.Schedule {
	t.Helper()
	s, err := schedule.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
