package replay

// replay_test.go pins the flight-recorder contract: a recorded hostile run
// replays byte-exactly — Result, trace, journal — from step 0 and from any
// snapshot, across worker counts and GOMAXPROCS; the WRPLAY01 file format
// round-trips and tolerates kill-truncated tails; and divergence bisection
// names the exact first off-trajectory (step, node), cross-checked against
// a full scan and against the journal's own fault events.

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/engine"
	"weakmodels/internal/fault"
	"weakmodels/internal/graph"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
	"weakmodels/internal/schedule"
)

// hostileOpts mirrors the engine package's hostile cell: byzantine
// corruption, healing partition, crash/recovery and retransmission on a
// random schedule.
func hostileOpts(t testing.TB, workers int) engine.Options {
	t.Helper()
	sched, err := schedule.Parse("random:0.3", 77)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("byzantine:0.2,45,200+partition:3,46,200+crash:1,47,200+retransmit:1,48,200", 1)
	if err != nil {
		t.Fatal(err)
	}
	return engine.Options{
		MaxRounds: 200_000,
		Executor:  engine.ExecutorAsync,
		Workers:   workers,
		Schedule:  sched,
		Fault:     plan,
	}
}

func jsonl(events []obs.Event) []byte {
	var b []byte
	for _, e := range events {
		b = obs.AppendJSONL(b, e)
	}
	return b
}

func journalAfter(events []obs.Event, step int) []byte {
	var tail []obs.Event
	for _, e := range events {
		if e.Step > int64(step) {
			tail = append(tail, e)
		}
	}
	return jsonl(tail)
}

// recordHostile records one hostile run (in-memory or streamed to w) and
// returns the recording plus the recorded run's result, trace and journal.
func recordHostile(t testing.TB, w *bytes.Buffer) (*Recording, *engine.Result, []obs.Event) {
	t.Helper()
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())

	opts := hostileOpts(t, 1)
	opts.RecordTrace = true
	var events obs.Collect
	opts.Obs = &obs.Obs{Sink: &events}
	var out io.Writer
	if w != nil {
		out = w
	}
	ropts, rec, err := New(opts, 8, out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(m, p, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Finish(res); err != nil {
		t.Fatal(err)
	}
	if res.Corruptions == 0 || res.Crashes == 0 || res.Retransmits == 0 || res.Healed == 0 {
		t.Fatalf("hostile cell too quiet: %+v", res)
	}
	if len(rec.Recording().Snapshots()) < 3 {
		t.Fatalf("only %d snapshots over %d steps", len(rec.Recording().Snapshots()), res.Rounds)
	}
	return rec.Recording(), res, events.Events
}

// checkReplay replays rec from `from` and asserts byte-exactness against
// the recorded run.
func checkReplay(t *testing.T, label string, rec *Recording, ref *engine.Result, refEvents []obs.Event, from *engine.Snapshot, workers int) {
	t.Helper()
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())

	var events obs.Collect
	res, err := rec.Replay(m, p, engine.Options{
		Workers:     workers,
		RecordTrace: true,
		Obs:         &obs.Obs{Sink: &events},
	}, from)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	fromStep := 0
	if from != nil {
		fromStep = from.Step
	}
	got, want := *res, *ref
	got.Shards = ref.Shards
	gotTrace := got.Trace
	got.Trace, want.Trace = nil, nil
	if !reflect.DeepEqual(&want, &got) {
		t.Fatalf("%s: replayed Result diverged\nref: %+v\ngot: %+v", label, want, got)
	}
	if !reflect.DeepEqual(ref.Trace[fromStep:], gotTrace) {
		t.Fatalf("%s: replayed trace is not the recorded tail", label)
	}
	if wantJ, gotJ := journalAfter(refEvents, fromStep), jsonl(events.Events); !bytes.Equal(wantJ, gotJ) {
		t.Fatalf("%s: replayed journal is not the recorded suffix (%d vs %d bytes)",
			label, len(gotJ), len(wantJ))
	}
}

// TestRecordedRunUnperturbed: wrapping a run in a Recorder does not change
// the run — the recorded result, trace and journal are bit-identical to
// the unwrapped run's.
func TestRecordedRunUnperturbed(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())

	opts := hostileOpts(t, 1)
	opts.RecordTrace = true
	var plainEvents obs.Collect
	opts.Obs = &obs.Obs{Sink: &plainEvents}
	plain, err := engine.Run(m, p, opts)
	if err != nil {
		t.Fatal(err)
	}

	_, ref, refEvents := recordHostile(t, nil)
	if !reflect.DeepEqual(plain, ref) {
		t.Fatalf("recording perturbed the run\nplain: %+v\nrec:   %+v", plain, ref)
	}
	if !bytes.Equal(jsonl(plainEvents.Events), jsonl(refEvents)) {
		t.Fatal("recording perturbed the journal")
	}
}

// TestReplayByteExactHostile is the tentpole property: the recorded
// hostile run replays byte-exactly from step 0 and from every snapshot,
// and a middle snapshot replays identically across GOMAXPROCS {1,4} ×
// workers {1,4}.
func TestReplayByteExactHostile(t *testing.T) {
	rec, ref, refEvents := recordHostile(t, nil)
	if rec.FinalStep != ref.Rounds {
		t.Fatalf("FinalStep %d, run ended at %d", rec.FinalStep, ref.Rounds)
	}

	for _, workers := range []int{1, 4} {
		checkReplay(t, fmt.Sprintf("from-0 workers=%d", workers), rec, ref, refEvents, nil, workers)
	}
	for _, snap := range rec.Snapshots() {
		checkReplay(t, fmt.Sprintf("snapshot@%d", snap.Step), rec, ref, refEvents, snap, 1)
	}

	snaps := rec.Snapshots()
	mid := snaps[len(snaps)/2]
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 4} {
			checkReplay(t, fmt.Sprintf("snapshot@%d procs=%d workers=%d", mid.Step, procs, workers),
				rec, ref, refEvents, mid, workers)
		}
	}
}

// TestReplaySaveLoadRoundTrip: the streamed WRPLAY01 file, the after-the-
// fact Save output and the in-memory recording all decode to the same
// recording, and the loaded recording replays byte-exactly.
func TestReplaySaveLoadRoundTrip(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())

	var streamed bytes.Buffer
	rec, ref, refEvents := recordHostile(t, &streamed)

	var saved bytes.Buffer
	if err := rec.Save(&saved); err != nil {
		t.Fatal(err)
	}
	fromStream, err := Load(bytes.NewReader(streamed.Bytes()), m, p)
	if err != nil {
		t.Fatalf("load streamed: %v", err)
	}
	fromSave, err := Load(bytes.NewReader(saved.Bytes()), m, p)
	if err != nil {
		t.Fatalf("load saved: %v", err)
	}
	for label, got := range map[string]*Recording{"streamed": fromStream, "saved": fromSave} {
		if !reflect.DeepEqual(rec, got) {
			t.Fatalf("%s recording differs from the in-memory one", label)
		}
	}

	checkReplay(t, "loaded from-0", fromStream, ref, refEvents, nil, 1)
	snaps := fromStream.Snapshots()
	checkReplay(t, "loaded from snapshot", fromStream, ref, refEvents, snaps[len(snaps)/2], 4)
}

// TestLoadKillTolerance: a stream truncated mid-record (the recording
// process was killed) still loads as a usable prefix; only the end record
// makes it replayable.
func TestLoadKillTolerance(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())

	var streamed bytes.Buffer
	full, _, _ := recordHostile(t, &streamed)
	data := streamed.Bytes()

	for _, cut := range []int{len(data) - 1, len(data) / 2, len(data) / 3} {
		rec, err := Load(bytes.NewReader(data[:cut]), m, p)
		if err != nil {
			t.Fatalf("cut at %d/%d: %v", cut, len(data), err)
		}
		if rec.FinalStep != 0 {
			t.Fatalf("cut at %d: truncated recording claims FinalStep %d", cut, rec.FinalStep)
		}
		if len(rec.Snapshots()) > len(full.Snapshots()) {
			t.Fatalf("cut at %d: more snapshots than the full recording", cut)
		}
		if _, err := rec.Replay(m, p, engine.Options{}, nil); err == nil {
			t.Fatalf("cut at %d: truncated recording replayed", cut)
		}
	}

	if _, err := Load(bytes.NewReader(data[:4]), m, p); err == nil {
		t.Error("partial magic accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("NOTAPLAY")), m, p); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Load(bytes.NewReader(data[:len(replayMagic)]), m, p); err == nil {
		t.Error("recording with no begin record accepted")
	}
}

// TestReplayValidation: malformed recorder/replay configurations and
// tampered recordings fail with errors, not panics or silent divergence.
func TestReplayValidation(t *testing.T) {
	g := graph.Torus(4, 4)
	p := port.Canonical(g)
	m := algorithms.MaxConsensus(g.MaxDegree())

	if _, _, err := New(hostileOpts(t, 1), 0, nil); err == nil {
		t.Error("cadence 0 accepted")
	}
	bad := hostileOpts(t, 1)
	bad.Checkpoint = &engine.CheckpointOptions{Every: 4, Sink: func(*engine.Snapshot) error { return nil }}
	if _, _, err := New(bad, 8, nil); err == nil {
		t.Error("pre-set Checkpoint accepted")
	}

	rec, _, _ := recordHostile(t, nil)
	if _, err := rec.Replay(m, p, engine.Options{MaxRounds: 5}, nil); err == nil {
		t.Error("base MaxRounds accepted")
	}
	if _, err := rec.Replay(m, p, engine.Options{Fault: fault.CrashAt(0, 1, 1, fault.RecoverReset)}, nil); err == nil {
		t.Error("base Fault accepted")
	}
	unfinished := &Recording{}
	if _, err := unfinished.Replay(m, p, engine.Options{}, nil); err == nil {
		t.Error("unfinished recording replayed")
	}

	// A tampered decision stream is detected as divergence, not obeyed.
	tampered := *rec
	tampered.scheds = append([]schedStep(nil), rec.scheds...)
	tampered.scheds = tampered.scheds[:len(tampered.scheds)/2]
	if _, err := tampered.Replay(m, p, engine.Options{}, nil); err == nil {
		t.Error("truncated schedule stream replayed cleanly")
	}
}
