package replay

// codec.go is the WRPLAY01 binary format: an 8-byte magic followed by
// self-framing records — tag byte, uvarint payload length, payload — in
// chronological order. The framing makes the stream kill-tolerant: Load
// accepts a truncated tail (the process died mid-run) and returns the
// intact prefix, which still carries every completed snapshot; only the
// end record, written by Finish, marks a recording replayable end to end.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"weakmodels/internal/enc"
	"weakmodels/internal/engine"
	"weakmodels/internal/fault"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

// replayMagic identifies the format and its version.
const replayMagic = "WRPLAY01"

// Record tags.
const (
	recBegin   byte = 1 // run shape: sync, hasPlan, corrupts
	recSched   byte = 2 // one schedule decision
	recPlanDec byte = 3 // one fault-plan decision + healed count
	recFates   byte = 4 // one step's delivery fates + rewrites
	recSettled byte = 5 // one Settled verdict
	recSnap    byte = 6 // one engine snapshot (engine binary form)
	recEnd     byte = 7 // final step + fixpoint flag; seals the recording
)

// recordWriter frames records onto a writer with a sticky error.
type recordWriter struct {
	w   io.Writer
	buf []byte
	err error
}

func (rw *recordWriter) emit(tag byte, payload []byte) {
	if rw.err != nil {
		return
	}
	rw.buf = append(rw.buf[:0], tag)
	rw.buf = enc.Uvarint(rw.buf, uint64(len(payload)))
	rw.buf = append(rw.buf, payload...)
	_, rw.err = rw.w.Write(rw.buf)
}

// Bit-packed bool slices: uvarint count, then ⌈count/8⌉ bytes, LSB first.
func packBools(b []byte, v []bool) []byte {
	b = enc.Uvarint(b, uint64(len(v)))
	var acc byte
	for i, x := range v {
		if x {
			acc |= 1 << (i % 8)
		}
		if i%8 == 7 {
			b = append(b, acc)
			acc = 0
		}
	}
	if len(v)%8 != 0 {
		b = append(b, acc)
	}
	return b
}

func unpackBools(rd *enc.Reader) ([]bool, error) {
	k := int(rd.Uvarint())
	if rd.Err() != nil || k == 0 {
		return nil, rd.Err()
	}
	if (k+7)/8 > rd.Len() {
		return nil, fmt.Errorf("replay: %d-bool mask with %d bytes left", k, rd.Len())
	}
	v := make([]bool, k)
	var acc byte
	for i := range v {
		if i%8 == 0 {
			acc = rd.Byte()
		}
		v[i] = acc&(1<<(i%8)) != 0
	}
	return v, rd.Err()
}

func encodeBegin(rec *Recording) []byte {
	var b []byte
	b = enc.Bool(b, rec.Sync)
	b = enc.Bool(b, rec.HasPlan)
	b = enc.Bool(b, rec.Corrupts)
	return b
}

func encodeSched(s *schedStep) []byte {
	var b []byte
	b = enc.Varint(b, int64(s.step))
	b = enc.Bool(b, s.activateAll)
	b = enc.Bool(b, s.deliverAll)
	if !s.activateAll {
		b = packBools(b, s.activate)
	}
	if !s.deliverAll {
		b = enc.Uvarint(b, uint64(len(s.deliver)))
		for _, d := range s.deliver {
			b = enc.Varint(b, int64(d))
		}
	}
	return b
}

func decodeSched(rd *enc.Reader) (schedStep, error) {
	var s schedStep
	s.step = int(rd.Varint())
	s.activateAll = rd.Bool()
	s.deliverAll = rd.Bool()
	if rd.Err() == nil && !s.activateAll {
		var err error
		if s.activate, err = unpackBools(rd); err != nil {
			return s, err
		}
	}
	if rd.Err() == nil && !s.deliverAll {
		k := int(rd.Uvarint())
		if rd.Err() == nil && k > rd.Len() {
			return s, fmt.Errorf("replay: schedule record claims %d links, %d bytes left", k, rd.Len())
		}
		if rd.Err() == nil && k > 0 {
			s.deliver = make([]int32, k)
			for i := range s.deliver {
				s.deliver[i] = int32(rd.Varint())
			}
		}
	}
	return s, rd.Err()
}

func encodePlan(s *planStep) []byte {
	var b []byte
	b = enc.Varint(b, int64(s.step))
	b = packBools(b, s.crash)
	b = enc.Uvarint(b, uint64(len(s.recover)))
	for _, k := range s.recover {
		b = append(b, byte(k))
	}
	b = packBools(b, s.resend)
	b = enc.Varint(b, s.healed)
	return b
}

func decodePlan(rd *enc.Reader) (planStep, error) {
	var s planStep
	var err error
	s.step = int(rd.Varint())
	if s.crash, err = unpackBools(rd); err != nil {
		return s, err
	}
	k := int(rd.Uvarint())
	if rd.Err() == nil && k > rd.Len() {
		return s, fmt.Errorf("replay: plan record claims %d recover kinds, %d bytes left", k, rd.Len())
	}
	if rd.Err() == nil && k > 0 {
		s.recover = make([]fault.RecoverKind, k)
		for i := range s.recover {
			s.recover[i] = fault.RecoverKind(rd.Byte())
		}
	}
	if s.resend, err = unpackBools(rd); err != nil {
		return s, err
	}
	s.healed = rd.Varint()
	return s, rd.Err()
}

func encodeFates(s *fateStep) []byte {
	var b []byte
	b = enc.Varint(b, int64(s.step))
	b = enc.Uvarint(b, uint64(len(s.fates)))
	for _, f := range s.fates {
		b = append(b, byte(f))
	}
	b = enc.Uvarint(b, uint64(len(s.rewrites)))
	for _, m := range s.rewrites {
		b = enc.String(b, m)
	}
	return b
}

func decodeFates(rd *enc.Reader) (fateStep, error) {
	var s fateStep
	s.step = int(rd.Varint())
	k := int(rd.Uvarint())
	if rd.Err() == nil && k > rd.Len() {
		return s, fmt.Errorf("replay: fate record claims %d fates, %d bytes left", k, rd.Len())
	}
	if rd.Err() == nil && k > 0 {
		s.fates = make([]fault.Fate, k)
		for i := range s.fates {
			s.fates[i] = fault.Fate(rd.Byte())
		}
	}
	k = int(rd.Uvarint())
	if rd.Err() == nil && k > rd.Len() {
		return s, fmt.Errorf("replay: fate record claims %d rewrites, %d bytes left", k, rd.Len())
	}
	if rd.Err() == nil && k > 0 {
		s.rewrites = make([]string, k)
		for i := range s.rewrites {
			s.rewrites[i] = rd.String()
		}
	}
	return s, rd.Err()
}

func encodeSettled(s settledStep) []byte {
	var b []byte
	b = enc.Varint(b, int64(s.step))
	b = enc.Bool(b, s.ok)
	return b
}

func encodeEnd(rec *Recording) []byte {
	var b []byte
	b = enc.Varint(b, int64(rec.FinalStep))
	b = enc.Bool(b, rec.Fixpoint)
	return b
}

// Load decodes a WRPLAY01 recording. The machine and numbering decode the
// embedded snapshots (the machine supplies the gob state template) and
// must be the ones the run was recorded with. A truncated tail — the
// recording process was killed mid-run — is not an error: Load returns
// the intact prefix, with FinalStep 0 when the end record is missing.
func Load(r io.Reader, m machine.Machine, p *port.Numbering) (*Recording, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(replayMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("replay: read header: %w", err)
	}
	if string(magic) != replayMagic {
		return nil, fmt.Errorf("replay: bad magic %q, want %q", magic, replayMagic)
	}
	rec := &Recording{}
	sawBegin := false
	for {
		tag, err := br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("replay: read record tag: %w", err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			break // truncated frame header: keep the prefix
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			break // truncated payload: keep the prefix
		}
		rd := enc.NewReader(payload)
		switch tag {
		case recBegin:
			rec.Sync = rd.Bool()
			rec.HasPlan = rd.Bool()
			rec.Corrupts = rd.Bool()
			sawBegin = true
			err = rd.Err()
		case recSched:
			var s schedStep
			if s, err = decodeSched(rd); err == nil {
				rec.scheds = append(rec.scheds, s)
			}
		case recPlanDec:
			var s planStep
			if s, err = decodePlan(rd); err == nil {
				rec.plans = append(rec.plans, s)
			}
		case recFates:
			var s fateStep
			if s, err = decodeFates(rd); err == nil {
				rec.fates = append(rec.fates, s)
			}
		case recSettled:
			s := settledStep{step: int(rd.Varint()), ok: rd.Bool()}
			if err = rd.Err(); err == nil {
				rec.settled = append(rec.settled, s)
			}
		case recSnap:
			var snap *engine.Snapshot
			if snap, err = engine.UnmarshalSnapshot(payload, m, p); err == nil {
				rec.snaps = append(rec.snaps, snap)
			}
		case recEnd:
			rec.FinalStep = int(rd.Varint())
			rec.Fixpoint = rd.Bool()
			err = rd.Err()
		default:
			return nil, fmt.Errorf("replay: unknown record tag %d", tag)
		}
		if err != nil {
			return nil, fmt.Errorf("replay: decode record tag %d: %w", tag, err)
		}
	}
	if !sawBegin {
		return nil, fmt.Errorf("replay: recording has no begin record")
	}
	return rec, nil
}
