package schedule

import (
	"fmt"
	"math"
	"math/rand"

	"weakmodels/internal/enc"
	"weakmodels/internal/xrand"
)

// Synchronous returns the schedule of the paper's Section 1.3 semantics:
// every in-flight message is delivered and every node is activated at every
// step. Under it the async executor degenerates to one global round per
// step and is bit-identical to the sequential executor.
func Synchronous() Schedule { return synchronous{} }

type synchronous struct{}

func (synchronous) Name() string           { return "sync" }
func (synchronous) Begin(nodes, links int) {}
func (synchronous) Dilation(nodes int) int { return 1 }

func (synchronous) Step(t int, view View, dec *Decision) {
	dec.ActivateAll = true
	dec.DeliverAll = true
}

// RoundRobin returns the schedule that delivers every message immediately
// but activates exactly one node per step, cycling 0,1,…,n-1,0,… — the
// classic central daemon. A full cycle of n steps fires every node once,
// so a T-round synchronous algorithm halts within n·T steps.
func RoundRobin() Schedule { return &roundRobin{} }

type roundRobin struct{ nodes int }

func (r *roundRobin) Name() string           { return "roundrobin" }
func (r *roundRobin) Begin(nodes, links int) { r.nodes = nodes }
func (r *roundRobin) Dilation(nodes int) int { return nodes }

func (r *roundRobin) Step(t int, view View, dec *Decision) {
	dec.DeliverAll = true
	if r.nodes > 0 {
		dec.Activate[(t-1)%r.nodes] = true
	}
}

// RandomSubset returns the seeded schedule that, at every step, activates
// each node independently with probability p and flushes each link's
// in-flight queue independently with probability p. It is fair with
// probability 1 (every coin keeps being retossed); p is clamped to
// [0.05, 1] so a run cannot be starved outright.
func RandomSubset(seed int64, p float64) Schedule {
	if p < 0.05 {
		p = 0.05
	}
	if p > 1 {
		p = 1
	}
	return &randomSubset{seed: seed, p: p}
}

type randomSubset struct {
	seed int64
	p    float64
	src  *xrand.Source
	rng  *rand.Rand
}

func (r *randomSubset) Name() string { return fmt.Sprintf("random:%g", r.p) }

// Dilation: a round completes once every node has had its links flushed
// and then been activated — two successive geometric(p) waits, and the
// round waits for the slowest of n nodes, whose maximum concentrates
// around (ln n)/p. (2/p)·(ln n + 4) bounds the measured worst case with
// ample headroom (TestScheduleDilationBoundsMeasuredSteps); being a
// probabilistic schedule it has no hard worst case, so this is a
// high-probability tail bound, which is what budget scaling needs.
func (r *randomSubset) Dilation(nodes int) int {
	return int((2/r.p)*(math.Log(float64(nodes)+1)+4)) + 1
}

func (r *randomSubset) Begin(nodes, links int) {
	r.src = xrand.NewSource(r.seed)
	r.rng = rand.New(r.src)
}

func (r *randomSubset) SnapshotState() []byte {
	return enc.Varint(nil, r.src.Cursor())
}

func (r *randomSubset) RestoreState(b []byte) error {
	rd := enc.NewReader(b)
	cursor := rd.Varint()
	if err := rd.Close(); err != nil {
		return fmt.Errorf("random schedule state: %w", err)
	}
	r.src.SeekTo(cursor)
	return nil
}

func (r *randomSubset) Step(t int, view View, dec *Decision) {
	for v := 0; v < view.Nodes(); v++ {
		dec.Activate[v] = r.rng.Float64() < r.p
	}
	for l := 0; l < view.Links(); l++ {
		if r.rng.Float64() < r.p {
			dec.Deliver[l] = int32(view.InFlight(l))
		}
	}
}

// BoundedStaleness returns the seeded schedule that delivers every message
// immediately and activates a random subset of nodes under a hard lag cap:
// no node's fire count may exceed the slowest node's by more than k, and
// the slowest nodes are always activated. The cap is the bounded-staleness
// contract of asynchronous iteration schemes: every node computes state
// x_j for some j within k of every other node's.
func BoundedStaleness(seed int64, k int) Schedule {
	if k < 1 {
		k = 1
	}
	return &boundedStaleness{seed: seed, k: k}
}

type boundedStaleness struct {
	seed int64
	k    int
	src  *xrand.Source
	rng  *rand.Rand
}

func (b *boundedStaleness) Name() string { return fmt.Sprintf("staleness:%d", b.k) }

// Dilation: delivery is immediate and the slowest nodes are activated at
// every step, so the minimum fire count advances every couple of steps.
func (b *boundedStaleness) Dilation(nodes int) int { return 2 }

func (b *boundedStaleness) Begin(nodes, links int) {
	b.src = xrand.NewSource(b.seed)
	b.rng = rand.New(b.src)
}

func (b *boundedStaleness) SnapshotState() []byte {
	return enc.Varint(nil, b.src.Cursor())
}

func (b *boundedStaleness) RestoreState(blob []byte) error {
	rd := enc.NewReader(blob)
	cursor := rd.Varint()
	if err := rd.Close(); err != nil {
		return fmt.Errorf("staleness schedule state: %w", err)
	}
	b.src.SeekTo(cursor)
	return nil
}

func (b *boundedStaleness) Step(t int, view View, dec *Decision) {
	dec.DeliverAll = true
	n := view.Nodes()
	if n == 0 {
		return
	}
	min := view.Fires(0)
	for v := 1; v < n; v++ {
		if f := view.Fires(v); f < min {
			min = f
		}
	}
	for v := 0; v < n; v++ {
		f := view.Fires(v)
		if f >= min+int64(b.k) {
			continue // at the staleness cap: frozen until the slowest catch up
		}
		dec.Activate[v] = f == min || b.rng.Float64() < 0.5
	}
}

// Adversary returns the seeded worst-case-delay schedule within a fairness
// bound f: each link gets a fixed secret delay d_l ∈ [1,f] and releases its
// queue only when its oldest message has aged d_l steps; each node gets a
// secret activation period p_v ∈ [1,f] and is activated only at steps
// t ≡ φ_v (mod p_v). Every message is thus delivered within f steps of
// falling due and every node activated at least every f steps — the
// fairness bound — while latencies stay maximally heterogeneous, which is
// what breaks algorithms that silently assume lock-step rounds.
func Adversary(seed int64, fair int) Schedule {
	if fair < 1 {
		fair = 1
	}
	return &adversary{seed: seed, fair: fair}
}

type adversary struct {
	seed   int64
	fair   int
	delay  []int32 // per-link delivery delay in [1,fair]
	period []int32 // per-node activation period in [1,fair]
	phase  []int32 // per-node activation phase in [0,period)
}

func (a *adversary) Name() string { return fmt.Sprintf("adversary:%d", a.fair) }

// Dilation: a message falls due within fair steps and its consumer is
// activated within another fair steps, so a round costs at most 2·fair.
func (a *adversary) Dilation(nodes int) int { return 2 * a.fair }

func (a *adversary) Begin(nodes, links int) {
	rng := rand.New(rand.NewSource(a.seed))
	a.delay = make([]int32, links)
	for l := range a.delay {
		a.delay[l] = 1 + int32(rng.Intn(a.fair))
	}
	a.period = make([]int32, nodes)
	a.phase = make([]int32, nodes)
	for v := range a.period {
		a.period[v] = 1 + int32(rng.Intn(a.fair))
		a.phase[v] = int32(rng.Intn(int(a.period[v])))
	}
}

func (a *adversary) Step(t int, view View, dec *Decision) {
	for v := 0; v < view.Nodes(); v++ {
		if int32(t)%a.period[v] == a.phase[v] {
			dec.Activate[v] = true
		}
	}
	for l := 0; l < view.Links(); l++ {
		if born := view.OldestBorn(l); born >= 0 && t-born >= int(a.delay[l]) {
			dec.Deliver[l] = int32(view.InFlight(l))
		}
	}
}
