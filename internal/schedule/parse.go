package schedule

import (
	"fmt"
	"strconv"
	"strings"
)

// ValidSpecs lists the -schedule spellings accepted by Parse, for error
// messages and usage strings.
const ValidSpecs = "sync | roundrobin | random:P | staleness:K | adversary:F"

// Parse builds a schedule from its textual specification. Supported forms:
//
//	sync | synchronous          — every node, every step (the default)
//	roundrobin | rr             — central daemon, one node per step
//	random:P                    — activate/deliver with probability P (default 0.5)
//	staleness:K                 — bounded staleness, lag cap K (default 2)
//	adversary:F                 — worst-case delays, fairness bound F (default 4)
//
// seed feeds the seeded generators; sync and roundrobin ignore it.
func Parse(s string, seed int64) (Schedule, error) {
	name, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, arg = s[:i], s[i+1:]
	}
	switch name {
	case "", "sync", "synchronous":
		return Synchronous(), nil
	case "roundrobin", "rr", "round-robin":
		return RoundRobin(), nil
	case "random":
		p := 0.5
		if arg != "" {
			var err error
			if p, err = strconv.ParseFloat(arg, 64); err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("schedule: bad probability %q in %q (want 0 < P ≤ 1)", arg, s)
			}
		}
		return RandomSubset(seed, p), nil
	case "staleness", "bounded-staleness":
		k := 2
		if arg != "" {
			var err error
			if k, err = strconv.Atoi(arg); err != nil || k < 1 {
				return nil, fmt.Errorf("schedule: bad lag cap %q in %q (want K ≥ 1)", arg, s)
			}
		}
		return BoundedStaleness(seed, k), nil
	case "adversary":
		f := 4
		if arg != "" {
			var err error
			if f, err = strconv.Atoi(arg); err != nil || f < 1 {
				return nil, fmt.Errorf("schedule: bad fairness bound %q in %q (want F ≥ 1)", arg, s)
			}
		}
		return Adversary(seed, f), nil
	default:
		return nil, fmt.Errorf("schedule: unknown schedule %q (want %s)", s, ValidSpecs)
	}
}

// UsesSeed reports whether the schedule's decisions depend on the seed
// passed to Parse — i.e. whether a -seed flag is meaningful with it.
func UsesSeed(s Schedule) bool {
	switch s.(type) {
	case *randomSubset, *boundedStaleness, *adversary:
		return true
	default:
		return false
	}
}
