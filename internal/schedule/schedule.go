// Package schedule defines asynchronous activation/delivery schedules for
// the engine's async executor. The paper's weak models (Section 1.3) are
// synchronous — every node steps at every round behind a global barrier —
// but their modal characterisations extend to asynchrony (Reiter,
// arXiv:1611.08554, characterises asynchronous distributed automata by the
// modal μ-fragment). A Schedule makes the adversary explicit: at every step
// it decides which nodes are activated and which in-flight messages are
// delivered, turning "the network" into a first-class, seedable object that
// any experiment can be re-run under.
//
// The executor semantics (internal/engine, ExecutorAsync) are Kahn-style:
// every directed link carries a FIFO queue, and an activated node fires
// only when it holds at least one delivered message on every in-port,
// consuming exactly one per port. Because the machine is deterministic and
// consumption is one-per-port, the k-th firing of a node computes exactly
// the synchronous state x_k regardless of the schedule — schedules change
// interleaving and latency, never the trajectory. Under any fair schedule a
// halting algorithm therefore reaches the synchronous outputs, and under
// Synchronous the async executor is bit-identical to the sequential one.
//
// Schedules control when; whether is the next layer up. A fault.Plan
// (internal/fault, Options.Fault) filters the deliveries a schedule
// decides on — dropping a message delivers m0 in its place, so the
// one-entry-per-emission discipline above survives omission faults — and
// masks the activations of crashed nodes. The two layers compose: any
// (schedule, plan) pair is a reproducible adversary.
package schedule

// View is the read-only feedback a Schedule may consult when deciding a
// step. It is implemented by the engine over its live run state — state
// that the engine's sharded executors also hand to worker goroutines — so
// a View is only valid inside the Step call it was passed to, where the
// engine guarantees the run is quiescent (every worker parked at a
// barrier). Schedules must treat it as strictly read-only and must not
// retain it across steps; under that contract the same View is safely
// shareable between the scheduler and the workers, and the sharded
// executor stays bit-identical to the single-threaded one.
type View interface {
	// Nodes returns the node count of the run.
	Nodes() int
	// Links returns the number of directed links (= ports of the graph).
	Links() int
	// Fires returns how many times node v has fired (consumed its frontier).
	Fires(v int) int64
	// Halted reports whether node v has halted. Halted nodes still fire, to
	// drain their queues and feed m0 to their neighbours.
	Halted(v int) bool
	// InFlight returns the number of sent-but-undelivered messages on link l.
	InFlight(l int) int
	// OldestBorn returns the step at which the oldest in-flight message on
	// link l was sent, or -1 when the link is empty.
	OldestBorn(l int) int
}

// Decision is the engine-owned buffer a Schedule fills at each step. The
// engine resets it before every Step call and clamps all requests to what
// is actually possible (activating a node without a full frontier is a
// no-op; delivering more messages than are in flight delivers them all).
type Decision struct {
	// ActivateAll activates every node, ignoring Activate.
	ActivateAll bool
	// Activate[v] requests an activation of node v this step.
	Activate []bool
	// DeliverAll delivers every in-flight message, ignoring Deliver.
	DeliverAll bool
	// Deliver[l] is the number of oldest in-flight messages to deliver on
	// link l this step.
	Deliver []int32
}

// NewDecision allocates a Decision sized for a run.
func NewDecision(nodes, links int) *Decision {
	return &Decision{
		Activate: make([]bool, nodes),
		Deliver:  make([]int32, links),
	}
}

// Reset clears the decision for the next step.
func (d *Decision) Reset() {
	d.ActivateAll, d.DeliverAll = false, false
	clear(d.Activate)
	clear(d.Deliver)
}

// Dilated is an optional Schedule extension reporting how many schedule
// steps it takes, in the worst case, to simulate one synchronous round on
// an n-node run (e.g. 1 for Synchronous, n for RoundRobin, which activates
// a single node per step). The engine multiplies its default round budget
// by this factor for async runs so that slow-but-fair schedules do not
// spuriously exhaust the budget; an explicit MaxRounds is never scaled.
// Schedules that do not implement it are assumed to dilate by n.
type Dilated interface {
	Dilation(nodes int) int
}

// Resumable is the optional extension implemented by schedules — and, by
// the same shape, by fault plans — whose mid-run mutable state (RNG
// cursors, pending events, observations of the run so far) cannot be
// reconstructed by Begin alone. The engine snapshots that state into its
// checkpoints and restores it on resume, so a resumed run draws the
// exact randomness the uninterrupted run would have drawn. Generators
// that are stateless after Begin (Synchronous, RoundRobin, Adversary)
// deliberately do not implement it: re-running Begin reproduces them.
//
// RestoreState is only called after Begin with the topology the state
// was captured under; the blob format is private to each generator and
// versioned only by the snapshot that carries it.
type Resumable interface {
	// SnapshotState serializes the generator's mid-run mutable state.
	SnapshotState() []byte
	// RestoreState restores state captured by SnapshotState.
	RestoreState(b []byte) error
}

// Schedule decides, per step, which nodes are activated and which in-flight
// messages are delivered. Implementations are deterministic: the same
// (schedule spec, seed) pair replays the same decisions, which is what
// makes adversarial runs reproducible and bisectable. A Schedule is
// stateful within a run and must be fully reset by Begin; it must not be
// shared between concurrent runs.
type Schedule interface {
	// Name returns the canonical -schedule spelling of this schedule.
	Name() string
	// Begin resets the schedule for a run over the given topology size.
	Begin(nodes, links int)
	// Step fills dec with the decision for step t (t ≥ 1; step 0 is the
	// initial μ(x_0) emission, which no schedule controls).
	Step(t int, view View, dec *Decision)
}
