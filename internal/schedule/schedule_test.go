package schedule

import (
	"strings"
	"testing"
)

// fakeView is a hand-set View for driving generators without an engine.
type fakeView struct {
	nodes, links int
	fires        []int64
	halted       []bool
	inFlight     []int
	oldestBorn   []int
}

func (f *fakeView) Nodes() int           { return f.nodes }
func (f *fakeView) Links() int           { return f.links }
func (f *fakeView) Fires(v int) int64    { return f.fires[v] }
func (f *fakeView) Halted(v int) bool    { return f.halted[v] }
func (f *fakeView) InFlight(l int) int   { return f.inFlight[l] }
func (f *fakeView) OldestBorn(l int) int { return f.oldestBorn[l] }

func newFakeView(nodes, links int) *fakeView {
	f := &fakeView{
		nodes: nodes, links: links,
		fires:      make([]int64, nodes),
		halted:     make([]bool, nodes),
		inFlight:   make([]int, links),
		oldestBorn: make([]int, links),
	}
	for l := range f.oldestBorn {
		f.oldestBorn[l] = -1
	}
	return f
}

func step(s Schedule, t int, view View, dec *Decision) {
	dec.Reset()
	s.Step(t, view, dec)
}

func TestSynchronousActivatesAndDeliversAll(t *testing.T) {
	s := Synchronous()
	s.Begin(4, 8)
	dec := NewDecision(4, 8)
	step(s, 1, newFakeView(4, 8), dec)
	if !dec.ActivateAll || !dec.DeliverAll {
		t.Fatalf("sync decision = %+v, want ActivateAll and DeliverAll", dec)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	s := RoundRobin()
	s.Begin(3, 6)
	view := newFakeView(3, 6)
	dec := NewDecision(3, 6)
	for tt := 1; tt <= 7; tt++ {
		step(s, tt, view, dec)
		if !dec.DeliverAll {
			t.Fatalf("step %d: roundrobin must deliver all", tt)
		}
		want := (tt - 1) % 3
		for v := 0; v < 3; v++ {
			if dec.Activate[v] != (v == want) {
				t.Fatalf("step %d: Activate = %v, want only node %d", tt, dec.Activate, want)
			}
		}
	}
}

func TestRandomSubsetSeededDeterminism(t *testing.T) {
	view := newFakeView(10, 20)
	for l := range view.inFlight {
		view.inFlight[l] = 2
	}
	run := func() [][]bool {
		s := RandomSubset(99, 0.5)
		s.Begin(10, 20)
		dec := NewDecision(10, 20)
		var got [][]bool
		for tt := 1; tt <= 8; tt++ {
			step(s, tt, view, dec)
			got = append(got, append([]bool(nil), dec.Activate...))
		}
		return got
	}
	a, b := run(), run()
	for i := range a {
		for v := range a[i] {
			if a[i][v] != b[i][v] {
				t.Fatalf("step %d node %d: same seed diverged", i+1, v)
			}
		}
	}
}

func TestBoundedStalenessHardCap(t *testing.T) {
	s := BoundedStaleness(7, 2)
	s.Begin(3, 6)
	view := newFakeView(3, 6)
	view.fires = []int64{5, 3, 4} // node 0 is at the cap (min=3, k=2)
	dec := NewDecision(3, 6)
	for tt := 1; tt <= 20; tt++ {
		step(s, tt, view, dec)
		if dec.Activate[0] {
			t.Fatalf("step %d: node at lag cap was activated", tt)
		}
		if !dec.Activate[1] {
			t.Fatalf("step %d: slowest node was not activated", tt)
		}
	}
}

func TestAdversaryRespectsLinkDelays(t *testing.T) {
	const fair = 5
	s := Adversary(3, fair)
	s.Begin(2, 4)
	view := newFakeView(2, 4)
	dec := NewDecision(2, 4)
	// A message born at step 1 must be released by step 1+fair on every link,
	// and never before one full step has passed.
	for l := range view.inFlight {
		view.inFlight[l] = 1
		view.oldestBorn[l] = 1
	}
	released := make([]bool, 4)
	for tt := 1; tt <= 1+fair; tt++ {
		step(s, tt, view, dec)
		for l := range released {
			if dec.Deliver[l] > 0 {
				if tt == 1 {
					t.Fatalf("link %d released with age 0", l)
				}
				released[l] = true
			}
		}
	}
	for l, ok := range released {
		if !ok {
			t.Fatalf("link %d not released within the fairness bound", l)
		}
	}
	// Every node must be activated at least once every fair steps.
	active := make([]bool, 2)
	for tt := 10; tt < 10+fair; tt++ {
		step(s, tt, view, dec)
		for v := range active {
			active[v] = active[v] || dec.Activate[v]
		}
	}
	for v, ok := range active {
		if !ok {
			t.Fatalf("node %d not activated within the fairness bound", v)
		}
	}
}

func TestParseRoundTrips(t *testing.T) {
	for spec, wantName := range map[string]string{
		"sync":         "sync",
		"synchronous":  "sync",
		"":             "sync",
		"roundrobin":   "roundrobin",
		"rr":           "roundrobin",
		"random":       "random:0.5",
		"random:0.25":  "random:0.25",
		"staleness":    "staleness:2",
		"staleness:4":  "staleness:4",
		"adversary":    "adversary:4",
		"adversary:09": "adversary:9",
	} {
		s, err := Parse(spec, 1)
		if err != nil {
			t.Errorf("Parse(%q) failed: %v", spec, err)
			continue
		}
		if s.Name() != wantName {
			t.Errorf("Parse(%q).Name() = %q, want %q", spec, s.Name(), wantName)
		}
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"warp", "random:2", "random:0", "random:x",
		"staleness:0", "staleness:x", "adversary:0", "adversary:x",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
	_, err := Parse("warp", 1)
	if err == nil || !strings.Contains(err.Error(), "sync") {
		t.Errorf("unknown-schedule error should list valid specs, got %v", err)
	}
}
