package graph

import (
	"math/rand"
	"testing"
)

func checkCircuit(t *testing.T, g *Graph, circuit []int) {
	t.Helper()
	if len(circuit) != g.M()+1 {
		t.Fatalf("circuit length %d, want %d", len(circuit), g.M()+1)
	}
	if circuit[0] != circuit[len(circuit)-1] {
		t.Fatal("circuit not closed")
	}
	used := make(map[Edge]bool)
	for i := 0; i+1 < len(circuit); i++ {
		e := Edge{U: circuit[i], V: circuit[i+1]}.normalise()
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("circuit uses non-edge %v", e)
		}
		if used[e] {
			t.Fatalf("circuit repeats edge %v", e)
		}
		used[e] = true
	}
	if len(used) != g.M() {
		t.Fatalf("circuit covers %d/%d edges", len(used), g.M())
	}
}

func TestEulerianCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	graphs := []*Graph{
		Cycle(5), Cycle(8), Complete(5), Torus(3, 3), Torus(3, 4),
	}
	if g, err := RandomRegular(10, 4, rng); err == nil {
		graphs = append(graphs, g)
	}
	for _, g := range graphs {
		circuit, err := EulerianCircuit(g)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		checkCircuit(t, g, circuit)
	}
}

func TestEulerianCircuitRejects(t *testing.T) {
	if _, err := EulerianCircuit(Path(4)); err == nil {
		t.Error("odd-degree graph accepted")
	}
	if _, err := EulerianCircuit(MustNew(3, nil)); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := EulerianCircuit(DisjointUnion(Cycle(3), Cycle(3))); err == nil {
		t.Error("disconnected even graph accepted")
	}
}

func TestTwoFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	cases := []*Graph{
		Cycle(7),     // 2-regular: one factor, itself
		Complete(5),  // 4-regular
		Torus(3, 3),  // 4-regular
		Torus(4, 5),  // 4-regular
		Hypercube(4), // 4-regular
	}
	if g, err := RandomRegular(12, 6, rng); err == nil && g.IsConnected() {
		cases = append(cases, g)
	}
	for _, g := range cases {
		k, _ := g.IsRegular()
		factors, err := TwoFactorization(g)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if len(factors) != k/2 {
			t.Fatalf("%v: %d factors, want %d", g, len(factors), k/2)
		}
		seen := make(map[Edge]bool)
		for i, f := range factors {
			if !IsTwoFactor(g, f) {
				t.Fatalf("%v: factor %d is not a 2-factor", g, i)
			}
			for _, e := range f {
				ne := e.normalise()
				if seen[ne] {
					t.Fatalf("%v: edge %v in two factors", g, ne)
				}
				seen[ne] = true
			}
		}
		if len(seen) != g.M() {
			t.Errorf("%v: factors cover %d/%d edges", g, len(seen), g.M())
		}
	}
}

func TestTwoFactorizationRejects(t *testing.T) {
	if _, err := TwoFactorization(Petersen()); err == nil {
		t.Error("odd-regular graph accepted (Petersen is 3-regular)")
	}
	if _, err := TwoFactorization(Path(4)); err == nil {
		t.Error("irregular graph accepted")
	}
}

func TestIsTwoFactorValidator(t *testing.T) {
	g := Cycle(4)
	if !IsTwoFactor(g, g.Edges()) {
		t.Error("the cycle itself is a 2-factor")
	}
	if IsTwoFactor(g, g.Edges()[:3]) {
		t.Error("partial edge set accepted")
	}
	if IsTwoFactor(g, []Edge{{U: 0, V: 2}}) {
		t.Error("non-edge accepted")
	}
}

func BenchmarkTwoFactorization(b *testing.B) {
	g := Torus(8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TwoFactorization(g); err != nil {
			b.Fatal(err)
		}
	}
}
