package graph

import "fmt"

// Hopcroft–Karp bipartite maximum matching and the 1-factorization of
// k-regular bipartite graphs used by Lemma 15: the edge set of a k-regular
// bipartite graph is the union of k mutually disjoint 1-factors (a corollary
// of Hall's marriage theorem; the paper cites Diestel §2.1).

// BipartiteMatching computes a maximum matching of g restricted to edges
// between side-0 and side-1 nodes of the given bipartition, using
// Hopcroft–Karp in O(E·√V). It returns mate[v] = partner or -1.
func BipartiteMatching(g *Graph, side []int) []int {
	n := g.N()
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)

	var lefts []int
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			lefts = append(lefts, v)
		}
	}

	queueBuf := make([]int, 0, n)
	bfs := func() bool {
		queue := queueBuf[:0]
		for _, v := range lefts {
			if mate[v] == -1 {
				dist[v] = 0
				queue = append(queue, v)
			} else {
				dist[v] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, w := range g.Neighbors(v) {
				if side[w] != 1 {
					continue
				}
				next := mate[w]
				if next == -1 {
					found = true
				} else if dist[next] == inf {
					dist[next] = dist[v] + 1
					queue = append(queue, next)
				}
			}
		}
		return found
	}

	var dfs func(v int) bool
	dfs = func(v int) bool {
		for _, w := range g.Neighbors(v) {
			if side[w] != 1 {
				continue
			}
			next := mate[w]
			if next == -1 || (dist[next] == dist[v]+1 && dfs(next)) {
				mate[v] = w
				mate[w] = v
				return true
			}
		}
		dist[v] = inf
		return false
	}

	for bfs() {
		for _, v := range lefts {
			if mate[v] == -1 {
				dfs(v)
			}
		}
	}
	return mate
}

// OneFactorization decomposes a k-regular bipartite graph into k disjoint
// perfect matchings (1-factors), per Lemma 15. It returns an error if g is
// not bipartite or not regular, or if a perfect matching is ever missing
// (impossible for genuinely k-regular bipartite inputs — König/Hall).
func OneFactorization(g *Graph) ([][]Edge, error) {
	side, ok := g.Bipartition()
	if !ok {
		return nil, fmt.Errorf("graph: OneFactorization on non-bipartite %v", g)
	}
	k, reg := g.IsRegular()
	if !reg {
		return nil, fmt.Errorf("graph: OneFactorization on irregular %v", g)
	}
	if k == 0 {
		return nil, nil
	}
	remaining := g
	factors := make([][]Edge, 0, k)
	for round := 0; round < k; round++ {
		mate := BipartiteMatching(remaining, side)
		factor := MatchingEdges(mate)
		if 2*len(factor) != g.N() {
			return nil, fmt.Errorf("graph: no perfect matching in round %d of 1-factorization (got %d/%d)",
				round, 2*len(factor), g.N())
		}
		factors = append(factors, factor)
		if round+1 < k {
			remaining = removeEdges(remaining, factor)
		}
	}
	return factors, nil
}

// removeEdges returns g minus the given edges.
func removeEdges(g *Graph, drop []Edge) *Graph {
	dropSet := make(map[Edge]bool, len(drop))
	for _, e := range drop {
		dropSet[e.normalise()] = true
	}
	var keep []Edge
	for _, e := range g.Edges() {
		if !dropSet[e] {
			keep = append(keep, e)
		}
	}
	return MustNew(g.N(), keep)
}

// DoubleCoverFactorPermutations runs the full Lemma 15 pipeline for a
// k-regular graph g: build the bipartite double cover G*, 1-factorize it,
// and convert each factor E_i into the permutation π_i of V(g) defined by
// R(i,i) = {(u,v) : {(u,1),(v,2)} ∈ E_i}. The result perms[i][u] = v means
// u's port i+1 connects to v (and the family of π_i defines a port numbering
// under which all nodes are bisimilar in K₊,₊).
func DoubleCoverFactorPermutations(g *Graph) ([][]int, error) {
	k, reg := g.IsRegular()
	if !reg {
		return nil, fmt.Errorf("graph: Lemma 15 needs a regular graph, got %v", g)
	}
	if k == 0 {
		return [][]int{}, nil
	}
	cover := DoubleCover(g)
	factors, err := OneFactorization(cover)
	if err != nil {
		return nil, fmt.Errorf("graph: 1-factorizing double cover: %w", err)
	}
	n := g.N()
	perms := make([][]int, k)
	for i, factor := range factors {
		perm := make([]int, n)
		for j := range perm {
			perm[j] = -1
		}
		for _, e := range factor {
			// Normalised edges of the cover have U < V; side 1 copies are
			// u < n, side 2 copies are v+n ≥ n.
			u, v2 := e.U, e.V
			if u >= n || v2 < n {
				return nil, fmt.Errorf("graph: malformed cover edge %v", e)
			}
			perm[u] = v2 - n
		}
		for u, v := range perm {
			if v == -1 {
				return nil, fmt.Errorf("graph: factor %d misses node %d", i, u)
			}
		}
		perms[i] = perm
	}
	return perms, nil
}
