// Package graph implements the simple undirected bounded-degree graphs
// F(Δ) of the paper (Section 1.1) together with every graph-theoretic
// substrate the constructions need: standard families, bipartite double
// covers (Lemma 15), maximum matching via Edmonds' blossom algorithm and
// Hopcroft–Karp, 1-factorizations of regular bipartite graphs, and the
// cubic no-1-factor witness of Figure 9.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Graph is an immutable simple undirected graph on nodes 0..N-1. The zero
// Graph is the empty graph. Adjacency lists are kept sorted, so "port i of
// node v in adjacency order" is deterministic.
type Graph struct {
	adj [][]int

	// bfs is the locality order of bfsorder.go, computed lazily on first
	// use and shared by every sharded executor run on this graph.
	bfsOnce  sync.Once
	bfsOrder []int
}

// Edge is an undirected edge; U < V in normalised form.
type Edge struct {
	U, V int
}

// normalise orders the endpoints.
func (e Edge) normalise() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// New builds a graph on n nodes from the given edges. It returns an error if
// an edge endpoint is out of range, a self-loop is present, or an edge is
// duplicated (the graphs of the paper are simple).
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	adj := make([][]int, n)
	seen := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge %v out of range [0,%d)", e, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at node %d", e.U)
		}
		ne := e.normalise()
		if seen[ne] {
			return nil, fmt.Errorf("graph: duplicate edge %v", ne)
		}
		seen[ne] = true
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for _, a := range adj {
		sort.Ints(a)
	}
	return &Graph{adj: adj}, nil
}

// MustNew is New panicking on error, for fixed test fixtures and families.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Degree returns deg(v).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for _, a := range g.adj {
		if len(a) > d {
			d = len(a)
		}
	}
	return d
}

// Neighbors returns the sorted neighbours of v. The returned slice is shared
// and must not be modified by the caller; use NeighborsCopy to mutate.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// NeighborsCopy returns a fresh copy of the neighbours of v.
func (g *Graph) NeighborsCopy(v int) []int { return append([]int(nil), g.adj[v]...) }

// Neighbor returns the i-th neighbour of v in adjacency order (0-based).
func (g *Graph) Neighbor(v, i int) int { return g.adj[v][i] }

// NeighborIndex returns the position of u in v's sorted adjacency list, or -1.
func (g *Graph) NeighborIndex(v, u int) int {
	a := g.adj[v]
	i := sort.SearchInts(a, u)
	if i < len(a) && a[i] == u {
		return i
	}
	return -1
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return u != v && g.NeighborIndex(u, v) >= 0 }

// Edges returns all edges in normalised sorted order.
func (g *Graph) Edges() []Edge {
	var es []Edge
	for u, a := range g.adj {
		for _, v := range a {
			if u < v {
				es = append(es, Edge{U: u, V: v})
			}
		}
	}
	return es
}

// DegreeSequence returns the sorted (ascending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	ds := make([]int, g.N())
	for v := range ds {
		ds[v] = g.Degree(v)
	}
	sort.Ints(ds)
	return ds
}

// IsRegular reports whether all degrees equal k for some k, returning k.
// The empty graph is 0-regular.
func (g *Graph) IsRegular() (k int, ok bool) {
	if g.N() == 0 {
		return 0, true
	}
	k = g.Degree(0)
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) != k {
			return 0, false
		}
	}
	return k, true
}

// IsConnected reports whether the graph is connected. The empty graph and
// singletons count as connected.
func (g *Graph) IsConnected() bool { return len(g.Components()) <= 1 }

// Components returns the connected components as sorted node lists.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for i := 0; i < len(comp); i++ {
			for _, w := range g.adj[comp[i]] {
				if !seen[w] {
					seen[w] = true
					comp = append(comp, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Bipartition returns a valid 2-colouring (sides A and B) if the graph is
// bipartite, with ok=false otherwise.
func (g *Graph) Bipartition() (side []int, ok bool) {
	side = make([]int, g.N())
	for i := range side {
		side[i] = -1
	}
	for s := 0; s < g.N(); s++ {
		if side[s] != -1 {
			continue
		}
		side[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				if side[w] == -1 {
					side[w] = 1 - side[v]
					queue = append(queue, w)
				} else if side[w] == side[v] {
					return nil, false
				}
			}
		}
	}
	return side, true
}

// DisjointUnion returns the disjoint union of g and h; nodes of h are
// renumbered with offset g.N(). Graph problems in the paper (Section 1.4)
// are defined on arbitrary, possibly disconnected graphs, and the Theorem 13
// separation witness is a disjoint union.
func DisjointUnion(g, h *Graph) *Graph {
	off := g.N()
	edges := g.Edges()
	for _, e := range h.Edges() {
		edges = append(edges, Edge{U: e.U + off, V: e.V + off})
	}
	return MustNew(g.N()+h.N(), edges)
}

// DoubleCover returns the bipartite double cover G* of Lemma 15: nodes
// (v,1) ↦ v and (v,2) ↦ v + g.N(), with an edge {(u,1),(v,2)} for every
// edge {u,v} of g (both orientations).
func DoubleCover(g *Graph) *Graph {
	n := g.N()
	var edges []Edge
	for _, e := range g.Edges() {
		edges = append(edges, Edge{U: e.U, V: e.V + n}, Edge{U: e.V, V: e.U + n})
	}
	return MustNew(2*n, edges)
}

// InducedSubgraph returns the subgraph induced by keep (sorted unique node
// ids) along with the mapping old→new node id.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, map[int]int) {
	idx := make(map[int]int, len(keep))
	for i, v := range keep {
		idx[v] = i
	}
	var edges []Edge
	for _, v := range keep {
		for _, w := range g.adj[v] {
			if j, ok := idx[w]; ok && idx[v] < j {
				edges = append(edges, Edge{U: idx[v], V: j})
			}
		}
	}
	return MustNew(len(keep), edges), idx
}

// RemoveNodes returns the graph with the given nodes deleted (and the
// old→new mapping), used for Tutte-condition checks.
func (g *Graph) RemoveNodes(drop ...int) (*Graph, map[int]int) {
	dropSet := make(map[int]bool, len(drop))
	for _, v := range drop {
		dropSet[v] = true
	}
	var keep []int
	for v := 0; v < g.N(); v++ {
		if !dropSet[v] {
			keep = append(keep, v)
		}
	}
	return g.InducedSubgraph(keep)
}

// OddComponents returns the number of odd-order connected components,
// the quantity o(G) of Tutte's theorem.
func (g *Graph) OddComponents() int {
	odd := 0
	for _, c := range g.Components() {
		if len(c)%2 == 1 {
			odd++
		}
	}
	return odd
}

// String returns a short description, e.g. "graph(n=5, m=4, Δ=3)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, Δ=%d)", g.N(), g.M(), g.MaxDegree())
}
