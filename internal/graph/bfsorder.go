package graph

import "sort"

// bfsorder.go implements the locality-aware node orders used to shard a
// graph across workers. A contiguous slice of a breadth-first order is a
// connected, roughly ball-shaped patch of the graph, so partitioning nodes
// into contiguous slices of BFSOrder gives shards whose boundaries cut few
// links — the property the engine's sharded executors rely on to keep
// cross-shard message traffic (and with it staging-ring pressure) low.

// BFSOrder returns a breadth-first ordering of all nodes: the traversal
// starts at a maximum-degree root (ties broken toward the lowest id — hubs
// are where links concentrate, so growing shards outward from them keeps
// hub links shard-internal) and restarts at a maximum-degree unvisited node
// for every further component. Adjacency lists are sorted, so the order is
// fully deterministic. Every node appears exactly once; isolated nodes form
// their own one-node components at the tail of the degree order.
//
// The order is computed once per graph and cached (the graph is immutable),
// so per-run consumers — ShardByBFS, the engine's shard runtime, weakrun's
// cut telemetry — pay O(1) after the first call. The returned slice is
// shared: callers must not modify it.
func BFSOrder(g *Graph) []int {
	g.bfsOnce.Do(func() { g.bfsOrder = computeBFSOrder(g) })
	return g.bfsOrder
}

// computeBFSOrder is the uncached traversal behind BFSOrder.
func computeBFSOrder(g *Graph) []int {
	n := g.N()
	order := make([]int, 0, n)
	visited := make([]bool, n)
	// Root candidates in degree-descending order, ties to the lowest id.
	roots := make([]int, n)
	for v := range roots {
		roots[v] = v
	}
	sort.SliceStable(roots, func(i, j int) bool {
		return g.Degree(roots[i]) > g.Degree(roots[j])
	})
	for _, root := range roots {
		if visited[root] {
			continue
		}
		visited[root] = true
		order = append(order, root)
		// order[head:] doubles as the BFS queue of the current component.
		for head := len(order) - 1; head < len(order); head++ {
			for _, u := range g.adj[order[head]] {
				if !visited[u] {
					visited[u] = true
					order = append(order, u)
				}
			}
		}
	}
	return order
}

// ShardByBFS partitions the nodes into min(w, n) balanced shards, each a
// contiguous slice of BFSOrder(g): shard s holds the nodes ranked
// [s·n/w, (s+1)·n/w) in the breadth-first order, so shard sizes differ by
// at most one and shard boundaries cut few links. The returned shards are
// non-empty, disjoint, cover every node, and are deterministic for a given
// (graph, w). They alias the cached order: callers must not modify them.
// An empty graph yields no shards.
func ShardByBFS(g *Graph, w int) [][]int {
	n := g.N()
	if n == 0 {
		return nil
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	order := BFSOrder(g)
	shards := make([][]int, w)
	for s := 0; s < w; s++ {
		shards[s] = order[s*n/w : (s+1)*n/w]
	}
	return shards
}

// CutLinks counts the directed links (u→v with u, v adjacent) whose
// endpoints are assigned to different shards — the cross-shard traffic a
// sharded executor pays staging costs for. shardOf maps each node to its
// shard id.
func CutLinks(g *Graph, shardOf []int) int {
	cut := 0
	for v := 0; v < g.N(); v++ {
		for _, u := range g.adj[v] {
			if shardOf[u] != shardOf[v] {
				cut++
			}
		}
	}
	return cut
}
