package graph

import (
	"math/rand"
	"testing"
)

func TestHopcroftKarpAgainstBlossom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		a, b := 1+rng.Intn(6), 1+rng.Intn(6)
		var edges []Edge
		for i := 0; i < a; i++ {
			for j := 0; j < b; j++ {
				if rng.Intn(2) == 0 {
					edges = append(edges, Edge{U: i, V: a + j})
				}
			}
		}
		g := MustNew(a+b, edges)
		side, ok := g.Bipartition()
		if !ok {
			t.Fatal("bipartite graph not recognised")
		}
		mate := BipartiteMatching(g, side)
		if !IsMatching(g, MatchingEdges(mate)) {
			t.Fatal("Hopcroft–Karp produced non-matching")
		}
		if MatchingSize(mate) != Nu(g) {
			t.Fatalf("HK=%d, blossom=%d on %v", MatchingSize(mate), Nu(g), g)
		}
	}
}

func TestOneFactorization(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		k    int
	}{
		{"k33", CompleteBipartite(3, 3), 3},
		{"cycle6", Cycle(6), 2},
		{"q3", Hypercube(3), 3},
		{"q4", Hypercube(4), 4},
		{"cover-petersen", DoubleCover(Petersen()), 3},
		{"cover-no1f", DoubleCover(NoOneFactorCubic()), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			factors, err := OneFactorization(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if len(factors) != tc.k {
				t.Fatalf("%d factors, want %d", len(factors), tc.k)
			}
			seen := make(map[Edge]bool)
			for i, f := range factors {
				if !IsPerfectMatching(tc.g, f) {
					t.Fatalf("factor %d is not a 1-factor", i)
				}
				for _, e := range f {
					ne := e.normalise()
					if seen[ne] {
						t.Fatalf("edge %v in two factors", ne)
					}
					seen[ne] = true
				}
			}
			if len(seen) != tc.g.M() {
				t.Errorf("factors cover %d/%d edges", len(seen), tc.g.M())
			}
		})
	}
}

func TestOneFactorizationRejects(t *testing.T) {
	if _, err := OneFactorization(Cycle(5)); err == nil {
		t.Error("odd cycle (non-bipartite) accepted")
	}
	if _, err := OneFactorization(Path(4)); err == nil {
		t.Error("irregular graph accepted")
	}
}

func TestDoubleCoverFactorPermutations(t *testing.T) {
	for _, g := range []*Graph{Cycle(5), Petersen(), NoOneFactorCubic(), Hypercube(3)} {
		k, _ := g.IsRegular()
		perms, err := DoubleCoverFactorPermutations(g)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if len(perms) != k {
			t.Fatalf("%v: %d perms, want %d", g, len(perms), k)
		}
		for i, perm := range perms {
			seen := make([]bool, g.N())
			for u, v := range perm {
				if !g.HasEdge(u, v) {
					t.Fatalf("perm %d maps %d to non-neighbour %d", i, u, v)
				}
				if seen[v] {
					t.Fatalf("perm %d not a bijection", i)
				}
				seen[v] = true
			}
		}
		// Every arc (u, i-th neighbour) is covered exactly once across perms:
		// for each u, the multiset {perm_i(u)} must equal N(u).
		for u := 0; u < g.N(); u++ {
			got := make(map[int]int)
			for _, perm := range perms {
				got[perm[u]]++
			}
			for _, v := range g.Neighbors(u) {
				if got[v] != 1 {
					t.Fatalf("node %d: neighbour %d used %d times across factors", u, v, got[v])
				}
			}
		}
	}
}

func TestDoubleCoverFactorPermutationsRejectsIrregular(t *testing.T) {
	if _, err := DoubleCoverFactorPermutations(Path(3)); err == nil {
		t.Error("irregular graph accepted by Lemma 15 pipeline")
	}
}

func BenchmarkOneFactorization(b *testing.B) {
	g := DoubleCover(Hypercube(5)) // 5-regular bipartite on 64 nodes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OneFactorization(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHopcroftKarp(b *testing.B) {
	g := CompleteBipartite(40, 40)
	side, _ := g.Bipartition()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BipartiteMatching(g, side)
	}
}
