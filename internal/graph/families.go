package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path graph P_n on n nodes (n-1 edges).
func Path(n int) *Graph {
	var edges []Edge
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{U: i, V: i + 1})
	}
	return MustNew(n, edges)
}

// Cycle returns the cycle C_n (n ≥ 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n ≥ 3, got %d", n))
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{U: i, V: (i + 1) % n})
	}
	return MustNew(n, edges)
}

// Star returns the k-star of Theorem 11: centre node 0 adjacent to leaves
// 1..k.
func Star(k int) *Graph {
	edges := make([]Edge, 0, k)
	for i := 1; i <= k; i++ {
		edges = append(edges, Edge{U: 0, V: i})
	}
	return MustNew(k+1, edges)
}

// Complete returns K_n.
func Complete(n int) *Graph {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{U: i, V: j})
		}
	}
	return MustNew(n, edges)
}

// CompleteBipartite returns K_{a,b} with side A = 0..a-1, side B = a..a+b-1.
func CompleteBipartite(a, b int) *Graph {
	var edges []Edge
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			edges = append(edges, Edge{U: i, V: a + j})
		}
	}
	return MustNew(a+b, edges)
}

// Grid returns the r×c grid graph.
func Grid(r, c int) *Graph {
	id := func(i, j int) int { return i*c + j }
	var edges []Edge
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				edges = append(edges, Edge{U: id(i, j), V: id(i, j+1)})
			}
			if i+1 < r {
				edges = append(edges, Edge{U: id(i, j), V: id(i+1, j)})
			}
		}
	}
	return MustNew(r*c, edges)
}

// Torus returns the r×c toroidal grid (4-regular when r,c ≥ 3).
func Torus(r, c int) *Graph {
	if r < 3 || c < 3 {
		panic("graph: torus needs r,c ≥ 3")
	}
	id := func(i, j int) int { return i*c + j }
	var edges []Edge
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			edges = append(edges, Edge{U: id(i, j), V: id(i, (j+1)%c)})
			edges = append(edges, Edge{U: id(i, j), V: id((i+1)%r, j)})
		}
	}
	return MustNew(r*c, edges)
}

// Hypercube returns the d-dimensional hypercube Q_d (d-regular, 2^d nodes).
func Hypercube(d int) *Graph {
	n := 1 << d
	var edges []Edge
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << b)
			if v < w {
				edges = append(edges, Edge{U: v, V: w})
			}
		}
	}
	return MustNew(n, edges)
}

// Petersen returns the Petersen graph (3-regular, 10 nodes). It is
// 3-regular with a perfect matching, a useful contrast to NoOneFactorCubic.
func Petersen() *Graph {
	var edges []Edge
	for i := 0; i < 5; i++ {
		edges = append(edges,
			Edge{U: i, V: (i + 1) % 5},     // outer pentagon
			Edge{U: i, V: i + 5},           // spokes
			Edge{U: i + 5, V: (i+2)%5 + 5}, // inner pentagram
		)
	}
	return MustNew(10, edges)
}

// RandomTree returns a uniformly random labelled tree on n nodes via a
// Prüfer sequence drawn from rng.
func RandomTree(n int, rng *rand.Rand) *Graph {
	if n <= 1 {
		return MustNew(n, nil)
	}
	if n == 2 {
		return MustNew(2, []Edge{{U: 0, V: 1}})
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	var edges []Edge
	for _, v := range prufer {
		for u := 0; u < n; u++ {
			if degree[u] == 1 {
				edges = append(edges, Edge{U: u, V: v})
				degree[u]--
				degree[v]--
				break
			}
		}
	}
	u, w := -1, -1
	for v := 0; v < n; v++ {
		if degree[v] == 1 {
			if u == -1 {
				u = v
			} else {
				w = v
			}
		}
	}
	edges = append(edges, Edge{U: u, V: w})
	return MustNew(n, edges)
}

// RandomRegular returns a random k-regular simple graph on n nodes using the
// pairing (configuration) model with rejection, or an error when nk is odd
// or the sampler fails to produce a simple graph after many attempts.
func RandomRegular(n, k int, rng *rand.Rand) (*Graph, error) {
	if n*k%2 != 0 {
		return nil, fmt.Errorf("graph: no %d-regular graph on %d nodes (nk odd)", k, n)
	}
	if k >= n {
		return nil, fmt.Errorf("graph: k=%d must be < n=%d", k, n)
	}
	// The pairing model produces a simple graph with probability roughly
	// exp(-(k²-1)/4), which drops below 1% around k = 5; the attempt budget
	// is sized for k ≤ 6 on small n.
	const attempts = 20000
	for try := 0; try < attempts; try++ {
		stubs := make([]int, 0, n*k)
		for v := 0; v < n; v++ {
			for i := 0; i < k; i++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		seen := make(map[Edge]bool, n*k/2)
		edges := make([]Edge, 0, n*k/2)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			e := Edge{U: stubs[i], V: stubs[i+1]}.normalise()
			if e.U == e.V || seen[e] {
				ok = false
				break
			}
			seen[e] = true
			edges = append(edges, e)
		}
		if ok {
			return MustNew(n, edges), nil
		}
	}
	return nil, fmt.Errorf("graph: failed to sample a simple %d-regular graph on %d nodes", k, n)
}

// Expander returns a random d-regular connected graph on n nodes built as
// the union of ⌊d/2⌋ random permutation cycle covers (each contributes
// degree 2 to every node) plus, for odd d, a random perfect matching.
// Random regular graphs of this kind are expanders with high probability;
// attempts producing self-loops, parallel edges or a disconnected union are
// rejected and resampled. Requires 3 ≤ d < n and nd even.
func Expander(n, d int, seed int64) (*Graph, error) {
	if d < 3 || d >= n {
		return nil, fmt.Errorf("graph: expander needs 3 ≤ d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: no %d-regular graph on %d nodes (nd odd)", d, n)
	}
	rng := rand.New(rand.NewSource(seed))
	// Each degree-2 layer (and the odd-d matching) is resampled on its own
	// until it is simple against the union built so far: per-layer rejection
	// succeeds with constant probability, where rejecting whole attempts
	// would decay exponentially in d.
	const attempts = 50
	const layerAttempts = 2000
	for try := 0; try < attempts; try++ {
		seen := make(map[Edge]bool, n*d/2)
		edges := make([]Edge, 0, n*d/2)
		addLayer := func(pairs [][2]int) bool {
			batch := make([]Edge, 0, len(pairs))
			for _, pr := range pairs {
				e := Edge{U: pr[0], V: pr[1]}.normalise()
				if e.U == e.V || seen[e] {
					for _, b := range batch {
						delete(seen, b)
					}
					return false
				}
				seen[e] = true
				batch = append(batch, e)
			}
			edges = append(edges, batch...)
			return true
		}
		sampleLayer := func(pairsOf func() [][2]int) bool {
			for a := 0; a < layerAttempts; a++ {
				if addLayer(pairsOf()) {
					return true
				}
			}
			return false
		}
		ok := true
		for c := 0; c < d/2 && ok; c++ {
			ok = sampleLayer(func() [][2]int {
				pairs := make([][2]int, n)
				for v, w := range rng.Perm(n) {
					pairs[v] = [2]int{v, w}
				}
				return pairs
			})
		}
		if ok && d%2 == 1 {
			ok = sampleLayer(func() [][2]int {
				pairing := rng.Perm(n)
				pairs := make([][2]int, 0, n/2)
				for i := 0; i+1 < n; i += 2 {
					pairs = append(pairs, [2]int{pairing[i], pairing[i+1]})
				}
				return pairs
			})
		}
		if !ok {
			continue
		}
		g := MustNew(n, edges)
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: failed to sample a connected %d-regular expander on %d nodes", d, n)
}

// PreferentialAttachment returns a Barabási–Albert graph on n nodes: a
// K_{m+1} seed clique, then each new node attaches m edges to distinct
// existing nodes chosen proportionally to their current degree (sampled
// from the repeated-endpoints list, the standard linear-time scheme). The
// result is connected with n-m-1 hubs-and-leaves growth steps and
// m(m+1)/2 + (n-m-1)m edges. Requires 1 ≤ m and n > m+1.
func PreferentialAttachment(n, m int, seed int64) (*Graph, error) {
	if m < 1 || n <= m+1 {
		return nil, fmt.Errorf("graph: preferential attachment needs 1 ≤ m and n > m+1, got n=%d m=%d", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	// endpoints holds every edge endpoint seen so far, so a uniform draw
	// from it is a degree-proportional draw over nodes.
	endpoints := make([]int, 0, 2*(m*(m+1)/2+(n-m-1)*m))
	for u := 0; u <= m; u++ {
		for w := u + 1; w <= m; w++ {
			edges = append(edges, Edge{U: u, V: w})
			endpoints = append(endpoints, u, w)
		}
	}
	// targets keeps draw order (a map would iterate in randomized order and
	// break seeded determinism); seen enforces distinctness.
	targets := make([]int, 0, m)
	seen := make(map[int]bool, m)
	for v := m + 1; v < n; v++ {
		targets = targets[:0]
		clear(seen)
		for len(targets) < m {
			u := endpoints[rng.Intn(len(endpoints))]
			if !seen[u] {
				seen[u] = true
				targets = append(targets, u)
			}
		}
		for _, u := range targets {
			edges = append(edges, Edge{U: u, V: v})
		}
		// Append endpoints only after all m draws so a node cannot attach
		// to itself via its own fresh edges.
		for _, u := range targets {
			endpoints = append(endpoints, u, v)
		}
	}
	return New(n, edges)
}

// Caterpillar returns a path of length spine with legs extra leaves attached
// to every spine node — a handy irregular bounded-degree family.
func Caterpillar(spine, legs int) *Graph {
	var edges []Edge
	n := spine
	for i := 0; i+1 < spine; i++ {
		edges = append(edges, Edge{U: i, V: i + 1})
	}
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			edges = append(edges, Edge{U: i, V: n})
			n++
		}
	}
	return MustNew(n, edges)
}
