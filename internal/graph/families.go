package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path graph P_n on n nodes (n-1 edges).
func Path(n int) *Graph {
	var edges []Edge
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{U: i, V: i + 1})
	}
	return MustNew(n, edges)
}

// Cycle returns the cycle C_n (n ≥ 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n ≥ 3, got %d", n))
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{U: i, V: (i + 1) % n})
	}
	return MustNew(n, edges)
}

// Star returns the k-star of Theorem 11: centre node 0 adjacent to leaves
// 1..k.
func Star(k int) *Graph {
	edges := make([]Edge, 0, k)
	for i := 1; i <= k; i++ {
		edges = append(edges, Edge{U: 0, V: i})
	}
	return MustNew(k+1, edges)
}

// Complete returns K_n.
func Complete(n int) *Graph {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{U: i, V: j})
		}
	}
	return MustNew(n, edges)
}

// CompleteBipartite returns K_{a,b} with side A = 0..a-1, side B = a..a+b-1.
func CompleteBipartite(a, b int) *Graph {
	var edges []Edge
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			edges = append(edges, Edge{U: i, V: a + j})
		}
	}
	return MustNew(a+b, edges)
}

// Grid returns the r×c grid graph.
func Grid(r, c int) *Graph {
	id := func(i, j int) int { return i*c + j }
	var edges []Edge
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				edges = append(edges, Edge{U: id(i, j), V: id(i, j+1)})
			}
			if i+1 < r {
				edges = append(edges, Edge{U: id(i, j), V: id(i+1, j)})
			}
		}
	}
	return MustNew(r*c, edges)
}

// Torus returns the r×c toroidal grid (4-regular when r,c ≥ 3).
func Torus(r, c int) *Graph {
	if r < 3 || c < 3 {
		panic("graph: torus needs r,c ≥ 3")
	}
	id := func(i, j int) int { return i*c + j }
	var edges []Edge
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			edges = append(edges, Edge{U: id(i, j), V: id(i, (j+1)%c)})
			edges = append(edges, Edge{U: id(i, j), V: id((i+1)%r, j)})
		}
	}
	return MustNew(r*c, edges)
}

// Hypercube returns the d-dimensional hypercube Q_d (d-regular, 2^d nodes).
func Hypercube(d int) *Graph {
	n := 1 << d
	var edges []Edge
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << b)
			if v < w {
				edges = append(edges, Edge{U: v, V: w})
			}
		}
	}
	return MustNew(n, edges)
}

// Petersen returns the Petersen graph (3-regular, 10 nodes). It is
// 3-regular with a perfect matching, a useful contrast to NoOneFactorCubic.
func Petersen() *Graph {
	var edges []Edge
	for i := 0; i < 5; i++ {
		edges = append(edges,
			Edge{U: i, V: (i + 1) % 5},     // outer pentagon
			Edge{U: i, V: i + 5},           // spokes
			Edge{U: i + 5, V: (i+2)%5 + 5}, // inner pentagram
		)
	}
	return MustNew(10, edges)
}

// RandomTree returns a uniformly random labelled tree on n nodes via a
// Prüfer sequence drawn from rng.
func RandomTree(n int, rng *rand.Rand) *Graph {
	if n <= 1 {
		return MustNew(n, nil)
	}
	if n == 2 {
		return MustNew(2, []Edge{{U: 0, V: 1}})
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	var edges []Edge
	for _, v := range prufer {
		for u := 0; u < n; u++ {
			if degree[u] == 1 {
				edges = append(edges, Edge{U: u, V: v})
				degree[u]--
				degree[v]--
				break
			}
		}
	}
	u, w := -1, -1
	for v := 0; v < n; v++ {
		if degree[v] == 1 {
			if u == -1 {
				u = v
			} else {
				w = v
			}
		}
	}
	edges = append(edges, Edge{U: u, V: w})
	return MustNew(n, edges)
}

// RandomRegular returns a random k-regular simple graph on n nodes using the
// pairing (configuration) model with rejection, or an error when nk is odd
// or the sampler fails to produce a simple graph after many attempts.
func RandomRegular(n, k int, rng *rand.Rand) (*Graph, error) {
	if n*k%2 != 0 {
		return nil, fmt.Errorf("graph: no %d-regular graph on %d nodes (nk odd)", k, n)
	}
	if k >= n {
		return nil, fmt.Errorf("graph: k=%d must be < n=%d", k, n)
	}
	// The pairing model produces a simple graph with probability roughly
	// exp(-(k²-1)/4), which drops below 1% around k = 5; the attempt budget
	// is sized for k ≤ 6 on small n.
	const attempts = 20000
	for try := 0; try < attempts; try++ {
		stubs := make([]int, 0, n*k)
		for v := 0; v < n; v++ {
			for i := 0; i < k; i++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		seen := make(map[Edge]bool, n*k/2)
		edges := make([]Edge, 0, n*k/2)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			e := Edge{U: stubs[i], V: stubs[i+1]}.normalise()
			if e.U == e.V || seen[e] {
				ok = false
				break
			}
			seen[e] = true
			edges = append(edges, e)
		}
		if ok {
			return MustNew(n, edges), nil
		}
	}
	return nil, fmt.Errorf("graph: failed to sample a simple %d-regular graph on %d nodes", k, n)
}

// Caterpillar returns a path of length spine with legs extra leaves attached
// to every spine node — a handy irregular bounded-degree family.
func Caterpillar(spine, legs int) *Graph {
	var edges []Edge
	n := spine
	for i := 0; i+1 < spine; i++ {
		edges = append(edges, Edge{U: i, V: i + 1})
	}
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			edges = append(edges, Edge{U: i, V: n})
			n++
		}
	}
	return MustNew(n, edges)
}
