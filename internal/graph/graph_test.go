package graph

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
		ok    bool
	}{
		{"empty", 0, nil, true},
		{"single edge", 2, []Edge{{U: 0, V: 1}}, true},
		{"negative n", -1, nil, false},
		{"out of range", 2, []Edge{{U: 0, V: 2}}, false},
		{"negative node", 2, []Edge{{U: -1, V: 0}}, false},
		{"self loop", 2, []Edge{{U: 1, V: 1}}, false},
		{"duplicate", 2, []Edge{{U: 0, V: 1}, {U: 1, V: 0}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.n, tc.edges)
			if (err == nil) != tc.ok {
				t.Errorf("New(%d, %v) err=%v, want ok=%v", tc.n, tc.edges, err, tc.ok)
			}
		})
	}
}

func TestBasicAccessors(t *testing.T) {
	g := Figure1Graph()
	if g.N() != 4 || g.M() != 4 || g.MaxDegree() != 3 {
		t.Fatalf("Figure1Graph shape wrong: %v", g)
	}
	wantDeg := []int{3, 2, 2, 1}
	for v, d := range wantDeg {
		if g.Degree(v) != d {
			t.Errorf("deg(%d) = %d, want %d", v, g.Degree(v), d)
		}
	}
	if !g.HasEdge(0, 3) || g.HasEdge(1, 3) || g.HasEdge(2, 2) {
		t.Error("HasEdge wrong")
	}
	if g.NeighborIndex(0, 2) != 1 || g.NeighborIndex(3, 1) != -1 {
		t.Error("NeighborIndex wrong")
	}
	if g.Neighbor(0, 0) != 1 {
		t.Error("Neighbor order not sorted")
	}
	cp := g.NeighborsCopy(0)
	cp[0] = 99
	if g.Neighbor(0, 0) == 99 {
		t.Error("NeighborsCopy aliases internal storage")
	}
}

func TestFamilies(t *testing.T) {
	cases := []struct {
		name         string
		g            *Graph
		n, m, maxDeg int
		connected    bool
		regular      int // -1 if irregular
	}{
		{"path5", Path(5), 5, 4, 2, true, -1},
		{"path1", Path(1), 1, 0, 0, true, 0},
		{"cycle6", Cycle(6), 6, 6, 2, true, 2},
		{"star4", Star(4), 5, 4, 4, true, -1},
		{"k5", Complete(5), 5, 10, 4, true, 4},
		{"k23", CompleteBipartite(2, 3), 5, 6, 3, true, -1},
		{"k33", CompleteBipartite(3, 3), 6, 9, 3, true, 3},
		{"grid23", Grid(2, 3), 6, 7, 3, true, -1},
		{"torus33", Torus(3, 3), 9, 18, 4, true, 4},
		{"q3", Hypercube(3), 8, 12, 3, true, 3},
		{"petersen", Petersen(), 10, 15, 3, true, 3},
		{"caterpillar", Caterpillar(3, 2), 9, 8, 4, true, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.n || tc.g.M() != tc.m || tc.g.MaxDegree() != tc.maxDeg {
				t.Errorf("shape = (%d,%d,%d), want (%d,%d,%d)",
					tc.g.N(), tc.g.M(), tc.g.MaxDegree(), tc.n, tc.m, tc.maxDeg)
			}
			if tc.g.IsConnected() != tc.connected {
				t.Errorf("IsConnected = %v, want %v", tc.g.IsConnected(), tc.connected)
			}
			k, reg := tc.g.IsRegular()
			if tc.regular >= 0 && (!reg || k != tc.regular) {
				t.Errorf("IsRegular = (%d,%v), want (%d,true)", k, reg, tc.regular)
			}
			if tc.regular < 0 && reg {
				t.Errorf("IsRegular = true, want irregular")
			}
		})
	}
}

func TestComponentsAndUnion(t *testing.T) {
	g := DisjointUnion(Cycle(3), Path(2))
	comps := g.Components()
	if len(comps) != 2 || len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if g.IsConnected() {
		t.Error("disjoint union claims connected")
	}
	if g.N() != 5 || g.M() != 4 {
		t.Errorf("union shape wrong: %v", g)
	}
	if !g.HasEdge(3, 4) || g.HasEdge(2, 3) {
		t.Error("union edges misplaced")
	}
}

func TestBipartition(t *testing.T) {
	if _, ok := Cycle(5).Bipartition(); ok {
		t.Error("odd cycle claimed bipartite")
	}
	side, ok := Cycle(6).Bipartition()
	if !ok {
		t.Fatal("even cycle not bipartite")
	}
	for _, e := range Cycle(6).Edges() {
		if side[e.U] == side[e.V] {
			t.Fatal("bipartition not proper")
		}
	}
	if _, ok := Hypercube(4).Bipartition(); !ok {
		t.Error("hypercube not bipartite")
	}
}

func TestDoubleCover(t *testing.T) {
	g := Petersen()
	cover := DoubleCover(g)
	if cover.N() != 2*g.N() || cover.M() != 2*g.M() {
		t.Fatalf("cover shape wrong: %v", cover)
	}
	if _, ok := cover.Bipartition(); !ok {
		t.Error("double cover must be bipartite")
	}
	k, reg := cover.IsRegular()
	if !reg || k != 3 {
		t.Errorf("cover regularity = (%d,%v), want (3,true)", k, reg)
	}
	// Edges go only between the two copies.
	for _, e := range cover.Edges() {
		if (e.U < g.N()) == (e.V < g.N()) {
			t.Fatalf("cover edge %v within one side", e)
		}
	}
}

func TestInducedAndRemove(t *testing.T) {
	g := Complete(4)
	sub, idx := g.InducedSubgraph([]int{0, 2, 3})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3 wrong: %v", sub)
	}
	if idx[2] != 1 {
		t.Errorf("index map wrong: %v", idx)
	}
	rm, _ := g.RemoveNodes(1)
	if rm.N() != 3 || rm.M() != 3 {
		t.Errorf("RemoveNodes wrong: %v", rm)
	}
}

func TestOddComponentsTutte(t *testing.T) {
	g := NoOneFactorCubic()
	rest, _ := g.RemoveNodes(0)
	if got := rest.OddComponents(); got != 3 {
		t.Errorf("o(G-c) = %d, want 3 (Tutte violation)", got)
	}
}

func TestRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 8, 25} {
		tr := RandomTree(n, rng)
		if tr.N() != n || tr.M() != max(0, n-1) || !tr.IsConnected() {
			t.Errorf("RandomTree(%d) not a tree: %v", n, tr)
		}
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, tc := range []struct{ n, k int }{{8, 3}, {10, 4}, {12, 3}, {10, 5}} {
		g, err := RandomRegular(tc.n, tc.k, rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.k, err)
		}
		if k, ok := g.IsRegular(); !ok || k != tc.k {
			t.Errorf("RandomRegular(%d,%d) not %d-regular", tc.n, tc.k, tc.k)
		}
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("odd nk accepted")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Error("k >= n accepted")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
