package graph

// Fixed graphs used by the paper's figures and separation proofs.

// Figure1Graph returns the 4-node example graph of Figures 1, 2, 6 and 7:
// a triangle {0,1,2} with a pendant node 3 attached to node 0. Degrees are
// (3, 2, 2, 1), matching the port counts drawn in the figure.
func Figure1Graph() *Graph {
	return MustNew(4, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}})
}

// NoOneFactorCubic returns the 16-node 3-regular connected graph without a
// 1-factor used in Figure 9 (after Bondy–Murty, Figure 5.10). Construction:
// a cut vertex c = 0 joined to three disjoint 5-node gadgets. Each gadget
// {a,b,c',d,e} has edges ab, ac', bd, be, c'd, c'e, de, with connector a
// joined to the centre. Removing the centre leaves three odd components, so
// Tutte's condition fails: o(G − {0}) = 3 > 1.
func NoOneFactorCubic() *Graph {
	edges := make([]Edge, 0, 24)
	n := 1 // node 0 is the centre
	for g := 0; g < 3; g++ {
		a, b, c, d, e := n, n+1, n+2, n+3, n+4
		n += 5
		edges = append(edges,
			Edge{U: 0, V: a},
			Edge{U: a, V: b}, Edge{U: a, V: c},
			Edge{U: b, V: d}, Edge{U: b, V: e},
			Edge{U: c, V: d}, Edge{U: c, V: e},
			Edge{U: d, V: e},
		)
	}
	return MustNew(n, edges)
}

// Theorem13Witness returns the disjoint-union witness graph used for the
// SB ⊊ MB separation (Theorem 13), together with the pair of "white" nodes
// (u, w) that every valid solution of the odd-odd problem must separate,
// although they are bisimilar in K₋,₋.
//
// Component 1: hub u with two leaves and one path of length 2
// (u–a1, u–a2, u–b1, b1–c1). u has neighbour degrees (1, 1, 2): two odd.
//
// Component 2: hub w with one leaf and two paths of length 2
// (w–a3, w–b2, b2–c2, w–b3, b3–c3). w has neighbour degrees (1, 2, 2): one
// odd.
//
// In K₋,₋ (set-based view, no counting) the equivalence classes are
// {hubs}, {hub leaves}, {middle nodes}, {tail leaves}; u and w fall in the
// same class, yet the odd-odd problem demands output 0 at u and 1 at w.
func Theorem13Witness() (g *Graph, u, w int) {
	// Component 1 nodes: 0=u, 1=a1, 2=a2, 3=b1, 4=c1.
	comp1 := MustNew(5, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 3, V: 4}})
	// Component 2 nodes: 0=w, 1=a3, 2=b2, 3=c2, 4=b3, 5=c3.
	comp2 := MustNew(6, []Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 2, V: 3}, {U: 0, V: 4}, {U: 4, V: 5},
	})
	return DisjointUnion(comp1, comp2), 0, 5
}
