package graph

import (
	"math/rand"
	"testing"
)

func TestBlossomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(9)
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					edges = append(edges, Edge{U: u, V: v})
				}
			}
		}
		g := MustNew(n, edges)
		mate := MaximumMatching(g)
		if !IsMatching(g, MatchingEdges(mate)) {
			t.Fatalf("blossom produced a non-matching on %v", g)
		}
		want := MaxMatchingBruteForce(g)
		if got := MatchingSize(mate); got != want {
			t.Fatalf("trial %d: blossom ν=%d, brute force ν=%d on %v edges=%v",
				trial, got, want, g, edges)
		}
	}
}

func TestBlossomKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		nu   int
	}{
		{"empty", MustNew(3, nil), 0},
		{"path4", Path(4), 2},
		{"path5", Path(5), 2},
		{"cycle5", Cycle(5), 2},
		{"cycle6", Cycle(6), 3},
		{"k4", Complete(4), 2},
		{"petersen", Petersen(), 5},
		{"star5", Star(5), 1},
		{"no1factor", NoOneFactorCubic(), 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Nu(tc.g); got != tc.nu {
				t.Errorf("ν = %d, want %d", got, tc.nu)
			}
		})
	}
}

func TestPerfectMatchingDetection(t *testing.T) {
	if !HasPerfectMatching(Petersen()) {
		t.Error("Petersen has a 1-factor")
	}
	if HasPerfectMatching(NoOneFactorCubic()) {
		t.Error("Figure 9a graph must have no 1-factor")
	}
	if HasPerfectMatching(Path(3)) {
		t.Error("odd-order graph cannot have a 1-factor")
	}
	if !HasPerfectMatching(Cycle(8)) {
		t.Error("even cycle has a 1-factor")
	}
}

func TestIsPerfectMatchingValidator(t *testing.T) {
	g := Cycle(4)
	good := []Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	if !IsPerfectMatching(g, good) {
		t.Error("valid perfect matching rejected")
	}
	if IsPerfectMatching(g, []Edge{{U: 0, V: 1}}) {
		t.Error("half matching accepted as perfect")
	}
	if IsMatching(g, []Edge{{U: 0, V: 2}}) {
		t.Error("non-edge accepted in matching")
	}
	if IsMatching(g, []Edge{{U: 0, V: 1}, {U: 1, V: 2}}) {
		t.Error("overlapping edges accepted")
	}
}

func TestMinVertexCoverBruteForce(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		size int
	}{
		{"star5", Star(5), 1},
		{"path4", Path(4), 2},
		{"cycle5", Cycle(5), 3},
		{"k4", Complete(4), 3},
		{"empty", MustNew(4, nil), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := MinVertexCoverBruteForce(tc.g); got != tc.size {
				t.Errorf("OPT = %d, want %d", got, tc.size)
			}
		})
	}
}

func TestKonigOnBipartite(t *testing.T) {
	// König: in bipartite graphs minimum vertex cover = maximum matching.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		a, b := 1+rng.Intn(4), 1+rng.Intn(4)
		var edges []Edge
		for i := 0; i < a; i++ {
			for j := 0; j < b; j++ {
				if rng.Intn(2) == 0 {
					edges = append(edges, Edge{U: i, V: a + j})
				}
			}
		}
		g := MustNew(a+b, edges)
		if Nu(g) != MinVertexCoverBruteForce(g) {
			t.Fatalf("König violated on %v", g)
		}
	}
}

func TestIsVertexCover(t *testing.T) {
	g := Path(3)
	if !IsVertexCover(g, []bool{false, true, false}) {
		t.Error("middle node covers P3")
	}
	if IsVertexCover(g, []bool{true, false, false}) {
		t.Error("endpoint alone does not cover P3")
	}
}

func BenchmarkBlossom(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	g, err := RandomRegular(100, 3, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximumMatching(g)
	}
}
