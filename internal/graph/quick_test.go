package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraphFromSeed derives a random simple graph deterministically from
// a seed, for quick properties.
func randomGraphFromSeed(seed int64, maxN int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(maxN)
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(3) == 0 {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
	}
	return MustNew(n, edges)
}

func TestQuickHandshake(t *testing.T) {
	// Σ deg(v) = 2|E| on every graph.
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed, 12)
		total := 0
		for v := 0; v < g.N(); v++ {
			total += g.Degree(v)
		}
		return total == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed, 12)
		seen := make([]bool, g.N())
		total := 0
		for _, comp := range g.Components() {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == g.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDoubleCoverInvariants(t *testing.T) {
	// The double cover is always bipartite with doubled counts, and
	// preserves the degree of each node in both copies.
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed, 10)
		c := DoubleCover(g)
		if c.N() != 2*g.N() || c.M() != 2*g.M() {
			return false
		}
		if _, ok := c.Bipartition(); !ok {
			return false
		}
		for v := 0; v < g.N(); v++ {
			if c.Degree(v) != g.Degree(v) || c.Degree(v+g.N()) != g.Degree(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMatchingIsMatching(t *testing.T) {
	// Blossom output is always a valid matching and never exceeds ⌊n/2⌋.
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed, 14)
		mate := MaximumMatching(g)
		es := MatchingEdges(mate)
		return IsMatching(g, es) && 2*len(es) <= g.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickGallaiIdentity(t *testing.T) {
	// König–Egerváry style sanity on all graphs: ν(G) ≤ τ(G) ≤ 2ν(G),
	// where τ is the minimum vertex cover.
	f := func(seed int64) bool {
		g := randomGraphFromSeed(seed, 10)
		nu := Nu(g)
		tau := MinVertexCoverBruteForce(g)
		return nu <= tau && tau <= 2*nu
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionCounts(t *testing.T) {
	f := func(a, b int64) bool {
		g := randomGraphFromSeed(a, 8)
		h := randomGraphFromSeed(b, 8)
		u := DisjointUnion(g, h)
		return u.N() == g.N()+h.N() && u.M() == g.M()+h.M() &&
			len(u.Components()) == len(g.Components())+len(h.Components())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
