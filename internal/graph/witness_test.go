package graph

import "testing"

func TestFigure1GraphShape(t *testing.T) {
	g := Figure1Graph()
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("shape wrong: %v", g)
	}
	want := []int{3, 2, 2, 1}
	for v, d := range want {
		if g.Degree(v) != d {
			t.Errorf("deg(%d)=%d want %d", v, g.Degree(v), d)
		}
	}
}

func TestFigure9NoOneFactor(t *testing.T) {
	g := NoOneFactorCubic()
	if k, ok := g.IsRegular(); !ok || k != 3 {
		t.Fatalf("not 3-regular: %v", g)
	}
	if !g.IsConnected() {
		t.Fatal("not connected")
	}
	if g.N() != 16 {
		t.Fatalf("n=%d, want 16", g.N())
	}
	if HasPerfectMatching(g) {
		t.Fatal("graph must have no 1-factor (blossom check)")
	}
	if Nu(g) != 7 {
		t.Errorf("ν=%d, want 7", Nu(g))
	}
	rest, _ := g.RemoveNodes(0)
	if rest.OddComponents() != 3 {
		t.Errorf("o(G-c)=%d, want 3", rest.OddComponents())
	}
}

func TestTheorem13WitnessShape(t *testing.T) {
	g, u, w := Theorem13Witness()
	if g.N() != 11 || g.M() != 9 {
		t.Fatalf("witness shape wrong: %v", g)
	}
	if g.Degree(u) != 3 || g.Degree(w) != 3 {
		t.Fatalf("hubs must have degree 3, got %d and %d", g.Degree(u), g.Degree(w))
	}
	countOdd := func(v int) int {
		c := 0
		for _, x := range g.Neighbors(v) {
			if g.Degree(x)%2 == 1 {
				c++
			}
		}
		return c
	}
	if countOdd(u) != 2 {
		t.Errorf("u should have 2 odd-degree neighbours, has %d", countOdd(u))
	}
	if countOdd(w) != 1 {
		t.Errorf("w should have 1 odd-degree neighbour, has %d", countOdd(w))
	}
	if len(g.Components()) != 2 {
		t.Errorf("witness should have 2 components")
	}
}
