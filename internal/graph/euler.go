package graph

import "fmt"

// Eulerian circuits and Petersen's 2-factorization theorem (1891), which
// the paper cites as the root of the degree-parity phenomena in the
// port-numbering model (§3.3): every 2k-regular graph decomposes into k
// edge-disjoint 2-factors. The construction orients an Eulerian circuit,
// yielding a k-in/k-out digraph whose out/in bipartite graph is k-regular;
// its 1-factorization (Hall/König, shared with Lemma 15) projects back to
// the 2-factors.

// EulerianCircuit returns a closed walk traversing every edge exactly once,
// as a sequence of nodes (first = last), using Hierholzer's algorithm. It
// requires every degree even and all edges in one connected component.
func EulerianCircuit(g *Graph) ([]int, error) {
	if g.M() == 0 {
		return nil, fmt.Errorf("graph: no edges to traverse")
	}
	start := -1
	for v := 0; v < g.N(); v++ {
		if g.Degree(v)%2 == 1 {
			return nil, fmt.Errorf("graph: node %d has odd degree %d", v, g.Degree(v))
		}
		if start == -1 && g.Degree(v) > 0 {
			start = v
		}
	}
	// All edges must lie in one component.
	nonTrivial := 0
	for _, comp := range g.Components() {
		for _, v := range comp {
			if g.Degree(v) > 0 {
				nonTrivial++
				break
			}
		}
	}
	if nonTrivial > 1 {
		return nil, fmt.Errorf("graph: edges span %d components", nonTrivial)
	}

	// Hierholzer with per-node adjacency cursors and a used-edge set.
	used := make(map[Edge]bool, g.M())
	cursor := make([]int, g.N())
	var stack, circuit []int
	stack = append(stack, start)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		advanced := false
		for cursor[v] < g.Degree(v) {
			w := g.Neighbor(v, cursor[v])
			e := Edge{U: v, V: w}.normalise()
			if used[e] {
				cursor[v]++
				continue
			}
			used[e] = true
			stack = append(stack, w)
			advanced = true
			break
		}
		if !advanced {
			circuit = append(circuit, v)
			stack = stack[:len(stack)-1]
		}
	}
	if len(circuit) != g.M()+1 {
		return nil, fmt.Errorf("graph: circuit covers %d edges of %d", len(circuit)-1, g.M())
	}
	return circuit, nil
}

// IsTwoFactor reports whether the edge set is a spanning 2-regular
// subgraph of g (a disjoint union of cycles covering every node).
func IsTwoFactor(g *Graph, factor []Edge) bool {
	deg := make([]int, g.N())
	for _, e := range factor {
		if !g.HasEdge(e.U, e.V) {
			return false
		}
		deg[e.U]++
		deg[e.V]++
	}
	for _, d := range deg {
		if d != 2 {
			return false
		}
	}
	return true
}

// TwoFactorization decomposes a connected 2k-regular graph into k
// edge-disjoint 2-factors (Petersen 1891).
func TwoFactorization(g *Graph) ([][]Edge, error) {
	k2, reg := g.IsRegular()
	if !reg || k2%2 != 0 {
		return nil, fmt.Errorf("graph: 2-factorization needs a 2k-regular graph, got %v", g)
	}
	if k2 == 0 {
		return nil, nil
	}
	circuit, err := EulerianCircuit(g)
	if err != nil {
		return nil, fmt.Errorf("graph: 2-factorization: %w", err)
	}
	// Orient edges along the circuit: arc circuit[i] → circuit[i+1].
	// Bipartite graph B: left v_out = v, right v_in = v + n; arc u→v gives
	// edge {u, v+n}. B is k-regular bipartite.
	n := g.N()
	var bEdges []Edge
	for i := 0; i+1 < len(circuit); i++ {
		bEdges = append(bEdges, Edge{U: circuit[i], V: circuit[i+1] + n})
	}
	b, err := New(2*n, bEdges)
	if err != nil {
		return nil, fmt.Errorf("graph: orientation bipartite graph: %w", err)
	}
	factors, err := OneFactorization(b)
	if err != nil {
		return nil, fmt.Errorf("graph: factorising orientation: %w", err)
	}
	out := make([][]Edge, 0, len(factors))
	for _, f := range factors {
		twoFactor := make([]Edge, 0, n)
		for _, e := range f {
			// {u, v+n} projects to the original edge {u, v}.
			twoFactor = append(twoFactor, Edge{U: e.U, V: e.V - n}.normalise())
		}
		if !IsTwoFactor(g, twoFactor) {
			return nil, fmt.Errorf("graph: projected factor is not a 2-factor")
		}
		out = append(out, twoFactor)
	}
	return out, nil
}
