package graph

// Maximum matching in general graphs via Edmonds' blossom algorithm, plus a
// brute-force reference used in tests. Matching is the graph-theoretic core
// of Section 5.3: Lemma 16 ties symmetric consistent port numberings to
// 1-factors, and the Theorem 17 witness is a cubic graph with no 1-factor.
// The vertex-cover experiments also use ν(G) as the certified lower bound
// OPT ≥ ν.

// MaximumMatching returns a maximum matching as mate[v] = partner or -1,
// computed with Edmonds' blossom algorithm in O(V^3).
func MaximumMatching(g *Graph) []int {
	n := g.N()
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	base := make([]int, n)
	parent := make([]int, n)
	blossom := make([]bool, n)
	inQueue := make([]bool, n)

	lca := func(a, b int) int {
		used := make([]bool, n)
		for {
			a = base[a]
			used[a] = true
			if mate[a] == -1 {
				break
			}
			a = parent[mate[a]]
		}
		for {
			b = base[b]
			if used[b] {
				return b
			}
			b = parent[mate[b]]
		}
	}

	var queue []int
	markPath := func(v, b, child int) {
		for base[v] != b {
			blossom[base[v]] = true
			blossom[base[mate[v]]] = true
			parent[v] = child
			child = mate[v]
			v = parent[mate[v]]
		}
	}

	findPath := func(root int) int {
		for i := range parent {
			parent[i] = -1
			inQueue[i] = false
			base[i] = i
		}
		queue = queue[:0]
		queue = append(queue, root)
		inQueue[root] = true
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, to := range g.Neighbors(v) {
				if base[v] == base[to] || mate[v] == to {
					continue
				}
				if to == root || (mate[to] != -1 && parent[mate[to]] != -1) {
					// Odd cycle: contract the blossom.
					curBase := lca(v, to)
					for i := range blossom {
						blossom[i] = false
					}
					markPath(v, curBase, to)
					markPath(to, curBase, v)
					for i := 0; i < n; i++ {
						if blossom[base[i]] {
							base[i] = curBase
							if !inQueue[i] {
								inQueue[i] = true
								queue = append(queue, i)
							}
						}
					}
				} else if parent[to] == -1 {
					parent[to] = v
					if mate[to] == -1 {
						return to // augmenting path found
					}
					if !inQueue[mate[to]] {
						inQueue[mate[to]] = true
						queue = append(queue, mate[to])
					}
				}
			}
		}
		return -1
	}

	for v := 0; v < n; v++ {
		if mate[v] != -1 {
			continue
		}
		if end := findPath(v); end != -1 {
			// Augment along the alternating path ending at end.
			for end != -1 {
				pv := parent[end]
				ppv := mate[pv]
				mate[end] = pv
				mate[pv] = end
				end = ppv
			}
		}
	}
	return mate
}

// MatchingSize returns the number of matched pairs ν(G) in a mate array.
func MatchingSize(mate []int) int {
	c := 0
	for v, m := range mate {
		if m > v {
			c++
		}
	}
	return c
}

// Nu returns ν(G), the maximum matching size.
func Nu(g *Graph) int { return MatchingSize(MaximumMatching(g)) }

// HasPerfectMatching reports whether g has a 1-factor.
func HasPerfectMatching(g *Graph) bool {
	return g.N()%2 == 0 && 2*Nu(g) == g.N()
}

// MatchingEdges converts a mate array into the matched edge set.
func MatchingEdges(mate []int) []Edge {
	var es []Edge
	for v, m := range mate {
		if m > v {
			es = append(es, Edge{U: v, V: m})
		}
	}
	return es
}

// IsMatching reports whether es is a matching in g (disjoint real edges).
func IsMatching(g *Graph, es []Edge) bool {
	used := make([]bool, g.N())
	for _, e := range es {
		if !g.HasEdge(e.U, e.V) || used[e.U] || used[e.V] {
			return false
		}
		used[e.U] = true
		used[e.V] = true
	}
	return true
}

// IsPerfectMatching reports whether es is a 1-factor of g.
func IsPerfectMatching(g *Graph, es []Edge) bool {
	return IsMatching(g, es) && 2*len(es) == g.N()
}

// MaxMatchingBruteForce computes ν(G) by exhaustive search over edge
// subsets with branch and bound. Exponential; only for cross-checking the
// blossom implementation on small graphs.
func MaxMatchingBruteForce(g *Graph) int {
	edges := g.Edges()
	used := make([]bool, g.N())
	best := 0
	var rec func(i, size int)
	rec = func(i, size int) {
		if size+(len(edges)-i) <= best {
			return // bound: cannot beat best
		}
		if i == len(edges) {
			if size > best {
				best = size
			}
			return
		}
		e := edges[i]
		if !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			rec(i+1, size+1)
			used[e.U], used[e.V] = false, false
		}
		rec(i+1, size)
	}
	rec(0, 0)
	return best
}

// MinVertexCoverBruteForce returns the size of a minimum vertex cover by
// branching on an uncovered edge. Exponential in the cover size; fine for
// the small graphs in the experiment suite (used to certify approximation
// ratios exactly).
func MinVertexCoverBruteForce(g *Graph) int {
	edges := g.Edges()
	inCover := make([]bool, g.N())
	best := g.N()
	var rec func(size int)
	rec = func(size int) {
		if size >= best {
			return
		}
		// Find an uncovered edge.
		var pick *Edge
		for i := range edges {
			if !inCover[edges[i].U] && !inCover[edges[i].V] {
				pick = &edges[i]
				break
			}
		}
		if pick == nil {
			best = size
			return
		}
		for _, v := range []int{pick.U, pick.V} {
			inCover[v] = true
			rec(size + 1)
			inCover[v] = false
		}
	}
	rec(0)
	return best
}

// IsVertexCover reports whether the node set (as indicator) covers all edges.
func IsVertexCover(g *Graph, in []bool) bool {
	for _, e := range g.Edges() {
		if !in[e.U] && !in[e.V] {
			return false
		}
	}
	return true
}
