package graph

import "testing"

func TestExpanderRegularConnected(t *testing.T) {
	for _, tc := range []struct{ n, d int }{
		{10, 3}, {20, 4}, {50, 5}, {100, 6}, {64, 3},
	} {
		g, err := Expander(tc.n, tc.d, 7)
		if err != nil {
			t.Fatalf("Expander(%d,%d): %v", tc.n, tc.d, err)
		}
		if g.N() != tc.n {
			t.Errorf("Expander(%d,%d): N = %d", tc.n, tc.d, g.N())
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != tc.d {
				t.Errorf("Expander(%d,%d): degree(%d) = %d", tc.n, tc.d, v, g.Degree(v))
			}
		}
		if !g.IsConnected() {
			t.Errorf("Expander(%d,%d): disconnected", tc.n, tc.d)
		}
	}
}

func TestExpanderSeedDeterminism(t *testing.T) {
	a, err := Expander(40, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expander(40, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.N(); v++ {
		av, bv := a.Neighbors(v), b.Neighbors(v)
		if len(av) != len(bv) {
			t.Fatalf("node %d: degree differs across same-seed draws", v)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("node %d: adjacency differs across same-seed draws", v)
			}
		}
	}
}

func TestExpanderRejectsBadParameters(t *testing.T) {
	for _, tc := range []struct{ n, d int }{
		{5, 2}, // d < 3
		{4, 4}, // d >= n
		{7, 3}, // nd odd
	} {
		if _, err := Expander(tc.n, tc.d, 1); err == nil {
			t.Errorf("Expander(%d,%d) succeeded, want error", tc.n, tc.d)
		}
	}
}

func TestPreferentialAttachmentShape(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{10, 1}, {50, 2}, {100, 3}, {200, 4},
	} {
		g, err := PreferentialAttachment(tc.n, tc.m, 13)
		if err != nil {
			t.Fatalf("PreferentialAttachment(%d,%d): %v", tc.n, tc.m, err)
		}
		if g.N() != tc.n {
			t.Errorf("PA(%d,%d): N = %d", tc.n, tc.m, g.N())
		}
		wantEdges := tc.m*(tc.m+1)/2 + (tc.n-tc.m-1)*tc.m
		if g.M() != wantEdges {
			t.Errorf("PA(%d,%d): M = %d, want %d", tc.n, tc.m, g.M(), wantEdges)
		}
		if !g.IsConnected() {
			t.Errorf("PA(%d,%d): disconnected", tc.n, tc.m)
		}
		// Every node keeps at least its m attachment edges (seed nodes have
		// the clique).
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) < tc.m {
				t.Errorf("PA(%d,%d): degree(%d) = %d < m", tc.n, tc.m, v, g.Degree(v))
			}
		}
	}
}

func TestPreferentialAttachmentSkew(t *testing.T) {
	// Degree-proportional attachment must produce hubs: the maximum degree
	// should clearly exceed the m+small degrees of late arrivals.
	g, err := PreferentialAttachment(500, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() < 3*2 {
		t.Errorf("max degree %d shows no preferential skew", g.MaxDegree())
	}
}

func TestPreferentialAttachmentSeedDeterminism(t *testing.T) {
	a, err := PreferentialAttachment(60, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PreferentialAttachment(60, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.N(); v++ {
		av, bv := a.Neighbors(v), b.Neighbors(v)
		if len(av) != len(bv) {
			t.Fatalf("node %d: degree differs across same-seed draws", v)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("node %d: adjacency differs across same-seed draws", v)
			}
		}
	}
}

func TestPreferentialAttachmentRejectsBadParameters(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{5, 0}, {3, 2}, {2, 1},
	} {
		if _, err := PreferentialAttachment(tc.n, tc.m, 1); err == nil {
			t.Errorf("PreferentialAttachment(%d,%d) succeeded, want error", tc.n, tc.m)
		}
	}
}
