package graph_test

import (
	"fmt"

	"weakmodels/internal/graph"
)

// Example verifies the Figure 9a witness in four lines: 3-regular,
// connected, no perfect matching (blossom), Tutte violation at the centre.
func Example() {
	g := graph.NoOneFactorCubic()
	k, _ := g.IsRegular()
	rest, _ := g.RemoveNodes(0)
	fmt.Println("regular:", k)
	fmt.Println("connected:", g.IsConnected())
	fmt.Println("perfect matching:", graph.HasPerfectMatching(g))
	fmt.Println("odd components after removing the centre:", rest.OddComponents())
	// Output:
	// regular: 3
	// connected: true
	// perfect matching: false
	// odd components after removing the centre: 3
}

// ExampleOneFactorization decomposes a regular bipartite graph into
// perfect matchings (Lemma 15's engine).
func ExampleOneFactorization() {
	g := graph.CompleteBipartite(3, 3)
	factors, err := graph.OneFactorization(g)
	fmt.Println(len(factors), err)
	for _, f := range factors {
		fmt.Println(graph.IsPerfectMatching(g, f))
	}
	// Output:
	// 3 <nil>
	// true
	// true
	// true
}
