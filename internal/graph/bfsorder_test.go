package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// shardOfMap inverts a shard partition into a node → shard id lookup.
func shardOfMap(t *testing.T, n int, shards [][]int) []int {
	t.Helper()
	shardOf := make([]int, n)
	for i := range shardOf {
		shardOf[i] = -1
	}
	for s, nodes := range shards {
		for _, v := range nodes {
			if shardOf[v] != -1 {
				t.Fatalf("node %d assigned to shards %d and %d", v, shardOf[v], s)
			}
			shardOf[v] = s
		}
	}
	for v, s := range shardOf {
		if s == -1 {
			t.Fatalf("node %d not assigned to any shard", v)
		}
	}
	return shardOf
}

func TestBFSOrderIsDeterministicPermutation(t *testing.T) {
	graphs := []*Graph{
		Path(7),
		Star(5),
		Torus(6, 6),
		Petersen(),
		DisjointUnion(Cycle(4), Path(3)),
		DisjointUnion(Star(3), MustNew(2, nil)), // two isolated nodes
		MustNew(0, nil),
	}
	for _, g := range graphs {
		order := BFSOrder(g)
		if len(order) != g.N() {
			t.Fatalf("%v: order has %d nodes, want %d", g, len(order), g.N())
		}
		seen := make([]bool, g.N())
		for _, v := range order {
			if v < 0 || v >= g.N() || seen[v] {
				t.Fatalf("%v: order %v is not a permutation", g, order)
			}
			seen[v] = true
		}
		if g.N() > 0 {
			rootDeg := g.Degree(order[0])
			if rootDeg != g.MaxDegree() {
				t.Errorf("%v: root degree %d, want max degree %d", g, rootDeg, g.MaxDegree())
			}
		}
		if again := BFSOrder(g); !reflect.DeepEqual(order, again) {
			t.Errorf("%v: BFSOrder is not deterministic", g)
		}
	}
}

// TestBFSOrderCached: the order is computed once per (immutable) graph and
// the cached slice is shared, so per-run consumers pay O(1) after the
// first call.
func TestBFSOrderCached(t *testing.T) {
	g := Torus(4, 4)
	a, b := BFSOrder(g), BFSOrder(g)
	if &a[0] != &b[0] {
		t.Error("BFSOrder rebuilt the order instead of returning the cache")
	}
}

func TestBFSOrderStarRootsAtCentre(t *testing.T) {
	// Star(4): node 0 is the degree-4 centre, so BFS must start there and
	// then visit the leaves in adjacency (= id) order.
	got := BFSOrder(Star(4))
	want := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BFSOrder(Star(4)) = %v, want %v", got, want)
	}
}

func TestShardByBFSBalancedCover(t *testing.T) {
	g := Torus(5, 7)
	n := g.N()
	for _, w := range []int{1, 2, 3, 8, n, n + 9} {
		shards := ShardByBFS(g, w)
		wantShards := w
		if wantShards > n {
			wantShards = n
		}
		if len(shards) != wantShards {
			t.Fatalf("w=%d: %d shards, want %d", w, len(shards), wantShards)
		}
		for s, nodes := range shards {
			if len(nodes) == 0 {
				t.Fatalf("w=%d: shard %d is empty", w, s)
			}
			if diff := len(nodes) - n/wantShards; diff < 0 || diff > 1 {
				t.Errorf("w=%d: shard %d has %d nodes, want %d or %d",
					w, s, len(nodes), n/wantShards, n/wantShards+1)
			}
		}
		shardOfMap(t, n, shards) // disjoint cover
	}
	if got := ShardByBFS(MustNew(0, nil), 4); got != nil {
		t.Errorf("ShardByBFS on the empty graph = %v, want nil", got)
	}
}

// TestShardByBFSLocality is the point of the BFS order: on structured
// graphs, contiguous BFS shards must cut far fewer links than sharding the
// same nodes in a random order. Hub-heavy small-world graphs are near
// expanders — every balanced partition cuts most links — so there the BFS
// order only has to be no worse than random.
func TestShardByBFSLocality(t *testing.T) {
	pa, err := PreferentialAttachment(800, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	randomCutOf := func(g *Graph, w int) int {
		// The adversarial baseline: shards of a seeded random permutation.
		perm := rand.New(rand.NewSource(3)).Perm(g.N())
		randomOf := make([]int, g.N())
		for rank, v := range perm {
			randomOf[v] = rank * w / g.N()
		}
		return CutLinks(g, randomOf)
	}
	const w = 4
	torus := Torus(24, 24)
	bfsCut := CutLinks(torus, shardOfMap(t, torus.N(), ShardByBFS(torus, w)))
	if randomCut := randomCutOf(torus, w); bfsCut*2 >= randomCut {
		t.Errorf("%v: BFS shards cut %d links, random shards %d — want well under half",
			torus, bfsCut, randomCut)
	}
	paCut := CutLinks(pa, shardOfMap(t, pa.N(), ShardByBFS(pa, w)))
	if randomCut := randomCutOf(pa, w); paCut > randomCut {
		t.Errorf("%v: BFS shards cut %d links, random shards only %d",
			pa, paCut, randomCut)
	}
}
