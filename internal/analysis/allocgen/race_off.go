//go:build !race

package allocgen

// RaceEnabled reports whether the build runs under the race detector,
// whose runtime allocates on instrumented paths and would break the
// AllocsPerRun pins.
const RaceEnabled = false
