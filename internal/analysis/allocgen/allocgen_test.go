package allocgen_test

import (
	"io/fs"
	"path/filepath"
	"testing"

	"weakmodels/internal/analysis/allocgen"
)

// TestGeneratedFilesInSync walks every package of the module and checks
// the //weakvet:noalloc ↔ generated-pin correspondence both ways: a
// package with annotated functions must carry a byte-identical,
// freshly-regenerable zz_generated_weakvet_alloc_test.go, and a package
// without them must not. Annotating a function and forgetting to run
// the generator fails here, not in review.
func TestGeneratedFilesInSync(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	checked := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		switch d.Name() {
		case ".git", "testdata":
			return filepath.SkipDir
		}
		if cerr := allocgen.Check(path); cerr != nil {
			t.Errorf("%v", cerr)
		}
		checked++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked < 10 {
		t.Fatalf("walked only %d directories from %s; wrong root?", checked, root)
	}
}
