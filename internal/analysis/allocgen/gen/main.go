// Command gen regenerates the zz_generated_weakvet_alloc_test.go pin
// files from //weakvet:noalloc annotations.
//
// Usage:
//
//	go run weakmodels/internal/analysis/allocgen/gen <pkg-dir>...
//
// For each package directory it writes the pin file when the package
// has annotated functions, and removes a stale one when it does not.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"weakmodels/internal/analysis/allocgen"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintf(os.Stderr, "usage: gen <pkg-dir>...\n")
		os.Exit(2)
	}
	for _, dir := range os.Args[1:] {
		if err := generate(dir); err != nil {
			fmt.Fprintf(os.Stderr, "gen: %v\n", err)
			os.Exit(1)
		}
	}
}

func generate(dir string) error {
	content, ok, err := allocgen.Generate(dir)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, allocgen.Filename)
	if !ok {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
		fmt.Printf("%s: no //weakvet:noalloc functions\n", dir)
		return nil
	}
	if err := os.WriteFile(path, content, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
