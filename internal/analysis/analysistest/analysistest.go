// Package analysistest runs weakvet analyzers over fixture packages,
// mirroring the golang.org/x/tools/go/analysis/analysistest contract on
// the standard library only.
//
// Fixtures live under testdata/src/<pkg>/ next to the analyzer's test.
// Every fixture file marks the diagnostics it expects with trailing
// comments of the form
//
//	for k := range m { // want "nondeterministic map iteration"
//
// where each quoted string is a regular expression that must match a
// diagnostic reported on that line. A want comment on a line of its own
// binds the previous line instead — the form used when the flagged line
// already ends in a line comment (a //weakvet: directive, say). A
// diagnostic with no matching expectation, or an expectation with no
// matching diagnostic, fails the test.
//
// Imports inside fixtures resolve in two steps: a path with a directory
// under testdata/src/ is type-checked from those sources (so fixtures
// can model repo packages like obs — the analyzers match hook types by
// package name, making the fake interchangeable with the real one), and
// anything else is loaded from compiled export data via
// `go list -deps -export` (internal/analysis/load).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"weakmodels/internal/analysis"
	"weakmodels/internal/analysis/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run applies the analyzer to each fixture package under
// testdata/src/<pkg> and checks the diagnostics against the files'
// `// want` expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := newLoader(testdata)
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			checked, err := ld.check(pkg)
			if err != nil {
				t.Fatal(err)
			}
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      ld.fset,
				Files:     checked.files,
				Pkg:       checked.pkg,
				TypesInfo: checked.info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("analyzer %s: %v", a.Name, err)
			}
			matchExpectations(t, ld.fset, checked.goFiles, diags)
		})
	}
}

// expectation is one `// want "re"` marker.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func matchExpectations(t *testing.T, fset *token.FileSet, goFiles []string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range goFiles {
		ws, err := parseWants(f)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// parseWants extracts the `// want "re" ["re"...]` markers of one file.
func parseWants(file string) ([]*expectation, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	for i, lineText := range strings.Split(string(data), "\n") {
		prefix, rest, found := strings.Cut(lineText, "// want ")
		if !found {
			continue
		}
		// A want on a line of its own binds the previous line: directives
		// are themselves line comments, so their expectations cannot share
		// the line.
		line := i + 1
		if strings.TrimSpace(prefix) == "" {
			line = i
		}
		rest = strings.TrimSpace(rest)
		for rest != "" {
			var quoted string
			switch rest[0] {
			case '"':
				end := strings.Index(rest[1:], `"`)
				if end < 0 {
					return nil, fmt.Errorf("%s:%d: unterminated want expectation", file, i+1)
				}
				quoted = rest[:end+2]
				rest = strings.TrimSpace(rest[end+2:])
			case '`':
				end := strings.Index(rest[1:], "`")
				if end < 0 {
					return nil, fmt.Errorf("%s:%d: unterminated want expectation", file, i+1)
				}
				quoted = rest[:end+2]
				rest = strings.TrimSpace(rest[end+2:])
			default:
				return nil, fmt.Errorf("%s:%d: malformed want expectation at %q", file, i+1, rest)
			}
			raw, err := strconv.Unquote(quoted)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: unquoting %s: %v", file, i+1, quoted, err)
			}
			re, err := regexp.Compile(raw)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: compiling %q: %v", file, i+1, raw, err)
			}
			out = append(out, &expectation{file: file, line: line, re: re, raw: raw})
		}
	}
	return out, nil
}

// loader type-checks fixture packages, resolving testdata-local imports
// from source and everything else from export data.
type loader struct {
	testdata string
	fset     *token.FileSet
	cache    map[string]*checkedPkg
	exports  map[string]string
	gc       types.Importer
}

type checkedPkg struct {
	pkg     *types.Package
	files   []*ast.File
	goFiles []string
	info    *types.Info
}

func newLoader(testdata string) *loader {
	return &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		cache:    map[string]*checkedPkg{},
	}
}

// check loads and type-checks the fixture package at testdata/src/path.
func (ld *loader) check(path string) (*checkedPkg, error) {
	if p, ok := ld.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	lp, err := load.Check(ld.fset, importerFunc(ld.importPkg), path, "", goFiles)
	if err != nil {
		return nil, err
	}
	p := &checkedPkg{pkg: lp.Pkg, files: lp.Files, goFiles: goFiles, info: lp.Info}
	ld.cache[path] = p
	return p, nil
}

// importPkg resolves one fixture import: testdata-local packages from
// source, the rest from export data (resolved lazily, one `go list` for
// the whole closure of the first external import).
func (ld *loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, err := os.Stat(filepath.Join(ld.testdata, "src", filepath.FromSlash(path))); err == nil {
		p, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	if ld.gc == nil {
		// Resolve the full stdlib closure once; "std" lists every standard
		// package, so any fixture import is covered by one invocation.
		exports, err := load.Exports(".", "std")
		if err != nil {
			return nil, err
		}
		ld.exports = exports
		ld.gc = load.Importer(ld.fset, exports)
	}
	return ld.gc.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
