// Package maporder flags nondeterministic map iteration in the
// determinism-critical packages (analysis.DeterminismCritical).
//
// Go randomises map iteration order per range statement, so any map
// range whose body's effects depend on visit order is a determinism bug
// on the engine's bit-identical-across-workers and byte-exact-replay
// paths. A range over a map (or over maps.Keys/Values/All iterators) is
// reported unless one of:
//
//   - the loop body is provably order-insensitive under a small
//     write-set heuristic: it only performs commutative integer
//     accumulation (n++, n += x, n |= x, n &= x, n ^= x, n *= x),
//     idempotent boolean flagging (found = true), keyed map-to-map
//     transfer (m2[k] = ... indexed by the loop key), delete, pure
//     filtering (if cond { continue }) and extremum updates
//     (if v > best { best = v });
//   - the loop only collects keys/values — or call-free projections of
//     them, like v.field — into a slice that the same function sorts
//     afterwards (the sort-before-use idiom);
//   - the range statement is annotated //weakvet:ordered <why>.
//
// Floating-point accumulation is NOT accepted: float addition is not
// associative, so even a "commutative" += over a map produces
// order-dependent low bits.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"weakmodels/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag nondeterministic map iteration in determinism-critical packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.DeterminismCritical[pass.PkgShortName()] {
		return nil
	}
	for _, file := range pass.Files {
		ix := analysis.NewIndex(pass.Fset, file)
		c := &checker{pass: pass, ix: ix}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				c.walkFunc(fn.Body)
			}
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	ix   *analysis.Index
	// fnBody is the innermost enclosing function body, the scope searched
	// for a later sort of a collected slice.
	fnBody *ast.BlockStmt
}

// walkFunc inspects one function body, re-entering for function
// literals so the sort-after-collect search stays within the closest
// function.
func (c *checker) walkFunc(body *ast.BlockStmt) {
	prev := c.fnBody
	c.fnBody = body
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.walkFunc(n.Body)
			return false
		case *ast.RangeStmt:
			c.checkRange(n)
		}
		return true
	})
	c.fnBody = prev
}

func (c *checker) checkRange(rng *ast.RangeStmt) {
	overMap := isMapType(c.pass.TypesInfo.TypeOf(rng.X))
	overIter := c.mapIterCall(rng.X)
	if !overMap && !overIter {
		return
	}
	if _, ok := c.ix.Allows(c.pass.Fset, rng, "ordered"); ok {
		return
	}
	if overMap && c.orderInsensitive(rng) {
		return
	}
	what := "map"
	if overIter {
		what = "maps iterator"
	}
	c.pass.Reportf(rng.Pos(),
		"nondeterministic %s iteration in determinism-critical package %q: sort the keys before ranging, make the body order-insensitive, or annotate //weakvet:ordered <why>",
		what, c.pass.PkgShortName())
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mapIterCall reports whether expr contains a maps.Keys/Values/All call
// not wrapped in slices.Sorted/SortedFunc/SortedStableFunc. Ranging such
// an iterator (directly or via slices.Collect) visits in map order.
func (c *checker) mapIterCall(expr ast.Expr) bool {
	nondet := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgFunc(call, "slices", "Sorted", "SortedFunc", "SortedStableFunc") {
			return false // sorted wrapper: whatever is inside is fine
		}
		if pkgFunc(call, "maps", "Keys", "Values", "All") {
			nondet = true
			return false
		}
		return true
	})
	return nondet
}

// pkgFunc reports whether call is pkg.name(...) for one of the names,
// with pkg resolving to a package identifier (not a value).
func pkgFunc(call *ast.CallExpr, pkg string, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkg || id.Obj != nil {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}

// orderInsensitive applies the write-set heuristic to the loop body.
func (c *checker) orderInsensitive(rng *ast.RangeStmt) bool {
	key, _ := rng.Key.(*ast.Ident)
	val, _ := rng.Value.(*ast.Ident)
	return c.stmtsInsensitive(rng.Body.List, key, val, rng)
}

func (c *checker) stmtsInsensitive(stmts []ast.Stmt, key, val *ast.Ident, rng *ast.RangeStmt) bool {
	for _, s := range stmts {
		if !c.stmtInsensitive(s, key, val, rng) {
			return false
		}
	}
	return true
}

func (c *checker) stmtInsensitive(stmt ast.Stmt, key, val *ast.Ident, rng *ast.RangeStmt) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return c.isInteger(s.X)
	case *ast.AssignStmt:
		return c.assignInsensitive(s, key, val, rng)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		// delete is order-free: deleting the same set of keys in any
		// order yields the same map.
		fun, ok := call.Fun.(*ast.Ident)
		return ok && fun.Name == "delete" && c.isBuiltin(fun)
	case *ast.IfStmt:
		return c.ifInsensitive(s, key, val, rng)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.BlockStmt:
		return c.stmtsInsensitive(s.List, key, val, rng)
	case *ast.DeclStmt:
		return true // local declarations don't escape the iteration
	default:
		return false
	}
}

// assignInsensitive accepts the commutative / keyed / collect-then-sort
// assignment forms.
func (c *checker) assignInsensitive(s *ast.AssignStmt, key, val *ast.Ident, rng *ast.RangeStmt) bool {
	switch s.Tok {
	case token.DEFINE:
		return true // fresh per-iteration locals
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		return len(s.Lhs) == 1 && c.isInteger(s.Lhs[0])
	case token.ASSIGN:
	default:
		return false
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	// Keyed map-to-map transfer: m2[...k...] = v — each iteration owns
	// its destination entry, so order cannot matter.
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		return isMapType(c.pass.TypesInfo.TypeOf(idx.X)) && c.mentions(idx.Index, key)
	}
	// Idempotent boolean flag: found = true / done = false.
	if id, ok := rhs.(*ast.Ident); ok && (id.Name == "true" || id.Name == "false") && c.isBuiltin(id) {
		return true
	}
	// Collect-then-sort: s = append(s, key/val...) with a later sort of s
	// in the same function.
	if call, ok := rhs.(*ast.CallExpr); ok {
		if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "append" && c.isBuiltin(fun) && len(call.Args) >= 2 {
			if types.ExprString(call.Args[0]) != types.ExprString(lhs) {
				return false
			}
			for _, a := range call.Args[1:] {
				if !c.pureProjection(a, key, val) {
					return false
				}
			}
			return c.sortedAfter(lhs, rng)
		}
	}
	return false
}

// ifInsensitive accepts pure filters (if cond { continue }), extremum
// updates (if v > best { best = v }), and conditionals whose branches
// are themselves order-insensitive under a call-free condition.
func (c *checker) ifInsensitive(s *ast.IfStmt, key, val *ast.Ident, rng *ast.RangeStmt) bool {
	if s.Init != nil || s.Else != nil || !c.pureCond(s.Cond) {
		return false
	}
	if c.extremumUpdate(s) {
		return true
	}
	return c.stmtsInsensitive(s.Body.List, key, val, rng)
}

// extremumUpdate matches `if a < b { b = a }` and its 3 comparison
// variants: a running min/max is order-free.
func (c *checker) extremumUpdate(s *ast.IfStmt) bool {
	cmp, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || len(s.Body.List) != 1 {
		return false
	}
	switch cmp.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	asg, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	l, r := types.ExprString(asg.Lhs[0]), types.ExprString(asg.Rhs[0])
	cl, cr := types.ExprString(cmp.X), types.ExprString(cmp.Y)
	return (l == cl && r == cr) || (l == cr && r == cl)
}

// pureCond accepts conditions free of calls other than len/cap, so the
// filter itself cannot observe or affect order.
func (c *checker) pureCond(cond ast.Expr) bool {
	pure := true
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			fun, ok := call.Fun.(*ast.Ident)
			if !ok || (fun.Name != "len" && fun.Name != "cap") || !c.isBuiltin(fun) {
				pure = false
				return false
			}
		}
		return true
	})
	return pure
}

// sortedAfter reports whether the enclosing function sorts expr (by
// sort.* or slices.Sort*) after the range statement ends.
func (c *checker) sortedAfter(expr ast.Expr, rng *ast.RangeStmt) bool {
	if c.fnBody == nil {
		return false
	}
	want := types.ExprString(expr)
	found := false
	ast.Inspect(c.fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		isSort := pkgFunc(call, "sort", "Strings", "Ints", "Float64s", "Slice", "SliceStable") ||
			pkgFunc(call, "slices", "Sort", "SortFunc", "SortStableFunc")
		if isSort && types.ExprString(call.Args[0]) == want {
			found = true
			return false
		}
		return true
	})
	return found
}

// pureProjection reports whether e is a call-free expression whose
// every variable is the loop key or value (field selections, constants
// and len/cap allowed): a pure per-element projection, which collected
// under a later sort yields an order-independent slice. Variables from
// outside the loop are rejected — they could mutate across iterations
// and make the collected multiset order-dependent.
func (c *checker) pureProjection(e ast.Expr, key, val *ast.Ident) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fun, isID := n.Fun.(*ast.Ident)
			if !isID || (fun.Name != "len" && fun.Name != "cap") || !c.isBuiltin(fun) {
				ok = false
				return false
			}
		case *ast.SelectorExpr:
			// Sel names a field or method, not a variable: walk X only.
			if !c.pureProjection(n.X, key, val) {
				ok = false
			}
			return false
		case *ast.Ident:
			if c.isIdentOf(n, key) || c.isIdentOf(n, val) {
				return true
			}
			o := c.pass.TypesInfo.ObjectOf(n)
			if o == nil || o.Parent() == types.Universe {
				return true
			}
			if _, isConst := o.(*types.Const); isConst {
				return true
			}
			ok = false
			return false
		}
		return true
	})
	return ok
}

func (c *checker) isInteger(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isBuiltin reports whether id resolves to a universe-scope object
// (true/false/append/delete/len/cap), not a shadowing local.
func (c *checker) isBuiltin(id *ast.Ident) bool {
	if o, ok := c.pass.TypesInfo.Uses[id]; ok {
		return o.Parent() == types.Universe
	}
	return id.Obj == nil
}

func (c *checker) mentions(e ast.Expr, id *ast.Ident) bool {
	if id == nil || id.Name == "_" {
		return false
	}
	target := c.pass.TypesInfo.ObjectOf(id)
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if x, ok := n.(*ast.Ident); ok && x.Name == id.Name && c.pass.TypesInfo.ObjectOf(x) == target {
			found = true
			return false
		}
		return true
	})
	return found
}

func (c *checker) isIdentOf(e ast.Expr, id *ast.Ident) bool {
	if id == nil || id.Name == "_" {
		return false
	}
	x, ok := e.(*ast.Ident)
	return ok && x.Name == id.Name &&
		c.pass.TypesInfo.ObjectOf(x) == c.pass.TypesInfo.ObjectOf(id)
}
