// Fixture for maporder scope gating: "util" is not a
// determinism-critical package, so nothing here is flagged.
package util

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
