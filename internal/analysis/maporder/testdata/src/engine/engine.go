// Fixture for maporder: package named "engine" is determinism-critical.
package engine

import (
	"maps"
	"slices"
	"sort"
)

// collectUnsorted leaks map order into the returned slice: flagged.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "nondeterministic map iteration in determinism-critical package"
		keys = append(keys, k)
	}
	return keys
}

// collectSorted is the collect-then-sort idiom: accepted.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectSlicesSorted uses slices.Sort instead: accepted.
func collectSlicesSorted(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// collectFiltered keeps a pure filter inside the loop: accepted.
func collectFiltered(m map[string]int) []string {
	var keys []string
	for k := range m {
		if len(k) == 0 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// entry is a registry value with a projectable field.
type entry struct{ form string }

// collectProjected collects a pure field projection of the loop value
// and sorts it: accepted.
func collectProjected(m map[string]entry) []string {
	forms := make([]string, 0, len(m))
	for _, e := range m {
		forms = append(forms, e.form)
	}
	sort.Strings(forms)
	return forms
}

// collectOutside appends a variable from outside the loop — it could
// mutate across iterations, so the later sort proves nothing: flagged.
func collectOutside(m map[string]entry, extra string) []string {
	var forms []string
	for _, e := range m { // want "nondeterministic map iteration"
		forms = append(forms, e.form+extra)
	}
	sort.Strings(forms)
	return forms
}

// sumValues is commutative integer accumulation: accepted.
func sumValues(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// sumFloats is float accumulation — addition is not associative: flagged.
func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want "nondeterministic map iteration"
		total += v
	}
	return total
}

// orFlags folds with bitwise or and counts: accepted.
func orFlags(m map[string]uint8) (uint8, int) {
	var bits uint8
	count := 0
	for _, v := range m {
		bits |= v
		count++
	}
	return bits, count
}

// anyNegative sets an idempotent boolean flag: accepted.
func anyNegative(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v < 0 {
			found = true
		}
	}
	return found
}

// remap is a keyed map-to-map transfer (destination indexed by the loop
// key, so each iteration owns its entry): accepted.
func remap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// invert writes under the loop *value*: two keys can share a value, so
// last-writer-wins depends on iteration order — flagged.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m { // want "nondeterministic map iteration"
		out[v] = k
	}
	return out
}

// maxValue is an extremum update: accepted.
func maxValue(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// prune deletes while ranging: accepted (delete is order-free).
func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// firstKey leaks order through an early assignment and break: flagged.
func firstKey(m map[string]int) string {
	first := ""
	for k := range m { // want "nondeterministic map iteration"
		first = k
		break
	}
	return first
}

// iterKeys ranges a maps.Keys iterator: flagged.
func iterKeys(m map[string]int) []string {
	var keys []string
	for k := range maps.Keys(m) { // want "nondeterministic maps iterator iteration"
		keys = append(keys, k)
	}
	return keys
}

// iterSorted ranges the slices.Sorted wrapper: accepted.
func iterSorted(m map[string]int) []string {
	var keys []string
	for _, k := range slices.Sorted(maps.Keys(m)) {
		keys = append(keys, k)
	}
	return keys
}

// annotated carries a justification: accepted.
func annotated(m map[string]int) []string {
	var keys []string
	//weakvet:ordered order is re-canonicalised by the caller's sort
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// trailing uses the same-line directive form on an otherwise-flagged
// loop (string concatenation is order-dependent): accepted.
func trailing(m map[string]int) string {
	s := ""
	for k := range m { //weakvet:ordered result is only compared as a character multiset in tests
		s += k
	}
	return s
}
