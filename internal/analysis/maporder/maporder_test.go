package maporder_test

import (
	"testing"

	"weakmodels/internal/analysis/analysistest"
	"weakmodels/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer, "engine", "util")
}
