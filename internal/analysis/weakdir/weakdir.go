// Package weakdir validates the //weakvet: annotation grammar itself,
// so a typo in an escape hatch fails the build instead of silently
// suppressing nothing (or worse, appearing to suppress something). It
// reports:
//
//   - unknown directive names (//weakvet:orderd, //weakvet:no-alloc);
//   - directives that require a justification (ordered, rand, obs,
//     alloc) written without one — the rationale is the point of the
//     escape hatch, and reviews read it;
//   - malformed //weakvet:noalloc arguments (anything but empty or
//     budget=N with N ≥ 0);
//   - //weakvet:noalloc directives that are not a function's doc
//     comment — the annotation binds a function, nowhere else.
package weakdir

import (
	"go/ast"
	"go/token"

	"weakmodels/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "weakdir",
	Doc:  "validate the //weakvet: annotation grammar",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		onFuncDoc := funcDocPositions(file)
		for _, d := range analysis.FileDirectives(file) {
			switch {
			case !analysis.KnownDirectives[d.Name]:
				pass.Reportf(d.Pos, "unknown directive //weakvet:%s (known: alloc, noalloc, obs, ordered, rand)", d.Name)
			case analysis.NeedsJustification[d.Name] && d.Arg == "":
				pass.Reportf(d.Pos, "//weakvet:%s needs a justification: //weakvet:%s <why>", d.Name, d.Name)
			case d.Name == "noalloc":
				if _, err := analysis.ParseNoallocBudget(d.Arg); err != nil {
					pass.Reportf(d.Pos, "%v", err)
				} else if !onFuncDoc[d.Pos] {
					pass.Reportf(d.Pos, "//weakvet:noalloc must be in a function's doc comment; here it binds nothing")
				}
			}
		}
	}
	return nil
}

// funcDocPositions collects the positions of every comment that is part
// of some function declaration's doc group.
func funcDocPositions(file *ast.File) map[token.Pos]bool {
	out := map[token.Pos]bool{}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			out[c.Pos()] = true
		}
	}
	return out
}
