// Fixture for weakdir: the grammar checker for //weakvet: annotations.
// Directives are line comments, so expectations use the standalone
// want-line form, which binds the previous source line.
package demo

import "sort"

// typo misspells a directive name: flagged.
func typo(m map[string]int) int {
	s := 0
	//weakvet:orderd addition commutes
	// want "unknown directive //weakvet:orderd"
	for _, v := range m {
		s += v
	}
	return s
}

// bare omits the justification that ordered requires: flagged.
func bare(m map[string]int) []string {
	var out []string
	//weakvet:ordered
	// want "//weakvet:ordered needs a justification"
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// badBudget mangles the noalloc argument: flagged.
//
//weakvet:noalloc budget=-1
// want "budget must be a non-negative integer"
func badBudget(n int) int {
	return n + 1
}

// notAForm mangles the noalloc argument a different way: flagged.
//
//weakvet:noalloc limit=3
// want `bad //weakvet:noalloc argument "limit=3": want "budget=N" or nothing`
func notAForm(n int) int {
	return n + 1
}

// stray puts noalloc somewhere it binds nothing: flagged.
func stray(n int) int {
	//weakvet:noalloc
	// want "//weakvet:noalloc must be in a function's doc comment"
	return n * 2
}

// wellFormed uses every directive correctly: accepted.
//
//weakvet:noalloc budget=2
func wellFormed(m map[string]int) int {
	s := 0
	//weakvet:ordered integer addition commutes
	for _, v := range m {
		s += v
	}
	return s
}
