package weakdir_test

import (
	"testing"

	"weakmodels/internal/analysis/analysistest"
	"weakmodels/internal/analysis/weakdir"
)

func TestWeakdir(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), weakdir.Analyzer, "demo")
}
