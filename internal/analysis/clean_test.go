package analysis_test

import (
	"testing"

	"weakmodels/internal/analysis"
	"weakmodels/internal/analysis/maporder"
	"weakmodels/internal/analysis/noalloc"
	"weakmodels/internal/analysis/obsguard"
	"weakmodels/internal/analysis/seededrand"
	"weakmodels/internal/analysis/unit"
	"weakmodels/internal/analysis/weakdir"
)

// TestRepoClean runs every weakvet analyzer over the whole module and
// requires zero diagnostics: the tree stays clean, and any new
// violation needs either a fix or an annotated justification before it
// can land. This is the same set cmd/weakvet registers, exercised
// through the in-process driver rather than go vet.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	analyzers := []*analysis.Analyzer{
		maporder.Analyzer,
		seededrand.Analyzer,
		obsguard.Analyzer,
		noalloc.Analyzer,
		weakdir.Analyzer,
	}
	diags, err := unit.RunPatterns("../..", analyzers, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	for _, d := range diags {
		t.Errorf("weakvet: %s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("%d weakvet diagnostics on HEAD; fix them or annotate with a //weakvet: justification", len(diags))
	}
}
