// Package analysis is a self-contained micro-framework mirroring the
// golang.org/x/tools/go/analysis API shape, built only on the standard
// library so the repository's static-analysis suite (cmd/weakvet) works
// in hermetic builds with no module downloads.
//
// The surface is deliberately the familiar one — Analyzer, Pass,
// Diagnostic — so the analyzers under internal/analysis/... could be
// ported to the real x/tools framework by changing one import. What this
// package does NOT reproduce is the parts the weakvet suite does not
// need: facts (all weakvet checks are package-local), SSA, and the
// dependency graph between analyzers.
//
// The suite machine-enforces the engine's three hand-maintained contract
// families — determinism (maporder), seeded randomness and no wall
// clocks (seededrand), zero-cost-when-disabled observability (obsguard)
// — plus the allocation budgets of annotated hot functions (noalloc),
// with //weakvet:... source annotations as the escape hatch (weakdir
// validates the annotation grammar itself). See the README's "Static
// analysis" section for the contract each analyzer enforces.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check: a name (also its enable flag on
// the weakvet command line), one paragraph of documentation, and the Run
// function applied once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's worth of material to an analyzer: the
// parsed files, the type information, and the Report callback. A Pass is
// valid only for the duration of the Run call it is handed to.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report consumes one diagnostic. Drivers install it; analyzers call
	// Reportf instead.
	Report func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos. Diagnostics positioned
// in _test.go files are dropped: the weakvet contracts bind the shipped
// engine paths, and tests legitimately range maps, read clocks and
// allocate.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if file := p.Fset.Position(pos).Filename; strings.HasSuffix(file, "_test.go") {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PkgShortName returns the name weakvet scopes packages by: the
// package's own name (so analysistest fixtures named "engine" behave
// like the real package) — except for main packages, which are scoped by
// the last import-path element instead, so cmd/weakrun is "weakrun", not
// "main".
func (p *Pass) PkgShortName() string {
	name := p.Pkg.Name()
	if name == "main" {
		path := p.Pkg.Path()
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return name
}

// DeterminismCritical is the set of packages on the engine's
// deterministic paths: everything whose iteration order, randomness or
// emission order feeds the bit-identical-across-workers and byte-exact-
// replay guarantees. maporder scopes itself to these.
var DeterminismCritical = map[string]bool{
	"engine":    true,
	"fault":     true,
	"schedule":  true,
	"replay":    true,
	"obs":       true,
	"graph":     true,
	"port":      true,
	"stabilize": true,
	"spec":      true,
	// The logic stack joined the fast paths in PR 10: partitions,
	// characteristic formulas and truth sets are pinned bit-identical
	// across worker counts, so map-order leaks are correctness bugs here
	// exactly as in the engine.
	"logic":  true,
	"bisim":  true,
	"kripke": true,
}

// EnginePath is the set of packages that execute inside a run — where
// unseeded randomness or a wall-clock read breaks replay, not just
// style. seededrand and obsguard scope themselves to these. spec and
// graph construct seeded inputs before a run starts, so they are
// determinism-critical for iteration order but their rand.New(NewSource)
// constructors are the sanctioned idiom; machine and xrand are the
// substrate the engine steps on.
var EnginePath = map[string]bool{
	"engine":    true,
	"fault":     true,
	"schedule":  true,
	"replay":    true,
	"obs":       true,
	"stabilize": true,
	"port":      true,
	"machine":   true,
	"xrand":     true,
	// Model checking and refinement run at engine scale with injected
	// clocks (obs.Clock) and seeded formula generators only.
	"logic":  true,
	"bisim":  true,
	"kripke": true,
}
