// Package load builds type-checked packages for the weakvet analyzers
// without golang.org/x/tools: `go list -deps -export -json` resolves
// the import closure and compiles export data into the build cache, and
// the standard gc importer (go/importer) reads dependency types back
// from those export files. Only the target packages themselves are
// parsed from source — exactly what a source-level analyzer needs, at a
// fraction of a full source load, and fully offline.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	Path  string // import path
	Name  string // package name
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// ListedPackage is the subset of `go list -json` output load consumes.
type ListedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	DepOnly    bool
	Standard   bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// List runs `go list -deps -export -json` in dir and returns the
// package closure: every listed package, with Export set to its
// compiled export file.
func List(dir string, patterns ...string) ([]ListedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding output: %v", strings.Join(patterns, " "), err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Exports returns the ImportPath → export-file map of the full
// dependency closure of patterns. The analysistest harness uses it to
// resolve fixture imports of real (stdlib) packages.
func Exports(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Importer returns a types.Importer resolving dependencies through
// export files: exports maps import paths to gc export-data files.
func Importer(fset *token.FileSet, exports map[string]string) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return &unsafeFallback{gc: gc}
}

// unsafeFallback wraps the gc importer, resolving "unsafe" to the
// canonical types.Unsafe package.
type unsafeFallback struct{ gc types.Importer }

func (u *unsafeFallback) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.gc.Import(path)
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Check parses and type-checks one package from sources, resolving
// imports through imp.
func Check(fset *token.FileSet, imp types.Importer, path, name string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, f := range goFiles {
		parsed, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, parsed)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Name: name, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Packages loads, parses and type-checks the packages matching patterns
// (run from dir), sorted by import path. Dependencies come from export
// data; only the matched packages are parsed from source. Test files
// are not loaded: the weakvet contracts bind shipped code.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := Importer(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		var goFiles []string
		for _, f := range p.GoFiles {
			goFiles = append(goFiles, p.Dir+string(os.PathSeparator)+f)
		}
		if len(goFiles) == 0 {
			continue
		}
		pkg, err := Check(fset, imp, p.ImportPath, p.Name, goFiles)
		if err != nil {
			return nil, err
		}
		pkg.Dir = p.Dir
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}
