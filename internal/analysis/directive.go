package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// The //weakvet: annotation grammar. A directive is a line comment of
// the form
//
//	//weakvet:NAME [argument...]
//
// (no space between // and weakvet, mirroring //go: directives). The
// names and their meanings:
//
//	//weakvet:ordered <why>   — suppress maporder on the annotated range
//	                            statement; <why> must say why iteration
//	                            order cannot leak into observable state.
//	//weakvet:rand <why>      — suppress seededrand on the annotated
//	                            line; <why> must say why the wall clock
//	                            or global randomness is sound here.
//	//weakvet:obs <why>       — suppress obsguard at a call site, a
//	                            function, or a whole type (annotating a
//	                            type declaration exempts every method
//	                            body's use of that type's fields); <why>
//	                            must name the invariant that keeps the
//	                            hook non-nil.
//	//weakvet:noalloc [budget=N] — declare the annotated function
//	                            allocation-free (budget allocations per
//	                            call, default 0): noalloc AST-checks the
//	                            body and the generated AllocsPerRun
//	                            harness (internal/analysis/allocgen)
//	                            pins the measured budget.
//	//weakvet:alloc <why>     — allow the single annotated line inside a
//	                            //weakvet:noalloc function to allocate.
//
// A directive written as a trailing comment applies to its own line; a
// directive written above a statement (possibly inside a larger comment
// block) applies to the first code line after the comment group.

// KnownDirectives lists every valid directive name; weakdir reports any
// other //weakvet: spelling as a typo.
var KnownDirectives = map[string]bool{
	"ordered": true,
	"rand":    true,
	"obs":     true,
	"noalloc": true,
	"alloc":   true,
}

// NeedsJustification lists the directives whose argument must be a
// non-empty rationale.
var NeedsJustification = map[string]bool{
	"ordered": true,
	"rand":    true,
	"obs":     true,
	"alloc":   true,
}

// Directive is one parsed //weakvet: annotation.
type Directive struct {
	Pos  token.Pos
	Name string // "ordered", "rand", ...
	Arg  string // everything after the name, space-trimmed
}

// parseDirective parses one comment; ok is false for non-weakvet
// comments.
func parseDirective(c *ast.Comment) (d Directive, ok bool) {
	text, found := strings.CutPrefix(c.Text, "//weakvet:")
	if !found {
		return Directive{}, false
	}
	name, arg, _ := strings.Cut(text, " ")
	return Directive{Pos: c.Pos(), Name: strings.TrimSpace(name), Arg: strings.TrimSpace(arg)}, true
}

// FileDirectives returns every //weakvet: directive in the file, in
// source order. Used by weakdir to validate the grammar.
func FileDirectives(file *ast.File) []Directive {
	var out []Directive
	for _, g := range file.Comments {
		for _, c := range g.List {
			if d, ok := parseDirective(c); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// Index resolves which source lines each directive governs.
type Index struct {
	byLine map[int][]Directive
}

// NewIndex builds the line index over a set of files (one package). A
// directive governs its own line (trailing-comment form) and the first
// line after its enclosing comment group (comment-above form).
func NewIndex(fset *token.FileSet, files ...*ast.File) *Index {
	ix := &Index{byLine: make(map[int][]Directive)}
	for _, f := range files {
		for _, g := range f.Comments {
			groupEnd := fset.Position(g.End()).Line
			for _, c := range g.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				ix.byLine[line] = append(ix.byLine[line], d)
				if line != groupEnd+1 {
					ix.byLine[groupEnd+1] = append(ix.byLine[groupEnd+1], d)
				}
			}
		}
	}
	return ix
}

// At returns the named directive governing the given line, if any.
func (ix *Index) At(line int, name string) (Directive, bool) {
	for _, d := range ix.byLine[line] {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// Allows reports whether the named directive governs the line node
// starts on.
func (ix *Index) Allows(fset *token.FileSet, node ast.Node, name string) (Directive, bool) {
	return ix.At(fset.Position(node.Pos()).Line, name)
}

// DocDirective scans a declaration's doc comment group for the named
// directive. This is the annotation point for functions (noalloc, obs)
// and types (obs).
func DocDirective(doc *ast.CommentGroup, name string) (Directive, bool) {
	if doc == nil {
		return Directive{}, false
	}
	for _, c := range doc.List {
		if d, ok := parseDirective(c); ok && d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// ParseNoallocBudget parses the argument of a //weakvet:noalloc
// directive: empty means budget 0, otherwise "budget=N" with N ≥ 0.
func ParseNoallocBudget(arg string) (int, error) {
	if arg == "" {
		return 0, nil
	}
	val, found := strings.CutPrefix(arg, "budget=")
	if !found {
		return 0, &DirectiveError{Arg: arg, Reason: `want "budget=N" or nothing`}
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 0 {
		return 0, &DirectiveError{Arg: arg, Reason: "budget must be a non-negative integer"}
	}
	return n, nil
}

// DirectiveError describes a malformed directive argument.
type DirectiveError struct {
	Arg    string
	Reason string
}

func (e *DirectiveError) Error() string {
	return "bad //weakvet:noalloc argument " + strconv.Quote(e.Arg) + ": " + e.Reason
}
