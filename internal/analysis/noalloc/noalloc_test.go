package noalloc_test

import (
	"testing"

	"weakmodels/internal/analysis/analysistest"
	"weakmodels/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), noalloc.Analyzer, "hot")
}
