// Fixture for noalloc: only functions whose doc comment carries
// //weakvet:noalloc are checked; everything else may allocate freely.
package hot

import "fmt"

type item struct {
	key  int
	data []byte
}

// free is unannotated: allocations here are not weakvet's business.
func free(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// sum is alloc-free arithmetic over a slice: accepted.
//
//weakvet:noalloc
func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// reuse appends into a caller-provided scratch buffer, the canonical
// capacity-backed pattern: accepted.
//
//weakvet:noalloc
func reuse(scratch []int, xs []int) []int {
	out := scratch[:0]
	for _, x := range xs {
		if x >= 0 {
			out = append(out, x)
		}
	}
	return out
}

// grow appends to a fresh nil slice, which grows on the heap: flagged.
//
//weakvet:noalloc
func grow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want "append may grow its backing array"
	}
	return out
}

// builds exercises the explicit allocation forms: all flagged.
//
//weakvet:noalloc
func builds(n int) int {
	m := make(map[int]int, n) // want "make allocates"
	p := new(item)            // want "new allocates"
	s := []int{1, 2, 3}       // want "slice/map literal allocates"
	q := &item{key: n}        // want "composite literal allocates"
	return len(m) + p.key + s[0] + q.key
}

// formats exercises fmt and string building: all flagged.
//
//weakvet:noalloc
func formats(name string, n int) string {
	fmt.Println(name)                // want "fmt.Println allocates"
	label := name + ":"              // want "string concatenation allocates"
	raw := []byte(name)              // want "string conversion copies and allocates"
	back := string(raw)              // want "string conversion copies and allocates"
	_ = fmt.Sprintf("%s%d", back, n) // want "fmt.Sprintf allocates"
	return label
}

// spawns exercises closures and new goroutines/defers: all flagged.
//
//weakvet:noalloc
func spawns(xs []int) func() int {
	go sum(xs)    // want "go statement spawns a goroutine"
	defer sum(xs) // want "defer may allocate its frame"
	f := func() int { // want "function literal allocates a closure"
		return len(xs)
	}
	return f
}

// boxes converts a non-pointer-shaped value to an interface: flagged.
//
//weakvet:noalloc
func boxes(v item) any {
	return any(v) // want "conversion to interface boxes its operand"
}

// guardedObserver allocates only on the observer branch, which the
// generated pin runs with the observer disabled: accepted.
//
//weakvet:noalloc
func guardedObserver(sink func(string), n int) int {
	if sink != nil {
		sink(fmt.Sprintf("step %d", n))
	}
	return n * 2
}

// failure allocates only to build a panic message: accepted.
//
//weakvet:noalloc
func failure(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative count %d", n))
	}
	return n
}

// suppressed justifies a deliberate one-off allocation: accepted.
//
//weakvet:noalloc
func suppressed(n int) []int {
	out := make([]int, n) //weakvet:alloc one-time setup before the hot loop, measured free at steady state
	for i := range out {
		out[i] = i
	}
	return out
}

// budgeted declares a nonzero per-op budget; the static check still
// flags the sites, and the generated pin holds it to 2 allocs/op.
//
//weakvet:noalloc budget=2
func budgeted(n int) *item {
	p := &item{key: n}       // want "composite literal allocates"
	p.data = make([]byte, 8) // want "make allocates"
	return p
}
