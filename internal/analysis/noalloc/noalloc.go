// Package noalloc checks functions annotated //weakvet:noalloc for
// allocation-introducing constructs, the static half of the allocation
// pins: the dynamic half is the generated testing.AllocsPerRun harness
// (internal/analysis/allocgen) that measures each annotated function at
// its committed budget.
//
// Inside an annotated function the analyzer reports:
//
//   - make, new, and slice/map/&composite literals;
//   - append, unless it demonstrably writes into a preallocated buffer:
//     appending to a reslice (append(scratch[:0], ...)) or to a local
//     derived from one — the scratch-buffer idiom the engine hot paths
//     use (CanonicalInboxInto);
//   - function literals (closure allocation), go and defer statements;
//   - string concatenation and string ↔ []byte/[]rune conversions;
//   - calls into package fmt;
//   - explicit conversions of a non-pointer-shaped value to an
//     interface type (boxing).
//
// Two construct classes are exempt by design. Statements inside an
// `if X != nil` guard are skipped: that is the observability layer's
// pay-only-when-enabled path, and the AllocsPerRun pin runs with the
// observer disabled, so the guarded block never executes on the
// measured path. Arguments of panic calls are skipped: the failure path
// may format freely. Anything else needs //weakvet:alloc <why> on its
// line.
//
// What the AST cannot see — allocation inside callees, escape-analysis
// spills — is exactly what the generated pin exists to catch.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"weakmodels/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "check //weakvet:noalloc functions for allocation-introducing constructs",
	Run:  run,
}

// Target is one //weakvet:noalloc-annotated function.
type Target struct {
	Recv   string // receiver base type name, "" for free functions
	Name   string // function name
	Budget int    // committed allocations per call
	BadArg string // non-empty when the directive argument failed to parse
	Decl   *ast.FuncDecl
}

// Display returns the receiver-qualified name, e.g. "(*runState).stepShard".
func (t Target) Display() string {
	if t.Recv == "" {
		return t.Name
	}
	return "(*" + t.Recv + ")." + t.Name
}

// Targets scans one file for //weakvet:noalloc-annotated functions.
// Exported because the allocgen generator consumes the same annotations
// from a plain parse, outside any analysis driver.
func Targets(file *ast.File) []Target {
	var out []Target
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		d, ok := analysis.DocDirective(fn.Doc, "noalloc")
		if !ok {
			continue
		}
		t := Target{Name: fn.Name.Name, Decl: fn}
		if fn.Recv != nil && len(fn.Recv.List) > 0 {
			rt := fn.Recv.List[0].Type
			if star, ok := rt.(*ast.StarExpr); ok {
				rt = star.X
			}
			if id, ok := rt.(*ast.Ident); ok {
				t.Recv = id.Name
			}
		}
		budget, err := analysis.ParseNoallocBudget(d.Arg)
		if err != nil {
			t.BadArg = d.Arg
		}
		t.Budget = budget
		out = append(out, t)
	}
	return out
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ix := analysis.NewIndex(pass.Fset, file)
		for _, t := range Targets(file) {
			if t.Decl.Body == nil {
				continue
			}
			c := &checker{pass: pass, ix: ix, fn: t.Display(), backed: map[string]bool{}}
			c.block(t.Decl.Body.List)
		}
	}
	return nil
}

// checker walks one annotated function body. backed is the set of local
// names known to alias a preallocated buffer (locals derived from
// reslices like out := scratch[:0]), keyed by identifier name — the
// body of a single function, so names are unambiguous enough.
type checker struct {
	pass   *analysis.Pass
	ix     *analysis.Index
	fn     string
	backed map[string]bool
}

func (c *checker) block(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.block(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.expr(s.Cond)
		// An `if X != nil` guard marks the observability path: skipped,
		// because the AllocsPerRun pin runs with the observer disabled.
		if len(analysis.NonNilConjuncts(s.Cond)) == 0 {
			c.block(s.Body.List)
		}
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		c.block(s.Body.List)
		if s.Post != nil {
			c.stmt(s.Post)
		}
	case *ast.RangeStmt:
		c.expr(s.X)
		c.block(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					c.expr(e)
				}
				c.block(cl.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.stmt(s.Assign)
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.block(cl.Body)
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e)
		}
		for _, e := range s.Lhs {
			c.expr(e)
		}
		// Capacity tracking: x := buf[:0] (or x := append(backed, ...))
		// makes x a preallocated-buffer alias.
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if c.capacityBacked(s.Rhs[i]) {
					c.backed[id.Name] = true
				}
			}
		}
	case *ast.GoStmt:
		c.report(s.Pos(), "go statement spawns a goroutine")
	case *ast.DeferStmt:
		c.report(s.Pos(), "defer may allocate its frame")
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e)
		}
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.IncDecStmt:
		c.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.expr(e)
					}
				}
			}
		}
	}
}

// capacityBacked reports whether e demonstrably aliases a preallocated
// buffer: a reslice of anything (x[:0], x[a:b]) or an allowed append to
// one.
func (c *checker) capacityBacked(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		return c.backed[e.Name]
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			return c.capacityBacked(e.Args[0])
		}
	}
	return false
}

func (c *checker) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.report(n.Pos(), "function literal allocates a closure")
			return false
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok {
				c.report(n.Pos(), "&composite literal allocates")
				return false
			}
		case *ast.CompositeLit:
			switch c.pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				c.report(n.Pos(), "slice/map literal allocates")
				return false
			}
		case *ast.BinaryExpr:
			if isStringType(c.pass.TypesInfo.TypeOf(n)) {
				c.report(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			return c.call(n)
		}
		return true
	})
}

// call checks one call expression; the return value tells ast.Inspect
// whether to descend into the arguments.
func (c *checker) call(call *ast.CallExpr) bool {
	// panic arguments are the failure path; formatting there is fine.
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "panic":
			return false
		case "make", "new":
			if c.pass.TypesInfo.Types[call.Fun].IsBuiltin() {
				c.report(call.Pos(), "%s allocates", id.Name)
				return true
			}
		case "append":
			if c.pass.TypesInfo.Types[call.Fun].IsBuiltin() &&
				len(call.Args) > 0 && !c.capacityBacked(call.Args[0]) {
				c.report(call.Pos(), "append may grow its backing array (append into a reslice of a preallocated buffer instead)")
			}
			return true
		}
	}
	// Calls into package fmt.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if qid, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := c.pass.TypesInfo.Uses[qid].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				c.report(call.Pos(), "fmt.%s allocates", sel.Sel.Name)
				return true
			}
		}
	}
	// Conversions: string ↔ []byte/[]rune, and boxing into an interface.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := c.pass.TypesInfo.TypeOf(call.Fun)
		from := c.pass.TypesInfo.TypeOf(call.Args[0])
		switch {
		case isStringType(to) && isByteOrRuneSlice(from),
			isByteOrRuneSlice(to) && isStringType(from):
			c.report(call.Pos(), "string conversion copies and allocates")
		case types.IsInterface(to) && from != nil && !types.IsInterface(from) && !pointerShaped(from):
			c.report(call.Pos(), "conversion to interface boxes its operand")
		}
	}
	return true
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if _, ok := c.ix.At(c.pass.Fset.Position(pos).Line, "alloc"); ok {
		return
	}
	prefixed := append([]any{c.fn}, args...)
	c.pass.Reportf(pos, "//weakvet:noalloc function %s: "+format+" (annotate the line //weakvet:alloc <why> if intended)", prefixed...)
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of t fit an interface word
// without boxing-by-copy semantics mattering for allocation accounting:
// pointers, channels, maps, funcs and unsafe pointers. (Interfaces
// holding them still allocate no payload.)
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.UnsafePointer
}
