package analysis

import (
	"go/ast"
	"go/token"
)

// NonNilConjuncts returns the expressions X for every `X != nil`
// conjunct of cond (split on &&): the receivers a then-branch is
// guarded for. Shared by obsguard (which requires such a guard around
// every hook call) and noalloc (which exempts guarded blocks — they are
// the pay-only-when-enabled path the allocation pin never executes).
func NonNilConjuncts(cond ast.Expr) []ast.Expr {
	var out []ast.Expr
	splitBinary(cond, token.LAND, func(e ast.Expr) {
		if x, ok := nilCompare(e, token.NEQ); ok {
			out = append(out, x)
		}
	})
	return out
}

// NilDisjuncts returns the expressions X for every `X == nil` disjunct
// of cond (split on ||): the receivers guarded after an early-exit
// `if X == nil { return }`.
func NilDisjuncts(cond ast.Expr) []ast.Expr {
	var out []ast.Expr
	splitBinary(cond, token.LOR, func(e ast.Expr) {
		if x, ok := nilCompare(e, token.EQL); ok {
			out = append(out, x)
		}
	})
	return out
}

func splitBinary(e ast.Expr, op token.Token, f func(ast.Expr)) {
	if p, ok := e.(*ast.ParenExpr); ok {
		splitBinary(p.X, op, f)
		return
	}
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == op {
		splitBinary(b.X, op, f)
		splitBinary(b.Y, op, f)
		return
	}
	f(e)
}

// nilCompare matches `X op nil` or `nil op X`, returning X.
func nilCompare(e ast.Expr, op token.Token) (ast.Expr, bool) {
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != op {
		return nil, false
	}
	if isNilIdent(b.Y) {
		return b.X, true
	}
	if isNilIdent(b.X) {
		return b.Y, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// Terminates reports whether a block's last statement unconditionally
// leaves the enclosing flow: return, branch (break/continue/goto), or a
// call to panic.
func Terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
