// Package unit is the driver behind cmd/weakvet: a stdlib-only
// re-implementation of the x/tools unitchecker protocol that `go vet
// -vettool` speaks, plus a standalone package-pattern mode for local
// runs and tests.
//
// The protocol, per cmd/go (internal/vet/vetflag.go and
// internal/work/exec.go):
//
//   - `weakvet -V=full` prints one line, "<progname> version <id>",
//     where id is stable for a given binary — cmd/go hashes it into the
//     build cache key. We use a truncated SHA-256 of the executable.
//   - `weakvet -flags` prints a JSON array of the flags the tool
//     accepts ({Name,Bool,Usage}), which cmd/go uses to validate the
//     flags the user passed to `go vet`.
//   - For each package, cmd/go invokes `weakvet [flags] $objdir/vet.cfg`
//     with a JSON config naming the package's files, its import map and
//     the export files of its dependencies. Diagnostics go to stderr as
//     "file:line:col: message" and a non-zero exit marks the package
//     failed. Packages with VetxOnly (dependencies visited only for
//     facts — which weakvet does not use) get an empty facts file and
//     succeed immediately.
//
// Standalone mode: `weakvet ./...` loads packages via internal/
// analysis/load and runs the same analyzers; this is what the
// clean-on-HEAD test and local runs use.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"weakmodels/internal/analysis"
	"weakmodels/internal/analysis/load"
)

// vetConfig mirrors the JSON cmd/go writes to $objdir/vet.cfg
// (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// Main runs the weakvet driver over the given analyzers and exits the
// process. Analyzer names double as boolean enable flags; with none set
// every analyzer runs.
func Main(analyzers ...*analysis.Analyzer) {
	progname := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (cmd/go handshake)")
	flagsFlag := fs.Bool("flags", false, "print the supported flags in JSON (cmd/go handshake)")
	fixFlag := fs.Bool("fix", false, "apply suggested fixes (weakvet analyzers emit none; accepted for vet compatibility)")
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, false, a.Doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-analyzer...] [package pattern... | vet.cfg]\n\nAnalyzers (all run when none is selected):\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  -%s\n\t%s\n", a.Name, a.Doc)
		}
	}
	fs.Parse(os.Args[1:])
	_ = fixFlag

	if *versionFlag != "" {
		if *versionFlag != "full" {
			fmt.Printf("%s version devel\n", progname)
			os.Exit(0)
		}
		fmt.Printf("%s version %s\n", progname, buildID())
		os.Exit(0)
	}
	if *flagsFlag {
		printFlagDefs(analyzers)
		os.Exit(0)
	}

	selected := analyzers
	if anySelected(enabled) {
		selected = nil
		for _, a := range analyzers {
			if *enabled[a.Name] {
				selected = append(selected, a)
			}
		}
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], selected))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	diags, err := RunPatterns(".", selected, args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// buildID returns a stable identifier for this binary: a truncated
// SHA-256 of the executable file. Two runs of the same binary print the
// same id, and rebuilding with different sources changes it — exactly
// the contract cmd/go's cache key needs.
func buildID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// printFlagDefs emits the -flags handshake JSON: the flags cmd/go may
// pass through from the go vet command line.
func printFlagDefs(analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []jsonFlag{
		{Name: "fix", Bool: true, Usage: "apply suggested fixes (none emitted)"},
	}
	for _, a := range analyzers {
		defs = append(defs, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].Name < defs[j].Name })
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(append(data, '\n'))
}

func anySelected(enabled map[string]*bool) bool {
	for _, v := range enabled {
		if *v {
			return true
		}
	}
	return false
}

// runUnit executes one vet.cfg unit of work and returns the exit code.
func runUnit(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "weakvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// cmd/go expects the facts file to exist even though weakvet has no
	// facts to exchange.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("weakvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	imp := cfgImporter(fset, &cfg)
	pkg, err := load.Check(fset, imp, cfg.ImportPath, "", cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags := Run(pkg, analyzers)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// cfgImporter resolves imports the way the compiler did for this unit:
// source import path → canonical path via ImportMap, canonical path →
// export file via PackageFile.
func cfgImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	exports := map[string]string{}
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	base := load.Importer(fset, exports)
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return base.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Run applies the analyzers to one loaded package and returns the
// rendered diagnostics ("file:line:col: message"), sorted by position.
func Run(pkg *load.Package, analyzers []*analysis.Analyzer) []string {
	var out []string
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Report: func(d analysis.Diagnostic) {
				out = append(out, fmt.Sprintf("%s: %s", pkg.Fset.Position(d.Pos), d.Message))
			},
		}
		if err := a.Run(pass); err != nil {
			out = append(out, fmt.Sprintf("%s: internal error in %s: %v", pkg.Path, a.Name, err))
		}
	}
	sort.Strings(out)
	return out
}

// RunPatterns loads the packages matching patterns (relative to dir)
// and applies the analyzers, returning all diagnostics.
func RunPatterns(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]string, error) {
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		out = append(out, Run(pkg, analyzers)...)
	}
	return out, nil
}
