package obsguard_test

import (
	"testing"

	"weakmodels/internal/analysis/analysistest"
	"weakmodels/internal/analysis/obsguard"
)

func TestObsguard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), obsguard.Analyzer, "engine")
}
