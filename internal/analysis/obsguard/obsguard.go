// Package obsguard enforces the observability layer's
// zero-cost-when-disabled contract: every call on a nilable obs hook —
// a value of type obs.Sink, obs.Clock or *obs.Metrics, the fields
// reachable from engine.Options.Obs — must be dominated by a nil check,
// so a run with no observer attached pays one pointer test per site and
// allocates nothing.
//
// Dominance is established syntactically, per function body:
//
//   - an enclosing if whose condition conjoins `recv != nil` guards the
//     then-branch (if opts.Obs != nil && opts.Obs.Sink != nil { ... });
//   - an early exit `if recv == nil { return }` (any ||-combination of
//     == nil tests whose body terminates) guards the rest of the block;
//   - assignment from a guarded expression transfers the guard to the
//     alias (reg := o.Metrics after the o.Metrics == nil early return);
//   - a receiver that is itself a call result is accepted: the obs
//     constructors and Registry accessors return non-nil by contract.
//
// Receivers matched by none of these are reported. The escape hatch is
// //weakvet:obs <why> — on the call site's line, on the enclosing
// function's doc comment, or on a type declaration (exempting every
// method of the type, for wrappers like the engine's journal and
// runMetrics that their constructors keep non-nil by construction).
package obsguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"weakmodels/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "obsguard",
	Doc:  "require a dominating nil check for every call on a nilable obs hook",
	Run:  run,
}

// hookTypes are the nilable hook types from package obs. Histogram,
// Counter and Gauge are excluded on purpose: they are obtained from a
// *Metrics registry that is itself guarded, and the registry's accessors
// never return nil.
var hookTypes = map[string]bool{"Sink": true, "Metrics": true, "Clock": true}

func run(pass *analysis.Pass) error {
	short := pass.PkgShortName()
	// The obs package is the hook implementation, not a consumer; its
	// method bodies run only on values the caller already resolved.
	if !analysis.EnginePath[short] || short == "obs" {
		return nil
	}
	ix := analysis.NewIndex(pass.Fset, pass.Files...)
	exempt := exemptTypes(pass.Files)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := analysis.DocDirective(fn.Doc, "obs"); ok {
				continue
			}
			if exempt[recvTypeName(fn)] {
				continue
			}
			c := &checker{pass: pass, ix: ix}
			c.block(fn.Body.List, map[string]bool{})
		}
	}
	return nil
}

// exemptTypes collects the names of types whose declarations carry a
// //weakvet:obs directive.
func exemptTypes(files []*ast.File) map[string]bool {
	out := map[string]bool{}
	for _, file := range files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			_, declWide := analysis.DocDirective(gd.Doc, "obs")
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				_, onSpec := analysis.DocDirective(ts.Doc, "obs")
				_, trailing := analysis.DocDirective(ts.Comment, "obs")
				if declWide || onSpec || trailing {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

// recvTypeName returns the receiver's base type name, or "".
func recvTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checker walks one function body carrying the set of guarded receiver
// expressions (keyed by types.ExprString).
type checker struct {
	pass *analysis.Pass
	ix   *analysis.Index
}

func clone(g map[string]bool) map[string]bool {
	out := make(map[string]bool, len(g))
	for k := range g {
		out[k] = true
	}
	return out
}

// block walks a statement sequence. guarded is mutated in place as
// early-exit guards accumulate; nested scopes get clones so their
// additions stay local.
func (c *checker) block(list []ast.Stmt, guarded map[string]bool) {
	for _, s := range list {
		c.stmt(s, guarded)
	}
}

func (c *checker) stmt(s ast.Stmt, guarded map[string]bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.block(s.List, clone(guarded))
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, guarded)
		}
		c.exprWalk(s.Cond, guarded)
		thenG := clone(guarded)
		for _, e := range analysis.NonNilConjuncts(s.Cond) {
			thenG[types.ExprString(e)] = true
		}
		c.block(s.Body.List, thenG)
		if s.Else != nil {
			c.stmt(s.Else, clone(guarded))
		}
		if analysis.Terminates(s.Body) {
			// `if r == nil { return }` guards everything after the if.
			for _, e := range analysis.NilDisjuncts(s.Cond) {
				guarded[types.ExprString(e)] = true
			}
		}
	case *ast.ForStmt:
		inner := clone(guarded)
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			c.exprWalk(s.Cond, inner)
		}
		c.block(s.Body.List, inner)
		if s.Post != nil {
			c.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		c.exprWalk(s.X, guarded)
		c.block(s.Body.List, clone(guarded))
	case *ast.SwitchStmt:
		inner := clone(guarded)
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		if s.Tag != nil {
			c.exprWalk(s.Tag, inner)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					c.exprWalk(e, inner)
				}
				c.block(cl.Body, clone(inner))
			}
		}
	case *ast.TypeSwitchStmt:
		inner := clone(guarded)
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		c.stmt(s.Assign, inner)
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.block(cl.Body, clone(inner))
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				inner := clone(guarded)
				if cl.Comm != nil {
					c.stmt(cl.Comm, inner)
				}
				c.block(cl.Body, inner)
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, guarded)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.exprWalk(e, guarded)
		}
		for _, e := range s.Lhs {
			c.exprWalk(e, guarded)
		}
		// Alias propagation: x := guardedExpr keeps x guarded; any other
		// reassignment of a tracked expression drops its guard.
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				lk := types.ExprString(lhs)
				if guarded[types.ExprString(s.Rhs[i])] {
					guarded[lk] = true
				} else {
					delete(guarded, lk)
				}
			}
		} else {
			for _, lhs := range s.Lhs {
				delete(guarded, types.ExprString(lhs))
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, e := range vs.Values {
					c.exprWalk(e, guarded)
				}
				if len(vs.Names) == len(vs.Values) {
					for i, name := range vs.Names {
						if guarded[types.ExprString(vs.Values[i])] {
							guarded[name.Name] = true
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		c.exprWalk(s.X, guarded)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.exprWalk(e, guarded)
		}
	case *ast.GoStmt:
		c.exprWalk(s.Call, guarded)
	case *ast.DeferStmt:
		c.exprWalk(s.Call, guarded)
	case *ast.SendStmt:
		c.exprWalk(s.Chan, guarded)
		c.exprWalk(s.Value, guarded)
	case *ast.IncDecStmt:
		c.exprWalk(s.X, guarded)
	}
}

// exprWalk visits an expression, checking every hook call. Function
// literals are walked as nested bodies inheriting the current guards:
// the closure is syntactically dominated by them at its definition site,
// which is the same promise the rest of the heuristic makes.
func (c *checker) exprWalk(e ast.Expr, guarded map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.block(n.Body.List, clone(guarded))
			return false
		case *ast.CallExpr:
			c.checkCall(n, guarded)
		}
		return true
	})
}

func (c *checker) checkCall(call *ast.CallExpr, guarded map[string]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	hook := hookTypeName(c.pass.TypesInfo.TypeOf(sel.X))
	if hook == "" {
		return
	}
	// A receiver produced by a call is non-nil by the obs API contract
	// (ResolveClock, Registry accessors never return nil).
	if _, isCall := sel.X.(*ast.CallExpr); isCall {
		return
	}
	if guarded[types.ExprString(sel.X)] {
		return
	}
	if _, ok := c.ix.Allows(c.pass.Fset, call, "obs"); ok {
		return
	}
	c.pass.Reportf(call.Pos(),
		"call to %s.%s on obs.%s hook %q is not dominated by a nil check: the zero-cost-when-disabled contract requires `if %s != nil` (or //weakvet:obs <why>)",
		types.ExprString(sel.X), sel.Sel.Name, hook, types.ExprString(sel.X), types.ExprString(sel.X))
}

// hookTypeName returns the obs hook type name of t ("Sink", "Metrics",
// "Clock"), or "" when t is not a nilable hook. The match is by package
// name so analysistest fixtures with a local obs package behave like the
// real one.
func hookTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "obs" || !hookTypes[obj.Name()] {
		return ""
	}
	return obj.Name()
}

// Nil-guard condition parsing (NonNilConjuncts, NilDisjuncts,
// Terminates) is shared with noalloc and lives in package analysis.
