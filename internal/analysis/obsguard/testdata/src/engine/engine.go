// Fixture for obsguard: package named "engine" is on the engine path,
// and the local obs fixture package supplies the hook types.
package engine

import "obs"

type Options struct{ Obs *obs.Obs }

// unguarded calls a hook with no dominating check: flagged.
func unguarded(s obs.Sink) {
	s.Event(obs.Event{}) // want "not dominated by a nil check"
}

// guarded wraps the call in the canonical if: accepted.
func guarded(s obs.Sink) {
	if s != nil {
		s.Event(obs.Event{})
	}
}

// earlyReturn uses the ||-of-==nil early exit: accepted.
func earlyReturn(o *obs.Obs) {
	if o == nil || o.Sink == nil {
		return
	}
	o.Sink.Event(obs.Event{})
	_ = o.Sink.Flush()
}

// aliased transfers the guard through an assignment: accepted.
func aliased(o *obs.Obs) {
	if o == nil || o.Metrics == nil {
		return
	}
	reg := o.Metrics
	reg.Counter("runs").Inc()
}

// conjunct guards a nested field chain: accepted.
func conjunct(opts Options) {
	if opts.Obs != nil && opts.Obs.Sink != nil {
		opts.Obs.Sink.Event(obs.Event{})
	}
}

// callReceiver calls through a call result, non-nil by API contract:
// accepted.
func callReceiver(o *obs.Obs) int64 {
	if o == nil {
		return 0
	}
	return o.ResolveClock().Now()
}

// elseBranch calls the hook precisely where it is nil: flagged.
func elseBranch(s obs.Sink) {
	if s != nil {
		s.Event(obs.Event{})
	} else {
		_ = s.Flush() // want "not dominated by a nil check"
	}
}

// afterLoop shows the guard surviving into nested scopes: accepted.
func afterLoop(s obs.Sink, n int) {
	if s == nil {
		return
	}
	for i := 0; i < n; i++ {
		s.Event(obs.Event{Node: int32(i)})
	}
}

// site carries a line-level justification: accepted.
func site(s obs.Sink) {
	s.Event(obs.Event{}) //weakvet:obs test helper, caller always passes a non-nil recording sink
}

// funcLevel carries a function-level justification: accepted.
//
//weakvet:obs every caller resolves the sink through newJournal first
func funcLevel(s obs.Sink) {
	_ = s.Flush()
}

// wrap is exempted at the type level: its constructor never stores a
// nil sink, mirroring the engine's journal.
//
//weakvet:obs newWrap returns nil instead of wrapping a nil sink
type wrap struct{ sink obs.Sink }

func newWrap(s obs.Sink) *wrap {
	if s == nil {
		return nil
	}
	return &wrap{sink: s}
}

func (w *wrap) emit(e obs.Event) { w.sink.Event(e) }

func (w *wrap) finish() error { return w.sink.Flush() }

// reassigned loses the guard when the receiver is overwritten: flagged.
func reassigned(s obs.Sink, other obs.Sink) {
	if s == nil {
		return
	}
	s = other
	s.Event(obs.Event{}) // want "not dominated by a nil check"
}

// clockField mirrors the runtime's rt.clock discipline.
type clockField struct{ clock obs.Clock }

func (c *clockField) good() int64 {
	if c.clock != nil {
		return c.clock.Now()
	}
	return 0
}

func (c *clockField) bad() int64 {
	return c.clock.Now() // want "not dominated by a nil check"
}
