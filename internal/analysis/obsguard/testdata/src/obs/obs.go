// Fixture stand-in for the real internal/obs package: obsguard matches
// hook types by package name and type name, so this minimal shape
// exercises the same paths.
package obs

type Event struct{ Node int32 }

type Sink interface {
	Event(e Event)
	Flush() error
}

type Clock interface{ Now() int64 }

type Metrics struct{ counters map[string]*Counter }

func (m *Metrics) Counter(name string) *Counter { return &Counter{} }

type Counter struct{ n int64 }

func (c *Counter) Inc() { c.n++ }

type Obs struct {
	Sink    Sink
	Metrics *Metrics
}

func (o *Obs) ResolveClock() Clock { return fixed{} }

type fixed struct{}

func (fixed) Now() int64 { return 0 }
