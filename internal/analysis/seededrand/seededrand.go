// Package seededrand forbids unseeded randomness and wall-clock reads in
// the engine-path packages (analysis.EnginePath).
//
// The engine's replay and equivalence guarantees hold only if every
// random draw comes from a seeded, checkpointable stream (internal/xrand
// wrapped in rand.New) and every duration comes from an injected
// obs.Clock. The analyzer reports, inside engine-path packages:
//
//   - calls to math/rand (and math/rand/v2) package-level functions,
//     which share the global unseedable source: rand.Intn, rand.Float64,
//     rand.Shuffle, rand.Perm, ... Constructors that build an explicit
//     seeded generator (rand.New, rand.NewSource, rand.NewPCG,
//     rand.NewZipf) are allowed;
//   - any reference to the wall clock: time.Now, time.Since, time.Until,
//     and the scheduling forms time.Sleep/After/Tick/NewTimer/NewTicker;
//   - any import of crypto/rand (entropy is the opposite of replay).
//
// The one sanctioned wall-clock read — the obs.WallClock implementation
// behind the injectable Clock — carries a //weakvet:rand annotation, as
// must any future exception.
package seededrand

import (
	"go/ast"
	"go/types"
	"strconv"

	"weakmodels/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbid unseeded randomness and wall-clock reads in engine-path packages",
	Run:  run,
}

// seededConstructors are the math/rand functions that build explicit
// generators rather than drawing from the global source.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewZipf": true,
}

// wallClock are the time package functions that read or schedule against
// the wall clock.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.EnginePath[pass.PkgShortName()] {
		return nil
	}
	for _, file := range pass.Files {
		ix := analysis.NewIndex(pass.Fset, file)
		for _, imp := range file.Imports {
			if path, _ := strconv.Unquote(imp.Path.Value); path == "crypto/rand" {
				if _, ok := ix.Allows(pass.Fset, imp, "rand"); !ok {
					pass.Reportf(imp.Pos(),
						"crypto/rand in engine-path package %q: entropy breaks replay; use a seeded internal/xrand source (or annotate //weakvet:rand <why>)",
						pass.PkgShortName())
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath := importedPkgPath(pass, sel)
			if pkgPath == "" {
				return true
			}
			// Type references (rand.Rand in a signature, time.Duration in a
			// field) are not draws or clock reads.
			if _, isType := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName); isType {
				return true
			}
			switch pkgPath {
			case "math/rand", "math/rand/v2":
				if seededConstructors[sel.Sel.Name] {
					return true
				}
				if _, ok := ix.Allows(pass.Fset, sel, "rand"); ok {
					return true
				}
				pass.Reportf(sel.Pos(),
					"%s.%s draws from the global unseeded source in engine-path package %q: use internal/xrand with rand.New (or annotate //weakvet:rand <why>)",
					pathBase(pkgPath), sel.Sel.Name, pass.PkgShortName())
			case "time":
				if !wallClock[sel.Sel.Name] {
					return true
				}
				if _, ok := ix.Allows(pass.Fset, sel, "rand"); ok {
					return true
				}
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock in engine-path package %q: inject an obs.Clock (or annotate //weakvet:rand <why>)",
					sel.Sel.Name, pass.PkgShortName())
			}
			return true
		})
	}
	return nil
}

// importedPkgPath resolves sel's qualifier to an imported package path,
// or "" when sel is a field/method selection.
func importedPkgPath(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pkgName.Imported().Path()
}

func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
