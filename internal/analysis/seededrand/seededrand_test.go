package seededrand_test

import (
	"testing"

	"weakmodels/internal/analysis/analysistest"
	"weakmodels/internal/analysis/seededrand"
)

func TestSeededrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), seededrand.Analyzer, "fault", "tool")
}
