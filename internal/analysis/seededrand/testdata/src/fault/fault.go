// Fixture for seededrand: package named "fault" is on the engine path.
package fault

import (
	crand "crypto/rand" // want "crypto/rand in engine-path package"
	"math/rand"
	"time"
)

// Entropy keeps the crypto/rand import used.
var Entropy = crand.Reader

// globalDraw uses the shared unseeded source: flagged.
func globalDraw(n int) int {
	return rand.Intn(n) // want `rand\.Intn draws from the global unseeded source`
}

// globalShuffle too: flagged.
func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the global unseeded source`
}

// seeded builds an explicit generator from a seed: accepted.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// wallClock reads real time: flagged.
func wallClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// elapsed also reads the clock: flagged.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

// durations only use time as arithmetic: accepted (type and constant
// references are not clock reads).
func durations(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}

// suppressed carries a justification: accepted.
func suppressed() time.Time {
	return time.Now() //weakvet:rand CLI-facing timestamp for log file names, never on a run path
}
