// Fixture for seededrand scope gating: "tool" is not an engine-path
// package, so wall clocks and global randomness are fine here.
package tool

import (
	"math/rand"
	"time"
)

func Jitter() time.Duration {
	return time.Duration(rand.Intn(100)) * time.Millisecond
}

func Stamp() time.Time {
	return time.Now()
}
