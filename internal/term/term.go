// Package term implements the canonical message algebra used throughout the
// library.
//
// Messages in the paper are arbitrarily nested mathematical objects: tuples
// such as (β_t(v), deg(v), i) in Theorem 4, sets of messages B_t(v), and full
// message histories in Theorem 8. The Multiset and Set receive modes as well
// as the lexicographic order <M of Theorem 8 all require messages that are
// canonically comparable. Go has no sum types, so the library funnels every
// structured message through a single Term type with
//
//   - a total order (Compare),
//   - an injective canonical string encoding (Encode), and
//   - a parser inverting the encoding (Parse).
//
// Sets and bags are canonicalised on construction (sorted, sets deduplicated),
// so two terms are semantically equal exactly when their encodings are equal.
package term

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the variant held by a Term.
type Kind int

// The five term variants.
const (
	KindInt Kind = iota + 1
	KindStr
	KindTuple
	KindSet
	KindBag
)

// String returns the name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindStr:
		return "str"
	case KindTuple:
		return "tuple"
	case KindSet:
		return "set"
	case KindBag:
		return "bag"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Term is an immutable structured value. The zero Term is invalid; construct
// terms with Int, Str, Tuple, Set or Bag.
type Term struct {
	kind Kind
	n    int64
	s    string
	kids []Term
}

// Int returns an integer term.
func Int(n int64) Term { return Term{kind: KindInt, n: n} }

// Str returns a string (atom) term.
func Str(s string) Term { return Term{kind: KindStr, s: s} }

// Tuple returns an ordered sequence term. The argument slice is copied.
func Tuple(kids ...Term) Term {
	return Term{kind: KindTuple, kids: append([]Term(nil), kids...)}
}

// Set returns a set term: duplicates are removed and elements are sorted into
// canonical order. The argument slice is copied, not retained.
func Set(kids ...Term) Term {
	sorted := append([]Term(nil), kids...)
	sort.Slice(sorted, func(i, j int) bool { return Compare(sorted[i], sorted[j]) < 0 })
	dedup := sorted[:0]
	for i, t := range sorted {
		if i == 0 || Compare(t, sorted[i-1]) != 0 {
			dedup = append(dedup, t)
		}
	}
	return Term{kind: KindSet, kids: dedup}
}

// Bag returns a multiset term: elements are sorted into canonical order with
// multiplicities preserved. The argument slice is copied, not retained.
func Bag(kids ...Term) Term {
	sorted := append([]Term(nil), kids...)
	sort.Slice(sorted, func(i, j int) bool { return Compare(sorted[i], sorted[j]) < 0 })
	return Term{kind: KindBag, kids: sorted}
}

// Kind reports the variant of t.
func (t Term) Kind() Kind { return t.kind }

// IsZero reports whether t is the invalid zero Term.
func (t Term) IsZero() bool { return t.kind == 0 }

// IntVal returns the integer payload. It panics unless t is an int term.
func (t Term) IntVal() int64 {
	if t.kind != KindInt {
		panic("term: IntVal on " + t.kind.String())
	}
	return t.n
}

// StrVal returns the string payload. It panics unless t is a string term.
func (t Term) StrVal() string {
	if t.kind != KindStr {
		panic("term: StrVal on " + t.kind.String())
	}
	return t.s
}

// Len returns the number of children of a tuple, set or bag, and 0 otherwise.
func (t Term) Len() int { return len(t.kids) }

// At returns the i-th child of a tuple, set or bag.
func (t Term) At(i int) Term { return t.kids[i] }

// Kids returns a copy of the children.
func (t Term) Kids() []Term { return append([]Term(nil), t.kids...) }

// Compare totally orders terms: first by kind, then by payload; composite
// terms are ordered by length-lexicographic order of their children. It
// returns -1, 0 or +1.
func Compare(a, b Term) int {
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindInt:
		switch {
		case a.n < b.n:
			return -1
		case a.n > b.n:
			return 1
		}
		return 0
	case KindStr:
		return strings.Compare(a.s, b.s)
	default:
		if len(a.kids) != len(b.kids) {
			if len(a.kids) < len(b.kids) {
				return -1
			}
			return 1
		}
		for i := range a.kids {
			if c := Compare(a.kids[i], b.kids[i]); c != 0 {
				return c
			}
		}
		return 0
	}
}

// Equal reports whether a and b are semantically equal.
func Equal(a, b Term) bool { return Compare(a, b) == 0 }

// Less reports whether a precedes b in the canonical order. This is the
// fixed order <M on messages required by Theorem 8.
func Less(a, b Term) bool { return Compare(a, b) < 0 }

// Encode returns the canonical injective string encoding of t.
//
// Grammar:
//
//	term := int | quoted-string | "t(" terms ")" | "S{" terms "}" | "B{" terms "}"
func (t Term) Encode() string {
	var b strings.Builder
	t.encode(&b)
	return b.String()
}

func (t Term) encode(b *strings.Builder) {
	switch t.kind {
	case KindInt:
		b.WriteString(strconv.FormatInt(t.n, 10))
	case KindStr:
		b.WriteString(strconv.Quote(t.s))
	case KindTuple:
		b.WriteString("t(")
		t.encodeKids(b)
		b.WriteByte(')')
	case KindSet:
		b.WriteString("S{")
		t.encodeKids(b)
		b.WriteByte('}')
	case KindBag:
		b.WriteString("B{")
		t.encodeKids(b)
		b.WriteByte('}')
	default:
		b.WriteString("<zero>")
	}
}

func (t Term) encodeKids(b *strings.Builder) {
	for i, k := range t.kids {
		if i > 0 {
			b.WriteByte(',')
		}
		k.encode(b)
	}
}

// String returns the canonical encoding; Terms print readably in tests.
func (t Term) String() string { return t.Encode() }

// Size returns the number of nodes in the term tree, a proxy for message
// size used by the simulation-overhead benchmarks.
func (t Term) Size() int {
	n := 1
	for _, k := range t.kids {
		n += k.Size()
	}
	return n
}

// Depth returns the nesting depth of the term tree.
func (t Term) Depth() int {
	d := 0
	for _, k := range t.kids {
		if kd := k.Depth(); kd > d {
			d = kd
		}
	}
	return d + 1
}

// Parse inverts Encode. It returns an error on any input that is not the
// canonical encoding of a term (trailing bytes included).
func Parse(s string) (Term, error) {
	p := &parser{src: s}
	t, err := p.term()
	if err != nil {
		return Term{}, err
	}
	if p.pos != len(p.src) {
		return Term{}, fmt.Errorf("term: trailing input at byte %d of %q", p.pos, s)
	}
	return t, nil
}

// MustParse is Parse panicking on error, for tests and literals.
func MustParse(s string) Term {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("term: %s at byte %d of %q", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) term() (Term, error) {
	switch c := p.peek(); {
	case c == '-' || (c >= '0' && c <= '9'):
		return p.intTerm()
	case c == '"':
		return p.strTerm()
	case c == 't':
		return p.composite("t(", ')', Tuple)
	case c == 'S':
		return p.composite("S{", '}', Set)
	case c == 'B':
		return p.composite("B{", '}', Bag)
	default:
		return Term{}, p.errf("unexpected byte %q", c)
	}
}

func (p *parser) intTerm() (Term, error) {
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	for p.peek() >= '0' && p.peek() <= '9' {
		p.pos++
	}
	n, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
	if err != nil {
		return Term{}, p.errf("bad integer %q", p.src[start:p.pos])
	}
	return Int(n), nil
}

func (p *parser) strTerm() (Term, error) {
	// Scan a Go-quoted string: find the closing quote, honouring escapes.
	start := p.pos
	p.pos++ // opening quote
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '\\':
			p.pos += 2
		case '"':
			p.pos++
			s, err := strconv.Unquote(p.src[start:p.pos])
			if err != nil {
				return Term{}, p.errf("bad string literal")
			}
			return Str(s), nil
		default:
			p.pos++
		}
	}
	return Term{}, p.errf("unterminated string")
}

func (p *parser) composite(open string, close byte, build func(...Term) Term) (Term, error) {
	if !strings.HasPrefix(p.src[p.pos:], open) {
		return Term{}, p.errf("expected %q", open)
	}
	p.pos += len(open)
	var kids []Term
	if p.peek() == close {
		p.pos++
		return build(kids...), nil
	}
	for {
		k, err := p.term()
		if err != nil {
			return Term{}, err
		}
		kids = append(kids, k)
		switch p.peek() {
		case ',':
			p.pos++
		case close:
			p.pos++
			return build(kids...), nil
		default:
			return Term{}, p.errf("expected ',' or %q", close)
		}
	}
}

// SortTerms sorts ts in place into canonical order.
func SortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return Compare(ts[i], ts[j]) < 0 })
}

// DedupSorted removes adjacent duplicates from a canonically sorted slice,
// returning the (re-sliced) input.
func DedupSorted(ts []Term) []Term {
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || Compare(t, ts[i-1]) != 0 {
			out = append(out, t)
		}
	}
	return out
}
