package term_test

import (
	"fmt"

	"weakmodels/internal/term"
)

// Example shows the canonical message algebra: sets deduplicate and sort,
// bags keep multiplicities, and every term has an injective parseable
// encoding.
func Example() {
	msg := term.Tuple(
		term.Str("beta"),
		term.Int(3),
		term.Set(term.Int(2), term.Int(1), term.Int(2)),
		term.Bag(term.Int(2), term.Int(1), term.Int(2)),
	)
	fmt.Println(msg.Encode())
	back, err := term.Parse(msg.Encode())
	fmt.Println(term.Equal(msg, back), err)
	// Output:
	// t("beta",3,S{1,2},B{1,2,2})
	// true <nil>
}

// ExampleCompare shows the total order used as the paper's fixed message
// order <M (Theorem 8).
func ExampleCompare() {
	a := term.Tuple(term.Int(1), term.Int(9))
	b := term.Tuple(term.Int(2), term.Int(0))
	fmt.Println(term.Compare(a, b), term.Less(a, b))
	// Output:
	// -1 true
}
