package term

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if got := Int(-7).IntVal(); got != -7 {
		t.Errorf("IntVal = %d, want -7", got)
	}
	if got := Str("hello").StrVal(); got != "hello" {
		t.Errorf("StrVal = %q, want hello", got)
	}
	tu := Tuple(Int(1), Str("x"))
	if tu.Len() != 2 || tu.At(0).IntVal() != 1 || tu.At(1).StrVal() != "x" {
		t.Errorf("Tuple accessors broken: %v", tu)
	}
	if (Term{}).IsZero() != true || Int(0).IsZero() != false {
		t.Error("IsZero misclassifies")
	}
}

func TestSetCanonicalisation(t *testing.T) {
	a := Set(Int(3), Int(1), Int(3), Int(2))
	b := Set(Int(2), Int(1), Int(3))
	if !Equal(a, b) {
		t.Errorf("sets differ: %v vs %v", a, b)
	}
	if a.Len() != 3 {
		t.Errorf("set should have 3 elements after dedup, has %d", a.Len())
	}
}

func TestBagKeepsMultiplicity(t *testing.T) {
	a := Bag(Int(3), Int(1), Int(3))
	if a.Len() != 3 {
		t.Fatalf("bag lost elements: %v", a)
	}
	b := Bag(Int(1), Int(3), Int(3))
	if !Equal(a, b) {
		t.Errorf("bags with same multiset differ: %v vs %v", a, b)
	}
	c := Bag(Int(1), Int(3))
	if Equal(a, c) {
		t.Errorf("bags with different multiplicities equal: %v vs %v", a, c)
	}
}

func TestSetVsBagVsTupleDistinct(t *testing.T) {
	kids := []Term{Int(1), Int(2)}
	if Equal(Set(kids...), Bag(kids...)) || Equal(Bag(kids...), Tuple(kids...)) ||
		Equal(Set(kids...), Tuple(kids...)) {
		t.Error("distinct kinds compare equal")
	}
}

func TestConstructorsCopyInput(t *testing.T) {
	kids := []Term{Int(2), Int(1)}
	tu := Tuple(kids...)
	kids[0] = Int(99)
	if tu.At(0).IntVal() != 2 {
		t.Error("Tuple retained caller slice")
	}
}

func TestCompareTotalOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ts := make([]Term, 60)
	for i := range ts {
		ts[i] = randomTerm(rng, 3)
	}
	for _, a := range ts {
		if Compare(a, a) != 0 {
			t.Fatalf("not reflexive: %v", a)
		}
		for _, b := range ts {
			if Compare(a, b) != -Compare(b, a) {
				t.Fatalf("not antisymmetric: %v vs %v", a, b)
			}
			for _, c := range ts {
				if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Fatalf("not transitive: %v %v %v", a, b, c)
				}
			}
		}
	}
}

func TestCompareConsistentWithEncode(t *testing.T) {
	// Equality of terms must coincide with equality of encodings (injectivity).
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := randomTerm(rng, 3), randomTerm(rng, 3)
		if (Compare(a, b) == 0) != (a.Encode() == b.Encode()) {
			t.Fatalf("Compare/Encode disagree: %v vs %v", a, b)
		}
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a := randomTerm(rng, 4)
		enc := a.Encode()
		b, err := Parse(enc)
		if err != nil {
			t.Fatalf("Parse(%q): %v", enc, err)
		}
		if !Equal(a, b) {
			t.Fatalf("round trip changed term: %v -> %v", a, b)
		}
	}
}

func TestEncodeParseQuick(t *testing.T) {
	f := func(n int64, s string) bool {
		tm := Tuple(Int(n), Str(s), Set(Str(s), Int(n)), Bag(Int(n), Int(n)))
		got, err := Parse(tm.Encode())
		return err == nil && Equal(tm, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "x", "t(", "t(1", "t(1;2)", `"unterminated`, "S{1,}", "1 ", "t(1)junk",
		"--3", "B{", "t", "S", `"\q"`,
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseValidLiterals(t *testing.T) {
	cases := map[string]Term{
		"42":          Int(42),
		"-1":          Int(-1),
		`"a,b\""`:     Str(`a,b"`),
		"t()":         Tuple(),
		"S{}":         Set(),
		"B{}":         Bag(),
		"t(1,t(2,3))": Tuple(Int(1), Tuple(Int(2), Int(3))),
		`S{1,2,"x"}`:  Set(Str("x"), Int(1), Int(2)),
		"B{1,1,S{2}}": Bag(Set(Int(2)), Int(1), Int(1)),
		`t("")`:       Tuple(Str("")),
	}
	for src, want := range cases {
		got, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if !Equal(got, want) {
			t.Errorf("Parse(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestStringEscaping(t *testing.T) {
	nasty := []string{`a"b`, "a,b", "t(", "S{", "\\", "\n", "日本", ""}
	for _, s := range nasty {
		got, err := Parse(Str(s).Encode())
		if err != nil || got.StrVal() != s {
			t.Errorf("escaping broken for %q: got %v err %v", s, got, err)
		}
	}
}

func TestSizeAndDepth(t *testing.T) {
	tm := Tuple(Int(1), Set(Int(2), Int(3)))
	if tm.Size() != 5 {
		t.Errorf("Size = %d, want 5", tm.Size())
	}
	if tm.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", tm.Depth())
	}
	if Int(1).Depth() != 1 {
		t.Errorf("leaf depth = %d, want 1", Int(1).Depth())
	}
}

func TestSortAndDedup(t *testing.T) {
	ts := []Term{Int(3), Int(1), Int(3), Str("a"), Int(1)}
	SortTerms(ts)
	if !sort.SliceIsSorted(ts, func(i, j int) bool { return Compare(ts[i], ts[j]) < 0 }) {
		t.Fatal("SortTerms did not sort")
	}
	ded := DedupSorted(ts)
	if len(ded) != 3 {
		t.Errorf("DedupSorted kept %d elements, want 3 (%v)", len(ded), ded)
	}
}

func TestLexicographicTupleOrder(t *testing.T) {
	// Shorter composites come first; equal-length compared elementwise.
	if !Less(Tuple(Int(9)), Tuple(Int(1), Int(1))) {
		t.Error("length-lexicographic order violated")
	}
	if !Less(Tuple(Int(1), Int(2)), Tuple(Int(1), Int(3))) {
		t.Error("elementwise order violated")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic(t, func() { Str("x").IntVal() })
	mustPanic(t, func() { Int(1).StrVal() })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func randomTerm(rng *rand.Rand, depth int) Term {
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return Int(int64(rng.Intn(20) - 10))
		}
		letters := []string{"a", "b", `c"`, ",", "t(", ""}
		return Str(letters[rng.Intn(len(letters))])
	}
	n := rng.Intn(4)
	kids := make([]Term, n)
	for i := range kids {
		kids[i] = randomTerm(rng, depth-1)
	}
	switch rng.Intn(3) {
	case 0:
		return Tuple(kids...)
	case 1:
		return Set(kids...)
	default:
		return Bag(kids...)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tm := randomTerm(rng, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tm.Encode()
	}
}

func BenchmarkParse(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	enc := randomTerm(rng, 6).Encode()
	if !strings.Contains(enc, "") {
		b.Fatal("unreachable")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x, y := randomTerm(rng, 6), randomTerm(rng, 6)
	for i := 0; i < b.N; i++ {
		_ = Compare(x, y)
	}
}
