package views

import (
	"math/rand"
	"testing"

	"weakmodels/internal/bisim"
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/port"
)

func TestViewDepthZeroIsDegree(t *testing.T) {
	g := graph.Star(3)
	p := port.Canonical(g)
	vs := Views(p, 0)
	if vs[0].Encode() == vs[1].Encode() {
		t.Error("centre and leaf share depth-0 view despite different degrees")
	}
	if vs[1].Encode() != vs[2].Encode() {
		t.Error("two leaves differ at depth 0")
	}
}

// TestViewsMatchBoundedBisimulation is the package's reason to exist: the
// depth-t view partition must equal t-round bisimulation on K₊,₊ — the
// classical views of Yamashita–Kameda meet the paper's modal-logic lens.
func TestViewsMatchBoundedBisimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	graphs := []*graph.Graph{
		graph.Path(6), graph.Cycle(7), graph.Star(4), graph.Figure1Graph(),
		graph.Petersen(), graph.Caterpillar(3, 2),
		graph.DisjointUnion(graph.Cycle(3), graph.Cycle(6)),
	}
	for _, g := range graphs {
		for trial := 0; trial < 3; trial++ {
			p := port.Random(g, rng)
			model := kripke.FromPorts(p, kripke.VariantPP)
			for depth := 0; depth <= 4; depth++ {
				viewIDs := Classes(p, depth)
				for u := 0; u < g.N(); u++ {
					for v := u + 1; v < g.N(); v++ {
						sameView := viewIDs[u] == viewIDs[v]
						var sameBisim bool
						if depth == 0 {
							// Zero rounds: only the degree is visible
							// (bisim.Options{MaxRounds: 0} means fixpoint,
							// so compare against the valuation directly).
							sameBisim = g.Degree(u) == g.Degree(v)
						} else {
							part := bisim.Compute(model, bisim.Options{MaxRounds: depth})
							sameBisim = part.Same(u, v)
						}
						if sameView != sameBisim {
							t.Fatalf("%v depth %d nodes %d,%d: view-equal=%v but %d-round-bisimilar=%v",
								g, depth, u, v, sameView, depth, sameBisim)
						}
					}
				}
			}
		}
	}
}

func TestSymmetricNumberings(t *testing.T) {
	// Lemma 15 numbering of a regular graph: all views equal.
	for _, g := range []*graph.Graph{graph.Cycle(5), graph.Petersen(), graph.NoOneFactorCubic()} {
		perms, err := graph.DoubleCoverFactorPermutations(g)
		if err != nil {
			t.Fatal(err)
		}
		p, err := port.FromPermutationFactors(g, perms)
		if err != nil {
			t.Fatal(err)
		}
		if !Symmetric(p) {
			t.Errorf("%v: Lemma 15 numbering not view-symmetric", g)
		}
	}
	// The symmetric consistent cycle numbering is view-symmetric too.
	if !Symmetric(port.SymmetricCycle(6)) {
		t.Error("symmetric cycle numbering not view-symmetric")
	}
	// A star is never view-symmetric (degrees differ).
	if Symmetric(port.Canonical(graph.Star(3))) {
		t.Error("star claimed view-symmetric")
	}
}

func TestStabilizationDepth(t *testing.T) {
	// On a path, views stabilise within diameter-ish rounds; on the
	// symmetric cycle instantly (everything is equivalent from round 0).
	if d := StabilizationDepth(port.SymmetricCycle(8)); d != 0 {
		t.Errorf("symmetric cycle stabilises at %d, want 0", d)
	}
	d := StabilizationDepth(port.Canonical(graph.Path(9)))
	if d < 2 || d > 9 {
		t.Errorf("P9 stabilisation depth %d out of expected range", d)
	}
}

func TestViewGrowth(t *testing.T) {
	// View size grows with depth; on a d-regular graph roughly like d^t.
	p := port.Canonical(graph.Petersen())
	last := 0
	for depth := 0; depth <= 4; depth++ {
		size := TruncatedViewSize(p, 0, depth)
		if size <= last {
			t.Fatalf("view size not growing: depth %d size %d (prev %d)", depth, size, last)
		}
		last = size
	}
}

func TestViewsOnInconsistentNumbering(t *testing.T) {
	// Views are well defined for arbitrary (inconsistent) numberings.
	rng := rand.New(rand.NewSource(101))
	p := port.Random(graph.Cycle(5), rng)
	vs := Views(p, 3)
	if len(vs) != 5 {
		t.Fatal("wrong view count")
	}
}

func BenchmarkViews(b *testing.B) {
	p := port.Canonical(graph.Torus(6, 6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Views(p, 4)
	}
}
