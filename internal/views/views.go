// Package views implements Yamashita–Kameda-style views of port-numbered
// graphs — the classical tool of the anonymous-networks literature the
// paper builds on (§3.3, references [59–62]).
//
// The depth-t view of a node v in (G, p) is the rooted tree of everything a
// Vector-class algorithm can learn about v's neighbourhood in t rounds:
// v's degree and, for each in-port i, the out-port the neighbour used and
// that neighbour's depth-(t−1) view. Two nodes have equal depth-t views
// exactly when no VV algorithm can distinguish them within t rounds — that
// is, when they are t-round bisimilar in K₊,₊. The package's tests verify
// this equivalence against internal/bisim's bounded refinement, connecting
// the graph-theoretic and the modal-logic perspectives computationally.
package views

import (
	"fmt"
	"strings"

	"weakmodels/internal/port"
	"weakmodels/internal/term"
)

// View computes the depth-t view of node v under p, encoded as a canonical
// term (equal views ⇔ equal terms ⇔ equal encodings).
func View(p *port.Numbering, v, depth int) term.Term {
	all := Views(p, depth)
	return all[v]
}

// Views computes the depth-t views of all nodes simultaneously (dynamic
// programming over depth — the naive recursion is exponential).
func Views(p *port.Numbering, depth int) []term.Term {
	g := p.Graph()
	n := g.N()
	cur := make([]term.Term, n)
	for v := 0; v < n; v++ {
		cur[v] = term.Tuple(term.Int(int64(g.Degree(v))))
	}
	for d := 1; d <= depth; d++ {
		next := make([]term.Term, n)
		for v := 0; v < n; v++ {
			kids := make([]term.Term, 0, g.Degree(v)+1)
			kids = append(kids, term.Int(int64(g.Degree(v))))
			for i := 1; i <= g.Degree(v); i++ {
				src := p.Source(v, i)
				kids = append(kids, term.Tuple(
					term.Int(int64(i)),         // my in-port
					term.Int(int64(src.Index)), // sender's out-port
					cur[src.Node],              // sender's depth-(d-1) view
				))
			}
			next[v] = term.Tuple(kids...)
		}
		cur = next
	}
	return cur
}

// Classes groups nodes by depth-t view equality, returning a class id per
// node (dense, by first occurrence). Unlike Views it never materialises the
// view trees: classes are refined level by level (hash consing), so deep
// views — whose explicit trees grow like Δ^t — cost only O(t·m) time.
func Classes(p *port.Numbering, depth int) []int {
	g := p.Graph()
	n := g.N()
	cur := make([]int, n)
	ids := make(map[string]int)
	for v := 0; v < n; v++ {
		key := fmt.Sprintf("d%d", g.Degree(v))
		id, ok := ids[key]
		if !ok {
			id = len(ids)
			ids[key] = id
		}
		cur[v] = id
	}
	for d := 1; d <= depth; d++ {
		next := make([]int, n)
		level := make(map[string]int)
		var sb strings.Builder
		for v := 0; v < n; v++ {
			sb.Reset()
			fmt.Fprintf(&sb, "d%d", g.Degree(v))
			for i := 1; i <= g.Degree(v); i++ {
				src := p.Source(v, i)
				fmt.Fprintf(&sb, "|%d:%d:%d", i, src.Index, cur[src.Node])
			}
			key := sb.String()
			id, ok := level[key]
			if !ok {
				id = len(level)
				level[key] = id
			}
			next[v] = id
		}
		cur = next
	}
	return cur
}

// StabilizationDepth returns the smallest t at which the view partition
// stops refining (bounded by n, per the classical view theory: views of
// depth n determine views of all depths). This is the locality radius of
// the instance.
func StabilizationDepth(p *port.Numbering) int {
	g := p.Graph()
	prev := countClasses(Classes(p, 0))
	for t := 1; t <= g.N()+1; t++ {
		cur := countClasses(Classes(p, t))
		if cur == prev {
			return t - 1
		}
		prev = cur
	}
	return g.N() + 1
}

func countClasses(ids []int) int {
	max := -1
	for _, id := range ids {
		if id > max {
			max = id
		}
	}
	return max + 1
}

// Symmetric reports whether all nodes of (G,p) share the same depth-n view
// — the classical criterion for total symmetry (all nodes bisimilar in
// K₊,₊, Lemma 15's conclusion).
func Symmetric(p *port.Numbering) bool {
	ids := Classes(p, p.Graph().N())
	return countClasses(ids) <= 1
}

// TruncatedViewSize returns the term size of a node's depth-t view — the
// information-volume measure behind the simulation-overhead experiments.
func TruncatedViewSize(p *port.Numbering, v, depth int) int {
	return View(p, v, depth).Size()
}
