package obs

// journal.go serializes Event records as JSONL. The encoding is
// deterministic by construction — fixed key order, every key always
// present, integers only — so two runs that emit the same event sequence
// produce byte-identical journals; the engine's equivalence tests compare
// the bytes directly.

import (
	"io"
	"strconv"
)

// AppendJSONL appends one journal line (including the trailing newline)
// for e to dst and returns the extended slice. The schema is fixed:
//
//	{"step":S,"kind":"K","node":N,"link":L,"arg":A}
//
// with every key always present (node and link are -1 when the event is
// not node- or link-scoped). Appending allocates only when dst grows.
func AppendJSONL(dst []byte, e Event) []byte {
	dst = append(dst, `{"step":`...)
	dst = strconv.AppendInt(dst, e.Step, 10)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, e.Kind.String()...)
	dst = append(dst, `","node":`...)
	dst = strconv.AppendInt(dst, int64(e.Node), 10)
	dst = append(dst, `,"link":`...)
	dst = strconv.AppendInt(dst, int64(e.Link), 10)
	dst = append(dst, `,"arg":`...)
	dst = strconv.AppendInt(dst, e.Arg, 10)
	dst = append(dst, '}', '\n')
	return dst
}

// journalFlushAt bounds the JournalWriter's internal buffer: once a batch
// of appended lines crosses it, the batch is written out. Large enough to
// amortise syscalls, small enough that tailing a live journal file sees
// events promptly.
const journalFlushAt = 1 << 15

// JournalWriter is a Sink that serializes events as JSONL into an
// io.Writer through one reused buffer: steady-state event emission
// allocates nothing. Errors are sticky — the first write error is
// remembered, subsequent events are dropped, and Flush reports it.
type JournalWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewJournalWriter returns a JournalWriter emitting to w.
func NewJournalWriter(w io.Writer) *JournalWriter {
	return &JournalWriter{w: w, buf: make([]byte, 0, journalFlushAt+1024)}
}

// Event appends one JSONL record, writing the buffer out when full.
func (jw *JournalWriter) Event(e Event) {
	if jw.err != nil {
		return
	}
	jw.buf = AppendJSONL(jw.buf, e)
	if len(jw.buf) >= journalFlushAt {
		jw.write()
	}
}

// Flush writes any buffered records and returns the first error the
// writer encountered.
func (jw *JournalWriter) Flush() error {
	if jw.err == nil && len(jw.buf) > 0 {
		jw.write()
	}
	return jw.err
}

func (jw *JournalWriter) write() {
	_, err := jw.w.Write(jw.buf)
	jw.buf = jw.buf[:0]
	if err != nil && jw.err == nil {
		jw.err = err
	}
}

// Collect is a Sink that retains every event in memory, for tests and
// programmatic consumers (the examples/observe walkthrough tails one).
type Collect struct {
	Events []Event
}

// Event appends e to the collected slice.
func (c *Collect) Event(e Event) { c.Events = append(c.Events, e) }

// Flush is a no-op; collection cannot fail.
func (c *Collect) Flush() error { return nil }

// Tee fans one event stream out to several sinks, in order.
type Tee []Sink

// Event forwards e to every sink.
func (t Tee) Event(e Event) {
	for _, s := range t {
		s.Event(e)
	}
}

// Flush flushes every sink and returns the first error.
func (t Tee) Flush() error {
	var first error
	for _, s := range t {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
