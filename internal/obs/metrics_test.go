package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsExport pins the Prometheus text format: HELP/TYPE headers,
// sorted names, cumulative histogram buckets with +Inf, sum and count.
func TestMetricsExport(t *testing.T) {
	m := NewMetrics()
	m.Counter("weak_z_total", "last alphabetically").Add(7)
	m.Gauge("weak_a_nodes", "first alphabetically").Set(36)
	h := m.Histogram("weak_round_us", "per-round µs", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP weak_a_nodes first alphabetically",
		"# TYPE weak_a_nodes gauge",
		"weak_a_nodes 36",
		"# TYPE weak_round_us histogram",
		`weak_round_us_bucket{le="10"} 1`,
		`weak_round_us_bucket{le="100"} 2`,
		`weak_round_us_bucket{le="+Inf"} 3`,
		"weak_round_us_sum 5055",
		"weak_round_us_count 3",
		"# TYPE weak_z_total counter",
		"weak_z_total 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	// Sorted order: the gauge renders before the histogram before the
	// counter.
	if strings.Index(out, "weak_a_nodes") > strings.Index(out, "weak_round_us") ||
		strings.Index(out, "weak_round_us") > strings.Index(out, "weak_z_total") {
		t.Errorf("metrics not sorted by name:\n%s", out)
	}
}

// TestMetricsIdempotentRegistration: re-registering a name returns the
// same series; registering it as another type panics.
func TestMetricsIdempotentRegistration(t *testing.T) {
	m := NewMetrics()
	c1 := m.Counter("x_total", "")
	c1.Add(2)
	if c2 := m.Counter("x_total", ""); c2.Value() != 2 {
		t.Errorf("re-registration returned a fresh counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("cross-type registration did not panic")
		}
	}()
	m.Gauge("x_total", "")
}

// TestMetricsHandler: the HTTP endpoint serves the text format.
func TestMetricsHandler(t *testing.T) {
	m := NewMetrics()
	m.Counter("weak_runs_total", "runs").Inc()
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "weak_runs_total 1") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

// TestHistogramDefaultBuckets: nil buckets fall back to DurationBuckets.
func TestHistogramDefaultBuckets(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("t_us", "", nil)
	h.Observe(3)
	if h.Count() != 1 || h.Sum() != 3 {
		t.Errorf("count=%d sum=%v", h.Count(), h.Sum())
	}
	if len(h.bounds) != len(DurationBuckets) {
		t.Errorf("default buckets not applied")
	}
}
