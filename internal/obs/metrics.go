package obs

// metrics.go is the metrics registry: named counters, gauges and
// histograms exported in the Prometheus text exposition format. The
// registry is deliberately tiny — no labels, no vector metrics, no
// dependency — because the engine's telemetry is a fixed small vocabulary
// of series and the export must stay deterministic (names are emitted in
// sorted order, values are plain integers or shortest-form floats).

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 series.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (d must be ≥ 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 series.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a cumulative-bucket histogram over float64 observations,
// in the Prometheus style: Buckets are upper bounds, counts are
// cumulative at export, and an implicit +Inf bucket catches the rest.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	counts  []int64 // per-bound (non-cumulative internally), +Inf last
	sum     float64
	samples int64
}

// DurationBuckets is the default bucket ladder for microsecond timings:
// 1µs to 10s in a 1-2.5-5 progression.
var DurationBuckets = []float64{
	1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
	250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.samples++
	h.mu.Unlock()
}

// Count returns the number of samples observed so far.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// metric is one registered series.
type metric struct {
	name string
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

func (m *metric) kind() string {
	switch {
	case m.c != nil:
		return "counter"
	case m.g != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

// Metrics is the registry. Registration methods are idempotent: asking
// for an existing name of the same type returns the same series, so
// several runs can share one registry and accumulate. Asking for an
// existing name as a different type panics — that is a programming error,
// not a runtime condition.
type Metrics struct {
	mu    sync.Mutex
	items map[string]*metric
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{items: map[string]*metric{}}
}

func (m *Metrics) lookup(name, help, kind string) *metric {
	m.mu.Lock()
	defer m.mu.Unlock()
	if it, ok := m.items[name]; ok {
		if it.kind() != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, it.kind(), kind))
		}
		return it
	}
	it := &metric{name: name, help: help}
	m.items[name] = it
	return it
}

// Counter registers (or returns the existing) counter named name.
func (m *Metrics) Counter(name, help string) *Counter {
	it := m.lookup(name, help, "counter")
	if it.c == nil {
		it.c = &Counter{}
	}
	return it.c
}

// Gauge registers (or returns the existing) gauge named name.
func (m *Metrics) Gauge(name, help string) *Gauge {
	it := m.lookup(name, help, "gauge")
	if it.g == nil {
		it.g = &Gauge{}
	}
	return it.g
}

// Histogram registers (or returns the existing) histogram named name with
// the given upper-bound buckets (nil uses DurationBuckets). Bounds must
// be sorted ascending.
func (m *Metrics) Histogram(name, help string, buckets []float64) *Histogram {
	it := m.lookup(name, help, "histogram")
	if it.h == nil {
		if buckets == nil {
			buckets = DurationBuckets
		}
		it.h = &Histogram{
			bounds: buckets,
			counts: make([]int64, len(buckets)+1),
		}
	}
	return it.h
}

// WriteText writes the registry in the Prometheus text exposition format,
// metrics sorted by name so the output is deterministic for a given set
// of values.
func (m *Metrics) WriteText(w io.Writer) error {
	m.mu.Lock()
	names := make([]string, 0, len(m.items))
	for name := range m.items {
		names = append(names, name)
	}
	items := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		items = append(items, m.items[name])
	}
	m.mu.Unlock()

	var buf []byte
	for _, it := range items {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, it.name...)
		buf = append(buf, ' ')
		buf = append(buf, it.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, it.name...)
		buf = append(buf, ' ')
		buf = append(buf, it.kind()...)
		buf = append(buf, '\n')
		switch {
		case it.c != nil:
			buf = append(buf, it.name...)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, it.c.Value(), 10)
			buf = append(buf, '\n')
		case it.g != nil:
			buf = append(buf, it.name...)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, it.g.Value(), 10)
			buf = append(buf, '\n')
		default:
			buf = it.h.appendProm(buf, it.name)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendProm renders the histogram's cumulative buckets, sum and count.
func (h *Histogram) appendProm(buf []byte, name string) []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		buf = append(buf, name...)
		buf = append(buf, `_bucket{le="`...)
		buf = strconv.AppendFloat(buf, bound, 'g', -1, 64)
		buf = append(buf, `"} `...)
		buf = strconv.AppendInt(buf, cum, 10)
		buf = append(buf, '\n')
	}
	buf = append(buf, name...)
	buf = append(buf, `_bucket{le="+Inf"} `...)
	buf = strconv.AppendInt(buf, h.samples, 10)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_sum "...)
	buf = strconv.AppendFloat(buf, h.sum, 'g', -1, 64)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_count "...)
	buf = strconv.AppendInt(buf, h.samples, 10)
	buf = append(buf, '\n')
	return buf
}

// Handler returns an http.Handler serving the registry as a Prometheus
// text endpoint — mount it at /metrics.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := m.WriteText(w); err != nil {
			// The connection is gone; nothing useful to do.
			return
		}
	})
}
