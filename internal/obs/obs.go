// Package obs is the engine's observability layer: a structured event
// journal, a metrics registry with Prometheus text export, and an
// injectable monotonic clock.
//
// The design splits telemetry into two streams with different shapes:
//
//   - The journal is the event-level record — every fire, delivery fate
//     (drop/dup/corrupt/retransmit), crash/recovery, partition heal and
//     fixpoint probe of a run, emitted as fixed-width Event records in a
//     deterministic global order and serialized as JSONL. It answers
//     questions of the epistemic kind ("what had node v seen when it
//     fired?", "which step did the partition heal at?") and is the
//     stepping stone to checkpoint/replay: a journal plus the seeds is a
//     complete causal account of a run.
//
//   - The metrics registry is the aggregate record — counters, gauges and
//     histograms a long-running process exports in Prometheus text format
//     for scraping. Engine Result counters are mirrored into it at the end
//     of every run, so across runs the registry is the accumulated view of
//     the same numbers.
//
// Both are injected, never global: a run carries an *Obs bundle (the
// injected-dependencies shape — logger, metrics, clock — of long-running
// simulation servers) and a nil bundle, sink or registry costs the engine
// a pointer test and nothing else. Determinism is load-bearing exactly as
// everywhere else in this repository: the engine emits journal events in
// global (step, link/node) order regardless of its worker count, so the
// serialized JSONL of a seeded run is byte-identical across GOMAXPROCS
// and shard settings.
package obs

import (
	"fmt"
	"time"
)

// Kind identifies what a journal Event records.
type Kind uint8

const (
	// KindFire records a completed activation of Node: a firing that
	// consumed a full frontier (async) or one synchronous round step. Arg
	// is the node's cumulative completed firings for the async executor
	// and 0 for the synchronous ones.
	KindFire Kind = iota
	// KindHalt records that Node halted at this step, immediately after
	// its fire event.
	KindHalt
	// KindDrop records a delivery on Link whose payload a fault plan
	// replaced with m0 (the omission fault).
	KindDrop
	// KindDup records a delivery on Link that a fault plan duplicated.
	KindDup
	// KindCorrupt records a delivery on Link whose payload a Byzantine
	// plan rewrote.
	KindCorrupt
	// KindRetransmit records a sender-side retransmission a fault plan
	// injected into Link's flight queue.
	KindRetransmit
	// KindCrash records that Node crashed at this step.
	KindCrash
	// KindRecover records that Node recovered at this step; Arg is the
	// fault.RecoverKind (1 resume, 2 reset).
	KindRecover
	// KindHeal records that a partition plan restored cut links at this
	// step; Arg is the number of links newly healed.
	KindHeal
	// KindProbe records a global fixpoint probe; Arg is 1 when the probe
	// detected a fixpoint (ending the run) and 0 otherwise.
	KindProbe
	// KindDiverge records, after a stabilisation check, a live node whose
	// stabilised state differs from the fault-free reference. Step is the
	// faulty run's final step.
	KindDiverge

	numKinds
)

// kindNames is indexed by Kind; the spellings are the JSONL vocabulary.
var kindNames = [numKinds]string{
	"fire", "halt", "drop", "dup", "corrupt", "retransmit",
	"crash", "recover", "heal", "probe", "diverge",
}

// String returns the JSONL spelling of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindNames lists every kind's JSONL spelling, in Kind order.
func KindNames() []string {
	names := make([]string, numKinds)
	copy(names, kindNames[:])
	return names
}

// ParseKind resolves a JSONL kind spelling back to its Kind.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q; have %v", s, kindNames)
}

// Event is one fixed-width journal record. Node and Link are -1 when the
// event is not node- or link-scoped; Arg is kind-specific (see the Kind
// constants). Events are plain values — emitting one allocates nothing.
type Event struct {
	// Step is the schedule step (async) or round (sync) the event
	// happened at.
	Step int64
	// Kind says what happened.
	Kind Kind
	// Node is the node the event concerns, or -1.
	Node int32
	// Link is the directed link (routing-table in-port slot) the event
	// concerns, or -1.
	Link int32
	// Arg is the kind-specific payload.
	Arg int64
}

// Sink consumes a run's journal events. The engine calls Event from its
// coordinator goroutine only, in deterministic global order — first all
// events of step t, then all of step t+1 — and Flush at the end of the
// run (on every exit path). Implementations therefore need no locking
// against the engine, but must not assume a run ends cleanly between
// steps: Flush can follow a budget error mid-stream.
type Sink interface {
	// Event consumes one journal record.
	Event(e Event)
	// Flush forces buffered records out and reports the first write error
	// encountered, if any.
	Flush() error
}

// Clock is a monotonic time source for duration measurements. Now returns
// the time elapsed since an arbitrary fixed origin; only differences are
// meaningful. Injected so tests and replays can drive time by hand.
type Clock interface {
	Now() time.Duration
}

// wallClock reads the real monotonic clock, origin at construction.
type wallClock struct{ base time.Time }

func (c wallClock) Now() time.Duration { return time.Since(c.base) } //weakvet:rand wallClock IS the injectable Clock's real-time backing; never on a replayed path

// WallClock returns a Clock backed by the real monotonic clock.
func WallClock() Clock { return wallClock{base: time.Now()} } //weakvet:rand the one sanctioned wall-time origin; runs feed durations through the injected Clock only

// ManualClock is a hand-driven Clock for tests: Now returns whatever the
// last Advance set. The zero value is ready to use.
type ManualClock struct{ t time.Duration }

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) { c.t += d }

// Now returns the current manual reading.
func (c *ManualClock) Now() time.Duration { return c.t }

// Obs bundles the observability dependencies injected into a run — the
// Deps shape of long-running simulation servers, trimmed to what the
// engine consumes. Any field may be nil; a nil *Obs disables everything.
type Obs struct {
	// Sink receives the run's journal events; nil disables the journal.
	Sink Sink
	// Metrics receives the run's counters and timing histograms; nil
	// disables metrics.
	Metrics *Metrics
	// Clock supplies the monotonic readings behind the timing histograms.
	// Nil falls back to WallClock; inject a ManualClock for deterministic
	// timings.
	Clock Clock
}

// ResolveClock returns o.Clock, or a fresh WallClock when unset.
func (o *Obs) ResolveClock() Clock {
	if o != nil && o.Clock != nil {
		return o.Clock
	}
	return WallClock()
}
