package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestAppendJSONLSchema pins the journal line schema: fixed key order,
// every key always present, and valid JSON that decodes back to the
// event's fields.
func TestAppendJSONLSchema(t *testing.T) {
	e := Event{Step: 42, Kind: KindDrop, Node: -1, Link: 7, Arg: 3}
	line := AppendJSONL(nil, e)
	want := `{"step":42,"kind":"drop","node":-1,"link":7,"arg":3}` + "\n"
	if string(line) != want {
		t.Errorf("line = %q, want %q", line, want)
	}
	var decoded struct {
		Step int64  `json:"step"`
		Kind string `json:"kind"`
		Node int32  `json:"node"`
		Link int32  `json:"link"`
		Arg  int64  `json:"arg"`
	}
	if err := json.Unmarshal(line, &decoded); err != nil {
		t.Fatalf("journal line is not valid JSON: %v", err)
	}
	if decoded.Step != 42 || decoded.Kind != "drop" || decoded.Node != -1 ||
		decoded.Link != 7 || decoded.Arg != 3 {
		t.Errorf("decoded %+v does not round-trip %+v", decoded, e)
	}
}

// TestKindStrings: every kind has a distinct JSONL spelling.
func TestKindStrings(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "" || s == "unknown" {
			t.Errorf("kind %d has no spelling", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share spelling %q", prev, k, s)
		}
		seen[s] = k
	}
}

// TestJournalWriterBatches: events accumulate in the buffer and come out
// on Flush, newline-separated, in order.
func TestJournalWriterBatches(t *testing.T) {
	var sb bytes.Buffer
	jw := NewJournalWriter(&sb)
	for i := 0; i < 100; i++ {
		jw.Event(Event{Step: int64(i), Kind: KindFire, Node: int32(i % 5), Link: -1})
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 100 {
		t.Fatalf("got %d lines, want 100", len(lines))
	}
	if !strings.Contains(lines[7], `"step":7`) {
		t.Errorf("line 7 out of order: %s", lines[7])
	}
}

// errWriter fails after the first write.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

// TestJournalWriterStickyError: the first write error is remembered and
// reported by Flush; later events are dropped, not written out of order.
func TestJournalWriterStickyError(t *testing.T) {
	jw := NewJournalWriter(&errWriter{})
	big := Event{Step: 1, Kind: KindFire, Node: 1, Link: -1}
	for i := 0; i < journalFlushAt; i++ { // force at least two buffer writes
		jw.Event(big)
	}
	if err := jw.Flush(); err == nil {
		t.Fatal("Flush swallowed the write error")
	}
}

// TestCollectAndTee: Collect retains events; Tee fans out to all sinks.
func TestCollectAndTee(t *testing.T) {
	var a, b Collect
	tee := Tee{&a, &b}
	tee.Event(Event{Step: 1, Kind: KindCrash, Node: 3, Link: -1})
	if err := tee.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != 1 || len(b.Events) != 1 || a.Events[0].Node != 3 {
		t.Errorf("tee did not fan out: a=%v b=%v", a.Events, b.Events)
	}
}

// TestManualClock: Advance moves Now.
func TestManualClock(t *testing.T) {
	var c ManualClock
	if c.Now() != 0 {
		t.Errorf("zero clock reads %v", c.Now())
	}
	c.Advance(3 * time.Millisecond)
	c.Advance(2 * time.Millisecond)
	if c.Now() != 5*time.Millisecond {
		t.Errorf("clock reads %v, want 5ms", c.Now())
	}
}

// TestResolveClock: nil bundles and nil clocks fall back to a wall clock.
func TestResolveClock(t *testing.T) {
	var o *Obs
	if o.ResolveClock() == nil {
		t.Fatal("nil Obs resolved a nil clock")
	}
	mc := &ManualClock{}
	o = &Obs{Clock: mc}
	if o.ResolveClock() != mc {
		t.Fatal("set clock was not returned")
	}
}
