package algorithms

import (
	"fmt"
	"math/rand"
	"testing"

	"weakmodels/internal/compile"
	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/port"
	"weakmodels/internal/problems"
)

func TestLeafProximitySolves(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	graphs := []*graph.Graph{
		graph.Path(7), graph.Star(4), graph.Caterpillar(4, 1),
		graph.Cycle(5), // no leaves at all
		graph.DisjointUnion(graph.Path(3), graph.Cycle(4)),
		graph.Figure1Graph(),
	}
	for k := 0; k <= 3; k++ {
		problem := problems.LeafWithin{K: k}
		for _, g := range graphs {
			m := LeafProximity(g.MaxDegree(), k)
			for trial := 0; trial < 3; trial++ {
				res, err := engine.Run(m, port.Random(g, rng), engine.Options{})
				if err != nil {
					t.Fatalf("k=%d %v: %v", k, g, err)
				}
				if err := problem.Validate(g, res.Output); err != nil {
					t.Fatalf("k=%d %v: %v", k, g, err)
				}
				if res.Rounds != k {
					t.Errorf("k=%d: took %d rounds", k, res.Rounds)
				}
			}
		}
	}
}

// TestLeafProximityMatchesIteratedDiamond: the algorithm computes exactly
// the ML truth set of ⟨∗,∗⟩^k reachability of a degree-1 node — checked by
// building the formula q1 | <*,*>(q1 | <*,*>(…)) and model checking it.
func TestLeafProximityMatchesIteratedDiamond(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for k := 0; k <= 3; k++ {
		// φ_0 = q1; φ_{i+1} = q1 | <*,*> φ_i.
		var f logic.Formula = logic.Prop{Name: "q1"}
		for i := 0; i < k; i++ {
			f = logic.Or{L: logic.Prop{Name: "q1"}, R: logic.Dia(kripke.Index{I: kripke.Star, J: kripke.Star}, f)}
		}
		for _, g := range []*graph.Graph{graph.Path(6), graph.Caterpillar(3, 1)} {
			p := port.Random(g, rng)
			m := LeafProximity(g.MaxDegree(), k)
			res, err := engine.Run(m, p, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			model := kripke.FromPorts(p, kripke.VariantMM)
			want := logic.Eval(model, f)
			for v := 0; v < g.N(); v++ {
				if (res.Output[v] == "1") != want[v] {
					t.Fatalf("k=%d %v node %d: algorithm %q, formula %v",
						k, g, v, res.Output[v], want[v])
				}
			}
		}
	}
}

// TestLeafProximityViaCompiler: compiling the same iterated-diamond formula
// with Theorem 2 yields an equivalent SB machine.
func TestLeafProximityViaCompiler(t *testing.T) {
	k := 2
	var f logic.Formula = logic.Prop{Name: "q1"}
	for i := 0; i < k; i++ {
		f = logic.Or{L: logic.Prop{Name: "q1"}, R: logic.Dia(kripke.Index{I: kripke.Star, J: kripke.Star}, f)}
	}
	g := graph.Caterpillar(4, 1)
	compiled, _, err := compile.MachineFromFormula(f, g.MaxDegree())
	if err != nil {
		t.Fatal(err)
	}
	p := port.Canonical(g)
	a, err := engine.Run(LeafProximity(g.MaxDegree(), k), p, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.Run(compiled, p, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Output {
		if a.Output[v] != b.Output[v] {
			t.Fatalf("node %d: hand-written %q vs compiled %q", v, a.Output[v], b.Output[v])
		}
	}
	if fmt.Sprint(compiled.Class()) != "Set∩Broadcast" {
		t.Errorf("compiled class %v, want SB", compiled.Class())
	}
}

// TestLeafProximityStabMatchesHalting: the stabilising Bellman form and
// the round-counting halting form decide the same predicate — run the
// stabilising machine to its fixpoint and compare d ≤ k against the
// halting outputs, across graphs with and without nearby leaves.
func TestLeafProximityStabMatchesHalting(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(7),
		graph.Star(5),
		graph.Caterpillar(5, 2),
		graph.Cycle(6), // no leaves at all: everyone decides 0
		graph.Grid(3, 4),
	}
	for _, g := range graphs {
		for _, k := range []int{0, 1, 3} {
			p := port.Canonical(g)
			halting := runOn(t, LeafProximity(g.MaxDegree(), k), p)
			stab, err := engine.Run(LeafProximityStab(g.MaxDegree(), k), p, engine.Options{
				Executor: engine.ExecutorAsync,
			})
			if err != nil {
				t.Fatalf("stab on %v k=%d: %v", g, k, err)
			}
			if !stab.Fixpoint {
				t.Fatalf("stab on %v k=%d did not reach a fixpoint", g, k)
			}
			for v, s := range stab.States {
				got := "0"
				if s.(int) <= k {
					got = "1"
				}
				if want := string(halting.Output[v]); got != want {
					t.Errorf("%v k=%d node %d: stab decides %s (d=%d), halting %s",
						g, k, v, got, s.(int), want)
				}
			}
		}
	}
}
