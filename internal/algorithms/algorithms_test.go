package algorithms

import (
	"math/rand"
	"testing"

	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/problems"
)

// runOn executes m on (g,p) and fails the test on engine errors.
func runOn(t *testing.T, m machine.Machine, p *port.Numbering) *engine.Result {
	t.Helper()
	res, err := engine.Run(m, p, engine.Options{})
	if err != nil {
		t.Fatalf("%s on %v: %v", m.Name(), p.Graph(), err)
	}
	return res
}

func TestLeafElectSolvesStars(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	problem := problems.LeafElection{}
	for _, k := range []int{2, 3, 5, 7} {
		g := graph.Star(k)
		m := LeafElect(g.MaxDegree())
		for trial := 0; trial < 10; trial++ {
			res := runOn(t, m, port.Random(g, rng))
			if err := problem.Validate(g, res.Output); err != nil {
				t.Fatalf("star %d: %v", k, err)
			}
			if res.Rounds != 1 {
				t.Errorf("leaf-elect took %d rounds, want 1", res.Rounds)
			}
		}
	}
	// Non-star graphs: any output is fine; just check it runs.
	runOn(t, LeafElect(2), port.Canonical(graph.Cycle(4)))
}

func TestLeafElectInvariance(t *testing.T) {
	// LeafElect declares Set receive; its Step must be set-invariant.
	rng := rand.New(rand.NewSource(91))
	m := LeafElect(3)
	s := m.Init(3)
	inbox := []machine.Message{"1", "2", "2"}
	if err := machine.CheckStepInvariance(m, s, inbox, rng); err != nil {
		t.Error(err)
	}
}

func TestOddOddSolvesEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	problem := problems.OddOdd{}
	witness, _, _ := graph.Theorem13Witness()
	graphs := []*graph.Graph{
		graph.Path(5), graph.Cycle(6), graph.Star(4), graph.Figure1Graph(),
		graph.Petersen(), witness, graph.Caterpillar(3, 2),
	}
	for _, g := range graphs {
		m := OddOdd(g.MaxDegree())
		for trial := 0; trial < 5; trial++ {
			res := runOn(t, m, port.Random(g, rng))
			if err := problem.Validate(g, res.Output); err != nil {
				t.Fatalf("%v: %v", g, err)
			}
		}
		if err := machine.CheckSendInvariance(m, []machine.State{m.Init(2)}, g.MaxDegree()); err != nil {
			t.Error(err)
		}
	}
}

func TestEvenDegreeDecision(t *testing.T) {
	problem := problems.EvenDegrees{}
	for _, g := range []*graph.Graph{graph.Cycle(5), graph.Path(4), graph.Torus(3, 3)} {
		m := EvenDegree(g.MaxDegree())
		res := runOn(t, m, port.Canonical(g))
		if err := problem.Validate(g, res.Output); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if res.Rounds != 0 {
			t.Errorf("even-degree took %d rounds, want 0", res.Rounds)
		}
	}
}

func TestLocalTypeMaxBreaksSymmetryOnG(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	problem := problems.SymmetryBreak{}
	g := graph.NoOneFactorCubic()
	if !problems.InClassG(g) {
		t.Fatal("witness graph not in 𝒢")
	}
	m := LocalTypeMax(3)
	for trial := 0; trial < 30; trial++ {
		p := port.RandomConsistent(g, rng)
		res := runOn(t, m, p)
		if err := problem.Validate(g, res.Output); err != nil {
			t.Fatalf("consistent trial %d: %v", trial, err)
		}
		if res.Rounds != 2 {
			t.Errorf("local-type-max took %d rounds, want 2", res.Rounds)
		}
	}
}

func TestLocalTypeMaxOnCyclesConsistent(t *testing.T) {
	// C_n is 2-regular with a 1-factor only when n is even; odd cycles are
	// NOT in 𝒢 (degree 2 is even) — but local types still behave sanely:
	// under any consistent numbering some node outputs 1.
	rng := rand.New(rand.NewSource(94))
	m := LocalTypeMax(2)
	for _, n := range []int{4, 5, 6} {
		for trial := 0; trial < 10; trial++ {
			res := runOn(t, m, port.RandomConsistent(graph.Cycle(n), rng))
			ones := 0
			for _, o := range res.Output {
				if o == "1" {
					ones++
				}
			}
			if ones == 0 {
				t.Fatalf("C%d: no local maximum elected", n)
			}
		}
	}
}

func TestVertexCover2(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	problem := problems.VertexCover{Ratio: 2}
	graphs := []*graph.Graph{
		graph.Path(6), graph.Cycle(7), graph.Star(5), graph.Complete(5),
		graph.Figure1Graph(), graph.Petersen(), graph.Grid(3, 4),
		graph.Caterpillar(4, 2), graph.NoOneFactorCubic(),
	}
	for _, g := range graphs {
		m := VertexCover2(g.MaxDegree())
		for trial := 0; trial < 3; trial++ {
			res := runOn(t, m, port.Random(g, rng))
			if err := problem.Validate(g, res.Output); err != nil {
				t.Fatalf("%v: %v", g, err)
			}
		}
	}
}

func TestVertexCover2OnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	problem := problems.VertexCover{Ratio: 2}
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(10)
		var edges []graph.Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(4) == 0 {
					edges = append(edges, graph.Edge{U: u, V: v})
				}
			}
		}
		g := graph.MustNew(n, edges)
		m := VertexCover2(maxInt(g.MaxDegree(), 1))
		res := runOn(t, m, port.Random(g, rng))
		if err := problem.Validate(g, res.Output); err != nil {
			t.Fatalf("trial %d on %v: %v", trial, g, err)
		}
	}
}

func TestVertexCover2RoundsSmall(t *testing.T) {
	// The round count should stay modest (empirical envelope: well under n).
	rng := rand.New(rand.NewSource(97))
	for _, g := range []*graph.Graph{graph.Petersen(), graph.Grid(4, 4), graph.Torus(4, 4)} {
		m := VertexCover2(g.MaxDegree())
		res := runOn(t, m, port.Random(g, rng))
		if res.Rounds > g.N() {
			t.Errorf("%v: vertex cover took %d rounds (> n = %d)", g, res.Rounds, g.N())
		}
	}
}

func TestVertexCover2Invariance(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	m := VertexCover2(3)
	s := m.Init(3)
	inbox := []machine.Message{"off:1/3", "off:1/2", "off:1/2"}
	if err := machine.CheckStepInvariance(m, s, inbox, rng); err != nil {
		t.Error(err)
	}
	if err := machine.CheckSendInvariance(m, []machine.State{s}, 3); err != nil {
		t.Error(err)
	}
}

func TestRegistry(t *testing.T) {
	names := RegistryNames()
	if len(names) != 6 {
		t.Fatalf("registry has %d entries: %v", len(names), names)
	}
	for _, name := range names {
		m := Registry()[name](3)
		if m.Delta() != 3 {
			t.Errorf("%s: Delta() = %d", name, m.Delta())
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkVertexCover(b *testing.B) {
	for _, nm := range []struct {
		name string
		g    *graph.Graph
	}{
		{"petersen", graph.Petersen()},
		{"grid6x6", graph.Grid(6, 6)},
		{"torus6x6", graph.Torus(6, 6)},
	} {
		b.Run(nm.name, func(b *testing.B) {
			m := VertexCover2(nm.g.MaxDegree())
			p := port.Canonical(nm.g)
			b.ReportAllocs()
			b.ResetTimer()
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := engine.Run(m, p, engine.Options{})
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}
