// Package algorithms implements the concrete distributed algorithms the
// paper uses — the positive sides of every separation, plus the vertex-cover
// algorithm motivating the study of class MB (Section 3.3).
//
//	LeafElect     SV(1)  Theorem 11: elects a leaf in a star.
//	OddOdd        MB(1)  Theorem 13: marks nodes with an odd number of
//	                     odd-degree neighbours.
//	LocalTypeMax  VVc(1) Theorem 17: outputs 1 at local-type maxima; breaks
//	                     symmetry on 𝒢 under every consistent numbering.
//	EvenDegree    SB(1)  zero-round even-degree decision.
//	VertexCover2  MB     broadcast-only fractional-matching 2-approximation
//	                     (substitution for Åstrand–Suomela [3]; DESIGN.md §6).
package algorithms

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"weakmodels/internal/machine"
	"weakmodels/internal/term"
)

// LeafElect is the Theorem 11 algorithm (class SV): every node sends its
// out-port number i to port i; a node outputs 1 iff it has degree 1 and its
// received set is {1}. On a k-star exactly the leaf reached by the centre's
// port 1 is elected.
func LeafElect(delta int) machine.Machine {
	type st struct {
		Deg  int
		Done bool
		Out  machine.Output
	}
	return &machine.Func{
		MachineName:  "leaf-elect",
		MachineClass: machine.ClassSV,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			return machine.EncodeTerm(term.Int(int64(p)))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			out := machine.Output("0")
			if x.Deg == 1 && len(inbox) == 1 && inbox[0] == machine.EncodeTerm(term.Int(1)) {
				out = "1"
			}
			return st{Deg: x.Deg, Done: true, Out: out}
		},
	}
}

// OddOdd is the Theorem 13 algorithm (class MB): broadcast the parity of
// the degree; output 1 iff an odd number of received messages indicate odd
// parity. One round.
func OddOdd(delta int) machine.Machine {
	type st struct {
		Deg  int
		Done bool
		Out  machine.Output
	}
	return &machine.Func{
		MachineName:  "odd-odd",
		MachineClass: machine.ClassMB,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, _ int) machine.Message {
			return machine.EncodeTerm(term.Int(int64(s.(st).Deg % 2)))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			odd := 0
			for _, m := range inbox {
				if m == machine.EncodeTerm(term.Int(1)) {
					odd++
				}
			}
			out := machine.Output("0")
			if odd%2 == 1 {
				out = "1"
			}
			return st{Deg: x.Deg, Done: true, Out: out}
		},
	}
}

// EvenDegree decides "my degree is even" in zero rounds (class SB).
func EvenDegree(delta int) machine.Machine {
	return &machine.Func{
		MachineName:  "even-degree",
		MachineClass: machine.ClassSB,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return deg },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			if s.(int)%2 == 0 {
				return "1", true
			}
			return "0", true
		},
		SendFunc: func(machine.State, int) machine.Message { return machine.NoMessage },
		StepFunc: func(s machine.State, _ []machine.Message) machine.State { return s },
	}
}

// LocalTypeMax is the Theorem 17 algorithm (class VV, correct assuming
// consistency — VVc): round 1 learns the local type t(v) (the far-end port
// number of each out-port); round 2 exchanges types; a node outputs 1 iff
// its type is ≥ every neighbour's type in lexicographic order.
func LocalTypeMax(delta int) machine.Machine {
	type st struct {
		Deg   int
		Round int
		Type  string // encoded local type after round 1
		Done  bool
		Out   machine.Output
	}
	encodeType := func(t []int64) string {
		kids := make([]term.Term, len(t))
		for i, x := range t {
			kids[i] = term.Int(x)
		}
		return term.Tuple(kids...).Encode()
	}
	return &machine.Func{
		MachineName:  "local-type-max",
		MachineClass: machine.ClassVV,
		MaxDeg:       delta,
		InitFunc: func(deg int) machine.State {
			s := st{Deg: deg}
			if deg == 0 {
				// Isolated node: trivially a local maximum.
				s.Done = true
				s.Out = "1"
			}
			return s
		},
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			x := s.(st)
			if x.Round == 0 {
				// Tell the far end which of our ports feeds it.
				return machine.EncodeTerm(term.Int(int64(p)))
			}
			return machine.Message(x.Type)
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			if x.Round == 0 {
				// Under a consistent numbering, the payload received at
				// in-port i is exactly t(v)_i.
				tvec := make([]int64, x.Deg)
				for i, m := range inbox {
					t, err := term.Parse(string(m))
					if err != nil {
						panic(fmt.Sprintf("algorithms: bad type message %q", m))
					}
					tvec[i] = t.IntVal()
				}
				return st{Deg: x.Deg, Round: 1, Type: encodeType(tvec)}
			}
			out := machine.Output("1")
			for _, m := range inbox {
				if compareTypes(string(m), x.Type) > 0 {
					out = "0"
					break
				}
			}
			return st{Deg: x.Deg, Round: 2, Type: x.Type, Done: true, Out: out}
		},
	}
}

// compareTypes orders encoded local types lexicographically.
func compareTypes(a, b string) int {
	ta, err := term.Parse(a)
	if err != nil {
		panic(err)
	}
	tb, err := term.Parse(b)
	if err != nil {
		panic(err)
	}
	return term.Compare(ta, tb)
}

// vcState is the VertexCover2 per-node state. Rationals are stored as
// canonical "a/b" strings so states stay plain values.
type vcState struct {
	Deg      int
	Residual string // remaining fractional capacity, 0 ≤ r ≤ 1
	Offer    string // offer broadcast this round (residual / active-degree)
	Done     bool
	Out      machine.Output
}

// VertexCover2 is a broadcast-only (class MB) deterministic vertex-cover
// algorithm with certified approximation factor 2, standing in for the
// Åstrand–Suomela MB(1) algorithm (substitution documented in DESIGN.md §6).
//
// Every unsaturated node broadcasts the offer r/d (remaining capacity over
// currently-active neighbour count, exact rational arithmetic). Each active
// edge receives min of its endpoints' offers; saturated nodes (r = 0) enter
// the cover and halt; nodes with no active neighbours left halt outside the
// cover. The increments form a fractional matching, so the saturated set is
// a vertex cover of size ≤ 2·OPT.
func VertexCover2(delta int) machine.Machine {
	return &machine.Func{
		MachineName:  "vertex-cover-2approx",
		MachineClass: machine.ClassMB,
		MaxDeg:       delta,
		InitFunc: func(deg int) machine.State {
			if deg == 0 {
				return vcState{Deg: 0, Done: true, Out: "0"}
			}
			one := big.NewRat(1, 1)
			offer := big.NewRat(1, int64(deg))
			return vcState{Deg: deg, Residual: one.RatString(), Offer: offer.RatString()}
		},
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(vcState)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, _ int) machine.Message {
			x := s.(vcState)
			return machine.Message("off:" + x.Offer)
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(vcState)
			myOffer := parseRat(x.Offer)
			residual := parseRat(x.Residual)
			active := 0
			for _, m := range inbox {
				o, ok := parseOffer(m)
				if !ok {
					continue // m0 or saturated marker: neighbour inactive
				}
				active++
				inc := o
				if myOffer.Cmp(o) < 0 {
					inc = myOffer
				}
				residual.Sub(residual, inc)
			}
			if residual.Sign() <= 0 {
				// Saturated: join the cover.
				return vcState{Deg: x.Deg, Done: true, Out: "1"}
			}
			if active == 0 {
				// No live edges left; every incident edge is covered by a
				// saturated neighbour.
				return vcState{Deg: x.Deg, Done: true, Out: "0"}
			}
			offer := new(big.Rat).Quo(residual, big.NewRat(int64(active), 1))
			return vcState{
				Deg:      x.Deg,
				Residual: residual.RatString(),
				Offer:    offer.RatString(),
			}
		},
	}
}

func parseRat(s string) *big.Rat {
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		panic(fmt.Sprintf("algorithms: bad rational %q", s))
	}
	return r
}

func parseOffer(m machine.Message) (*big.Rat, bool) {
	s := string(m)
	if !strings.HasPrefix(s, "off:") {
		return nil, false
	}
	return parseRat(strings.TrimPrefix(s, "off:")), true
}

// Registry lists every algorithm constructor by name, for the CLIs.
func Registry() map[string]func(delta int) machine.Machine {
	return map[string]func(int) machine.Machine{
		"leaf-elect":     LeafElect,
		"odd-odd":        OddOdd,
		"even-degree":    EvenDegree,
		"local-type-max": LocalTypeMax,
		"max-consensus":  MaxConsensus,
		"vertex-cover":   VertexCover2,
	}
}

// RegistryNames returns the sorted algorithm names.
func RegistryNames() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
