package algorithms

import (
	"fmt"

	"weakmodels/internal/machine"
)

// LeafProximity decides "is there a leaf (degree-1 node) within distance k
// of me?" in class SB — beeping-style flooding that needs neither port
// numbers nor multiplicities: in each round, a node that has already seen
// the leaf frontier broadcasts a beep; hearing any beep (set semantics —
// one is as good as many) joins the frontier. Exactly k rounds, so the
// family is in SB(1) for each fixed k; the corresponding ML formula is the
// k-fold diamond ⟨∗,∗⟩…⟨∗,∗⟩ q₁ (modal depth k), which the compile tests
// cross-check.
func LeafProximity(delta, k int) machine.Machine {
	type st struct {
		Seen  bool
		Round int
		Done  bool
		Out   machine.Output
	}
	beep := machine.Message("beep")
	finish := func(x st) st {
		x.Done = true
		if x.Seen {
			x.Out = "1"
		} else {
			x.Out = "0"
		}
		return x
	}
	return &machine.Func{
		MachineName:  fmt.Sprintf("leaf-proximity-%d", k),
		MachineClass: machine.ClassSB,
		MaxDeg:       delta,
		InitFunc: func(deg int) machine.State {
			x := st{Seen: deg == 1}
			if k == 0 {
				return finish(x)
			}
			return x
		},
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, _ int) machine.Message {
			if s.(st).Seen {
				return beep
			}
			return machine.NoMessage
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			for _, m := range inbox {
				if m == beep {
					x.Seen = true
				}
			}
			x.Round++
			if x.Round == k {
				return finish(x)
			}
			return x
		},
	}
}
