package algorithms

import (
	"fmt"
	"strconv"

	"weakmodels/internal/machine"
)

// LeafProximity decides "is there a leaf (degree-1 node) within distance k
// of me?" in class SB — beeping-style flooding that needs neither port
// numbers nor multiplicities: in each round, a node that has already seen
// the leaf frontier broadcasts a beep; hearing any beep (set semantics —
// one is as good as many) joins the frontier. Exactly k rounds, so the
// family is in SB(1) for each fixed k; the corresponding ML formula is the
// k-fold diamond ⟨∗,∗⟩…⟨∗,∗⟩ q₁ (modal depth k), which the compile tests
// cross-check.
func LeafProximity(delta, k int) machine.Machine {
	type st struct {
		Seen  bool
		Round int
		Done  bool
		Out   machine.Output
	}
	beep := machine.Message("beep")
	finish := func(x st) st {
		x.Done = true
		if x.Seen {
			x.Out = "1"
		} else {
			x.Out = "0"
		}
		return x
	}
	return &machine.Func{
		MachineName:  fmt.Sprintf("leaf-proximity-%d", k),
		MachineClass: machine.ClassSB,
		MaxDeg:       delta,
		InitFunc: func(deg int) machine.State {
			x := st{Seen: deg == 1}
			if k == 0 {
				return finish(x)
			}
			return x
		},
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return x.Out, x.Done
		},
		SendFunc: func(s machine.State, _ int) machine.Message {
			if s.(st).Seen {
				return beep
			}
			return machine.NoMessage
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			for _, m := range inbox {
				if m == beep {
					x.Seen = true
				}
			}
			x.Round++
			if x.Round == k {
				return finish(x)
			}
			return x
		},
	}
}

// LeafProximityStab is the self-stabilising form of LeafProximity: instead
// of counting rounds, every node repeatedly recomputes its clamped
// distance to the nearest leaf as the Bellman operator
//
//	d(v) = 0 if deg(v) = 1, else min(k+1, 1 + min over received d)
//
// and never halts. The state is the int distance in [0, k+1]; "a leaf
// within distance k" is d ≤ k. Because every step recomputes d from the
// inbox alone (the previous state is discarded), the iteration converges
// to the unique fixpoint from ANY configuration: values corrupted low by
// stale messages climb by one per hop until the k+1 clamp absorbs them,
// and a crash-reset node reboots into its initial estimate and re-converges.
// Convergence takes at most k+2 fault-free rounds, after which the async
// executor's fixpoint detection stops the run. m0 entries (omission
// faults, crashed neighbours) carry no distance and are skipped — silence
// can only raise the estimate, never corrupt it. The message alphabet is
// declared as [0, k+1] through ValidFunc, so Byzantine garbage arrives as
// m0 and an in-range lie is just another transient configuration the
// recompute-from-inbox iteration converges away from. Class MB: min is
// insensitive to message order and multiplicity.
func LeafProximityStab(delta, k int) machine.Machine {
	return &machine.Func{
		MachineName:  fmt.Sprintf("leaf-proximity-stab-%d", k),
		MachineClass: machine.ClassMB,
		MaxDeg:       delta,
		InitFunc: func(deg int) machine.State {
			if deg == 1 {
				return 0
			}
			return k + 1
		},
		HaltedFunc: func(machine.State) (machine.Output, bool) { return "", false },
		SendFunc: func(s machine.State, _ int) machine.Message {
			return machine.Message(strconv.Itoa(s.(int)))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			// Multiset semantics keeps one entry per in-port, so the inbox
			// length is the degree and identifies leaves.
			if len(inbox) == 1 {
				return 0
			}
			d := k + 1
			for _, msg := range inbox {
				if msg == machine.NoMessage {
					continue
				}
				n, err := strconv.Atoi(string(msg))
				if err != nil {
					panic(fmt.Sprintf("algorithms: bad distance message %q", msg))
				}
				if n+1 < d {
					d = n + 1
				}
			}
			return d
		},
		ValidFunc: boundedIntMessage(k + 1),
	}
}
