package algorithms

import (
	"fmt"
	"strconv"

	"weakmodels/internal/machine"
)

// boundedIntMessage is the MessageGuard predicate of the integer gossips:
// it accepts exactly the decimal encodings of integers in [0, hi]. Under a
// Byzantine fault plan the engine then delivers out-of-alphabet garbage as
// m0 (which the Step functions already skip), and rejects
// in-alphabet-but-out-of-range lies — essential for monotone aggregates
// like max, where a single value above the true maximum would poison the
// configuration forever.
func boundedIntMessage(hi int) func(machine.Message) bool {
	return func(m machine.Message) bool {
		n, err := strconv.Atoi(string(m))
		return err == nil && n >= 0 && n <= hi
	}
}

// MaxDegreeWithin computes, at every node, the maximum degree occurring
// within distance k — a semilattice gossip that works in class MB: max is
// insensitive to both message order and multiplicity (it would even be an
// SB algorithm, but we declare MB to exercise the multiset path; the
// invariance checker verifies it either way). Exactly k rounds.
func MaxDegreeWithin(delta, k int) machine.Machine {
	type st struct {
		Best  int
		Round int
		Done  bool
	}
	return &machine.Func{
		MachineName:  fmt.Sprintf("max-degree-within-%d", k),
		MachineClass: machine.ClassMB,
		MaxDeg:       delta,
		InitFunc: func(deg int) machine.State {
			return st{Best: deg, Done: k == 0}
		},
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return machine.Output(strconv.Itoa(x.Best)), x.Done
		},
		SendFunc: func(s machine.State, _ int) machine.Message {
			return machine.Message(strconv.Itoa(s.(st).Best))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			for _, m := range inbox {
				if m == machine.NoMessage {
					continue
				}
				n, err := strconv.Atoi(string(m))
				if err != nil {
					panic(fmt.Sprintf("algorithms: bad gossip message %q", m))
				}
				if n > x.Best {
					x.Best = n
				}
			}
			x.Round++
			x.Done = x.Round >= k
			return x
		},
		ValidFunc: boundedIntMessage(delta),
	}
}

// MaxConsensus broadcasts the largest value seen so far, seeded with the
// node degree. It never halts: on a connected graph it stabilises at the
// global maximum after diameter-many rounds, making it the canonical
// workload for the async executor's fixpoint detection (the synchronous
// executors can only give up at the round budget). Deliberately not in the
// Registry, whose machines all halt.
//
// It is also the canonical gossip of the self-stabilisation harness: max
// is a semilattice join, so omitted (m0) and duplicated messages only
// delay information, and a crash-reset node reboots into its degree —
// restoring its own contribution to the maximum — and re-learns the rest
// from neighbours that never stop broadcasting. m0 entries are skipped:
// under fault plans (and next to crashed neighbours) silence is a valid
// inbox entry. The message alphabet is declared as [0, Δ] through
// ValidFunc: corrupted payloads outside it arrive as m0, and since every
// legitimate value is ≤ Δ — the global maximum itself — an in-range lie
// is washed out by the monotone convergence to Δ.
func MaxConsensus(delta int) machine.Machine {
	return &machine.Func{
		MachineName:  "max-consensus",
		MachineClass: machine.ClassMB,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return deg },
		HaltedFunc:   func(machine.State) (machine.Output, bool) { return "", false },
		SendFunc: func(s machine.State, _ int) machine.Message {
			return machine.Message(strconv.Itoa(s.(int)))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			best := s.(int)
			for _, msg := range inbox {
				if msg == machine.NoMessage {
					continue
				}
				v, err := strconv.Atoi(string(msg))
				if err != nil {
					panic(err)
				}
				if v > best {
					best = v
				}
			}
			return best
		},
		ValidFunc: boundedIntMessage(delta),
	}
}
