package algorithms

import (
	"math/rand"
	"testing"

	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/problems"
)

func TestMaxDegreeWithinSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(170))
	graphs := []*graph.Graph{
		graph.Path(7), graph.Star(4), graph.Caterpillar(4, 2),
		graph.Petersen(), graph.Figure1Graph(),
		graph.DisjointUnion(graph.Star(5), graph.Cycle(4)),
	}
	for k := 0; k <= 3; k++ {
		problem := problems.MaxDegreeWithin{K: k}
		for _, g := range graphs {
			m := MaxDegreeWithin(g.MaxDegree(), k)
			for trial := 0; trial < 3; trial++ {
				res, err := engine.Run(m, port.Random(g, rng), engine.Options{})
				if err != nil {
					t.Fatalf("k=%d %v: %v", k, g, err)
				}
				if err := problem.Validate(g, res.Output); err != nil {
					t.Fatalf("k=%d %v: %v", k, g, err)
				}
				if res.Rounds != k {
					t.Errorf("k=%d: ran %d rounds", k, res.Rounds)
				}
			}
		}
	}
}

func TestMaxDegreeWithinInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	m := MaxDegreeWithin(3, 2)
	if err := machine.CheckStepInvariance(m, m.Init(3), []machine.Message{"3", "1", "3"}, rng); err != nil {
		t.Error(err)
	}
	if err := machine.CheckSendInvariance(m, []machine.State{m.Init(2)}, 3); err != nil {
		t.Error(err)
	}
}

func TestMaxDegreeWithinValidatorRejects(t *testing.T) {
	g := graph.Star(3)
	problem := problems.MaxDegreeWithin{K: 1}
	bad := []machine.Output{"3", "3", "3", "junk"}
	if err := problem.Validate(g, bad); err == nil {
		t.Error("junk output accepted")
	}
	wrong := []machine.Output{"3", "3", "3", "1"}
	if err := problem.Validate(g, wrong); err == nil {
		t.Error("wrong maximum accepted")
	}
}
