package machine

// Local inputs (paper §3.4): structures (V, E, f) where each node starts
// with a local input f(u) in addition to its degree. The classification of
// the paper extends immediately to this setting; the library supports it
// through an optional interface so that unlabelled machines stay unchanged.

// InputAware is implemented by machines whose initial state depends on a
// local input (the function f of §3.4). The engine calls InitWithInput
// instead of Init when the run carries inputs.
type InputAware interface {
	Machine
	// InitWithInput returns z0(deg, input).
	InitWithInput(deg int, input string) State
}

// InputFunc wraps Func with an input-dependent initialiser.
type InputFunc struct {
	Func
	InitInputFunc func(deg int, input string) State
}

var _ InputAware = (*InputFunc)(nil)

// InitWithInput implements InputAware.
func (f *InputFunc) InitWithInput(deg int, input string) State {
	return f.InitInputFunc(deg, input)
}

// DegreeOblivious reports whether the machine declares itself degree-
// oblivious (the class SBo of Remark 2: a constant initialisation z0).
// Machines advertise it via the optional interface below.
func DegreeOblivious(m Machine) bool {
	d, ok := m.(interface{ DegreeOblivious() bool })
	return ok && d.DegreeOblivious()
}

// ObliviousFunc is a Func whose Init ignores the degree, for Remark 2
// experiments. Construct with a plain state constant.
type ObliviousFunc struct {
	Func
}

// DegreeOblivious marks the machine as SBo-style.
func (*ObliviousFunc) DegreeOblivious() bool { return true }
