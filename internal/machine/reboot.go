package machine

// Rebooter is optionally implemented by machines whose post-recovery state
// differs from the initial state z0 — machines modelling stable storage
// that survives a reboot. When the fault subsystem revives a crashed node
// with a reset recovery, the engine uses RebootState when the machine
// provides it and falls back to the plain initial state otherwise, so by
// default a reset is the transient memory-loss fault of the
// self-stabilisation literature.
type Rebooter interface {
	// RebootState returns the state a node of the given degree reboots
	// into, given the state it crashed in. It must return a valid machine
	// state; returning crashed unchanged models fully persistent storage.
	RebootState(deg int, crashed State) State
}

// Reboot resolves the post-recovery state of a node of machine m: the
// machine's own RebootState when it is a Rebooter, else fresh — the
// caller-supplied initial state z0(deg) (which honours local inputs).
func Reboot(m Machine, deg int, crashed, fresh State) State {
	if r, ok := m.(Rebooter); ok {
		return r.RebootState(deg, crashed)
	}
	return fresh
}
