// Package machine defines the distributed state machines of Section 1.1 —
// the tuple A = (Y, Z, z0, M, m0, μ, δ) — and the algorithm classes of
// Section 1.5: Vector, Multiset and Set receive modes crossed with per-port
// and Broadcast send modes, plus the seven problem-class identifiers of
// Section 1.6 with the stratum order proved in Section 5.
package machine

import (
	"fmt"
	"slices"

	"weakmodels/internal/term"
)

// Message is a single message. Messages are canonical term encodings
// (see internal/term) so that multiset/set semantics and the fixed total
// order <M of Theorem 8 are well defined. The empty string is m0.
type Message = string

// NoMessage is m0, the "no message" symbol. Halted nodes send it forever.
const NoMessage Message = ""

// Output is a local output value from the finite output set Y.
type Output = string

// RecvMode says how a machine observes its inbox (Figure 3).
type RecvMode int

// Receive modes, weakest information last.
const (
	RecvVector   RecvMode = iota + 1 // full vector indexed by in-port
	RecvMultiset                     // multiset: no in-port numbers
	RecvSet                          // set: no in-ports, no multiplicities
)

// String returns the paper's name for the mode.
func (r RecvMode) String() string {
	switch r {
	case RecvVector:
		return "Vector"
	case RecvMultiset:
		return "Multiset"
	case RecvSet:
		return "Set"
	default:
		return fmt.Sprintf("RecvMode(%d)", int(r))
	}
}

// SendMode says how a machine emits messages (Figure 4).
type SendMode int

// Send modes.
const (
	SendVector    SendMode = iota + 1 // distinct message per out-port
	SendBroadcast                     // same message to every out-port
)

// String returns the paper's name for the mode.
func (s SendMode) String() string {
	switch s {
	case SendVector:
		return "Vector"
	case SendBroadcast:
		return "Broadcast"
	default:
		return fmt.Sprintf("SendMode(%d)", int(s))
	}
}

// Class is an algorithm class: a receive mode crossed with a send mode.
// Vector = {RecvVector, SendVector}, Multiset = {RecvMultiset, SendVector},
// Set = {RecvSet, SendVector}, Broadcast = {RecvVector, SendBroadcast}, etc.
type Class struct {
	Recv RecvMode
	Send SendMode
}

// The six algorithm classes of Section 1.5/1.6 (VVc shares the Vector class
// and differs only in the consistency promise, which is a property of the
// run, not of the machine).
var (
	ClassVV = Class{Recv: RecvVector, Send: SendVector}
	ClassMV = Class{Recv: RecvMultiset, Send: SendVector}
	ClassSV = Class{Recv: RecvSet, Send: SendVector}
	ClassVB = Class{Recv: RecvVector, Send: SendBroadcast}
	ClassMB = Class{Recv: RecvMultiset, Send: SendBroadcast}
	ClassSB = Class{Recv: RecvSet, Send: SendBroadcast}
)

// String returns e.g. "Set∩Broadcast" or "Vector".
func (c Class) String() string {
	switch c {
	case ClassVV:
		return "Vector"
	case ClassMV:
		return "Multiset"
	case ClassSV:
		return "Set"
	case ClassVB:
		return "Broadcast"
	case ClassMB:
		return "Multiset∩Broadcast"
	case ClassSB:
		return "Set∩Broadcast"
	default:
		return fmt.Sprintf("{%v,%v}", c.Recv, c.Send)
	}
}

// AtLeastAsStrongAs reports whether class c has at least the information of
// class d (the trivial containments of Figure 5a: a machine of a weaker
// class is also a machine of every stronger class).
func (c Class) AtLeastAsStrongAs(d Class) bool {
	return c.Recv <= d.Recv && c.Send <= d.Send
}

// State is an opaque node state. Machines define their own state types;
// the engine only moves states around.
type State any

// Machine is a distributed state machine A = (Y, Z, z0, M, m0, μ, δ) for the
// graph family F(Δ).
//
// The engine (internal/engine) enforces class semantics structurally:
//
//   - RecvMultiset machines receive their inbox sorted into canonical order;
//   - RecvSet machines receive it sorted and deduplicated;
//   - SendBroadcast machines are asked for one message (port 1) per round
//     and that message is replicated to every port.
//
// A machine therefore physically cannot observe information its class
// forbids. Step must be a pure function of (state, inbox); Send must be a
// pure function of (state, port).
type Machine interface {
	// Name identifies the algorithm in logs and registries.
	Name() string
	// Class declares the receive/send modes.
	Class() Class
	// Delta returns the Δ this member of the family (A_1, A_2, ...) is
	// built for; the engine rejects graphs of larger maximum degree.
	Delta() int
	// Init returns z0(deg), the initial state of a node of the given degree.
	Init(deg int) State
	// Halted reports whether s is a stopping state y ∈ Y and, if so, its
	// output.
	Halted(s State) (Output, bool)
	// Send returns μ(s, port), the message sent to the 1-based out-port.
	// It is not called on halted states (halted nodes send NoMessage).
	Send(s State, port int) Message
	// Step returns δ(s, inbox). The inbox has exactly deg entries, already
	// canonicalised for the machine's receive mode. It is not called on
	// halted states.
	Step(s State, inbox []Message) State
}

// CanonicalInbox rewrites a raw in-port-ordered inbox into the view the
// receive mode allows: Vector passes through, Multiset sorts, Set sorts and
// deduplicates. The result is a fresh slice for the weaker modes.
func CanonicalInbox(mode RecvMode, inbox []Message) []Message {
	return CanonicalInboxInto(mode, inbox, nil)
}

// CanonicalInboxInto is the allocation-free form of CanonicalInbox: for the
// Multiset and Set modes it canonicalises into scratch (reallocating only
// when cap(scratch) < len(inbox)) and returns the canonical view, which
// aliases scratch; Vector returns inbox unchanged. The engine calls this
// with a per-worker scratch buffer sized to the maximum degree, so steady
// rounds perform no allocation. The inbox itself is never mutated. Machines
// must not retain the returned slice across Step calls (the Machine
// contract already requires Step to be pure).
//
//weakvet:noalloc
func CanonicalInboxInto(mode RecvMode, inbox, scratch []Message) []Message {
	switch mode {
	case RecvVector:
		return inbox
	case RecvMultiset:
		out := append(scratch[:0], inbox...)
		sortMessages(out)
		return out
	case RecvSet:
		out := append(scratch[:0], inbox...)
		sortMessages(out)
		dedup := out[:0]
		for i, m := range out {
			if i == 0 || m != out[i-1] {
				dedup = append(dedup, m)
			}
		}
		return dedup
	default:
		panic(fmt.Sprintf("machine: unknown receive mode %v", mode))
	}
}

// insertionSortCutoff is the inbox length above which sortMessages switches
// from insertion sort to slices.Sort. The inboxes of bounded-degree graphs
// are almost always tiny, where the branch-light O(d²) insertion sort wins;
// high-degree nodes (stars, complete graphs) fall through to pdqsort.
const insertionSortCutoff = 16

// sortMessages sorts by the canonical term order where both messages parse
// as terms, falling back to plain string order (the encodings are designed
// so both orders are total; string order suffices for canonical grouping,
// but term order matches <M in the paper's constructions).
func sortMessages(ms []Message) {
	// Message encodings compare consistently as strings for equality
	// grouping; the simulations that need the exact term order <M sort
	// decoded terms themselves. Keep this simple and total.
	if len(ms) > insertionSortCutoff {
		slices.Sort(ms)
		return
	}
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j] < ms[j-1]; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// EncodeTerm converts a term into a Message.
func EncodeTerm(t term.Term) Message { return t.Encode() }

// EncodeTermStrings encodes a tuple of strings, a convenience for history
// messages and tests.
func EncodeTermStrings(ss ...string) Message {
	kids := make([]term.Term, len(ss))
	for i, s := range ss {
		kids[i] = term.Str(s)
	}
	return EncodeTerm(term.Tuple(kids...))
}

// DecodeTerm parses a Message back into a term; NoMessage decodes to the
// distinguished atom Str("m0").
func DecodeTerm(m Message) (term.Term, error) {
	if m == NoMessage {
		return term.Str("m0"), nil
	}
	return term.Parse(m)
}
