package machine

// alloc_drivers_test.go backs the generated TestWeakvetAllocPins (see
// zz_generated_weakvet_alloc_test.go): the driver exercises every
// receive mode of CanonicalInboxInto with a scratch buffer of
// sufficient capacity — the contract under which the function promises
// zero allocations. The inbox is longer than insertionSortCutoff so the
// slices.Sort path is measured too.

import "fmt"

var weakvetAllocDrivers = map[string]func() func(){
	"CanonicalInboxInto": func() func() {
		inbox := make([]Message, insertionSortCutoff+8)
		for i := range inbox {
			inbox[i] = fmt.Sprintf("m%02d", (i*7)%len(inbox))
		}
		scratch := make([]Message, 0, len(inbox))
		return func() {
			CanonicalInboxInto(RecvVector, inbox, scratch)
			CanonicalInboxInto(RecvMultiset, inbox, scratch)
			CanonicalInboxInto(RecvSet, inbox, scratch)
		}
	},
}
