package machine

import "testing"

// proberFunc adapts a plain Func with a custom state-equality notion.
type proberFunc struct {
	*Func
	equal func(a, b State) bool
}

func (p *proberFunc) StatesEqual(a, b State) bool { return p.equal(a, b) }

func TestStatesEqualDefaultsToDeepEqual(t *testing.T) {
	m := &Func{MachineName: "plain"}
	type st struct {
		X    int
		Tags []string
	}
	if !StatesEqual(m, st{1, []string{"a"}}, st{1, []string{"a"}}) {
		t.Error("deeply equal states reported unequal")
	}
	if StatesEqual(m, st{1, nil}, st{2, nil}) {
		t.Error("different states reported equal")
	}
}

func TestStatesEqualUsesProber(t *testing.T) {
	// A prober that ignores a bookkeeping field.
	type st struct{ X, Gen int }
	m := &proberFunc{
		Func:  &Func{MachineName: "probed"},
		equal: func(a, b State) bool { return a.(st).X == b.(st).X },
	}
	if !StatesEqual(m, st{X: 3, Gen: 1}, st{X: 3, Gen: 9}) {
		t.Error("prober was not consulted")
	}
	if StatesEqual(m, st{X: 3}, st{X: 4}) {
		t.Error("prober result ignored")
	}
}
