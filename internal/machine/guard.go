package machine

// MessageGuard is the optional Machine extension for corruption-tolerant
// canonicalisation. A machine's message alphabet M is usually a thin
// subset of all strings, and the concrete algorithms here decode messages
// with panics on malformed input — correct under the synchronous
// semantics, where only μ-produced payloads exist, but fatal under a
// Byzantine fault plan that rewrites payloads in flight. ValidMessage
// reports whether m is a payload the machine could legitimately receive
// (m ∈ M); the engine consults it only when a corrupting plan runs,
// replacing every invalid inbox entry with m0 before canonicalisation —
// the receiver treats unparseable garbage exactly like silence, the same
// degradation an omission fault produces. Machines that bound their
// alphabet semantically (e.g. gossip values within [0, Δ]) also use the
// guard to reject in-alphabet-but-out-of-range lies that a monotone
// aggregate could never recover from.
type MessageGuard interface {
	// ValidMessage reports whether m is in the machine's message alphabet.
	// It is never called with m0 (silence is always legitimate) and must be
	// a pure function of m.
	ValidMessage(m Message) bool
}

// GuardInbox rewrites inbox in place, replacing every message the guard
// rejects with m0. m0 entries are kept as is.
func GuardInbox(g MessageGuard, inbox []Message) {
	for i, m := range inbox {
		if m != NoMessage && !g.ValidMessage(m) {
			inbox[i] = NoMessage
		}
	}
}
