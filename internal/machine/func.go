package machine

import (
	"fmt"
	"math/rand"
)

// Func is a Machine built from closures — the convenient way to define the
// paper's concrete algorithms. Zero fields panic helpfully on first use.
type Func struct {
	MachineName  string
	MachineClass Class
	MaxDeg       int
	InitFunc     func(deg int) State
	HaltedFunc   func(s State) (Output, bool)
	SendFunc     func(s State, port int) Message
	StepFunc     func(s State, inbox []Message) State
	// ValidFunc, when set, bounds the machine's message alphabet for the
	// MessageGuard extension: under a corrupting fault plan the engine
	// replaces inbox entries it rejects with m0. Nil accepts every payload.
	ValidFunc func(m Message) bool
}

var (
	_ Machine      = (*Func)(nil)
	_ MessageGuard = (*Func)(nil)
)

// Name implements Machine.
func (f *Func) Name() string {
	if f.MachineName == "" {
		return "anonymous"
	}
	return f.MachineName
}

// Class implements Machine.
func (f *Func) Class() Class { return f.MachineClass }

// Delta implements Machine.
func (f *Func) Delta() int { return f.MaxDeg }

// Init implements Machine.
func (f *Func) Init(deg int) State { return f.InitFunc(deg) }

// Halted implements Machine.
func (f *Func) Halted(s State) (Output, bool) { return f.HaltedFunc(s) }

// Send implements Machine.
func (f *Func) Send(s State, port int) Message { return f.SendFunc(s, port) }

// Step implements Machine.
func (f *Func) Step(s State, inbox []Message) State { return f.StepFunc(s, inbox) }

// ValidMessage implements MessageGuard; a nil ValidFunc accepts everything.
func (f *Func) ValidMessage(m Message) bool {
	return f.ValidFunc == nil || f.ValidFunc(m)
}

// CheckSendInvariance verifies that a machine declaring SendBroadcast really
// sends the same message on every port, by probing the given states across
// all ports up to deg. Hand-written machines are validated with this in
// tests; the engine additionally enforces broadcast structurally.
func CheckSendInvariance(m Machine, states []State, deg int) error {
	if m.Class().Send != SendBroadcast {
		return nil
	}
	for _, s := range states {
		if _, stopped := m.Halted(s); stopped {
			continue
		}
		first := m.Send(s, 1)
		for p := 2; p <= deg; p++ {
			if got := m.Send(s, p); got != first {
				return fmt.Errorf("machine %q: broadcast machine sends %q on port 1 but %q on port %d",
					m.Name(), first, got, p)
			}
		}
	}
	return nil
}

// CheckStepInvariance verifies the defining invariance property of the
// declared receive mode (Section 1.5): a Multiset machine must be invariant
// under permutations of the inbox, a Set machine additionally under changes
// of multiplicity. It fuzzes permutations/duplications of the given inboxes
// with rng and compares resulting states by fmt.Sprintf("%#v", ·), which is
// sound for the struct/value states used across this library.
func CheckStepInvariance(m Machine, s State, inbox []Message, rng *rand.Rand) error {
	if _, stopped := m.Halted(s); stopped {
		return nil
	}
	mode := m.Class().Recv
	if mode == RecvVector {
		return nil
	}
	base := m.Step(s, CanonicalInbox(mode, inbox))
	baseRepr := fmt.Sprintf("%#v", base)
	for trial := 0; trial < 8; trial++ {
		variant := append([]Message(nil), inbox...)
		rng.Shuffle(len(variant), func(i, j int) { variant[i], variant[j] = variant[j], variant[i] })
		if mode == RecvSet && len(variant) > 0 {
			// Duplicate a random element over another: same set, different
			// multiset, provided we do not erase the last copy of a value.
			i, j := rng.Intn(len(variant)), rng.Intn(len(variant))
			if countOf(variant, variant[j]) > 1 {
				variant[j] = variant[i]
			}
		}
		got := m.Step(s, CanonicalInbox(mode, variant))
		if repr := fmt.Sprintf("%#v", got); repr != baseRepr {
			return fmt.Errorf("machine %q: %v machine distinguishes equivalent inboxes %v vs %v",
				m.Name(), mode, inbox, variant)
		}
	}
	return nil
}

func countOf(ms []Message, m Message) int {
	c := 0
	for _, x := range ms {
		if x == m {
			c++
		}
	}
	return c
}
