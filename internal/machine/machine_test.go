package machine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"weakmodels/internal/term"
)

func TestRecvModeNames(t *testing.T) {
	if RecvVector.String() != "Vector" || RecvMultiset.String() != "Multiset" ||
		RecvSet.String() != "Set" {
		t.Error("receive mode names wrong")
	}
	if SendVector.String() != "Vector" || SendBroadcast.String() != "Broadcast" {
		t.Error("send mode names wrong")
	}
	if RecvMode(9).String() == "" || SendMode(9).String() == "" {
		t.Error("unknown modes should still format")
	}
}

func TestClassNames(t *testing.T) {
	want := map[Class]string{
		ClassVV: "Vector",
		ClassMV: "Multiset",
		ClassSV: "Set",
		ClassVB: "Broadcast",
		ClassMB: "Multiset∩Broadcast",
		ClassSB: "Set∩Broadcast",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%#v.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestClassStrength(t *testing.T) {
	// Figure 5a: SB ⊆ MB ⊆ VB ⊆ VV, SB ⊆ SV ⊆ MV ⊆ VV, MB ⊆ MV, SB ⊆ SV.
	stronger := []struct{ hi, lo Class }{
		{ClassVV, ClassMV}, {ClassMV, ClassSV}, {ClassVV, ClassVB},
		{ClassVB, ClassMB}, {ClassMB, ClassSB}, {ClassMV, ClassMB},
		{ClassSV, ClassSB}, {ClassVV, ClassSB},
	}
	for _, p := range stronger {
		if !p.hi.AtLeastAsStrongAs(p.lo) {
			t.Errorf("%v should be at least as strong as %v", p.hi, p.lo)
		}
	}
	if ClassVB.AtLeastAsStrongAs(ClassSV) || ClassSV.AtLeastAsStrongAs(ClassVB) {
		t.Error("VB and SV are incomparable as machine classes (Figure 5a)")
	}
}

func TestCanonicalInbox(t *testing.T) {
	in := []Message{"c", "a", "b", "a"}
	if got := CanonicalInbox(RecvVector, in); !reflect.DeepEqual(got, in) {
		t.Errorf("vector view changed inbox: %v", got)
	}
	if got := CanonicalInbox(RecvMultiset, in); !reflect.DeepEqual(got, []Message{"a", "a", "b", "c"}) {
		t.Errorf("multiset view = %v", got)
	}
	if got := CanonicalInbox(RecvSet, in); !reflect.DeepEqual(got, []Message{"a", "b", "c"}) {
		t.Errorf("set view = %v", got)
	}
	// Originals untouched by weaker modes.
	if !reflect.DeepEqual(in, []Message{"c", "a", "b", "a"}) {
		t.Error("CanonicalInbox mutated its input")
	}
}

func TestCanonicalInboxInto(t *testing.T) {
	in := []Message{"c", "a", "b", "a"}
	scratch := make([]Message, 0, 8)

	if got := CanonicalInboxInto(RecvVector, in, scratch); &got[0] != &in[0] {
		t.Error("vector view must alias the inbox")
	}
	got := CanonicalInboxInto(RecvMultiset, in, scratch)
	if !reflect.DeepEqual(got, []Message{"a", "a", "b", "c"}) {
		t.Errorf("multiset view = %v", got)
	}
	if &got[0] != &scratch[:1][0] {
		t.Error("multiset view must reuse the scratch buffer")
	}
	got = CanonicalInboxInto(RecvSet, in, scratch)
	if !reflect.DeepEqual(got, []Message{"a", "b", "c"}) {
		t.Errorf("set view = %v", got)
	}
	if !reflect.DeepEqual(in, []Message{"c", "a", "b", "a"}) {
		t.Error("CanonicalInboxInto mutated its input")
	}
	// Undersized (including nil) scratch still yields correct results.
	if got := CanonicalInboxInto(RecvSet, in, make([]Message, 0, 1)); !reflect.DeepEqual(got, []Message{"a", "b", "c"}) {
		t.Errorf("set view with tiny scratch = %v", got)
	}
	if got := CanonicalInboxInto(RecvMultiset, in, nil); !reflect.DeepEqual(got, []Message{"a", "a", "b", "c"}) {
		t.Errorf("multiset view with nil scratch = %v", got)
	}
}

// TestSortMessagesLarge exercises the slices.Sort path above the insertion
// sort cutoff against the same inputs in reverse order.
func TestSortMessagesLarge(t *testing.T) {
	n := insertionSortCutoff * 3
	in := make([]Message, n)
	for i := range in {
		in[i] = fmt.Sprintf("m%03d", (n-i)%7)
	}
	got := CanonicalInbox(RecvMultiset, in)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("not sorted at %d: %v", i, got)
		}
	}
	set := CanonicalInbox(RecvSet, in)
	if len(set) != 7 {
		t.Fatalf("set view has %d elements, want 7: %v", len(set), set)
	}
}

func TestEncodeDecodeTerm(t *testing.T) {
	tm := term.Tuple(term.Int(3), term.Str("x"))
	msg := EncodeTerm(tm)
	back, err := DecodeTerm(msg)
	if err != nil || !term.Equal(tm, back) {
		t.Errorf("round trip failed: %v %v", back, err)
	}
	m0, err := DecodeTerm(NoMessage)
	if err != nil || m0.StrVal() != "m0" {
		t.Errorf("NoMessage should decode to atom m0, got %v %v", m0, err)
	}
}

func testFunc(class Class, step func(s State, inbox []Message) State) *Func {
	return &Func{
		MachineName:  "t",
		MachineClass: class,
		MaxDeg:       3,
		InitFunc:     func(deg int) State { return 0 },
		HaltedFunc:   func(s State) (Output, bool) { return "", false },
		SendFunc:     func(s State, p int) Message { return "m" },
		StepFunc:     step,
	}
}

func TestCheckStepInvarianceCatchesCheater(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	// A "Multiset" machine that actually depends on inbox order would be
	// caught if the engine did not canonicalise; since CanonicalInbox sorts
	// first, order dependence is unobservable — which is the enforcement
	// property itself. A Set machine that counts multiplicities IS
	// observable and must be caught.
	cheater := testFunc(ClassSV, func(s State, inbox []Message) State {
		return len(inbox) // sees multiplicity through length after dedup? No: dedup hides it.
	})
	// After dedup the length is the set size, so this is legitimate.
	if err := CheckStepInvariance(cheater, 0, []Message{"a", "a", "b"}, rng); err != nil {
		t.Errorf("set-size machine flagged: %v", err)
	}
}

func TestCheckSendInvariance(t *testing.T) {
	good := testFunc(ClassMB, nil)
	if err := CheckSendInvariance(good, []State{0}, 3); err != nil {
		t.Errorf("constant sender flagged: %v", err)
	}
	bad := &Func{
		MachineName:  "bad",
		MachineClass: ClassMB,
		MaxDeg:       3,
		InitFunc:     func(deg int) State { return 0 },
		HaltedFunc:   func(s State) (Output, bool) { return "", false },
		SendFunc: func(s State, p int) Message {
			if p == 2 {
				return "x"
			}
			return "m"
		},
	}
	if err := CheckSendInvariance(bad, []State{0}, 3); err == nil {
		t.Error("port-dependent broadcast sender not flagged")
	}
	vec := testFunc(ClassVV, nil)
	if err := CheckSendInvariance(vec, []State{0}, 3); err != nil {
		t.Errorf("vector machine should be exempt: %v", err)
	}
}

func TestFuncDefaults(t *testing.T) {
	f := &Func{}
	if f.Name() != "anonymous" {
		t.Errorf("Name = %q", f.Name())
	}
}

// rebootProbe is a minimal Rebooter: the reboot state tags the crashed
// state so the test can see which path Reboot took.
type rebootProbe struct{ Machine }

func (rebootProbe) RebootState(deg int, crashed State) State {
	return crashed.(int) + 1000
}

// TestReboot: machines without a Rebooter reset to the fresh initial
// state; machines with one keep control of their reboot state.
func TestReboot(t *testing.T) {
	plain := &Func{
		MachineName:  "plain",
		MachineClass: ClassSB,
		MaxDeg:       2,
		InitFunc:     func(int) State { return 0 },
		HaltedFunc:   func(State) (Output, bool) { return "", false },
		SendFunc:     func(State, int) Message { return NoMessage },
		StepFunc:     func(s State, _ []Message) State { return s },
	}
	if got := Reboot(plain, 2, 7, 0); got != 0 {
		t.Errorf("Reboot(plain) = %v, want the fresh state 0", got)
	}
	if got := Reboot(rebootProbe{plain}, 2, 7, 0); got != 1007 {
		t.Errorf("Reboot(rebooter) = %v, want 1007 (stable storage)", got)
	}
}
