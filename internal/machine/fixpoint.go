package machine

import "reflect"

// FixpointProber is optionally implemented by machines whose states should
// be compared semantically during fixpoint probing — e.g. states carrying
// caches or generation counters that do not affect δ, μ or halting. The
// async executor uses state equality to detect a global fixpoint (a
// configuration no future step can change) in runs that stabilise without
// halting, the situation the modal μ-fragment characterisation of
// asynchronous automata is about.
type FixpointProber interface {
	// StatesEqual reports whether a and b are equivalent states: equal
	// states must halt identically and produce equal messages and equal
	// successor states on equal inboxes.
	StatesEqual(a, b State) bool
}

// StatesEqual compares two states of m for fixpoint probing, using the
// machine's own FixpointProber when it provides one and structural equality
// otherwise. Structural equality is sound for every machine in this
// library: states are plain value structs, and δ is a pure function, so
// deeply equal states share their entire future.
func StatesEqual(m Machine, a, b State) bool {
	if p, ok := m.(FixpointProber); ok {
		return p.StatesEqual(a, b)
	}
	return reflect.DeepEqual(a, b)
}
