// Package simulate implements the collapse theorems of Section 5 as generic
// machine wrappers:
//
//   - Theorem 4 — SetFromMultiset: a Set-receive machine simulating any
//     Multiset-receive machine after a 2Δ-round warm-up that computes the
//     β_t/B_t "view" sequences; after warm-up, every message is tagged with
//     (β_{2Δ}(u), deg(u), out-port), which Lemma 6 proves distinct across a
//     node's neighbours, so the receiver can reconstruct the multiset from
//     the set. Overhead: T + 2Δ rounds.
//
//   - Theorem 8 — MultisetFromVector: a Multiset-receive machine simulating
//     any Vector-receive machine with zero round overhead by augmenting
//     every message with its full history and sorting histories
//     lexicographically into stable virtual in-ports (the port numbering
//     p ∈ P_T of the proof).
//
//   - Theorem 9 — the same history construction for Broadcast machines:
//     MB simulates VB.
package simulate

import (
	"fmt"
	"sort"

	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/term"
)

// t4State is the Theorem 4 wrapper state. All fields are exported plain
// values so states render deterministically (FormulaFromMachine contract).
type t4State struct {
	Deg   int
	Round int // completed wrapper rounds
	// Beta is the encoded β_Round(v); BSet is the sorted encoded B_Round(v).
	Beta string
	BSet []string
	// Inner is live after warm-up.
	Inner machine.State
	Done  bool
	Out   machine.Output
}

// setFromMultiset wraps a Multiset machine into a Set machine.
type setFromMultiset struct {
	inner  machine.Machine
	warmup int // 2Δ
}

var _ machine.Machine = (*setFromMultiset)(nil)

// SetFromMultiset returns a machine in Set (receive) × the inner machine's
// send mode that simulates inner per Theorem 4. The inner machine must be
// Multiset-receive (a Set-receive inner is also fine — Set ⊆ Multiset).
func SetFromMultiset(inner machine.Machine) (machine.Machine, error) {
	if inner.Class().Recv == machine.RecvVector {
		return nil, fmt.Errorf("simulate: Theorem 4 needs a Multiset machine, got %v (compose with MultisetFromVector first)",
			inner.Class())
	}
	return &setFromMultiset{inner: inner, warmup: 2 * inner.Delta()}, nil
}

func (s *setFromMultiset) Name() string {
	return fmt.Sprintf("thm4[%s]", s.inner.Name())
}

// Class is Set receive × Vector send: even for a Broadcast inner machine
// the wrapper's messages carry the out-port number (the i in the tags
// (β_t, deg, i)), which is what makes the multiset reconstruction possible.
// This matches the theory: Theorem 4 proves MV ⊆ SV, and no analogous
// collapse of MB into SB exists (Theorem 13 separates them).
func (s *setFromMultiset) Class() machine.Class {
	return machine.Class{Recv: machine.RecvSet, Send: machine.SendVector}
}

func (s *setFromMultiset) Delta() int { return s.inner.Delta() }

func (s *setFromMultiset) Init(deg int) machine.State {
	st := t4State{Deg: deg, Beta: emptyBeta()}
	if s.warmup == 0 {
		return s.enterInner(st)
	}
	return st
}

func emptyBeta() string {
	// β_0 = ∅ represented as the empty tuple.
	return term.Tuple().Encode()
}

// enterInner transitions the wrapper into the simulation phase.
func (s *setFromMultiset) enterInner(st t4State) machine.State {
	st.Inner = s.inner.Init(st.Deg)
	if out, ok := s.inner.Halted(st.Inner); ok {
		st.Done = true
		st.Out = out
	}
	return st
}

func (s *setFromMultiset) Halted(state machine.State) (machine.Output, bool) {
	st := state.(t4State)
	return st.Out, st.Done
}

// betaNext computes β_{t} = (β_{t-1}, B_{t-1}) as an encoded term.
func betaNext(st t4State) term.Term {
	bkids := make([]term.Term, 0, len(st.BSet))
	for _, b := range st.BSet {
		bkids = append(bkids, term.MustParse(b))
	}
	return term.Tuple(term.MustParse(st.Beta), term.Set(bkids...))
}

func (s *setFromMultiset) Send(state machine.State, port int) machine.Message {
	st := state.(t4State)
	if st.Round < s.warmup {
		// Warm-up round st.Round+1: send (β_{t}, deg, i).
		msg := term.Tuple(betaNext(st), term.Int(int64(st.Deg)), term.Int(int64(port)))
		return machine.EncodeTerm(msg)
	}
	// Simulation phase: tag the inner message.
	innerMsg := s.inner.Send(st.Inner, port)
	msg := term.Tuple(
		term.Str("sim"),
		term.MustParse(st.Beta), // β_{2Δ}
		term.Int(int64(st.Deg)),
		term.Int(int64(port)),
		term.Str(string(innerMsg)),
	)
	return machine.EncodeTerm(msg)
}

func (s *setFromMultiset) Step(state machine.State, inbox []machine.Message) machine.State {
	st := state.(t4State)
	if st.Round < s.warmup {
		next := t4State{
			Deg:   st.Deg,
			Round: st.Round + 1,
			Beta:  betaNext(st).Encode(),
			BSet:  sortedCopy(inbox),
		}
		if next.Round == s.warmup {
			return s.enterInner(next)
		}
		return next
	}
	// Simulation phase: reconstruct the inner multiset from the set.
	innerInbox := make([]machine.Message, 0, st.Deg)
	tagged := 0
	for _, m := range inbox {
		if m == machine.NoMessage {
			continue // raw m0 from halted wrappers; counted below
		}
		t, err := term.Parse(m)
		if err != nil || t.Kind() != term.KindTuple || t.Len() != 5 || t.At(0).StrVal() != "sim" {
			panic(fmt.Sprintf("simulate: malformed Theorem 4 message %q", m))
		}
		innerInbox = append(innerInbox, machine.Message(t.At(4).StrVal()))
		tagged++
	}
	// Lemma 6: tags are distinct across neighbours, so the set has exactly
	// one element per non-halted neighbour; the rest sent m0.
	for k := tagged; k < st.Deg; k++ {
		innerInbox = append(innerInbox, machine.NoMessage)
	}
	nextInner := s.inner.Step(st.Inner, machine.CanonicalInbox(machine.RecvMultiset, innerInbox))
	next := t4State{Deg: st.Deg, Round: st.Round + 1, Beta: st.Beta, Inner: nextInner}
	if out, ok := s.inner.Halted(nextInner); ok {
		next.Done = true
		next.Out = out
	}
	return next
}

func sortedCopy(ms []machine.Message) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = string(m)
	}
	sort.Strings(out)
	// The engine delivers Set inboxes deduplicated already, but dedup again
	// for safety (B_t is a set).
	dedup := out[:0]
	for i, m := range out {
		if i == 0 || m != out[i-1] {
			dedup = append(dedup, m)
		}
	}
	return dedup
}

// BetaSequences runs just the warm-up algorithm C_Δ (the β_t/B_t
// construction) directly on (G, p) for the given number of rounds and
// returns each node's encoded β_rounds. Exposed for the Lemma 5/6
// experiments: with rounds = 2Δ, the triples (β_{2Δ}(u), deg(u), π(u,v))
// must be distinct over the neighbours u of every node v.
func BetaSequences(p *port.Numbering, rounds int) []string {
	g := p.Graph()
	n := g.N()
	beta := make([]string, n)
	bset := make([][]string, n)
	for v := range beta {
		beta[v] = emptyBeta()
	}
	for t := 1; t <= rounds; t++ {
		// β_t = (β_{t-1}, B_{t-1}); send (β_t, deg, i) to port i.
		newBeta := make([]string, n)
		for v := 0; v < n; v++ {
			st := t4State{Deg: g.Degree(v), Beta: beta[v], BSet: bset[v]}
			newBeta[v] = betaNext(st).Encode()
		}
		newB := make([][]string, n)
		for v := 0; v < n; v++ {
			for i := 1; i <= g.Degree(v); i++ {
				d := p.Dest(v, i)
				msg := term.Tuple(
					term.MustParse(newBeta[v]),
					term.Int(int64(g.Degree(v))),
					term.Int(int64(i)),
				).Encode()
				newB[d.Node] = append(newB[d.Node], msg)
			}
		}
		for v := 0; v < n; v++ {
			sort.Strings(newB[v])
			newB[v] = dedupStrings(newB[v])
		}
		beta, bset = newBeta, newB
	}
	return beta
}

func dedupStrings(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
