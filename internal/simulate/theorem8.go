package simulate

import (
	"fmt"
	"sort"

	"weakmodels/internal/machine"
	"weakmodels/internal/term"
)

// t8State is the Theorem 8/9 wrapper state.
//
// Slots are the virtual in-ports of the proof: slot k tracks the full
// history of messages received from one (anonymous) neighbour. Sorting the
// slots lexicographically by history realises a port numbering p ∈ P_t
// compatible with the message history: once two histories differ they keep
// their order under extension, and equal histories are interchangeable.
type t8State struct {
	Deg int
	// Slots[k] is the received history of virtual in-port k+1, maintained
	// in ascending lexicographic order.
	Slots [][]string
	// Hist[j] is the history of messages the inner machine sent to out-port
	// j+1 (a single shared history for Broadcast inners, stored at index 0).
	Hist  [][]string
	Inner machine.State
	Round int
	Done  bool
	Out   machine.Output
}

// multisetFromVector wraps a Vector-receive machine into a Multiset-receive
// machine (Theorem 8); with a Broadcast inner it is the Theorem 9 wrapper.
type multisetFromVector struct {
	inner machine.Machine
}

var _ machine.Machine = (*multisetFromVector)(nil)

// MultisetFromVector returns a Multiset-receive machine simulating inner
// with zero round overhead per Theorem 8 (Theorem 9 when inner broadcasts).
// The inner machine must be Vector-receive.
func MultisetFromVector(inner machine.Machine) (machine.Machine, error) {
	if inner.Class().Recv != machine.RecvVector {
		return nil, fmt.Errorf("simulate: Theorem 8 needs a Vector-receive machine, got %v",
			inner.Class())
	}
	return &multisetFromVector{inner: inner}, nil
}

func (s *multisetFromVector) Name() string {
	return fmt.Sprintf("thm8[%s]", s.inner.Name())
}

func (s *multisetFromVector) Class() machine.Class {
	return machine.Class{Recv: machine.RecvMultiset, Send: s.inner.Class().Send}
}

func (s *multisetFromVector) Delta() int { return s.inner.Delta() }

func (s *multisetFromVector) broadcast() bool {
	return s.inner.Class().Send == machine.SendBroadcast
}

func (s *multisetFromVector) Init(deg int) machine.State {
	st := t8State{Deg: deg, Inner: s.inner.Init(deg)}
	nhist := deg
	if s.broadcast() {
		nhist = 1
	}
	st.Hist = make([][]string, nhist)
	if out, ok := s.inner.Halted(st.Inner); ok {
		st.Done = true
		st.Out = out
	}
	return st
}

func (s *multisetFromVector) Halted(state machine.State) (machine.Output, bool) {
	st := state.(t8State)
	return st.Out, st.Done
}

// Send transmits the full history including the current round's message.
func (s *multisetFromVector) Send(state machine.State, p int) machine.Message {
	st := state.(t8State)
	slot := p - 1
	if s.broadcast() {
		slot = 0
	}
	cur := string(s.inner.Send(st.Inner, p))
	kids := make([]term.Term, 0, len(st.Hist[slot])+1)
	for _, m := range st.Hist[slot] {
		kids = append(kids, term.Str(m))
	}
	kids = append(kids, term.Str(cur))
	return machine.EncodeTerm(term.Tuple(kids...))
}

func (s *multisetFromVector) Step(state machine.State, inbox []machine.Message) machine.State {
	st := state.(t8State)
	// Decode tagged histories; count raw m0 from halted neighbours.
	var incoming [][]string
	rawM0 := 0
	for _, m := range inbox {
		if m == machine.NoMessage {
			rawM0++
			continue
		}
		t, err := term.Parse(m)
		if err != nil || t.Kind() != term.KindTuple {
			panic(fmt.Sprintf("simulate: malformed Theorem 8 message %q", m))
		}
		h := make([]string, t.Len())
		for i := 0; i < t.Len(); i++ {
			h[i] = t.At(i).StrVal()
		}
		incoming = append(incoming, h)
	}
	if len(incoming)+rawM0 != st.Deg {
		panic(fmt.Sprintf("simulate: %d histories + %d m0 ≠ deg %d",
			len(incoming), rawM0, st.Deg))
	}

	newSlots := extendSlots(st.Slots, incoming, rawM0, st.Round == 0, st.Deg)

	// Feed the inner machine the vector in virtual-port order.
	innerInbox := make([]machine.Message, st.Deg)
	for k, h := range newSlots {
		innerInbox[k] = machine.Message(h[len(h)-1])
	}

	// Record what the inner machine sent this round, then step it.
	next := t8State{Deg: st.Deg, Slots: newSlots, Round: st.Round + 1}
	next.Hist = make([][]string, len(st.Hist))
	for j := range st.Hist {
		cur := string(s.inner.Send(st.Inner, j+1))
		next.Hist[j] = append(append([]string(nil), st.Hist[j]...), cur)
	}
	next.Inner = s.inner.Step(st.Inner, innerInbox)
	if out, ok := s.inner.Halted(next.Inner); ok {
		next.Done = true
		next.Out = out
	}
	return next
}

// extendSlots matches incoming histories to existing slots by prefix and
// extends unmatched slots with m0 (their senders halted), then re-sorts.
// On the first round slots are created fresh: raw m0 senders get the
// history [m0].
func extendSlots(slots, incoming [][]string, rawM0 int, first bool, deg int) [][]string {
	var out [][]string
	if first {
		out = append(out, incoming...)
		for k := 0; k < rawM0; k++ {
			out = append(out, []string{string(machine.NoMessage)})
		}
		sortHistories(out)
		return out
	}
	// Group slots and incoming histories by the previous-round prefix.
	prefixKey := func(h []string) string {
		return term.Tuple(strTerms(h)...).Encode()
	}
	slotsByPrefix := make(map[string][]int)
	for idx, h := range slots {
		slotsByPrefix[prefixKey(h)] = append(slotsByPrefix[prefixKey(h)], idx)
	}
	extended := make([][]string, len(slots))
	for _, h := range incoming {
		key := prefixKey(h[:len(h)-1])
		bucket := slotsByPrefix[key]
		if len(bucket) == 0 {
			panic(fmt.Sprintf("simulate: history with unknown prefix %s", key))
		}
		idx := bucket[0]
		slotsByPrefix[key] = bucket[1:]
		extended[idx] = h
	}
	// Unmatched slots: senders halted and sent m0.
	unmatched := 0
	for idx := range extended {
		if extended[idx] == nil {
			unmatched++
			extended[idx] = append(append([]string(nil), slots[idx]...), string(machine.NoMessage))
		}
	}
	if unmatched != rawM0 {
		panic(fmt.Sprintf("simulate: %d unmatched slots but %d raw m0", unmatched, rawM0))
	}
	out = extended
	sortHistories(out)
	if len(out) != deg {
		panic("simulate: slot count drifted")
	}
	return out
}

func strTerms(h []string) []term.Term {
	out := make([]term.Term, len(h))
	for i, m := range h {
		out[i] = term.Str(m)
	}
	return out
}

// sortHistories orders histories lexicographically element-wise — the fixed
// message order <M of the proof is the canonical string order.
func sortHistories(hs [][]string) {
	sort.Slice(hs, func(a, b int) bool {
		x, y := hs[a], hs[b]
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
}
