package simulate

import (
	"strings"
	"testing"

	"weakmodels/internal/machine"
)

// The simulation wrappers run inside the engine, where every message is
// self-produced — malformed messages can only mean a bug, so the wrappers
// panic loudly rather than guessing. These failure-injection tests pin that
// contract down by feeding corrupted inboxes directly into Step.

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		msg, ok := r.(string)
		if !ok {
			if err, isErr := r.(error); isErr {
				msg = err.Error()
			} else {
				t.Fatalf("panic payload %T", r)
			}
		}
		if !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not contain %q", msg, substr)
		}
	}()
	f()
}

func TestTheorem4StepRejectsGarbage(t *testing.T) {
	inner := multisetHistogram(2, 1)
	wrapped, err := SetFromMultiset(inner)
	if err != nil {
		t.Fatal(err)
	}
	// Drive through the warm-up so we are in simulation phase.
	s := wrapped.Init(2)
	for i := 0; i < 2*2; i++ {
		msg := wrapped.Send(s, 1)
		s = wrapped.Step(s, []machine.Message{msg})
	}
	mustPanic(t, "malformed", func() {
		wrapped.Step(s, []machine.Message{"not-a-term"})
	})
	mustPanic(t, "malformed", func() {
		wrapped.Step(s, []machine.Message{`t("wrong",1)`})
	})
}

func TestTheorem8StepRejectsGarbage(t *testing.T) {
	inner := vectorPortEcho(2, 2)
	wrapped, err := MultisetFromVector(inner)
	if err != nil {
		t.Fatal(err)
	}
	s := wrapped.Init(2)
	mustPanic(t, "malformed", func() {
		wrapped.Step(s, []machine.Message{"%%%", "%%%"})
	})
	// A history whose prefix matches no slot is a protocol violation.
	msg := wrapped.Send(s, 1)
	s2 := wrapped.Step(s, []machine.Message{msg, msg})
	mustPanic(t, "unknown prefix", func() {
		wrapped.Step(s2, []machine.Message{
			machine.EncodeTermStrings("ghost", "ghost"),
			machine.EncodeTermStrings("ghost", "ghost"),
		})
	})
}

func TestTheorem8StepCountMismatch(t *testing.T) {
	inner := vectorPortEcho(2, 2)
	wrapped, err := MultisetFromVector(inner)
	if err != nil {
		t.Fatal(err)
	}
	s := wrapped.Init(2)
	mustPanic(t, "≠ deg", func() {
		wrapped.Step(s, []machine.Message{wrapped.Send(s, 1)}) // one message, degree two
	})
}
