package simulate

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
	"weakmodels/internal/term"
)

// multisetHistogram is a Multiset machine: for `rounds` rounds every node
// sends its degree and collects a histogram of received multisets; output
// is a canonical encoding of everything seen. Exercises genuine multiset
// (not just set) information.
func multisetHistogram(delta, rounds int) machine.Machine {
	type st struct {
		Deg   int
		Round int
		Seen  string
		Done  bool
	}
	return &machine.Func{
		MachineName:  fmt.Sprintf("multiset-histogram-%d", rounds),
		MachineClass: machine.ClassMV,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return machine.Output(x.Seen), x.Done
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			x := s.(st)
			// Send degree and previous observations (port-independent body
			// is fine for a Multiset machine; it may still use p).
			return machine.EncodeTerm(term.Tuple(
				term.Int(int64(x.Deg)), term.Int(int64(x.Round)), term.Str(x.Seen)))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			parts := make([]term.Term, 0, len(inbox))
			for _, m := range inbox {
				t, err := machine.DecodeTerm(m)
				if err != nil {
					panic(err)
				}
				parts = append(parts, t)
			}
			x.Seen = term.Tuple(term.Str(x.Seen), term.Bag(parts...)).Encode()
			x.Round++
			if x.Round == rounds {
				x.Done = true
			}
			return x
		},
	}
}

// vectorPortEcho is a Vector machine whose output depends on the incoming
// port order: after `rounds` rounds it outputs the concatenation of
// (in-port, message) pairs seen.
func vectorPortEcho(delta, rounds int) machine.Machine {
	type st struct {
		Deg   int
		Round int
		Seen  string
		Done  bool
	}
	return &machine.Func{
		MachineName:  fmt.Sprintf("vector-port-echo-%d", rounds),
		MachineClass: machine.ClassVV,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return machine.Output(x.Seen), x.Done
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			x := s.(st)
			return machine.EncodeTerm(term.Tuple(
				term.Int(int64(x.Deg)), term.Int(int64(p)), term.Int(int64(x.Round))))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			var b strings.Builder
			fmt.Fprintf(&b, "%s/", x.Seen)
			for i, m := range inbox {
				fmt.Fprintf(&b, "[%d:%s]", i+1, m)
			}
			x.Seen = b.String()
			x.Round++
			if x.Round == rounds {
				x.Done = true
			}
			return x
		},
	}
}

// broadcastCollect is a Broadcast (VB) machine: broadcasts its degree and
// round; output records the vector of received messages per in-port.
func broadcastCollect(delta, rounds int) machine.Machine {
	type st struct {
		Deg   int
		Round int
		Seen  string
		Done  bool
	}
	return &machine.Func{
		MachineName:  fmt.Sprintf("broadcast-collect-%d", rounds),
		MachineClass: machine.ClassVB,
		MaxDeg:       delta,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return machine.Output(x.Seen), x.Done
		},
		SendFunc: func(s machine.State, _ int) machine.Message {
			x := s.(st)
			return machine.EncodeTerm(term.Tuple(term.Int(int64(x.Deg)), term.Int(int64(x.Round))))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			var b strings.Builder
			fmt.Fprintf(&b, "%s/", x.Seen)
			for i, m := range inbox {
				fmt.Fprintf(&b, "[%d:%s]", i+1, m)
			}
			x.Seen = b.String()
			x.Round++
			if x.Round == rounds {
				x.Done = true
			}
			return x
		},
	}
}

func testGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.Path(4),
		graph.Cycle(5),
		graph.Star(3),
		graph.Figure1Graph(),
		graph.Petersen(),
	}
}

// TestTheorem4 — the Set wrapper must reproduce the Multiset machine's
// outputs exactly, with exactly 2Δ extra rounds.
func TestTheorem4(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, g := range testGraphs() {
		delta := g.MaxDegree()
		inner := multisetHistogram(delta, 2)
		wrapped, err := SetFromMultiset(inner)
		if err != nil {
			t.Fatal(err)
		}
		if wrapped.Class().Recv != machine.RecvSet {
			t.Fatal("wrapper not Set-receive")
		}
		for trial := 0; trial < 5; trial++ {
			p := port.Random(g, rng)
			want, err := engine.Run(inner, p, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := engine.Run(wrapped, p, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for v := range want.Output {
				if want.Output[v] != got.Output[v] {
					t.Fatalf("%v node %d: wrapper output differs\nwant %q\ngot  %q",
						g, v, want.Output[v], got.Output[v])
				}
			}
			if got.Rounds != want.Rounds+2*delta {
				t.Errorf("%v: wrapper rounds %d, want %d + 2Δ=%d",
					g, got.Rounds, want.Rounds, want.Rounds+2*delta)
			}
		}
	}
}

// TestTheorem4MixedHalting uses an inner machine whose nodes halt at
// different times (leaves immediately, others later).
func TestTheorem4MixedHalting(t *testing.T) {
	type st struct {
		Deg   int
		Round int
		Sum   int
		Done  bool
	}
	// Leaves halt at init; others run until they have summed two rounds of
	// messages (m0 from the halted leaves counts as 0).
	inner := &machine.Func{
		MachineName:  "mixed-halt",
		MachineClass: machine.ClassMV,
		MaxDeg:       4,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg, Done: deg <= 1} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return machine.Output(fmt.Sprintf("%d", x.Sum)), x.Done
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			return machine.EncodeTerm(term.Int(int64(s.(st).Deg)))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			for _, m := range inbox {
				if m == machine.NoMessage {
					continue
				}
				tm, err := machine.DecodeTerm(m)
				if err != nil {
					panic(err)
				}
				x.Sum += int(tm.IntVal())
			}
			x.Round++
			x.Done = x.Round >= 2
			return x
		},
	}
	wrapped, err := SetFromMultiset(inner)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(81))
	for _, g := range []*graph.Graph{graph.Star(4), graph.Caterpillar(3, 1), graph.Path(5)} {
		p := port.Random(g, rng)
		want, err := engine.Run(inner, p, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := engine.Run(wrapped, p, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for v := range want.Output {
			if want.Output[v] != got.Output[v] {
				t.Fatalf("%v node %d: %q vs %q", g, v, want.Output[v], got.Output[v])
			}
		}
	}
}

// TestLemma6Distinct asserts the heart of Theorem 4: after 2Δ rounds the
// message triples (β_{2Δ}(u), deg(u), π(u,v)) are distinct over the
// neighbours u of every node v.
func TestLemma6Distinct(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	graphs := append(testGraphs(),
		graph.Complete(5), graph.Hypercube(3), graph.NoOneFactorCubic())
	for _, g := range graphs {
		delta := g.MaxDegree()
		for trial := 0; trial < 3; trial++ {
			p := port.Random(g, rng)
			beta := BetaSequences(p, 2*delta)
			for v := 0; v < g.N(); v++ {
				seen := make(map[string]int)
				for _, u := range g.Neighbors(v) {
					key := fmt.Sprintf("%s|%d|%d", beta[u], g.Degree(u), p.OutPortTo(u, v))
					if prev, dup := seen[key]; dup {
						t.Fatalf("%v: neighbours %d and %d of %d indistinguishable after 2Δ rounds",
							g, prev, u, v)
					}
					seen[key] = u
				}
			}
		}
	}
}

// TestLemma6NeedsEnoughRounds shows the warm-up is genuinely needed: after
// very few rounds some graph has indistinguishable neighbours.
func TestLemma6NeedsEnoughRounds(t *testing.T) {
	// In a symmetric even cycle with out-port collisions, one round is not
	// enough to separate the two neighbours of some node for some numbering.
	found := false
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 200 && !found; trial++ {
		g := graph.Cycle(6)
		p := port.Random(g, rng)
		beta := BetaSequences(p, 1)
		for v := 0; v < g.N() && !found; v++ {
			seen := make(map[string]bool)
			for _, u := range g.Neighbors(v) {
				key := fmt.Sprintf("%s|%d|%d", beta[u], g.Degree(u), p.OutPortTo(u, v))
				if seen[key] {
					found = true
				}
				seen[key] = true
			}
		}
	}
	if !found {
		t.Skip("no 1-round collision sampled (unlucky seeds)")
	}
}

// TestTheorem8 — the Multiset wrapper's output must match the Vector
// machine run under SOME port numbering with the same out-assignment
// (the family P0 of the proof), with zero round overhead; and when the
// inner machine is order-invariant, outputs match exactly.
func TestTheorem8(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for _, g := range []*graph.Graph{graph.Path(3), graph.Path(4), graph.Cycle(4), graph.Star(3)} {
		delta := g.MaxDegree()
		inner := vectorPortEcho(delta, 2)
		wrapped, err := MultisetFromVector(inner)
		if err != nil {
			t.Fatal(err)
		}
		if wrapped.Class().Recv != machine.RecvMultiset {
			t.Fatal("wrapper not Multiset-receive")
		}
		p0 := port.Random(g, rng)
		got, err := engine.Run(wrapped, p0, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		inner0, err := engine.Run(inner, p0, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Rounds != inner0.Rounds {
			t.Errorf("%v: wrapper rounds %d ≠ inner rounds %d (Theorem 8 promises zero overhead)",
				g, got.Rounds, inner0.Rounds)
		}
		// Enumerate P0: all numberings sharing p0's out-assignment.
		variants := enumerateP0(g, p0, t)
		match := false
		for _, p := range variants {
			want, err := engine.Run(inner, p, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			same := true
			for v := range want.Output {
				if want.Output[v] != got.Output[v] {
					same = false
					break
				}
			}
			if same {
				match = true
				break
			}
		}
		if !match {
			t.Fatalf("%v: wrapper output matches no inner execution over P0 (%d candidates)",
				g, len(variants))
		}
	}
}

// enumerateP0 lists every numbering with the same out-assignment as p0.
func enumerateP0(g *graph.Graph, p0 *port.Numbering, t *testing.T) []*port.Numbering {
	t.Helper()
	all, err := port.All(g, 3000)
	if err != nil {
		t.Fatal(err)
	}
	var out []*port.Numbering
	for _, p := range all {
		same := true
		for v := 0; v < g.N() && same; v++ {
			for i := 1; i <= g.Degree(v); i++ {
				if p.OutNeighbor(v, i) != p0.OutNeighbor(v, i) {
					same = false
					break
				}
			}
		}
		if same {
			out = append(out, p)
		}
	}
	return out
}

// TestTheorem8OrderInvariantExact: when the inner Vector machine is
// actually order-invariant, the wrapper must reproduce it exactly.
func TestTheorem8OrderInvariantExact(t *testing.T) {
	// Degree-sum is order-invariant though declared Vector.
	type st struct {
		Deg  int
		Sum  int
		Done bool
	}
	inner := &machine.Func{
		MachineName:  "degree-sum-vector",
		MachineClass: machine.ClassVV,
		MaxDeg:       4,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return machine.Output(fmt.Sprintf("%d", x.Sum)), x.Done
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			return machine.EncodeTerm(term.Int(int64(s.(st).Deg)))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			for _, m := range inbox {
				tm, _ := machine.DecodeTerm(m)
				x.Sum += int(tm.IntVal())
			}
			x.Done = true
			return x
		},
	}
	wrapped, err := MultisetFromVector(inner)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(85))
	for _, g := range testGraphs() {
		p := port.Random(g, rng)
		want, err := engine.Run(inner, p, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := engine.Run(wrapped, p, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for v := range want.Output {
			if want.Output[v] != got.Output[v] {
				t.Fatalf("%v node %d: %q vs %q", g, v, want.Output[v], got.Output[v])
			}
		}
	}
}

// TestTheorem9 — MB simulates VB: same P0 check with a broadcast inner.
func TestTheorem9(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	for _, g := range []*graph.Graph{graph.Path(4), graph.Cycle(4), graph.Star(3)} {
		delta := g.MaxDegree()
		inner := broadcastCollect(delta, 2)
		wrapped, err := MultisetFromVector(inner)
		if err != nil {
			t.Fatal(err)
		}
		if wrapped.Class() != machine.ClassMB {
			t.Fatalf("wrapper class %v, want MB", wrapped.Class())
		}
		p0 := port.Random(g, rng)
		got, err := engine.Run(wrapped, p0, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		match := false
		for _, p := range enumerateP0(g, p0, t) {
			want, err := engine.Run(inner, p, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			same := true
			for v := range want.Output {
				if want.Output[v] != got.Output[v] {
					same = false
					break
				}
			}
			if same {
				match = true
				break
			}
		}
		if !match {
			t.Fatalf("%v: Theorem 9 wrapper output outside P0 envelope", g)
		}
	}
}

func TestWrapperRejections(t *testing.T) {
	vec := vectorPortEcho(3, 1)
	if _, err := SetFromMultiset(vec); err == nil {
		t.Error("Theorem 4 wrapper accepted a Vector machine")
	}
	mul := multisetHistogram(3, 1)
	if _, err := MultisetFromVector(mul); err == nil {
		t.Error("Theorem 8 wrapper accepted a Multiset machine")
	}
}

// TestComposedSimulationChain runs VV → MV (Thm 8) → SV (Thm 4): the full
// collapse SV = MV = VV realised as executable wrappers.
func TestComposedSimulationChain(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	g := graph.Cycle(4)
	inner := vectorPortEcho(2, 1)
	mv, err := MultisetFromVector(inner)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := SetFromMultiset(mv)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Class() != machine.ClassSV {
		t.Fatalf("composed class %v, want SV", sv.Class())
	}
	p0 := port.Random(g, rng)
	got, err := engine.Run(sv, p0, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	match := false
	for _, p := range enumerateP0(g, p0, t) {
		want, err := engine.Run(inner, p, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for v := range want.Output {
			if want.Output[v] != got.Output[v] {
				same = false
				break
			}
		}
		if same {
			match = true
			break
		}
	}
	if !match {
		t.Fatal("composed SV wrapper output outside P0 envelope")
	}
}

func BenchmarkTheorem4Overhead(b *testing.B) {
	// Δ=4 excluded: β-tags reach ~80 MB per run (see EXPERIMENTS.md).
	for _, delta := range []int{2, 3} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			g, err := graph.RandomRegular(10, delta, rand.New(rand.NewSource(88)))
			if err != nil {
				b.Fatal(err)
			}
			inner := multisetHistogram(delta, 1)
			wrapped, err := SetFromMultiset(inner)
			if err != nil {
				b.Fatal(err)
			}
			p := port.Canonical(g)
			b.ReportAllocs()
			b.ResetTimer()
			var bytes int64
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := engine.Run(wrapped, p, engine.Options{})
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.MessageBytes
				rounds = res.Rounds
			}
			b.ReportMetric(float64(bytes), "msg-bytes/run")
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

func BenchmarkTheorem8History(b *testing.B) {
	for _, rounds := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("T=%d", rounds), func(b *testing.B) {
			g := graph.Cycle(8)
			inner := vectorPortEcho(2, rounds)
			wrapped, err := MultisetFromVector(inner)
			if err != nil {
				b.Fatal(err)
			}
			p := port.Canonical(g)
			b.ReportAllocs()
			b.ResetTimer()
			var bytes int64
			for i := 0; i < b.N; i++ {
				res, err := engine.Run(wrapped, p, engine.Options{})
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.MessageBytes
			}
			b.ReportMetric(float64(bytes), "msg-bytes/run")
		})
	}
}

func TestTheorem4DeltaOne(t *testing.T) {
	// Edge case Δ=1: two rounds of warm-up on K2.
	inner := multisetHistogram(1, 1)
	wrapped, err := SetFromMultiset(inner)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Path(2)
	p := port.Canonical(g)
	want, err := engine.Run(inner, p, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := engine.Run(wrapped, p, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Output {
		if want.Output[v] != got.Output[v] {
			t.Fatalf("node %d differs", v)
		}
	}
	if got.Rounds != want.Rounds+2 {
		t.Errorf("rounds %d, want %d", got.Rounds, want.Rounds+2)
	}
}

// TestTheorem8MixedHalting exercises the virtual-slot machinery when inner
// nodes halt at different rounds: leaves halt at init (their wrappers send
// raw m0 from round 1), interior nodes keep running and must extend the
// silent slots with m0 consistently.
func TestTheorem8MixedHalting(t *testing.T) {
	type st struct {
		Deg   int
		Round int
		Seen  string
		Done  bool
	}
	inner := &machine.Func{
		MachineName:  "mixed-halt-vector",
		MachineClass: machine.ClassVV,
		MaxDeg:       4,
		InitFunc:     func(deg int) machine.State { return st{Deg: deg, Done: deg <= 1} },
		HaltedFunc: func(s machine.State) (machine.Output, bool) {
			x := s.(st)
			return machine.Output(x.Seen), x.Done
		},
		SendFunc: func(s machine.State, p int) machine.Message {
			x := s.(st)
			return machine.Message(fmt.Sprintf("d%dp%dr%d", x.Deg, p, x.Round))
		},
		StepFunc: func(s machine.State, inbox []machine.Message) machine.State {
			x := s.(st)
			var b strings.Builder
			fmt.Fprintf(&b, "%s/", x.Seen)
			for i, m := range inbox {
				fmt.Fprintf(&b, "[%d:%s]", i+1, m)
			}
			x.Seen = b.String()
			x.Round++
			x.Done = x.Round >= 3
			return x
		},
	}
	wrapped, err := MultisetFromVector(inner)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(89))
	for _, g := range []*graph.Graph{graph.Star(3), graph.Caterpillar(3, 1), graph.Path(4)} {
		p0 := port.Random(g, rng)
		got, err := engine.Run(wrapped, p0, engine.Options{})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		match := false
		for _, p := range enumerateP0(g, p0, t) {
			want, err := engine.Run(inner, p, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			same := true
			for v := range want.Output {
				if want.Output[v] != got.Output[v] {
					same = false
					break
				}
			}
			if same {
				match = true
				break
			}
		}
		if !match {
			t.Fatalf("%v: mixed-halting wrapper output outside the P0 envelope", g)
		}
	}
}
