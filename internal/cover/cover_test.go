package cover

import (
	"math/rand"
	"testing"

	"weakmodels/internal/algorithms"
	"weakmodels/internal/bisim"
	"weakmodels/internal/engine"
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/machine"
	"weakmodels/internal/port"
)

func baseNumberings(t *testing.T) []*port.Numbering {
	t.Helper()
	rng := rand.New(rand.NewSource(130))
	var out []*port.Numbering
	for _, g := range []*graph.Graph{
		graph.Path(4), graph.Cycle(5), graph.Star(3), graph.Figure1Graph(), graph.Petersen(),
	} {
		out = append(out, port.Canonical(g), port.Random(g, rng))
	}
	return out
}

func TestLiftIdentityIsCopies(t *testing.T) {
	p := port.Canonical(graph.Cycle(5))
	lifted, phi, err := Lift(p, 3, IdentityVoltage(3))
	if err != nil {
		t.Fatal(err)
	}
	lg := lifted.Graph()
	if lg.N() != 15 || lg.M() != 15 {
		t.Fatalf("lift shape wrong: %v", lg)
	}
	if len(lg.Components()) != 3 {
		t.Errorf("identity lift should be 3 disjoint copies, has %d components",
			len(lg.Components()))
	}
	if err := Verify(lifted, p, phi); err != nil {
		t.Error(err)
	}
}

func TestLiftSwapIsDoubleCover(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(5), graph.Petersen(), graph.Figure1Graph()} {
		p := port.Canonical(g)
		lifted, _, err := Lift(p, 2, SwapVoltage())
		if err != nil {
			t.Fatal(err)
		}
		lg := lifted.Graph()
		if lg.N() != 2*g.N() || lg.M() != 2*g.M() {
			t.Fatalf("%v: swap lift shape wrong: %v", g, lg)
		}
		if _, ok := lg.Bipartition(); !ok {
			t.Errorf("%v: swap lift (double cover) must be bipartite", g)
		}
	}
}

func TestRandomLiftsAreCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for _, p := range baseNumberings(t) {
		for _, k := range []int{2, 3} {
			lifted, phi, err := Lift(p, k, RandomVoltage(k, rng))
			if err != nil {
				t.Fatalf("%v k=%d: %v", p.Graph(), k, err)
			}
			if err := Verify(lifted, p, phi); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCoveredNodesBisimilar: x and φ(x) are bisimilar in K₊,₊ across the
// two models — the fibration property underlying the paper's locality
// arguments.
func TestCoveredNodesBisimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	for _, p := range baseNumberings(t) {
		lifted, phi, err := Lift(p, 2, RandomVoltage(2, rng))
		if err != nil {
			t.Fatal(err)
		}
		base := kripke.FromPorts(p, kripke.VariantPP)
		up := kripke.FromPorts(lifted, kripke.VariantPP)
		for x := 0; x < lifted.Graph().N(); x++ {
			if !bisim.BisimilarAcross(up, x, base, phi[x], bisim.Options{Graded: true}) {
				t.Fatalf("%v: lift node %d not g-bisimilar to base node %d",
					p.Graph(), x, phi[x])
			}
		}
	}
}

// TestAlgorithmsCannotSeeTheCover: every machine produces the same output
// at x and φ(x) — the executable meaning of "anonymous algorithms cannot
// distinguish a graph from its lifts" (Angluin).
func TestAlgorithmsCannotSeeTheCover(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	for _, p := range baseNumberings(t) {
		g := p.Graph()
		delta := g.MaxDegree()
		lifted, phi, err := Lift(p, 3, RandomVoltage(3, rng))
		if err != nil {
			t.Fatal(err)
		}
		algos := []machine.Machine{
			algorithms.OddOdd(delta),
			algorithms.LeafElect(delta),
			algorithms.EvenDegree(delta),
			algorithms.LocalTypeMax(delta),
			algorithms.VertexCover2(delta),
			algorithms.LeafProximity(delta, 2),
		}
		for _, m := range algos {
			baseRes, err := engine.Run(m, p, engine.Options{})
			if err != nil {
				t.Fatalf("%s on %v: %v", m.Name(), g, err)
			}
			liftRes, err := engine.Run(m, lifted, engine.Options{})
			if err != nil {
				t.Fatalf("%s on lift of %v: %v", m.Name(), g, err)
			}
			for x := 0; x < lifted.Graph().N(); x++ {
				if liftRes.Output[x] != baseRes.Output[phi[x]] {
					t.Fatalf("%s: lift node %d outputs %q, base node %d outputs %q",
						m.Name(), x, liftRes.Output[x], phi[x], baseRes.Output[phi[x]])
				}
			}
		}
	}
}
