// Package cover implements covering maps of port-numbered graphs — the
// graph-theoretic counterpart of bisimulation that the paper's related-work
// discussion builds on (§3.3: "covering graphs (lifts) and universal
// covering graphs", Angluin [2], Boldi–Vigna [12]).
//
// A covering map from (H, q) onto (G, p) sends every node of H to a node of
// G of the same degree so that ports are preserved: if node x of H sends on
// out-port i into in-port j of y, then φ(x) sends on out-port i into
// in-port j of φ(y). Covered nodes are indistinguishable to every
// Vector-class algorithm — equivalently, x and φ(x) are bisimilar in K₊,₊ —
// which this package's tests verify against internal/bisim and
// internal/engine, closing the triangle views ↔ covers ↔ bisimulation.
package cover

import (
	"fmt"
	"math/rand"

	"weakmodels/internal/graph"
	"weakmodels/internal/port"
)

// Verify checks that phi (a map from nodes of H to nodes of G) is a
// covering map from (H, q) onto (G, p): degree-preserving and
// port-preserving on every port.
func Verify(q, p *port.Numbering, phi []int) error {
	h, g := q.Graph(), p.Graph()
	if len(phi) != h.N() {
		return fmt.Errorf("cover: φ has %d entries for %d nodes", len(phi), h.N())
	}
	for x := 0; x < h.N(); x++ {
		gx := phi[x]
		if gx < 0 || gx >= g.N() {
			return fmt.Errorf("cover: φ(%d) = %d out of range", x, gx)
		}
		if h.Degree(x) != g.Degree(gx) {
			return fmt.Errorf("cover: deg(%d)=%d but deg(φ(%d))=%d",
				x, h.Degree(x), x, g.Degree(gx))
		}
		for i := 1; i <= h.Degree(x); i++ {
			dh := q.Dest(x, i)
			dg := p.Dest(gx, i)
			if phi[dh.Node] != dg.Node || dh.Index != dg.Index {
				return fmt.Errorf("cover: port (%d,%d): lift reaches (%d,%d) projecting to (%d,%d), base reaches (%d,%d)",
					x, i, dh.Node, dh.Index, phi[dh.Node], dh.Index, dg.Node, dg.Index)
			}
		}
	}
	return nil
}

// Voltage assigns to each undirected base edge a permutation of the k
// layers, read from the lower endpoint towards the higher one (the reverse
// direction uses the inverse).
type Voltage func(e graph.Edge) []int

// IdentityVoltage keeps every layer in place: the lift is k disjoint copies.
func IdentityVoltage(k int) Voltage {
	id := make([]int, k)
	for i := range id {
		id[i] = i
	}
	return func(graph.Edge) []int { return id }
}

// SwapVoltage (k = 2) crosses the layers on every edge — the bipartite
// double cover of Lemma 15.
func SwapVoltage() Voltage {
	return func(graph.Edge) []int { return []int{1, 0} }
}

// RandomVoltage draws an independent uniform permutation per edge.
func RandomVoltage(k int, rng *rand.Rand) Voltage {
	memo := make(map[graph.Edge][]int)
	return func(e graph.Edge) []int {
		if s, ok := memo[e]; ok {
			return s
		}
		s := rng.Perm(k)
		memo[e] = s
		return s
	}
}

// Lift builds the k-fold lift of (G, p) under the voltage assignment.
// Layer ℓ of node v becomes lift node v·k + ℓ; edge {u,v} (u < v) connects
// layer ℓ at u to layer σ(ℓ) at v. Ports are copied from the base, so the
// projection "forget the layer" is a covering map by construction; it is
// returned as phi and verified before returning.
func Lift(p *port.Numbering, k int, voltage Voltage) (*port.Numbering, []int, error) {
	g := p.Graph()
	if k < 1 {
		return nil, nil, fmt.Errorf("cover: fold k=%d must be ≥ 1", k)
	}
	perm := func(u, v int) []int {
		if u < v {
			return voltage(graph.Edge{U: u, V: v})
		}
		fwd := voltage(graph.Edge{U: v, V: u})
		inv := make([]int, k)
		for a, b := range fwd {
			inv[b] = a
		}
		return inv
	}

	n := g.N()
	var edges []graph.Edge
	for _, e := range g.Edges() {
		s := perm(e.U, e.V)
		if len(s) != k {
			return nil, nil, fmt.Errorf("cover: voltage of %v has %d entries, want %d", e, len(s), k)
		}
		for l := 0; l < k; l++ {
			edges = append(edges, graph.Edge{U: e.U*k + l, V: e.V*k + s[l]})
		}
	}
	lifted, err := graph.New(n*k, edges)
	if err != nil {
		return nil, nil, fmt.Errorf("cover: lift is not simple: %w", err)
	}

	out := make([][]int, lifted.N())
	in := make([][]int, lifted.N())
	for x := 0; x < lifted.N(); x++ {
		d := lifted.Degree(x)
		out[x] = make([]int, d)
		in[x] = make([]int, d)
	}
	for v := 0; v < n; v++ {
		for i := 1; i <= g.Degree(v); i++ {
			d := p.Dest(v, i)
			u, j := d.Node, d.Index
			s := perm(v, u)
			for l := 0; l < k; l++ {
				x := v*k + l
				y := u*k + s[l]
				ax := lifted.NeighborIndex(x, y)
				ay := lifted.NeighborIndex(y, x)
				if ax < 0 || ay < 0 {
					return nil, nil, fmt.Errorf("cover: lift adjacency broken at (%d,%d)", x, y)
				}
				out[x][i-1] = ax
				in[y][ay] = j
			}
		}
	}
	lp, err := port.FromRaw(lifted, out, in)
	if err != nil {
		return nil, nil, fmt.Errorf("cover: lift numbering invalid: %w", err)
	}
	phi := make([]int, lifted.N())
	for x := range phi {
		phi[x] = x / k
	}
	if err := Verify(lp, p, phi); err != nil {
		return nil, nil, err
	}
	return lp, phi, nil
}
