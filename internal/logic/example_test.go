package logic_test

import (
	"fmt"

	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/port"
)

// Example parses a graded formula and model-checks it on the Kripke model
// K(−,−) of a star: "at least three of my neighbours are leaves".
func Example() {
	f := logic.MustParse("<*,*>=3 q1")
	g := graph.Star(4)
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	fmt.Println("fragment:", logic.ClassifyFragment(f))
	fmt.Println("modal depth:", logic.ModalDepth(f))
	fmt.Println("holds at:", logic.TruthSet(m, f))
	// Output:
	// fragment: GML
	// modal depth: 1
	// holds at: [0]
}

// ExampleSimplify folds constants away.
func ExampleSimplify() {
	f := logic.MustParse("(q1 & true) | false")
	fmt.Println(logic.Simplify(f))
	// Output:
	// q1
}

// ExampleBox shows the derived dual modality.
func ExampleBox() {
	f := logic.Box(kripke.Index{I: kripke.Star, J: kripke.Star}, logic.Prop{Name: "q1"})
	fmt.Println(f)
	// Output:
	// !(<*,*> !q1)
}
