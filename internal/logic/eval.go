package logic

import (
	"fmt"

	"weakmodels/internal/kripke"
)

// Eval model-checks f on every state of m, returning the truth set ‖f‖ as a
// boolean vector. It memoises on subformulas (rendered form), so shared
// subformulas — ubiquitous in compiled formulas — are evaluated once.
func Eval(m *kripke.Model, f Formula) []bool {
	memo := make(map[string][]bool)
	return evalMemo(m, f, memo)
}

func evalMemo(m *kripke.Model, f Formula, memo map[string][]bool) []bool {
	key := f.String()
	if v, ok := memo[key]; ok {
		return v
	}
	n := m.N()
	out := make([]bool, n)
	switch x := f.(type) {
	case Top:
		for i := range out {
			out[i] = true
		}
	case Bot:
		// all false
	case Prop:
		for v := 0; v < n; v++ {
			out[v] = m.Prop(x.Name, v)
		}
	case Not:
		inner := evalMemo(m, x.F, memo)
		for v := 0; v < n; v++ {
			out[v] = !inner[v]
		}
	case And:
		l := evalMemo(m, x.L, memo)
		r := evalMemo(m, x.R, memo)
		for v := 0; v < n; v++ {
			out[v] = l[v] && r[v]
		}
	case Or:
		l := evalMemo(m, x.L, memo)
		r := evalMemo(m, x.R, memo)
		for v := 0; v < n; v++ {
			out[v] = l[v] || r[v]
		}
	case Diamond:
		inner := evalMemo(m, x.F, memo)
		for v := 0; v < n; v++ {
			count := 0
			for _, w := range m.Succ(x.Idx, v) {
				if inner[w] {
					count++
					if count >= x.K {
						break
					}
				}
			}
			out[v] = count >= x.K
		}
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
	memo[key] = out
	return out
}

// Sat reports whether f holds at state v of m.
func Sat(m *kripke.Model, v int, f Formula) bool { return Eval(m, f)[v] }

// TruthSet returns the states where f holds, ascending.
func TruthSet(m *kripke.Model, f Formula) []int {
	val := Eval(m, f)
	var out []int
	for v, t := range val {
		if t {
			out = append(out, v)
		}
	}
	return out
}
