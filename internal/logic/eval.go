package logic

// eval.go is the bitset model checker. Truth sets are []uint64 bitsets
// (one bit per state), boolean connectives are word-parallel loops, and
// diamonds count successor bits through the model's compiled CSR rows.
// Memoization is a slice indexed by interned formula ID — no string keys,
// no map — and the memo rows persist across Eval calls on the same
// Evaluator, so repeated checks (characteristic formulas, Fact 1 sweeps)
// pay only for subformulas they have not seen. The inner loops allocate
// nothing in steady state and are pinned by //weakvet:noalloc.
//
// The original AST-walking Eval survives as a thin shim at the bottom of
// the file, so seed-era callers keep their signatures.

import (
	"math/bits"
	"time"

	"weakmodels/internal/kripke"
	"weakmodels/internal/obs"
)

// Logic metric names, as exported in the Prometheus text format.
const (
	// MetricEvals counts Evaluator.Eval calls that did any work
	// (at least one unmemoized node).
	MetricEvals = "weak_logic_evals_total"
	// MetricEvalNodes counts interned subformula nodes evaluated.
	MetricEvalNodes = "weak_logic_eval_nodes_total"
	// MetricEvalUs is the wall time of non-trivial Eval calls in
	// microseconds.
	MetricEvalUs = "weak_logic_eval_us"
)

// evalMetrics is the resolved metrics bundle; nil disables everything,
// the single check every emit site's nil guard reduces to.
//
//weakvet:obs newEvalMetrics returns nil unless a registry is attached; every caller guards the *evalMetrics
type evalMetrics struct {
	evals *obs.Counter
	nodes *obs.Counter
	durUs *obs.Histogram
	clock obs.Clock
}

func newEvalMetrics(o *obs.Obs) *evalMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	reg := o.Metrics
	return &evalMetrics{
		evals: reg.Counter(MetricEvals, "bitset Eval calls with at least one unmemoized node"),
		nodes: reg.Counter(MetricEvalNodes, "interned subformula nodes evaluated"),
		durUs: reg.Histogram(MetricEvalUs, "wall microseconds per non-trivial Eval call", nil),
		clock: o.ResolveClock(),
	}
}

// begin stamps the start of an Eval call.
func (m *evalMetrics) begin() time.Duration { return m.clock.Now() }

// end records one Eval call that evaluated nodes plan entries.
func (m *evalMetrics) end(start time.Duration, nodes int) {
	m.evals.Inc()
	m.nodes.Add(int64(nodes))
	m.durUs.Observe(float64((m.clock.Now() - start) / time.Microsecond))
}

// Evaluator model-checks interned formulas on one model. Memo rows are
// keyed by formula ID and persist across calls; create the Evaluator
// after the model is fully built (it captures the model's CSR form).
// Not safe for concurrent use.
type Evaluator struct {
	in  *Interner
	csr *kripke.CSR
	n   int
	w   int    // bitset words
	tw  uint64 // tail mask: bits of the last word that are real states

	rows   [][]uint64 // memoized truth sets, indexed by ID; nil = never sized
	valid  []bool     // rows[i] holds the truth set of node i
	marked []bool     // scratch: nodes needed by the current Eval
	plan   []ID       // scratch: unmemoized nodes in ascending (topological) order

	met *evalMetrics
}

// NewEvaluator returns an evaluator for formulas interned in in, checked
// on m. The model's CSR form is compiled on first use and captured; do
// not mutate m afterwards.
func NewEvaluator(m *kripke.Model, in *Interner) *Evaluator {
	csr := m.CSR()
	n := csr.N()
	tw := ^uint64(0)
	if r := uint(n) & 63; r != 0 {
		tw = (uint64(1) << r) - 1
	}
	if n == 0 {
		tw = 0
	}
	return &Evaluator{in: in, csr: csr, n: n, w: csr.Words(), tw: tw}
}

// Interner returns the arena this evaluator reads formulas from.
func (e *Evaluator) Interner() *Interner { return e.in }

// AttachObs wires a metrics registry (and its clock) into the evaluator.
// Nil detaches.
func (e *Evaluator) AttachObs(o *obs.Obs) { e.met = newEvalMetrics(o) }

// grow sizes the per-ID tables to cover id.
func (e *Evaluator) grow(id ID) {
	need := int(id) + 1
	if need <= len(e.valid) {
		return
	}
	for len(e.rows) < need {
		e.rows = append(e.rows, nil)
	}
	valid := make([]bool, need)
	copy(valid, e.valid)
	e.valid = valid
	marked := make([]bool, need)
	copy(marked, e.marked)
	e.marked = marked
}

// Eval returns the truth set ‖id‖ as a bitset of e.Words() words. The
// returned slice is the memo row — shared, valid until Reset; callers
// must not modify it.
func (e *Evaluator) Eval(id ID) []uint64 {
	if int(id) < len(e.valid) && e.valid[id] {
		return e.rows[id]
	}
	var start time.Duration
	if e.met != nil {
		start = e.met.begin()
	}
	e.grow(id)

	// Mark the unmemoized cone of id. Children have smaller IDs, so one
	// descending sweep from id propagates need; the ascending sweep that
	// follows collects the evaluation plan in topological order.
	e.marked[id] = true
	for i := id; i >= 0; i-- {
		if !e.marked[i] || e.valid[i] {
			continue
		}
		switch n := e.in.nodes[i]; n.Op {
		case OpNot, OpDia:
			e.marked[n.L] = true
		case OpAnd, OpOr:
			e.marked[n.L] = true
			e.marked[n.R] = true
		}
	}
	e.plan = e.plan[:0]
	for i := ID(0); i <= id; i++ {
		if e.marked[i] {
			e.marked[i] = false
			if !e.valid[i] {
				e.plan = append(e.plan, i)
			}
		}
	}
	for _, i := range e.plan {
		if e.rows[i] == nil {
			e.rows[i] = make([]uint64, e.w)
		}
	}

	e.run()

	if e.met != nil {
		e.met.end(start, len(e.plan))
	}
	return e.rows[id]
}

// run executes the current plan bottom-up. All rows are pre-sized; this
// is the steady-state hot loop.
//
//weakvet:noalloc
func (e *Evaluator) run() {
	for _, i := range e.plan {
		dst := e.rows[i]
		switch n := e.in.nodes[i]; n.Op {
		case OpTop:
			fillInto(dst, e.tw)
		case OpBot:
			zeroInto(dst)
		case OpProp:
			if bits := e.csr.PropBits(n.Prop); bits != nil {
				copy(dst, bits)
			} else {
				zeroInto(dst)
			}
		case OpNot:
			notInto(dst, e.rows[n.L], e.tw)
		case OpAnd:
			andInto(dst, e.rows[n.L], e.rows[n.R])
		case OpOr:
			orInto(dst, e.rows[n.L], e.rows[n.R])
		case OpDia:
			if n.K <= 0 {
				fillInto(dst, e.tw)
				break
			}
			off, succ, ok := e.csr.Rel(n.Idx)
			if !ok {
				zeroInto(dst)
				break
			}
			child := e.rows[n.L]
			// ⟨α⟩ with a sparse child defeats the forward scan's early
			// break (most rows scan to the end and find nothing) — there,
			// walking the few set bits backwards over predecessor rows
			// touches only the edges that matter. Boxes are the common
			// case: [α]f is ¬⟨α⟩¬f, and a mostly-true f makes ¬f sparse.
			if n.K == 1 {
				if c := popCount(child); 2*c <= e.n {
					poff, pred, _ := e.csr.Pred(n.Idx)
					diamondPredInto(dst, poff, pred, child)
					break
				}
			}
			diamondInto(dst, off, succ, child, n.K)
		}
		e.valid[i] = true
	}
}

// Reset invalidates every memo row (keeping their capacity), so the next
// Eval recomputes against the same model. Use after re-seeding scenario
// state, not after model mutation — the CSR snapshot is fixed.
func (e *Evaluator) Reset() {
	for i := range e.valid {
		e.valid[i] = false
	}
}

// Sat reports whether id holds at state v.
func (e *Evaluator) Sat(v int, id ID) bool {
	row := e.Eval(id)
	return row[v>>6]&(1<<(uint(v)&63)) != 0
}

// Count returns |‖id‖|, the number of states satisfying id.
func (e *Evaluator) Count(id ID) int {
	return popCount(e.Eval(id))
}

// popCount counts the set bits of a truth-set row.
//
//weakvet:noalloc
func popCount(row []uint64) int {
	total := 0
	for _, w := range row {
		total += bits.OnesCount64(w)
	}
	return total
}

// Bools expands ‖id‖ into a freshly allocated boolean vector, the seed
// Eval's result shape.
func (e *Evaluator) Bools(id ID) []bool {
	row := e.Eval(id)
	out := make([]bool, e.n)
	for v := 0; v < e.n; v++ {
		out[v] = row[v>>6]&(1<<(uint(v)&63)) != 0
	}
	return out
}

// fillInto sets every word to all-ones, with the tail word masked so
// phantom states beyond n stay 0.
//
//weakvet:noalloc
func fillInto(dst []uint64, tail uint64) {
	for i := range dst {
		dst[i] = ^uint64(0)
	}
	if len(dst) > 0 {
		dst[len(dst)-1] = tail
	}
}

// zeroInto clears every word.
//
//weakvet:noalloc
func zeroInto(dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
}

// notInto computes dst = ¬a, keeping phantom tail bits 0.
//
//weakvet:noalloc
func notInto(dst, a []uint64, tail uint64) {
	for i := range dst {
		dst[i] = ^a[i]
	}
	if len(dst) > 0 {
		dst[len(dst)-1] &= tail
	}
}

// andInto computes dst = a ∧ b word-parallel.
//
//weakvet:noalloc
func andInto(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// orInto computes dst = a ∨ b word-parallel.
//
//weakvet:noalloc
func orInto(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] | b[i]
	}
}

// diamondInto computes dst = ⟨α⟩≥k child by scanning each state's CSR
// successor row and counting child bits, breaking as soon as k are seen.
// Callers handle k ≤ 0 and the missing-relation case.
//
//weakvet:noalloc
func diamondInto(dst []uint64, off, succ []int32, child []uint64, k int32) {
	n := len(off) - 1
	// Process states in 64-blocks, accumulating each destination word in a
	// register and storing it once per block: full-word stores skip the
	// per-hit read-modify-write of dst and keep the tail's phantom bits
	// zero with no mask. Row scans break as soon as the grade is reached —
	// on the dense truth sets connectives produce, that is the first probe.
	for base := 0; base < n; base += 64 {
		top := base + 64
		if top > n {
			top = n
		}
		var word uint64
		i := int(off[base])
		if k == 1 {
			for v := base; v < top; v++ {
				e := int(off[v+1])
				for ; i < e; i++ {
					w := succ[i]
					if child[w>>6]&(1<<(uint32(w)&63)) != 0 {
						word |= 1 << uint(v-base)
						i = e
						break
					}
				}
			}
		} else {
			for v := base; v < top; v++ {
				e := int(off[v+1])
				count := int32(0)
				for ; i < e; i++ {
					w := succ[i]
					if child[w>>6]&(1<<(uint32(w)&63)) != 0 {
						count++
						if count >= k {
							word |= 1 << uint(v-base)
							i = e
							break
						}
					}
				}
			}
		}
		dst[base>>6] = word
	}
}

// diamondPredInto computes dst = ⟨α⟩≥1 child by walking the set bits of
// child and marking every predecessor — O(edges into ‖child‖) instead of
// a scan over all rows, which is the winning shape when child is sparse.
// Callers pick this only for k == 1 on a present relation.
//
//weakvet:noalloc
func diamondPredInto(dst []uint64, poff, pred []int32, child []uint64) {
	zeroInto(dst)
	for wi, m := range child {
		base := wi << 6
		for m != 0 {
			w := base + bits.TrailingZeros64(m)
			m &= m - 1
			for _, u := range pred[poff[w]:poff[w+1]] {
				dst[u>>6] |= 1 << (uint32(u) & 63)
			}
		}
	}
}

// Eval model-checks f on every state of m, returning the truth set ‖f‖ as
// a boolean vector. Compatibility shim over the interner/bitset path; for
// repeated checks on one model, hold an Evaluator instead so memo rows
// persist.
func Eval(m *kripke.Model, f Formula) []bool {
	in := NewInterner()
	return NewEvaluator(m, in).Bools(in.Intern(f))
}

// Sat reports whether f holds at state v of m.
func Sat(m *kripke.Model, v int, f Formula) bool { return Eval(m, f)[v] }

// TruthSet returns the states where f holds, ascending.
func TruthSet(m *kripke.Model, f Formula) []int {
	val := Eval(m, f)
	var out []int
	for v, t := range val {
		if t {
			out = append(out, v)
		}
	}
	return out
}
