package logic

import (
	"fmt"
	"strconv"
	"unicode"

	"weakmodels/internal/kripke"
)

// Parse reads the surface syntax produced by Formula.String:
//
//	formula := or
//	or      := and { "|" and }
//	and     := unary { "&" unary }
//	unary   := "!" unary | diamond | box | atom
//	diamond := "<" idx "," idx ">" [ "=" int ] unary      // ⟨(i,j)⟩≥k
//	box     := "[" idx "," idx "]" unary                  // ¬⟨α⟩¬
//	atom    := "true" | "false" | ident | "(" formula ")"
//	idx     := int | "*"
//
// "&" binds tighter than "|"; both associate left. "=k" after a diamond sets
// the grade (default 1).
func Parse(src string) (Formula, error) {
	p := &fparser{src: src}
	p.skipSpace()
	f, err := p.or()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input")
	}
	return f, nil
}

// MustParse is Parse panicking on error, for fixtures.
func MustParse(src string) Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type fparser struct {
	src string
	pos int
}

func (p *fparser) errf(format string, args ...any) error {
	return fmt.Errorf("logic: %s at byte %d of %q", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *fparser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *fparser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *fparser) or() (Formula, error) {
	f, err := p.and()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			return f, nil
		}
		p.pos++
		g, err := p.and()
		if err != nil {
			return nil, err
		}
		f = Or{L: f, R: g}
	}
}

func (p *fparser) and() (Formula, error) {
	f, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '&' {
			return f, nil
		}
		p.pos++
		g, err := p.unary()
		if err != nil {
			return nil, err
		}
		f = And{L: f, R: g}
	}
}

func (p *fparser) unary() (Formula, error) {
	p.skipSpace()
	switch p.peek() {
	case '!':
		p.pos++
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not{F: f}, nil
	case '<':
		idx, err := p.label('<', '>')
		if err != nil {
			return nil, err
		}
		k := 1
		if p.peek() == '=' {
			p.pos++
			k, err = p.number()
			if err != nil {
				return nil, err
			}
		}
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Diamond{Idx: idx, K: k, F: f}, nil
	case '[':
		idx, err := p.label('[', ']')
		if err != nil {
			return nil, err
		}
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Box(idx, f), nil
	case '(':
		p.pos++
		f, err := p.or()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errf("expected ')'")
		}
		p.pos++
		return f, nil
	default:
		return p.atom()
	}
}

func (p *fparser) atom() (Formula, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			p.pos++
		} else {
			break
		}
	}
	name := p.src[start:p.pos]
	switch {
	case name == "true":
		return Top{}, nil
	case name == "false":
		return Bot{}, nil
	case name == "":
		return nil, p.errf("expected a formula")
	case unicode.IsDigit(rune(name[0])):
		return nil, p.errf("proposition %q may not start with a digit", name)
	default:
		return Prop{Name: name}, nil
	}
}

func (p *fparser) label(open, close byte) (kripke.Index, error) {
	var idx kripke.Index
	if p.peek() != open {
		return idx, p.errf("expected %q", string(open))
	}
	p.pos++
	i, err := p.indexPart()
	if err != nil {
		return idx, err
	}
	p.skipSpace()
	if p.peek() != ',' {
		return idx, p.errf("expected ','")
	}
	p.pos++
	j, err := p.indexPart()
	if err != nil {
		return idx, err
	}
	p.skipSpace()
	if p.peek() != close {
		return idx, p.errf("expected %q", string(close))
	}
	p.pos++
	return kripke.Index{I: i, J: j}, nil
}

func (p *fparser) indexPart() (int, error) {
	p.skipSpace()
	if p.peek() == '*' {
		p.pos++
		return kripke.Star, nil
	}
	n, err := p.number()
	if err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, p.errf("port index must be ≥ 1")
	}
	return n, nil
}

func (p *fparser) number() (int, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if start == p.pos {
		return 0, p.errf("expected a number")
	}
	n, err := strconv.Atoi(p.src[start:p.pos])
	if err != nil {
		return 0, p.errf("bad number: %v", err)
	}
	return n, nil
}
