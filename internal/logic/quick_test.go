package logic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/port"
)

func modelFromSeed(seed int64) *kripke.Model {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(6)
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(3) == 0 {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	g := graph.MustNew(n, edges)
	return kripke.FromPorts(port.Random(g, rng), kripke.VariantPP)
}

// TestQuickDeMorgan: ¬(φ ∧ ψ) ≡ ¬φ ∨ ¬ψ on random models.
func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := modelFromSeed(seed)
		a := RandomFormula(rng, 3, 3, true)
		b := RandomFormula(rng, 3, 3, true)
		lhs := Eval(m, Not{F: And{L: a, R: b}})
		rhs := Eval(m, Or{L: Not{F: a}, R: Not{F: b}})
		for v := range lhs {
			if lhs[v] != rhs[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickBoxDiamondDuality: [α]φ ≡ ¬⟨α⟩¬φ by construction, and
// ⟨α⟩≥1 φ ≡ ⟨α⟩φ.
func TestQuickBoxDiamondDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := modelFromSeed(seed)
		phi := RandomFormula(rng, 2, 3, false)
		alpha := kripke.Index{I: 1 + rng.Intn(3), J: 1 + rng.Intn(3)}
		box := Eval(m, Box(alpha, phi))
		noDia := Eval(m, Not{F: Dia(alpha, Not{F: phi})})
		for v := range box {
			if box[v] != noDia[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickGradeMonotone: ⟨α⟩≥(k+1) φ implies ⟨α⟩≥k φ everywhere.
func TestQuickGradeMonotone(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := modelFromSeed(seed)
		phi := RandomFormula(rng, 2, 3, true)
		k := int(kRaw%4) + 1
		alpha := kripke.Index{I: kripke.Star, J: kripke.Star}
		hi := Eval(m, DiaGeq(alpha, k+1, phi))
		lo := Eval(m, DiaGeq(alpha, k, phi))
		for v := range hi {
			if hi[v] && !lo[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickParsePrintFixpoint: parsing a printed formula prints the same.
func TestQuickParsePrintFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phi := RandomFormula(rng, 4, 3, true)
		parsed, err := Parse(phi.String())
		if err != nil {
			return false
		}
		return parsed.String() == phi.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSimplifyIdempotent: Simplify(Simplify(φ)) = Simplify(φ) and the
// size never grows.
func TestQuickSimplifyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phi := RandomFormula(rng, 4, 3, true)
		once := Simplify(phi)
		twice := Simplify(once)
		return Equal(once, twice) && Size(once) <= Size(phi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickModalDepthMonotone: md never increases under Simplify or NNF...
// NNF preserves or keeps md; Simplify may only shrink it.
func TestQuickDepthUnderTransforms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phi := RandomFormula(rng, 4, 3, true)
		return ModalDepth(Simplify(phi)) <= ModalDepth(phi) &&
			ModalDepth(NNF(phi)) <= ModalDepth(phi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
