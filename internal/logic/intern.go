package logic

// intern.go is the hash-consed formula DAG behind the fast evaluation
// path. An Interner deduplicates structurally equal subformulas into a
// dense-id arena: building the same subformula twice returns the same ID,
// so structural equality is integer equality, memo tables are plain
// slices indexed by ID, and the shared subformulas ubiquitous in compiled
// and characteristic formulas exist exactly once.
//
// IDs are assigned in construction order, so every node's children have
// strictly smaller IDs than the node itself — the arena IS a topological
// order, and every traversal in the package is an iterative forward (or
// marked-backward) pass instead of a recursion over interface values.

import (
	"fmt"

	"weakmodels/internal/kripke"
)

// ID is a dense interned-formula identifier, valid for the Interner that
// produced it. Children always have smaller IDs than their parents.
type ID int32

// NoID is the invalid ID.
const NoID ID = -1

// Op is the connective of an interned node.
type Op uint8

// The seven node kinds, mirroring the Formula implementations.
const (
	OpTop Op = iota
	OpBot
	OpProp
	OpNot
	OpAnd
	OpOr
	OpDia
)

// Node is the immutable record of one interned subformula.
type Node struct {
	Op   Op
	L, R ID           // Not/Dia child in L; And/Or children in L, R
	Idx  kripke.Index // Dia: relation label
	K    int32        // Dia: grade
	Prop string       // Prop: proposition name
}

// nodeKey is the dedup key: the node sans anything derived.
type nodeKey struct {
	op   Op
	l, r ID
	i, j int32
	k    int32
	prop string
}

// Interner owns a hash-consed formula arena. The zero value is not ready;
// use NewInterner. An Interner is not safe for concurrent mutation;
// concurrent reads (Node, Len, Formula) are fine once built.
type Interner struct {
	nodes []Node
	ids   map[nodeKey]ID
}

// NewInterner returns an empty arena.
func NewInterner() *Interner {
	return &Interner{ids: make(map[nodeKey]ID)}
}

// Len returns the number of distinct interned subformulas.
func (in *Interner) Len() int { return len(in.nodes) }

// Node returns the record of id. The ID must come from this Interner.
func (in *Interner) Node(id ID) Node { return in.nodes[id] }

func (in *Interner) put(k nodeKey, n Node) ID {
	if id, ok := in.ids[k]; ok {
		return id
	}
	id := ID(len(in.nodes))
	in.nodes = append(in.nodes, n)
	in.ids[k] = id
	return id
}

// Top interns ⊤.
func (in *Interner) Top() ID { return in.put(nodeKey{op: OpTop}, Node{Op: OpTop}) }

// Bot interns ⊥.
func (in *Interner) Bot() ID { return in.put(nodeKey{op: OpBot}, Node{Op: OpBot}) }

// Prop interns an atomic proposition.
func (in *Interner) Prop(name string) ID {
	return in.put(nodeKey{op: OpProp, prop: name}, Node{Op: OpProp, Prop: name})
}

// Not interns ¬f.
func (in *Interner) Not(f ID) ID {
	return in.put(nodeKey{op: OpNot, l: f}, Node{Op: OpNot, L: f})
}

// And interns f ∧ g.
func (in *Interner) And(f, g ID) ID {
	return in.put(nodeKey{op: OpAnd, l: f, r: g}, Node{Op: OpAnd, L: f, R: g})
}

// Or interns f ∨ g.
func (in *Interner) Or(f, g ID) ID {
	return in.put(nodeKey{op: OpOr, l: f, r: g}, Node{Op: OpOr, L: f, R: g})
}

// Dia interns ⟨α⟩≥k f.
func (in *Interner) Dia(idx kripke.Index, k int, f ID) ID {
	return in.put(
		nodeKey{op: OpDia, l: f, i: int32(idx.I), j: int32(idx.J), k: int32(k)},
		Node{Op: OpDia, L: f, Idx: idx, K: int32(k)})
}

// Box interns ¬⟨α⟩¬f, the same desugaring as the AST-level Box.
func (in *Interner) Box(idx kripke.Index, f ID) ID {
	return in.Not(in.Dia(idx, 1, in.Not(f)))
}

// BigAnd folds a left-associated conjunction; empty is ⊤ — the interned
// mirror of the AST-level BigAnd, so renderings agree.
func (in *Interner) BigAnd(fs ...ID) ID {
	if len(fs) == 0 {
		return in.Top()
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = in.And(out, f)
	}
	return out
}

// BigOr folds a left-associated disjunction; empty is ⊥.
func (in *Interner) BigOr(fs ...ID) ID {
	if len(fs) == 0 {
		return in.Bot()
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = in.Or(out, f)
	}
	return out
}

// Intern hash-conses an AST formula into the arena. Structurally equal
// formulas — however built — intern to the same ID.
func (in *Interner) Intern(f Formula) ID {
	switch x := f.(type) {
	case Top:
		return in.Top()
	case Bot:
		return in.Bot()
	case Prop:
		return in.Prop(x.Name)
	case Not:
		return in.Not(in.Intern(x.F))
	case And:
		return in.And(in.Intern(x.L), in.Intern(x.R))
	case Or:
		return in.Or(in.Intern(x.L), in.Intern(x.R))
	case Diamond:
		return in.Dia(x.Idx, x.K, in.Intern(x.F))
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
}

// Formula reconstructs the AST of id. Shared nodes become shared Formula
// interface values, so the reconstruction is linear in the DAG — but a
// subsequent String() renders the unfolded tree, which can be much
// larger; render only small formulas.
func (in *Interner) Formula(id ID) Formula {
	memo := make([]Formula, id+1)
	for i := ID(0); i <= id; i++ {
		switch n := in.nodes[i]; n.Op {
		case OpTop:
			memo[i] = Top{}
		case OpBot:
			memo[i] = Bot{}
		case OpProp:
			memo[i] = Prop{Name: n.Prop}
		case OpNot:
			memo[i] = Not{F: memo[n.L]}
		case OpAnd:
			memo[i] = And{L: memo[n.L], R: memo[n.R]}
		case OpOr:
			memo[i] = Or{L: memo[n.L], R: memo[n.R]}
		case OpDia:
			memo[i] = Diamond{Idx: n.Idx, K: int(n.K), F: memo[n.L]}
		}
	}
	return memo[id]
}

// String renders id via AST reconstruction. For diagnostics and small
// formulas only: rendering unfolds the DAG into a tree.
func (in *Interner) String(id ID) string { return in.Formula(id).String() }

// ModalDepthID returns md(id) with one forward pass over the arena
// prefix — no recursion, so deeply shared DAGs stay linear.
func (in *Interner) ModalDepthID(id ID) int {
	depth := make([]int32, id+1)
	for i := ID(0); i <= id; i++ {
		switch n := in.nodes[i]; n.Op {
		case OpNot:
			depth[i] = depth[n.L]
		case OpAnd, OpOr:
			depth[i] = max(depth[n.L], depth[n.R])
		case OpDia:
			depth[i] = depth[n.L] + 1
		}
	}
	return int(depth[id])
}
