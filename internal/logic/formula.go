// Package logic implements the modal logics of Section 4.1: basic modal
// logic ML, graded modal logic GML, multimodal logic MML and graded
// multimodal logic GMML, over the relation signatures of the Kripke models
// K_{a,b}(G,p).
//
// Formulas form an interface-based AST (Go's substitute for sum types —
// see the repro note in DESIGN.md): Prop, Top, Bot, Not, And, Or and
// Diamond. A Diamond carries a relation label and a grade k; ⟨α⟩φ is
// represented as ⟨α⟩≥1 φ, which is semantically identical, and the Graded
// flag of Fragment reports whether any grade other than 1 occurs.
package logic

import (
	"fmt"
	"strings"

	"weakmodels/internal/kripke"
)

// Formula is a modal formula. Implementations are immutable.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// Prop is an atomic proposition, e.g. q3.
type Prop struct {
	Name string
}

// Top is the constant ⊤.
type Top struct{}

// Bot is the constant ⊥.
type Bot struct{}

// Not is negation.
type Not struct {
	F Formula
}

// And is binary conjunction.
type And struct {
	L, R Formula
}

// Or is binary disjunction.
type Or struct {
	L, R Formula
}

// Diamond is the graded multimodal diamond ⟨α⟩≥K φ. K must be ≥ 0;
// K = 1 renders as the plain diamond ⟨α⟩.
type Diamond struct {
	Idx kripke.Index
	K   int
	F   Formula
}

func (Prop) isFormula()    {}
func (Top) isFormula()     {}
func (Bot) isFormula()     {}
func (Not) isFormula()     {}
func (And) isFormula()     {}
func (Or) isFormula()      {}
func (Diamond) isFormula() {}

// String renders the formula with Unicode connectives; Parse inverts it.
func (f Prop) String() string { return f.Name }

// String renders ⊤.
func (Top) String() string { return "true" }

// String renders ⊥.
func (Bot) String() string { return "false" }

// String renders negation.
func (f Not) String() string { return "!" + paren(f.F) }

// String renders conjunction.
func (f And) String() string { return paren(f.L) + " & " + paren(f.R) }

// String renders disjunction.
func (f Or) String() string { return paren(f.L) + " | " + paren(f.R) }

// String renders a diamond, e.g. "<2,1>phi", "<*,1>=3 phi".
func (f Diamond) String() string {
	label := fmt.Sprintf("<%s,%s>", starIdx(f.Idx.I), starIdx(f.Idx.J))
	if f.K != 1 {
		label += fmt.Sprintf("=%d", f.K)
	}
	return label + " " + paren(f.F)
}

func starIdx(i int) string {
	if i == kripke.Star {
		return "*"
	}
	return fmt.Sprintf("%d", i)
}

func paren(f Formula) string {
	switch f.(type) {
	case Prop, Top, Bot, Not:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// Box returns ¬⟨α⟩¬φ (the dual □).
func Box(idx kripke.Index, f Formula) Formula {
	return Not{F: Diamond{Idx: idx, K: 1, F: Not{F: f}}}
}

// Dia returns the plain diamond ⟨α⟩φ.
func Dia(idx kripke.Index, f Formula) Formula { return Diamond{Idx: idx, K: 1, F: f} }

// DiaGeq returns the graded diamond ⟨α⟩≥k φ.
func DiaGeq(idx kripke.Index, k int, f Formula) Formula { return Diamond{Idx: idx, K: k, F: f} }

// BigAnd folds a conjunction; the empty conjunction is ⊤.
func BigAnd(fs ...Formula) Formula {
	if len(fs) == 0 {
		return Top{}
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = And{L: out, R: f}
	}
	return out
}

// BigOr folds a disjunction; the empty disjunction is ⊥.
func BigOr(fs ...Formula) Formula {
	if len(fs) == 0 {
		return Bot{}
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = Or{L: out, R: f}
	}
	return out
}

// ModalDepth returns md(φ): the deepest nesting of diamonds. It equals the
// running time of the corresponding local algorithm (Table 3).
func ModalDepth(f Formula) int {
	switch x := f.(type) {
	case Prop, Top, Bot:
		return 0
	case Not:
		return ModalDepth(x.F)
	case And:
		return maxInt(ModalDepth(x.L), ModalDepth(x.R))
	case Or:
		return maxInt(ModalDepth(x.L), ModalDepth(x.R))
	case Diamond:
		return ModalDepth(x.F) + 1
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
}

// Size returns the number of AST nodes.
func Size(f Formula) int {
	switch x := f.(type) {
	case Prop, Top, Bot:
		return 1
	case Not:
		return Size(x.F) + 1
	case And:
		return Size(x.L) + Size(x.R) + 1
	case Or:
		return Size(x.L) + Size(x.R) + 1
	case Diamond:
		return Size(x.F) + 1
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
}

// Subformulas returns the subformula closure Σ of f (including f itself),
// deduplicated by rendered form, in deterministic pre-order (first
// occurrence during a depth-first left-to-right walk).
func Subformulas(f Formula) []Formula {
	seen := make(map[string]bool)
	var out []Formula
	var walk func(Formula)
	walk = func(g Formula) {
		key := g.String()
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, g)
		switch x := g.(type) {
		case Not:
			walk(x.F)
		case And:
			walk(x.L)
			walk(x.R)
		case Or:
			walk(x.L)
			walk(x.R)
		case Diamond:
			walk(x.F)
		}
	}
	walk(f)
	return out
}

// Fragment describes which of the four logics a formula needs.
type Fragment struct {
	// Graded is true when a grade k ≠ 1 occurs (GML/GMML needed).
	Graded bool
	// Multimodal is true when a label other than (∗,∗) occurs (MML/GMML).
	Multimodal bool
}

// String names the minimal logic: ML, GML, MML or GMML.
func (fr Fragment) String() string {
	switch {
	case fr.Graded && fr.Multimodal:
		return "GMML"
	case fr.Graded:
		return "GML"
	case fr.Multimodal:
		return "MML"
	default:
		return "ML"
	}
}

// ClassifyFragment computes the minimal logic containing f.
func ClassifyFragment(f Formula) Fragment {
	var fr Fragment
	var walk func(Formula)
	walk = func(g Formula) {
		switch x := g.(type) {
		case Not:
			walk(x.F)
		case And:
			walk(x.L)
			walk(x.R)
		case Or:
			walk(x.L)
			walk(x.R)
		case Diamond:
			if x.K != 1 {
				fr.Graded = true
			}
			if x.Idx != (kripke.Index{I: kripke.Star, J: kripke.Star}) {
				fr.Multimodal = true
			}
			walk(x.F)
		}
	}
	walk(f)
	return fr
}

// Labels returns the distinct relation labels occurring in f, in order of
// first occurrence during a depth-first left-to-right walk.
func Labels(f Formula) []kripke.Index {
	seen := make(map[kripke.Index]bool)
	var out []kripke.Index
	var walk func(Formula)
	walk = func(g Formula) {
		switch x := g.(type) {
		case Not:
			walk(x.F)
		case And:
			walk(x.L)
			walk(x.R)
		case Or:
			walk(x.L)
			walk(x.R)
		case Diamond:
			if !seen[x.Idx] {
				seen[x.Idx] = true
				out = append(out, x.Idx)
			}
			walk(x.F)
		}
	}
	walk(f)
	return out
}

// Equal reports structural equality.
func Equal(a, b Formula) bool {
	switch x := a.(type) {
	case Top:
		_, ok := b.(Top)
		return ok
	case Bot:
		_, ok := b.(Bot)
		return ok
	case Prop:
		y, ok := b.(Prop)
		return ok && x.Name == y.Name
	case Not:
		y, ok := b.(Not)
		return ok && Equal(x.F, y.F)
	case And:
		y, ok := b.(And)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case Or:
		y, ok := b.(Or)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case Diamond:
		y, ok := b.(Diamond)
		return ok && x.Idx == y.Idx && x.K == y.K && Equal(x.F, y.F)
	default:
		return a.String() == b.String()
	}
}

// Simplify performs constant folding and double-negation elimination. It
// preserves semantics and never increases size.
func Simplify(f Formula) Formula {
	switch x := f.(type) {
	case Not:
		inner := Simplify(x.F)
		switch y := inner.(type) {
		case Top:
			return Bot{}
		case Bot:
			return Top{}
		case Not:
			return y.F
		}
		return Not{F: inner}
	case And:
		l, r := Simplify(x.L), Simplify(x.R)
		if isBot(l) || isBot(r) {
			return Bot{}
		}
		if isTop(l) {
			return r
		}
		if isTop(r) {
			return l
		}
		if Equal(l, r) {
			return l
		}
		return And{L: l, R: r}
	case Or:
		l, r := Simplify(x.L), Simplify(x.R)
		if isTop(l) || isTop(r) {
			return Top{}
		}
		if isBot(l) {
			return r
		}
		if isBot(r) {
			return l
		}
		if Equal(l, r) {
			return l
		}
		return Or{L: l, R: r}
	case Diamond:
		inner := Simplify(x.F)
		if x.K == 0 {
			return Top{} // at least zero successors satisfy anything
		}
		if isBot(inner) {
			return Bot{}
		}
		return Diamond{Idx: x.Idx, K: x.K, F: inner}
	default:
		return f
	}
}

func isTop(f Formula) bool { _, ok := f.(Top); return ok }
func isBot(f Formula) bool { _, ok := f.(Bot); return ok }

// NNF rewrites f into negation normal form over the connectives
// {Prop, ¬Prop, ⊤, ⊥, ∧, ∨, ⟨α⟩≥k, its negation}. Negated diamonds stay as
// Not{Diamond} (the logic has no primitive dual for graded diamonds).
func NNF(f Formula) Formula {
	switch x := f.(type) {
	case Not:
		switch y := x.F.(type) {
		case Top:
			return Bot{}
		case Bot:
			return Top{}
		case Not:
			return NNF(y.F)
		case And:
			return Or{L: NNF(Not{F: y.L}), R: NNF(Not{F: y.R})}
		case Or:
			return And{L: NNF(Not{F: y.L}), R: NNF(Not{F: y.R})}
		case Diamond:
			return Not{F: Diamond{Idx: y.Idx, K: y.K, F: NNF(y.F)}}
		default:
			return x
		}
	case And:
		return And{L: NNF(x.L), R: NNF(x.R)}
	case Or:
		return Or{L: NNF(x.L), R: NNF(x.R)}
	case Diamond:
		return Diamond{Idx: x.Idx, K: x.K, F: NNF(x.F)}
	default:
		return f
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DegreeIs returns the formula expressing deg(v) = d over the valuation
// Φ_Δ = {q_1..q_Δ}: q_d for d ≥ 1, and ∧_i ¬q_i for d = 0 (Φ_Δ has no q_0).
func DegreeIs(d, delta int) Formula {
	if d >= 1 {
		return Prop{Name: kripke.DegreeProp(d)}
	}
	negs := make([]Formula, 0, delta)
	for i := 1; i <= delta; i++ {
		negs = append(negs, Not{F: Prop{Name: kripke.DegreeProp(i)}})
	}
	return BigAnd(negs...)
}

// Render produces a parse-ready single-line form (same as String but with a
// stable name for docs and hashing).
func Render(f Formula) string {
	var b strings.Builder
	b.WriteString(f.String())
	return b.String()
}
