package logic

import (
	"math/rand"

	"weakmodels/internal/kripke"
)

// RandomFormula draws a random formula for property tests: maximum AST
// depth `depth`, port indices in [1,delta] or ∗, grades in [1,3] when
// graded is true. Propositions are the degree propositions q_1..q_delta.
func RandomFormula(rng *rand.Rand, depth, delta int, graded bool) Formula {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return Top{}
		case 1:
			return Bot{}
		default:
			return Prop{Name: kripke.DegreeProp(1 + rng.Intn(delta))}
		}
	}
	switch rng.Intn(4) {
	case 0:
		return Not{F: RandomFormula(rng, depth-1, delta, graded)}
	case 1:
		return And{
			L: RandomFormula(rng, depth-1, delta, graded),
			R: RandomFormula(rng, depth-1, delta, graded),
		}
	case 2:
		return Or{
			L: RandomFormula(rng, depth-1, delta, graded),
			R: RandomFormula(rng, depth-1, delta, graded),
		}
	default:
		k := 1
		if graded {
			k = 1 + rng.Intn(3)
		}
		return Diamond{
			Idx: randomIndex(rng, delta),
			K:   k,
			F:   RandomFormula(rng, depth-1, delta, graded),
		}
	}
}

// RandomFormulaForVariant draws a formula whose labels fit the given model
// variant (so that it is in the right logic for the corresponding class).
func RandomFormulaForVariant(rng *rand.Rand, depth, delta int, graded bool, variant kripke.Variant) Formula {
	f := RandomFormula(rng, depth, delta, graded)
	return retargetLabels(f, rng, delta, variant)
}

func retargetLabels(f Formula, rng *rand.Rand, delta int, variant kripke.Variant) Formula {
	switch x := f.(type) {
	case Not:
		return Not{F: retargetLabels(x.F, rng, delta, variant)}
	case And:
		return And{
			L: retargetLabels(x.L, rng, delta, variant),
			R: retargetLabels(x.R, rng, delta, variant),
		}
	case Or:
		return Or{
			L: retargetLabels(x.L, rng, delta, variant),
			R: retargetLabels(x.R, rng, delta, variant),
		}
	case Diamond:
		var idx kripke.Index
		switch variant {
		case kripke.VariantPP:
			idx = kripke.Index{I: 1 + rng.Intn(delta), J: 1 + rng.Intn(delta)}
		case kripke.VariantMP:
			idx = kripke.Index{I: kripke.Star, J: 1 + rng.Intn(delta)}
		case kripke.VariantPM:
			idx = kripke.Index{I: 1 + rng.Intn(delta), J: kripke.Star}
		default:
			idx = kripke.Index{I: kripke.Star, J: kripke.Star}
		}
		return Diamond{Idx: idx, K: x.K, F: retargetLabels(x.F, rng, delta, variant)}
	default:
		return f
	}
}

func randomIndex(rng *rand.Rand, delta int) kripke.Index {
	pick := func() int {
		if rng.Intn(3) == 0 {
			return kripke.Star
		}
		return 1 + rng.Intn(delta)
	}
	return kripke.Index{I: pick(), J: pick()}
}
