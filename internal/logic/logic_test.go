package logic

import (
	"math/rand"
	"testing"

	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/port"
)

func star(i, j int) kripke.Index { return kripke.Index{I: i, J: j} }

func TestStringRendering(t *testing.T) {
	cases := []struct {
		f    Formula
		want string
	}{
		{Prop{Name: "q3"}, "q3"},
		{Top{}, "true"},
		{Bot{}, "false"},
		{Not{F: Prop{Name: "p"}}, "!p"},
		{And{L: Prop{Name: "p"}, R: Prop{Name: "q"}}, "p & q"},
		{Or{L: Prop{Name: "p"}, R: Prop{Name: "q"}}, "p | q"},
		{Dia(star(2, 1), Prop{Name: "p"}), "<2,1> p"},
		{DiaGeq(star(0, 1), 3, Prop{Name: "p"}), "<*,1>=3 p"},
		{Dia(star(0, 0), Prop{Name: "p"}), "<*,*> p"},
	}
	for _, tc := range cases {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for i := 0; i < 400; i++ {
		f := RandomFormula(rng, 4, 3, true)
		got, err := Parse(f.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", f.String(), err)
		}
		if !Equal(f, got) {
			t.Fatalf("round trip: %q became %q", f.String(), got.String())
		}
	}
}

func TestParseSurfaceForms(t *testing.T) {
	good := map[string]string{
		"p & q | r":      "(p & q) | r", // & binds tighter
		"p | q & r":      "p | (q & r)",
		"!p & q":         "(!p) & q",
		"[1,2] p":        "!(<1,2> (!p))",
		"< * , 3 >=2 q1": "<*,3>=2 q1",
		"((p))":          "p",
		"true & false":   "true & false",
		"<1,1> <2,2> p":  "<1,1> (<2,2> p)",
	}
	for src, canon := range good {
		f, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		want := MustParse(canon)
		if !Equal(f, want) {
			t.Errorf("Parse(%q) = %q, want %q", src, f.String(), want.String())
		}
	}
	bad := []string{"", "(", "p &", "<1> p", "<0,1> p", "<1,2>= p", "p q", "1p", "!"}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestModalDepthAndSize(t *testing.T) {
	f := And{
		L: Dia(star(1, 1), Dia(star(2, 2), Prop{Name: "p"})),
		R: Not{F: Dia(star(1, 2), Prop{Name: "q"})},
	}
	if ModalDepth(f) != 2 {
		t.Errorf("md = %d, want 2", ModalDepth(f))
	}
	if Size(f) != 7 {
		t.Errorf("size = %d, want 7", Size(f))
	}
	if ModalDepth(Prop{Name: "p"}) != 0 {
		t.Error("atomic depth should be 0")
	}
}

func TestSubformulas(t *testing.T) {
	f := And{L: Prop{Name: "p"}, R: Not{F: Prop{Name: "p"}}}
	subs := Subformulas(f)
	if len(subs) != 3 { // p, !p, p & !p — p deduplicated
		t.Errorf("|Σ| = %d, want 3", len(subs))
	}
}

func TestFragmentClassification(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"<*,*> p", "ML"},
		{"<*,*>=2 p", "GML"},
		{"<1,*> p", "MML"},
		{"<*,1>=2 p", "GMML"},
		{"p & q", "ML"},
	}
	for _, tc := range cases {
		if got := ClassifyFragment(MustParse(tc.src)).String(); got != tc.want {
			t.Errorf("fragment(%q) = %s, want %s", tc.src, got, tc.want)
		}
	}
}

func TestEvalOnConcreteModel(t *testing.T) {
	// Model: 0 → 1, 0 → 2 under (∗,∗); p true at 1 and 2, q at 1 only.
	m := kripke.NewModel(3)
	alpha := star(0, 0)
	m.AddEdge(alpha, 0, 1)
	m.AddEdge(alpha, 0, 2)
	m.SetProp("p", 1)
	m.SetProp("p", 2)
	m.SetProp("q", 1)

	cases := []struct {
		src  string
		node int
		want bool
	}{
		{"<*,*> p", 0, true},
		{"<*,*>=2 p", 0, true},
		{"<*,*>=3 p", 0, false},
		{"<*,*> q", 0, true},
		{"<*,*>=2 q", 0, false},
		{"<*,*> p", 1, false}, // no successors
		{"[*,*] p", 0, true},
		{"[*,*] q", 0, false},
		{"[*,*] p", 1, true}, // vacuous
		{"!<*,*> (p & q)", 0, false},
		{"<*,*>=0 false", 0, true}, // ≥0 of anything
	}
	for _, tc := range cases {
		if got := Sat(m, tc.node, MustParse(tc.src)); got != tc.want {
			t.Errorf("Sat(%d, %q) = %v, want %v", tc.node, tc.src, got, tc.want)
		}
	}
	if ts := TruthSet(m, MustParse("p")); len(ts) != 2 || ts[0] != 1 || ts[1] != 2 {
		t.Errorf("TruthSet(p) = %v", ts)
	}
}

func TestEvalDegreePropsOnGraph(t *testing.T) {
	g := graph.Star(3)
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	// "I am a leaf attached to the centre of a 3-star": q1 ∧ ⟨∗,∗⟩q3.
	f := MustParse("q1 & <*,*> q3")
	val := Eval(m, f)
	if val[0] {
		t.Error("centre satisfies leaf formula")
	}
	for v := 1; v <= 3; v++ {
		if !val[v] {
			t.Errorf("leaf %d fails leaf formula", v)
		}
	}
	// Counting: the centre has exactly 3 leaf neighbours.
	if !Sat(m, 0, MustParse("<*,*>=3 q1")) || Sat(m, 0, MustParse("<*,*>=4 q1")) {
		t.Error("graded counting wrong at centre")
	}
}

func TestSimplify(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"p & true", "p"},
		{"p & false", "false"},
		{"p | true", "true"},
		{"p | false", "p"},
		{"!!p", "p"},
		{"!true", "false"},
		{"<1,1> false", "false"},
		{"<1,1>=0 p", "true"},
		{"p & p", "p"},
		{"p | p", "p"},
	}
	for _, tc := range cases {
		got := Simplify(MustParse(tc.src))
		if !Equal(got, MustParse(tc.want)) {
			t.Errorf("Simplify(%q) = %q, want %q", tc.src, got.String(), tc.want)
		}
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := graph.Figure1Graph()
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantPP)
	for i := 0; i < 200; i++ {
		f := RandomFormula(rng, 4, 3, true)
		a, b := Eval(m, f), Eval(m, Simplify(f))
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("Simplify changed semantics of %q at %d", f.String(), v)
			}
		}
	}
}

func TestNNFPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	g := graph.Cycle(5)
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantPP)
	for i := 0; i < 200; i++ {
		f := RandomFormula(rng, 4, 2, true)
		a, b := Eval(m, f), Eval(m, NNF(f))
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("NNF changed semantics of %q at %d", f.String(), v)
			}
		}
	}
}

func TestDegreeIs(t *testing.T) {
	g := graph.Path(3) // degrees 1,2,1
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	if !Sat(m, 1, DegreeIs(2, 2)) || Sat(m, 0, DegreeIs(2, 2)) {
		t.Error("DegreeIs(2) wrong")
	}
	// Degree-0 formula on a graph with an isolated node.
	iso := graph.MustNew(2, []graph.Edge{})
	mi := kripke.FromPorts(port.Canonical(iso), kripke.VariantMM)
	if !Sat(mi, 0, DegreeIs(0, 2)) {
		t.Error("isolated node fails DegreeIs(0)")
	}
	if Sat(m, 1, DegreeIs(0, 2)) {
		t.Error("degree-2 node satisfies DegreeIs(0)")
	}
}

func TestLabels(t *testing.T) {
	f := MustParse("<1,2> p & <*,1> q | <1,2> r")
	ls := Labels(f)
	if len(ls) != 2 {
		t.Errorf("labels = %v, want 2 distinct", ls)
	}
}

func BenchmarkEval(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	f := RandomFormula(rng, 8, 3, true)
	g := graph.Torus(8, 8)
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantPP)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Eval(m, f)
	}
}
