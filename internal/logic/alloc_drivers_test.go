package logic

// alloc_drivers_test.go backs the generated TestWeakvetAllocPins (see
// zz_generated_weakvet_alloc_test.go): one driver per //weakvet:noalloc
// function, keyed by receiver-qualified name. Each driver does its setup
// once and returns the hot closure that testing.AllocsPerRun measures.

import (
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/port"
)

// weakvetHotEval builds an evaluator over a torus model with a formula
// exercising every node kind, primed so repeated Reset+Eval cycles run
// the full plan without allocating.
func weakvetHotEval() (*Evaluator, ID) {
	g := graph.Torus(8, 8)
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	in := NewInterner()
	star := kripke.Index{}
	q := in.Prop(kripke.DegreeProp(4))
	dia := in.Dia(star, 2, in.Or(q, in.Not(in.Dia(star, 1, q))))
	box := in.Box(star, in.And(q, in.Dia(star, 1, q)))
	id := in.And(in.And(dia, box), in.Or(in.Top(), in.Bot()))
	e := NewEvaluator(m, in)
	e.Eval(id) // size every memo row
	return e, id
}

// weakvetWords matches the torus model above: 64 states, one word.
const weakvetWords = 1

var weakvetAllocDrivers = map[string]func() func(){
	"(*Evaluator).run": func() func() {
		e, id := weakvetHotEval()
		return func() {
			e.Reset()
			e.Eval(id)
		}
	},
	"fillInto": func() func() {
		dst := make([]uint64, weakvetWords)
		return func() { fillInto(dst, ^uint64(0)) }
	},
	"zeroInto": func() func() {
		dst := make([]uint64, weakvetWords)
		return func() { zeroInto(dst) }
	},
	"notInto": func() func() {
		dst := make([]uint64, weakvetWords)
		a := make([]uint64, weakvetWords)
		return func() { notInto(dst, a, ^uint64(0)) }
	},
	"andInto": func() func() {
		dst := make([]uint64, weakvetWords)
		a := make([]uint64, weakvetWords)
		b := make([]uint64, weakvetWords)
		return func() { andInto(dst, a, b) }
	},
	"orInto": func() func() {
		dst := make([]uint64, weakvetWords)
		a := make([]uint64, weakvetWords)
		b := make([]uint64, weakvetWords)
		return func() { orInto(dst, a, b) }
	},
	"diamondInto": func() func() {
		e, _ := weakvetHotEval()
		off, succ, ok := e.csr.Rel(kripke.Index{})
		if !ok {
			panic("weakvet driver: torus model lost its (∗,∗) relation")
		}
		dst := make([]uint64, e.w)
		child := make([]uint64, e.w)
		for i := range child {
			child[i] = 0xAAAAAAAAAAAAAAAA
		}
		return func() { diamondInto(dst, off, succ, child, 2) }
	},
	"diamondPredInto": func() func() {
		e, _ := weakvetHotEval()
		poff, pred, ok := e.csr.Pred(kripke.Index{})
		if !ok {
			panic("weakvet driver: torus model lost its (∗,∗) relation")
		}
		dst := make([]uint64, e.w)
		child := make([]uint64, e.w)
		for i := range child {
			child[i] = 0x0000000100010001 // sparse, the kernel's shape
		}
		return func() { diamondPredInto(dst, poff, pred, child) }
	},
	"popCount": func() func() {
		row := make([]uint64, weakvetWords)
		row[0] = 0xAAAAAAAAAAAAAAAA
		var sink int
		return func() { sink = popCount(row); _ = sink }
	},
}
