package logic

// FuzzParseFormula: any input Parse accepts must round-trip — the
// rendered form re-parses to a formula with the identical rendering and
// the identical interned ID. The canonical surface syntax is therefore a
// fixpoint of parse∘String, which is what every string-keyed consumer
// (journals, CLI flags, test fixtures) relies on.

import "testing"

func FuzzParseFormula(f *testing.F) {
	for _, seed := range []string{
		"true",
		"false",
		"q1",
		"!q2 & (q1 | true)",
		"<*,*> q1",
		"<1,2>=3 (q1 & !q2)",
		"[*,1] (q1 | <2,*>=2 q3)",
		"!(<*,*> q1 & [1,1] false)",
		"a_b2 | !true & <3,4> q9",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		parsed, err := Parse(src)
		if err != nil {
			t.Skip()
		}
		rendered := parsed.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered form %q of accepted input %q does not re-parse: %v", rendered, src, err)
		}
		if got := again.String(); got != rendered {
			t.Fatalf("print-parse not a fixpoint: %q → %q", rendered, got)
		}
		if !Equal(parsed, again) {
			t.Fatalf("re-parse of %q is not structurally equal", rendered)
		}
		in := NewInterner()
		if id1, id2 := in.Intern(parsed), in.Intern(again); id1 != id2 {
			t.Fatalf("re-parse of %q interned to a different ID (%d vs %d)", rendered, id1, id2)
		}
	})
}
