package logic

// evalbits_test.go pins the bitset evaluator to the seed's AST-walking
// Eval — reimplemented verbatim below as legacyEval — and checks the
// memo-across-calls and metrics behavior of the Evaluator.

import (
	"fmt"
	"math/rand"
	"testing"

	"weakmodels/internal/kripke"
	"weakmodels/internal/obs"
)

// legacyEval is the seed-era Eval: recursive AST walk memoized on
// rendered subformulas through a map.
func legacyEval(m *kripke.Model, f Formula) []bool {
	memo := make(map[string][]bool)
	return legacyEvalMemo(m, f, memo)
}

func legacyEvalMemo(m *kripke.Model, f Formula, memo map[string][]bool) []bool {
	key := f.String()
	if v, ok := memo[key]; ok {
		return v
	}
	n := m.N()
	out := make([]bool, n)
	switch x := f.(type) {
	case Top:
		for i := range out {
			out[i] = true
		}
	case Bot:
	case Prop:
		for v := 0; v < n; v++ {
			out[v] = m.Prop(x.Name, v)
		}
	case Not:
		inner := legacyEvalMemo(m, x.F, memo)
		for v := 0; v < n; v++ {
			out[v] = !inner[v]
		}
	case And:
		l := legacyEvalMemo(m, x.L, memo)
		r := legacyEvalMemo(m, x.R, memo)
		for v := 0; v < n; v++ {
			out[v] = l[v] && r[v]
		}
	case Or:
		l := legacyEvalMemo(m, x.L, memo)
		r := legacyEvalMemo(m, x.R, memo)
		for v := 0; v < n; v++ {
			out[v] = l[v] || r[v]
		}
	case Diamond:
		inner := legacyEvalMemo(m, x.F, memo)
		for v := 0; v < n; v++ {
			count := 0
			for _, w := range m.Succ(x.Idx, v) {
				if inner[w] {
					count++
					if count >= x.K {
						break
					}
				}
			}
			out[v] = count >= x.K
		}
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
	memo[key] = out
	return out
}

// TestEvalMatchesLegacy pins the bitset path to the seed implementation
// across random models and random formulas of both fragments, including
// grade-0 diamonds (vacuously true) and labels absent from the model.
func TestEvalMatchesLegacy(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := modelFromSeed(seed)
		for trial := 0; trial < 4; trial++ {
			f := RandomFormula(rng, 1+rng.Intn(4), 4, trial%2 == 0)
			want := legacyEval(m, f)
			got := Eval(m, f)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("seed %d %q: state %d = %v, legacy %v", seed, f, v, got[v], want[v])
				}
			}
		}
		// Edge cases the generator rarely emits.
		star := kripke.Index{}
		missing := kripke.Index{I: 7, J: 9}
		for _, f := range []Formula{
			Diamond{Idx: star, K: 0, F: Bot{}},
			Diamond{Idx: missing, K: 1, F: Top{}},
			Not{F: Diamond{Idx: missing, K: 2, F: Top{}}},
			Box(missing, Bot{}),
		} {
			want := legacyEval(m, f)
			got := Eval(m, f)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("seed %d %q: state %d = %v, legacy %v", seed, f, v, got[v], want[v])
				}
			}
		}
	}
}

// TestEvaluatorMemoAcrossCalls checks that an Evaluator shared across
// formulas returns correct truth sets when later formulas reuse earlier
// subformulas, and that Reset forces recomputation to the same result.
func TestEvaluatorMemoAcrossCalls(t *testing.T) {
	m := modelFromSeed(11)
	in := NewInterner()
	ev := NewEvaluator(m, in)
	rng := rand.New(rand.NewSource(11))
	a := RandomFormula(rng, 3, 4, true)
	b := RandomFormula(rng, 3, 4, true)
	combined := And{L: a, R: Not{F: b}}
	for _, f := range []Formula{a, b, combined, Or{L: combined, R: a}} {
		got := ev.Bools(in.Intern(f))
		want := legacyEval(m, f)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%q: state %d = %v, legacy %v", f, v, got[v], want[v])
			}
		}
	}
	ev.Reset()
	id := in.Intern(combined)
	got := ev.Bools(id)
	want := legacyEval(m, combined)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("after Reset: state %d = %v, legacy %v", v, got[v], want[v])
		}
	}
	if cnt := ev.Count(id); cnt != len(TruthSet(m, combined)) {
		t.Fatalf("Count = %d, want %d", cnt, len(TruthSet(m, combined)))
	}
}

// TestInternerDedup checks hash-consing: structurally equal formulas
// intern to the same ID, and reconstruction round-trips.
func TestInternerDedup(t *testing.T) {
	in := NewInterner()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		f := RandomFormula(rng, 4, 3, trial%2 == 0)
		id1 := in.Intern(f)
		id2 := in.Intern(MustParse(f.String()))
		if id1 != id2 {
			t.Fatalf("%q: interned to %d then %d", f, id1, id2)
		}
		if got := in.String(id1); got != f.String() {
			t.Fatalf("round-trip: %q became %q", f, got)
		}
		if got, want := in.ModalDepthID(id1), ModalDepth(f); got != want {
			t.Fatalf("%q: ModalDepthID = %d, ModalDepth = %d", f, got, want)
		}
	}
}

// TestEvalMetrics checks the weak_logic_* wiring with a manual clock.
func TestEvalMetrics(t *testing.T) {
	m := modelFromSeed(5)
	in := NewInterner()
	ev := NewEvaluator(m, in)
	reg := obs.NewMetrics()
	clk := &obs.ManualClock{}
	ev.AttachObs(&obs.Obs{Metrics: reg, Clock: clk})
	id := in.Intern(MustParse("<*,*>=2 q1 | !q2"))
	ev.Eval(id)
	if got := reg.Counter(MetricEvals, "").Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricEvals, got)
	}
	if got := reg.Counter(MetricEvalNodes, "").Value(); got <= 0 {
		t.Errorf("%s = %d, want > 0", MetricEvalNodes, got)
	}
	// A memo hit must not count as an eval.
	ev.Eval(id)
	if got := reg.Counter(MetricEvals, "").Value(); got != 1 {
		t.Errorf("after memo hit: %s = %d, want 1", MetricEvals, got)
	}
}
