// Package enc holds the tiny binary encoding vocabulary shared by the
// checkpoint/replay codecs: varints, length-prefixed byte strings and
// bools appended to byte slices, plus a sticky-error Reader for decoding.
// It exists so the schedule/fault generator state blobs, the engine's
// snapshot codec and the replay recording format all speak one dialect
// instead of three hand-rolled ones.
package enc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is reported by a Reader that ran out of bytes mid-value.
var ErrTruncated = errors.New("enc: truncated input")

// Varint appends v in signed-varint encoding.
func Varint(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }

// Uvarint appends v in unsigned-varint encoding.
func Uvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// Int appends v as a signed varint.
func Int(dst []byte, v int) []byte { return binary.AppendVarint(dst, int64(v)) }

// Bool appends b as one byte (0 or 1).
func Bool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// Bytes appends b length-prefixed (uvarint length, then the raw bytes).
func Bytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// String appends s length-prefixed.
func String(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Reader decodes values appended by the functions above. Errors are
// sticky: after the first malformed or truncated value every further read
// returns a zero value, and Err reports what went wrong — decoding code
// stays a straight line with one error check at the end.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader keeps a reference to b;
// callers must not mutate it while decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.b) - r.off }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("%w: varint at offset %d", ErrTruncated, r.off))
		return 0
	}
	r.off += n
	return v
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("%w: uvarint at offset %d", ErrTruncated, r.off))
		return 0
	}
	r.off += n
	return v
}

// Int reads a signed varint as an int.
func (r *Reader) Int() int { return int(r.Varint()) }

// Bool reads one byte as a bool.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.b) {
		r.fail(fmt.Errorf("%w: bool at offset %d", ErrTruncated, r.off))
		return false
	}
	v := r.b[r.off]
	r.off++
	return v != 0
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(fmt.Errorf("%w: byte at offset %d", ErrTruncated, r.off))
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bytes reads a length-prefixed byte string. The returned slice aliases
// the Reader's buffer; copy it to retain it.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(r.Len()) < n {
		r.fail(fmt.Errorf("%w: %d-byte string at offset %d, %d left", ErrTruncated, n, r.off, r.Len()))
		return nil
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Close returns the first decoding error, or an error if unread bytes
// remain — the check a complete-decode caller ends with.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.Len() != 0 {
		return fmt.Errorf("enc: %d trailing bytes", r.Len())
	}
	return nil
}
