package enc

import (
	"bytes"
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b []byte
	b = Varint(b, -12345)
	b = Uvarint(b, 1<<40)
	b = Int(b, 7)
	b = Bool(b, true)
	b = Bool(b, false)
	b = Bytes(b, []byte{9, 8, 7})
	b = Bytes(b, nil)
	b = String(b, "hello")

	r := NewReader(b)
	if v := r.Varint(); v != -12345 {
		t.Fatalf("Varint = %d", v)
	}
	if v := r.Uvarint(); v != 1<<40 {
		t.Fatalf("Uvarint = %d", v)
	}
	if v := r.Int(); v != 7 {
		t.Fatalf("Int = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round-trip broken")
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte{9, 8, 7}) {
		t.Fatalf("Bytes = %v", v)
	}
	if v := r.Bytes(); len(v) != 0 {
		t.Fatalf("empty Bytes = %v", v)
	}
	if v := r.String(); v != "hello" {
		t.Fatalf("String = %q", v)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestTruncationIsSticky(t *testing.T) {
	b := String(nil, "payload")
	r := NewReader(b[:3]) // length prefix intact, body cut short
	if s := r.String(); s != "" {
		t.Fatalf("truncated String = %q, want empty", s)
	}
	if v := r.Varint(); v != 0 {
		t.Fatalf("read after error = %d, want 0", v)
	}
	if err := r.Close(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Close = %v, want ErrTruncated", err)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	b := Varint(nil, 5)
	b = append(b, 0xFF)
	r := NewReader(b)
	r.Varint()
	if err := r.Close(); err == nil {
		t.Fatal("Close accepted trailing bytes")
	}
}
