package bisim

import (
	"math/rand"
	"testing"

	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/port"
)

func TestCycleAllBisimilar(t *testing.T) {
	// Under the symmetric consistent numbering of any cycle, all nodes are
	// bisimilar in K₊,₊ — the classic MIS-not-in-VVc argument (§3.1).
	for _, n := range []int{3, 4, 6, 9} {
		p := port.SymmetricCycle(n)
		m := kripke.FromPorts(p, kripke.VariantPP)
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		if !AllBisimilar(m, all, Options{}) {
			t.Errorf("C%d: nodes not all bisimilar under symmetric numbering", n)
		}
		if !AllBisimilar(m, all, Options{Graded: true}) {
			t.Errorf("C%d: nodes not all g-bisimilar under symmetric numbering", n)
		}
	}
}

func TestCanonicalCycleMayDistinguish(t *testing.T) {
	// The canonical numbering of C3 is NOT symmetric in general; check that
	// the partition is still computed sanely (all nodes same degree prop,
	// so at most the refinement splits them).
	p := port.Canonical(graph.Cycle(3))
	m := kripke.FromPorts(p, kripke.VariantPP)
	part := Compute(m, Options{})
	if len(part) != 3 {
		t.Fatal("partition size wrong")
	}
}

func TestStarLeavesBisimilarInPM(t *testing.T) {
	// Theorem 11's separation: in K₊,₋ the leaves of a star are bisimilar
	// for every port numbering.
	rng := rand.New(rand.NewSource(60))
	g := graph.Star(4)
	leaves := []int{1, 2, 3, 4}
	for trial := 0; trial < 20; trial++ {
		p := port.Random(g, rng)
		m := kripke.FromPorts(p, kripke.VariantPM)
		if !AllBisimilar(m, leaves, Options{}) {
			t.Fatal("leaves distinguishable in K(+,−)")
		}
	}
	// In K₋,₊ the leaves need NOT be bisimilar: the centre's out-ports
	// towards them differ, so some numbering separates them.
	separated := false
	for trial := 0; trial < 20 && !separated; trial++ {
		p := port.Random(g, rng)
		m := kripke.FromPorts(p, kripke.VariantMP)
		if !AllBisimilar(m, leaves, Options{}) {
			separated = true
		}
	}
	if !separated {
		t.Error("no numbering separated star leaves in K(−,+) — SV algorithm impossible?")
	}
}

func TestTheorem13WitnessBisimilar(t *testing.T) {
	g, u, w := graph.Theorem13Witness()
	p := port.Canonical(g)
	m := kripke.FromPorts(p, kripke.VariantMM)
	if !Bisimilar(m, u, w, Options{}) {
		t.Fatal("white nodes not bisimilar in K(−,−): witness broken")
	}
	// Graded bisimulation MUST distinguish them (their neighbour-degree
	// multisets differ), which is exactly why the problem IS in MB(1).
	if Bisimilar(m, u, w, Options{Graded: true}) {
		t.Fatal("white nodes g-bisimilar: they would be MB-indistinguishable too")
	}
}

func TestRegularGraphSymmetricNumbering(t *testing.T) {
	// Lemma 15: every regular graph has a numbering making all nodes
	// bisimilar in K₊,₊.
	for _, g := range []*graph.Graph{graph.Cycle(5), graph.Petersen(), graph.NoOneFactorCubic()} {
		perms, err := graph.DoubleCoverFactorPermutations(g)
		if err != nil {
			t.Fatal(err)
		}
		p, err := port.FromPermutationFactors(g, perms)
		if err != nil {
			t.Fatal(err)
		}
		m := kripke.FromPorts(p, kripke.VariantPP)
		all := make([]int, g.N())
		for i := range all {
			all[i] = i
		}
		if !AllBisimilar(m, all, Options{}) {
			t.Errorf("%v: Lemma 15 numbering does not make all nodes bisimilar", g)
		}
		if !AllBisimilar(m, all, Options{Graded: true}) {
			t.Errorf("%v: Lemma 15 numbering fails graded bisimilarity", g)
		}
	}
}

func TestBoundedRefinement(t *testing.T) {
	// On a long path in K(−,−), distance-from-end information propagates one
	// hop per round: after t rounds, nodes at depth > t from both ends are
	// still equivalent; full refinement separates more.
	g := graph.Path(9)
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	p1 := Compute(m, Options{MaxRounds: 1})
	full := Compute(m, Options{})
	// Nodes 3 and 5 both have degree 2 and, after one round, identical
	// neighbourhood signatures (both see two degree-2 neighbours).
	if !p1.Same(3, 5) {
		t.Error("1-round refinement separated depth-3 twins")
	}
	if !full.Same(4, 4) {
		t.Error("sanity")
	}
	// Endpoints differ from middles immediately.
	if p1.Same(0, 4) {
		t.Error("endpoint equals middle after 1 round")
	}
	rounds := RoundsToStable(m, false)
	if rounds < 2 {
		t.Errorf("P9 should need ≥ 2 refinement rounds, took %d", rounds)
	}
}

func TestGradedFinerThanPlain(t *testing.T) {
	// A node with two leaf-neighbours vs one leaf-neighbour: set-equal,
	// multiset-different.
	g := graph.MustNew(5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 3, V: 4}})
	// Node 0 has two leaves; node 3 has one leaf... degrees differ (2 vs 1),
	// so use the Theorem 13 witness instead, already covered. Here check
	// that graded refines plain on some model: counts of successors.
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	plain := Compute(m, Options{})
	graded := Compute(m, Options{Graded: true})
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if graded.Same(u, v) && !plain.Same(u, v) {
				t.Fatal("graded must refine plain bisimulation")
			}
		}
	}
}

func TestBisimilarAcross(t *testing.T) {
	// A 3-cycle and a 6-cycle are bisimilar point-to-point in K(−,−)
	// (the 6-cycle covers the 3-cycle).
	a := kripke.FromPorts(port.Canonical(graph.Cycle(3)), kripke.VariantMM)
	b := kripke.FromPorts(port.Canonical(graph.Cycle(6)), kripke.VariantMM)
	if !BisimilarAcross(a, 0, b, 0, Options{}) {
		t.Error("C3 and C6 nodes should be MM-bisimilar (covering)")
	}
	// A cycle node and a path-end node are not.
	c := kripke.FromPorts(port.Canonical(graph.Path(4)), kripke.VariantMM)
	if BisimilarAcross(a, 0, c, 0, Options{}) {
		t.Error("cycle node bisimilar to path endpoint")
	}
}

// TestFact1 is the property test for Fact 1: bisimilar states satisfy the
// same formulas (plain bisimulation ↔ ungraded logic, graded ↔ graded).
func TestFact1(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	graphs := []*graph.Graph{
		graph.Cycle(6), graph.Star(3), graph.Figure1Graph(), graph.Petersen(),
	}
	variants := []kripke.Variant{
		kripke.VariantPP, kripke.VariantMP, kripke.VariantPM, kripke.VariantMM,
	}
	for _, g := range graphs {
		delta := g.MaxDegree()
		for _, variant := range variants {
			p := port.Random(g, rng)
			m := kripke.FromPorts(p, variant)
			for _, graded := range []bool{false, true} {
				part := Compute(m, Options{Graded: graded})
				for trial := 0; trial < 60; trial++ {
					f := logic.RandomFormulaForVariant(rng, 3, delta, graded, variant)
					val := logic.Eval(m, f)
					for u := 0; u < g.N(); u++ {
						for v := u + 1; v < g.N(); v++ {
							if part.Same(u, v) && val[u] != val[v] {
								t.Fatalf("Fact 1 violated: %v graded=%v nodes %d,%d formula %q",
									variant, graded, u, v, f.String())
							}
						}
					}
				}
			}
		}
	}
}

// TestCompleteness is the converse direction on small models: states the
// refinement separates are separated by some modal formula. We verify it
// indirectly: the number of stable classes equals the number of distinct
// truth-vector signatures over sampled formulas for at least one sample set.
func TestPartitionNotTooCoarse(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	g := graph.Caterpillar(4, 1)
	p := port.Canonical(g)
	m := kripke.FromPorts(p, kripke.VariantPP)
	part := Compute(m, Options{})
	// For every pair in different classes, hunt for a separating formula.
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if part.Same(u, v) {
				continue
			}
			found := false
			for trial := 0; trial < 4000 && !found; trial++ {
				f := logic.RandomFormulaForVariant(rng, 3, g.MaxDegree(), false, kripke.VariantPP)
				val := logic.Eval(m, f)
				if val[u] != val[v] {
					found = true
				}
			}
			if !found {
				t.Logf("no separating formula sampled for %d vs %d (sampling miss, not necessarily a bug)", u, v)
			}
		}
	}
}

func BenchmarkBisim(b *testing.B) {
	g := graph.Torus(10, 10)
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantPP)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(m, Options{})
	}
}

func BenchmarkBisimGraded(b *testing.B) {
	g := graph.Torus(10, 10)
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantPP)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(m, Options{Graded: true})
	}
}
