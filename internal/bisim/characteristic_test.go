package bisim

import (
	"math/rand"
	"testing"

	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/port"
)

// TestCharacteristicHennessyMilner: χ_v^t holds at exactly the states
// t-round bisimilar to v — both soundness and completeness of the
// refinement, with no sampling.
func TestCharacteristicHennessyMilner(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	graphs := []*graph.Graph{
		graph.Path(5), graph.Cycle(6), graph.Star(3), graph.Figure1Graph(),
		graph.Caterpillar(3, 1),
	}
	variants := []kripke.Variant{kripke.VariantPP, kripke.VariantMM}
	for _, g := range graphs {
		delta := g.MaxDegree()
		for _, variant := range variants {
			p := port.Random(g, rng)
			m := kripke.FromPorts(p, variant)
			for _, graded := range []bool{false, true} {
				for depth := 0; depth <= 3; depth++ {
					chars := Characteristic(m, depth, delta, graded)
					var part Partition
					if depth == 0 {
						part = make(Partition, g.N())
						ids := map[string]int{}
						for v := 0; v < g.N(); v++ {
							sig := m.PropSig(v)
							id, ok := ids[sig]
							if !ok {
								id = len(ids)
								ids[sig] = id
							}
							part[v] = id
						}
					} else {
						part = Compute(m, Options{Graded: graded, MaxRounds: depth})
					}
					for v := 0; v < g.N(); v++ {
						val := logic.Eval(m, chars[v])
						for u := 0; u < g.N(); u++ {
							if val[u] != part.Same(u, v) {
								t.Fatalf("%v %v graded=%v depth=%d: χ_%d at %d = %v but same-class = %v",
									g, variant, graded, depth, v, u, val[u], part.Same(u, v))
							}
						}
					}
				}
			}
		}
	}
}

func TestCharacteristicDepthBound(t *testing.T) {
	g := graph.Figure1Graph()
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	for depth := 0; depth <= 3; depth++ {
		for _, f := range Characteristic(m, depth, g.MaxDegree(), true) {
			if md := logic.ModalDepth(f); md > depth {
				t.Fatalf("χ at depth %d has modal depth %d", depth, md)
			}
		}
	}
}

func TestCharacteristicFragment(t *testing.T) {
	g := graph.Star(3)
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	plain := Characteristic(m, 2, 3, false)
	for _, f := range plain {
		if logic.ClassifyFragment(f).Graded {
			t.Fatal("plain characteristic formula uses grading")
		}
	}
}

func TestSeparatingFormula(t *testing.T) {
	// The Theorem 13 hubs: inseparable in plain ML (bisimilar), separable
	// with grading — and Separating must exhibit the concrete formula.
	g, u, w := graph.Theorem13Witness()
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)

	if _, err := Separating(m, u, w, 4, g.MaxDegree(), false); err == nil {
		t.Fatal("plain ML separated ML-bisimilar hubs")
	}
	f, err := Separating(m, u, w, 4, g.MaxDegree(), true)
	if err != nil {
		t.Fatalf("graded separation failed: %v", err)
	}
	val := logic.Eval(m, f)
	if !val[u] || val[w] {
		t.Fatalf("separating formula does not separate: u=%v w=%v", val[u], val[w])
	}
	if !logic.ClassifyFragment(f).Graded {
		t.Error("separating formula should be graded (GML)")
	}
}

func TestSeparatingEndpointVsMiddle(t *testing.T) {
	g := graph.Path(3)
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	f, err := Separating(m, 0, 1, 2, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if logic.ModalDepth(f) != 0 {
		t.Errorf("degree alone separates endpoint from middle; got md %d", logic.ModalDepth(f))
	}
}

func BenchmarkCharacteristic(b *testing.B) {
	g := graph.Petersen()
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Characteristic(m, 2, 3, true)
	}
}
