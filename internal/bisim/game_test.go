package bisim

import (
	"math/rand"
	"testing"

	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/port"
)

// TestGameAgreesWithRefinement: the two independent decision procedures —
// counting partition refinement and the pair-removal game with matching —
// must compute the same relation on every model.
func TestGameAgreesWithRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	graphs := []*graph.Graph{
		graph.Path(6), graph.Cycle(7), graph.Star(4), graph.Figure1Graph(),
		graph.Petersen(), graph.Caterpillar(3, 1),
	}
	witness, _, _ := graph.Theorem13Witness()
	graphs = append(graphs, witness)
	variants := []kripke.Variant{
		kripke.VariantPP, kripke.VariantMP, kripke.VariantPM, kripke.VariantMM,
	}
	for _, g := range graphs {
		for _, variant := range variants {
			p := port.Random(g, rng)
			m := kripke.FromPorts(p, variant)
			for _, graded := range []bool{false, true} {
				part := Compute(m, Options{Graded: graded})
				rel := GamePairs(m, graded)
				for u := 0; u < g.N(); u++ {
					for v := 0; v < g.N(); v++ {
						if part.Same(u, v) != rel[u][v] {
							t.Fatalf("%v %v graded=%v nodes (%d,%d): refinement=%v game=%v",
								g, variant, graded, u, v, part.Same(u, v), rel[u][v])
						}
					}
				}
			}
		}
	}
}

func TestGameOnRandomModels(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		var edges []graph.Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					edges = append(edges, graph.Edge{U: u, V: v})
				}
			}
		}
		g := graph.MustNew(n, edges)
		m := kripke.FromPorts(port.Random(g, rng), kripke.VariantMM)
		for _, graded := range []bool{false, true} {
			part := Compute(m, Options{Graded: graded})
			rel := GamePairs(m, graded)
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if part.Same(u, v) != rel[u][v] {
						t.Fatalf("trial %d graded=%v (%d,%d) disagree", trial, graded, u, v)
					}
				}
			}
		}
	}
}

func TestGameRelationIsEquivalence(t *testing.T) {
	g := graph.Caterpillar(3, 2)
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantPP)
	for _, graded := range []bool{false, true} {
		rel := GamePairs(m, graded)
		n := g.N()
		for u := 0; u < n; u++ {
			if !rel[u][u] {
				t.Fatal("not reflexive")
			}
			for v := 0; v < n; v++ {
				if rel[u][v] != rel[v][u] {
					t.Fatal("not symmetric")
				}
				for w := 0; w < n; w++ {
					if rel[u][v] && rel[v][w] && !rel[u][w] {
						t.Fatal("not transitive")
					}
				}
			}
		}
	}
}

func BenchmarkGamePairs(b *testing.B) {
	g := graph.Grid(5, 5)
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantPP)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GamePairs(m, true)
	}
}
