package bisim

// refine_test.go pins the integer-signature refiner (refine.go) to the
// seed's string-keyed implementation — reimplemented verbatim below as
// legacyCompute — and pins the worker fan-out bit-identical to the
// sequential fill.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/obs"
	"weakmodels/internal/port"
)

// legacyCompute is the seed-era Compute: string signatures through maps,
// dense ids by first occurrence. The refiner must reproduce it exactly —
// ids included.
func legacyCompute(m *kripke.Model, graded bool, maxRounds int) Partition {
	n := m.N()
	part := make(Partition, n)
	ids := make(map[string]int)
	for v := 0; v < n; v++ {
		sig := m.PropSig(v)
		id, ok := ids[sig]
		if !ok {
			id = len(ids)
			ids[sig] = id
		}
		part[v] = id
	}
	indices := m.Indices()
	round := 0
	for {
		if maxRounds > 0 && round >= maxRounds {
			return part
		}
		next := legacyRefine(m, part, indices, graded)
		if legacyEqual(part, next) {
			return next
		}
		part = next
		round++
	}
}

func legacyRefine(m *kripke.Model, part Partition, indices []kripke.Index, graded bool) Partition {
	n := m.N()
	next := make(Partition, n)
	ids := make(map[string]int)
	var sb strings.Builder
	for v := 0; v < n; v++ {
		sb.Reset()
		fmt.Fprintf(&sb, "c%d", part[v])
		for _, alpha := range indices {
			succ := m.Succ(alpha, v)
			classes := make([]int, 0, len(succ))
			for _, w := range succ {
				classes = append(classes, part[w])
			}
			sort.Ints(classes)
			if !graded {
				out := classes[:0]
				for i, x := range classes {
					if i == 0 || x != classes[i-1] {
						out = append(out, x)
					}
				}
				classes = out
			}
			fmt.Fprintf(&sb, "|%v:%v", alpha, classes)
		}
		sig := sb.String()
		id, ok := ids[sig]
		if !ok {
			id = len(ids)
			ids[sig] = id
		}
		next[v] = id
	}
	return next
}

func legacyEqual(a, b Partition) bool {
	classesA := make(map[int]int)
	classesB := make(map[int]int)
	for i := range a {
		classesA[a[i]]++
		classesB[b[i]]++
	}
	return len(classesA) == len(classesB)
}

func refineTestModel(seed int64) *kripke.Model {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(10)
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(3) == 0 {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	g := graph.MustNew(n, edges)
	variants := []kripke.Variant{kripke.VariantPP, kripke.VariantMP, kripke.VariantPM, kripke.VariantMM}
	return kripke.FromPorts(port.Random(g, rng), variants[rng.Intn(len(variants))])
}

// TestComputeMatchesLegacy pins the refiner to the seed implementation
// elementwise — same partition, same dense ids — across random models,
// both fragments and bounded depths.
func TestComputeMatchesLegacy(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		m := refineTestModel(seed)
		for _, graded := range []bool{false, true} {
			for _, maxRounds := range []int{0, 1, 2, 5} {
				want := legacyCompute(m, graded, maxRounds)
				got := Compute(m, Options{Graded: graded, MaxRounds: maxRounds})
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("seed %d graded=%v rounds=%d: state %d class %d, legacy %d",
							seed, graded, maxRounds, v, got[v], want[v])
					}
				}
			}
		}
	}
}

// TestComputeWorkersBitIdentical pins the worker fan-out: on a model
// large enough to engage the parallel signature fill, every worker count
// must return the same ids as the sequential run.
func TestComputeWorkersBitIdentical(t *testing.T) {
	g, err := graph.Expander(5000, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	for _, graded := range []bool{false, true} {
		base := Compute(m, Options{Graded: graded, Workers: 1})
		for _, workers := range []int{2, 3, 4, 8} {
			got := Compute(m, Options{Graded: graded, Workers: workers})
			for v := range base {
				if got[v] != base[v] {
					t.Fatalf("graded=%v workers=%d: state %d class %d, sequential %d",
						graded, workers, v, got[v], base[v])
				}
			}
		}
	}
}

// TestRoundsToStableMatchesLegacy checks the round count against a legacy
// fixpoint loop.
func TestRoundsToStableMatchesLegacy(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		m := refineTestModel(seed)
		for _, graded := range []bool{false, true} {
			indices := m.Indices()
			// Legacy loop, verbatim.
			n := m.N()
			init := make(Partition, n)
			ids := make(map[string]int)
			for v := 0; v < n; v++ {
				sig := m.PropSig(v)
				id, ok := ids[sig]
				if !ok {
					id = len(ids)
					ids[sig] = id
				}
				init[v] = id
			}
			want := 0
			for {
				next := legacyRefine(m, init, indices, graded)
				if legacyEqual(init, next) {
					break
				}
				init = next
				want++
			}
			if got := RoundsToStable(m, graded); got != want {
				t.Fatalf("seed %d graded=%v: RoundsToStable %d, legacy %d", seed, graded, got, want)
			}
		}
	}
}

// TestPartitionClasses pins the deterministic Classes construction.
func TestPartitionClasses(t *testing.T) {
	p := Partition{1, 0, 1, 2, 0}
	classes := p.Classes()
	want := [][]int{{1, 4}, {0, 2}, {3}}
	if len(classes) != len(want) {
		t.Fatalf("classes = %v, want %v", classes, want)
	}
	for id := range want {
		if len(classes[id]) != len(want[id]) {
			t.Fatalf("class %d = %v, want %v", id, classes[id], want[id])
		}
		for i := range want[id] {
			if classes[id][i] != want[id][i] {
				t.Fatalf("class %d = %v, want %v", id, classes[id], want[id])
			}
		}
	}
	if p.NumClasses() != 3 {
		t.Fatalf("NumClasses = %d, want 3", p.NumClasses())
	}
}

// TestRefineMetrics checks the weak_logic_refine_* wiring end to end with
// a manual clock.
func TestRefineMetrics(t *testing.T) {
	m := refineTestModel(7)
	reg := obs.NewMetrics()
	clk := &obs.ManualClock{}
	Compute(m, Options{Graded: true, Obs: &obs.Obs{Metrics: reg, Clock: clk}})
	if reg.Histogram(MetricRefineUs, "", nil).Count() != 1 {
		t.Errorf("%s: want exactly one sample", MetricRefineUs)
	}
	if reg.Gauge(MetricRefineClasses, "").Value() <= 0 {
		t.Errorf("%s: want a positive class count", MetricRefineClasses)
	}
}
