package bisim

// fact1_scale_test.go is the Fact 1 property sweep at engine scale:
// seeded random formulas on n=10⁴ models of the three seeded graph
// families, checked through the shared bitset evaluator against the
// refiner's fixpoint partition. Bisimilar states must agree on every
// formula of the matching fragment — and the partition itself must be
// bit-identical across worker counts, so the sweep doubles as the
// sharded-determinism pin at scale (run under -race at GOMAXPROCS 1 and
// 4 in CI).

import (
	"math/rand"
	"testing"

	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
	"weakmodels/internal/port"
)

func fact1Family(t *testing.T, name string) *graph.Graph {
	t.Helper()
	var g *graph.Graph
	var err error
	switch name {
	case "expander":
		g, err = graph.Expander(10000, 4, 7)
	case "pa":
		g, err = graph.PreferentialAttachment(10000, 3, 8)
	case "torus":
		g = graph.Torus(100, 100)
	default:
		t.Fatalf("unknown family %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFact1Scale(t *testing.T) {
	if testing.Short() {
		t.Skip("n=10⁴ sweep; skipped in -short")
	}
	trials := 12
	for _, family := range []string{"expander", "pa", "torus"} {
		g := fact1Family(t, family)
		delta := g.MaxDegree()
		m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
		rng := rand.New(rand.NewSource(900 + int64(len(family))))
		in := logic.NewInterner()
		ev := logic.NewEvaluator(m, in)
		for _, graded := range []bool{false, true} {
			// Fixpoint partition: valid against formulas of any depth.
			part := Compute(m, Options{Graded: graded, Workers: 1})
			for _, workers := range []int{2, 4} {
				other := Compute(m, Options{Graded: graded, Workers: workers})
				for v := range part {
					if other[v] != part[v] {
						t.Fatalf("%s graded=%v: workers=%d diverges from sequential at state %d",
							family, graded, workers, v)
					}
				}
			}
			reps := representatives32(part)
			for trial := 0; trial < trials; trial++ {
				f := logic.RandomFormulaForVariant(rng, 4, delta, graded, kripke.VariantMM)
				row := ev.Eval(in.Intern(f))
				// Fact 1 per class: every state must agree with its
				// class representative.
				for v := 0; v < m.N(); v++ {
					rep := reps[part[v]]
					if bit(row, v) != bit(row, rep) {
						t.Fatalf("Fact 1 violated on %s graded=%v: states %d and %d are bisimilar but differ on %q",
							family, graded, v, rep, f.String())
					}
				}
			}
		}
	}
}

func bit(row []uint64, v int) bool { return row[v>>6]&(1<<(uint(v)&63)) != 0 }

func representatives32(part Partition) []int {
	reps := make([]int, part.NumClasses())
	for i := range reps {
		reps[i] = -1
	}
	for v, c := range part {
		if reps[c] == -1 {
			reps[c] = v
		}
	}
	return reps
}
