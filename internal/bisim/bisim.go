// Package bisim implements bisimulation for the modal logics of Section 4.2
// via partition refinement:
//
//   - plain bisimulation (ML/MML): two states are equivalent when their
//     valuations agree and, per relation, the *sets* of successor classes
//     agree (conditions B1–B3);
//   - graded bisimulation (GML/GMML): per relation, the *multisets* of
//     successor classes agree (conditions B2*/B3* — for finite models the
//     counting refinement computes exactly g-bisimilarity);
//   - bounded refinement: stopping after t rounds yields t-round
//     equivalence, which coincides with indistinguishability by formulas of
//     modal depth ≤ t — the locality currency of the paper.
//
// Refinement runs on the model's compiled CSR form with integer signature
// vectors (refine.go): no string keys, no per-round maps, and an optional
// worker fan-out for the signature fill that leaves the partition
// bit-identical to the sequential one. Fact 1 (bisimilar ⇒ logically
// indistinguishable) is exercised as a property test in this package's
// test suite.
package bisim

import (
	"time"

	"weakmodels/internal/kripke"
	"weakmodels/internal/obs"
)

// Partition assigns each state a class id; states are equivalent iff their
// ids are equal. Ids are dense, starting at 0, in order of first occurrence.
type Partition []int

// NumClasses returns the number of classes (max id + 1).
func (p Partition) NumClasses() int {
	num := 0
	for _, id := range p {
		if id >= num {
			num = id + 1
		}
	}
	return num
}

// Classes groups states by class id; within a class, states ascend.
func (p Partition) Classes() [][]int {
	num := p.NumClasses()
	sizes := make([]int, num)
	for _, id := range p {
		sizes[id]++
	}
	out := make([][]int, num)
	for id, sz := range sizes {
		out[id] = make([]int, 0, sz)
	}
	for v, id := range p {
		out[id] = append(out[id], v)
	}
	return out
}

// Same reports whether u and v are in the same class.
func (p Partition) Same(u, v int) bool { return p[u] == p[v] }

// Options select the bisimulation notion and the execution shape.
type Options struct {
	// Graded selects counting (GML/GMML) refinement.
	Graded bool
	// MaxRounds bounds the refinement depth; 0 means refine to fixpoint
	// (full bisimilarity).
	MaxRounds int
	// Workers fans the per-round signature fill out over contiguous state
	// ranges; 0 defaults to GOMAXPROCS. The partition is bit-identical
	// for every setting — grouping is sequential in state order — and
	// small models stay inline regardless.
	Workers int
	// Obs attaches metrics (weak_logic_refine_*); nil disables.
	Obs *obs.Obs
}

// Compute returns the coarsest (bounded) bisimulation partition of m.
// Ids match the seed implementation exactly: dense, assigned by first
// occurrence in state order, initial classes by valuation (condition B1).
func Compute(m *kripke.Model, opts Options) Partition {
	met := newRefineMetrics(opts.Obs)
	var start time.Duration
	if met != nil {
		start = met.begin()
	}
	r := newRefiner(m.CSR(), opts.Graded, opts.Workers)
	rounds := r.run(opts.MaxRounds)
	part := r.partition()
	if met != nil {
		met.end(start, rounds, r.classes)
	}
	return part
}

// Bisimilar reports whether states u and v of m are bisimilar under opts.
func Bisimilar(m *kripke.Model, u, v int, opts Options) bool {
	return Compute(m, opts).Same(u, v)
}

// AllBisimilar reports whether all listed states are pairwise bisimilar.
func AllBisimilar(m *kripke.Model, states []int, opts Options) bool {
	if len(states) == 0 {
		return true
	}
	part := Compute(m, opts)
	first := part[states[0]]
	for _, v := range states[1:] {
		if part[v] != first {
			return false
		}
	}
	return true
}

// BisimilarAcross reports whether state u of model a and state v of model b
// are bisimilar, by computing on the disjoint union.
func BisimilarAcross(a *kripke.Model, u int, b *kripke.Model, v int, opts Options) bool {
	union := kripke.DisjointUnion(a, b)
	return Bisimilar(union, u, a.N()+v, opts)
}

// RoundsToStable returns the number of refinement rounds until fixpoint —
// the modal depth needed to distinguish everything distinguishable, a
// locality measure used by the experiments.
func RoundsToStable(m *kripke.Model, graded bool) int {
	return newRefiner(m.CSR(), graded, 0).run(0)
}
