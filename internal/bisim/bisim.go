// Package bisim implements bisimulation for the modal logics of Section 4.2
// via partition refinement:
//
//   - plain bisimulation (ML/MML): two states are equivalent when their
//     valuations agree and, per relation, the *sets* of successor classes
//     agree (conditions B1–B3);
//   - graded bisimulation (GML/GMML): per relation, the *multisets* of
//     successor classes agree (conditions B2*/B3* — for finite models the
//     counting refinement computes exactly g-bisimilarity);
//   - bounded refinement: stopping after t rounds yields t-round
//     equivalence, which coincides with indistinguishability by formulas of
//     modal depth ≤ t — the locality currency of the paper.
//
// Fact 1 (bisimilar ⇒ logically indistinguishable) is exercised as a
// property test in this package's test suite.
package bisim

import (
	"fmt"
	"sort"
	"strings"

	"weakmodels/internal/kripke"
)

// Partition assigns each state a class id; states are equivalent iff their
// ids are equal. Ids are dense, starting at 0, in order of first occurrence.
type Partition []int

// Classes groups states by class id.
func (p Partition) Classes() [][]int {
	byID := make(map[int][]int)
	for v, id := range p {
		byID[id] = append(byID[id], v)
	}
	out := make([][]int, 0, len(byID))
	for id := 0; id < len(byID); id++ {
		out = append(out, byID[id])
	}
	return out
}

// Same reports whether u and v are in the same class.
func (p Partition) Same(u, v int) bool { return p[u] == p[v] }

// Options select the bisimulation notion.
type Options struct {
	// Graded selects counting (GML/GMML) refinement.
	Graded bool
	// MaxRounds bounds the refinement depth; 0 means refine to fixpoint
	// (full bisimilarity).
	MaxRounds int
}

// Compute returns the coarsest (bounded) bisimulation partition of m.
func Compute(m *kripke.Model, opts Options) Partition {
	n := m.N()
	part := make(Partition, n)
	// Initial partition: by valuation (condition B1).
	ids := make(map[string]int)
	for v := 0; v < n; v++ {
		sig := m.PropSig(v)
		id, ok := ids[sig]
		if !ok {
			id = len(ids)
			ids[sig] = id
		}
		part[v] = id
	}
	indices := m.Indices()
	round := 0
	for {
		if opts.MaxRounds > 0 && round >= opts.MaxRounds {
			return part
		}
		next := refine(m, part, indices, opts.Graded)
		if equalPartition(part, next) {
			return next
		}
		part = next
		round++
	}
}

// refine splits classes by successor-class signatures.
func refine(m *kripke.Model, part Partition, indices []kripke.Index, graded bool) Partition {
	n := m.N()
	next := make(Partition, n)
	ids := make(map[string]int)
	var sb strings.Builder
	for v := 0; v < n; v++ {
		sb.Reset()
		fmt.Fprintf(&sb, "c%d", part[v])
		for _, alpha := range indices {
			succ := m.Succ(alpha, v)
			classes := make([]int, 0, len(succ))
			for _, w := range succ {
				classes = append(classes, part[w])
			}
			sort.Ints(classes)
			if !graded {
				classes = dedupInts(classes)
			}
			fmt.Fprintf(&sb, "|%v:%v", alpha, classes)
		}
		sig := sb.String()
		id, ok := ids[sig]
		if !ok {
			id = len(ids)
			ids[sig] = id
		}
		next[v] = id
	}
	return next
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func equalPartition(a, b Partition) bool {
	// Partitions refine monotonically, so equality of class counts suffices;
	// compare structurally to stay safe.
	classesA := make(map[int]int)
	classesB := make(map[int]int)
	for i := range a {
		classesA[a[i]]++
		classesB[b[i]]++
	}
	if len(classesA) != len(classesB) {
		return false
	}
	// Same number of classes and b refines a ⇒ identical partitions.
	return true
}

// Bisimilar reports whether states u and v of m are bisimilar under opts.
func Bisimilar(m *kripke.Model, u, v int, opts Options) bool {
	return Compute(m, opts).Same(u, v)
}

// AllBisimilar reports whether all listed states are pairwise bisimilar.
func AllBisimilar(m *kripke.Model, states []int, opts Options) bool {
	if len(states) == 0 {
		return true
	}
	part := Compute(m, opts)
	first := part[states[0]]
	for _, v := range states[1:] {
		if part[v] != first {
			return false
		}
	}
	return true
}

// BisimilarAcross reports whether state u of model a and state v of model b
// are bisimilar, by computing on the disjoint union.
func BisimilarAcross(a *kripke.Model, u int, b *kripke.Model, v int, opts Options) bool {
	union := kripke.DisjointUnion(a, b)
	return Bisimilar(union, u, a.N()+v, opts)
}

// RoundsToStable returns the number of refinement rounds until fixpoint —
// the modal depth needed to distinguish everything distinguishable, a
// locality measure used by the experiments.
func RoundsToStable(m *kripke.Model, graded bool) int {
	indices := m.Indices()
	n := m.N()
	cur := make(Partition, n)
	ids := make(map[string]int)
	for v := 0; v < n; v++ {
		sig := m.PropSig(v)
		id, ok := ids[sig]
		if !ok {
			id = len(ids)
			ids[sig] = id
		}
		cur[v] = id
	}
	rounds := 0
	for {
		next := refine(m, cur, indices, graded)
		if equalPartition(cur, next) {
			return rounds
		}
		cur = next
		rounds++
	}
}
