package bisim_test

import (
	"fmt"

	"weakmodels/internal/bisim"
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/port"
)

// Example shows the Theorem 13 core in three lines: the witness hubs are
// plain-bisimilar (so SB algorithms cannot split them) but not graded-
// bisimilar (so MB algorithms can).
func Example() {
	g, u, w := graph.Theorem13Witness()
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	fmt.Println("ML-bisimilar:", bisim.Bisimilar(m, u, w, bisim.Options{}))
	fmt.Println("GML-bisimilar:", bisim.Bisimilar(m, u, w, bisim.Options{Graded: true}))
	// Output:
	// ML-bisimilar: true
	// GML-bisimilar: false
}

// ExampleSeparating exhibits a concrete graded formula splitting the hubs.
func ExampleSeparating() {
	g, u, w := graph.Theorem13Witness()
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantMM)
	_, errPlain := bisim.Separating(m, u, w, 3, g.MaxDegree(), false)
	fGraded, errGraded := bisim.Separating(m, u, w, 3, g.MaxDegree(), true)
	fmt.Println("plain ML separates:", errPlain == nil)
	fmt.Println("graded GML separates:", errGraded == nil && fGraded != nil)
	// Output:
	// plain ML separates: false
	// graded GML separates: true
}
