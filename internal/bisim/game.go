package bisim

import (
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
)

// A second, independent bisimilarity decision procedure, used to
// cross-validate the partition refinement of Compute: the coinductive
// pair-removal (game-theoretic) characterisation.
//
// Start from all pairs with equal valuations and repeatedly delete pairs
// that violate the transfer conditions, until the greatest fixpoint:
//
//   - plain (B2/B3): (u,v) survives iff for every relation α, every
//     α-successor of u is related to some α-successor of v and vice versa —
//     defender's winning condition in the standard bisimulation game;
//
//   - graded (B2*/B3*): (u,v) survives iff for every α there is a perfect
//     matching between the α-successors of u and of v that pairs only
//     related states (the finite-model form of the subset conditions of
//     Section 4.2, computed here with Hopcroft–Karp).
//
// The matching formulation makes the graded case genuinely different code
// from the counting refinement, which is the point of the cross-check.

// GamePairs computes the bisimilarity relation of m as a symmetric boolean
// matrix rel[u][v], under Options.Graded (MaxRounds is ignored: the game
// characterises full bisimilarity).
func GamePairs(m *kripke.Model, graded bool) [][]bool {
	n := m.N()
	val := m.CSR().ValClass()
	rel := make([][]bool, n)
	for u := 0; u < n; u++ {
		rel[u] = make([]bool, n)
		for v := 0; v < n; v++ {
			rel[u][v] = val[u] == val[v]
		}
	}
	indices := m.Indices()
	for changed := true; changed; {
		changed = false
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if !rel[u][v] {
					continue
				}
				ok := true
				for _, alpha := range indices {
					su := m.Succ(alpha, u)
					sv := m.Succ(alpha, v)
					if graded {
						if !perfectlyMatchable(su, sv, rel) {
							ok = false
							break
						}
					} else {
						if !mutuallyCovered(su, sv, rel) {
							ok = false
							break
						}
					}
				}
				if !ok {
					rel[u][v] = false
					changed = true
				}
			}
		}
	}
	return rel
}

// mutuallyCovered implements B2/B3: every successor on either side is
// related to some successor on the other.
func mutuallyCovered(su, sv []int, rel [][]bool) bool {
	for _, x := range su {
		found := false
		for _, y := range sv {
			if rel[x][y] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for _, y := range sv {
		found := false
		for _, x := range su {
			if rel[x][y] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// perfectlyMatchable implements the graded transfer condition: |su| = |sv|
// and the bipartite graph {(i,j) : rel[su[i]][sv[j]]} has a perfect
// matching (computed via Hopcroft–Karp on a constructed bipartite graph).
func perfectlyMatchable(su, sv []int, rel [][]bool) bool {
	if len(su) != len(sv) {
		return false
	}
	k := len(su)
	if k == 0 {
		return true
	}
	var edges []graph.Edge
	for i, x := range su {
		for j, y := range sv {
			if rel[x][y] {
				edges = append(edges, graph.Edge{U: i, V: k + j})
			}
		}
	}
	b := graph.MustNew(2*k, edges)
	side := make([]int, 2*k)
	for j := k; j < 2*k; j++ {
		side[j] = 1
	}
	mate := graph.BipartiteMatching(b, side)
	return graph.MatchingSize(mate) == k
}
