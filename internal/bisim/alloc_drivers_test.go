package bisim

// alloc_drivers_test.go backs the generated TestWeakvetAllocPins (see
// zz_generated_weakvet_alloc_test.go): one driver per //weakvet:noalloc
// function, keyed by receiver-qualified name. Each driver does its setup
// once and returns the hot closure that testing.AllocsPerRun measures.

import (
	"weakmodels/internal/graph"
	"weakmodels/internal/kripke"
	"weakmodels/internal/port"
)

// weakvetHotRefiner builds a graded refiner over a torus model, ready to
// run fill/group rounds without allocating.
func weakvetHotRefiner() *refiner {
	g := graph.Torus(8, 8)
	m := kripke.FromPorts(port.Canonical(g), kripke.VariantPP)
	return newRefiner(m.CSR(), true, 1)
}

// weakvetSink keeps sameSig's result live without allocating.
var weakvetSink bool

var weakvetAllocDrivers = map[string]func() func(){
	"(*refiner).fillRange": func() func() {
		r := weakvetHotRefiner()
		return func() { r.fillRange(0, r.n) }
	},
	"(*refiner).group": func() func() {
		r := weakvetHotRefiner()
		r.fillRange(0, r.n)
		return func() { r.group() }
	},
	"(*refiner).sameSig": func() func() {
		r := weakvetHotRefiner()
		r.fillRange(0, r.n)
		return func() { weakvetSink = r.sameSig(0, 1) }
	},
	"sortInt32": func() func() {
		buf := make([]int32, 64)
		return func() {
			for i := range buf {
				buf[i] = int32(len(buf) - i)
			}
			sortInt32(buf)
		}
	},
}
