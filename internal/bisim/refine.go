package bisim

// refine.go is the integer-signature partition refiner behind Compute.
// Each round builds, per state, a flat int32 signature — current class,
// then per relation the sorted classes of its CSR successor row (with
// multiplicity for graded; deduplicated and -1-padded for plain), with -2
// separators — into one preallocated arena at fixed per-state offsets.
// Grouping hashes each signature (FNV-1a) and assigns dense class ids by
// first occurrence in state order through an open-addressing table, so
// the resulting partition is identical to the seed's string-keyed
// assignment and — because signature fills are per-state independent and
// grouping is sequential — bit-identical for every worker count.
//
// The signature fill is the O(n + m) hot loop and fans out over
// contiguous state ranges on >1 workers; sorting successor rows in place
// keeps the round allocation-free after the first (pinned by
// //weakvet:noalloc on fillRange and group).

import (
	"runtime"
	"slices"
	"sync"
	"time"

	"weakmodels/internal/kripke"
	"weakmodels/internal/obs"
)

// Logic-side refinement metric names.
const (
	// MetricRefineRounds counts executed refinement rounds across runs.
	MetricRefineRounds = "weak_logic_refine_rounds_total"
	// MetricRefineClasses is the class count of the last computed partition.
	MetricRefineClasses = "weak_logic_refine_classes"
	// MetricRefineUs is the wall time per Compute call in microseconds.
	MetricRefineUs = "weak_logic_refine_us"
)

// refineMetrics is the resolved metrics bundle; nil disables everything.
//
//weakvet:obs newRefineMetrics returns nil unless a registry is attached; every caller guards the *refineMetrics
type refineMetrics struct {
	rounds  *obs.Counter
	classes *obs.Gauge
	durUs   *obs.Histogram
	clock   obs.Clock
}

func newRefineMetrics(o *obs.Obs) *refineMetrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	reg := o.Metrics
	return &refineMetrics{
		rounds:  reg.Counter(MetricRefineRounds, "partition refinement rounds executed"),
		classes: reg.Gauge(MetricRefineClasses, "class count of the last computed partition"),
		durUs:   reg.Histogram(MetricRefineUs, "wall microseconds per partition computation", nil),
		clock:   o.ResolveClock(),
	}
}

// begin stamps the start of a Compute call.
func (m *refineMetrics) begin() time.Duration { return m.clock.Now() }

// end records one completed Compute call.
func (m *refineMetrics) end(start time.Duration, rounds, classes int) {
	m.rounds.Add(int64(rounds))
	m.classes.Set(int64(classes))
	m.durUs.Observe(float64((m.clock.Now() - start) / time.Microsecond))
}

// parallelThreshold is the state count below which the signature fill
// stays inline on the caller: goroutine fan-out only pays for itself on
// large models (mirroring the engine's sharding default).
const parallelThreshold = 4096

// refiner holds the per-round arenas of one partition computation.
type refiner struct {
	csr     *kripke.CSR
	n       int
	graded  bool
	workers int

	offs  [][]int32 // per relation: successor row offsets (len n+1)
	succs [][]int32 // per relation: flat successor arrays

	segOff []int32 // per state: start of its signature segment; len n+1
	sig    []int32 // signature arena, rewritten every round
	hash   []uint64

	cur, next []int32 // class ids per state, double-buffered

	// Open-addressing signature table: slot → exemplar state / class id.
	slotState []int32
	slotID    []int32
	mask      uint64

	classes int // class count of cur
}

func newRefiner(csr *kripke.CSR, graded bool, workers int) *refiner {
	n := csr.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < parallelThreshold {
		workers = 1
	}
	r := &refiner{csr: csr, n: n, graded: graded, workers: workers}

	indices := csr.Indices()
	r.offs = make([][]int32, len(indices))
	r.succs = make([][]int32, len(indices))
	for ri, x := range indices {
		r.offs[ri], r.succs[ri], _ = csr.Rel(x)
	}

	// Fixed per-state signature layout: 1 (current class) plus, per
	// relation, the row length plus a -2 separator.
	r.segOff = make([]int32, n+1)
	pos := int32(0)
	for v := 0; v < n; v++ {
		r.segOff[v] = pos
		pos += 1
		for ri := range r.offs {
			pos += r.offs[ri][v+1] - r.offs[ri][v] + 1
		}
	}
	r.segOff[n] = pos
	r.sig = make([]int32, pos)
	r.hash = make([]uint64, n)

	r.cur = make([]int32, n)
	copy(r.cur, csr.ValClass())
	r.classes = csr.NumValClasses()
	r.next = make([]int32, n)

	tab := 1
	for tab < 2*n {
		tab <<= 1
	}
	r.slotState = make([]int32, tab)
	r.slotID = make([]int32, tab)
	r.mask = uint64(tab - 1)
	return r
}

// fill writes every state's signature for the current classes, fanning
// out over contiguous ranges when workers > 1. Per-state writes are
// disjoint, so the result is independent of the split.
func (r *refiner) fill() {
	if r.workers <= 1 {
		r.fillRange(0, r.n)
		return
	}
	var wg sync.WaitGroup
	chunk := (r.n + r.workers - 1) / r.workers
	for lo := 0; lo < r.n; lo += chunk {
		hi := lo + chunk
		if hi > r.n {
			hi = r.n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			r.fillRange(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// fillRange builds signatures and hashes for states [lo, hi).
//
//weakvet:noalloc
func (r *refiner) fillRange(lo, hi int) {
	for v := lo; v < hi; v++ {
		pos := r.segOff[v]
		r.sig[pos] = r.cur[v]
		pos++
		for ri := range r.offs {
			off := r.offs[ri]
			succ := r.succs[ri]
			row := r.sig[pos : pos+(off[v+1]-off[v])]
			for i, w := range succ[off[v]:off[v+1]] {
				row[i] = r.cur[w]
			}
			sortInt32(row)
			if !r.graded {
				// Dedup in place, padding the tail with -1 so the
				// segment keeps its fixed width.
				k := 0
				for i, x := range row {
					if i == 0 || x != row[k-1] {
						row[k] = x
						k++
					}
				}
				for i := k; i < len(row); i++ {
					row[i] = -1
				}
			}
			pos += int32(len(row))
			r.sig[pos] = -2
			pos++
		}
		// FNV-1a over the signature words.
		h := uint64(14695981039346656037)
		for _, x := range r.sig[r.segOff[v]:pos] {
			h ^= uint64(uint32(x))
			h *= 1099511628211
		}
		r.hash[v] = h
	}
}

// sortInt32 sorts a successor row in place: insertion sort for the short
// rows that dominate bounded-degree families, slices.Sort beyond.
//
//weakvet:noalloc
func sortInt32(xs []int32) {
	if len(xs) <= 32 {
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		return
	}
	slices.Sort(xs)
}

// group assigns next-round class ids by first signature occurrence in
// state order, returning the new class count. Sequential by design: the
// scan order is the determinism guarantee.
//
//weakvet:noalloc
func (r *refiner) group() int {
	for i := range r.slotState {
		r.slotState[i] = -1
	}
	classes := int32(0)
	for v := 0; v < r.n; v++ {
		slot := r.hash[v] & r.mask
		for {
			ex := r.slotState[slot]
			if ex == -1 {
				r.slotState[slot] = int32(v)
				r.slotID[slot] = classes
				r.next[v] = classes
				classes++
				break
			}
			if r.hash[ex] == r.hash[v] && r.sameSig(int(ex), v) {
				r.next[v] = r.slotID[slot]
				break
			}
			slot = (slot + 1) & r.mask
		}
	}
	return int(classes)
}

// sameSig compares two states' signature segments.
//
//weakvet:noalloc
func (r *refiner) sameSig(u, v int) bool {
	su := r.sig[r.segOff[u]:r.segOff[u+1]]
	sv := r.sig[r.segOff[v]:r.segOff[v+1]]
	if len(su) != len(sv) {
		return false
	}
	for i := range su {
		if su[i] != sv[i] {
			return false
		}
	}
	return true
}

// step runs one refinement round; it reports whether the partition
// changed (by the monotone class-count criterion) and commits the new
// classes when it did.
func (r *refiner) step() bool {
	r.fill()
	classes := r.group()
	if classes == r.classes {
		// Refinement is monotone: same class count ⇒ same partition.
		return false
	}
	r.cur, r.next = r.next, r.cur
	r.classes = classes
	return true
}

// run refines to fixpoint or maxRounds (0 = unbounded), returning the
// number of changing rounds executed.
func (r *refiner) run(maxRounds int) int {
	round := 0
	for {
		if maxRounds > 0 && round >= maxRounds {
			return round
		}
		if !r.step() {
			return round
		}
		round++
	}
}

// partition copies the current classes into the public Partition shape.
func (r *refiner) partition() Partition {
	part := make(Partition, r.n)
	for v, id := range r.cur {
		part[v] = int(id)
	}
	return part
}
