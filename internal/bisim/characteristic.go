package bisim

import (
	"fmt"
	"sort"

	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
)

// Characteristic formulas à la Hennessy–Milner: for every state v and depth
// t, a formula χ_v^t of modal depth ≤ t that holds at exactly the states
// t-round bisimilar to v. This is the converse direction of Fact 1 — not
// only do bisimilar states satisfy the same formulas, but non-bisimilar
// states are *separated by a concrete formula* the library can exhibit.
// The separation arguments of Section 5.3 therefore never rely on sampling.
//
// Construction (plain ML/MML flavour):
//
//	χ_v^0   = "my valuation" (here: the degree formula)
//	χ_v^t+1 = χ_v^0 ∧ ⋀_α [ ⋀_{C ∈ S(v,α)} ⟨α⟩χ_C^t  ∧  [α](⋁_{C ∈ S(v,α)} χ_C^t) ]
//
// where S(v,α) is the set of (t-round) classes of v's α-successors. The
// graded flavour replaces the two conjuncts by exact counts
// ⟨α⟩≥k χ_C ∧ ¬⟨α⟩≥k+1 χ_C per class.

// Characteristic returns, for every node, a formula of modal depth ≤ depth
// characterising its depth-round equivalence class in m. delta is the Δ of
// the valuation Φ_Δ (for the degree formulas).
func Characteristic(m *kripke.Model, depth, delta int, graded bool) []logic.Formula {
	n := m.N()
	indices := m.Indices()

	// Level 0: one formula per valuation signature.
	cur := make([]logic.Formula, n)
	for v := 0; v < n; v++ {
		cur[v] = valuationFormula(m, v, delta)
	}

	for d := 1; d <= depth; d++ {
		// Group the previous level by rendered formula — nodes sharing a
		// level-(d-1) characteristic formula are (d-1)-round equivalent.
		classOf, classFormula := groupByFormula(cur)
		next := make([]logic.Formula, n)
		for v := 0; v < n; v++ {
			conjuncts := []logic.Formula{valuationFormula(m, v, delta)}
			for _, alpha := range indices {
				succ := m.Succ(alpha, v)
				counts := make(map[int]int)
				for _, w := range succ {
					counts[classOf[w]]++
				}
				// Iterate classes in sorted order: map order would make
				// formulas of same-class nodes render differently and
				// split classes spuriously at the next level.
				classes := sortedKeys(counts)
				if graded {
					for _, c := range classes {
						k := counts[c]
						conjuncts = append(conjuncts,
							logic.DiaGeq(alpha, k, classFormula[c]),
							logic.Not{F: logic.DiaGeq(alpha, k+1, classFormula[c])},
						)
					}
					// No successors outside the listed classes: every
					// successor satisfies one of them.
					conjuncts = append(conjuncts, boxOver(alpha, counts, classFormula))
				} else {
					for _, c := range classes {
						conjuncts = append(conjuncts, logic.Dia(alpha, classFormula[c]))
					}
					conjuncts = append(conjuncts, boxOver(alpha, counts, classFormula))
				}
			}
			next[v] = logic.BigAnd(conjuncts...)
		}
		cur = next
	}
	return cur
}

// boxOver builds [α](⋁_{C} χ_C) for the classes present in counts.
func boxOver(alpha kripke.Index, counts map[int]int, classFormula []logic.Formula) logic.Formula {
	var present []logic.Formula
	for c := range counts {
		present = append(present, classFormula[c])
	}
	// Canonical order for determinism.
	sortFormulas(present)
	return logic.Box(alpha, logic.BigOr(present...))
}

func sortedKeys(counts map[int]int) []int {
	keys := make([]int, 0, len(counts))
	for c := range counts {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	return keys
}

func sortFormulas(fs []logic.Formula) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].String() < fs[j-1].String(); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// groupByFormula assigns a dense class id per node from rendered formulas
// and returns one representative formula per class.
func groupByFormula(fs []logic.Formula) (classOf []int, classFormula []logic.Formula) {
	classOf = make([]int, len(fs))
	ids := make(map[string]int)
	for v, f := range fs {
		key := f.String()
		id, ok := ids[key]
		if !ok {
			id = len(ids)
			ids[key] = id
			classFormula = append(classFormula, f)
		}
		classOf[v] = id
	}
	return classOf, classFormula
}

// valuationFormula characterises the exact valuation of v over Φ_Δ.
func valuationFormula(m *kripke.Model, v, delta int) logic.Formula {
	var conj []logic.Formula
	for d := 1; d <= delta; d++ {
		q := logic.Prop{Name: kripke.DegreeProp(d)}
		if m.Prop(q.Name, v) {
			conj = append(conj, q)
		} else {
			conj = append(conj, logic.Not{F: q})
		}
	}
	return logic.BigAnd(conj...)
}

// Separating returns a formula of modal depth ≤ maxDepth that is true at u
// and false at v (or an error if they are bisimilar up to maxDepth, in
// which case no such formula exists by Fact 1). The formula's fragment
// matches graded.
func Separating(m *kripke.Model, u, v, maxDepth, delta int, graded bool) (logic.Formula, error) {
	for depth := 0; depth <= maxDepth; depth++ {
		chars := Characteristic(m, depth, delta, graded)
		f := chars[u]
		val := logic.Eval(m, f)
		if val[u] && !val[v] {
			return f, nil
		}
	}
	return nil, fmt.Errorf("bisim: states %d and %d are %d-round bisimilar; no separating formula of depth ≤ %d",
		u, v, maxDepth, maxDepth)
}
