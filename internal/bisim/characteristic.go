package bisim

// Characteristic formulas à la Hennessy–Milner: for every state v and depth
// t, a formula χ_v^t of modal depth ≤ t that holds at exactly the states
// t-round bisimilar to v. This is the converse direction of Fact 1 — not
// only do bisimilar states satisfy the same formulas, but non-bisimilar
// states are *separated by a concrete formula* the library can exhibit.
// The separation arguments of Section 5.3 therefore never rely on sampling.
//
// Construction (plain ML/MML flavour):
//
//	χ_v^0   = "my valuation" (here: the degree formula)
//	χ_v^t+1 = χ_v^0 ∧ ⋀_α [ ⋀_{C ∈ S(v,α)} ⟨α⟩χ_C^t  ∧  [α](⋁_{C ∈ S(v,α)} χ_C^t) ]
//
// where S(v,α) is the set of (t-round) classes of v's α-successors. The
// graded flavour replaces the two conjuncts by exact counts
// ⟨α⟩≥k χ_C ∧ ¬⟨α⟩≥k+1 χ_C per class.
//
// The construction runs on the integer refiner: states sharing a level-t
// characteristic formula are exactly the states in the same class after t
// refinement rounds from the Δ-valuation partition, so formulas are built
// once per class (from a representative state) instead of once per state,
// and subformulas are hash-consed — the level-(t-1) class formulas appear
// by ID, not by re-rendered string.

import (
	"fmt"
	"slices"

	"weakmodels/internal/kripke"
	"weakmodels/internal/logic"
)

// Characteristic returns, for every node, a formula of modal depth ≤ depth
// characterising its depth-round equivalence class in m. delta is the Δ of
// the valuation Φ_Δ (for the degree formulas).
func Characteristic(m *kripke.Model, depth, delta int, graded bool) []logic.Formula {
	in := logic.NewInterner()
	ids := CharacteristicIDs(m, depth, delta, graded, in)
	// Reconstruct each distinct class formula once; states of a class
	// share the interface value.
	byID := make(map[logic.ID]logic.Formula)
	out := make([]logic.Formula, len(ids))
	for v, id := range ids {
		f, ok := byID[id]
		if !ok {
			f = in.Formula(id)
			byID[id] = f
		}
		out[v] = f
	}
	return out
}

// CharacteristicIDs is Characteristic on the interned path: the returned
// slice maps each state to the ID of its class's characteristic formula
// in in. Evaluate the IDs with a logic.Evaluator built on the same
// interner to keep memo rows shared across depths and states.
func CharacteristicIDs(m *kripke.Model, depth, delta int, graded bool, in *logic.Interner) []logic.ID {
	n := m.N()
	csr := m.CSR()
	r := newRefiner(csr, graded, 0)

	// Level 0 partitions by the Δ-restricted valuation — what the degree
	// formulas can express — which is at most as fine as the refiner's
	// default full-valuation classes.
	initDeltaPartition(r, m, delta)
	reps := representatives(r.cur, r.classes)
	classF := make([]logic.ID, r.classes)
	for c, rep := range reps {
		classF[c] = valuationID(in, m, int(rep), delta)
	}

	indices := csr.Indices()
	var succClasses []int32 // scratch: a representative's successor classes, sorted
	for d := 1; d <= depth; d++ {
		prev := r.cur
		prevF := classF
		// One refinement round. Even at fixpoint the formulas deepen
		// (the partition just stops splitting), matching the recursive
		// construction; the swapped-in ids equal prev's when unchanged.
		r.fill()
		r.classes = r.group()
		r.cur, r.next = r.next, r.cur

		reps = representatives(r.cur, r.classes)
		classF = make([]logic.ID, r.classes)
		for c, rep := range reps {
			conjuncts := []logic.ID{valuationID(in, m, int(rep), delta)}
			for ai, alpha := range indices {
				off, succ := r.offs[ai], r.succs[ai]
				succClasses = succClasses[:0]
				for _, w := range succ[off[rep]:off[rep+1]] {
					succClasses = append(succClasses, prev[w])
				}
				slices.Sort(succClasses)
				// Per distinct successor class, in ascending id order:
				// the diamond conjuncts, then the box over all present.
				var disjuncts []logic.ID
				for i := 0; i < len(succClasses); {
					c2 := succClasses[i]
					k := 0
					for i < len(succClasses) && succClasses[i] == c2 {
						k++
						i++
					}
					if graded {
						conjuncts = append(conjuncts,
							in.Dia(alpha, k, prevF[c2]),
							in.Not(in.Dia(alpha, k+1, prevF[c2])),
						)
					} else {
						conjuncts = append(conjuncts, in.Dia(alpha, 1, prevF[c2]))
					}
					disjuncts = append(disjuncts, prevF[c2])
				}
				// No successors outside the listed classes: every
				// successor satisfies one of them ([α]⊥ when none).
				conjuncts = append(conjuncts, in.Box(alpha, in.BigOr(disjuncts...)))
			}
			classF[c] = in.BigAnd(conjuncts...)
		}
	}

	out := make([]logic.ID, n)
	for v := 0; v < n; v++ {
		out[v] = classF[r.cur[v]]
	}
	return out
}

// initDeltaPartition resets the refiner's classes to the Δ-restricted
// valuation partition: states agreeing on q_1..q_Δ share a class, dense
// ids by first occurrence in state order.
func initDeltaPartition(r *refiner, m *kripke.Model, delta int) {
	key := make([]byte, (delta+7)/8)
	ids := make(map[string]int32)
	for v := 0; v < r.n; v++ {
		for i := range key {
			key[i] = 0
		}
		for d := 1; d <= delta; d++ {
			if m.Prop(kripke.DegreeProp(d), v) {
				key[(d-1)>>3] |= 1 << (uint(d-1) & 7)
			}
		}
		id, ok := ids[string(key)]
		if !ok {
			id = int32(len(ids))
			ids[string(key)] = id
		}
		r.cur[v] = id
	}
	r.classes = len(ids)
}

// representatives returns the first state of each class. Ids are dense by
// first occurrence, so the result is ascending.
func representatives(cur []int32, classes int) []int32 {
	reps := make([]int32, classes)
	for i := range reps {
		reps[i] = -1
	}
	for v, c := range cur {
		if reps[c] == -1 {
			reps[c] = int32(v)
		}
	}
	return reps
}

// valuationID interns the formula characterising the exact valuation of v
// over Φ_Δ.
func valuationID(in *logic.Interner, m *kripke.Model, v, delta int) logic.ID {
	var conj []logic.ID
	for d := 1; d <= delta; d++ {
		q := in.Prop(kripke.DegreeProp(d))
		if m.Prop(kripke.DegreeProp(d), v) {
			conj = append(conj, q)
		} else {
			conj = append(conj, in.Not(q))
		}
	}
	return in.BigAnd(conj...)
}

// Separating returns a formula of modal depth ≤ maxDepth that is true at u
// and false at v (or an error if they are bisimilar up to maxDepth, in
// which case no such formula exists by Fact 1). The formula's fragment
// matches graded. All depths share one interner and evaluator, so deeper
// probes reuse every truth set the shallower ones computed.
func Separating(m *kripke.Model, u, v, maxDepth, delta int, graded bool) (logic.Formula, error) {
	in := logic.NewInterner()
	ev := logic.NewEvaluator(m, in)
	for depth := 0; depth <= maxDepth; depth++ {
		ids := CharacteristicIDs(m, depth, delta, graded, in)
		f := ids[u]
		if ev.Sat(u, f) && !ev.Sat(v, f) {
			return in.Formula(f), nil
		}
	}
	return nil, fmt.Errorf("bisim: states %d and %d are %d-round bisimilar; no separating formula of depth ≤ %d",
		u, v, maxDepth, maxDepth)
}
