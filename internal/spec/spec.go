// Package spec parses the textual graph and numbering specifications used
// by the command-line tools and examples, e.g. "cycle:8", "grid:3x4",
// "random-regular:12,3,7", "fig9", "ports=symmetric".
//
// Both parsers are driven by registry maps; every enumeration of a
// registry (the -list output, the unknown-name errors) sorts before
// ranging, so the listings are deterministic by construction — the
// collect-then-sort idiom weakvet's maporder analyzer enforces for this
// package.
package spec

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"weakmodels/internal/graph"
	"weakmodels/internal/port"
)

// graphBuilders is the registry behind ParseGraph: one entry per graph
// family, keyed by its spec name, carrying the advertised form and the
// parser for the text after the colon.
var graphBuilders = map[string]struct {
	form  string
	build func(arg string) (*graph.Graph, error)
}{
	"path": {"path:N", func(arg string) (*graph.Graph, error) {
		n, err := parseN(arg)
		if err != nil {
			return nil, err
		}
		return graph.Path(n), nil
	}},
	"cycle": {"cycle:N", func(arg string) (*graph.Graph, error) {
		n, err := parseN(arg)
		if err != nil {
			return nil, err
		}
		if n < 3 {
			return nil, fmt.Errorf("spec: cycle needs n ≥ 3")
		}
		return graph.Cycle(n), nil
	}},
	"star": {"star:K", func(arg string) (*graph.Graph, error) {
		n, err := parseN(arg)
		if err != nil {
			return nil, err
		}
		return graph.Star(n), nil
	}},
	"complete": {"complete:N", func(arg string) (*graph.Graph, error) {
		n, err := parseN(arg)
		if err != nil {
			return nil, err
		}
		return graph.Complete(n), nil
	}},
	"bipartite": {"bipartite:AxB", func(arg string) (*graph.Graph, error) {
		a, b, err := parsePair(arg, "x")
		if err != nil {
			return nil, err
		}
		return graph.CompleteBipartite(a, b), nil
	}},
	"grid": {"grid:RxC", func(arg string) (*graph.Graph, error) {
		r, c, err := parsePair(arg, "x")
		if err != nil {
			return nil, err
		}
		return graph.Grid(r, c), nil
	}},
	"torus": {"torus:RxC", func(arg string) (*graph.Graph, error) {
		r, c, err := parsePair(arg, "x")
		if err != nil {
			return nil, err
		}
		if r < 3 || c < 3 {
			return nil, fmt.Errorf("spec: torus needs r,c ≥ 3")
		}
		return graph.Torus(r, c), nil
	}},
	"hypercube": {"hypercube:D", func(arg string) (*graph.Graph, error) {
		d, err := parseN(arg)
		if err != nil {
			return nil, err
		}
		if d > 16 {
			return nil, fmt.Errorf("spec: hypercube dimension %d too large", d)
		}
		return graph.Hypercube(d), nil
	}},
	"caterpillar": {"caterpillar:SxL", func(arg string) (*graph.Graph, error) {
		s, l, err := parsePair(arg, "x")
		if err != nil {
			return nil, err
		}
		return graph.Caterpillar(s, l), nil
	}},
	"petersen": {"petersen", func(string) (*graph.Graph, error) {
		return graph.Petersen(), nil
	}},
	"fig1": {"fig1", func(string) (*graph.Graph, error) {
		return graph.Figure1Graph(), nil
	}},
	"fig9": {"fig9", func(string) (*graph.Graph, error) {
		return graph.NoOneFactorCubic(), nil
	}},
	"witness13": {"witness13", func(string) (*graph.Graph, error) {
		g, _, _ := graph.Theorem13Witness()
		return g, nil
	}},
	"tree": {"tree:N,SEED", func(arg string) (*graph.Graph, error) {
		parts, err := parseInts(arg, 2)
		if err != nil {
			return nil, err
		}
		return graph.RandomTree(parts[0], rand.New(rand.NewSource(int64(parts[1])))), nil
	}},
	"random-regular": {"random-regular:N,K,SEED", func(arg string) (*graph.Graph, error) {
		parts, err := parseInts(arg, 3)
		if err != nil {
			return nil, err
		}
		return graph.RandomRegular(parts[0], parts[1], rand.New(rand.NewSource(int64(parts[2]))))
	}},
	"expander": {"expander:N,D,SEED", func(arg string) (*graph.Graph, error) {
		parts, err := parseInts(arg, 3)
		if err != nil {
			return nil, err
		}
		return graph.Expander(parts[0], parts[1], int64(parts[2]))
	}},
	"pa": {"pa:N,M,SEED", func(arg string) (*graph.Graph, error) {
		parts, err := parseInts(arg, 3)
		if err != nil {
			return nil, err
		}
		return graph.PreferentialAttachment(parts[0], parts[1], int64(parts[2]))
	}},
}

// graphAliases maps alternative spellings to registry names.
var graphAliases = map[string]string{
	"no1factor":   "fig9",
	"pref-attach": "pa",
}

// numberingBuilders is the registry behind ParseNumbering, shaped like
// graphBuilders.
var numberingBuilders = map[string]struct {
	form  string
	build func(g *graph.Graph, arg string) (*port.Numbering, error)
}{
	"canonical": {"canonical", func(g *graph.Graph, _ string) (*port.Numbering, error) {
		return port.Canonical(g), nil
	}},
	"random": {"random:SEED", func(g *graph.Graph, arg string) (*port.Numbering, error) {
		seed, err := parseSeed(arg)
		if err != nil {
			return nil, err
		}
		return port.Random(g, rand.New(rand.NewSource(seed))), nil
	}},
	"consistent": {"consistent:SEED", func(g *graph.Graph, arg string) (*port.Numbering, error) {
		seed, err := parseSeed(arg)
		if err != nil {
			return nil, err
		}
		return port.RandomConsistent(g, rand.New(rand.NewSource(seed))), nil
	}},
	"symmetric": {"symmetric", func(g *graph.Graph, _ string) (*port.Numbering, error) {
		perms, err := graph.DoubleCoverFactorPermutations(g)
		if err != nil {
			return nil, fmt.Errorf("spec: symmetric numbering needs a regular graph: %w", err)
		}
		return port.FromPermutationFactors(g, perms)
	}},
}

// GraphSpecs lists the graph specification forms accepted by ParseGraph
// in sorted order, for usage strings and weakrun's -list.
// TestGraphSpecsParse keeps it in sync with the parser.
func GraphSpecs() []string {
	forms := make([]string, 0, len(graphBuilders))
	for _, e := range graphBuilders {
		forms = append(forms, e.form)
	}
	sort.Strings(forms)
	return forms
}

// NumberingSpecs lists the port-numbering forms accepted by
// ParseNumbering in sorted order.
func NumberingSpecs() []string {
	forms := make([]string, 0, len(numberingBuilders))
	for _, e := range numberingBuilders {
		forms = append(forms, e.form)
	}
	sort.Strings(forms)
	return forms
}

// ParseGraph builds a graph from a specification string; GraphSpecs
// lists the supported forms.
func ParseGraph(s string) (*graph.Graph, error) {
	name, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, arg = s[:i], s[i+1:]
	}
	if canonical, ok := graphAliases[name]; ok {
		name = canonical
	}
	e, ok := graphBuilders[name]
	if !ok {
		return nil, fmt.Errorf("spec: unknown graph %q (known: %s)", s, strings.Join(GraphSpecs(), "  "))
	}
	return e.build(arg)
}

// ParseNumbering builds a port numbering of g; NumberingSpecs lists the
// supported forms. The empty string means canonical.
//
//	canonical — the natural consistent numbering
//	random:SEED — uniformly random (generally inconsistent)
//	consistent:SEED — uniformly random consistent
//	symmetric — Lemma 15 numbering (regular graphs) or the symmetric cycle
func ParseNumbering(g *graph.Graph, s string) (*port.Numbering, error) {
	name, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, arg = s[:i], s[i+1:]
	}
	if name == "" {
		name = "canonical"
	}
	e, ok := numberingBuilders[name]
	if !ok {
		return nil, fmt.Errorf("spec: unknown numbering %q (known: %s)", s, strings.Join(NumberingSpecs(), " | "))
	}
	return e.build(g, arg)
}

func parseN(arg string) (int, error) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("spec: bad size %q", arg)
	}
	return n, nil
}

func parseSeed(arg string) (int64, error) {
	if arg == "" {
		return 1, nil
	}
	n, err := strconv.ParseInt(arg, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("spec: bad seed %q", arg)
	}
	return n, nil
}

func parsePair(arg, sep string) (int, int, error) {
	parts := strings.Split(arg, sep)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("spec: expected AxB, got %q", arg)
	}
	a, err := parseN(parts[0])
	if err != nil {
		return 0, 0, err
	}
	b, err := parseN(parts[1])
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func parseInts(arg string, want int) ([]int, error) {
	parts := strings.Split(arg, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("spec: expected %d comma-separated ints, got %q", want, arg)
	}
	out := make([]int, want)
	for i, p := range parts {
		n, err := parseN(p)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}
