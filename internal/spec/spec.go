// Package spec parses the textual graph and numbering specifications used
// by the command-line tools and examples, e.g. "cycle:8", "grid:3x4",
// "random-regular:12,3,7", "fig9", "ports=symmetric".
package spec

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"weakmodels/internal/graph"
	"weakmodels/internal/port"
)

// GraphSpecs lists the graph specification forms accepted by ParseGraph,
// for usage strings and weakrun's -list. TestGraphSpecsParse keeps it in
// sync with the parser.
func GraphSpecs() []string {
	return []string{
		"path:N", "cycle:N", "star:K", "complete:N", "bipartite:AxB",
		"grid:RxC", "torus:RxC", "hypercube:D", "caterpillar:SxL",
		"petersen", "fig1", "fig9", "witness13",
		"tree:N,SEED", "random-regular:N,K,SEED", "expander:N,D,SEED", "pa:N,M,SEED",
	}
}

// NumberingSpecs lists the port-numbering forms accepted by ParseNumbering.
func NumberingSpecs() []string {
	return []string{"canonical", "random:SEED", "consistent:SEED", "symmetric"}
}

// ParseGraph builds a graph from a specification string. Supported forms:
//
//	path:N  cycle:N  star:K  complete:N  bipartite:AxB  grid:RxC  torus:RxC
//	hypercube:D  caterpillar:SxL  petersen  fig1  fig9  witness13
//	tree:N,SEED  random-regular:N,K,SEED  expander:N,D,SEED  pa:N,M,SEED
func ParseGraph(s string) (*graph.Graph, error) {
	name, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, arg = s[:i], s[i+1:]
	}
	switch name {
	case "path":
		n, err := parseN(arg)
		if err != nil {
			return nil, err
		}
		return graph.Path(n), nil
	case "cycle":
		n, err := parseN(arg)
		if err != nil {
			return nil, err
		}
		if n < 3 {
			return nil, fmt.Errorf("spec: cycle needs n ≥ 3")
		}
		return graph.Cycle(n), nil
	case "star":
		n, err := parseN(arg)
		if err != nil {
			return nil, err
		}
		return graph.Star(n), nil
	case "complete":
		n, err := parseN(arg)
		if err != nil {
			return nil, err
		}
		return graph.Complete(n), nil
	case "bipartite":
		a, b, err := parsePair(arg, "x")
		if err != nil {
			return nil, err
		}
		return graph.CompleteBipartite(a, b), nil
	case "grid":
		r, c, err := parsePair(arg, "x")
		if err != nil {
			return nil, err
		}
		return graph.Grid(r, c), nil
	case "torus":
		r, c, err := parsePair(arg, "x")
		if err != nil {
			return nil, err
		}
		if r < 3 || c < 3 {
			return nil, fmt.Errorf("spec: torus needs r,c ≥ 3")
		}
		return graph.Torus(r, c), nil
	case "hypercube":
		d, err := parseN(arg)
		if err != nil {
			return nil, err
		}
		if d > 16 {
			return nil, fmt.Errorf("spec: hypercube dimension %d too large", d)
		}
		return graph.Hypercube(d), nil
	case "caterpillar":
		s, l, err := parsePair(arg, "x")
		if err != nil {
			return nil, err
		}
		return graph.Caterpillar(s, l), nil
	case "petersen":
		return graph.Petersen(), nil
	case "fig1":
		return graph.Figure1Graph(), nil
	case "fig9", "no1factor":
		return graph.NoOneFactorCubic(), nil
	case "witness13":
		g, _, _ := graph.Theorem13Witness()
		return g, nil
	case "tree":
		parts, err := parseInts(arg, 2)
		if err != nil {
			return nil, err
		}
		return graph.RandomTree(parts[0], rand.New(rand.NewSource(int64(parts[1])))), nil
	case "random-regular":
		parts, err := parseInts(arg, 3)
		if err != nil {
			return nil, err
		}
		return graph.RandomRegular(parts[0], parts[1], rand.New(rand.NewSource(int64(parts[2]))))
	case "expander":
		parts, err := parseInts(arg, 3)
		if err != nil {
			return nil, err
		}
		return graph.Expander(parts[0], parts[1], int64(parts[2]))
	case "pa", "pref-attach":
		parts, err := parseInts(arg, 3)
		if err != nil {
			return nil, err
		}
		return graph.PreferentialAttachment(parts[0], parts[1], int64(parts[2]))
	default:
		return nil, fmt.Errorf("spec: unknown graph %q (try cycle:8, star:5, grid:3x4, petersen, fig9)", s)
	}
}

// ParseNumbering builds a port numbering of g. Supported forms:
//
//	canonical — the natural consistent numbering
//	random:SEED — uniformly random (generally inconsistent)
//	consistent:SEED — uniformly random consistent
//	symmetric — Lemma 15 numbering (regular graphs) or the symmetric cycle
func ParseNumbering(g *graph.Graph, s string) (*port.Numbering, error) {
	name, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, arg = s[:i], s[i+1:]
	}
	switch name {
	case "", "canonical":
		return port.Canonical(g), nil
	case "random":
		seed, err := parseSeed(arg)
		if err != nil {
			return nil, err
		}
		return port.Random(g, rand.New(rand.NewSource(seed))), nil
	case "consistent":
		seed, err := parseSeed(arg)
		if err != nil {
			return nil, err
		}
		return port.RandomConsistent(g, rand.New(rand.NewSource(seed))), nil
	case "symmetric":
		perms, err := graph.DoubleCoverFactorPermutations(g)
		if err != nil {
			return nil, fmt.Errorf("spec: symmetric numbering needs a regular graph: %w", err)
		}
		return port.FromPermutationFactors(g, perms)
	default:
		return nil, fmt.Errorf("spec: unknown numbering %q (try canonical, random:7, consistent:7, symmetric)", s)
	}
}

func parseN(arg string) (int, error) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("spec: bad size %q", arg)
	}
	return n, nil
}

func parseSeed(arg string) (int64, error) {
	if arg == "" {
		return 1, nil
	}
	n, err := strconv.ParseInt(arg, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("spec: bad seed %q", arg)
	}
	return n, nil
}

func parsePair(arg, sep string) (int, int, error) {
	parts := strings.Split(arg, sep)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("spec: expected AxB, got %q", arg)
	}
	a, err := parseN(parts[0])
	if err != nil {
		return 0, 0, err
	}
	b, err := parseN(parts[1])
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func parseInts(arg string, want int) ([]int, error) {
	parts := strings.Split(arg, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("spec: expected %d comma-separated ints, got %q", want, arg)
	}
	out := make([]int, want)
	for i, p := range parts {
		n, err := parseN(p)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}
