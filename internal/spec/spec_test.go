package spec

import (
	"testing"

	"weakmodels/internal/graph"
)

func TestParseGraph(t *testing.T) {
	cases := []struct {
		src  string
		n, m int
	}{
		{"path:5", 5, 4},
		{"cycle:6", 6, 6},
		{"star:4", 5, 4},
		{"complete:4", 4, 6},
		{"bipartite:2x3", 5, 6},
		{"grid:2x3", 6, 7},
		{"torus:3x3", 9, 18},
		{"hypercube:3", 8, 12},
		{"caterpillar:3x1", 6, 5},
		{"petersen", 10, 15},
		{"fig1", 4, 4},
		{"fig9", 16, 24},
		{"no1factor", 16, 24},
		{"witness13", 11, 9},
		{"tree:7,3", 7, 6},
		{"random-regular:8,3,1", 8, 12},
		{"expander:12,4,1", 12, 24},
		{"pa:10,2,1", 10, 17},
		{"pref-attach:10,2,1", 10, 17},
	}
	for _, tc := range cases {
		g, err := ParseGraph(tc.src)
		if err != nil {
			t.Errorf("ParseGraph(%q): %v", tc.src, err)
			continue
		}
		if g.N() != tc.n || g.M() != tc.m {
			t.Errorf("ParseGraph(%q) = (%d,%d), want (%d,%d)", tc.src, g.N(), g.M(), tc.n, tc.m)
		}
	}
}

func TestParseGraphErrors(t *testing.T) {
	bad := []string{
		"", "nope", "cycle:2", "cycle:x", "grid:3", "torus:2x2",
		"hypercube:40", "tree:5", "random-regular:5,3,1", "path:-1",
		"expander:5,2,1", "expander:9,3,1", "pa:3,2,1", "pa:5,0,1",
	}
	for _, src := range bad {
		if _, err := ParseGraph(src); err == nil {
			t.Errorf("ParseGraph(%q) succeeded, want error", src)
		}
	}
}

func TestParseNumbering(t *testing.T) {
	g := graph.Petersen()
	for _, src := range []string{"canonical", "", "random:7", "consistent:7", "symmetric"} {
		p, err := ParseNumbering(g, src)
		if err != nil {
			t.Errorf("ParseNumbering(%q): %v", src, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("ParseNumbering(%q) invalid: %v", src, err)
		}
	}
	if p, err := ParseNumbering(g, "consistent:9"); err != nil || !p.IsConsistent() {
		t.Error("consistent numbering not consistent")
	}
}

func TestParseNumberingErrors(t *testing.T) {
	g := graph.Path(3)
	if _, err := ParseNumbering(g, "symmetric"); err == nil {
		t.Error("symmetric numbering of an irregular graph accepted")
	}
	if _, err := ParseNumbering(g, "bogus"); err == nil {
		t.Error("bogus numbering accepted")
	}
	if _, err := ParseNumbering(g, "random:zzz"); err == nil {
		t.Error("bad seed accepted")
	}
}
