package spec

import (
	"testing"

	"weakmodels/internal/graph"
)

func TestParseGraph(t *testing.T) {
	cases := []struct {
		src  string
		n, m int
	}{
		{"path:5", 5, 4},
		{"cycle:6", 6, 6},
		{"star:4", 5, 4},
		{"complete:4", 4, 6},
		{"bipartite:2x3", 5, 6},
		{"grid:2x3", 6, 7},
		{"torus:3x3", 9, 18},
		{"hypercube:3", 8, 12},
		{"caterpillar:3x1", 6, 5},
		{"petersen", 10, 15},
		{"fig1", 4, 4},
		{"fig9", 16, 24},
		{"no1factor", 16, 24},
		{"witness13", 11, 9},
		{"tree:7,3", 7, 6},
		{"random-regular:8,3,1", 8, 12},
		{"expander:12,4,1", 12, 24},
		{"pa:10,2,1", 10, 17},
		{"pref-attach:10,2,1", 10, 17},
	}
	for _, tc := range cases {
		g, err := ParseGraph(tc.src)
		if err != nil {
			t.Errorf("ParseGraph(%q): %v", tc.src, err)
			continue
		}
		if g.N() != tc.n || g.M() != tc.m {
			t.Errorf("ParseGraph(%q) = (%d,%d), want (%d,%d)", tc.src, g.N(), g.M(), tc.n, tc.m)
		}
	}
}

func TestParseGraphErrors(t *testing.T) {
	bad := []string{
		"", "nope", "cycle:2", "cycle:x", "grid:3", "torus:2x2",
		"hypercube:40", "tree:5", "random-regular:5,3,1", "path:-1",
		"expander:5,2,1", "expander:9,3,1", "pa:3,2,1", "pa:5,0,1",
	}
	for _, src := range bad {
		if _, err := ParseGraph(src); err == nil {
			t.Errorf("ParseGraph(%q) succeeded, want error", src)
		}
	}
}

func TestParseNumbering(t *testing.T) {
	g := graph.Petersen()
	for _, src := range []string{"canonical", "", "random:7", "consistent:7", "symmetric"} {
		p, err := ParseNumbering(g, src)
		if err != nil {
			t.Errorf("ParseNumbering(%q): %v", src, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("ParseNumbering(%q) invalid: %v", src, err)
		}
	}
	if p, err := ParseNumbering(g, "consistent:9"); err != nil || !p.IsConsistent() {
		t.Error("consistent numbering not consistent")
	}
}

func TestParseNumberingErrors(t *testing.T) {
	g := graph.Path(3)
	if _, err := ParseNumbering(g, "symmetric"); err == nil {
		t.Error("symmetric numbering of an irregular graph accepted")
	}
	if _, err := ParseNumbering(g, "bogus"); err == nil {
		t.Error("bogus numbering accepted")
	}
	if _, err := ParseNumbering(g, "random:zzz"); err == nil {
		t.Error("bad seed accepted")
	}
}

// TestGraphSpecsParse keeps the -list enumeration in sync with the parser:
// every advertised form (with placeholders filled in) must parse, and every
// form must have an example here.
func TestGraphSpecsParse(t *testing.T) {
	examples := map[string]string{
		"path:N":                  "path:5",
		"cycle:N":                 "cycle:5",
		"star:K":                  "star:4",
		"complete:N":              "complete:4",
		"bipartite:AxB":           "bipartite:2x3",
		"grid:RxC":                "grid:3x4",
		"torus:RxC":               "torus:3x3",
		"hypercube:D":             "hypercube:3",
		"caterpillar:SxL":         "caterpillar:3x2",
		"petersen":                "petersen",
		"fig1":                    "fig1",
		"fig9":                    "fig9",
		"witness13":               "witness13",
		"tree:N,SEED":             "tree:6,1",
		"random-regular:N,K,SEED": "random-regular:8,3,1",
		"expander:N,D,SEED":       "expander:8,4,1",
		"pa:N,M,SEED":             "pa:8,2,1",
	}
	forms := GraphSpecs()
	if len(forms) != len(examples) {
		t.Fatalf("GraphSpecs lists %d forms, examples cover %d", len(forms), len(examples))
	}
	for _, form := range forms {
		ex, ok := examples[form]
		if !ok {
			t.Errorf("form %q has no example", form)
			continue
		}
		if _, err := ParseGraph(ex); err != nil {
			t.Errorf("advertised form %q: example %q does not parse: %v", form, ex, err)
		}
	}
	for _, form := range NumberingSpecs() {
		ex := map[string]string{
			"canonical": "canonical", "random:SEED": "random:7",
			"consistent:SEED": "consistent:7", "symmetric": "symmetric",
		}[form]
		if ex == "" {
			t.Errorf("numbering form %q has no example", form)
			continue
		}
		g, _ := ParseGraph("cycle:6")
		if _, err := ParseNumbering(g, ex); err != nil {
			t.Errorf("advertised numbering %q: example %q does not parse: %v", form, ex, err)
		}
	}
}
