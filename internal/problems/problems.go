// Package problems defines graph problems Π in the sense of Section 1.4: a
// problem maps each graph G to a set Π(G) of admissible output assignments
// S : V → Y. A Problem here is a validator — Validate(g, out) reports
// whether out ∈ Π(G) — plus, for the separation machinery of Corollary 3,
// an optional witness obligation stating that certain node sets must be
// split by every valid solution.
package problems

import (
	"fmt"

	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
)

// Problem is a graph problem Π.
type Problem interface {
	// Name identifies the problem.
	Name() string
	// Validate reports nil iff out ∈ Π(G). out[v] is the local output S(v).
	Validate(g *graph.Graph, out []machine.Output) error
}

// LeafElection is the Theorem 11 problem: on a k-star (k > 1), exactly one
// leaf outputs 1 and everything else outputs 0; on non-stars anything goes.
type LeafElection struct{}

var _ Problem = LeafElection{}

// Name implements Problem.
func (LeafElection) Name() string { return "leaf-election-in-star" }

// Validate implements Problem.
func (LeafElection) Validate(g *graph.Graph, out []machine.Output) error {
	centre, k, ok := starShape(g)
	if !ok || k <= 1 {
		return nil // not a k-star with k > 1: unconstrained
	}
	chosen := 0
	for v := 0; v < g.N(); v++ {
		switch {
		case v == centre && out[v] != "0":
			return fmt.Errorf("leaf-election: centre %d outputs %q, want 0", v, out[v])
		case v != centre && out[v] == "1":
			chosen++
		case v != centre && out[v] != "0" && out[v] != "1":
			return fmt.Errorf("leaf-election: node %d outputs %q ∉ {0,1}", v, out[v])
		}
	}
	if chosen != 1 {
		return fmt.Errorf("leaf-election: %d leaves chosen, want exactly 1", chosen)
	}
	return nil
}

// starShape detects a star, returning its centre and leaf count.
func starShape(g *graph.Graph) (centre, k int, ok bool) {
	if g.N() < 2 || g.M() != g.N()-1 {
		return 0, 0, false
	}
	centre = -1
	for v := 0; v < g.N(); v++ {
		switch g.Degree(v) {
		case g.N() - 1:
			centre = v
		case 1:
		default:
			return 0, 0, false
		}
	}
	if centre == -1 {
		// K2 is a 1-star with either node as centre.
		if g.N() == 2 {
			return 0, 1, true
		}
		return 0, 0, false
	}
	return centre, g.N() - 1, true
}

// OddOdd is the Theorem 13 problem: S(v) = 1 iff v has an odd number of
// neighbours of odd degree. The solution is unique per graph.
type OddOdd struct{}

var _ Problem = OddOdd{}

// Name implements Problem.
func (OddOdd) Name() string { return "odd-odd-neighbours" }

// Validate implements Problem.
func (OddOdd) Validate(g *graph.Graph, out []machine.Output) error {
	for v := 0; v < g.N(); v++ {
		odd := 0
		for _, u := range g.Neighbors(v) {
			if g.Degree(u)%2 == 1 {
				odd++
			}
		}
		want := machine.Output("0")
		if odd%2 == 1 {
			want = "1"
		}
		if out[v] != want {
			return fmt.Errorf("odd-odd: node %d outputs %q, want %q", v, out[v], want)
		}
	}
	return nil
}

// SymmetryBreak is the Theorem 17 problem: on connected regular graphs of
// odd degree without a 1-factor (the class 𝒢), the output must be
// non-constant; on all other graphs anything goes.
type SymmetryBreak struct{}

var _ Problem = SymmetryBreak{}

// Name implements Problem.
func (SymmetryBreak) Name() string { return "symmetry-breaking-on-𝒢" }

// InClassG reports whether g belongs to the family 𝒢 of Theorem 17.
func InClassG(g *graph.Graph) bool {
	k, reg := g.IsRegular()
	return reg && k%2 == 1 && k >= 3 && g.IsConnected() && !graph.HasPerfectMatching(g)
}

// Validate implements Problem.
func (SymmetryBreak) Validate(g *graph.Graph, out []machine.Output) error {
	if !InClassG(g) {
		return nil
	}
	for v := 1; v < g.N(); v++ {
		if out[v] != out[0] {
			return nil
		}
	}
	return fmt.Errorf("symmetry-break: constant output %q on a graph in 𝒢", out[0])
}

// EvenDegrees is the decision problem "every node has even degree" with the
// accept/reject semantics of Section 1.4: on yes-instances all nodes output
// 1; on no-instances at least one node outputs 0.
type EvenDegrees struct{}

var _ Problem = EvenDegrees{}

// Name implements Problem.
func (EvenDegrees) Name() string { return "even-degrees-decision" }

// Validate implements Problem.
func (EvenDegrees) Validate(g *graph.Graph, out []machine.Output) error {
	yes := true
	for v := 0; v < g.N(); v++ {
		if g.Degree(v)%2 == 1 {
			yes = false
			break
		}
	}
	if yes {
		for v := 0; v < g.N(); v++ {
			if out[v] != "1" {
				return fmt.Errorf("even-degrees: node %d rejects a yes-instance", v)
			}
		}
		return nil
	}
	for v := 0; v < g.N(); v++ {
		if out[v] == "0" {
			return nil
		}
	}
	return fmt.Errorf("even-degrees: no node rejected a no-instance")
}

// VertexCover is the approximate minimum vertex cover problem: outputs in
// {0,1} must form a vertex cover of size at most Ratio times the optimum.
// Validation certifies the ratio against the exact optimum when the graph
// is small enough, and against the matching lower bound ν(G) ≤ OPT
// otherwise.
type VertexCover struct {
	// Ratio is the allowed approximation factor (2 for the paper's MB(1)
	// algorithm of Section 3.3).
	Ratio float64
	// ExactLimit is the largest node count for which the exact optimum is
	// computed (default 24).
	ExactLimit int
}

var _ Problem = VertexCover{}

// Name implements Problem.
func (p VertexCover) Name() string { return fmt.Sprintf("vertex-cover-%.1f-approx", p.Ratio) }

// Validate implements Problem.
func (p VertexCover) Validate(g *graph.Graph, out []machine.Output) error {
	in := make([]bool, g.N())
	size := 0
	for v := 0; v < g.N(); v++ {
		switch out[v] {
		case "1":
			in[v] = true
			size++
		case "0":
		default:
			return fmt.Errorf("vertex-cover: node %d outputs %q ∉ {0,1}", v, out[v])
		}
	}
	if !graph.IsVertexCover(g, in) {
		return fmt.Errorf("vertex-cover: output is not a vertex cover")
	}
	limit := p.ExactLimit
	if limit == 0 {
		limit = 24
	}
	var lower int
	if g.N() <= limit {
		lower = graph.MinVertexCoverBruteForce(g)
	} else {
		lower = graph.Nu(g) // ν(G) ≤ OPT
	}
	if float64(size) > p.Ratio*float64(lower)+1e-9 {
		return fmt.Errorf("vertex-cover: size %d exceeds %.1f × lower bound %d", size, p.Ratio, lower)
	}
	return nil
}

// MaximalIndependentSet requires the 1-labelled nodes to form a maximal
// independent set. It is not solvable in any of the paper's classes (the
// symmetric-cycle argument of Section 3.1), and is used as a negative
// control.
type MaximalIndependentSet struct{}

var _ Problem = MaximalIndependentSet{}

// Name implements Problem.
func (MaximalIndependentSet) Name() string { return "maximal-independent-set" }

// Validate implements Problem.
func (MaximalIndependentSet) Validate(g *graph.Graph, out []machine.Output) error {
	in := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		in[v] = out[v] == "1"
	}
	for _, e := range g.Edges() {
		if in[e.U] && in[e.V] {
			return fmt.Errorf("mis: adjacent nodes %d and %d both selected", e.U, e.V)
		}
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if in[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("mis: node %d is neither selected nor dominated", v)
		}
	}
	return nil
}

// ProperColoring requires adjacent nodes to output different values.
type ProperColoring struct{}

var _ Problem = ProperColoring{}

// Name implements Problem.
func (ProperColoring) Name() string { return "proper-colouring" }

// Validate implements Problem.
func (ProperColoring) Validate(g *graph.Graph, out []machine.Output) error {
	for _, e := range g.Edges() {
		if out[e.U] == out[e.V] {
			return fmt.Errorf("colouring: edge {%d,%d} monochromatic (%q)", e.U, e.V, out[e.U])
		}
	}
	return nil
}
