package problems

import (
	"strings"
	"testing"

	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
)

func outs(ss ...string) []machine.Output {
	o := make([]machine.Output, len(ss))
	for i, s := range ss {
		o[i] = machine.Output(s)
	}
	return o
}

func TestLeafElection(t *testing.T) {
	p := LeafElection{}
	g := graph.Star(3) // centre 0, leaves 1..3
	if err := p.Validate(g, outs("0", "1", "0", "0")); err != nil {
		t.Errorf("valid election rejected: %v", err)
	}
	if err := p.Validate(g, outs("0", "0", "0", "0")); err == nil {
		t.Error("no leaf chosen accepted")
	}
	if err := p.Validate(g, outs("0", "1", "1", "0")); err == nil {
		t.Error("two leaves accepted")
	}
	if err := p.Validate(g, outs("1", "1", "0", "0")); err == nil {
		t.Error("centre output 1 accepted")
	}
	if err := p.Validate(g, outs("0", "x", "0", "0")); err == nil {
		t.Error("junk output accepted")
	}
	// Non-stars are unconstrained.
	if err := p.Validate(graph.Cycle(4), outs("9", "9", "9", "9")); err != nil {
		t.Errorf("non-star constrained: %v", err)
	}
	// Paw graph (star-like but has a cycle) is unconstrained.
	if err := p.Validate(graph.Figure1Graph(), outs("", "", "", "")); err != nil {
		t.Errorf("paw constrained: %v", err)
	}
}

func TestOddOddValidator(t *testing.T) {
	p := OddOdd{}
	g, u, w := graph.Theorem13Witness()
	want := make([]machine.Output, g.N())
	for v := 0; v < g.N(); v++ {
		odd := 0
		for _, x := range g.Neighbors(v) {
			if g.Degree(x)%2 == 1 {
				odd++
			}
		}
		want[v] = machine.Output("0")
		if odd%2 == 1 {
			want[v] = "1"
		}
	}
	if err := p.Validate(g, want); err != nil {
		t.Fatalf("correct solution rejected: %v", err)
	}
	if want[u] != "0" || want[w] != "1" {
		t.Fatalf("witness outputs: u=%s w=%s, want 0/1", want[u], want[w])
	}
	bad := append([]machine.Output(nil), want...)
	bad[u] = "1"
	if err := p.Validate(g, bad); err == nil {
		t.Error("wrong solution accepted")
	}
}

func TestSymmetryBreakAndClassG(t *testing.T) {
	p := SymmetryBreak{}
	g := graph.NoOneFactorCubic()
	if !InClassG(g) {
		t.Fatal("Figure 9a graph must be in 𝒢")
	}
	if InClassG(graph.Petersen()) {
		t.Error("Petersen has a 1-factor; not in 𝒢")
	}
	if InClassG(graph.Cycle(5)) {
		t.Error("even-degree graph in 𝒢")
	}
	if InClassG(graph.DisjointUnion(graph.NoOneFactorCubic(), graph.NoOneFactorCubic())) {
		t.Error("disconnected graph in 𝒢")
	}
	constant := make([]machine.Output, g.N())
	for i := range constant {
		constant[i] = "1"
	}
	if err := p.Validate(g, constant); err == nil {
		t.Error("constant output accepted on 𝒢")
	}
	nonConst := append([]machine.Output(nil), constant...)
	nonConst[3] = "0"
	if err := p.Validate(g, nonConst); err != nil {
		t.Errorf("non-constant output rejected: %v", err)
	}
	// Outside 𝒢: anything goes.
	if err := p.Validate(graph.Petersen(), make([]machine.Output, 10)); err != nil {
		t.Errorf("non-𝒢 graph constrained: %v", err)
	}
}

func TestEvenDegreesValidator(t *testing.T) {
	p := EvenDegrees{}
	yes := graph.Cycle(5)
	allOne := outs("1", "1", "1", "1", "1")
	if err := p.Validate(yes, allOne); err != nil {
		t.Errorf("yes-instance rejected: %v", err)
	}
	oneZero := outs("1", "0", "1", "1", "1")
	if err := p.Validate(yes, oneZero); err == nil {
		t.Error("rejecting node on yes-instance accepted")
	}
	no := graph.Path(4)
	if err := p.Validate(no, outs("1", "1", "1", "1")); err == nil {
		t.Error("all-accept on no-instance accepted")
	}
	if err := p.Validate(no, outs("1", "0", "1", "1")); err != nil {
		t.Errorf("valid rejection rejected: %v", err)
	}
}

func TestVertexCoverValidator(t *testing.T) {
	p := VertexCover{Ratio: 2}
	g := graph.Star(4)
	if err := p.Validate(g, outs("1", "0", "0", "0", "0")); err != nil {
		t.Errorf("optimal cover rejected: %v", err)
	}
	if err := p.Validate(g, outs("0", "1", "1", "1", "1")); err == nil {
		t.Error("4×OPT cover accepted at ratio 2")
	}
	if err := p.Validate(g, outs("0", "0", "0", "0", "0")); err == nil {
		t.Error("non-cover accepted")
	}
	if err := p.Validate(g, outs("1", "?", "0", "0", "0")); err == nil {
		t.Error("junk output accepted")
	}
	// Ratio-respecting suboptimal cover on a path: P4 OPT=2.
	p4 := graph.Path(4)
	if err := p.Validate(p4, outs("0", "1", "1", "0")); err != nil {
		t.Errorf("optimal P4 cover rejected: %v", err)
	}
	if err := p.Validate(p4, outs("1", "1", "1", "1")); err != nil {
		t.Errorf("2×OPT P4 cover rejected: %v", err)
	}
}

func TestMISValidator(t *testing.T) {
	p := MaximalIndependentSet{}
	g := graph.Path(4)
	if err := p.Validate(g, outs("1", "0", "1", "0")); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
	if err := p.Validate(g, outs("1", "1", "0", "0")); err == nil {
		t.Error("dependent set accepted")
	}
	if err := p.Validate(g, outs("1", "0", "0", "0")); err == nil {
		t.Error("non-maximal set accepted")
	}
}

func TestColoringValidator(t *testing.T) {
	p := ProperColoring{}
	g := graph.Cycle(4)
	if err := p.Validate(g, outs("a", "b", "a", "b")); err != nil {
		t.Errorf("proper colouring rejected: %v", err)
	}
	if err := p.Validate(g, outs("a", "a", "b", "b")); err == nil {
		t.Error("monochromatic edge accepted")
	}
}

func TestProblemNames(t *testing.T) {
	ps := []Problem{
		LeafElection{}, OddOdd{}, SymmetryBreak{}, EvenDegrees{},
		VertexCover{Ratio: 2}, MaximalIndependentSet{}, ProperColoring{},
	}
	seen := map[string]bool{}
	for _, p := range ps {
		name := p.Name()
		if name == "" || seen[name] || strings.Contains(name, " ") {
			t.Errorf("bad problem name %q", name)
		}
		seen[name] = true
	}
}

func TestStarShape(t *testing.T) {
	if _, k, ok := starShape(graph.Star(5)); !ok || k != 5 {
		t.Error("star5 not detected")
	}
	if _, _, ok := starShape(graph.Cycle(4)); ok {
		t.Error("cycle detected as star")
	}
	if _, k, ok := starShape(graph.Path(2)); !ok || k != 1 {
		t.Error("K2 should be a 1-star")
	}
	if _, _, ok := starShape(graph.Figure1Graph()); ok {
		t.Error("paw detected as star")
	}
}

func TestLeafWithinValidator(t *testing.T) {
	g := graph.Path(4) // leaves 0 and 3
	p := LeafWithin{K: 1}
	if p.Name() != "leaf-within-1" {
		t.Errorf("name %q", p.Name())
	}
	if err := p.Validate(g, outs("1", "1", "1", "1")); err != nil {
		t.Errorf("correct solution rejected: %v", err)
	}
	if err := p.Validate(g, outs("1", "0", "1", "1")); err == nil {
		t.Error("wrong output accepted")
	}
	// K=0: only the leaves themselves.
	p0 := LeafWithin{K: 0}
	if err := p0.Validate(g, outs("1", "0", "0", "1")); err != nil {
		t.Errorf("K=0 solution rejected: %v", err)
	}
	// A cycle has no leaves: everything 0, regardless of K.
	c := graph.Cycle(4)
	if err := (LeafWithin{K: 5}).Validate(c, outs("0", "0", "0", "0")); err != nil {
		t.Errorf("leafless graph: %v", err)
	}
}

func TestMaxDegreeWithinValidator(t *testing.T) {
	g := graph.Star(3)
	p := MaxDegreeWithin{K: 1}
	if p.Name() != "max-degree-within-1" {
		t.Errorf("name %q", p.Name())
	}
	if err := p.Validate(g, outs("3", "3", "3", "3")); err != nil {
		t.Errorf("correct solution rejected: %v", err)
	}
	if err := p.Validate(g, outs("3", "1", "3", "3")); err == nil {
		t.Error("wrong maximum accepted")
	}
	// K=0: own degree.
	if err := (MaxDegreeWithin{K: 0}).Validate(g, outs("3", "1", "1", "1")); err != nil {
		t.Errorf("K=0 solution rejected: %v", err)
	}
	// Radius beyond the component must not leak across components.
	dg := graph.DisjointUnion(graph.Star(3), graph.Path(2))
	out := outs("3", "3", "3", "3", "1", "1")
	if err := (MaxDegreeWithin{K: 10}).Validate(dg, out); err != nil {
		t.Errorf("disjoint union: %v", err)
	}
}
