package problems

import (
	"fmt"

	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
)

// LeafWithin is the decision problem "S(v) = 1 iff some degree-1 node is
// within distance K of v" (distance 0 counts: leaves themselves output 1).
// Solvable in SB(1) for every fixed K — see algorithms.LeafProximity.
type LeafWithin struct {
	// K is the distance bound.
	K int
}

var _ Problem = LeafWithin{}

// Name implements Problem.
func (p LeafWithin) Name() string { return fmt.Sprintf("leaf-within-%d", p.K) }

// Validate implements Problem.
func (p LeafWithin) Validate(g *graph.Graph, out []machine.Output) error {
	want := leafDistances(g)
	for v := 0; v < g.N(); v++ {
		expected := machine.Output("0")
		if want[v] <= p.K {
			expected = "1"
		}
		if out[v] != expected {
			return fmt.Errorf("leaf-within-%d: node %d outputs %q, want %q (leaf distance %d)",
				p.K, v, out[v], expected, want[v])
		}
	}
	return nil
}

// leafDistances returns, per node, the hop distance to the closest
// degree-1 node (large value when none is reachable).
func leafDistances(g *graph.Graph) []int {
	const inf = int(^uint(0) >> 1)
	dist := make([]int, g.N())
	var queue []int
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 1 {
			dist[v] = 0
			queue = append(queue, v)
		} else {
			dist[v] = inf
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] > dist[v]+1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}
