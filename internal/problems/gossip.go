package problems

import (
	"fmt"
	"strconv"

	"weakmodels/internal/graph"
	"weakmodels/internal/machine"
)

// MaxDegreeWithin requires S(v) to equal the maximum degree among nodes at
// distance ≤ K from v. The unique solution is computed by BFS.
type MaxDegreeWithin struct {
	// K is the radius.
	K int
}

var _ Problem = MaxDegreeWithin{}

// Name implements Problem.
func (p MaxDegreeWithin) Name() string { return fmt.Sprintf("max-degree-within-%d", p.K) }

// Validate implements Problem.
func (p MaxDegreeWithin) Validate(g *graph.Graph, out []machine.Output) error {
	for v := 0; v < g.N(); v++ {
		want := maxDegreeInBall(g, v, p.K)
		got, err := strconv.Atoi(string(out[v]))
		if err != nil || got != want {
			return fmt.Errorf("max-degree-within-%d: node %d outputs %q, want %d",
				p.K, v, out[v], want)
		}
	}
	return nil
}

// maxDegreeInBall BFSes to radius k and returns the maximum degree seen.
func maxDegreeInBall(g *graph.Graph, v, k int) int {
	dist := map[int]int{v: 0}
	queue := []int{v}
	best := g.Degree(v)
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if g.Degree(x) > best {
			best = g.Degree(x)
		}
		if dist[x] == k {
			continue
		}
		for _, w := range g.Neighbors(x) {
			if _, seen := dist[w]; !seen {
				dist[w] = dist[x] + 1
				queue = append(queue, w)
			}
		}
	}
	return best
}
