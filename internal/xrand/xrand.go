// Package xrand wraps math/rand's seeded source with a draw cursor, so
// the seeded schedule and fault generators can checkpoint how much of
// their random stream a run has consumed and fast-forward back to that
// exact position on resume.
//
// The wrapper counts at the Source level, not the Rand level: rand.Rand
// methods consume a variable number of source words (Float64 can loop on
// an edge case, Intn rejects out-of-range words), so counting Float64 or
// Intn calls would not pin the stream position. Counting Int63/Uint64
// calls does — and because the wrapper delegates to the exact source
// rand.NewSource returns, a generator built over it draws the same
// stream it always drew, keeping every committed seeded expectation.
package xrand

import "math/rand"

// Source is a rand.Source64 that counts every word drawn from the
// underlying seeded source. It is not safe for concurrent use — exactly
// like the source it wraps, and by design: the engine draws all
// randomness on its coordinator.
type Source struct {
	inner rand.Source64
	seed  int64
	draws int64
}

// NewSource returns a counting source seeded like rand.NewSource(seed).
func NewSource(seed int64) *Source {
	return &Source{inner: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 draws one word.
func (s *Source) Int63() int64 {
	s.draws++
	return s.inner.Int63()
}

// Uint64 draws one word.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.inner.Uint64()
}

// Seed reseeds the source and resets the cursor.
func (s *Source) Seed(seed int64) {
	s.inner.Seed(seed)
	s.seed, s.draws = seed, 0
}

// Cursor returns how many words have been drawn since the last seeding.
func (s *Source) Cursor() int64 { return s.draws }

// SeekTo rewinds the source to its seed and burns words until the cursor
// reaches cursor: afterwards the source is in the exact state it was in
// when Cursor returned that value. Int63 and Uint64 advance the
// underlying generator identically, so the burn is draw-type agnostic.
func (s *Source) SeekTo(cursor int64) {
	s.inner.Seed(s.seed)
	s.draws = 0
	for s.draws < cursor {
		s.draws++
		s.inner.Uint64()
	}
}
