package xrand

import (
	"math/rand"
	"testing"
)

// The counting source must be stream-transparent: a rand.Rand built over
// it draws exactly what one built over rand.NewSource draws. Every seeded
// schedule/fault expectation in the repo depends on this.
func TestSourceStreamTransparent(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		ref := rand.New(rand.NewSource(seed))
		got := rand.New(NewSource(seed))
		for i := 0; i < 1000; i++ {
			switch i % 4 {
			case 0:
				if r, g := ref.Float64(), got.Float64(); r != g {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, r)
				}
			case 1:
				if r, g := ref.Intn(97), got.Intn(97); r != g {
					t.Fatalf("seed %d draw %d: Intn %v != %v", seed, i, g, r)
				}
			case 2:
				if r, g := ref.Int63(), got.Int63(); r != g {
					t.Fatalf("seed %d draw %d: Int63 %v != %v", seed, i, g, r)
				}
			case 3:
				if r, g := ref.Uint64(), got.Uint64(); r != g {
					t.Fatalf("seed %d draw %d: Uint64 %v != %v", seed, i, g, r)
				}
			}
		}
	}
}

// SeekTo(c) must put the source in the exact state it was in when Cursor
// returned c, regardless of which Rand methods consumed the words.
func TestSeekToReproducesTail(t *testing.T) {
	src := NewSource(99)
	rng := rand.New(src)
	for i := 0; i < 500; i++ {
		if i%3 == 0 {
			rng.Float64()
		} else {
			rng.Intn(1000)
		}
	}
	cursor := src.Cursor()
	want := make([]float64, 50)
	for i := range want {
		want[i] = rng.Float64()
	}

	src2 := NewSource(99)
	rng2 := rand.New(src2)
	src2.SeekTo(cursor)
	if src2.Cursor() != cursor {
		t.Fatalf("cursor after seek: %d, want %d", src2.Cursor(), cursor)
	}
	for i := range want {
		if got := rng2.Float64(); got != want[i] {
			t.Fatalf("tail draw %d after seek: %v, want %v", i, got, want[i])
		}
	}
}
