// Package fault defines fault-injection plans for the engine's async
// executor. Where a schedule.Schedule controls *when* messages are
// delivered and nodes are activated, a Plan controls *whether*: per step it
// can drop or duplicate individual delivered messages and crash or recover
// individual nodes, with deterministic seeded generators, so any
// fault-tolerance experiment replays bit-identically from a (schedule seed,
// fault seed) pair.
//
// # Fault model
//
// The model follows the message-adversary tradition of Santoro–Widmayer,
// studied epistemically by Goubault–Rajsbaum (arXiv:1704.07883): a dropped
// message is not removed from its link — it is delivered as m0, the "no
// message" symbol of Section 1.1. This is deliberate. The async executor's
// Kahn discipline fires a node only on a full frontier (one delivered
// message per in-port); physically removing messages would starve frontiers
// and wedge every one-per-port run after finitely many losses, because
// nodes transmit only when they fire. Delivering m0 instead loses exactly
// the information content of the message while preserving liveness — the
// receiver observes silence, as it would from a halted or crashed
// neighbour. Duplication enqueues a second copy, so a receiver can consume
// a stale value twice; crash-stop freezes a node (its frontier keeps
// draining and it emits m0, so neighbours are not wedged); crash-recover
// additionally revives it after a seeded downtime, either resuming the
// frozen state or resetting it to the machine's initial state (the
// transient memory-loss fault of the self-stabilisation literature; see
// machine.Rebooter for machines with stable storage).
//
// # Fairness and settlement
//
// A plan is "fair" when it perturbs the run only finitely: every generator
// here is transient, injecting faults up to a seeded horizon and reporting
// quiescence through Settled. This mirrors Dijkstra's definition of
// self-stabilisation — convergence is only required after the transient
// faults cease — and is what keeps the executor's fixpoint detection sound:
// the engine probes for a global fixpoint only once the plan is settled,
// since an unsettled plan could still perturb a configuration that looks
// steady (a future m0-substitution or reset is an adversarial state
// change). The self-stabilisation harness (internal/stabilize) builds on
// this: run to fixpoint under a fault plan, then compare the stabilised
// configuration with the fault-free synchronous run.
package fault

import "weakmodels/internal/schedule"

// Fate is the outcome a Plan assigns to one delivered message.
type Fate int8

const (
	// FateDeliver delivers the message unchanged.
	FateDeliver Fate = iota
	// FateDrop delivers m0 in place of the message: the content is lost,
	// the delivery slot is not (the omission fault of message adversaries).
	FateDrop
	// FateDup delivers the message twice: the receiver's queue gains an
	// extra copy, to be consumed by a later firing.
	FateDup
	// FateCorrupt delivers a rewritten payload in the message's place: the
	// Byzantine channel fault. Only plans implementing Corrupter may return
	// it — the engine follows up every FateCorrupt with a Corrupt call for
	// the replacement payload, on the same goroutine and in the same
	// (link, queue-position) order as the Filter that drew it.
	FateCorrupt
)

// String returns the -faults vocabulary for the fate.
func (f Fate) String() string {
	switch f {
	case FateDeliver:
		return "deliver"
	case FateDrop:
		return "drop"
	case FateDup:
		return "dup"
	case FateCorrupt:
		return "corrupt"
	default:
		return "Fate(?)"
	}
}

// RecoverKind says how a crashed node comes back.
type RecoverKind int8

const (
	// RecoverNone requests no recovery.
	RecoverNone RecoverKind = iota
	// RecoverResume revives the node with its pre-crash state intact
	// (messages consumed during the downtime are still lost — the node's
	// frontier drained while it was down).
	RecoverResume
	// RecoverReset revives the node with its state reset to the machine's
	// initial state z0(deg) — or to machine.Rebooter.RebootState when the
	// machine models stable storage.
	RecoverReset
)

// Topology is the static shape of the run a Plan is injected into,
// available from Begin. Links are the directed in-port slots of the
// routing table, exactly as in schedule.View.
type Topology interface {
	// Nodes returns the node count.
	Nodes() int
	// Links returns the number of directed links.
	Links() int
	// Degree returns the degree of node v.
	Degree(v int) int
	// LinkSrc returns the node whose out-port feeds link l.
	LinkSrc(l int) int
	// LinkDst returns the node whose in-port link l feeds.
	LinkDst(l int) int
}

// View is the read-only run feedback a Plan may consult when deciding a
// step: the schedule view plus the current liveness of every node.
type View interface {
	schedule.View
	// Alive reports whether node v is currently not crashed.
	Alive(v int) bool
}

// Decision is the engine-owned buffer a Plan fills at each step with its
// crash, recovery and retransmission requests. The engine clamps requests
// to what is possible: crashing a crashed node and recovering an alive one
// are no-ops, and a retransmission on a link whose source is dead or
// halted re-sends m0 (a dead sender has nothing to say). Message fates are
// not part of the Decision — they are decided per delivery through Filter,
// after the schedule has chosen what to deliver.
type Decision struct {
	// Crash[v] requests that node v crash this step.
	Crash []bool
	// Recover[v] requests that node v recover this step, and how.
	Recover []RecoverKind
	// Resend[l] requests that the source of link l retransmit its current
	// steady message onto l this step — the sender-side retry of the
	// retransmit plan. The extra copy joins the link's flight queue behind
	// whatever is already in flight, exactly like a duplication, so Kahn
	// frontiers stay well formed.
	Resend []bool
}

// NewDecision allocates a Decision sized for a run.
func NewDecision(nodes, links int) *Decision {
	return &Decision{
		Crash:   make([]bool, nodes),
		Recover: make([]RecoverKind, nodes),
		Resend:  make([]bool, links),
	}
}

// Reset clears the decision for the next step.
func (d *Decision) Reset() {
	clear(d.Crash)
	clear(d.Recover)
	clear(d.Resend)
}

// Plan decides, per step, which delivered messages are dropped or
// duplicated and which nodes crash or recover. Implementations are
// deterministic: the same (plan spec, seed) pair replays the same faults
// against the same execution. A Plan is stateful within a run and must be
// fully reset by Begin; it must not be shared between concurrent runs.
type Plan interface {
	// Name returns the canonical -faults spelling of this plan.
	Name() string
	// Begin resets the plan for a run over the given topology.
	Begin(top Topology)
	// Step fills dec with the crash/recovery decision for step t (t ≥ 1),
	// before the step's deliveries and activations.
	Step(t int, view View, dec *Decision)
	// Filter assigns a fate to one message the schedule is delivering on
	// link l at step t. The engine calls it once per delivered message, in
	// deterministic (link, queue-position) order — always from a single
	// goroutine: the sharded async executor pre-draws a step's fates on its
	// coordinator in exactly that order and only hands the results to its
	// workers, so a Plan's random stream stays sequential (and the sharded
	// run bit-identical) without any locking in the Plan.
	Filter(t int, link int) Fate
	// Settled reports that the plan will never again perturb the run: no
	// future drop, duplication, corruption, retransmission, crash or
	// recovery is possible. The engine gates fixpoint detection on it,
	// because an unsettled plan could still perturb a configuration that
	// currently looks steady.
	Settled() bool
}

// Corrupter is the optional Plan extension for Byzantine channels. When a
// plan's Filter returns FateCorrupt, the engine immediately calls Corrupt
// with the genuine payload (m0 for a silent sender) and delivers the
// returned rewrite in its place. The call happens on the same goroutine
// and in the same (link, queue-position) order as the Filter that drew the
// fate — on the sharded executor both run on the coordinator during the
// pre-draw — so a Corrupter's random stream stays sequential and the run
// bit-identical across worker counts.
type Corrupter interface {
	Plan
	// Corrupt returns the payload delivered in place of msg on link l at
	// step t. Returning msg unchanged is allowed (the corruption is still
	// counted); returning NoMessage models corruption-to-silence.
	Corrupt(t int, link int, msg string) string
}

// CanCorrupt reports whether plan can ever emit FateCorrupt, looking
// through composites (a composite satisfies Corrupter structurally even
// when no component corrupts). The engine uses it to skip corruption
// bookkeeping (and the receiver-side message guard) entirely for plans
// that cannot lie.
func CanCorrupt(plan Plan) bool {
	if c, ok := plan.(*composite); ok {
		return c.canCorrupt
	}
	_, ok := plan.(Corrupter)
	return ok
}

// Healer is the optional Plan extension for partition plans: it exposes
// how many cut links have been restored, for telemetry. The engine copies
// the final count into Result.Healed after the run.
type Healer interface {
	Plan
	// Healed returns the number of links cut by this plan that have healed
	// so far in the current run.
	Healed() int64
}
