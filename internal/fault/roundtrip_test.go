package fault

import (
	"fmt"
	"math/rand"
	"testing"
)

// specGrammar generates a random well-formed spec from Parse's grammar,
// without embedded seeds, so the plan's identity is fully captured by its
// Name and the Parse seed.
func specGrammar(rng *rand.Rand) string {
	one := func() string {
		switch rng.Intn(9) {
		case 0:
			return fmt.Sprintf("drop:%g", float64(rng.Intn(101))/100)
		case 1:
			return fmt.Sprintf("dup:%g", float64(rng.Intn(101))/100)
		case 2:
			return fmt.Sprintf("byzantine:%g", float64(rng.Intn(101))/100)
		case 3:
			return fmt.Sprintf("crash:%d", 1+rng.Intn(4))
		case 4:
			return fmt.Sprintf("pause:%d", 1+rng.Intn(4))
		case 5:
			return fmt.Sprintf("crashstop:%d", 1+rng.Intn(4))
		case 6:
			return fmt.Sprintf("partition:%d", 1+rng.Intn(5))
		case 7:
			return fmt.Sprintf("retransmit:%d", 1+rng.Intn(3))
		default:
			return fmt.Sprintf("adversary:%d", 1+rng.Intn(4))
		}
	}
	spec := one()
	for rng.Intn(2) == 0 {
		spec += "+" + one()
	}
	return spec
}

// TestParseNameRoundTrip: for seedless generated specs, Parse(spec) and
// Parse(Parse(spec).Name()) are equivalent plans — same Name and, replayed
// under the same Parse seed, bit-identical fault fingerprints. This is the
// satellite guarantee that every generated spec string re-parses to an
// equivalent plan.
func TestParseNameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	top := starTopology(5)
	for i := 0; i < 300; i++ {
		spec := specGrammar(rng)
		p1, err := Parse(spec, 13)
		if err != nil {
			t.Fatalf("generated spec %q: %v", spec, err)
		}
		p2, err := Parse(p1.Name(), 13)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", p1.Name(), spec, err)
		}
		if p1.Name() != p2.Name() {
			t.Fatalf("Name not a fixpoint: %q → %q", p1.Name(), p2.Name())
		}
		f1, c1, r1 := replay(p1, top, 2*DefaultHorizon)
		f2, c2, r2 := replay(p2, top, 2*DefaultHorizon)
		if !equalFates(f1, f2) || !equalInts(c1, c2) || !equalInts(r1, r2) {
			t.Fatalf("spec %q: re-parsed plan %q replays differently", spec, p1.Name())
		}
	}
}

// FuzzParseRoundTrip: any accepted spec has a Name that re-parses, and the
// Name is a fixpoint of Parse∘Name. (Seeds and horizons embedded in the
// spec are deliberately not part of the Name — the fingerprint equivalence
// for seedless specs is pinned by TestParseNameRoundTrip.)
func FuzzParseRoundTrip(f *testing.F) {
	f.Add("drop:0.5")
	f.Add("byzantine:0.3+partition:2")
	f.Add("crash:1,9,64+retransmit:2")
	f.Add("adversary:3+dup:0.25,7")
	f.Add("none")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s, 7)
		if err != nil || p == nil {
			return
		}
		name := p.Name()
		p2, err := Parse(name, 7)
		if err != nil {
			t.Fatalf("Parse(%q) ok but its Name %q does not re-parse: %v", s, name, err)
		}
		if p2 == nil {
			t.Fatalf("Name %q of a non-nil plan re-parsed to nil", name)
		}
		if p2.Name() != name {
			t.Fatalf("Name not a fixpoint: %q → %q", name, p2.Name())
		}
	})
}
